package rana_test

// Whole-pipeline integration tests: these cross every subsystem boundary
// at once — the compilation phase feeding the execution phase, the
// analytic scheduler feeding the physical eDRAM model, and the
// training-level tolerance surviving physically simulated charge decay.

import (
	"bytes"
	"testing"
	"time"

	"rana/internal/bits"
	"rana/internal/core"
	"rana/internal/dataset"
	"rana/internal/edram"
	"rana/internal/energy"
	"rana/internal/exec"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/nn"
	"rana/internal/platform"
	"rana/internal/retention"
	"rana/internal/training"
)

// edgeConfig is a small eDRAM accelerator usable by both the framework
// (compile) and the execution engine (word-accurate run).
func edgeConfig() hw.Config {
	return hw.Config{
		Name: "edge-it", ArrayM: 2, ArrayN: 2, FrequencyHz: 200e6,
		LocalInput: 512, LocalOutput: 256, LocalWeight: 512,
		BufferWords: 4 * 512, BufferTech: energy.EDRAM, BankWords: 512,
	}
}

// edgeNet chains three small layers so exec can run it.
func edgeNet() models.Network {
	return models.Network{Name: "edge-it-net", Layers: []models.ConvLayer{
		{Name: "l0", Stage: "s", N: 2, H: 6, L: 6, M: 4, K: 3, S: 1, P: 1},
		{Name: "l1", Stage: "s", N: 4, H: 6, L: 6, M: 6, K: 1, S: 1, P: 0},
		{Name: "l2", Stage: "s", N: 6, H: 6, L: 6, M: 4, K: 3, S: 2, P: 1},
	}}
}

// TestPipelineCompileExportImportExecute drives the full Fig. 6 flow on a
// custom platform: Stage 1+2 compile, the artifact round-trips through
// its serialized form, and the execution engine runs the plan on the
// decaying eDRAM — exactly, with zero refresh, because every lifetime
// beats the 734 µs tolerable retention at deployment speed.
func TestPipelineCompileExportImportExecute(t *testing.T) {
	fw := core.New()
	fw.Platform = &platform.Platform{Base: edgeConfig(), Dist: retention.Typical()}
	out, err := fw.Compile(edgeNet())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Verify(); err != nil {
		t.Fatal(err)
	}
	// Compile must keep the platform's own eDRAM capacity.
	if out.Config.BufferWords != edgeConfig().BufferWords {
		t.Fatalf("compile changed buffer capacity to %d", out.Config.BufferWords)
	}

	// The artifact round-trips and validates against the hardware.
	var buf bytes.Buffer
	if err := out.ExportConfig(&buf); err != nil {
		t.Fatal(err)
	}
	cf, err := core.ImportConfig(&buf, out.Config)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Retention() != out.TolerableRetention {
		t.Errorf("artifact retention %v != compiled %v", cf.Retention(), out.TolerableRetention)
	}

	// The compiled plan executes on physics.
	rng := bits.NewSplitMix64(21)
	input := make([]fixed.Word, edgeNet().Layers[0].InputWords())
	for i := range input {
		input[i] = fixed.Q88.FromFloat(rng.NormFloat64() * 0.3)
	}
	var weights [][]fixed.Word
	for _, l := range edgeNet().Layers {
		ws := make([]fixed.Word, l.WeightWords())
		for i := range ws {
			ws[i] = fixed.Q88.FromFloat(rng.NormFloat64() * 0.2)
		}
		weights = append(weights, ws)
	}
	rep, err := exec.New(out.Config).Run(out.Plan, input, weights)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WordErrors != 0 {
		t.Errorf("compiled schedule corrupted %d output words", rep.WordErrors)
	}
	if rep.Counts.Refreshes != 0 {
		t.Errorf("deployment-speed execution should be refresh-free, issued %d", rep.Counts.Refreshes)
	}
}

// decayWeightsThroughEDRAM passes every parameter of the network through
// a physical eDRAM buffer held unrefreshed for `hold` — the hardware
// event the retention-aware training method prepares the model for.
func decayWeightsThroughEDRAM(t *testing.T, net *nn.Network, hold time.Duration, seed uint64) {
	t.Helper()
	var total int
	for _, p := range net.Params() {
		total += p.W.Len()
	}
	banks := (total + 16383) / 16384
	buf, err := edram.New(banks+1, 16384, retention.Typical(), seed)
	if err != nil {
		t.Fatal(err)
	}
	addr := 0
	f := fixed.Q88
	for _, p := range net.Params() {
		for i, v := range p.W.Data {
			buf.Write(addr, f.FromFloat(v), 0)
			_ = i
			addr++
		}
	}
	addr = 0
	for _, p := range net.Params() {
		for i := range p.W.Data {
			p.W.Data[i] = f.ToFloat(buf.Read(addr, hold))
			addr++
		}
	}
}

// TestTrainedToleranceSurvivesPhysicalDecay connects the training level
// to the physical model through a channel the trainer never saw: instead
// of the injector's masks, the retrained model's weights decay inside the
// functional eDRAM for 2.5 ms (the 10⁻⁴ failure-rate point of Fig. 8).
// The retention-aware model must classify better than the plain
// fixed-point model under the same physical corruption.
func TestTrainedToleranceSurvivesPhysicalDecay(t *testing.T) {
	cfg := training.DefaultConfig()
	cfg.Epochs = 4
	samples := dataset.Generate(360, cfg.Seed)
	train, test := dataset.Split(samples, 0.75)

	baseline := training.BuildModel(cfg.Seed)
	training.Train(baseline, train, cfg, 0)

	retrained := training.BuildModel(cfg.Seed)
	copyParams(retrained, baseline)
	retrainCfg := cfg
	retrainCfg.Epochs = 8
	retrainCfg.LR = cfg.LR / 2
	training.Train(retrained, train, retrainCfg, 1e-4)

	hold := 2500 * time.Microsecond // F(2.5ms) = 1e-4
	accUnder := func(net *nn.Network, seedBase uint64) float64 {
		sum := 0.0
		const trials = 6
		for trial := uint64(0); trial < trials; trial++ {
			probe := training.BuildModel(cfg.Seed)
			copyParams(probe, net)
			decayWeightsThroughEDRAM(t, probe, hold, seedBase+trial*131)
			correct := 0
			for _, s := range test {
				if probe.Predict(s.Image, &nn.FaultModel{Format: fixed.Q88, Quantize: true}) == s.Label {
					correct++
				}
			}
			sum += float64(correct) / float64(len(test))
		}
		return sum / trials
	}

	accBase := accUnder(baseline, 1000)
	accRetrained := accUnder(retrained, 1000) // same decay seeds: paired comparison
	t.Logf("physical decay @2.5ms: baseline %.3f, retention-aware %.3f", accBase, accRetrained)
	if accRetrained+0.02 < accBase {
		t.Errorf("retention-aware model (%.3f) should not classify worse than baseline (%.3f) under physical decay",
			accRetrained, accBase)
	}
	// And both should still be far above chance — 2.5 ms decay corrupts
	// only ~1e-4 of cells.
	if accRetrained < 0.5 {
		t.Errorf("accuracy collapsed to %.3f under mild decay", accRetrained)
	}
}

func copyParams(dst, src *nn.Network) {
	dp, sp := dst.Params(), src.Params()
	for i := range sp {
		copy(dp[i].W.Data, sp[i].W.Data)
	}
}

// TestSchedulerRefreshDecisionsMatchPhysics: for every layer the RANA
// framework marks refresh-free on the paper's platform, holding data for
// that layer's maximum lifetime in the physical eDRAM corrupts at most a
// ~10⁻⁵-grade sliver of cells — the tolerance Stage 1 trained for.
func TestSchedulerRefreshDecisionsMatchPhysics(t *testing.T) {
	out, err := core.New().Compile(models.AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	dist := retention.Typical()
	for i, lc := range out.Layerwise {
		anyFlag := false
		for _, fl := range lc.RefreshFlags {
			anyFlag = anyFlag || fl
		}
		if anyFlag {
			continue // layer refreshes; nothing to check
		}
		lt := out.Plan.Layers[i].Analysis.Lifetimes.Max()
		// Cell failure probability at this lifetime must not exceed the
		// trained tolerance.
		if rate := dist.FailureRate(lt); rate > retention.TolerableFailureRate {
			t.Errorf("layer %s: refresh-free at lifetime %v but cell failure rate %.2g exceeds trained tolerance",
				lc.Layer.Name, lt, rate)
		}
	}
}
