package rana

import (
	"bytes"
	"strings"
	"testing"
)

func TestFacadeBenchmarks(t *testing.T) {
	if len(Benchmarks()) != 4 {
		t.Fatal("want 4 benchmarks")
	}
	if ResNet().Name != "ResNet" || AlexNet().Name != "AlexNet" ||
		VGG().Name != "VGG" || GoogLeNet().Name != "GoogLeNet" {
		t.Error("benchmark constructors")
	}
}

func TestFacadeDesigns(t *testing.T) {
	if len(Designs()) != 6 {
		t.Fatal("want 6 designs")
	}
	if SID().Name != "S+ID" || RANAStarE5().Name != "RANA*(E-5)" {
		t.Error("design constructors")
	}
}

func TestFacadeEvaluate(t *testing.T) {
	p := TestPlatform()
	r, err := p.Evaluate(RANAStarE5(), AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	if r.Energy().Total() <= 0 {
		t.Error("degenerate energy")
	}
}

func TestFacadeAnalyze(t *testing.T) {
	l, _ := ResNet().Layer("res4a_branch1")
	a, err := Analyze(l, OD, Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}, TestAccelerator())
	if err != nil {
		t.Fatal(err)
	}
	if a.Lifetimes.Output <= 0 || a.Lifetimes.Output >= TolerableRetentionTime {
		t.Errorf("Layer-A OD lifetime %v should be positive and below 734µs", a.Lifetimes.Output)
	}
}

func TestFacadeFramework(t *testing.T) {
	out, err := NewFramework().Compile(AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	if out.TolerableRetention != TolerableRetentionTime {
		t.Errorf("retention = %v", out.TolerableRetention)
	}
}

func TestFacadeExperiments(t *testing.T) {
	if len(Experiments()) != 20 {
		t.Errorf("%d experiments", len(Experiments()))
	}
	e, ok := ExperimentByID("table1")
	if !ok {
		t.Fatal("table1 missing")
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "VGG") {
		t.Error("table1 output")
	}
}

func TestFacadeRetention(t *testing.T) {
	d := TypicalRetention()
	if d.RetentionTime(TolerableFailureRate) != TolerableRetentionTime {
		t.Error("retention anchors")
	}
}

func TestFacadeRelativeAccuracy(t *testing.T) {
	rel, err := RelativeAccuracy("ResNet", 1e-5)
	if err != nil || rel < 0.99 {
		t.Errorf("rel=%g err=%v", rel, err)
	}
}

func TestFacadeHardware(t *testing.T) {
	if TestAccelerator().PEs() != 256 {
		t.Error("TestAccelerator")
	}
	if DaDianNaoNode().PEs() != 4096 {
		t.Error("DaDianNaoNode")
	}
	if SRAMTech.String() != "SRAM" || EDRAMTech.String() != "eDRAM" {
		t.Error("tech constants")
	}
}

func TestFacadeDaDianNaoPlatform(t *testing.T) {
	p := DaDianNaoPlatform()
	if p.Base.Name != "dadiannao" {
		t.Errorf("base = %s", p.Base.Name)
	}
}

func TestFacadeAllDesignConstructors(t *testing.T) {
	names := map[string]Design{
		"S+ID": SID(), "eD+ID": EDID(), "eD+OD": EDOD(),
		"RANA (0)": RANA0(), "RANA (E-5)": RANAE5(), "RANA*(E-5)": RANAStarE5(),
	}
	for want, d := range names {
		if d.Name != want {
			t.Errorf("constructor for %q returned %q", want, d.Name)
		}
	}
}

func TestFacadePatternConstants(t *testing.T) {
	if ID.String() != "ID" || OD.String() != "OD" || WD.String() != "WD" {
		t.Error("pattern constants")
	}
}

func TestFacadeRetentionConstants(t *testing.T) {
	if TolerableRetentionTime/ConventionalRetentionTime < 16 {
		t.Error("the 16x relaxation anchor")
	}
}

func TestFacadeRunExperimentsSmoke(t *testing.T) {
	// Running everything is covered in internal/experiments; here just
	// confirm the facade wires through (single cheap experiment).
	e, ok := ExperimentByID("fig8")
	if !ok {
		t.Fatal("fig8 missing")
	}
	var buf bytes.Buffer
	if err := e.Run(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "734") {
		t.Error("fig8 output missing the tolerable anchor")
	}
}
