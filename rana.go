// Package rana is a Go reproduction of RANA — the Retention-Aware Neural
// Acceleration framework for CNN accelerators with refresh-optimized
// embedded DRAM (Tu et al., ISCA 2018).
//
// RANA removes almost all eDRAM refresh energy from CNN accelerators by
// exploiting one observation: refresh is unnecessary when data's lifetime
// in the buffer is shorter than the eDRAM retention time. It attacks the
// problem at three levels:
//
//   - Training: retention-aware retraining tolerates a higher bit failure
//     rate, stretching the usable retention time (45 µs → 734 µs).
//   - Scheduling: each layer runs the computation pattern (output- or
//     weight-dominant) and tiling that minimize total system energy.
//   - Architecture: a refresh-optimized eDRAM controller refreshes only
//     the banks whose data actually needs it.
//
// This package is the public facade over the implementation in internal/:
// the type aliases and constructors here are the supported API surface.
//
// Quick start:
//
//	fw := rana.NewFramework()
//	out, err := fw.Compile(rana.ResNet())
//	// out.TolerableRetention == 734µs, out.Layerwise holds the
//	// per-layer patterns, tilings and refresh flags.
//
// Evaluating the paper's design points:
//
//	p := rana.TestPlatform()
//	res, err := p.Evaluate(rana.RANAStarE5(), rana.ResNet())
//	fmt.Println(res.Energy().Total())
package rana

import (
	"context"
	"io"

	"rana/internal/core"
	"rana/internal/energy"
	"rana/internal/experiments"
	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/platform"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/training"
)

// Network describes a CNN as an ordered list of CONV layers.
type Network = models.Network

// ConvLayer is one convolutional layer shape.
type ConvLayer = models.ConvLayer

// StorageSummary is a Table-I row: per-network storage maxima.
type StorageSummary = models.StorageSummary

// Benchmark networks at 224×224×3 input.
func AlexNet() Network   { return models.AlexNet() }
func VGG() Network       { return models.VGG() }
func GoogLeNet() Network { return models.GoogLeNet() }
func ResNet() Network    { return models.ResNet() }

// Benchmarks returns the paper's four evaluation networks.
func Benchmarks() []Network { return models.Benchmarks() }

// HWConfig is an accelerator hardware configuration.
type HWConfig = hw.Config

// TestAccelerator returns the paper's 256-PE test accelerator (§III-A).
func TestAccelerator() HWConfig { return hw.TestAccelerator() }

// DaDianNaoNode returns the DaDianNao configuration of §V-C.
func DaDianNaoNode() HWConfig { return hw.DaDianNao() }

// Pattern is a computation pattern (ID, OD or WD).
type Pattern = pattern.Kind

// The three computation patterns of Fig. 10.
const (
	ID = pattern.ID
	OD = pattern.OD
	WD = pattern.WD
)

// Tiling holds the ⟨Tm, Tn, Tr, Tc⟩ tiling parameters.
type Tiling = pattern.Tiling

// Analysis is the analytical characterization of (layer, pattern, tiling).
type Analysis = pattern.Analysis

// Analyze characterizes one layer under a pattern and tiling. Invalid
// inputs (malformed layer or tiling, unknown pattern or array mapping)
// are reported as an error; MustAnalyze panics instead for inputs known
// valid by construction.
func Analyze(l ConvLayer, k Pattern, t Tiling, cfg HWConfig) (Analysis, error) {
	return pattern.Analyze(l, k, t, cfg)
}

// MustAnalyze is Analyze for known-valid inputs; it panics on error.
func MustAnalyze(l ConvLayer, k Pattern, t Tiling, cfg HWConfig) Analysis {
	return pattern.MustAnalyze(l, k, t, cfg)
}

// Breakdown is a system energy split (Eq. 14 components).
type Breakdown = energy.Breakdown

// BufferTech selects the on-chip buffer technology.
type BufferTech = energy.BufferTech

// Buffer technologies (Table II).
const (
	SRAMTech  = energy.SRAM
	EDRAMTech = energy.EDRAM
)

// Design is one design point of Table IV.
type Design = platform.Design

// The six Table IV design points.
func SID() Design        { return platform.SID() }
func EDID() Design       { return platform.EDID() }
func EDOD() Design       { return platform.EDOD() }
func RANA0() Design      { return platform.RANA0() }
func RANAE5() Design     { return platform.RANAE5() }
func RANAStarE5() Design { return platform.RANAStarE5() }

// Designs returns all Table IV design points in paper order.
func Designs() []Design { return platform.Designs() }

// Platform couples an accelerator with a retention distribution.
type Platform = platform.Platform

// Result is one (design, network) evaluation.
type Result = platform.Result

// TestPlatform returns the paper's evaluation platform.
func TestPlatform() *Platform { return platform.Test() }

// DaDianNaoPlatform returns the §V-C scalability platform.
func DaDianNaoPlatform() *Platform { return platform.DaDianNao() }

// Plan is a whole-network schedule with energy accounting.
type Plan = sched.Plan

// ScheduleOptions configures a scheduling run.
type ScheduleOptions = sched.Options

// Schedule plans a network on an accelerator.
func Schedule(net Network, cfg HWConfig, opts ScheduleOptions) (*Plan, error) {
	return sched.Schedule(net, cfg, opts)
}

// ScheduleContext is Schedule with cancellation: the per-layer loop
// observes ctx and aborts early with ctx.Err() wrapped with the layer
// reached. Framework.CompileContext is the equivalent seam for the full
// three-stage compilation.
func ScheduleContext(ctx context.Context, net Network, cfg HWConfig, opts ScheduleOptions) (*Plan, error) {
	return sched.ScheduleContext(ctx, net, cfg, opts)
}

// PlanJSON is the stable wire encoding of a compiled schedule — the
// format shared by the golden regression files, `rana-sched -json` and
// the ranad serving API.
type PlanJSON = sched.PlanJSON

// EncodePlan projects a plan onto its wire encoding.
func EncodePlan(p *Plan) PlanJSON { return sched.Encode(p) }

// Framework is the full three-stage RANA framework (Fig. 6).
type Framework = core.Framework

// CompileOutput is a compiled network: tolerable retention, layerwise
// configurations and energy estimate.
type CompileOutput = core.Output

// NewFramework returns RANA on the paper's evaluation platform.
func NewFramework() *Framework { return core.New() }

// RetentionDistribution models Fig. 8's failure-rate/retention curve.
type RetentionDistribution = retention.Distribution

// TypicalRetention returns the platform's retention distribution.
func TypicalRetention() *RetentionDistribution { return retention.Typical() }

// Retention anchors from the paper.
const (
	ConventionalRetentionTime = retention.TypicalRetentionTime
	TolerableRetentionTime    = retention.TolerableRetentionTime
	TolerableFailureRate      = retention.TolerableFailureRate
)

// TrainingMethod is the retention-aware training method (Fig. 9) bound to
// the synthetic demonstration dataset.
type TrainingMethod = training.Method

// TrainingConfig controls the demonstration training runs.
type TrainingConfig = training.Config

// NewTrainingMethod pretrains the demonstration CNN on n synthetic
// samples and returns the bound method.
func NewTrainingMethod(cfg TrainingConfig, n int) *TrainingMethod {
	return training.NewMethod(cfg, n)
}

// DefaultTrainingConfig returns the demonstration hyperparameters.
func DefaultTrainingConfig() TrainingConfig { return training.DefaultConfig() }

// RelativeAccuracy returns the calibrated Fig. 11 relative accuracy of a
// benchmark model at a retention failure rate.
func RelativeAccuracy(model string, rate float64) (float64, error) {
	return training.RelativeAccuracy(model, rate)
}

// Experiment is one regenerable paper artifact (table or figure).
type Experiment = experiments.Experiment

// Experiments returns every regenerable artifact.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID returns one artifact by ID (e.g. "fig15").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// RunExperiments prints every table and figure to w.
func RunExperiments(w io.Writer) error { return experiments.RunAll(w) }
