// Package dataset generates the deterministic synthetic image set used to
// demonstrate the retention-aware training method end to end. The paper
// retrains ImageNet models with Caffe; ImageNet and its training stack
// are out of scope here (DESIGN.md §2), so the mechanism — accuracy under
// bit-level retention failures, with and without failure-aware retraining
// — is exercised on a procedurally generated 4-class texture dataset that
// a small CNN learns in seconds.
package dataset

import (
	"fmt"

	"rana/internal/bits"
	"rana/internal/tensor"
)

// Size is the square image side; images are single-channel.
const Size = 12

// NumClasses is the label count.
const NumClasses = 4

// Class labels.
const (
	HorizontalStripes = iota
	VerticalStripes
	Checkerboard
	Blob
)

// ClassName returns a human-readable label name.
func ClassName(label int) string {
	switch label {
	case HorizontalStripes:
		return "horizontal-stripes"
	case VerticalStripes:
		return "vertical-stripes"
	case Checkerboard:
		return "checkerboard"
	case Blob:
		return "blob"
	default:
		return fmt.Sprintf("class-%d", label)
	}
}

// Sample is one labeled image: a (1, Size, Size) tensor in [-1, 1].
type Sample struct {
	Image *tensor.Tensor
	Label int
}

// Generate returns n deterministic samples with balanced labels. Each
// image is a class texture with a random phase/scale plus Gaussian noise,
// so the task is learnable but not trivial.
func Generate(n int, seed uint64) []Sample {
	rng := bits.NewSplitMix64(seed)
	out := make([]Sample, n)
	for i := range out {
		label := i % NumClasses
		out[i] = Sample{Image: render(label, rng), Label: label}
	}
	return out
}

// render draws one image of the class.
func render(label int, rng *bits.SplitMix64) *tensor.Tensor {
	img := tensor.New(1, Size, Size)
	period := 2 + rng.Intn(3)  // stripe/checker period
	phase := rng.Intn(period)  // translation
	cx := 2 + rng.Intn(Size-4) // blob center
	cy := 2 + rng.Intn(Size-4)
	radius := 2 + rng.Intn(3)
	for r := 0; r < Size; r++ {
		for c := 0; c < Size; c++ {
			v := -1.0
			switch label {
			case HorizontalStripes:
				if (r+phase)/period%2 == 0 {
					v = 1
				}
			case VerticalStripes:
				if (c+phase)/period%2 == 0 {
					v = 1
				}
			case Checkerboard:
				if ((r+phase)/period+(c+phase)/period)%2 == 0 {
					v = 1
				}
			case Blob:
				dr, dc := r-cx, c-cy
				if dr*dr+dc*dc <= radius*radius {
					v = 1
				}
			}
			v += rng.NormFloat64() * 0.15
			img.Set(clamp(v), 0, r, c)
		}
	}
	return img
}

func clamp(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < -1 {
		return -1
	}
	return v
}

// Split partitions samples into train and test sets at the given ratio.
func Split(samples []Sample, trainFrac float64) (train, test []Sample) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: train fraction %g outside (0,1)", trainFrac))
	}
	cut := int(float64(len(samples)) * trainFrac)
	return samples[:cut], samples[cut:]
}
