package dataset

import (
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(40, 7)
	b := Generate(40, 7)
	for i := range a {
		if a[i].Label != b[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range a[i].Image.Data {
			if a[i].Image.Data[j] != b[i].Image.Data[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
	c := Generate(40, 8)
	same := true
	for j := range a[0].Image.Data {
		if a[0].Image.Data[j] != c[0].Image.Data[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical images")
	}
}

func TestBalancedLabels(t *testing.T) {
	samples := Generate(100, 1)
	counts := make(map[int]int)
	for _, s := range samples {
		counts[s.Label]++
	}
	for l := 0; l < NumClasses; l++ {
		if counts[l] != 25 {
			t.Errorf("class %d count = %d", l, counts[l])
		}
	}
}

func TestImageRange(t *testing.T) {
	for _, s := range Generate(200, 2) {
		if s.Image.Dim(0) != 1 || s.Image.Dim(1) != Size || s.Image.Dim(2) != Size {
			t.Fatalf("image shape %v", s.Image.Shape())
		}
		for _, v := range s.Image.Data {
			if v < -1 || v > 1 {
				t.Fatalf("pixel %g out of range", v)
			}
		}
	}
}

func TestClassesAreDistinguishable(t *testing.T) {
	// Horizontal stripes vary along rows but not along columns (up to
	// noise); vertical stripes the opposite. Check mean row/col variance.
	samples := Generate(NumClasses*8, 3)
	for _, s := range samples {
		rv, cv := rowVar(s), colVar(s)
		switch s.Label {
		case HorizontalStripes:
			if rv < cv {
				t.Errorf("horizontal stripes: row variance %g < col variance %g", rv, cv)
			}
		case VerticalStripes:
			if cv < rv {
				t.Errorf("vertical stripes: col variance %g < row variance %g", cv, rv)
			}
		}
	}
}

// rowVar measures variance of per-row means (high for horizontal stripes).
func rowVar(s Sample) float64 {
	var means [Size]float64
	for r := 0; r < Size; r++ {
		for c := 0; c < Size; c++ {
			means[r] += s.Image.At(0, r, c)
		}
		means[r] /= Size
	}
	return variance(means[:])
}

func colVar(s Sample) float64 {
	var means [Size]float64
	for c := 0; c < Size; c++ {
		for r := 0; r < Size; r++ {
			means[c] += s.Image.At(0, r, c)
		}
		means[c] /= Size
	}
	return variance(means[:])
}

func variance(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		m += x
	}
	m /= float64(len(xs))
	v := 0.0
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return v / float64(len(xs))
}

func TestSplit(t *testing.T) {
	samples := Generate(100, 4)
	tr, te := Split(samples, 0.8)
	if len(tr) != 80 || len(te) != 20 {
		t.Errorf("split sizes %d/%d", len(tr), len(te))
	}
	defer func() {
		if recover() == nil {
			t.Error("bad fraction should panic")
		}
	}()
	Split(samples, 1.5)
}

func TestClassName(t *testing.T) {
	if ClassName(Blob) != "blob" || ClassName(99) != "class-99" {
		t.Error("ClassName")
	}
}
