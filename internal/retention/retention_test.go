package retention

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"rana/internal/bits"
)

func TestPaperAnchors(t *testing.T) {
	d := Typical()
	// The two load-bearing anchors of Fig. 8 / §IV-B: 45 µs at 3×10⁻⁶
	// (the conventional weakest-cell refresh point) and 734 µs at 10⁻⁵
	// (the tolerable retention time after retention-aware training).
	if got := d.FailureRate(TypicalRetentionTime); math.Abs(got-TypicalFailureRate)/TypicalFailureRate > 1e-9 {
		t.Errorf("rate(45µs) = %g, want %g", got, TypicalFailureRate)
	}
	if got := d.FailureRate(TolerableRetentionTime); math.Abs(got-TolerableFailureRate)/TolerableFailureRate > 1e-9 {
		t.Errorf("rate(734µs) = %g, want %g", got, TolerableFailureRate)
	}
	if got := d.RetentionTime(TolerableFailureRate); got != TolerableRetentionTime {
		t.Errorf("time(1e-5) = %v, want %v", got, TolerableRetentionTime)
	}
	if got := d.RetentionTime(TypicalFailureRate); got != TypicalRetentionTime {
		t.Errorf("time(3e-6) = %v, want %v", got, TypicalRetentionTime)
	}
}

func TestTolerable16xRelaxation(t *testing.T) {
	// §IV-B: the 10⁻⁵ point allows a ≈16x longer refresh interval.
	ratio := TolerableRetentionTime.Seconds() / TypicalRetentionTime.Seconds()
	if ratio < 15 || ratio > 17 {
		t.Errorf("relaxation = %.1fx, want ≈16x", ratio)
	}
}

func TestMonotonicity(t *testing.T) {
	d := Typical()
	prev := -1.0
	for _, a := range d.Curve(10*time.Microsecond, 100*time.Millisecond, 200) {
		if a.Rate < prev {
			t.Fatalf("failure rate decreased at %v: %g < %g", a.Time, a.Rate, prev)
		}
		prev = a.Rate
	}
}

func TestRoundTripProperty(t *testing.T) {
	d := Typical()
	f := func(u uint16) bool {
		// Rates spanning the anchor range.
		rate := math.Pow(10, -6+5.9*float64(u)/65535)
		rt := d.RetentionTime(rate)
		back := d.FailureRate(rt)
		// Within the anchor range the round trip is tight; at the clamped
		// edges it only needs to not exceed the requested rate... allow
		// 5% log-space slack for interpolation.
		return math.Abs(math.Log(back)-math.Log(rate)) < 0.05 ||
			rt == d.anchors[0].Time || rt == d.anchors[len(d.anchors)-1].Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClamping(t *testing.T) {
	d := Typical()
	if got := d.FailureRate(0); got != 0 {
		t.Errorf("rate(0) = %g", got)
	}
	if got := d.FailureRate(10 * time.Second); got != 1 {
		t.Errorf("rate(10s) = %g, want 1 (saturated)", got)
	}
	if got := d.RetentionTime(1e-12); got != d.anchors[0].Time {
		t.Errorf("time(1e-12) should clamp to first anchor, got %v", got)
	}
	if got := d.RetentionTime(2); got != d.anchors[len(d.anchors)-1].Time {
		t.Errorf("time(2) should clamp to last anchor, got %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	bad := [][]Anchor{
		nil,
		{{Time: time.Microsecond, Rate: 0.5}},
		{{Time: time.Microsecond, Rate: 0.5}, {Time: 2 * time.Microsecond, Rate: 0.5}},  // flat
		{{Time: time.Microsecond, Rate: 0.5}, {Time: 2 * time.Microsecond, Rate: 0.1}},  // decreasing
		{{Time: -time.Microsecond, Rate: 0.1}, {Time: 2 * time.Microsecond, Rate: 0.5}}, // negative time
		{{Time: time.Microsecond, Rate: 0}, {Time: 2 * time.Microsecond, Rate: 0.5}},    // zero rate
		{{Time: time.Microsecond, Rate: 0.1}, {Time: time.Microsecond, Rate: 0.5}},      // duplicate time
	}
	for i, as := range bad {
		if _, err := New(as); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New([]Anchor{{Time: time.Microsecond, Rate: 1e-6}, {Time: time.Second, Rate: 0.9}}); err != nil {
		t.Errorf("valid anchors rejected: %v", err)
	}
}

func TestSampleCellRetention(t *testing.T) {
	d := Typical()
	rng := bits.NewSplitMix64(5)
	// Sampled retention times follow the distribution: the empirical
	// fraction below the tolerable point should be tiny, and most mass
	// sits near the top anchors (inverse-transform of uniform u).
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		rt := d.SampleCellRetention(rng)
		if rt < d.anchors[0].Time || rt > d.anchors[len(d.anchors)-1].Time {
			t.Fatalf("sample %v outside anchor range", rt)
		}
		if rt <= 25*time.Millisecond { // the 1e-2 anchor
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-1e-2)/1e-2 > 0.3 {
		t.Errorf("fraction below 25ms = %g, want ≈1e-2", frac)
	}
}

func TestCurveEdgeCases(t *testing.T) {
	d := Typical()
	if d.Curve(0, time.Second, 10) != nil {
		t.Error("zero lo should return nil")
	}
	if d.Curve(time.Second, time.Millisecond, 10) != nil {
		t.Error("hi < lo should return nil")
	}
	if d.Curve(time.Microsecond, time.Second, 1) != nil {
		t.Error("n < 2 should return nil")
	}
	c := d.Curve(10*time.Microsecond, 100*time.Millisecond, 50)
	if len(c) != 50 {
		t.Fatalf("curve length %d", len(c))
	}
	if c[0].Time != 10*time.Microsecond {
		t.Errorf("curve start %v", c[0].Time)
	}
}

func TestAnchorsCopy(t *testing.T) {
	d := Typical()
	a := d.Anchors()
	a[0].Rate = 0.999
	if d.Anchors()[0].Rate == 0.999 {
		t.Error("Anchors must return a copy")
	}
}

// TestOutOfRangeQueries pins the extrapolation/clamping contract at
// both ends of the anchor range: below the first anchor FailureRate
// follows the first segment's log-log slope down (floored at 0) rather
// than clamping flat, and above the last anchor it saturates at exactly
// the last rate. RetentionTime mirrors it: rates outside the anchored
// band clamp to the extreme anchors' times.
func TestOutOfRangeQueries(t *testing.T) {
	d := Typical()
	first, last := d.anchors[0], d.anchors[len(d.anchors)-1]

	// Just below the first anchor: strictly below the first rate but
	// still positive (the slope extrapolation has not hit the floor).
	below := d.FailureRate(first.Time / 2)
	if below <= 0 || below >= first.Rate {
		t.Errorf("rate just below first anchor = %g, want in (0, %g)", below, first.Rate)
	}
	// Far below, the log-log extrapolation keeps shrinking monotonically
	// (it can never go negative — exp is positive — so the 0 floor only
	// fires on underflow).
	far := d.FailureRate(time.Nanosecond)
	if far <= 0 || far >= below {
		t.Errorf("rate(1ns) = %g, want in (0, %g)", far, below)
	}
	// The first anchor itself is on the extrapolated segment, so the
	// boundary is continuous.
	if got := d.FailureRate(first.Time); math.Abs(got-first.Rate)/first.Rate > 1e-9 {
		t.Errorf("rate at first anchor = %g, want %g", got, first.Rate)
	}
	// At and above the last anchor the rate saturates.
	for _, at := range []time.Duration{last.Time, last.Time + 1, 10 * last.Time} {
		if got := d.FailureRate(at); got != last.Rate {
			t.Errorf("rate(%v) = %g, want saturated %g", at, got, last.Rate)
		}
	}
	// RetentionTime clamps on both sides, including exactly at the
	// extreme rates.
	if got := d.RetentionTime(first.Rate); got != first.Time {
		t.Errorf("time at first rate = %v, want %v", got, first.Time)
	}
	if got := d.RetentionTime(last.Rate); got != last.Time {
		t.Errorf("time at last rate = %v, want %v", got, last.Time)
	}
	if got := d.RetentionTime(first.Rate / 10); got != first.Time {
		t.Errorf("time below first rate = %v, want clamp to %v", got, first.Time)
	}
	if got := d.RetentionTime(last.Rate * 2); got != last.Time {
		t.Errorf("time above last rate = %v, want clamp to %v", got, last.Time)
	}
}

// TestDuplicateTimeAnchorsRejected: two anchors on the same quantized
// time are rejected no matter how the rates are arranged — the log-log
// interpolation would divide by zero on a zero-width segment.
func TestDuplicateTimeAnchorsRejected(t *testing.T) {
	cases := [][]Anchor{
		{{Time: time.Microsecond, Rate: 0.1}, {Time: time.Microsecond, Rate: 0.5}},
		{{Time: time.Microsecond, Rate: 0.5}, {Time: time.Microsecond, Rate: 0.1}},
		{{Time: time.Microsecond, Rate: 0.1}, {Time: 2 * time.Microsecond, Rate: 0.2},
			{Time: 2 * time.Microsecond, Rate: 0.3}},
	}
	for i, as := range cases {
		if _, err := New(as); err == nil {
			t.Errorf("case %d: duplicate-time anchors accepted", i)
		}
	}
}

// TestScaled covers the reduced-voltage curve shift the approximate
// DRAM backend rides on: times scale, rates stay, the paper anchors
// move exactly, and degenerate factors are rejected.
func TestScaled(t *testing.T) {
	d := Typical()
	half, err := d.Scaled(0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := d.Anchors()
	got := half.Anchors()
	if len(got) != len(want) {
		t.Fatalf("anchor count %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Rate != want[i].Rate {
			t.Errorf("anchor %d rate changed: %g != %g", i, got[i].Rate, want[i].Rate)
		}
		if got[i].Time != time.Duration(float64(want[i].Time)*0.5) {
			t.Errorf("anchor %d time = %v, want %v halved", i, got[i].Time, want[i].Time)
		}
	}
	// The tolerable point shifts with the curve: at half scale the 1e-5
	// rate is reached at half the retention time.
	if rt := half.RetentionTime(TolerableFailureRate); rt != TolerableRetentionTime/2 {
		t.Errorf("scaled tolerable time = %v, want %v", rt, TolerableRetentionTime/2)
	}
	// Identity scale reproduces the curve bit for bit.
	one, err := d.Scaled(1)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range one.Anchors() {
		if a != want[i] {
			t.Errorf("identity scale moved anchor %d: %+v != %+v", i, a, want[i])
		}
	}
	for _, f := range []float64{0, -1, math.Inf(1), math.Inf(-1), math.NaN()} {
		if _, err := d.Scaled(f); err == nil {
			t.Errorf("Scaled(%g) accepted", f)
		}
	}
	// A factor small enough to quantize two anchors onto the same
	// nanosecond must surface as an error, not a corrupt distribution.
	tight, err := New([]Anchor{
		{Time: 10 * time.Nanosecond, Rate: 0.1},
		{Time: 11 * time.Nanosecond, Rate: 0.2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tight.Scaled(1e-3); err == nil {
		t.Error("collapsing scale accepted")
	}
}

// TestEmpiricalCDFMatchesAnalytic closes the Monte-Carlo loop: the
// empirical CDF of sampled cell retention times reproduces the analytic
// distribution at every decade the training method cares about.
func TestEmpiricalCDFMatchesAnalytic(t *testing.T) {
	d := Typical()
	rng := bits.NewSplitMix64(99)
	const n = 400000
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = d.SampleCellRetention(rng)
	}
	for _, at := range []time.Duration{
		2500 * time.Microsecond, // 1e-4 anchor
		8 * time.Millisecond,    // 1e-3 anchor
		25 * time.Millisecond,   // 1e-2 anchor
		80 * time.Millisecond,   // 1e-1 anchor
	} {
		want := d.FailureRate(at)
		below := 0
		for _, s := range samples {
			if s <= at {
				below++
			}
		}
		got := float64(below) / n
		// Binomial noise at n=400k: ±3σ ≈ ±0.5% absolute at p=0.01.
		tol := 4 * math.Sqrt(want*(1-want)/n)
		if math.Abs(got-want) > tol+1e-6 {
			t.Errorf("empirical CDF at %v = %.5f, analytic %.5f (tol %.5f)", at, got, want, tol)
		}
	}
}
