package retention

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"rana/internal/bits"
)

func TestPaperAnchors(t *testing.T) {
	d := Typical()
	// The two load-bearing anchors of Fig. 8 / §IV-B: 45 µs at 3×10⁻⁶
	// (the conventional weakest-cell refresh point) and 734 µs at 10⁻⁵
	// (the tolerable retention time after retention-aware training).
	if got := d.FailureRate(TypicalRetentionTime); math.Abs(got-TypicalFailureRate)/TypicalFailureRate > 1e-9 {
		t.Errorf("rate(45µs) = %g, want %g", got, TypicalFailureRate)
	}
	if got := d.FailureRate(TolerableRetentionTime); math.Abs(got-TolerableFailureRate)/TolerableFailureRate > 1e-9 {
		t.Errorf("rate(734µs) = %g, want %g", got, TolerableFailureRate)
	}
	if got := d.RetentionTime(TolerableFailureRate); got != TolerableRetentionTime {
		t.Errorf("time(1e-5) = %v, want %v", got, TolerableRetentionTime)
	}
	if got := d.RetentionTime(TypicalFailureRate); got != TypicalRetentionTime {
		t.Errorf("time(3e-6) = %v, want %v", got, TypicalRetentionTime)
	}
}

func TestTolerable16xRelaxation(t *testing.T) {
	// §IV-B: the 10⁻⁵ point allows a ≈16x longer refresh interval.
	ratio := TolerableRetentionTime.Seconds() / TypicalRetentionTime.Seconds()
	if ratio < 15 || ratio > 17 {
		t.Errorf("relaxation = %.1fx, want ≈16x", ratio)
	}
}

func TestMonotonicity(t *testing.T) {
	d := Typical()
	prev := -1.0
	for _, a := range d.Curve(10*time.Microsecond, 100*time.Millisecond, 200) {
		if a.Rate < prev {
			t.Fatalf("failure rate decreased at %v: %g < %g", a.Time, a.Rate, prev)
		}
		prev = a.Rate
	}
}

func TestRoundTripProperty(t *testing.T) {
	d := Typical()
	f := func(u uint16) bool {
		// Rates spanning the anchor range.
		rate := math.Pow(10, -6+5.9*float64(u)/65535)
		rt := d.RetentionTime(rate)
		back := d.FailureRate(rt)
		// Within the anchor range the round trip is tight; at the clamped
		// edges it only needs to not exceed the requested rate... allow
		// 5% log-space slack for interpolation.
		return math.Abs(math.Log(back)-math.Log(rate)) < 0.05 ||
			rt == d.anchors[0].Time || rt == d.anchors[len(d.anchors)-1].Time
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestClamping(t *testing.T) {
	d := Typical()
	if got := d.FailureRate(0); got != 0 {
		t.Errorf("rate(0) = %g", got)
	}
	if got := d.FailureRate(10 * time.Second); got != 1 {
		t.Errorf("rate(10s) = %g, want 1 (saturated)", got)
	}
	if got := d.RetentionTime(1e-12); got != d.anchors[0].Time {
		t.Errorf("time(1e-12) should clamp to first anchor, got %v", got)
	}
	if got := d.RetentionTime(2); got != d.anchors[len(d.anchors)-1].Time {
		t.Errorf("time(2) should clamp to last anchor, got %v", got)
	}
}

func TestNewValidation(t *testing.T) {
	bad := [][]Anchor{
		nil,
		{{Time: time.Microsecond, Rate: 0.5}},
		{{Time: time.Microsecond, Rate: 0.5}, {Time: 2 * time.Microsecond, Rate: 0.5}},  // flat
		{{Time: time.Microsecond, Rate: 0.5}, {Time: 2 * time.Microsecond, Rate: 0.1}},  // decreasing
		{{Time: -time.Microsecond, Rate: 0.1}, {Time: 2 * time.Microsecond, Rate: 0.5}}, // negative time
		{{Time: time.Microsecond, Rate: 0}, {Time: 2 * time.Microsecond, Rate: 0.5}},    // zero rate
		{{Time: time.Microsecond, Rate: 0.1}, {Time: time.Microsecond, Rate: 0.5}},      // duplicate time
	}
	for i, as := range bad {
		if _, err := New(as); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := New([]Anchor{{Time: time.Microsecond, Rate: 1e-6}, {Time: time.Second, Rate: 0.9}}); err != nil {
		t.Errorf("valid anchors rejected: %v", err)
	}
}

func TestSampleCellRetention(t *testing.T) {
	d := Typical()
	rng := bits.NewSplitMix64(5)
	// Sampled retention times follow the distribution: the empirical
	// fraction below the tolerable point should be tiny, and most mass
	// sits near the top anchors (inverse-transform of uniform u).
	const n = 100000
	below := 0
	for i := 0; i < n; i++ {
		rt := d.SampleCellRetention(rng)
		if rt < d.anchors[0].Time || rt > d.anchors[len(d.anchors)-1].Time {
			t.Fatalf("sample %v outside anchor range", rt)
		}
		if rt <= 25*time.Millisecond { // the 1e-2 anchor
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-1e-2)/1e-2 > 0.3 {
		t.Errorf("fraction below 25ms = %g, want ≈1e-2", frac)
	}
}

func TestCurveEdgeCases(t *testing.T) {
	d := Typical()
	if d.Curve(0, time.Second, 10) != nil {
		t.Error("zero lo should return nil")
	}
	if d.Curve(time.Second, time.Millisecond, 10) != nil {
		t.Error("hi < lo should return nil")
	}
	if d.Curve(time.Microsecond, time.Second, 1) != nil {
		t.Error("n < 2 should return nil")
	}
	c := d.Curve(10*time.Microsecond, 100*time.Millisecond, 50)
	if len(c) != 50 {
		t.Fatalf("curve length %d", len(c))
	}
	if c[0].Time != 10*time.Microsecond {
		t.Errorf("curve start %v", c[0].Time)
	}
}

func TestAnchorsCopy(t *testing.T) {
	d := Typical()
	a := d.Anchors()
	a[0].Rate = 0.999
	if d.Anchors()[0].Rate == 0.999 {
		t.Error("Anchors must return a copy")
	}
}

// TestEmpiricalCDFMatchesAnalytic closes the Monte-Carlo loop: the
// empirical CDF of sampled cell retention times reproduces the analytic
// distribution at every decade the training method cares about.
func TestEmpiricalCDFMatchesAnalytic(t *testing.T) {
	d := Typical()
	rng := bits.NewSplitMix64(99)
	const n = 400000
	samples := make([]time.Duration, n)
	for i := range samples {
		samples[i] = d.SampleCellRetention(rng)
	}
	for _, at := range []time.Duration{
		2500 * time.Microsecond, // 1e-4 anchor
		8 * time.Millisecond,    // 1e-3 anchor
		25 * time.Millisecond,   // 1e-2 anchor
		80 * time.Millisecond,   // 1e-1 anchor
	} {
		want := d.FailureRate(at)
		below := 0
		for _, s := range samples {
			if s <= at {
				below++
			}
		}
		got := float64(below) / n
		// Binomial noise at n=400k: ±3σ ≈ ±0.5% absolute at p=0.01.
		tol := 4 * math.Sqrt(want*(1-want)/n)
		if math.Abs(got-want) > tol+1e-6 {
			t.Errorf("empirical CDF at %v = %.5f, analytic %.5f (tol %.5f)", at, got, want, tol)
		}
	}
}
