// Package retention models the eDRAM retention-time distribution of
// Fig. 8 (after Kong et al., ITC 2008 [6]).
//
// The distribution maps a retention time t to the fraction of cells whose
// charge decays before t (the "retention failure rate"). Conventional
// eDRAM refreshes at the weakest cell's retention time — 45 µs at a
// failure rate of 3×10⁻⁶ in the paper — while RANA's retention-aware
// training tolerates a higher failure rate and therefore a longer
// interval: 734 µs at 10⁻⁵.
//
// The original measured distribution is not publicly available, so this
// package uses a monotonic piecewise-linear model in log(time)–log(rate)
// space anchored exactly at the two points the paper quotes and extended
// over the axis range of Fig. 8. Only those two anchors feed any number
// the paper reports (see DESIGN.md §4).
package retention

import (
	"fmt"
	"math"
	"sort"
	"time"

	"rana/internal/bits"
)

// Anchor is one (retention time, cumulative failure rate) point of the
// distribution curve.
type Anchor struct {
	Time time.Duration
	Rate float64
}

// Distribution is a monotonic retention-time distribution. The zero value
// is not usable; construct with New or Typical.
type Distribution struct {
	anchors []Anchor // sorted by Time, strictly increasing Rate
}

// TypicalRetentionTime is the weakest-cell retention time of the paper's
// eDRAM (45 µs, [6]) — the conventional refresh interval.
const TypicalRetentionTime = 45 * time.Microsecond

// TypicalFailureRate is the cell failure rate at the weakest-cell point.
const TypicalFailureRate = 3e-6

// TolerableRetentionTime is the retention time at the 10⁻⁵ failure rate,
// which the retention-aware training method tolerates with no accuracy
// loss (§IV-B): 734 µs — a ~16x longer refresh interval.
const TolerableRetentionTime = 734 * time.Microsecond

// TolerableFailureRate is the failure rate the trained networks tolerate
// with no accuracy loss (Fig. 11).
const TolerableFailureRate = 1e-5

// Typical returns the distribution used by the evaluation platform:
// anchored at the two points quoted in the paper and extended
// monotonically across the Fig. 8 axis range (10⁻⁵ s .. 10⁻¹ s on X,
// 10⁻⁶ .. 1 on Y).
func Typical() *Distribution {
	d, err := New([]Anchor{
		{10 * time.Microsecond, 1e-6},
		{TypicalRetentionTime, TypicalFailureRate},
		{TolerableRetentionTime, TolerableFailureRate},
		{2500 * time.Microsecond, 1e-4},
		{8 * time.Millisecond, 1e-3},
		{25 * time.Millisecond, 1e-2},
		{80 * time.Millisecond, 1e-1},
		{100 * time.Millisecond, 1},
	})
	if err != nil {
		panic("retention: invalid built-in distribution: " + err.Error())
	}
	return d
}

// New builds a distribution from anchors. Anchors must have positive
// times and rates in (0, 1], and after sorting by time the rates must be
// strictly increasing (a CDF).
func New(anchors []Anchor) (*Distribution, error) {
	if len(anchors) < 2 {
		return nil, fmt.Errorf("retention: need at least 2 anchors, got %d", len(anchors))
	}
	as := make([]Anchor, len(anchors))
	copy(as, anchors)
	sort.Slice(as, func(i, j int) bool { return as[i].Time < as[j].Time })
	for i, a := range as {
		if a.Time <= 0 {
			return nil, fmt.Errorf("retention: anchor %d has non-positive time %v", i, a.Time)
		}
		if a.Rate <= 0 || a.Rate > 1 {
			return nil, fmt.Errorf("retention: anchor %d has rate %g outside (0, 1]", i, a.Rate)
		}
		if i > 0 && (a.Rate <= as[i-1].Rate || a.Time == as[i-1].Time) {
			return nil, fmt.Errorf("retention: anchors must be strictly increasing, anchor %d violates", i)
		}
	}
	return &Distribution{anchors: as}, nil
}

// FailureRate returns the fraction of cells whose retention time is no
// more than t. Below the first anchor the rate is clamped to the first
// anchor's rate scaled down along the first segment's slope; above the
// last anchor it saturates at 1.
func (d *Distribution) FailureRate(t time.Duration) float64 {
	lt := math.Log(t.Seconds())
	n := len(d.anchors)
	if t <= 0 {
		return 0
	}
	if t <= d.anchors[0].Time {
		// Extrapolate the first segment's slope downward, floored at 0.
		r := d.interp(lt, 0)
		if r < 0 {
			return 0
		}
		return r
	}
	if t >= d.anchors[n-1].Time {
		return d.anchors[n-1].Rate
	}
	i := sort.Search(n, func(i int) bool { return d.anchors[i].Time >= t }) - 1
	return d.interp(lt, i)
}

// interp evaluates the log-log segment starting at anchor i.
func (d *Distribution) interp(lt float64, i int) float64 {
	a, b := d.anchors[i], d.anchors[i+1]
	la, lb := math.Log(a.Time.Seconds()), math.Log(b.Time.Seconds())
	ra, rb := math.Log(a.Rate), math.Log(b.Rate)
	frac := (lt - la) / (lb - la)
	return math.Exp(ra + frac*(rb-ra))
}

// RetentionTime returns the longest retention time whose failure rate does
// not exceed rate — the "tolerable retention time" Stage 1 derives from a
// tolerable failure rate (Fig. 6, arrow 1→2). The result is clamped to
// the anchor range.
func (d *Distribution) RetentionTime(rate float64) time.Duration {
	n := len(d.anchors)
	if rate <= d.anchors[0].Rate {
		return d.anchors[0].Time
	}
	if rate >= d.anchors[n-1].Rate {
		return d.anchors[n-1].Time
	}
	i := sort.Search(n, func(i int) bool { return d.anchors[i].Rate >= rate }) - 1
	a, b := d.anchors[i], d.anchors[i+1]
	la, lb := math.Log(a.Time.Seconds()), math.Log(b.Time.Seconds())
	ra, rb := math.Log(a.Rate), math.Log(b.Rate)
	frac := (math.Log(rate) - ra) / (rb - ra)
	sec := math.Exp(la + frac*(lb-la))
	return time.Duration(sec * float64(time.Second))
}

// Scaled returns a new distribution with every anchor's retention time
// multiplied by factor, rates unchanged — the first-order model of how
// reduced supply voltage shifts the whole retention curve left (EDEN,
// MICRO 2019: cells leak from a lower charge, so every cell's retention
// shrinks by roughly the same factor while the cell-to-cell variation
// that shapes the CDF stays). The factor must be positive; scaling can
// fail if two anchors collapse onto the same quantized time.
func (d *Distribution) Scaled(factor float64) (*Distribution, error) {
	if factor <= 0 || math.IsInf(factor, 0) || math.IsNaN(factor) {
		return nil, fmt.Errorf("retention: invalid scale factor %g", factor)
	}
	as := make([]Anchor, len(d.anchors))
	for i, a := range d.anchors {
		as[i] = Anchor{Time: time.Duration(float64(a.Time) * factor), Rate: a.Rate}
	}
	return New(as)
}

// Anchors returns a copy of the distribution's anchor points, sorted by
// time. Experiment code uses this to print the Fig. 8 series.
func (d *Distribution) Anchors() []Anchor {
	out := make([]Anchor, len(d.anchors))
	copy(out, d.anchors)
	return out
}

// SampleCellRetention draws one cell's retention time from the
// distribution by inverse-transform sampling. The eDRAM bank model uses
// this to populate per-cell retention times for error injection.
func (d *Distribution) SampleCellRetention(rng *bits.SplitMix64) time.Duration {
	u := rng.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return d.RetentionTime(u)
}

// Curve samples the distribution at n log-spaced times between lo and hi,
// inclusive, returning (time, rate) pairs. Used to regenerate Fig. 8.
func (d *Distribution) Curve(lo, hi time.Duration, n int) []Anchor {
	if n < 2 || lo <= 0 || hi <= lo {
		return nil
	}
	out := make([]Anchor, 0, n)
	llo, lhi := math.Log(lo.Seconds()), math.Log(hi.Seconds())
	for i := 0; i < n; i++ {
		ls := llo + float64(i)/float64(n-1)*(lhi-llo)
		t := time.Duration(math.Exp(ls) * float64(time.Second))
		out = append(out, Anchor{Time: t, Rate: d.FailureRate(t)})
	}
	return out
}
