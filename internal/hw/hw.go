// Package hw describes accelerator hardware configurations: the PE array,
// core local storage, the unified on-chip buffer, and the clock. Two
// built-in configurations reproduce the paper's platforms — the 256-PE
// test accelerator of §III-A and the DaDianNao node of §V-C.
package hw

import (
	"fmt"

	"rana/internal/energy"
)

// Mapping selects how the PE array spatially unrolls the convolution
// loops — which tiling parameters are parallel (spatial) and which are
// temporal. It determines the per-tile cycle count and therefore η.
type Mapping int

const (
	// MapOutputPixel is the Envision-style mapping of the test
	// accelerator (§III-A): ArrayM rows share inputs to compute ArrayM
	// output channels in parallel while ArrayN columns compute output
	// pixels of the Tr×Tc tile in parallel; Tn and K² are temporal.
	// This reproduces the paper's observation that halving Tn halves
	// the OD lifetime (1290 µs → 645 µs on Layer-B, §IV-C1).
	MapOutputPixel Mapping = iota
	// MapOutputInput is the DaDianNao-style mapping (§V-C): ArrayM
	// output × ArrayN input channels in parallel via adder trees;
	// Tr, Tc and K² are temporal.
	MapOutputInput
)

// String implements fmt.Stringer.
func (m Mapping) String() string {
	switch m {
	case MapOutputPixel:
		return "output×pixel"
	case MapOutputInput:
		return "output×input"
	default:
		return fmt.Sprintf("Mapping(%d)", int(m))
	}
}

// Config is one accelerator hardware configuration. All storage sizes are
// in 16-bit words.
type Config struct {
	// Name identifies the configuration in reports.
	Name string

	// ArrayM × ArrayN is the PE array: ArrayM output-channel lanes and
	// ArrayN secondary lanes (output pixels under MapOutputPixel, input
	// channels under MapOutputInput). The total MAC count is
	// ArrayM·ArrayN.
	ArrayM, ArrayN int

	// Mapping is the array's spatial loop unrolling.
	Mapping Mapping

	// FrequencyHz is the working clock frequency.
	FrequencyHz float64

	// LocalInput, LocalOutput, LocalWeight are the core's local storage
	// capacities Ri, Ro, Rw in words — the tiling constraints of Fig. 13:
	// Tn·Th·Tl ≤ Ri, Tm·Tr·Tc ≤ Ro, Tm·Tn·K² ≤ Rw.
	LocalInput, LocalOutput, LocalWeight int

	// BufferWords is the unified on-chip buffer capacity in words.
	BufferWords uint64

	// BufferTech selects SRAM or eDRAM buffers.
	BufferTech energy.BufferTech

	// BankWords is the refresh granularity: one eDRAM bank (32 KB ⇒
	// 16384 words in the paper's technology).
	BankWords int
}

// PEs returns the total multiply-accumulator count.
func (c Config) PEs() int { return c.ArrayM * c.ArrayN }

// Banks returns the number of buffer banks, rounding up so the last
// partial bank still exists (and must be refreshed by a conventional
// controller).
func (c Config) Banks() int {
	return int((c.BufferWords + uint64(c.BankWords) - 1) / uint64(c.BankWords))
}

// WithBufferWords returns a copy of the configuration with a different
// buffer capacity — used by the Fig. 18 capacity sweep.
func (c Config) WithBufferWords(words uint64) Config {
	c.BufferWords = words
	return c
}

// WithBufferTech returns a copy with a different buffer technology.
func (c Config) WithBufferTech(t energy.BufferTech) Config {
	c.BufferTech = t
	return c
}

// Validate reports structural problems with the configuration.
func (c Config) Validate() error {
	switch {
	case c.ArrayM <= 0 || c.ArrayN <= 0:
		return fmt.Errorf("hw: %s: non-positive PE array %dx%d", c.Name, c.ArrayM, c.ArrayN)
	case c.FrequencyHz <= 0:
		return fmt.Errorf("hw: %s: non-positive frequency %g", c.Name, c.FrequencyHz)
	case c.LocalInput <= 0 || c.LocalOutput <= 0 || c.LocalWeight <= 0:
		return fmt.Errorf("hw: %s: non-positive local storage", c.Name)
	case c.BufferWords == 0:
		return fmt.Errorf("hw: %s: zero buffer capacity", c.Name)
	case c.BankWords <= 0:
		return fmt.Errorf("hw: %s: non-positive bank size", c.Name)
	case c.Mapping != MapOutputPixel && c.Mapping != MapOutputInput:
		return fmt.Errorf("hw: %s: unknown array mapping %d", c.Name, int(c.Mapping))
	}
	return nil
}

// Paper buffer capacities. The paper reports sizes in its MB unit
// (KB = 1024 B, MB = 1000 KB; see internal/models).
const (
	// TestSRAMWords is the SRAM-based test accelerator's 384 KB buffer.
	TestSRAMWords = 384 * 1024 / 2
	// TestEDRAMWords is the equal-area eDRAM capacity: 1.454 MB.
	TestEDRAMWords = 1454 * 1024 / 2
	// DaDianNaoWords is DaDianNao's 36 MB on-chip eDRAM.
	DaDianNaoWords = 36 * 1000 * 1024 / 2
)

// TestAccelerator returns the paper's test CNN accelerator (§III-A):
// 256 PEs in a 16×16 array at 200 MHz, 36 KB core local storage, and a
// 384 KB SRAM unified buffer (the S+ID baseline). Use WithBufferTech /
// WithBufferWords for the eDRAM variants.
//
// The 36 KB local storage split (16 KB inputs, 4 KB outputs, 16 KB
// weights) is our allocation — the paper gives only the 36 KB total — and
// is sized so the running cases' tilings (Tm=Tn=16, Tr=1, Tc=16) fit for
// every kernel size the benchmarks use (up to 5×5 at full 16×16 tiles),
// with room for the scheduler to explore.
func TestAccelerator() Config {
	return Config{
		Name:        "test-accelerator",
		ArrayM:      16,
		ArrayN:      16,
		FrequencyHz: 200e6,
		LocalInput:  8192, // 16 KB
		LocalOutput: 2048, // 4 KB
		LocalWeight: 8192, // 16 KB
		BufferWords: TestSRAMWords,
		BufferTech:  energy.SRAM,
		BankWords:   energy.BankWords,
	}
}

// TestAcceleratorEDRAM returns the eDRAM-buffered variant at equal area:
// 1.454 MB of eDRAM instead of 384 KB of SRAM.
func TestAcceleratorEDRAM() Config {
	c := TestAccelerator()
	c.BufferWords = TestEDRAMWords
	c.BufferTech = energy.EDRAM
	return c
}

// DaDianNao returns one DaDianNao node as modeled in §V-C: 4096 PEs in a
// 64×64 organization with fixed tiling Tm=Tn=64, Tr=Tc=1, 36 MB of
// on-chip eDRAM, at 606 MHz. Local storage is sized to hold one
// 64×64 weight tile at the largest kernel the benchmarks use (11×11 in
// AlexNet's conv1).
func DaDianNao() Config {
	return Config{
		Name:        "dadiannao",
		ArrayM:      64,
		ArrayN:      64,
		Mapping:     MapOutputInput,
		FrequencyHz: 606e6,
		LocalInput:  16384,
		LocalOutput: 16384,
		LocalWeight: 64 * 64 * 121,
		BufferWords: DaDianNaoWords,
		BufferTech:  energy.EDRAM,
		BankWords:   energy.BankWords,
	}
}

// EyerissLike returns a third validation platform beyond the paper's two:
// a small Eyeriss-class spatial accelerator (168 PEs in a 12×14 array at
// 200 MHz) refitted with eDRAM buffers. The paper argues RANA "can be
// applied to current CNN hardware architectures" (§IV-A, §VI); the ext4
// experiment checks that the design-point ordering survives on this very
// different geometry.
func EyerissLike() Config {
	return Config{
		Name:        "eyeriss-like",
		ArrayM:      12,
		ArrayN:      14,
		Mapping:     MapOutputPixel,
		FrequencyHz: 200e6,
		LocalInput:  6144, // 12 KB
		LocalOutput: 1536, // 3 KB
		LocalWeight: 6144, // 12 KB
		// 424 KB of eDRAM: the area of Eyeriss's 108 KB SRAM buffer.
		BufferWords: 424 * 1024 / 2,
		BufferTech:  energy.EDRAM,
		BankWords:   energy.BankWords,
	}
}
