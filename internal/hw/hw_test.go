package hw

import (
	"testing"

	"rana/internal/energy"
)

func TestTestAccelerator(t *testing.T) {
	c := TestAccelerator()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// §III-A: 256 PEs in a 16×16 array at 200 MHz, 36 KB local storage,
	// 384 KB SRAM buffer.
	if c.PEs() != 256 {
		t.Errorf("PEs = %d", c.PEs())
	}
	if c.FrequencyHz != 200e6 {
		t.Errorf("frequency = %g", c.FrequencyHz)
	}
	localKB := (c.LocalInput + c.LocalOutput + c.LocalWeight) * 2 / 1024
	if localKB != 36 {
		t.Errorf("local storage = %d KB, want 36", localKB)
	}
	if c.BufferWords != 384*1024/2 || c.BufferTech != energy.SRAM {
		t.Errorf("buffer = %d words %v", c.BufferWords, c.BufferTech)
	}
	if c.Banks() != 12 {
		t.Errorf("banks = %d, want 12 (384 KB / 32 KB)", c.Banks())
	}
}

func TestTestAcceleratorEDRAM(t *testing.T) {
	c := TestAcceleratorEDRAM()
	if c.BufferTech != energy.EDRAM {
		t.Error("tech")
	}
	// 1.454 paper-MB = 1454 KiB.
	if c.BufferWords != 1454*1024/2 {
		t.Errorf("capacity = %d words", c.BufferWords)
	}
	// Partial last bank still exists for conventional refresh.
	if c.Banks() != 46 {
		t.Errorf("banks = %d, want 46", c.Banks())
	}
}

func TestDaDianNao(t *testing.T) {
	c := DaDianNao()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// §V-C: 4096 PEs, 36 MB eDRAM, 606 MHz, adder-tree mapping.
	if c.PEs() != 4096 || c.FrequencyHz != 606e6 {
		t.Errorf("PEs=%d f=%g", c.PEs(), c.FrequencyHz)
	}
	if c.Mapping != MapOutputInput {
		t.Error("DaDianNao maps output×input channels")
	}
	if c.BufferTech != energy.EDRAM {
		t.Error("tech")
	}
}

func TestWithers(t *testing.T) {
	c := TestAccelerator()
	d := c.WithBufferWords(123).WithBufferTech(energy.EDRAM)
	if d.BufferWords != 123 || d.BufferTech != energy.EDRAM {
		t.Error("withers did not apply")
	}
	if c.BufferWords == 123 {
		t.Error("withers mutated the receiver")
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []func(Config) Config{
		func(c Config) Config { c.ArrayM = 0; return c },
		func(c Config) Config { c.FrequencyHz = -1; return c },
		func(c Config) Config { c.LocalInput = 0; return c },
		func(c Config) Config { c.BufferWords = 0; return c },
		func(c Config) Config { c.BankWords = 0; return c },
	}
	for i, mut := range bad {
		if err := mut(TestAccelerator()).Validate(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMappingString(t *testing.T) {
	if MapOutputPixel.String() != "output×pixel" || MapOutputInput.String() != "output×input" {
		t.Error("mapping strings")
	}
	if Mapping(9).String() == "" {
		t.Error("unknown mapping should stringify")
	}
}

func TestBanksRoundsUp(t *testing.T) {
	c := TestAccelerator().WithBufferWords(energy.BankWords + 1)
	if c.Banks() != 2 {
		t.Errorf("banks = %d, want 2", c.Banks())
	}
}

func TestEyerissLike(t *testing.T) {
	c := EyerissLike()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.PEs() != 168 || c.Mapping != MapOutputPixel {
		t.Errorf("PEs=%d mapping=%v", c.PEs(), c.Mapping)
	}
	if c.BufferTech != energy.EDRAM {
		t.Error("tech")
	}
}
