package platform

import (
	"math"
	"testing"
	"time"

	"rana/internal/energy"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
)

func TestTableIVDesigns(t *testing.T) {
	ds := Designs()
	names := []string{"S+ID", "eD+ID", "eD+OD", "RANA (0)", "RANA (E-5)", "RANA*(E-5)"}
	if len(ds) != len(names) {
		t.Fatalf("%d designs", len(ds))
	}
	dist := retention.Typical()
	for i, d := range ds {
		if d.Name != names[i] {
			t.Errorf("design %d = %q, want %q", i, d.Name, names[i])
		}
		switch d.Name {
		case "S+ID":
			if d.Tech != energy.SRAM || d.Controller() != nil {
				t.Error("S+ID should be SRAM without a controller")
			}
		case "eD+ID", "eD+OD", "RANA (0)":
			if d.Interval(dist) != retention.TypicalRetentionTime {
				t.Errorf("%s interval = %v, want 45µs", d.Name, d.Interval(dist))
			}
		case "RANA (E-5)", "RANA (E-5)x":
			if d.Interval(dist) != retention.TolerableRetentionTime {
				t.Errorf("%s interval = %v, want 734µs", d.Name, d.Interval(dist))
			}
		case "RANA*(E-5)":
			if !d.Optimized {
				t.Error("RANA* should use the optimized controller")
			}
			if d.Controller().Name() != "Optimized" {
				t.Error("controller name")
			}
		}
	}
	if _, ok := DesignByName("RANA (E-5)"); !ok {
		t.Error("DesignByName")
	}
	if _, ok := DesignByName("nope"); ok {
		t.Error("DesignByName false positive")
	}
}

// evalAll caches the full Table IV × benchmarks evaluation for the
// shape assertions below.
var evalAll = func() [][]Result {
	p := Test()
	res, err := p.EvaluateAll(Designs(), models.Benchmarks())
	if err != nil {
		panic(err)
	}
	return res
}()

func totals(di int) []float64 {
	out := make([]float64, len(evalAll[di]))
	for j, r := range evalAll[di] {
		out[j] = r.Energy().Total()
	}
	return out
}

func geoRel(di, base int) float64 {
	num, den := totals(di), totals(base)
	g := 1.0
	for j := range num {
		g *= num[j] / den[j]
	}
	return math.Pow(g, 1/float64(len(num)))
}

// TestFig15Shape asserts the headline ordering of Fig. 15: refresh makes
// eD+ID costlier than S+ID on average; each RANA stage improves on the
// previous design; RANA*(E-5) lands far below the SRAM baseline.
func TestFig15Shape(t *testing.T) {
	const sid, edid, edod, rana0, ranae5, ranastar = 0, 1, 2, 3, 4, 5
	if geoRel(edid, sid) <= 1 {
		t.Errorf("eD+ID should cost more than S+ID on average (refresh), got %.3f", geoRel(edid, sid))
	}
	if !(geoRel(edod, sid) < geoRel(edid, sid)) {
		t.Error("eD+OD should improve on eD+ID")
	}
	if !(geoRel(rana0, sid) < geoRel(edod, sid)) {
		t.Error("RANA (0) should improve on eD+OD")
	}
	if !(geoRel(ranae5, sid) < geoRel(rana0, sid)) {
		t.Error("RANA (E-5) should improve on RANA (0)")
	}
	if geoRel(ranastar, sid) > geoRel(ranae5, sid)+1e-9 {
		t.Error("RANA*(E-5) should not regress from RANA (E-5)")
	}
	// Headline: large system-energy saving vs the SRAM baseline
	// (paper: 66.2%; the reproduction lands in the same regime).
	saving := 1 - geoRel(ranastar, sid)
	if saving < 0.4 {
		t.Errorf("RANA*(E-5) saves only %.1f%% vs S+ID, want ≥40%%", saving*100)
	}
}

// TestAlexNetEDIDPenalty reproduces §V-B1's sharpest single number: on
// AlexNet — small, no extra off-chip access — eD+ID costs ≈2.3× S+ID
// because refresh dominates.
func TestAlexNetEDIDPenalty(t *testing.T) {
	sid := evalAll[0][0].Energy().Total()
	edid := evalAll[1][0].Energy().Total()
	ratio := edid / sid
	if ratio < 1.8 || ratio > 2.8 {
		t.Errorf("AlexNet eD+ID/S+ID = %.2f, paper reports ≈2.3", ratio)
	}
	// And its off-chip energy is unchanged (no extra access to remove).
	if math.Abs(evalAll[1][0].Energy().OffChip-evalAll[0][0].Energy().OffChip) > 1e-6 {
		t.Error("AlexNet off-chip access should be identical for S+ID and eD+ID")
	}
}

// TestRefreshRemoval reproduces the refresh-operation claims: RANA (E-5)
// removes ≈98.5% of RANA (0)'s refreshes; RANA*(E-5) removes ≈99.7% of
// eD+ID's.
func TestRefreshRemoval(t *testing.T) {
	refreshOps := func(di int) uint64 {
		var sum uint64
		for _, r := range evalAll[di] {
			sum += r.Plan.Totals.Refreshes
		}
		return sum
	}
	edid, rana0 := refreshOps(1), refreshOps(3)
	ranae5, ranastar := refreshOps(4), refreshOps(5)
	if rana0 == 0 || edid == 0 {
		t.Fatal("baselines should refresh")
	}
	if frac := 1 - float64(ranae5)/float64(rana0); frac < 0.9 {
		t.Errorf("RANA (E-5) removes %.1f%% of RANA (0) refreshes, want ≳98%%", frac*100)
	}
	// Paper: 99.7%; the reproduction measures ≈98.9%.
	if frac := 1 - float64(ranastar)/float64(edid); frac < 0.98 {
		t.Errorf("RANA*(E-5) removes %.1f%% of eD+ID refreshes, want ≳98%%", frac*100)
	}
}

// TestOffChipSaving reproduces the 41.7% off-chip claim's shape.
func TestOffChipSaving(t *testing.T) {
	sum := 0.0
	for j := range models.Benchmarks() {
		sid := evalAll[0][j].Energy().OffChip
		star := evalAll[5][j].Energy().OffChip
		sum += 1 - star/sid
	}
	avg := sum / 4
	if avg < 0.25 || avg > 0.6 {
		t.Errorf("average off-chip saving = %.1f%%, paper reports 41.7%%", avg*100)
	}
}

// TestFig16Trend: accelerator energy falls as retention time grows, and
// eD+OD benefits faster than eD+ID (§V-B2).
func TestFig16Trend(t *testing.T) {
	p := Test()
	net := models.ResNet()
	accel := func(d Design, rt time.Duration) float64 {
		r, err := p.Evaluate(d.WithInterval(rt), net)
		if err != nil {
			t.Fatal(err)
		}
		return r.Energy().AcceleratorEnergy()
	}
	rts := []time.Duration{45 * time.Microsecond, 180 * time.Microsecond, 720 * time.Microsecond}
	prevID, prevOD := math.Inf(1), math.Inf(1)
	for _, rt := range rts {
		id, od := accel(EDID(), rt), accel(EDOD(), rt)
		if id > prevID+1e-9 || od > prevOD+1e-9 {
			t.Errorf("accelerator energy increased with retention time at %v", rt)
		}
		prevID, prevOD = id, od
		if od > id {
			t.Errorf("eD+OD accelerator energy above eD+ID at %v", rt)
		}
	}
}

// TestFig18Controllers: at large capacities the conventional controller's
// refresh grows with capacity while the optimized controller's does not.
func TestFig18Controllers(t *testing.T) {
	p := Test()
	net := models.AlexNet()
	base := RANAE5()
	star := RANAStarE5()
	small := uint64(hw8())
	big := small * 8
	refreshAt := func(d Design, words uint64) float64 {
		r, err := p.Evaluate(d.WithBufferWords(words), net)
		if err != nil {
			t.Fatal(err)
		}
		return r.Energy().Refresh
	}
	convSmall, convBig := refreshAt(base, small), refreshAt(base, big)
	optSmall, optBig := refreshAt(star, small), refreshAt(star, big)
	if convBig < convSmall {
		t.Errorf("conventional refresh should grow with capacity: %.3e -> %.3e", convSmall, convBig)
	}
	if optBig > optSmall+1e-9 {
		t.Errorf("optimized refresh should not grow with capacity: %.3e -> %.3e", optSmall, optBig)
	}
	if optBig > convBig {
		t.Error("optimized refresh exceeds conventional")
	}
}

// hw8 returns the 1.454 MB capacity in words (avoiding an hw import cycle
// in test helpers).
func hw8() int { return 1454 * 1024 / 2 }

// TestDaDianNaoStudy reproduces the §V-C shape: the hybrid pattern
// removes ≈97% of buffer-access energy, RANA*(E-5) saves most of the
// system energy, and off-chip access is unchanged across variants.
func TestDaDianNaoStudy(t *testing.T) {
	p := DaDianNao()
	net := models.GoogLeNet()
	ds := DaDianNaoDesigns()
	if len(ds) != 4 || ds[0].Name != "DaDianNao" {
		t.Fatalf("designs = %v", ds)
	}
	var res []Result
	for _, d := range ds {
		r, err := p.EvaluateFixedTiling(d, net, DaDianNaoTiling())
		if err != nil {
			t.Fatal(err)
		}
		res = append(res, r)
	}
	base := res[0].Energy()
	r0 := res[1].Energy()
	star := res[3].Energy()
	if sav := 1 - r0.BufferAccess/base.BufferAccess; sav < 0.9 {
		t.Errorf("hybrid buffer-access saving = %.1f%%, paper reports 97.2%%", sav*100)
	}
	if sav := 1 - star.Total()/base.Total(); sav < 0.5 {
		t.Errorf("RANA* system saving = %.1f%%, paper reports 69.4%%", sav*100)
	}
	for i := 1; i < 4; i++ {
		if math.Abs(res[i].Energy().OffChip-base.OffChip) > 1e-6 {
			t.Errorf("design %d changed off-chip energy; §V-C reports no reduction", i)
		}
	}
	// Baseline DaDianNao only uses WD.
	for _, lp := range res[0].Plan.Layers {
		if lp.Analysis.Pattern != pattern.WD {
			t.Fatal("DaDianNao baseline must schedule WD everywhere")
		}
	}
}

func TestDesignWithers(t *testing.T) {
	d := RANAE5().WithBufferWords(100).WithInterval(time.Millisecond)
	if d.BufferWords != 100 || d.RefreshInterval != time.Millisecond {
		t.Error("withers")
	}
	if d.Interval(retention.Typical()) != time.Millisecond {
		t.Error("pinned interval should win")
	}
}

func TestEvaluateErrors(t *testing.T) {
	p := Test()
	if _, err := p.Evaluate(SID(), models.Network{Name: "empty"}); err == nil {
		t.Error("empty network should fail")
	}
}

// TestOptimizedCapacityMonotonicity: under the refresh-optimized
// controller, more buffer capacity essentially never increases total
// energy — unused banks are free. A 0.2% tolerance absorbs the one real
// second-order effect: at small capacities the bank allocator caps
// on-chip residency, so slightly less data is there to refresh (the
// spilled remainder is charged as DDR traffic instead). The conventional
// controller deliberately violates monotonicity; that contrast is Fig. 18.
func TestOptimizedCapacityMonotonicity(t *testing.T) {
	p := Test()
	for _, net := range []string{"AlexNet", "GoogLeNet"} {
		n, _ := models.ByName(net)
		prev := math.Inf(1)
		for _, mult := range []uint64{1, 2, 4, 8, 16} {
			cap := uint64(hw8()) / 4 * mult
			r, err := p.Evaluate(RANAStarE5().WithBufferWords(cap), n)
			if err != nil {
				t.Fatal(err)
			}
			total := r.Energy().Total()
			if total > prev*1.002 {
				t.Errorf("%s: energy rose with capacity at %d words: %.4e > %.4e", net, cap, total, prev)
			}
			if total < prev {
				prev = total
			}
		}
	}
}

// TestChosenTilingsFitCore: every scheduled tiling satisfies the core
// local-storage constraints of Fig. 13.
func TestChosenTilingsFitCore(t *testing.T) {
	p := Test()
	for _, d := range Designs() {
		for _, n := range models.Benchmarks() {
			r, err := p.Evaluate(d, n)
			if err != nil {
				t.Fatal(err)
			}
			cfg := d.Apply(p.Base)
			for i, lp := range r.Plan.Layers {
				l := n.Layers[i]
				eff := l
				if g := l.Groups; g > 1 {
					eff.N /= g
					eff.M /= g
					eff.Groups = 1
				}
				if !lp.Analysis.Tiling.FitsCore(eff, cfg) {
					t.Errorf("%s/%s/%s: tiling %v violates core constraints",
						d.Name, n.Name, l.Name, lp.Analysis.Tiling)
				}
			}
		}
	}
}
