// Package platform assembles the paper's evaluation platform (§III-A,
// §V-A): the six design points of Table IV on the 256-PE test
// accelerator, and the DaDianNao scalability study of §V-C. A design
// point couples a buffer technology and capacity with a computation-
// pattern space, a retention failure rate (hence refresh interval), and a
// memory controller; evaluating it schedules a network and returns the
// Eq. 14 energy accounting.
package platform

import (
	"context"
	"fmt"
	"sync"
	"time"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sched"
)

// Design is one design point of Table IV.
type Design struct {
	// Name as printed in the paper's figures, e.g. "RANA*(E-5)".
	Name string
	// Tech selects the buffer technology.
	Tech energy.BufferTech
	// BufferWords is the on-chip buffer capacity; 0 keeps the base
	// configuration's capacity.
	BufferWords uint64
	// Patterns is the computation-pattern space ("Hybrid (OD+WD)" in the
	// paper is []Kind{OD, WD}).
	Patterns []pattern.Kind
	// FailureRate is the tolerated retention failure rate; with the
	// retention distribution it determines the refresh interval. Zero
	// means the conventional weakest-cell point (3×10⁻⁶ → 45 µs).
	FailureRate float64
	// RefreshInterval overrides the rate→interval lookup when non-zero
	// (used by the Fig. 16 retention-time sweep).
	RefreshInterval time.Duration
	// Optimized selects the refresh-optimized eDRAM controller of
	// Fig. 14 instead of the conventional one.
	Optimized bool
	// NaturalTiling restricts scheduling to the accelerator's native
	// tiling (baseline designs do not explore; only RANA does).
	NaturalTiling bool
	// Backend names the memory-technology backend the buffer is priced
	// through (internal/mem registry); empty selects the technology's
	// default adapter, reproducing the Table IV points byte for byte.
	Backend string
	// OperatingPoint pins one of the backend's operating points; empty
	// searches every point within the scheduler's error budget.
	OperatingPoint string
}

// Interval returns the design's refresh interval under the distribution.
func (d Design) Interval(dist *retention.Distribution) time.Duration {
	if d.RefreshInterval > 0 {
		return d.RefreshInterval
	}
	rate := d.FailureRate
	if rate == 0 {
		rate = retention.TypicalFailureRate
	}
	return dist.RetentionTime(rate)
}

// Controller returns the design's refresh controller, or nil for SRAM.
func (d Design) Controller() memctrl.Controller {
	if d.Tech == energy.SRAM {
		return nil
	}
	if d.Optimized {
		return memctrl.RefreshOptimized{}
	}
	return memctrl.Conventional{}
}

// Apply specializes a base hardware configuration to the design.
func (d Design) Apply(base hw.Config) hw.Config {
	cfg := base.WithBufferTech(d.Tech)
	if d.BufferWords > 0 {
		cfg = cfg.WithBufferWords(d.BufferWords)
	}
	return cfg
}

// WithBufferWords returns a copy of the design with a different buffer
// capacity — the Fig. 18 sweep.
func (d Design) WithBufferWords(words uint64) Design {
	d.BufferWords = words
	return d
}

// WithInterval returns a copy with a pinned refresh interval — the
// Fig. 16 retention-time sweep.
func (d Design) WithInterval(rt time.Duration) Design {
	d.RefreshInterval = rt
	return d
}

// WithBackend returns a copy priced through a named memory backend at a
// (possibly empty, i.e. searched) operating point — the axis the
// (network × backend × operating point) evaluation matrix sweeps.
func (d Design) WithBackend(backend, point string) Design {
	d.Backend = backend
	d.OperatingPoint = point
	return d
}

// The six design points of Table IV.
func SID() Design {
	return Design{Name: "S+ID", Tech: energy.SRAM, BufferWords: hw.TestSRAMWords,
		Patterns: []pattern.Kind{pattern.ID}, NaturalTiling: true}
}

func EDID() Design {
	return Design{Name: "eD+ID", Tech: energy.EDRAM, BufferWords: hw.TestEDRAMWords,
		Patterns: []pattern.Kind{pattern.ID}, NaturalTiling: true}
}

func EDOD() Design {
	return Design{Name: "eD+OD", Tech: energy.EDRAM, BufferWords: hw.TestEDRAMWords,
		Patterns: []pattern.Kind{pattern.OD}, NaturalTiling: true}
}

func RANA0() Design {
	return Design{Name: "RANA (0)", Tech: energy.EDRAM, BufferWords: hw.TestEDRAMWords,
		Patterns: []pattern.Kind{pattern.OD, pattern.WD}}
}

func RANAE5() Design {
	return Design{Name: "RANA (E-5)", Tech: energy.EDRAM, BufferWords: hw.TestEDRAMWords,
		Patterns:    []pattern.Kind{pattern.OD, pattern.WD},
		FailureRate: retention.TolerableFailureRate}
}

func RANAStarE5() Design {
	return Design{Name: "RANA*(E-5)", Tech: energy.EDRAM, BufferWords: hw.TestEDRAMWords,
		Patterns:    []pattern.Kind{pattern.OD, pattern.WD},
		FailureRate: retention.TolerableFailureRate, Optimized: true}
}

// Designs returns all six Table IV design points in paper order.
func Designs() []Design {
	return []Design{SID(), EDID(), EDOD(), RANA0(), RANAE5(), RANAStarE5()}
}

// DesignByName returns the Table IV design with the given name, or false.
func DesignByName(name string) (Design, bool) {
	for _, d := range Designs() {
		if d.Name == name {
			return d, true
		}
	}
	return Design{}, false
}

// Platform couples a base accelerator with a retention distribution.
type Platform struct {
	Base hw.Config
	Dist *retention.Distribution
}

// Test returns the paper's evaluation platform: the 256-PE test
// accelerator with the typical retention distribution.
func Test() *Platform {
	return &Platform{Base: hw.TestAccelerator(), Dist: retention.Typical()}
}

// Result is one (design, network) evaluation.
type Result struct {
	Design Design
	Plan   *sched.Plan
}

// Energy returns the network's total system energy breakdown.
func (r Result) Energy() energy.Breakdown { return r.Plan.Energy }

// Evaluate schedules and prices a network under a design point.
func (p *Platform) Evaluate(d Design, net models.Network) (Result, error) {
	return p.EvaluateContext(context.Background(), d, net)
}

// EvaluateContext is Evaluate with cancellation plumbed into the
// scheduling loop — the entry point the serving subsystem uses so an
// abandoned request stops exploring layers.
func (p *Platform) EvaluateContext(ctx context.Context, d Design, net models.Network) (Result, error) {
	cfg := d.Apply(p.Base)
	opts := sched.Options{
		Patterns:        d.Patterns,
		RefreshInterval: d.Interval(p.Dist),
		Controller:      d.Controller(),
		NaturalTiling:   d.NaturalTiling,
		Backend:         d.Backend,
		OperatingPoint:  d.OperatingPoint,
	}
	plan, err := sched.ScheduleContext(ctx, net, cfg, opts)
	if err != nil {
		return Result{}, fmt.Errorf("platform: design %s: %w", d.Name, err)
	}
	return Result{Design: d, Plan: plan}, nil
}

// EvaluateAll evaluates every design on every network, returning
// results[design][network] in the given orders. The cells are
// independent and evaluated concurrently.
func (p *Platform) EvaluateAll(designs []Design, nets []models.Network) ([][]Result, error) {
	out := make([][]Result, len(designs))
	errs := make([][]error, len(designs))
	var wg sync.WaitGroup
	for i, d := range designs {
		out[i] = make([]Result, len(nets))
		errs[i] = make([]error, len(nets))
		for j, n := range nets {
			wg.Add(1)
			go func(i, j int, d Design, n models.Network) {
				defer wg.Done()
				out[i][j], errs[i][j] = p.Evaluate(d, n)
			}(i, j, d, n)
		}
	}
	wg.Wait()
	for i := range errs {
		for j := range errs[i] {
			if errs[i][j] != nil {
				return nil, errs[i][j]
			}
		}
	}
	return out, nil
}

// --- DaDianNao scalability study (§V-C) ---

// DaDianNaoTiling is the node's fixed tiling: Tm=Tn=64, Tr=Tc=1.
func DaDianNaoTiling() pattern.Tiling {
	return pattern.Tiling{Tm: 64, Tn: 64, Tr: 1, Tc: 1}
}

// DaDianNao returns the scalability-study platform of §V-C.
func DaDianNao() *Platform {
	return &Platform{Base: hw.DaDianNao(), Dist: retention.Typical()}
}

// DaDianNaoDesigns returns the four Fig. 19 design points. Baseline
// DaDianNao uses only the WD computation pattern ("it only uses the WD
// computation pattern and produces frequent access to its weight
// buffer"); the RANA variants add the hybrid pattern, longer tolerable
// retention and the optimized controller while keeping the node's
// hardware parameters.
func DaDianNaoDesigns() []Design {
	base := Design{Tech: energy.EDRAM, BufferWords: hw.DaDianNaoWords}
	dd := base
	dd.Name = "DaDianNao"
	dd.Patterns = []pattern.Kind{pattern.WD}
	r0 := base
	r0.Name = "RANA (0)"
	r0.Patterns = []pattern.Kind{pattern.OD, pattern.WD}
	r5 := r0
	r5.Name = "RANA (E-5)"
	r5.FailureRate = retention.TolerableFailureRate
	rs := r5
	rs.Name = "RANA*(E-5)"
	rs.Optimized = true
	return []Design{dd, r0, r5, rs}
}

// EvaluateFixedTiling evaluates a design with the tiling pinned (the
// DaDianNao tree structure fixes ⟨64, 64, 1, 1⟩).
func (p *Platform) EvaluateFixedTiling(d Design, net models.Network, t pattern.Tiling) (Result, error) {
	cfg := d.Apply(p.Base)
	opts := sched.Options{
		Patterns:        d.Patterns,
		RefreshInterval: d.Interval(p.Dist),
		Controller:      d.Controller(),
		FixedTiling:     &t,
		Backend:         d.Backend,
		OperatingPoint:  d.OperatingPoint,
	}
	plan, err := sched.Schedule(net, cfg, opts)
	if err != nil {
		return Result{}, fmt.Errorf("platform: design %s: %w", d.Name, err)
	}
	return Result{Design: d, Plan: plan}, nil
}
