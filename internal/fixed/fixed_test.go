package fixed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromToFloatRoundTrip(t *testing.T) {
	f := Q88
	cases := []float64{0, 1, -1, 0.5, -0.5, 3.25, -7.125, 127.99, -128}
	for _, x := range cases {
		w := f.FromFloat(x)
		got := f.ToFloat(w)
		if math.Abs(got-x) > 1.0/f.Scale() {
			t.Errorf("round trip %g -> %d -> %g", x, w, got)
		}
	}
}

func TestFromFloatSaturates(t *testing.T) {
	f := Q88
	if f.FromFloat(1e9) != MaxWord {
		t.Error("positive overflow should saturate to MaxWord")
	}
	if f.FromFloat(-1e9) != MinWord {
		t.Error("negative overflow should saturate to MinWord")
	}
	if f.FromFloat(math.NaN()) != 0 {
		t.Error("NaN should map to 0")
	}
}

func TestSatAdd(t *testing.T) {
	if got := SatAdd(MaxWord, 1); got != MaxWord {
		t.Errorf("SatAdd overflow = %d", got)
	}
	if got := SatAdd(MinWord, -1); got != MinWord {
		t.Errorf("SatAdd underflow = %d", got)
	}
	if got := SatAdd(100, -30); got != 70 {
		t.Errorf("SatAdd(100,-30) = %d", got)
	}
}

func TestSatMul(t *testing.T) {
	f := Q88
	a, b := f.FromFloat(2.0), f.FromFloat(3.5)
	if got := f.ToFloat(f.SatMul(a, b)); math.Abs(got-7.0) > 0.01 {
		t.Errorf("2*3.5 = %g", got)
	}
	// Saturation: 127 * 127 overflows Q8.8.
	big := f.FromFloat(127)
	if f.SatMul(big, big) != MaxWord {
		t.Error("large product should saturate")
	}
	neg := f.FromFloat(-127)
	if f.SatMul(big, neg) != MinWord {
		t.Error("large negative product should saturate")
	}
}

func TestMACFold(t *testing.T) {
	f := Q88
	var acc Acc
	// 10 × (1.5 * 2.0) = 30.
	a, b := f.FromFloat(1.5), f.FromFloat(2.0)
	for i := 0; i < 10; i++ {
		acc = MAC(acc, a, b)
	}
	if got := f.ToFloat(f.Fold(acc)); math.Abs(got-30) > 0.05 {
		t.Errorf("MAC chain = %g, want 30", got)
	}
}

func TestFoldSaturates(t *testing.T) {
	f := Q88
	var acc Acc = math.MaxInt64 / 2
	if f.Fold(acc) != MaxWord {
		t.Error("Fold should saturate huge accumulators")
	}
	if f.Fold(-acc) != MinWord {
		t.Error("Fold should saturate huge negative accumulators")
	}
}

// TestQuantizeIdempotent: quantizing twice equals quantizing once.
func TestQuantizeIdempotent(t *testing.T) {
	f := Q88
	prop := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		q := f.Quantize(x)
		return f.Quantize(q) == q
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestBitsRoundTrip: Bits/FromBits are inverses.
func TestBitsRoundTrip(t *testing.T) {
	prop := func(b uint16) bool { return Bits(FromBits(b)) == b }
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestMACMatchesFloat: the fixed MAC chain tracks the float computation
// within quantization error bounds.
func TestMACMatchesFloat(t *testing.T) {
	f := Q88
	prop := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		var acc Acc
		want := 0.0
		for i := 0; i+1 < len(raw); i += 2 {
			a := Word(raw[i] / 16) // keep products in range
			b := Word(raw[i+1] / 16)
			acc = MAC(acc, a, b)
			want += f.ToFloat(a) * f.ToFloat(b)
		}
		got := f.ToFloat(f.Fold(acc))
		if want > f.ToFloat(MaxWord) || want < f.ToFloat(MinWord) {
			return true // saturation regime, skip
		}
		return math.Abs(got-want) < 0.01
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
