// Package fixed implements the 16-bit fixed-point arithmetic used by the
// RANA evaluation platform. The paper's accelerator and its retention-aware
// training method both operate on 16-bit fixed-point values (§II, §IV-B);
// this package provides the shared Q-format representation, saturating
// arithmetic, and the multiply-accumulate primitive whose energy cost
// anchors Table III (1.3 pJ per 16-bit MAC).
package fixed

import "math"

// Word is a 16-bit fixed-point value. The binary point position is carried
// separately by a Format; Word itself is just the raw two's-complement bits.
type Word int16

const (
	// MaxWord and MinWord are the saturation bounds of a 16-bit word.
	MaxWord = Word(math.MaxInt16)
	MinWord = Word(math.MinInt16)

	// WordBits is the number of bits in a Word. Retention failures are
	// injected per bit (§IV-B), so error-injection code iterates over
	// exactly this many positions.
	WordBits = 16
)

// Format describes a Qm.f fixed-point format: f fractional bits out of the
// 16-bit word. The paper uses 16-bit precision throughout; the fractional
// split is a deployment choice, so it is parameterized here.
type Format struct {
	// Frac is the number of fractional bits (0..15).
	Frac uint
}

// Q88 is the default format used by the training demonstration: 8 integer
// bits (including sign) and 8 fractional bits.
var Q88 = Format{Frac: 8}

// Scale returns the scaling factor 2^Frac.
func (f Format) Scale() float64 { return float64(int32(1) << f.Frac) }

// FromFloat converts a float64 to the nearest representable Word,
// saturating at the 16-bit bounds.
func (f Format) FromFloat(x float64) Word {
	scaled := math.RoundToEven(x * f.Scale())
	switch {
	case scaled > float64(MaxWord):
		return MaxWord
	case scaled < float64(MinWord):
		return MinWord
	case math.IsNaN(scaled):
		return 0
	}
	return Word(scaled)
}

// ToFloat converts a Word back to float64.
func (f Format) ToFloat(w Word) float64 { return float64(w) / f.Scale() }

// Quantize rounds a float64 to the format's grid without leaving float64.
// It is the composition ToFloat(FromFloat(x)) and is what the fixed-point
// pretraining step (Fig. 9) applies to weights and activations.
func (f Format) Quantize(x float64) float64 { return f.ToFloat(f.FromFloat(x)) }

// SatAdd returns a+b with saturation at the 16-bit bounds.
func SatAdd(a, b Word) Word {
	s := int32(a) + int32(b)
	return saturate32(s)
}

// SatMul returns the fixed-point product of a and b in format f,
// rounding to nearest and saturating.
func (f Format) SatMul(a, b Word) Word {
	p := int64(a) * int64(b) // Q(2f) product in 32 bits
	// Round to nearest by adding half an LSB before shifting.
	half := int64(1) << (f.Frac - 1)
	if f.Frac == 0 {
		half = 0
	}
	if p >= 0 {
		p += half
	} else {
		p -= half
	}
	p >>= f.Frac
	if p > int64(MaxWord) {
		return MaxWord
	}
	if p < int64(MinWord) {
		return MinWord
	}
	return Word(p)
}

// Acc is a widened accumulator for multiply-accumulate chains. CNN
// accelerators accumulate partial sums in wider registers inside the PEs
// (§II-B: "outputs are kept accumulating in the PEs"); Acc models that
// 32-bit-plus guard-band register.
type Acc int64

// MAC performs one multiply-accumulate step: acc += a*b, in the raw
// Q(2*Frac) domain of the product. This is the basic operation of a CONV
// layer (Fig. 2b, inner-most loop).
func MAC(acc Acc, a, b Word) Acc { return acc + Acc(int64(a)*int64(b)) }

// Fold reduces an accumulator back to a Word in format f, rounding to
// nearest and saturating. It models the PE writing a finished output
// point to the output buffer.
func (f Format) Fold(acc Acc) Word {
	p := int64(acc)
	half := int64(1) << (f.Frac - 1)
	if f.Frac == 0 {
		half = 0
	}
	if p >= 0 {
		p += half
	} else {
		p -= half
	}
	p >>= f.Frac
	if p > int64(MaxWord) {
		return MaxWord
	}
	if p < int64(MinWord) {
		return MinWord
	}
	return Word(p)
}

func saturate32(s int32) Word {
	if s > int32(MaxWord) {
		return MaxWord
	}
	if s < int32(MinWord) {
		return MinWord
	}
	return Word(s)
}

// Bits returns the raw bit pattern of w. Retention-failure injection
// operates on this representation.
func Bits(w Word) uint16 { return uint16(w) }

// FromBits reinterprets a raw bit pattern as a Word.
func FromBits(b uint16) Word { return Word(b) }
