package bits

import (
	"math"
	"testing"
	"testing/quick"

	"rana/internal/fixed"
)

func TestZeroRateNeverCorrupts(t *testing.T) {
	in := NewInjector(0, 1)
	ws := make([]fixed.Word, 1000)
	for i := range ws {
		ws[i] = fixed.Word(i)
	}
	if changed := in.CorruptSlice(ws); changed != 0 {
		t.Errorf("zero rate changed %d words", changed)
	}
	for i, w := range ws {
		if w != fixed.Word(i) {
			t.Fatalf("word %d changed", i)
		}
	}
}

func TestFullRateScrambles(t *testing.T) {
	in := NewInjector(1, 42)
	ws := make([]fixed.Word, 4096)
	changed := in.CorruptSlice(ws)
	// At rate 1 every bit becomes a coin flip; a 16-bit word survives as
	// zero with probability 2^-16, so essentially all words change.
	if float64(changed)/float64(len(ws)) < 0.99 {
		t.Errorf("full rate changed only %d/%d words", changed, len(ws))
	}
}

func TestEmpiricalWordErrorRate(t *testing.T) {
	for _, rate := range []float64{1e-2, 1e-1} {
		in := NewInjector(rate, 7)
		const n = 200000
		ws := make([]fixed.Word, n)
		changed := in.CorruptSlice(ws)
		got := float64(changed) / n
		want := ExpectedWordErrorRate(rate)
		if math.Abs(got-want)/want > 0.1 {
			t.Errorf("rate %g: word error rate %.5f, want %.5f ±10%%", rate, got, want)
		}
	}
}

func TestExpectedWordErrorRate(t *testing.T) {
	if got := ExpectedWordErrorRate(0); got != 0 {
		t.Errorf("rate 0 → %g", got)
	}
	// Small-rate linearization: ≈ 16 · r/2 = 8r.
	r := 1e-6
	if got := ExpectedWordErrorRate(r); math.Abs(got-8*r)/(8*r) > 0.01 {
		t.Errorf("small-rate approximation: got %g, want ≈%g", got, 8*r)
	}
}

func TestInjectorPanicsOnBadRate(t *testing.T) {
	for _, r := range []float64{-0.1, 1.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v: expected panic", r)
				}
			}()
			NewInjector(r, 0)
		}()
	}
}

func TestDeterminism(t *testing.T) {
	a := NewInjector(0.3, 99)
	b := NewInjector(0.3, 99)
	for i := 0; i < 1000; i++ {
		w := fixed.Word(i * 31)
		if a.CorruptWord(w) != b.CorruptWord(w) {
			t.Fatal("same seed must give identical corruption")
		}
	}
}

func TestCorruptFloatsQuantizesAndCorrupts(t *testing.T) {
	// Zero rate leaves values untouched (not even quantized — fast path).
	in := NewInjector(0, 1)
	xs := []float64{0.123456789, -3.7, 2.5}
	orig := append([]float64(nil), xs...)
	in.CorruptFloats(xs, fixed.Q88)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Errorf("zero rate modified xs[%d]", i)
		}
	}
	// Non-zero rate passes values through the fixed-point grid.
	in = NewInjector(1e-9, 2)
	in.CorruptFloats(xs, fixed.Q88)
	for i, x := range xs {
		if q := fixed.Q88.Quantize(x); q != x {
			t.Errorf("xs[%d]=%g not on the Q8.8 grid (%g)", i, x, q)
		}
	}
}

func TestSplitMix64Stats(t *testing.T) {
	rng := NewSplitMix64(12345)
	const n = 100000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := rng.Float64()
		if x < 0 || x >= 1 {
			t.Fatalf("Float64 out of range: %g", x)
		}
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %.4f, want ≈0.5", mean)
	}
	varr := sumsq/n - mean*mean
	if math.Abs(varr-1.0/12) > 0.005 {
		t.Errorf("variance = %.4f, want ≈1/12", varr)
	}
	// Normal variates: mean ≈ 0, var ≈ 1.
	sum, sumsq = 0, 0
	for i := 0; i < n; i++ {
		x := rng.NormFloat64()
		sum += x
		sumsq += x * x
	}
	if m := sum / n; math.Abs(m) > 0.02 {
		t.Errorf("normal mean = %.4f", m)
	}
	if v := sumsq / n; math.Abs(v-1) > 0.05 {
		t.Errorf("normal variance = %.4f", v)
	}
}

func TestIntn(t *testing.T) {
	rng := NewSplitMix64(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := rng.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) covered only %d values", len(seen))
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	rng.Intn(0)
}

// TestCorruptionIsBitwiseBounded: a corrupted word differs from the
// original only in bits (trivially true) and at rate r the expected
// number of flipped bits per word is ≤ 16·r.
func TestCorruptionBitFlipRate(t *testing.T) {
	rate := 0.05
	in := NewInjector(rate, 3)
	flips := 0
	const n = 50000
	for i := 0; i < n; i++ {
		w := fixed.Word(i)
		c := in.CorruptWord(w)
		x := fixed.Bits(w) ^ fixed.Bits(c)
		for ; x != 0; x &= x - 1 {
			flips++
		}
	}
	got := float64(flips) / n
	want := 16 * rate / 2 // each failed bit flips half the time
	if math.Abs(got-want)/want > 0.1 {
		t.Errorf("bit flips/word = %.4f, want ≈%.4f", got, want)
	}
}

func TestQuickInjectorAlwaysInRange(t *testing.T) {
	in := NewInjector(0.5, 11)
	prop := func(raw int16) bool {
		c := in.CorruptWord(fixed.Word(raw))
		return c >= fixed.MinWord && c <= fixed.MaxWord
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
