package bits

import (
	"testing"

	"rana/internal/fixed"
)

func TestCorruptWordAtRespectsMask(t *testing.T) {
	const mask = uint16(0x0f0f)
	in := NewInjector(1, 5) // every selected bit redrawn
	for i := 0; i < 200; i++ {
		w := fixed.Word(i*131 - 9000)
		got := in.CorruptWordAt(w, mask)
		if delta := fixed.Bits(got) ^ fixed.Bits(w); delta&^mask != 0 {
			t.Fatalf("word %v: flip pattern %#x escapes mask %#x", w, delta, mask)
		}
	}
}

func TestCorruptWordAtZeroMaskIsUnrestricted(t *testing.T) {
	a := NewInjector(0.5, 9)
	b := NewInjector(0.5, 9)
	for i := 0; i < 64; i++ {
		w := fixed.Word(i * 511)
		if got, want := a.CorruptWordAt(w, 0), b.CorruptWord(w); got != want {
			t.Fatalf("mask 0: CorruptWordAt %v != CorruptWord %v", got, want)
		}
	}
	a = NewInjector(0.5, 9)
	b = NewInjector(0.5, 9)
	for i := 0; i < 64; i++ {
		w := fixed.Word(i * 511)
		if got, want := a.CorruptWordAt(w, AllBits), b.CorruptWord(w); got != want {
			t.Fatalf("AllBits: CorruptWordAt %v != CorruptWord %v", got, want)
		}
	}
}

func TestCorruptWordAtDeterministic(t *testing.T) {
	run := func(seed uint64) []fixed.Word {
		in := NewInjector(0.3, seed)
		out := make([]fixed.Word, 128)
		for i := range out {
			out[i] = in.CorruptWordAt(fixed.Word(i*257), 0x8001)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: same seed diverged (%v vs %v)", i, a[i], b[i])
		}
	}
}

func TestCorruptFloatsAtRateZeroAndMask(t *testing.T) {
	xs := []float64{1.25, -3.5, 0.125, 100}
	orig := append([]float64(nil), xs...)
	NewInjector(0, 1).CorruptFloatsAt(xs, fixed.Q88, 0x00ff)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("rate 0 changed value %d", i)
		}
	}
	// Low-byte-only corruption bounds each delta by 255 quanta.
	NewInjector(1, 3).CorruptFloatsAt(xs, fixed.Q88, 0x00ff)
	maxDelta := float64(0x00ff) / fixed.Q88.Scale()
	for i := range xs {
		d := xs[i] - fixed.Q88.Quantize(orig[i])
		if d < -maxDelta || d > maxDelta {
			t.Fatalf("value %d moved by %g, low-byte bound %g", i, d, maxDelta)
		}
	}
}
