package bits

import (
	"testing"

	"rana/internal/fixed"
)

// FuzzInjectorRoundTrip: for any (rate, seed, word) the injector is
// deterministic — two injectors built from the same parameters corrupt a
// word identically — rate 0 is the identity, and the underlying bit
// encode/decode (fixed.Bits / fixed.FromBits) round-trips both the clean
// and the corrupted word.
func FuzzInjectorRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint16(0), int16(0))
	f.Add(uint64(42), uint16(500), int16(-1))
	f.Add(uint64(7), uint16(1000), int16(32767))
	f.Add(uint64(123456789), uint16(999), int16(-32768))
	f.Fuzz(func(t *testing.T, seed uint64, ratePerMille uint16, raw int16) {
		rate := float64(ratePerMille%1001) / 1000
		w := fixed.Word(raw)

		if got := fixed.FromBits(fixed.Bits(w)); got != w {
			t.Fatalf("Bits/FromBits(%d) = %d", w, got)
		}

		a := NewInjector(rate, seed)
		b := NewInjector(rate, seed)
		ca, cb := a.CorruptWord(w), b.CorruptWord(w)
		if ca != cb {
			t.Fatalf("injector(rate=%g, seed=%d) nondeterministic: %d vs %d", rate, seed, ca, cb)
		}
		if got := fixed.FromBits(fixed.Bits(ca)); got != ca {
			t.Fatalf("Bits/FromBits(%d) = %d after corruption", ca, got)
		}

		zero := NewInjector(0, seed)
		if got := zero.CorruptWord(w); got != w {
			t.Fatalf("rate-0 injector changed %d to %d", w, got)
		}
	})
}

// FuzzSplitMix64: the generator stays in range and is deterministic for
// any seed.
func FuzzSplitMix64(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, seed uint64) {
		a, b := NewSplitMix64(seed), NewSplitMix64(seed)
		for i := 0; i < 8; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("seed %d nondeterministic at step %d", seed, i)
			}
		}
		for i := 0; i < 8; i++ {
			if x := a.Float64(); x < 0 || x >= 1 {
				t.Fatalf("Float64() = %g out of [0,1)", x)
			}
			if n := a.Intn(7); n < 0 || n >= 7 {
				t.Fatalf("Intn(7) = %d", n)
			}
		}
	})
}
