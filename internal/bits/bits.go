// Package bits implements the bit-level retention-error injection used by
// RANA's retention-aware training method (§IV-B, Fig. 9).
//
// The paper models a retention failure by adding a mask to each layer's
// inputs and weights: every bit independently fails at rate r, and a
// failed bit "has a random value of 0 or 1 with equal probability". This
// package provides that mask as a deterministic, seedable stream so
// experiments are reproducible.
package bits

import (
	"math"

	"rana/internal/fixed"
)

// Injector applies independent per-bit retention failures at a fixed rate.
// The zero value is not usable; construct with NewInjector.
type Injector struct {
	rate float64
	rng  *SplitMix64
}

// NewInjector returns an injector with per-bit failure rate r in [0, 1]
// and a deterministic seed. A rate of 0 never corrupts anything.
func NewInjector(r float64, seed uint64) *Injector {
	if r < 0 || r > 1 || math.IsNaN(r) {
		panic("bits: failure rate must be in [0, 1]")
	}
	return &Injector{rate: r, rng: NewSplitMix64(seed)}
}

// Rate returns the per-bit failure rate.
func (in *Injector) Rate() float64 { return in.rate }

// CorruptWord applies the retention-failure mask to a single 16-bit word.
// Each bit fails independently with probability rate; a failed bit is
// replaced by an independent fair coin flip (so the bit actually changes
// with probability rate/2).
func (in *Injector) CorruptWord(w fixed.Word) fixed.Word {
	if in.rate == 0 {
		return w
	}
	b := fixed.Bits(w)
	for i := 0; i < fixed.WordBits; i++ {
		if in.rng.Float64() < in.rate {
			if in.rng.Float64() < 0.5 {
				b |= 1 << uint(i)
			} else {
				b &^= 1 << uint(i)
			}
		}
	}
	return fixed.FromBits(b)
}

// CorruptSlice applies CorruptWord in place to every element of ws and
// returns the number of words whose value actually changed.
func (in *Injector) CorruptSlice(ws []fixed.Word) int {
	changed := 0
	for i, w := range ws {
		c := in.CorruptWord(w)
		if c != w {
			changed++
		}
		ws[i] = c
	}
	return changed
}

// CorruptFloats quantizes each value to format f, applies the bit-level
// mask, and converts back. This is exactly the forward-propagation mask of
// Fig. 9: the network sees fixed-point values with retention failures.
func (in *Injector) CorruptFloats(xs []float64, f fixed.Format) {
	if in.rate == 0 {
		return
	}
	for i, x := range xs {
		xs[i] = f.ToFloat(in.CorruptWord(f.FromFloat(x)))
	}
}

// AllBits selects every bit position of a word for position-restricted
// corruption; it is the mask meaning "no restriction".
const AllBits uint16 = 1<<fixed.WordBits - 1

// CorruptWordAt is CorruptWord restricted to the bit positions set in
// mask: only those bits can fail, each independently at the injector's
// rate with the same fair-coin replacement. A mask of 0 or AllBits is
// the unrestricted CorruptWord. The random stream is consumed only for
// selected positions, so restricting the mask changes which draws
// happen — restricted and unrestricted injection are distinct streams
// by design.
func (in *Injector) CorruptWordAt(w fixed.Word, mask uint16) fixed.Word {
	if mask == 0 || mask == AllBits {
		return in.CorruptWord(w)
	}
	if in.rate == 0 {
		return w
	}
	b := fixed.Bits(w)
	for i := 0; i < fixed.WordBits; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if in.rng.Float64() < in.rate {
			if in.rng.Float64() < 0.5 {
				b |= 1 << uint(i)
			} else {
				b &^= 1 << uint(i)
			}
		}
	}
	return fixed.FromBits(b)
}

// CorruptFloatsAt is CorruptFloats restricted to the bit positions set
// in mask (see CorruptWordAt).
func (in *Injector) CorruptFloatsAt(xs []float64, f fixed.Format, mask uint16) {
	if in.rate == 0 {
		return
	}
	if mask == 0 || mask == AllBits {
		in.CorruptFloats(xs, f)
		return
	}
	for i, x := range xs {
		xs[i] = f.ToFloat(in.CorruptWordAt(f.FromFloat(x), mask))
	}
}

// ExpectedWordErrorRate returns the probability that a 16-bit word is
// changed by the mask: 1 - (1 - rate/2)^16. Property tests use this to
// check the injector's empirical behaviour.
func ExpectedWordErrorRate(rate float64) float64 {
	return 1 - math.Pow(1-rate/2, float64(fixed.WordBits))
}

// SplitMix64 is a tiny deterministic PRNG (Steele, Lea & Flood 2014).
// It backs all stochastic pieces of the repository so that every
// experiment is reproducible without math/rand's global state.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Uint64 returns the next 64 random bits.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("bits: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normal variate via the Box-Muller
// transform. Used for weight initialization in the training substrate.
func (s *SplitMix64) NormFloat64() float64 {
	u1 := s.Float64()
	for u1 == 0 {
		u1 = s.Float64()
	}
	u2 := s.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
