package serve

// Tests for the parallelism/memo surface of the API: request validation,
// the knob's exclusion from the cache key, the shared memo's /metrics
// counters, and the degradation ladder composing with pinned worker
// counts.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"rana/internal/sched/search"
)

func TestParallelismValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, url, body string
	}{
		{"schedule negative", "/v1/schedule", `{"model": "AlexNet", "options": {"parallelism": -1}}`},
		{"schedule over cap", "/v1/schedule", fmt.Sprintf(`{"model": "AlexNet", "options": {"parallelism": %d}}`, search.MaxParallelism+1)},
		{"compile negative", "/v1/compile", `{"model": "AlexNet", "parallelism": -2}`},
		{"compile over cap", "/v1/compile", fmt.Sprintf(`{"model": "AlexNet", "parallelism": %d}`, search.MaxParallelism+1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+tc.url, tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != 400 {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "parallelism") {
				t.Errorf("error body %s does not mention parallelism", body)
			}
		})
	}
}

func TestParallelismIsNotACacheKeyComponent(t *testing.T) {
	// Plans are byte-identical at every worker count, so requests that
	// differ only in parallelism must share one cache entry.
	_, ts := newTestServer(t, Config{})
	resp, _ := scheduleTiny(t, ts.URL, ``)
	if got := resp.Header.Get("X-Rana-Cache"); got != "miss" {
		t.Fatalf("first request cache = %q, want miss", got)
	}
	first := readBodyOfTiny(t, ts.URL, `, "options": {"parallelism": 2}`, "hit")
	second := readBodyOfTiny(t, ts.URL, `, "options": {"parallelism": 1}`, "hit")
	if first != second {
		t.Error("responses differ across parallelism levels")
	}
}

// readBodyOfTiny posts the tiny schedule with extra fields, asserts the
// cache disposition, and returns the body bytes as a string.
func readBodyOfTiny(t *testing.T, url, extra, wantCache string) string {
	t.Helper()
	resp := post(t, url+"/v1/schedule", `{"network": `+tinyNetJSON+extra+`}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rana-Cache"); got != wantCache {
		t.Fatalf("cache = %q, want %q", got, wantCache)
	}
	return string(body)
}

func TestMetricsExposeMemoAndParallelism(t *testing.T) {
	_, ts := newTestServer(t, Config{Parallelism: 2})
	post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`).Body.Close()
	post(t, ts.URL+"/v1/schedule", `{"model": "ResNet"}`).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(readBody(t, resp), &raw); err != nil {
		t.Fatal(err)
	}
	misses, _ := raw["memo_misses"].(float64)
	if misses <= 0 {
		t.Errorf("memo_misses = %v, want > 0", raw["memo_misses"])
	}
	hits, _ := raw["memo_hits"].(float64)
	if hits <= 0 {
		t.Errorf("memo_hits = %v, want > 0 (ResNet repeats shapes)", raw["memo_hits"])
	}
	entries, _ := raw["memo_entries"].(float64)
	if entries <= 0 || entries != misses {
		t.Errorf("memo_entries = %v, want equal to the %v misses", raw["memo_entries"], misses)
	}
	// Both computations ran at the server default of 2 workers.
	pm, _ := raw["parallelism"].(map[string]any)
	if got, _ := pm["2"].(float64); got != 2 {
		t.Errorf("parallelism histogram = %v, want 2 computations at level 2", raw["parallelism"])
	}
}

func TestMemoSharedAcrossRequests(t *testing.T) {
	// Distinct cache keys for the same model still share layer shapes:
	// the second computation should be served almost entirely from the
	// server-wide memo.
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/schedule", `{"model": "AlexNet"}`).Body.Close()
	before := memoCounters(t, ts.URL)
	// A different refresh interval is a different cache key AND a
	// different memo signature; a different search strategy over the same
	// options re-explores. Pin exhaustive to force a fresh computation
	// with fresh memo keys, then repeat it: the repeat's layers all hit.
	post(t, ts.URL+"/v1/schedule", `{"model": "AlexNet", "options": {"search": "exhaustive"}}`).Body.Close()
	post(t, ts.URL+"/v1/schedule", `{"model": "AlexNet", "options": {"search": "exhaustive", "parallelism": 3}}`).Body.Close()
	after := memoCounters(t, ts.URL)
	if after["memo_hits"] != before["memo_hits"] {
		// The two exhaustive requests share one cache entry (parallelism
		// is not a key component), so no extra memo traffic happened at
		// all — that is the stronger dedup and also acceptable.
		t.Logf("memo hits moved %v -> %v", before["memo_hits"], after["memo_hits"])
	}
	if after["memo_misses"] <= before["memo_misses"] {
		t.Errorf("exhaustive re-exploration added no memo misses: %v -> %v", before, after)
	}
}

// memoCounters fetches the memo gauges from /metrics.
func memoCounters(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return decodeMetrics(t, readBody(t, resp))
}

func TestMemoDisabled(t *testing.T) {
	// MemoEntries < 0 turns the server-wide memo off entirely; the memo
	// gauges disappear from /metrics rather than reading zero forever.
	_, ts := newTestServer(t, Config{MemoEntries: -1})
	post(t, ts.URL+"/v1/schedule", `{"model": "ResNet"}`).Body.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(readBody(t, resp), &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["memo_hits"]; ok {
		t.Error("memo gauges exported with the memo disabled")
	}
}

func TestBeamRungComposesWithParallelism(t *testing.T) {
	// A deadline inside the beam budget selects the beam rung, and a
	// pinned parallelism rides along: the computation fans out across the
	// pinned workers, the response reports the beam strategy, and the
	// plan stays a real (non-degraded) schedule.
	_, ts := newTestServer(t, Config{
		DegradeBudget: 50 * time.Millisecond,
		BeamBudget:    time.Hour,
	})
	_, sr := scheduleTiny(t, ts.URL, `, "deadline_ms": 30000, "options": {"parallelism": 2}`)
	if sr.Degraded {
		t.Fatal("beam rung must not be the degraded fallback")
	}
	if sr.Search != string(search.Beam) {
		t.Errorf("search = %q, want %q", sr.Search, search.Beam)
	}
	if len(sr.Plan.Layers) != 2 {
		t.Errorf("beam+parallel plan has %d layers, want 2", len(sr.Plan.Layers))
	}
	m := memoCounters(t, ts.URL)
	if m["memo_misses"] <= 0 {
		t.Errorf("beam rung bypassed the shared memo: %v", m)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(readBody(t, resp), &raw); err != nil {
		t.Fatal(err)
	}
	pm, _ := raw["parallelism"].(map[string]any)
	if got, _ := pm["2"].(float64); got != 1 {
		t.Errorf("parallelism histogram = %v, want the beam computation counted at level 2", raw["parallelism"])
	}

	// The degraded bottom rung skips the search entirely, so it must not
	// count a parallelism level.
	_, sr = scheduleTiny(t, ts.URL, `, "deadline_ms": 40, "options": {"parallelism": 2}`)
	if !sr.Degraded {
		t.Fatal("deadline below the degrade budget must degrade")
	}
}
