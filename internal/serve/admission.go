package serve

// Overload control: a bounded admission queue in front of the worker
// pool, and a per-key circuit breaker over computation outcomes.
//
// Admission is per *computation*, not per request: it runs inside the
// singleflight function, so a thousand deduplicated requests for one
// key cost one queue token and one worker slot, and joining an
// already-running flight is never shed. /healthz and /metrics bypass
// this path entirely — they must answer precisely when the pool is
// saturated.
//
// The breaker fast-fails keys whose computations repeatedly panic or
// time out: after threshold consecutive trips the key opens for an
// exponentially growing backoff, then admits a single half-open probe
// whose outcome closes or re-opens it. Keys are independent — one
// pathological request shape cannot take down service for the rest.

import (
	"context"
	"sync"
	"time"
)

// admit reserves a queue token for one computation, shedding
// immediately (never blocking) when the queue is full. A nil error
// means the caller holds a token and must releaseQueue it.
func (s *Server) admit() error {
	select {
	case s.queue <- struct{}{}:
		return nil
	default:
		s.m.Shed.Add(1)
		return &apiError{
			status:     429,
			msg:        "server saturated: admission queue full",
			retryAfter: s.cfg.RetryAfter,
		}
	}
}

// admitWait reserves a queue token for one async computation, waiting
// for one instead of shedding: a batch-job entry holds no HTTP
// connection, so there is no client to bounce a 429 to, and the job
// table already bounds how much deferred work can pile up here.
func (s *Server) admitWait(ctx context.Context) error {
	select {
	case s.queue <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) releaseQueue() { <-s.queue }

// breaker is a per-key circuit breaker. now is a seam so tests can
// drive the clock.
type breaker struct {
	mu        sync.Mutex
	threshold int           // consecutive trips that open a key
	backoff   time.Duration // first open duration; doubles per re-open
	maxOpen   time.Duration // backoff growth cap
	maxKeys   int           // tracked-key bound; excess closed keys are dropped
	keys      map[string]*breakerState
	now       func() time.Time
	onOpen    func() // fires on each closed→open transition
}

type breakerState struct {
	fails     int // consecutive trip-class failures
	trips     int // times opened; scales the backoff
	openUntil time.Time
	probing   bool // a half-open probe is in flight
}

func newBreaker(threshold int, backoff time.Duration, onOpen func()) *breaker {
	return &breaker{
		threshold: threshold,
		backoff:   backoff,
		maxOpen:   time.Minute,
		maxKeys:   1024,
		keys:      make(map[string]*breakerState),
		now:       time.Now,
		onOpen:    onOpen,
	}
}

// allow reports whether a computation for key may start. When it may
// not, retryAfter is the remaining open window (at least the base
// backoff for the half-open case, where a probe is already out).
func (b *breaker) allow(key string) (retryAfter time.Duration, ok bool) {
	if b == nil {
		return 0, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st, tracked := b.keys[key]
	if !tracked || st.fails < b.threshold {
		return 0, true
	}
	if remaining := st.openUntil.Sub(b.now()); remaining > 0 {
		return remaining, false
	}
	// Open window elapsed: half-open. Admit exactly one probe; everyone
	// else keeps fast-failing until the probe's outcome lands.
	if st.probing {
		return b.backoff, false
	}
	st.probing = true
	return 0, true
}

// record feeds one computation outcome back. tripped marks the
// trip-class failures (panic, timeout); other errors — cancellations,
// sheds, infeasible requests — are neutral and leave the key alone.
func (b *breaker) record(key string, tripped, success bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if success {
		delete(b.keys, key)
		return
	}
	if !tripped {
		if st, ok := b.keys[key]; ok {
			st.probing = false
		}
		return
	}
	st, ok := b.keys[key]
	if !ok {
		b.evictOverflowLocked()
		st = &breakerState{}
		b.keys[key] = st
	}
	st.probing = false
	st.fails++
	if st.fails >= b.threshold {
		open := b.backoff << st.trips
		if open > b.maxOpen || open <= 0 {
			open = b.maxOpen
		}
		st.trips++
		st.openUntil = b.now().Add(open)
		if st.trips == 1 && b.onOpen != nil {
			b.onOpen()
		}
	}
}

// evictOverflowLocked keeps the tracked-key map bounded: before
// inserting beyond maxKeys, drop a closed key (map order is fine — any
// closed key is equally disposable), falling back to an arbitrary key
// so a flood of hostile unique keys cannot grow the map without bound.
func (b *breaker) evictOverflowLocked() {
	if len(b.keys) < b.maxKeys {
		return
	}
	for k, st := range b.keys {
		if st.fails < b.threshold {
			delete(b.keys, k)
			return
		}
	}
	for k := range b.keys {
		delete(b.keys, k)
		return
	}
}
