package serve

// Warm-restart tests for the persistent plan store: a ranad restarted
// over its store must serve a previously compiled zoo entirely from the
// replayed log — byte-identical bodies, zero scheduler or compiler
// invocations — and a store larger than the LRU must still avoid
// recompiles via the read-through tier.

import (
	"bytes"
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"

	"rana/internal/core"
	"rana/internal/models"
	"rana/internal/sched/search"
	"rana/internal/serve/store"
)

// countCompiles wraps the server's compileFn with an execution counter,
// mirroring countingScheduleFn.
func countCompiles(s *Server, calls *atomic.Int64) {
	inner := s.compileFn
	s.compileFn = func(ctx context.Context, net models.Network, strategy search.Strategy, parallelism int) (*core.Output, error) {
		calls.Add(1)
		return inner(ctx, net, strategy, parallelism)
	}
}

// zooRequests is one schedule and one compile request per benchmark
// network — the "whole zoo" workload of the warm-restart contract.
func zooRequests() []struct{ path, body string } {
	var reqs []struct{ path, body string }
	for _, m := range models.Benchmarks() {
		reqs = append(reqs,
			struct{ path, body string }{"/v1/schedule", fmt.Sprintf(`{"model": %q}`, m.Name)},
			struct{ path, body string }{"/v1/compile", fmt.Sprintf(`{"model": %q}`, m.Name)})
	}
	return reqs
}

func openStore(t *testing.T, path string) *store.Store {
	t.Helper()
	st, err := store.Open(path, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestWarmRestartServesZooFromStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.log")
	reqs := zooRequests()

	// Cold ranad: compile and schedule the zoo, recording every body.
	st := openStore(t, path)
	var calls atomic.Int64
	s, ts := newTestServer(t, Config{Store: st})
	s.scheduleFn = countingScheduleFn(&calls, nil)
	countCompiles(s, &calls)
	want := make([][]byte, len(reqs))
	for i, rq := range reqs {
		resp := post(t, ts.URL+rq.path, rq.body)
		body := readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("%s %s: status %d: %s", rq.path, rq.body, resp.StatusCode, body)
		}
		want[i] = body
	}
	if calls.Load() == 0 {
		t.Fatal("cold server computed nothing; the counting seams are not wired")
	}
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Warm restart: a fresh server over the replayed store must serve
	// the whole zoo with zero computations.
	st2 := openStore(t, path)
	if st2.Stats().Replayed != len(reqs) {
		t.Fatalf("replayed %d entries, want %d", st2.Stats().Replayed, len(reqs))
	}
	var calls2 atomic.Int64
	s2, ts2 := newTestServer(t, Config{Store: st2})
	s2.scheduleFn = countingScheduleFn(&calls2, nil)
	countCompiles(s2, &calls2)
	for i, rq := range reqs {
		resp := post(t, ts2.URL+rq.path, rq.body)
		body := readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("warm %s %s: status %d: %s", rq.path, rq.body, resp.StatusCode, body)
		}
		if !bytes.Equal(body, want[i]) {
			t.Errorf("warm %s %s: body differs from the cold computation", rq.path, rq.body)
		}
		if src := resp.Header.Get("X-Rana-Cache"); src != "hit" {
			t.Errorf("warm %s %s: X-Rana-Cache = %q, want hit (warm-filled LRU)", rq.path, rq.body, src)
		}
	}
	if n := calls2.Load(); n != 0 {
		t.Fatalf("warm restart ran %d computations, want 0", n)
	}
	ts2.Close()
	s2.Shutdown(context.Background())
	st2.Close()

	// A warm restart with an LRU smaller than the store must still not
	// recompute: entries that lost the warm-fill race are served through
	// the store read-through tier.
	st3 := openStore(t, path)
	var calls3 atomic.Int64
	s3, ts3 := newTestServer(t, Config{Store: st3, CacheEntries: 1})
	s3.scheduleFn = countingScheduleFn(&calls3, nil)
	countCompiles(s3, &calls3)
	fromStore := 0
	for i, rq := range reqs {
		resp := post(t, ts3.URL+rq.path, rq.body)
		body := readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("tiny-LRU %s %s: status %d: %s", rq.path, rq.body, resp.StatusCode, body)
		}
		if !bytes.Equal(body, want[i]) {
			t.Errorf("tiny-LRU %s %s: body differs from the cold computation", rq.path, rq.body)
		}
		if resp.Header.Get("X-Rana-Cache") == "store" {
			fromStore++
		}
	}
	if n := calls3.Load(); n != 0 {
		t.Fatalf("tiny-LRU warm restart ran %d computations, want 0", n)
	}
	if fromStore == 0 {
		t.Error("no response was served via the store read-through; the tier is not exercised")
	}
}

// TestStoreDeterminismTripwire locks in the content-addressing
// invariant at the store layer: re-putting a key with different bytes
// is an error, identical bytes a no-op.
func TestStoreDeterminismTripwire(t *testing.T) {
	st := openStore(t, filepath.Join(t.TempDir(), "plans.log"))
	key := scheduleDigest(t)
	if err := st.Put(key, []byte("plan-a")); err != nil {
		t.Fatal(err)
	}
	if err := st.Put(key, []byte("plan-a")); err != nil {
		t.Fatalf("identical re-put: %v", err)
	}
	if err := st.Put(key, []byte("plan-b")); err == nil {
		t.Fatal("divergent re-put accepted; the determinism tripwire is dead")
	}
	if st.Stats().DupPuts != 1 {
		t.Errorf("DupPuts = %d, want 1", st.Stats().DupPuts)
	}
}

// scheduleDigest returns a real canonical request key, tying the store
// tests to the actual hash the server keys by.
func scheduleDigest(t *testing.T) string {
	t.Helper()
	w, err := New(Config{}).prepareSchedule(ScheduleRequest{Model: "AlexNet"})
	if err != nil {
		t.Fatal(err)
	}
	return w.key
}
