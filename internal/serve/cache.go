package serve

// The plan cache: a bounded LRU of marshaled response bodies keyed by
// the canonical request hash, fronted by a singleflight group so N
// concurrent identical requests run exactly one underlying schedule.
//
// Cached values are the final response *bytes*, not decoded plans, so a
// cache hit is byte-identical to the miss that populated it — a property
// the race tests assert and clients may rely on (e.g. for their own
// content-addressed stores).
//
// Both structures are stdlib-only: container/list for the LRU,
// sync.Cond-free channel signaling for the flight group.

import (
	"container/list"
	"context"
	"fmt"
	"runtime/debug"
	"sync"
)

// lru is a mutex-guarded bounded LRU map of response bodies.
type lru struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[string]*list.Element
}

type lruEntry struct {
	key  string
	body []byte
}

// newLRU returns an LRU holding up to max entries (max <= 0 disables
// caching entirely).
func newLRU(max int) *lru {
	return &lru{max: max, order: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached body and promotes the entry.
func (c *lru) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*lruEntry).body, true
}

// Add inserts or refreshes an entry, evicting the least recently used
// entry beyond capacity.
func (c *lru) Add(key string, body []byte) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*lruEntry).body = body
		return
	}
	c.items[key] = c.order.PushFront(&lruEntry{key: key, body: body})
	for c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// Remove drops an entry if present, reporting whether it existed. The
// server uses it to evict a key whose computation later proved poisoned
// (e.g. a panic on a colliding degraded variant) so the next request
// recomputes instead of serving suspect bytes.
func (c *lru) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	delete(c.items, key)
	return true
}

// Len returns the number of cached entries.
func (c *lru) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// flight is one in-progress computation shared by every concurrent
// request with the same key.
type flight struct {
	done   chan struct{} // closed when body/err are final
	body   []byte
	err    error
	ctx    context.Context // the computation's context
	cancel context.CancelFunc
	refs   int // waiters still interested; 0 cancels ctx
}

// flightGroup deduplicates concurrent computations by key. Unlike the
// classic singleflight, the computation does not run under any single
// request's context: it gets its own context (derived from the server's
// base context) that is canceled only when every waiter has abandoned
// the request — one impatient client cannot poison the result for the
// others, and a fully abandoned computation stops exploring layers.
type flightGroup struct {
	mu      sync.Mutex
	base    context.Context // server lifetime; Shutdown cancels it
	flights map[string]*flight

	// onDone, if set, observes every computation's outcome exactly once
	// — regardless of how many waiters shared the flight — after the
	// flight has left the map and before waiters are released. The
	// server hangs panic accounting, cache eviction and circuit-breaker
	// bookkeeping off it.
	onDone func(key string, err error)
}

// panicError is a recovered computation panic, carried to every waiter
// of the flight as an ordinary error. The stack is for the server log;
// Error deliberately omits it so clients never see goroutine dumps.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string { return fmt.Sprintf("internal panic: %v", e.val) }

func newFlightGroup(base context.Context) *flightGroup {
	return &flightGroup{base: base, flights: make(map[string]*flight)}
}

// Do returns the result of fn for key, executing fn at most once across
// concurrent callers. shared reports whether this caller joined an
// existing flight. A caller whose ctx expires detaches and returns
// ctx.Err(); the flight keeps running while any caller remains.
func (g *flightGroup) Do(ctx context.Context, key string, fn func(ctx context.Context) ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	f, ok := g.flights[key]
	if ok {
		f.refs++
		g.mu.Unlock()
		return g.wait(ctx, key, f, true)
	}
	fctx, cancel := context.WithCancel(g.base)
	f = &flight{done: make(chan struct{}), ctx: fctx, cancel: cancel, refs: 1}
	g.flights[key] = f
	g.mu.Unlock()

	go func() {
		// The deferred recover is the serving layer's panic isolation:
		// fn runs library code on behalf of N waiters, and a panic here
		// would otherwise kill the whole process (a caller-side recover
		// cannot catch a panic in another goroutine). It becomes one
		// *panicError that every waiter observes, counted exactly once
		// via onDone.
		defer func() {
			if r := recover(); r != nil {
				f.body, f.err = nil, &panicError{val: r, stack: debug.Stack()}
			}
			g.mu.Lock()
			delete(g.flights, key)
			g.mu.Unlock()
			if g.onDone != nil {
				g.onDone(key, f.err)
			}
			close(f.done)
			f.cancel()
		}()
		f.body, f.err = fn(f.ctx)
	}()
	return g.wait(ctx, key, f, false)
}

// wait blocks for the flight's result or the caller's cancellation.
func (g *flightGroup) wait(ctx context.Context, key string, f *flight, shared bool) ([]byte, bool, error) {
	select {
	case <-f.done:
		return f.body, shared, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.refs--
		if f.refs == 0 {
			// Last interested caller gone: stop the computation. The
			// flight goroutine still runs to completion (observing the
			// canceled context) and removes itself from the map.
			f.cancel()
		}
		g.mu.Unlock()
		return nil, shared, ctx.Err()
	}
}
