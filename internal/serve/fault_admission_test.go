package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"rana/internal/mem"
	"rana/internal/retention"
)

// Tests for the fault-admission surface of the API: the error-budget
// rung of the degradation ladder, the resilience frame on /v1/evaluate
// and /v1/catalog, and the fault counters.

// metricsDoc fetches and decodes the /metrics document.
func metricsDoc(t *testing.T, url string) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(readBody(t, resp), &doc); err != nil {
		t.Fatal(err)
	}
	return doc
}

func metricInt(t *testing.T, doc map[string]json.RawMessage, name string) int64 {
	t.Helper()
	var v int64
	if err := json.Unmarshal(doc[name], &v); err != nil {
		t.Fatalf("metric %s: %v (%s)", name, err, doc[name])
	}
	return v
}

// TestScheduleBudgetFallbackRung: a pinned point that clears the
// client's raised uniform budget but breaks a per-layer budget is not
// failed — the ladder substitutes the nominal corner and marks the
// response degraded with the fixed budget-fallback reason.
func TestScheduleBudgetFallbackRung(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"network": ` + tinyNetJSON + `, "options": {"backend": "approx-dram", "operating_point": "v0.7", "error_budget": 0.001}}`

	resp := post(t, ts.URL+"/v1/schedule", req)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded || sr.DegradedReason != budgetFallbackReason {
		t.Errorf("degraded = %v reason = %q, want budget-fallback marker", sr.Degraded, sr.DegradedReason)
	}
	if sr.Search == "" {
		t.Error("budget-fallback response lost the search echo (the full search ran)")
	}
	// Plans normalize the nominal corner to the empty point on the wire.
	for _, l := range sr.Plan.Layers {
		if mem.NormalizePoint(l.Point) != "" {
			t.Errorf("layer %s op = %q, want the nominal corner", l.Name, l.Point)
		}
	}

	doc := metricsDoc(t, ts.URL)
	if got := metricInt(t, doc, "budget_rejections"); got != 1 {
		t.Errorf("budget_rejections = %d, want 1", got)
	}
	if got := metricInt(t, doc, "degraded"); got != 1 {
		t.Errorf("degraded = %d, want 1", got)
	}
	// The substituted plan sits at the nominal corner — no injection.
	if got := metricInt(t, doc, "fault_injections"); got != 0 {
		t.Errorf("fault_injections = %d, want 0", got)
	}

	// The rung caches under its own op string: replaying the request is a
	// byte-identical hit, not a collision with a genuine nominal pin.
	resp = post(t, ts.URL+"/v1/schedule", req)
	again := readBody(t, resp)
	if got := resp.Header.Get("X-Rana-Cache"); got != "hit" {
		t.Errorf("replay X-Rana-Cache = %q, want hit", got)
	}
	if string(again) != string(body) {
		t.Error("replayed budget-fallback body differs")
	}

	// A genuine nominal pin must produce a distinct, non-degraded body.
	resp = post(t, ts.URL+"/v1/schedule",
		`{"network": `+tinyNetJSON+`, "options": {"backend": "approx-dram", "operating_point": "nominal"}}`)
	nominal := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("nominal pin: status %d: %s", resp.StatusCode, nominal)
	}
	if string(nominal) == string(body) {
		t.Error("nominal-pinned body collides with the budget-fallback body")
	}
}

// TestScheduleFaultInjectionCounter: admitting a plan that places data
// at a fault-exposed point bumps fault_injections, once per computation
// (cache hits replay bytes, not injections).
func TestScheduleFaultInjectionCounter(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := `{"network": ` + tinyNetJSON + `, "options": {"backend": "approx-dram", "operating_point": "v0.9"}}`

	resp := post(t, ts.URL+"/v1/schedule", req)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Degraded {
		t.Errorf("admissible point degraded: %s", sr.DegradedReason)
	}
	for _, l := range sr.Plan.Layers {
		if l.Point != "v0.9" {
			t.Errorf("layer %s op = %q, want v0.9", l.Name, l.Point)
		}
	}
	readBody(t, post(t, ts.URL+"/v1/schedule", req)) // cache hit: no new injection

	doc := metricsDoc(t, ts.URL)
	if got := metricInt(t, doc, "fault_injections"); got != 1 {
		t.Errorf("fault_injections = %d, want 1", got)
	}
	if got := metricInt(t, doc, "budget_rejections"); got != 0 {
		t.Errorf("budget_rejections = %d, want 0", got)
	}
}

// TestEvaluateResilienceFrame: evaluations on the approximate axis
// carry the error-budget frame; the legacy and default paths stay
// frame-free.
func TestEvaluateResilienceFrame(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := post(t, ts.URL+"/v1/evaluate",
		`{"design": "RANA*(E-5)", "network": `+tinyNetJSON+`, "backend": "approx-dram", "operating_point": "v0.9"}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er EvaluateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Resilience == nil {
		t.Fatal("approximate-axis evaluation carries no resilience frame")
	}
	if er.Resilience.Constraint != admissionConstraint {
		t.Errorf("constraint = %g, want %g", er.Resilience.Constraint, admissionConstraint)
	}
	if er.Resilience.ErrorBudget != retention.TolerableFailureRate {
		t.Errorf("error budget = %g, want %g", er.Resilience.ErrorBudget, retention.TolerableFailureRate)
	}
	for _, name := range []string{"l0", "l1"} {
		if b, ok := er.Resilience.LayerBudgets[name]; !ok || b <= 0 {
			t.Errorf("layer %s budget = %g (present %v)", name, b, ok)
		}
	}

	// Default-backend evaluation: no frame, legacy bytes.
	resp = post(t, ts.URL+"/v1/evaluate", `{"design": "RANA*(E-5)", "network": `+tinyNetJSON+`}`)
	body = readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("default: status %d: %s", resp.StatusCode, body)
	}
	var def EvaluateResponse
	if err := json.Unmarshal(body, &def); err != nil {
		t.Fatal(err)
	}
	if def.Resilience != nil {
		t.Error("default-backend evaluation grew a resilience frame")
	}

	// The over-budget corner stays a 400 at admission.
	resp = post(t, ts.URL+"/v1/evaluate",
		`{"design": "RANA*(E-5)", "network": `+tinyNetJSON+`, "backend": "approx-dram", "operating_point": "v0.7"}`)
	if body := readBody(t, resp); resp.StatusCode != 400 {
		t.Errorf("over-budget point: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestCatalogResilience: the catalog advertises the admission frame —
// constraint, uniform budget, the Stage 1 ladder, and per-benchmark
// layer budgets.
func TestCatalogResilience(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Resilience struct {
			Constraint   float64                       `json:"constraint"`
			ErrorBudget  float64                       `json:"error_budget"`
			Ladder       []float64                     `json:"ladder"`
			LayerBudgets map[string]map[string]float64 `json:"layer_budgets"`
		} `json:"resilience"`
	}
	if err := json.Unmarshal(readBody(t, resp), &doc); err != nil {
		t.Fatal(err)
	}
	r := doc.Resilience
	if r.Constraint != admissionConstraint {
		t.Errorf("constraint = %g, want %g", r.Constraint, admissionConstraint)
	}
	if r.ErrorBudget != retention.TolerableFailureRate {
		t.Errorf("error budget = %g, want %g", r.ErrorBudget, retention.TolerableFailureRate)
	}
	if len(r.Ladder) == 0 {
		t.Error("empty failure-rate ladder")
	}
	for _, model := range []string{"AlexNet", "VGG", "GoogLeNet", "ResNet"} {
		budgets := r.LayerBudgets[model]
		if len(budgets) == 0 {
			t.Errorf("no layer budgets for %s", model)
			continue
		}
		for name, b := range budgets {
			if b < retention.TolerableFailureRate {
				t.Errorf("%s/%s budget %g below the uniform budget — admission would tighten the default path", model, name, b)
			}
		}
	}
}
