package serve

// Canonical request hashing. The cache key is computed over the
// *resolved* request — the native (Network, Config, Options) triple
// after defaults are applied — not over the request bytes, so spelling
// differences (field order, named model vs. explicit layers, omitted
// defaults vs. spelled-out defaults) collapse onto one key. The
// encoding is a JSON document of structs with only ordered, scalar
// fields, so encoding/json is deterministic; SHA-256 of it is the key.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/models"
	"rana/internal/sched"
	"rana/internal/sched/search"
)

// canonicalLayer is one layer shape in hashing form.
type canonicalLayer struct {
	Name   string `json:"name"`
	N      int    `json:"n"`
	H      int    `json:"h"`
	L      int    `json:"l"`
	M      int    `json:"m"`
	K      int    `json:"k"`
	S      int    `json:"s"`
	P      int    `json:"p"`
	Groups int    `json:"groups"`
}

// canonicalRequest is the hashing form of a resolved request.
type canonicalRequest struct {
	Op      string           `json:"op"` // "schedule", "compile" or "evaluate"
	Network string           `json:"network"`
	Layers  []canonicalLayer `json:"layers"`

	// Accelerator configuration (zeroed for ops that fix it, e.g.
	// compile always runs the framework's own platform).
	ConfigName  string  `json:"config_name,omitempty"`
	ArrayM      int     `json:"array_m,omitempty"`
	ArrayN      int     `json:"array_n,omitempty"`
	Mapping     int     `json:"mapping,omitempty"`
	FrequencyHz float64 `json:"frequency_hz,omitempty"`
	LocalInput  int     `json:"local_input,omitempty"`
	LocalOutput int     `json:"local_output,omitempty"`
	LocalWeight int     `json:"local_weight,omitempty"`
	BufferWords uint64  `json:"buffer_words,omitempty"`
	BufferTech  int     `json:"buffer_tech,omitempty"`
	BankWords   int     `json:"bank_words,omitempty"`

	// Scheduling options (zeroed for evaluate: the design name fully
	// determines them).
	Patterns       string  `json:"patterns,omitempty"`
	RefreshNS      int64   `json:"refresh_ns,omitempty"`
	Controller     string  `json:"controller,omitempty"`
	NaturalTiling  bool    `json:"natural_tiling,omitempty"`
	RetentionGuard float64 `json:"retention_guard,omitempty"`
	FixedTiling    string  `json:"fixed_tiling,omitempty"`
	// Search is the *resolved* strategy (never empty: the default is
	// spelled out) so a request pinning "pruned" and one omitting the
	// field collapse onto the same key. BeamWidth is the effective beam
	// width, present only under the beam strategy.
	Search    string `json:"search,omitempty"`
	BeamWidth int    `json:"beam_width,omitempty"`

	// Backend is the memory-technology backend, normalized: the default
	// technology adapter's explicit spelling collapses onto the empty
	// string (and out of the key), so legacy requests and explicit-
	// default requests share one entry. OperatingPoint stays verbatim —
	// pinning "nominal" collapses the search axis, which on multi-point
	// backends is a different computation than leaving it open.
	Backend        string  `json:"backend,omitempty"`
	OperatingPoint string  `json:"operating_point,omitempty"`
	ErrorBudget    float64 `json:"error_budget,omitempty"`
	// Traversal and Mapping are the canonical axis spellings
	// (sched.CanonicalTraversalSpec / CanonicalMappingSpec): the parsed
	// axis minus the implicit leading default. Default-only spellings
	// ("", "linear", "row-major", "linear,linear") normalize to the empty
	// string and out of the key, so legacy requests keep their entries.
	Traversal string `json:"traversal,omitempty"`
	MapPolicy string `json:"map_policy,omitempty"`
	// LayerBudgets renders the server-attached per-layer error budgets
	// as sorted "name=rate" pairs. Today the budgets are a pure function
	// of fields already in the key (network name, layer list, the fixed
	// admission constraint), so this is redundancy; it is kept in the
	// form so a future per-request constraint cannot silently collide
	// keys. Requests that never engage the approximate axis carry no
	// budgets and keep the legacy canonical form byte for byte.
	LayerBudgets string `json:"layer_budgets,omitempty"`

	// Design names a Table IV point (evaluate only).
	Design string `json:"design,omitempty"`
}

// canonicalNetwork fills the network part of the hashing form. The
// Stage field is presentation-only (it groups report rows) and is
// excluded: two networks differing only in stage labels schedule
// identically.
func (c *canonicalRequest) canonicalNetwork(net models.Network) {
	c.Network = net.Name
	for _, l := range net.Layers {
		c.Layers = append(c.Layers, canonicalLayer{
			Name: l.Name, N: l.N, H: l.H, L: l.L, M: l.M,
			K: l.K, S: l.S, P: l.P, Groups: l.Groups,
		})
	}
}

// canonicalConfig fills the accelerator part of the hashing form.
func (c *canonicalRequest) canonicalConfig(cfg hw.Config) {
	c.ConfigName = cfg.Name
	c.ArrayM, c.ArrayN = cfg.ArrayM, cfg.ArrayN
	c.Mapping = int(cfg.Mapping)
	c.FrequencyHz = cfg.FrequencyHz
	c.LocalInput, c.LocalOutput, c.LocalWeight = cfg.LocalInput, cfg.LocalOutput, cfg.LocalWeight
	c.BufferWords = cfg.BufferWords
	c.BufferTech = int(cfg.BufferTech)
	c.BankWords = cfg.BankWords
}

// canonicalOptions fills the options part of the hashing form. tech is
// the resolved configuration's buffer technology, needed to normalize
// the default backend's explicit spelling away.
func (c *canonicalRequest) canonicalOptions(opts sched.Options, tech energy.BufferTech) {
	for _, k := range opts.Patterns {
		c.Patterns += k.String() + ","
	}
	c.RefreshNS = int64(opts.RefreshInterval)
	if opts.Controller != nil {
		c.Controller = opts.Controller.Name()
	}
	c.NaturalTiling = opts.NaturalTiling
	c.RetentionGuard = opts.Guard()
	if opts.FixedTiling != nil {
		t := *opts.FixedTiling
		c.FixedTiling = fmt.Sprintf("%d,%d,%d,%d", t.Tm, t.Tn, t.Tr, t.Tc)
	}
	c.Search = string(opts.Search.Resolve())
	if opts.Search.Resolve() == search.Beam {
		c.BeamWidth = search.EffectiveWidth(opts.BeamWidth)
	}
	c.Backend = mem.NormalizeName(opts.Backend, tech)
	c.OperatingPoint = opts.OperatingPoint
	c.ErrorBudget = opts.ErrorBudget
	// Options are resolved (validated) before hashing, so the canonical
	// spellings cannot fail here; the error branches keep the raw spec in
	// the key, which is safe (never a wrong collision, only a missed one).
	if tr, err := sched.CanonicalTraversalSpec(opts.Traversal); err == nil {
		c.Traversal = tr
	} else {
		c.Traversal = opts.Traversal
	}
	if mp, err := sched.CanonicalMappingSpec(opts.Mapping); err == nil {
		c.MapPolicy = mp
	} else {
		c.MapPolicy = opts.Mapping
	}
	if len(opts.LayerBudgets) > 0 {
		names := make([]string, 0, len(opts.LayerBudgets))
		for name := range opts.LayerBudgets {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			c.LayerBudgets += fmt.Sprintf("%s=%g,", name, opts.LayerBudgets[name])
		}
	}
}

// key hashes the canonical form.
func (c *canonicalRequest) key() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Invariant, not input validation: the form is a closed struct of
		// scalars built by this package, so marshalling cannot fail on any
		// request a client can send. Kept as a panic deliberately — the
		// request middleware's recover converts it to a 500 if it ever
		// fires, and converting it to an error here would hide the bug.
		panic("serve: canonical encoding: " + err.Error())
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// scheduleKey is the cache key of a resolved /v1/schedule request.
func scheduleKey(net models.Network, cfg hw.Config, opts sched.Options) string {
	c := canonicalRequest{Op: "schedule"}
	c.canonicalNetwork(net)
	c.canonicalConfig(cfg)
	c.canonicalOptions(opts, cfg.BufferTech)
	return c.key()
}

// scheduleDegradedKey keys a degraded /v1/schedule response. It must
// differ from every full-search key even when the resolved options
// coincide with the fallback options, because degraded bodies carry the
// "degraded" marker and the cache guarantees byte-identical hits — so
// the op string, not just the options, distinguishes the variants.
func scheduleDegradedKey(net models.Network, cfg hw.Config, opts sched.Options) string {
	c := canonicalRequest{Op: "schedule-degraded"}
	c.canonicalNetwork(net)
	c.canonicalConfig(cfg)
	c.canonicalOptions(opts, cfg.BufferTech)
	return c.key()
}

// scheduleBudgetFallbackKey keys a /v1/schedule response served via the
// budget-fallback rung: the pinned point broke a per-layer error budget
// and the nominal corner was substituted. The body carries the degraded
// marker, so — like the degraded rung — the op string must separate it
// from a genuine nominal-pinned request's entry.
func scheduleBudgetFallbackKey(net models.Network, cfg hw.Config, opts sched.Options) string {
	c := canonicalRequest{Op: "schedule-budget-fallback"}
	c.canonicalNetwork(net)
	c.canonicalConfig(cfg)
	c.canonicalOptions(opts, cfg.BufferTech)
	return c.key()
}

// compileKey is the cache key of a resolved /v1/compile request. The
// resolved Stage 2 strategy is part of the key: compilations under
// different strategies may legitimately produce different plans.
func compileKey(net models.Network, strategy search.Strategy) string {
	c := canonicalRequest{Op: "compile", Search: string(strategy.Resolve())}
	c.canonicalNetwork(net)
	return c.key()
}

// evaluateKey is the cache key of a resolved /v1/evaluate request.
// backend arrives already normalized (default adapter → ""), point
// verbatim, so the legacy (design, network) requests keep their keys.
func evaluateKey(design string, net models.Network, backend, point string) string {
	c := canonicalRequest{Op: "evaluate", Design: design, Backend: backend, OperatingPoint: point}
	c.canonicalNetwork(net)
	return c.key()
}
