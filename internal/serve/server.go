// Package serve is the ranad serving subsystem: a concurrent HTTP/JSON
// front end over the RANA compilation pipeline. Offline per-network
// characterization (Stage 1+2 of Fig. 6) is an artifact a fleet of
// accelerators shares, so the service is built around reuse: a
// canonical request hash feeds an LRU plan cache with singleflight
// dedup, a bounded worker pool caps concurrent schedule explorations,
// cancellation flows from the HTTP layer down into the per-layer
// scheduling loop, and shutdown drains in-flight work before returning.
//
// Endpoints:
//
//	POST /v1/schedule  Stage-2 schedule under explicit options
//	POST /v1/compile   full three-stage compilation
//	POST /v1/evaluate  one Table IV design point on one network
//	GET  /v1/catalog   served models, accelerators and designs
//	GET  /healthz      liveness
//	GET  /metrics      expvar counters + latency quantiles
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"time"

	"rana/internal/core"
	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address, e.g. ":8080". Used by ListenAndServe;
	// Serve takes an explicit listener.
	Addr string

	// Workers bounds concurrently executing schedule computations.
	// Defaults to GOMAXPROCS. Requests beyond the bound queue until a
	// slot frees or their timeout expires.
	Workers int

	// CacheEntries is the LRU plan cache capacity. Defaults to 256;
	// negative disables caching.
	CacheEntries int

	// RequestTimeout bounds one request end to end, including queueing
	// for a worker slot. Defaults to 60 s.
	RequestTimeout time.Duration

	// Logf receives request logs; nil discards them.
	Logf func(format string, args ...any)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is one ranad instance.
type Server struct {
	cfg     Config
	cache   *lru
	flights *flightGroup
	m       *metrics
	vars    fmt.Stringer // the /metrics document
	sem     chan struct{}

	baseCtx context.Context // canceled when Shutdown begins
	stop    context.CancelFunc

	httpSrv *http.Server

	// Computation seams, overridable in tests to count executions or
	// inject failures. Defaults are the real pipeline entry points.
	scheduleFn func(ctx context.Context, net models.Network, cfg hw.Config, opts sched.Options) (*sched.Plan, error)
	compileFn  func(ctx context.Context, net models.Network) (*core.Output, error)
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      newLRU(cfg.CacheEntries),
		flights:    newFlightGroup(base),
		m:          &metrics{},
		sem:        make(chan struct{}, cfg.Workers),
		baseCtx:    base,
		stop:       stop,
		scheduleFn: sched.ScheduleContext,
		compileFn: func(ctx context.Context, net models.Network) (*core.Output, error) {
			return core.New().CompileContext(ctx, net)
		},
	}
	s.vars = s.m.expvarMap()
	s.httpSrv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the service's HTTP handler — the full route table with
// middleware applied. Exposed for tests (httptest.Server) and for
// embedding ranad's API under a larger mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.Handle("/v1/schedule", s.api(s.handleSchedule))
	mux.Handle("/v1/compile", s.api(s.handleCompile))
	mux.Handle("/v1/evaluate", s.api(s.handleEvaluate))
	mux.HandleFunc("/v1/catalog", s.handleCatalog)
	return mux
}

// ListenAndServe serves on cfg.Addr until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Shutdown. Like http.Server.Serve it returns
// http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.cfg.Logf("ranad: serving on %s", ln.Addr())
	return s.httpSrv.Serve(ln)
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests (and the computations they queue on) get until ctx
// expires to drain, then the base context is canceled so abandoned
// computations stop exploring layers.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.stop()
	return err
}

// api wraps an endpoint handler with the service middleware: method
// gating, per-request timeout, metrics accounting and logging.
func (s *Server) api(h func(ctx context.Context, r *http.Request) (*response, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.error(w, &apiError{status: http.StatusMethodNotAllowed, msg: "use POST"})
			return
		}
		start := time.Now()
		s.m.Requests.Add(1)
		s.m.InFlight.Add(1)
		defer s.m.InFlight.Add(-1)
		defer func() { s.m.observe(time.Since(start)) }()

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()

		resp, err := h(ctx, r)
		if err != nil {
			s.error(w, err)
			s.cfg.Logf("ranad: %s %s -> error: %v (%v)", r.Method, r.URL.Path, err, time.Since(start))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Rana-Cache", resp.source)
		w.Header().Set("X-Rana-Key", resp.key)
		w.Write(resp.body)
		s.cfg.Logf("ranad: %s %s -> 200 %s (%v)", r.Method, r.URL.Path, resp.source, time.Since(start))
	})
}

// response is one successful API response: the exact bytes to send plus
// cache metadata (carried in headers, never in the body, so cached and
// uncached responses stay byte-identical).
type response struct {
	body   []byte
	key    string
	source string // "hit", "miss" or "dedup"
}

// error writes a JSON error response and counts it.
func (s *Server) error(w http.ResponseWriter, err error) {
	s.m.Errors.Add(1)
	status := http.StatusInternalServerError
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		status = ae.status
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away or the server is draining; 503 tells a
		// proxy the request is retryable elsewhere.
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// cached runs the cache → singleflight → worker-pool path shared by
// every computing endpoint: return the cached body for key if present,
// otherwise join or start the single computation for key, bounded by
// the worker pool, and cache its result.
func (s *Server) cached(ctx context.Context, key string, compute func(ctx context.Context) ([]byte, error)) (*response, error) {
	if body, ok := s.cache.Get(key); ok {
		s.m.CacheHits.Add(1)
		return &response{body: body, key: key, source: "hit"}, nil
	}
	body, shared, err := s.flights.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
		// One worker slot per *computation*, not per request: a hundred
		// deduplicated requests cost one slot.
		select {
		case s.sem <- struct{}{}:
		case <-fctx.Done():
			return nil, fctx.Err()
		}
		defer func() { <-s.sem }()
		body, err := compute(fctx)
		if err == nil {
			s.cache.Add(key, body)
		}
		return body, err
	})
	if err != nil {
		return nil, err
	}
	source := "miss"
	if shared {
		s.m.Deduped.Add(1)
	} else {
		s.m.CacheMisses.Add(1)
	}
	if shared {
		source = "dedup"
	}
	return &response{body: body, key: key, source: source}, nil
}
