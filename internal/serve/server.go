// Package serve is the ranad serving subsystem: a concurrent HTTP/JSON
// front end over the RANA compilation pipeline. Offline per-network
// characterization (Stage 1+2 of Fig. 6) is an artifact a fleet of
// accelerators shares, so the service is built around reuse: a
// canonical request hash feeds an LRU plan cache with singleflight
// dedup, a bounded worker pool caps concurrent schedule explorations,
// cancellation flows from the HTTP layer down into the per-layer
// scheduling loop, and shutdown drains in-flight work before returning.
//
// Endpoints:
//
//	POST /v1/schedule  Stage-2 schedule under explicit options
//	POST /v1/compile   full three-stage compilation
//	POST /v1/evaluate  one Table IV design point on one network
//	GET  /v1/catalog   served models, accelerators and designs
//	GET  /healthz      liveness
//	GET  /metrics      expvar counters + latency quantiles
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"time"

	"rana/internal/core"
	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched"
	"rana/internal/sched/search"
	"rana/internal/serve/chaos"
	"rana/internal/serve/shard"
	"rana/internal/serve/store"
)

// Config parameterizes a Server.
type Config struct {
	// Addr is the listen address, e.g. ":8080". Used by ListenAndServe;
	// Serve takes an explicit listener.
	Addr string

	// Workers bounds concurrently executing schedule computations.
	// Defaults to GOMAXPROCS. Requests beyond the bound queue until a
	// slot frees or their timeout expires.
	Workers int

	// CacheEntries is the LRU plan cache capacity. Defaults to 256;
	// negative disables caching.
	CacheEntries int

	// RequestTimeout bounds one request end to end, including queueing
	// for a worker slot. Defaults to 60 s.
	RequestTimeout time.Duration

	// QueueDepth bounds computations waiting for a worker slot beyond
	// the Workers already executing; a computation arriving past that is
	// shed with 429 + Retry-After instead of queueing. Defaults to
	// 4×Workers; negative means no waiting room at all.
	QueueDepth int

	// RetryAfter is the Retry-After hint on shed responses. Defaults
	// to 1 s.
	RetryAfter time.Duration

	// BreakerThreshold is the consecutive panic/timeout count that
	// opens a key's circuit breaker. Defaults to 3; negative disables
	// the breaker.
	BreakerThreshold int

	// BreakerBackoff is the first open window; it doubles per re-open.
	// Defaults to 1 s.
	BreakerBackoff time.Duration

	// DegradeBudget is the degradation-ladder threshold: a /v1/schedule
	// request with an explicit deadline below it gets a cheap uniform
	// fallback schedule marked "degraded" instead of the full hybrid
	// search. Defaults to 200 ms; negative disables degradation.
	DegradeBudget time.Duration

	// BeamBudget is the ladder's middle rung: a /v1/schedule request
	// whose deadline clears DegradeBudget but falls below BeamBudget —
	// and does not pin a "search" strategy itself — is explored with the
	// budgeted beam strategy instead of the full branch-and-bound.
	// Defaults to 1 s; negative disables the rung.
	BeamBudget time.Duration

	// Parallelism is the default per-layer search worker count applied
	// to computations whose request does not pin one. Zero selects
	// GOMAXPROCS (search.EffectiveParallelism). Plans are byte-identical
	// at every level, so this is a throughput knob only — it is excluded
	// from cache keys, and requests differing only in parallelism share
	// cache entries.
	Parallelism int

	// MemoEntries bounds the server-wide layer-shape memo shared across
	// every schedule and compile computation (sched.Memo). Zero selects
	// sched.DefaultMemoCapacity; negative disables the shared memo
	// (each compile still keeps its private per-compile memo). The same
	// knob gates the server-wide bound prefix-sum memo
	// (sched.PrefixMemo, default capacity) shared the same way.
	MemoEntries int

	// Chaos, when non-nil, injects faults into the computation path
	// (latency, stalls, cancellations, panics). Test/selfcheck only.
	Chaos *chaos.Injector

	// Store, when non-nil, is the persistent plan store. On construction
	// the server replays it into the LRU (warm restart); at runtime it is
	// a read-through/write-behind layer under the LRU, so every computed
	// plan survives a restart. The server does not Close it — the owner
	// (cmd/rana-serve) does, after Shutdown.
	Store *store.Store

	// Ring, when non-nil, makes this server one shard of a fleet: keys
	// whose ring owner is another node are forwarded there instead of
	// computed locally. ShardID must name this node's ring membership.
	Ring    *shard.Ring
	ShardID string

	// ForwardClient posts forwarded requests to peer nodes. Defaults to
	// a RetryClient with a short budget so a dead peer degrades into
	// local computation quickly. The server stamps its forwarding marker
	// header onto it.
	ForwardClient *RetryClient

	// JobCapacity bounds the async batch job table. Defaults to 64;
	// negative disables the batch API.
	JobCapacity int

	// AllowedBackends, when non-empty, restricts the memory-backend axis
	// to the listed registry names: a request naming any other backend is
	// rejected at admission with a 400. An omitted "backend" field — the
	// configuration's default technology adapter — is always admitted, so
	// the allowlist can only narrow the matrix, never break legacy
	// clients. Empty allows every registered backend.
	AllowedBackends []string

	// Logf receives request logs; nil discards them.
	Logf func(format string, args ...any)
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerBackoff <= 0 {
		c.BreakerBackoff = time.Second
	}
	if c.DegradeBudget == 0 {
		c.DegradeBudget = 200 * time.Millisecond
	}
	if c.BeamBudget == 0 {
		c.BeamBudget = time.Second
	}
	if c.JobCapacity == 0 {
		c.JobCapacity = 64
	}
	if c.JobCapacity < 0 {
		c.JobCapacity = 0
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is one ranad instance.
type Server struct {
	cfg     Config
	cache   *lru
	flights *flightGroup
	m       *metrics
	vars    fmt.Stringer  // the /metrics document
	sem     chan struct{} // worker slots: computations executing
	queue   chan struct{} // admission tokens: executing + waiting
	breaker *breaker      // nil when disabled

	baseCtx context.Context // canceled when Shutdown begins
	stop    context.CancelFunc

	httpSrv *http.Server

	// memo is the server-wide layer-shape exploration memo, shared by
	// every schedule and compile computation; nil when disabled.
	memo *sched.Memo

	// prefix is the server-wide bound prefix-sum memo (sched.PrefixMemo),
	// shared the same way and gated by the same MemoEntries knob; nil
	// when the shared caches are disabled.
	prefix *sched.PrefixMemo

	// jobs is the async batch job table; nil when the batch API is
	// disabled (JobCapacity < 0).
	jobs *jobTable

	// allowedBackends is the admission set built from
	// Config.AllowedBackends; nil admits every registered backend.
	allowedBackends map[string]bool

	// self is this node's ring membership; zero when not sharded.
	self shard.Node

	// Computation seams, overridable in tests to count executions or
	// inject failures. Defaults are the real pipeline entry points.
	scheduleFn func(ctx context.Context, net models.Network, cfg hw.Config, opts sched.Options) (*sched.Plan, error)
	compileFn  func(ctx context.Context, net models.Network, strategy search.Strategy, parallelism int) (*core.Output, error)
}

// New returns an unstarted server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	base, stop := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		cache:   newLRU(cfg.CacheEntries),
		flights: newFlightGroup(base),
		m:       newMetrics(),
		sem:     make(chan struct{}, cfg.Workers),
		queue:   make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		baseCtx: base,
		stop:    stop,
	}
	if cfg.MemoEntries >= 0 {
		s.memo = sched.NewMemo(cfg.MemoEntries)
		s.prefix = sched.NewPrefixMemo(0)
	}
	s.scheduleFn = sched.ScheduleContext
	s.compileFn = func(ctx context.Context, net models.Network, strategy search.Strategy, parallelism int) (*core.Output, error) {
		f := core.New()
		f.Search = strategy
		f.Parallelism = parallelism
		f.Memo = s.memo
		f.Prefix = s.prefix
		return f.CompileContext(ctx, net)
	}
	if cfg.BreakerThreshold > 0 {
		s.breaker = newBreaker(cfg.BreakerThreshold, cfg.BreakerBackoff,
			func() { s.m.BreakerOpenTotal.Add(1) })
	}
	s.flights.onDone = s.computationDone
	if cfg.JobCapacity > 0 {
		s.jobs = newJobTable(cfg.JobCapacity)
	}
	if len(cfg.AllowedBackends) > 0 {
		s.allowedBackends = make(map[string]bool, len(cfg.AllowedBackends))
		for _, name := range cfg.AllowedBackends {
			s.allowedBackends[name] = true
		}
	}
	if cfg.Ring != nil {
		// A ring without a resolvable self is a programmer error (the CLI
		// validates -shard-id against -peers before constructing one).
		self, ok := cfg.Ring.Node(cfg.ShardID)
		if !ok {
			panic(fmt.Sprintf("serve: ShardID %q is not a member of the ring", cfg.ShardID))
		}
		s.self = self
		if s.cfg.ForwardClient == nil {
			s.cfg.ForwardClient = &RetryClient{MaxAttempts: 2, Budget: 10 * time.Second}
		}
		if s.cfg.ForwardClient.Header == nil {
			s.cfg.ForwardClient.Header = http.Header{}
		}
		s.cfg.ForwardClient.Header.Set(ForwardedHeader, cfg.ShardID)
	}
	if cfg.Store != nil {
		// Warm restart: replay every persisted plan into the LRU so the
		// first request after a restart is a cache hit, not a recompile.
		// Range yields oldest first, so when the store holds more entries
		// than the LRU the newest plans win the cache slots (the rest stay
		// reachable via the read-through path).
		n := 0
		if err := cfg.Store.Range(func(key string, body []byte) error {
			s.cache.Add(key, body)
			n++
			return nil
		}); err != nil {
			cfg.Logf("ranad: warm-fill from %s stopped: %v", cfg.Store.Path(), err)
		}
		cfg.Logf("ranad: warm-filled %d plans from %s", n, cfg.Store.Path())
	}
	vars := s.m.expvarMap()
	if cfg.Ring != nil {
		vars.Set("shard_id", expvar.Func(func() any { return s.self.ID }))
		vars.Set("ring_nodes", expvar.Func(func() any { return cfg.Ring.Len() }))
	}
	if cfg.Store != nil {
		vars.Set("store_entries", expvar.Func(func() any { return cfg.Store.Stats().Entries }))
		vars.Set("store_bytes", expvar.Func(func() any { return cfg.Store.Stats().FileBytes }))
		vars.Set("store_replayed", expvar.Func(func() any { return cfg.Store.Stats().Replayed }))
	}
	if s.jobs != nil {
		vars.Set("jobs_tracked", expvar.Func(func() any { return s.jobs.len() }))
	}
	if s.memo != nil {
		// The shared memo's counters are read live at scrape time — they
		// advance inside computations, not on the request path.
		vars.Set("memo_hits", expvar.Func(func() any { return s.memo.Stats().Hits }))
		vars.Set("memo_misses", expvar.Func(func() any { return s.memo.Stats().Misses }))
		vars.Set("memo_entries", expvar.Func(func() any { return s.memo.Stats().Entries }))
	}
	if s.prefix != nil {
		vars.Set("memo_prefix_hits", expvar.Func(func() any { return s.prefix.Stats().Hits }))
		vars.Set("memo_prefix_misses", expvar.Func(func() any { return s.prefix.Stats().Misses }))
		vars.Set("memo_prefix_entries", expvar.Func(func() any { return s.prefix.Stats().Entries }))
	}
	s.vars = vars
	s.httpSrv = &http.Server{
		Addr:              cfg.Addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	return s
}

// Handler returns the service's HTTP handler — the full route table with
// middleware applied. Exposed for tests (httptest.Server) and for
// embedding ranad's API under a larger mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.counted("healthz", s.handleHealthz))
	mux.HandleFunc("/metrics", s.counted("metrics", s.handleMetrics))
	mux.Handle("/v1/schedule", s.api("schedule", s.handleSchedule))
	mux.Handle("/v1/compile", s.api("compile", s.handleCompile))
	mux.Handle("/v1/evaluate", s.api("evaluate", s.handleEvaluate))
	mux.HandleFunc("/v1/catalog", s.counted("catalog", s.handleCatalog))
	if s.jobs != nil {
		mux.Handle("/v1/compile-batch", s.api("compile_batch", s.handleCompileBatch))
		mux.HandleFunc("/v1/jobs/", s.handleJob)
	}
	return mux
}

// ListenAndServe serves on cfg.Addr until Shutdown.
func (s *Server) ListenAndServe() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve serves on ln until Shutdown. Like http.Server.Serve it returns
// http.ErrServerClosed after a clean shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.cfg.Logf("ranad: serving on %s", ln.Addr())
	return s.httpSrv.Serve(ln)
}

// Shutdown gracefully stops the server: the listener closes immediately,
// in-flight requests (and the computations they queue on) get until ctx
// expires to drain, then the base context is canceled so abandoned
// computations stop exploring layers.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.stop()
	return err
}

// api wraps an endpoint handler with the service middleware: method
// gating, per-request timeout, panic isolation, metrics accounting and
// logging.
func (s *Server) api(name string, h func(ctx context.Context, r *http.Request) (*response, error)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			s.m.status(name, s.error(w, &apiError{status: http.StatusMethodNotAllowed, msg: "use POST"}))
			return
		}
		start := time.Now()
		s.m.Requests.Add(1)
		s.m.InFlight.Add(1)
		defer s.m.InFlight.Add(-1)
		defer func() { s.m.observe(time.Since(start)) }()

		// Buffer the body so the shard router can forward the request
		// byte-for-byte; handlers keep decoding from r.Body unchanged.
		raw, rerr := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes+1))
		if rerr != nil {
			s.m.status(name, s.error(w, badRequest("reading request body: %v", rerr)))
			return
		}
		r.Body = io.NopCloser(bytes.NewReader(raw))
		rctx := context.WithValue(r.Context(), rawBodyKey{}, raw)
		if r.Header.Get(ForwardedHeader) != "" {
			s.m.ForwardedServed.Add(1)
			rctx = context.WithValue(rctx, forwardedKey{}, true)
		}
		ctx, cancel := context.WithTimeout(rctx, s.cfg.RequestTimeout)
		defer cancel()

		resp, err := s.guard(name, func() (*response, error) { return h(ctx, r) })
		if err != nil {
			status := s.error(w, err)
			s.m.status(name, status)
			s.cfg.Logf("ranad: %s %s -> %d: %v (%v)", r.Method, r.URL.Path, status, err, time.Since(start))
			return
		}
		status := resp.status
		if status == 0 {
			status = http.StatusOK
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Rana-Cache", resp.source)
		w.Header().Set("X-Rana-Key", resp.key)
		w.WriteHeader(status)
		w.Write(resp.body)
		s.m.status(name, status)
		s.cfg.Logf("ranad: %s %s -> %d %s (%v)", r.Method, r.URL.Path, status, resp.source, time.Since(start))
	})
}

// guard runs h with the handler-side panic isolation: a panic on the
// request path (decoding, resolving, hashing — anything outside the
// flight goroutine, which has its own recover) becomes a structured
// 500 instead of killing the process. Panics recovered here are counted
// directly; flight panics are counted in computationDone, so the two
// recovery sites never double-count one event.
func (s *Server) guard(name string, h func() (*response, error)) (resp *response, err error) {
	defer func() {
		if r := recover(); r != nil {
			pe := &panicError{val: r, stack: debug.Stack()}
			s.m.PanicsRecovered.Add(1)
			s.cfg.Logf("ranad: recovered handler panic on %s: %v\n%s", name, r, pe.stack)
			resp, err = nil, pe
		}
	}()
	return h()
}

// counted wraps the always-available GET endpoints (health, metrics,
// catalog) with status accounting only: they must stay off the
// admission path so they answer even when the pool is saturated.
func (s *Server) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h(w, r)
		s.m.status(name, http.StatusOK)
	}
}

// response is one successful API response: the exact bytes to send plus
// cache metadata (carried in headers, never in the body, so cached and
// uncached responses stay byte-identical).
type response struct {
	body   []byte
	key    string
	source string // "hit", "miss", "dedup", "store", "forward" or "job"
	status int    // HTTP status; 0 means 200
}

// error writes a JSON error response, counts it, and returns the
// status it sent so the caller can attribute it per endpoint.
func (s *Server) error(w http.ResponseWriter, err error) int {
	s.m.Errors.Add(1)
	status := http.StatusInternalServerError
	var ae *apiError
	switch {
	case errors.As(err, &ae):
		status = ae.status
		if ae.retryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(ae.retryAfter)))
		}
	case isPanic(err):
		// Keep 500: a recovered panic is a server bug, never the
		// client's fault, even if a ctx error is also in the chain.
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		// The client went away or the server is draining; 503 tells a
		// proxy the request is retryable elsewhere.
		status = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
	return status
}

// retryAfterSeconds renders a duration as a Retry-After value: whole
// seconds, rounded up, at least 1 (a 0 tells clients to hammer).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// isPanic reports whether err is a recovered panic from either
// isolation layer: the flight goroutine (*panicError) or the
// scheduler's per-layer workers (*sched.PanicError).
func isPanic(err error) bool {
	var pe *panicError
	var spe *sched.PanicError
	return errors.As(err, &pe) || errors.As(err, &spe)
}

// cached runs the cache → store → singleflight → worker-pool path
// shared by every computing endpoint: return the cached body for key if
// present, otherwise join or start the single computation for key,
// bounded by the worker pool, and cache its result.
func (s *Server) cached(ctx context.Context, key string, compute func(ctx context.Context) ([]byte, error)) (*response, error) {
	return s.cachedMode(ctx, key, false, compute)
}

// cachedMode is cached with the admission mode explicit: synchronous
// requests shed immediately when the queue is full (wait=false, the
// 429 + Retry-After contract), while async batch entries wait for a
// token (wait=true — a job holding no HTTP connection has nowhere to
// bounce a 429 to, and the job table already bounds outstanding work).
func (s *Server) cachedMode(ctx context.Context, key string, wait bool, compute func(ctx context.Context) ([]byte, error)) (*response, error) {
	if body, ok := s.cache.Get(key); ok {
		s.m.CacheHits.Add(1)
		return &response{body: body, key: key, source: "hit"}, nil
	}
	// The persistent store is the second cache tier: entries evicted
	// from the LRU (or never warm-filled into it) are still served
	// without recompiling. Like the LRU, it is consulted before the
	// breaker — persisted bytes are proven good.
	if s.cfg.Store != nil {
		if body, ok := s.cfg.Store.Get(key); ok {
			s.m.StoreHits.Add(1)
			s.cache.Add(key, body)
			return &response{body: body, key: key, source: "store"}, nil
		}
	}
	if wait, ok := s.breaker.allow(key); !ok {
		s.m.BreakerFastFails.Add(1)
		return nil, &apiError{
			status:     http.StatusServiceUnavailable,
			msg:        "circuit open: this request has repeatedly panicked or timed out; retry later",
			retryAfter: wait,
		}
	}
	body, shared, err := s.flights.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
		// Admission and the worker slot are per *computation*, not per
		// request: a hundred deduplicated requests cost one queue token
		// and one slot, and joining an existing flight is never shed.
		if wait {
			if err := s.admitWait(fctx); err != nil {
				return nil, err
			}
		} else if err := s.admit(); err != nil {
			return nil, err
		}
		defer s.releaseQueue()
		select {
		case s.sem <- struct{}{}:
		case <-fctx.Done():
			return nil, fctx.Err()
		}
		defer func() { <-s.sem }()
		if s.cfg.Chaos != nil {
			if err := s.cfg.Chaos.Inject(fctx); err != nil {
				return nil, err
			}
		}
		body, err := compute(fctx)
		if err == nil {
			s.remember(key, body)
		}
		return body, err
	})
	if err != nil {
		return nil, err
	}
	source := "miss"
	if shared {
		s.m.Deduped.Add(1)
	} else {
		s.m.CacheMisses.Add(1)
	}
	if shared {
		source = "dedup"
	}
	return &response{body: body, key: key, source: source}, nil
}

// remember records a proven-good response body in both cache tiers.
// A store write failure is logged, never surfaced: the bytes are
// correct and servable, durability is best-effort. The one exception
// worth shouting about is the store's determinism tripwire — a re-put
// of the same key with different bytes — which Put rejects.
func (s *Server) remember(key string, body []byte) {
	s.cache.Add(key, body)
	if s.cfg.Store != nil {
		if err := s.cfg.Store.Put(key, body); err != nil {
			s.cfg.Logf("ranad: store put %s: %v", key, err)
		}
	}
}

// computationDone observes every flight's outcome exactly once (the
// flightGroup calls it after fn returns, however many waiters shared
// the flight): panic accounting and cache eviction for poisoned keys,
// plus circuit-breaker bookkeeping.
func (s *Server) computationDone(key string, err error) {
	if err == nil {
		s.breaker.record(key, false, true)
		return
	}
	tripped := false
	switch {
	case isPanic(err):
		tripped = true
		s.m.PanicsRecovered.Add(1)
		s.cache.Remove(key)
		var pe *panicError
		if errors.As(err, &pe) {
			s.cfg.Logf("ranad: recovered computation panic for %s: %v\n%s", key, pe.val, pe.stack)
		} else {
			var spe *sched.PanicError
			if errors.As(err, &spe) {
				s.cfg.Logf("ranad: recovered scheduler panic for %s: %v\n%s", key, spe.Value, spe.Stack)
			}
		}
	case errors.Is(err, context.DeadlineExceeded):
		tripped = true
	}
	s.breaker.record(key, tripped, false)
}
