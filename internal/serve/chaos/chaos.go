// Package chaos is the fault-injection seam of the ranad serving
// subsystem. An Injector sits on the computation path (the server calls
// Inject once per scheduled computation, while holding a worker slot)
// and deterministically converts every Nth computation into a fault:
// added latency, a worker-starving stall, an injected cancellation, or
// a panic.
//
// Determinism is the point — chaos tests must fail reproducibly. Fault
// *scheduling* is purely counter-based (every Nth computation, in a
// fixed check order), so a given request sequence always hits the same
// faults; the seed only jitters fault *durations* within ±50% so that
// latency faults do not resonate with pollers.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected marks an injected cancellation. It wraps context.Canceled
// so the serving middleware classifies it exactly like a real
// cancellation (503, retryable).
var ErrInjected = fmt.Errorf("chaos: injected cancellation: %w", context.Canceled)

// Config selects which faults fire and how often. A zero Every disables
// that fault. Counters are per-injector and per-computation: PanicEvery
// = 3 panics computations 3, 6, 9, …
type Config struct {
	// Seed drives duration jitter only (never fault scheduling).
	Seed int64
	// PanicEvery panics every Nth computation.
	PanicEvery int
	// LatencyEvery sleeps ~Latency (jittered) every Nth computation.
	LatencyEvery int
	Latency      time.Duration
	// CancelEvery fails every Nth computation with ErrInjected.
	CancelEvery int
	// StarveEvery stalls every Nth computation for ~Starve while it
	// holds its worker slot, starving the pool.
	StarveEvery int
	Starve      time.Duration
}

// Stats counts the faults an Injector has fired.
type Stats struct {
	Computations int64
	Panics       int64
	Latencies    int64
	Cancels      int64
	Starves      int64
}

// Injector injects the configured faults. Safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	rng   *rand.Rand
	stats Stats
}

// New returns an injector for cfg.
func New(cfg Config) *Injector {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// plan is the set of faults one computation drew.
type plan struct {
	latency time.Duration
	starve  time.Duration
	cancel  bool
	panicN  int64 // >0: panic, carrying the computation number
}

// draw advances the computation counter and decides this computation's
// faults under the lock; sleeping and panicking happen outside it.
func (i *Injector) draw() plan {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.stats.Computations++
	n := i.stats.Computations
	var p plan
	every := func(e int) bool { return e > 0 && n%int64(e) == 0 }
	if every(i.cfg.LatencyEvery) {
		i.stats.Latencies++
		p.latency = i.jitterLocked(i.cfg.Latency)
	}
	if every(i.cfg.StarveEvery) {
		i.stats.Starves++
		p.starve = i.jitterLocked(i.cfg.Starve)
	}
	if every(i.cfg.CancelEvery) {
		i.stats.Cancels++
		p.cancel = true
	}
	if every(i.cfg.PanicEvery) {
		i.stats.Panics++
		p.panicN = n
	}
	return p
}

// jitterLocked scales d to 50%–150%. Callers hold i.mu.
func (i *Injector) jitterLocked(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration((0.5 + i.rng.Float64()) * float64(d))
}

// Inject fires this computation's faults: it may sleep (latency and
// starvation faults, interruptible by ctx), return an error (injected
// cancellation) or panic. The caller is expected to run it under the
// same recover discipline as the real computation.
func (i *Injector) Inject(ctx context.Context) error {
	p := i.draw()
	for _, d := range []time.Duration{p.latency, p.starve} {
		if d <= 0 {
			continue
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	if p.cancel {
		return ErrInjected
	}
	if p.panicN > 0 {
		panic(fmt.Sprintf("chaos: injected panic (computation %d)", p.panicN))
	}
	return nil
}

// Stats returns a snapshot of the fault counts.
func (i *Injector) Stats() Stats {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.stats
}

// ParseSpec parses the -chaos flag syntax: comma-separated faults, each
// "name=N" or "name=N:duration".
//
//	panic=7,latency=3:50ms,cancel=11,starve=13:200ms,seed=42
//
// means: panic every 7th computation, add ~50 ms to every 3rd, cancel
// every 11th, stall every 13th for ~200 ms, jitter-seed 42.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, errors.New("chaos: empty spec")
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return Config{}, fmt.Errorf("chaos: %q is not name=value", part)
		}
		count, dur, hasDur := strings.Cut(val, ":")
		n, err := strconv.Atoi(count)
		if err != nil || n < 0 {
			return Config{}, fmt.Errorf("chaos: bad count in %q", part)
		}
		var d time.Duration
		if hasDur {
			if d, err = time.ParseDuration(dur); err != nil || d < 0 {
				return Config{}, fmt.Errorf("chaos: bad duration in %q", part)
			}
		}
		switch name {
		case "seed":
			cfg.Seed = int64(n)
		case "panic":
			cfg.PanicEvery = n
		case "cancel":
			cfg.CancelEvery = n
		case "latency":
			if !hasDur {
				return Config{}, fmt.Errorf("chaos: %q needs a duration (latency=N:dur)", part)
			}
			cfg.LatencyEvery, cfg.Latency = n, d
		case "starve":
			if !hasDur {
				return Config{}, fmt.Errorf("chaos: %q needs a duration (starve=N:dur)", part)
			}
			cfg.StarveEvery, cfg.Starve = n, d
		default:
			return Config{}, fmt.Errorf("chaos: unknown fault %q", name)
		}
	}
	return cfg, nil
}
