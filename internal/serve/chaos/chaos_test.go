package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("panic=7,latency=3:50ms,cancel=11,starve=13:200ms,seed=42")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed: 42, PanicEvery: 7,
		LatencyEvery: 3, Latency: 50 * time.Millisecond,
		CancelEvery: 11,
		StarveEvery: 13, Starve: 200 * time.Millisecond,
	}
	if cfg != want {
		t.Errorf("parsed %+v, want %+v", cfg, want)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"", "panic", "panic=x", "panic=-1", "latency=3",
		"latency=3:xyz", "starve=2", "quake=3", "panic=1:5ms:extra=",
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q: no error", spec)
		}
	}
}

func TestDeterministicFaultSchedule(t *testing.T) {
	// Two injectors with the same config must fault the same
	// computations in the same order, regardless of seed-driven jitter.
	run := func() []string {
		i := New(Config{PanicEvery: 3, CancelEvery: 4})
		var got []string
		for n := 1; n <= 12; n++ {
			func() {
				defer func() {
					if recover() != nil {
						got = append(got, "panic")
					}
				}()
				switch err := i.Inject(context.Background()); {
				case err == nil:
					got = append(got, "ok")
				case errors.Is(err, ErrInjected):
					got = append(got, "cancel")
				default:
					got = append(got, "err")
				}
			}()
		}
		return got
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("schedules differ:\n%v\n%v", a, b)
	}
	want := "ok,ok,panic,cancel,ok,panic,ok,cancel,panic,ok,ok,cancel"
	if got := strings.Join(a, ","); got != want {
		t.Errorf("schedule %v, want %v", got, want)
	}
}

func TestInjectedCancellationIsContextCanceled(t *testing.T) {
	i := New(Config{CancelEvery: 1})
	err := i.Inject(context.Background())
	if !errors.Is(err, context.Canceled) {
		t.Errorf("injected cancellation %v does not wrap context.Canceled", err)
	}
	if s := i.Stats(); s.Cancels != 1 || s.Computations != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLatencyRespectsContext(t *testing.T) {
	i := New(Config{LatencyEvery: 1, Latency: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- i.Inject(ctx) }()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Inject ignored context cancellation")
	}
}

func TestJitterStaysWithinBounds(t *testing.T) {
	i := New(Config{Seed: 7})
	for n := 0; n < 1000; n++ {
		d := i.jitterLocked(100 * time.Millisecond)
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jitter %v outside [50ms, 150ms]", d)
		}
	}
}
