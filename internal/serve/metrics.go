package serve

// Service metrics, built on expvar types but deliberately not published
// to the process-global expvar registry: a test binary starts many
// servers and expvar.Publish panics on duplicate names. The /metrics
// endpoint serializes an expvar.Map — the standard expvar JSON shape —
// so scrapers written against DebugVars work unchanged.

import (
	"expvar"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"
)

// latWindow is the sliding window of request latencies the quantile
// estimates are computed over.
const latWindow = 1024

// metrics aggregates the service counters of one server.
type metrics struct {
	Requests    expvar.Int // total requests admitted to API handlers
	Errors      expvar.Int // responses with status >= 400
	CacheHits   expvar.Int // responses served from the plan cache
	CacheMisses expvar.Int // responses that ran a computation
	Deduped     expvar.Int // responses that joined an in-flight computation
	InFlight    expvar.Int // currently executing API requests

	// Robustness counters.
	PanicsRecovered  expvar.Int // computation/handler panics converted to 500s
	Shed             expvar.Int // computations rejected by the admission queue
	Degraded         expvar.Int // responses served via the degradation ladder
	BreakerOpenTotal expvar.Int // per-key breaker closed→open transitions
	BreakerFastFails expvar.Int // requests fast-failed by an open breaker

	// Fault-admission counters.
	FaultInjections  expvar.Int // computations whose plan places data at a fault-exposed (non-nominal) operating point
	BudgetRejections expvar.Int // requests rejected or degraded by a per-layer error-budget check

	// Fleet counters.
	StoreHits       expvar.Int // responses served from the persistent plan store
	Forwards        expvar.Int // computations forwarded to their ring owner
	ForwardFails    expvar.Int // forwards that fell back to local computation
	ForwardedServed expvar.Int // requests served because a peer forwarded them here

	// Async job counters.
	JobsAccepted expvar.Int // batch jobs accepted (202)
	JobsDone     expvar.Int // batch jobs run to completion
	JobsCanceled expvar.Int // batch jobs canceled before completion
	JobsEvicted  expvar.Int // finished jobs evicted to bound the table

	// Statuses counts responses per endpoint and status class, with
	// keys like "schedule_2xx" or "healthz_5xx" (expvar.Map.Add is
	// concurrency-safe).
	Statuses expvar.Map

	// Parallelism counts computations per effective search worker count
	// (key = the resolved level, e.g. "4"). Only actual computations are
	// counted — cache hits and dedup joins did no search work.
	Parallelism expvar.Map

	mu   sync.Mutex
	lats [latWindow]time.Duration
	n    int // total observations; lats is a ring at n % latWindow
}

// newMetrics returns initialized metrics (expvar.Map needs Init).
func newMetrics() *metrics {
	m := &metrics{}
	m.Statuses.Init()
	m.Parallelism.Init()
	return m
}

// computed records one computation's effective parallelism level.
func (m *metrics) computed(workers int) {
	m.Parallelism.Add(strconv.Itoa(workers), 1)
}

// status records one response's endpoint and status class.
func (m *metrics) status(endpoint string, code int) {
	m.Statuses.Add(fmt.Sprintf("%s_%dxx", endpoint, code/100), 1)
}

// observe records one request latency.
func (m *metrics) observe(d time.Duration) {
	m.mu.Lock()
	m.lats[m.n%latWindow] = d
	m.n++
	m.mu.Unlock()
}

// quantiles returns the p50 and p95 of the window.
func (m *metrics) quantiles() (p50, p95 time.Duration) {
	m.mu.Lock()
	n := m.n
	if n > latWindow {
		n = latWindow
	}
	window := make([]time.Duration, n)
	copy(window, m.lats[:n])
	m.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
	// Nearest-rank on the sorted window.
	rank := func(q float64) time.Duration {
		i := int(q * float64(n-1))
		return window[i]
	}
	return rank(0.50), rank(0.95)
}

// expvarMap assembles the expvar view served at /metrics.
func (m *metrics) expvarMap() *expvar.Map {
	em := new(expvar.Map).Init()
	em.Set("requests", &m.Requests)
	em.Set("errors", &m.Errors)
	em.Set("cache_hits", &m.CacheHits)
	em.Set("cache_misses", &m.CacheMisses)
	em.Set("deduped", &m.Deduped)
	em.Set("in_flight", &m.InFlight)
	em.Set("panics_recovered", &m.PanicsRecovered)
	em.Set("shed", &m.Shed)
	em.Set("degraded", &m.Degraded)
	em.Set("breaker_open_total", &m.BreakerOpenTotal)
	em.Set("breaker_fast_fails", &m.BreakerFastFails)
	em.Set("fault_injections", &m.FaultInjections)
	em.Set("budget_rejections", &m.BudgetRejections)
	em.Set("store_hits", &m.StoreHits)
	em.Set("forwards", &m.Forwards)
	em.Set("forward_fails", &m.ForwardFails)
	em.Set("forwarded_served", &m.ForwardedServed)
	em.Set("jobs_accepted", &m.JobsAccepted)
	em.Set("jobs_done", &m.JobsDone)
	em.Set("jobs_canceled", &m.JobsCanceled)
	em.Set("jobs_evicted", &m.JobsEvicted)
	em.Set("statuses", &m.Statuses)
	em.Set("parallelism", &m.Parallelism)
	em.Set("latency_p50_ms", expvar.Func(func() any {
		p50, _ := m.quantiles()
		return float64(p50) / float64(time.Millisecond)
	}))
	em.Set("latency_p95_ms", expvar.Func(func() any {
		_, p95 := m.quantiles()
		return float64(p95) / float64(time.Millisecond)
	}))
	return em
}

// String renders the expvar JSON document.
func (m *metrics) String() string {
	return fmt.Sprint(m.expvarMap())
}
