package serve

// Race-focused tests of the cache/singleflight machinery, written to be
// meaningful under `go test -race`: concurrent identical requests must
// run exactly one underlying schedule and return byte-identical bodies;
// concurrent distinct requests must not serialize onto one flight; the
// metrics must balance.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched"
)

// countingScheduleFn wraps the real scheduler with an execution counter
// and an optional entry gate that makes the computation slow enough for
// all concurrent requests to pile onto one flight.
func countingScheduleFn(calls *atomic.Int64, gate chan struct{}) func(context.Context, models.Network, hw.Config, sched.Options) (*sched.Plan, error) {
	return func(ctx context.Context, net models.Network, cfg hw.Config, opts sched.Options) (*sched.Plan, error) {
		calls.Add(1)
		if gate != nil {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return sched.ScheduleContext(ctx, net, cfg, opts)
	}
}

func TestConcurrentIdenticalRequestsRunOneSchedule(t *testing.T) {
	const n = 32
	var calls atomic.Int64
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 4})
	s.scheduleFn = countingScheduleFn(&calls, gate)

	// N identical requests in flight at once. The gate holds the single
	// computation open until all requests have been admitted, so every
	// one of them must resolve through the same flight.
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var admitted sync.WaitGroup
	admitted.Add(n)
	go func() {
		admitted.Wait()
		// All requests sent; let the one computation proceed shortly
		// after, giving stragglers time to join the flight.
		time.Sleep(10 * time.Millisecond)
		close(gate)
	}()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest("POST", ts.URL+"/v1/schedule",
				strings.NewReader(`{"network": `+tinyNetJSON+`}`))
			req.Header.Set("Content-Type", "application/json")
			admitted.Done()
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, buf.String())
				return
			}
			bodies[i] = buf.Bytes()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Exactly one underlying schedule execution.
	if got := calls.Load(); got != 1 {
		t.Errorf("schedule executed %d times for %d identical requests, want 1", got, n)
	}
	// Byte-identical bodies across all requests.
	for i := 1; i < n; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("request %d body differs from request 0", i)
		}
	}
	// And a later request — now a pure cache hit — returns those same
	// bytes.
	resp := post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`)
	late := readBody(t, resp)
	if resp.Header.Get("X-Rana-Cache") != "hit" {
		t.Errorf("late request source = %q, want hit", resp.Header.Get("X-Rana-Cache"))
	}
	if !bytes.Equal(bodies[0], late) {
		t.Error("cached body differs from computed body")
	}

	// Metrics must balance: one miss, everything else a hit or deduped.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeMetrics(t, readBody(t, mresp))
	if m["cache_misses"] != 1 {
		t.Errorf("cache_misses = %v, want 1", m["cache_misses"])
	}
	if m["cache_hits"]+m["deduped"] != n {
		t.Errorf("hits %v + deduped %v != %d", m["cache_hits"], m["deduped"], n)
	}
	if m["requests"] != n+1 {
		t.Errorf("requests = %v, want %d", m["requests"], n+1)
	}
	if m["errors"] != 0 {
		t.Errorf("errors = %v, want 0", m["errors"])
	}
}

func TestConcurrentDistinctRequests(t *testing.T) {
	// Distinct requests must each run their own computation (no false
	// dedup) while still being admitted concurrently.
	const n = 8
	var calls atomic.Int64
	s, ts := newTestServer(t, Config{Workers: 4})
	s.scheduleFn = countingScheduleFn(&calls, nil)

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Vary the kernel count so every request hashes differently.
			body := fmt.Sprintf(`{"network": {"name": "net%d", "layers": [
				{"name": "l0", "n": 2, "h": 8, "l": 8, "m": %d, "k": 3, "s": 1, "p": 1}
			]}}`, i, 2+i)
			resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if got := calls.Load(); got != n {
		t.Errorf("schedule executed %d times for %d distinct requests, want %d", got, n, n)
	}
	if got := s.cache.Len(); got != n {
		t.Errorf("cache holds %d entries, want %d", got, n)
	}
}

func TestFlightGroupSharesOneExecution(t *testing.T) {
	g := newFlightGroup(context.Background())
	var execs atomic.Int64
	release := make(chan struct{})
	const n = 16
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _, err := g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
				execs.Add(1)
				<-release
				return []byte("result"), nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = body
		}(i)
	}
	// Let every goroutine reach Do before releasing the computation.
	for {
		g.mu.Lock()
		f := g.flights["k"]
		refs := 0
		if f != nil {
			refs = f.refs
		}
		g.mu.Unlock()
		if refs == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := execs.Load(); got != 1 {
		t.Errorf("executed %d times, want 1", got)
	}
	for i, r := range results {
		if string(r) != "result" {
			t.Errorf("waiter %d got %q", i, r)
		}
	}
}

func TestFlightCanceledWhenAllWaitersLeave(t *testing.T) {
	g := newFlightGroup(context.Background())
	computeCanceled := make(chan struct{})
	started := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(fctx context.Context) ([]byte, error) {
			close(started)
			<-fctx.Done()
			close(computeCanceled)
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel() // the only waiter leaves
	select {
	case <-computeCanceled:
	case <-time.After(2 * time.Second):
		t.Fatal("computation not canceled after all waiters left")
	}
	if err := <-done; err != context.Canceled {
		t.Errorf("waiter error = %v, want context.Canceled", err)
	}
}

func TestFlightSurvivesOneImpatientWaiter(t *testing.T) {
	g := newFlightGroup(context.Background())
	release := make(chan struct{})
	impatient, cancelImpatient := context.WithCancel(context.Background())

	patientDone := make(chan string, 1)
	started := make(chan struct{})
	go func() {
		body, _, err := g.Do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
			close(started)
			select {
			case <-release:
				return []byte("ok"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
		if err != nil {
			patientDone <- "err:" + err.Error()
			return
		}
		patientDone <- string(body)
	}()
	<-started

	impatientDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(impatient, "k", func(ctx context.Context) ([]byte, error) {
			panic("second execution")
		})
		impatientDone <- err
	}()
	// Wait until the impatient waiter has joined the flight.
	for {
		g.mu.Lock()
		f := g.flights["k"]
		refs := 0
		if f != nil {
			refs = f.refs
		}
		g.mu.Unlock()
		if refs == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancelImpatient()
	if err := <-impatientDone; err != context.Canceled {
		t.Fatalf("impatient waiter error = %v, want context.Canceled", err)
	}
	close(release)
	if got := <-patientDone; got != "ok" {
		t.Errorf("patient waiter got %q; one impatient client poisoned the flight", got)
	}
}

func TestShutdownDrainsInFlightRequests(t *testing.T) {
	// A request admitted before Shutdown must complete; Shutdown must
	// not return until it has. This test runs the server's own Serve
	// loop (not httptest) so Shutdown drains the real listener.
	var calls atomic.Int64
	gate := make(chan struct{})
	s := New(Config{})
	s.scheduleFn = countingScheduleFn(&calls, gate)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ln) }()
	url := "http://" + ln.Addr().String()

	bodyc := make(chan *http.Response, 1)
	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(url+"/v1/schedule", "application/json",
			strings.NewReader(`{"network": `+tinyNetJSON+`}`))
		if err != nil {
			errc <- err
			return
		}
		bodyc <- resp
	}()
	// Wait for the request to be in flight.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	// Shutdown is now draining; the in-flight request is still blocked
	// on the gate. Release it and everything must unwind cleanly.
	time.Sleep(10 * time.Millisecond)
	close(gate)

	select {
	case err := <-errc:
		t.Fatalf("in-flight request failed during drain: %v", err)
	case resp := <-bodyc:
		body := readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("in-flight request status %d during drain: %s", resp.StatusCode, body)
		}
		var sr ScheduleResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("drained response not valid JSON: %v", err)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("shutdown error: %v", err)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}
