package serve

import (
	"strings"
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched"
	"rana/internal/sched/search"
)

func TestLRUEviction(t *testing.T) {
	c := newLRU(2)
	c.Add("a", []byte("A"))
	c.Add("b", []byte("B"))
	// Touch "a" so "b" is the eviction victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Add("c", []byte("C"))
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || string(v) != "A" {
		t.Error("a lost")
	}
	if v, ok := c.Get("c"); !ok || string(v) != "C" {
		t.Error("c lost")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestLRURefreshExistingKey(t *testing.T) {
	c := newLRU(2)
	c.Add("a", []byte("A1"))
	c.Add("a", []byte("A2"))
	if c.Len() != 1 {
		t.Errorf("len = %d, want 1", c.Len())
	}
	if v, _ := c.Get("a"); string(v) != "A2" {
		t.Errorf("a = %q", v)
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(-1)
	c.Add("a", []byte("A"))
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache stored an entry")
	}
}

// defaultOpts mirrors the service's resolved default options.
func defaultOpts() sched.Options {
	return sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: 734 * time.Microsecond,
		Controller:      memctrl.RefreshOptimized{},
	}
}

func TestCanonicalKeyCollapsesEquivalentRequests(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	// The named benchmark and the same shapes spelled out layer by
	// layer must hash identically.
	named := models.AlexNet()
	spelled := models.Network{Name: "AlexNet"}
	for _, l := range named.Layers {
		l.Stage = "renamed-" + l.Stage // stage labels must not matter
		spelled.Layers = append(spelled.Layers, l)
	}
	k1 := scheduleKey(named, cfg, defaultOpts())
	k2 := scheduleKey(spelled, cfg, defaultOpts())
	if k1 != k2 {
		t.Error("equivalent networks hash differently")
	}
}

func TestCanonicalKeySeparatesDistinctRequests(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	base := scheduleKey(models.AlexNet(), cfg, defaultOpts())
	seen := map[string]string{base: "base"}
	record := func(name, key string) {
		if prev, ok := seen[key]; ok {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[key] = name
	}

	record("different network", scheduleKey(models.VGG(), cfg, defaultOpts()))

	o := defaultOpts()
	o.RefreshInterval = 45 * time.Microsecond
	record("different interval", scheduleKey(models.AlexNet(), cfg, o))

	o = defaultOpts()
	o.Controller = memctrl.Conventional{}
	record("different controller", scheduleKey(models.AlexNet(), cfg, o))

	o = defaultOpts()
	o.Patterns = []pattern.Kind{pattern.OD}
	record("different patterns", scheduleKey(models.AlexNet(), cfg, o))

	o = defaultOpts()
	o.NaturalTiling = true
	record("natural tiling", scheduleKey(models.AlexNet(), cfg, o))

	o = defaultOpts()
	o.FixedTiling = &pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	record("fixed tiling", scheduleKey(models.AlexNet(), cfg, o))

	record("different capacity",
		scheduleKey(models.AlexNet(), cfg.WithBufferWords(cfg.BufferWords*2), defaultOpts()))

	// The three ops namespace their keys.
	record("compile", compileKey(models.AlexNet(), ""))
	record("compile beam", compileKey(models.AlexNet(), search.Beam))
	record("evaluate", evaluateKey("RANA*(E-5)", models.AlexNet(), "", ""))
	record("evaluate other design", evaluateKey("S+ID", models.AlexNet(), "", ""))

	// The backend axis forks keys: a non-default backend, a pinned point
	// and a raised budget are distinct computations.
	o = defaultOpts()
	o.Backend = "approx-dram"
	record("approx backend", scheduleKey(models.AlexNet(), cfg, o))
	o.OperatingPoint = "v0.8"
	record("pinned point", scheduleKey(models.AlexNet(), cfg, o))
	o.OperatingPoint = mem.Nominal
	record("pinned nominal", scheduleKey(models.AlexNet(), cfg, o))
	o = defaultOpts()
	o.Backend = "approx-dram"
	o.ErrorBudget = 1e-3
	record("raised budget", scheduleKey(models.AlexNet(), cfg, o))
	record("evaluate backend", evaluateKey("RANA*(E-5)", models.AlexNet(), "approx-dram", "v0.8"))
}

func TestBackendKeyNormalization(t *testing.T) {
	// The explicit default backend spelling must collapse onto the legacy
	// empty-spelling key — same computation, byte-identical plans — while
	// pinning the nominal point must NOT collapse onto the unpinned
	// spelling: on multi-point backends an open axis is a different
	// search space.
	cfg := hw.TestAcceleratorEDRAM()
	legacy := scheduleKey(models.AlexNet(), cfg, defaultOpts())
	o := defaultOpts()
	o.Backend = mem.DefaultName(cfg.BufferTech)
	if got := scheduleKey(models.AlexNet(), cfg, o); got != legacy {
		t.Error("explicit default backend must share the legacy key")
	}
	o = defaultOpts()
	o.Backend = "approx-dram"
	open := scheduleKey(models.AlexNet(), cfg, o)
	o.OperatingPoint = mem.Nominal
	if got := scheduleKey(models.AlexNet(), cfg, o); got == open {
		t.Error("pinned nominal point must not share the open-axis key")
	}
}

func TestCanonicalKeyIsStable(t *testing.T) {
	// The key feeds persistent client-side stores; accidental format
	// drift should be loud. Recompute twice and check shape. The empty
	// strategy resolves to the pruned default before hashing, so the two
	// spellings must collide.
	k1 := compileKey(models.AlexNet(), "")
	k2 := compileKey(models.AlexNet(), search.Pruned)
	if k1 != k2 {
		t.Error("empty strategy must hash like the resolved pruned default")
	}
	if len(k1) != 64 || strings.Trim(k1, "0123456789abcdef") != "" {
		t.Errorf("key %q is not lowercase hex SHA-256", k1)
	}
}

func TestGuardDefaultCanonicalization(t *testing.T) {
	// RetentionGuard 0 means "the default 0.9"; both spellings must
	// hash identically.
	cfg := hw.TestAcceleratorEDRAM()
	implicit := defaultOpts()
	explicit := defaultOpts()
	explicit.RetentionGuard = sched.RetentionGuard
	if scheduleKey(models.AlexNet(), cfg, implicit) != scheduleKey(models.AlexNet(), cfg, explicit) {
		t.Error("default guard band hashes differently from explicit 0.9")
	}
}
