package serve

// Cache hit vs. miss benchmarks: the difference between these two
// numbers is the whole point of running RANA compilation as a service —
// a hit costs a map lookup and a memcpy, a miss costs a full Fig. 13
// exploration.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

const benchScheduleReq = `{"model": "AlexNet"}`

func benchServer(b *testing.B, cacheEntries int) *httptest.Server {
	b.Helper()
	s := New(Config{CacheEntries: cacheEntries})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	b.Cleanup(func() { s.Shutdown(context.Background()) })
	return ts
}

func doSchedule(b *testing.B, url string) {
	b.Helper()
	resp, err := http.Post(url+"/v1/schedule", "application/json", strings.NewReader(benchScheduleReq))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		b.Fatalf("status %d", resp.StatusCode)
	}
	// Drain so the connection is reused.
	buf := make([]byte, 4096)
	for {
		if _, err := resp.Body.Read(buf); err != nil {
			break
		}
	}
}

// BenchmarkScheduleCacheHit measures the steady state of a fleet
// re-requesting a compiled plan: everything after the first request is
// served from the LRU.
func BenchmarkScheduleCacheHit(b *testing.B) {
	ts := benchServer(b, 256)
	doSchedule(b, ts.URL) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doSchedule(b, ts.URL)
	}
}

// BenchmarkScheduleCacheMiss measures the cold path: caching disabled,
// every request runs the full Stage-2 exploration.
func BenchmarkScheduleCacheMiss(b *testing.B) {
	ts := benchServer(b, -1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doSchedule(b, ts.URL)
	}
}
