package serve

// Race-focused shard-router test, meaningful under `go test -race`:
// concurrent clients hammer a 3-node in-process ring while one node
// restarts mid-stream. Every response must be byte-identical to a
// single-node ranad, no request may fail, no node instance may compute
// one key twice, and the restarted node must come back warm from its
// store (zero computations).

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched"
	"rana/internal/serve/shard"
	"rana/internal/serve/store"
)

// netCounter counts schedule computations per network name.
type netCounter struct {
	mu sync.Mutex
	m  map[string]int
}

func newNetCounter() *netCounter { return &netCounter{m: make(map[string]int)} }

func (c *netCounter) inc(name string) {
	c.mu.Lock()
	c.m[name]++
	c.mu.Unlock()
}

// snapshot returns a copy of the per-network counts.
func (c *netCounter) snapshot() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

func countingByNetwork(c *netCounter) func(context.Context, models.Network, hw.Config, sched.Options) (*sched.Plan, error) {
	return func(ctx context.Context, net models.Network, cfg hw.Config, opts sched.Options) (*sched.Plan, error) {
		c.inc(net.Name)
		return sched.ScheduleContext(ctx, net, cfg, opts)
	}
}

// ringScheduleBody builds the i-th distinct tiny schedule request.
func ringScheduleBody(i int) string {
	return fmt.Sprintf(`{"network": {"name": "ring-%d", "layers": [
		{"name": "l0", "n": 2, "h": %d, "l": %d, "m": 4, "k": 3, "s": 1, "p": 1}
	]}}`, i, 6+i, 6+i)
}

func TestRingByteIdentityAcrossNodeRestart(t *testing.T) {
	const numKeys = 12

	// Reference: a plain single-node ranad.
	_, refTS := newTestServer(t, Config{})
	reqs := make([]string, numKeys)
	ref := make([][]byte, numKeys)
	for i := range reqs {
		reqs[i] = ringScheduleBody(i)
		resp := post(t, refTS.URL+"/v1/schedule", reqs[i])
		ref[i] = readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("reference request %d: status %d: %s", i, resp.StatusCode, ref[i])
		}
	}

	// Three sharded nodes on real listeners (ring URLs must exist before
	// the servers do).
	ids := []string{"n0", "n1", "n2"}
	lns := make([]net.Listener, 3)
	ringNodes := make([]shard.Node, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ringNodes[i] = shard.Node{ID: ids[i], URL: "http://" + ln.Addr().String()}
	}
	storePath := filepath.Join(t.TempDir(), "n2-plans.log")

	mkNode := func(i int, st *store.Store, c *netCounter) *Server {
		ring, err := shard.New(ringNodes, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{
			Ring:    ring,
			ShardID: ids[i],
			Store:   st,
			ForwardClient: &RetryClient{
				MaxAttempts: 2,
				BaseBackoff: 10 * time.Millisecond,
				Budget:      3 * time.Second,
			},
		})
		s.scheduleFn = countingByNetwork(c)
		return s
	}

	counters := []*netCounter{newNetCounter(), newNetCounter(), newNetCounter()}
	st2 := openStore(t, storePath)
	servers := make([]*Server, 3)
	for i := range servers {
		var st *store.Store
		if i == 2 {
			st = st2
		}
		servers[i] = mkNode(i, st, counters[i])
		go servers[i].Serve(lns[i])
		t.Cleanup(func() { servers[i].Shutdown(context.Background()) })
	}
	urls := []string{ringNodes[0].URL, ringNodes[1].URL, ringNodes[2].URL}

	// checkOne posts request i to url and asserts 200 + reference bytes.
	checkOne := func(url string, i int, phase string) bool {
		resp, err := http.Post(url+"/v1/schedule", "application/json", strings.NewReader(reqs[i]))
		if err != nil {
			t.Errorf("%s: request %d to %s: %v", phase, i, url, err)
			return false
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			t.Errorf("%s: request %d to %s: %v", phase, i, url, rerr)
			return false
		}
		if resp.StatusCode != 200 {
			t.Errorf("%s: request %d to %s: status %d: %s", phase, i, url, resp.StatusCode, body)
			return false
		}
		if !bytes.Equal(body, ref[i]) {
			t.Errorf("%s: request %d to %s: body diverges from single-node reference", phase, i, url)
			return false
		}
		return true
	}

	// Phase 1 — warm the ring: every key through nodes 0 and 1, so each
	// owner computes (and node 2 persists) its share.
	for i := range reqs {
		if !checkOne(urls[0], i, "warm") || !checkOne(urls[1], i, "warm") {
			t.FailNow()
		}
	}
	if st2.Len() == 0 {
		t.Fatal("node 2 owns no keys of the test set; grow numKeys")
	}

	// Phase 2 — concurrent clients on the surviving nodes while node 2
	// restarts mid-stream.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if !checkOne(urls[c%2], (c+n)%numKeys, "restart-stream") {
					return
				}
			}
		}(c)
	}

	time.Sleep(50 * time.Millisecond)
	shCtx, shCancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := servers[2].Shutdown(shCtx); err != nil {
		t.Errorf("node 2 shutdown: %v", err)
	}
	shCancel()
	if err := st2.Close(); err != nil {
		t.Errorf("node 2 store close: %v", err)
	}

	// Bring node 2 back on the same address, warm from its store, with a
	// fresh counter that must stay at zero.
	st2b := openStore(t, storePath)
	addr2 := lns[2].Addr().String()
	var ln2b net.Listener
	for attempt := 0; ; attempt++ {
		var err error
		ln2b, err = net.Listen("tcp", addr2)
		if err == nil {
			break
		}
		if attempt > 100 {
			t.Fatalf("rebinding %s: %v", addr2, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	restartCounter := newNetCounter()
	s2b := mkNode(2, st2b, restartCounter)
	go s2b.Serve(ln2b)
	t.Cleanup(func() { s2b.Shutdown(context.Background()) })

	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Phase 3 — the full ring, including the restarted node, answers
	// every key byte-identically.
	for i := range reqs {
		for _, url := range urls {
			checkOne(url, i, "post-restart")
		}
	}

	// No node instance may have computed one key twice: the cache and
	// singleflight make recomputation a correctness bug, not a perf one.
	for i, c := range append(counters, restartCounter) {
		for name, n := range c.snapshot() {
			if n > 1 {
				t.Errorf("node instance %d computed %q %d times, want at most once", i, name, n)
			}
		}
	}
	// And the restarted node served purely from its replayed store.
	if n := len(restartCounter.snapshot()); n != 0 {
		t.Errorf("restarted node computed %d networks, want 0 (warm restart)", n)
	}
}
