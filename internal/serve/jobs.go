package serve

// The async batch API. POST /v1/compile-batch validates every entry up
// front, answers 202 with a job id, and runs the entries in the
// background; GET /v1/jobs/{id} polls per-entry status and results,
// DELETE cancels. Whole-zoo compiles stop holding an HTTP connection
// open per network.
//
// Entries go through exactly the machinery sync requests use —
// prepareSchedule/prepareCompile, the shard router, the cache tiers,
// the singleflight group, the bounded worker pool, the degradation
// ladder, the chaos injector — so an entry's result bytes are
// byte-identical to the equivalent sync response, and a failure in one
// entry is reported on that entry instead of failing the batch.
//
// The job table is bounded: beyond capacity the oldest finished job is
// evicted to make room, and if every tracked job is still running the
// submit is shed with 429 + Retry-After, the same overload contract as
// the admission queue.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// maxBatchEntries bounds one batch request; beyond it the request is
// hostile or mistaken (the whole zoo is 4 entries).
const maxBatchEntries = 256

// BatchEntrySpec is one entry of a compile-batch request: an operation
// plus the corresponding sync-request body. Exactly one of Compile or
// Schedule must be set, matching Op ("compile", the default, or
// "schedule").
type BatchEntrySpec struct {
	Op       string           `json:"op,omitempty"`
	Compile  *CompileRequest  `json:"compile,omitempty"`
	Schedule *ScheduleRequest `json:"schedule,omitempty"`
}

// BatchRequest is the /v1/compile-batch request body.
type BatchRequest struct {
	Entries []BatchEntrySpec `json:"entries"`
}

// BatchAccepted is the 202 response body.
type BatchAccepted struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Total  int    `json:"total"`
}

// JobEntryStatus is one entry's state in a job-status response. Result
// holds the exact response body the equivalent sync endpoint would
// serve (less its trailing newline, which JSON embedding strips).
type JobEntryStatus struct {
	Index  int             `json:"index"`
	Op     string          `json:"op"`
	Status string          `json:"status"` // "pending", "running", "ok", "error" or "canceled"
	Key    string          `json:"key,omitempty"`
	Source string          `json:"source,omitempty"`
	Error  string          `json:"error,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// JobStatus is the GET /v1/jobs/{id} response body.
type JobStatus struct {
	ID       string           `json:"id"`
	Status   string           `json:"status"` // "running", "done" or "canceled"
	Total    int              `json:"total"`
	Finished int              `json:"finished"`
	Entries  []JobEntryStatus `json:"entries"`
}

// jobEntry is one prepared batch entry awaiting or holding its result.
type jobEntry struct {
	op   string
	path string // sync endpoint the entry mirrors (for forwarding)
	raw  []byte // synthesized request body for forwarding
	work *work

	status string
	source string
	errMsg string
	result []byte
}

// job is one tracked batch job.
type job struct {
	id     string
	seq    int64
	cancel context.CancelFunc

	mu       sync.Mutex
	status   string // "running", "done" or "canceled"
	finished int
	entries  []*jobEntry
	done     chan struct{} // closed when the last entry settles
}

// jobTable is the bounded id → job map.
type jobTable struct {
	mu   sync.Mutex
	cap  int
	seq  int64
	jobs map[string]*job
}

func newJobTable(capacity int) *jobTable {
	return &jobTable{cap: capacity, jobs: make(map[string]*job)}
}

func (t *jobTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

func (t *jobTable) get(id string) (*job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// insert registers a new job, evicting the oldest finished job when the
// table is full. evicted reports whether an eviction happened; a table
// full of running jobs refuses the insert instead (the caller sheds
// with 429 — jobs hold real deferred work, so dropping a running one
// would silently lose results a client is polling for).
func (t *jobTable) insert(entries []*jobEntry, cancel context.CancelFunc) (j *job, evicted bool, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.jobs) >= t.cap {
		var oldest *job
		for _, cand := range t.jobs {
			cand.mu.Lock()
			running := cand.status == "running"
			cand.mu.Unlock()
			if running {
				continue
			}
			if oldest == nil || cand.seq < oldest.seq {
				oldest = cand
			}
		}
		if oldest == nil {
			return nil, false, &apiError{
				status:     http.StatusTooManyRequests,
				msg:        fmt.Sprintf("job table full: %d jobs running", len(t.jobs)),
				retryAfter: time.Second,
			}
		}
		delete(t.jobs, oldest.id)
		evicted = true
	}
	t.seq++
	j = &job{
		id:      fmt.Sprintf("job-%d", t.seq),
		seq:     t.seq,
		cancel:  cancel,
		status:  "running",
		entries: entries,
		done:    make(chan struct{}),
	}
	t.jobs[j.id] = j
	return j, evicted, nil
}

// handleCompileBatch validates and admits a batch, then runs it in the
// background under the server's base context (the job outlives the
// submitting request; Shutdown still cancels it).
func (s *Server) handleCompileBatch(ctx context.Context, r *http.Request) (*response, error) {
	var req BatchRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	if len(req.Entries) == 0 {
		return nil, badRequest(`batch needs at least one entry in "entries"`)
	}
	if len(req.Entries) > maxBatchEntries {
		return nil, badRequest("batch has %d entries, max %d", len(req.Entries), maxBatchEntries)
	}
	// Validate every entry before accepting anything: a 202 promises the
	// batch is runnable, so malformed entries are a 400 now, not a
	// surprise in a poll later.
	entries := make([]*jobEntry, len(req.Entries))
	for i, spec := range req.Entries {
		e, err := s.prepareEntry(spec)
		if err != nil {
			return nil, badRequest("entry %d: %v", i, err)
		}
		entries[i] = e
	}
	jctx, cancel := context.WithCancel(s.baseCtx)
	j, evicted, err := s.jobs.insert(entries, cancel)
	if err != nil {
		cancel()
		return nil, err
	}
	if evicted {
		s.m.JobsEvicted.Add(1)
	}
	s.m.JobsAccepted.Add(1)
	go s.runJob(jctx, j)
	body, err := marshalBody(BatchAccepted{ID: j.id, Status: "running", Total: len(entries)})
	if err != nil {
		return nil, err
	}
	return &response{body: body, key: j.id, source: "job", status: http.StatusAccepted}, nil
}

// prepareEntry resolves one batch entry onto the shared work form, and
// synthesizes the sync-request body the shard router would forward.
func (s *Server) prepareEntry(spec BatchEntrySpec) (*jobEntry, error) {
	op := spec.Op
	if op == "" {
		op = "compile"
	}
	e := &jobEntry{op: op, status: "pending"}
	var err error
	var reqBody any
	switch op {
	case "compile":
		if spec.Compile == nil || spec.Schedule != nil {
			return nil, fmt.Errorf(`op %q needs "compile" (and only it)`, op)
		}
		e.path = "/v1/compile"
		reqBody = spec.Compile
		e.work, err = s.prepareCompile(*spec.Compile)
	case "schedule":
		if spec.Schedule == nil || spec.Compile != nil {
			return nil, fmt.Errorf(`op %q needs "schedule" (and only it)`, op)
		}
		e.path = "/v1/schedule"
		reqBody = spec.Schedule
		e.work, err = s.prepareSchedule(*spec.Schedule)
	default:
		return nil, fmt.Errorf(`invalid op %q (want "compile" or "schedule")`, op)
	}
	if err != nil {
		return nil, err
	}
	if e.raw, err = json.Marshal(reqBody); err != nil {
		return nil, fmt.Errorf("encoding entry for forwarding: %v", err)
	}
	return e, nil
}

// runJob fans the entries out concurrently; the admission queue and
// worker pool bound the actual computation, and admitWait (rather than
// the shedding admit) keeps entries queued instead of failed under
// load. Entry concurrency is additionally capped at the worker count so
// one giant batch cannot monopolize the admission queue against
// interactive traffic.
func (s *Server) runJob(ctx context.Context, j *job) {
	gate := make(chan struct{}, s.cfg.Workers)
	var wg sync.WaitGroup
	for i, e := range j.entries {
		wg.Add(1)
		go func(i int, e *jobEntry) {
			defer wg.Done()
			select {
			case gate <- struct{}{}:
				defer func() { <-gate }()
			case <-ctx.Done():
				s.settleEntry(j, e, nil, ctx.Err())
				return
			}
			s.runJobEntry(ctx, j, e)
		}(i, e)
	}
	wg.Wait()
	j.mu.Lock()
	if j.status == "running" {
		if ctx.Err() != nil {
			j.status = "canceled"
			s.m.JobsCanceled.Add(1)
		} else {
			j.status = "done"
			s.m.JobsDone.Add(1)
		}
	}
	close(j.done)
	j.mu.Unlock()
	j.cancel()
}

// runJobEntry executes one entry through the shared routed/cached path.
func (s *Server) runJobEntry(ctx context.Context, j *job, e *jobEntry) {
	j.mu.Lock()
	e.status = "running"
	j.mu.Unlock()
	if e.work.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.work.deadline)
		defer cancel()
	}
	resp, err := s.guard("job-entry", func() (*response, error) {
		return s.routedCached(ctx, e.path, e.raw, false, e.work.key, true, e.work.compute)
	})
	if err == nil && e.work.degraded {
		s.m.Degraded.Add(1)
	}
	s.settleEntry(j, e, resp, err)
}

// settleEntry records one entry's outcome.
func (s *Server) settleEntry(j *job, e *jobEntry, resp *response, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished++
	switch {
	case err == nil:
		e.status = "ok"
		e.source = resp.source
		// Bodies carry a trailing newline; embedding as a JSON value
		// strips insignificant whitespace, so drop it here and clients
		// re-add it for byte comparison against sync responses.
		e.result = bytes.TrimSuffix(resp.body, []byte("\n"))
	case errors.Is(err, context.Canceled):
		e.status = "canceled"
		e.errMsg = err.Error()
	default:
		e.status = "error"
		e.errMsg = err.Error()
	}
}

// handleJob serves GET (poll) and DELETE (cancel) on /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		s.m.status("jobs", s.error(w, &apiError{status: http.StatusNotFound, msg: "no such job"}))
		return
	}
	j, ok := s.jobs.get(id)
	if !ok {
		s.m.status("jobs", s.error(w, &apiError{status: http.StatusNotFound, msg: fmt.Sprintf("no such job %q", id)}))
		return
	}
	switch r.Method {
	case http.MethodGet:
		body, err := marshalBody(j.snapshot())
		if err != nil {
			s.m.status("jobs", s.error(w, err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		s.m.status("jobs", http.StatusOK)
	case http.MethodDelete:
		j.mu.Lock()
		running := j.status == "running"
		if running {
			j.status = "canceled"
		}
		j.mu.Unlock()
		if running {
			s.m.JobsCanceled.Add(1)
			j.cancel()
		}
		body, err := marshalBody(j.snapshot())
		if err != nil {
			s.m.status("jobs", s.error(w, err))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		s.m.status("jobs", http.StatusOK)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		s.m.status("jobs", s.error(w, &apiError{status: http.StatusMethodNotAllowed, msg: "use GET or DELETE"}))
	}
}

// snapshot renders the job's current state.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:       j.id,
		Status:   j.status,
		Total:    len(j.entries),
		Finished: j.finished,
		Entries:  make([]JobEntryStatus, len(j.entries)),
	}
	for i, e := range j.entries {
		st.Entries[i] = JobEntryStatus{
			Index:  i,
			Op:     e.op,
			Status: e.status,
			Key:    e.work.key,
			Source: e.source,
			Error:  e.errMsg,
			Result: json.RawMessage(e.result),
		}
	}
	return st
}
