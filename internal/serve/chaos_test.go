package serve

// The chaos suite: the robustness acceptance tests, written to run
// under `go test -race`. They drive hostile inputs, injected panics,
// saturation and tight deadlines against a real Server and assert the
// survival contract: structured errors, exact-once failure accounting,
// live health endpoints, and recovery.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched"
	"rana/internal/serve/chaos"
)

// panickyScheduleFn panics while fail is true, otherwise schedules for
// real.
func panickyScheduleFn(fail *atomic.Bool, calls *atomic.Int64) func(context.Context, models.Network, hw.Config, sched.Options) (*sched.Plan, error) {
	return func(ctx context.Context, net models.Network, cfg hw.Config, opts sched.Options) (*sched.Plan, error) {
		if calls != nil {
			calls.Add(1)
		}
		if fail.Load() {
			panic("injected: scheduler bug")
		}
		return sched.ScheduleContext(ctx, net, cfg, opts)
	}
}

func TestPanicBecomesStructured500AndServerSurvives(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	s, ts := newTestServer(t, Config{})
	s.scheduleFn = panickyScheduleFn(&fail, nil)

	resp := post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`)
	body := readBody(t, resp)
	if resp.StatusCode != 500 {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("500 body not structured JSON: %s", body)
	}
	if !strings.Contains(e.Error, "panic") {
		t.Errorf("error %q does not mention the panic", e.Error)
	}
	if strings.Contains(e.Error, "goroutine") {
		t.Errorf("error leaks a stack trace: %q", e.Error)
	}

	// The server survived: the same request succeeds once the bug is
	// gone, and the metrics recorded exactly one recovered panic.
	fail.Store(false)
	resp = post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`)
	if readBody(t, resp); resp.StatusCode != 200 {
		t.Fatalf("post-panic request status %d, want 200", resp.StatusCode)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["panics_recovered"] != 1 {
		t.Errorf("panics_recovered = %v, want 1", m["panics_recovered"])
	}
}

func TestConcurrentWaitersObservePanicExactlyOnce(t *testing.T) {
	// N concurrent identical requests join one flight whose computation
	// panics: every waiter sees a 500, the panic is counted once, and
	// the key recovers afterwards.
	const n = 8
	var fail atomic.Bool
	fail.Store(true)
	var calls atomic.Int64
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 4})
	s.scheduleFn = func(ctx context.Context, net models.Network, cfg hw.Config, opts sched.Options) (*sched.Plan, error) {
		calls.Add(1)
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if fail.Load() {
			panic("injected: scheduler bug")
		}
		return sched.ScheduleContext(ctx, net, cfg, opts)
	}

	statuses := make([]int, n)
	var admitted, wg sync.WaitGroup
	admitted.Add(n)
	go func() {
		admitted.Wait()
		time.Sleep(10 * time.Millisecond) // let stragglers join the flight
		close(gate)
	}()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, _ := http.NewRequest("POST", ts.URL+"/v1/schedule",
				strings.NewReader(`{"network": `+tinyNetJSON+`}`))
			req.Header.Set("Content-Type", "application/json")
			admitted.Done()
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, st := range statuses {
		if st != 500 {
			t.Errorf("waiter %d: status %d, want 500", i, st)
		}
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("computation ran %d times for %d waiters, want 1", got, n)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["panics_recovered"] != 1 {
		t.Errorf("panics_recovered = %v, want exactly 1 for %d waiters", m["panics_recovered"], n)
	}

	// The poisoned key recovers: with the bug gone, the same request
	// computes fresh and succeeds (nothing bad was cached).
	fail.Store(false)
	resp := post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`)
	if readBody(t, resp); resp.StatusCode != 200 {
		t.Fatalf("post-recovery status %d, want 200", resp.StatusCode)
	}
	if src := resp.Header.Get("X-Rana-Cache"); src != "miss" {
		t.Errorf("post-recovery source %q, want a fresh miss", src)
	}
}

func TestSaturationSheds429AndHealthzStaysLive(t *testing.T) {
	// One worker, no waiting room: while a slow computation holds the
	// only slot, a second distinct computation is shed with 429 +
	// Retry-After — and /healthz and /metrics answer throughout.
	gate := make(chan struct{})
	started := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1, RetryAfter: 3 * time.Second})
	var once sync.Once
	s.scheduleFn = func(ctx context.Context, net models.Network, cfg hw.Config, opts sched.Options) (*sched.Plan, error) {
		once.Do(func() { close(started) })
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return sched.ScheduleContext(ctx, net, cfg, opts)
	}

	slowDone := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json",
			strings.NewReader(`{"network": `+tinyNetJSON+`}`))
		if err != nil {
			t.Error(err)
			slowDone <- nil
			return
		}
		slowDone <- resp
	}()
	<-started // the slow computation now holds the only admission token

	resp := post(t, ts.URL+"/v1/schedule", `{"model": "AlexNet"}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status %d, want 429: %s", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want %q", ra, "3")
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "saturated") {
		t.Errorf("shed body %s (%v)", body, err)
	}

	// Health and metrics bypass admission entirely.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, hresp)
	if hresp.StatusCode != 200 {
		t.Errorf("healthz under saturation = %d, want 200", hresp.StatusCode)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["shed"] != 1 {
		t.Errorf("shed = %v, want 1", m["shed"])
	}

	// Release the slow computation; it must complete untouched.
	close(gate)
	if resp := <-slowDone; resp != nil {
		readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Errorf("slow request status %d, want 200", resp.StatusCode)
		}
	}
}

func TestDeadlineDegradesSchedule(t *testing.T) {
	_, ts := newTestServer(t, Config{DegradeBudget: 200 * time.Millisecond})

	// A deadline below the degrade budget: valid schedule, marked
	// degraded, with a stable reason.
	resp := post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`, "deadline_ms": 50}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded || sr.DegradedReason == "" {
		t.Fatalf("degraded = %v, reason = %q; want a marked degraded response", sr.Degraded, sr.DegradedReason)
	}
	if len(sr.Plan.Layers) != 2 {
		t.Errorf("degraded plan has %d layers, want a full valid schedule of 2", len(sr.Plan.Layers))
	}

	// Byte-identical on the repeat (the degraded reason must be stable).
	resp2 := post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`, "deadline_ms": 50}`)
	body2 := readBody(t, resp2)
	if resp2.Header.Get("X-Rana-Cache") != "hit" {
		t.Errorf("repeat degraded request source %q, want hit", resp2.Header.Get("X-Rana-Cache"))
	}
	if !bytes.Equal(body, body2) {
		t.Error("degraded cache hit differs from the miss")
	}

	// The same request without a deadline takes the full-search path and
	// must not collide with the degraded cache entry.
	resp3 := post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`)
	body3 := readBody(t, resp3)
	if resp3.StatusCode != 200 {
		t.Fatalf("full request status %d", resp3.StatusCode)
	}
	var full ScheduleResponse
	if err := json.Unmarshal(body3, &full); err != nil {
		t.Fatal(err)
	}
	if full.Degraded {
		t.Error("full-search response marked degraded: degraded cache key leaked")
	}
	if resp3.Header.Get("X-Rana-Cache") != "miss" {
		t.Errorf("full request source %q, want its own miss", resp3.Header.Get("X-Rana-Cache"))
	}

	// A roomy deadline does not degrade.
	resp4 := post(t, ts.URL+"/v1/schedule", `{"model": "AlexNet", "deadline_ms": 30000}`)
	body4 := readBody(t, resp4)
	if resp4.StatusCode != 200 {
		t.Fatalf("roomy-deadline status %d: %s", resp4.StatusCode, body4)
	}
	var roomy ScheduleResponse
	if err := json.Unmarshal(body4, &roomy); err != nil {
		t.Fatal(err)
	}
	if roomy.Degraded {
		t.Error("30s deadline degraded")
	}

	m := metricsSnapshot(t, ts.URL)
	if m["degraded"] != 2 {
		t.Errorf("degraded = %v, want 2", m["degraded"])
	}
}

func TestBreakerOpensFastFailsAndRecovers(t *testing.T) {
	var fail atomic.Bool
	fail.Store(true)
	var calls atomic.Int64
	s, ts := newTestServer(t, Config{BreakerThreshold: 2, BreakerBackoff: 50 * time.Millisecond})
	s.scheduleFn = panickyScheduleFn(&fail, &calls)

	body := `{"network": ` + tinyNetJSON + `}`
	// Two consecutive panics trip the breaker.
	for i := 0; i < 2; i++ {
		resp := post(t, ts.URL+"/v1/schedule", body)
		readBody(t, resp)
		if resp.StatusCode != 500 {
			t.Fatalf("failure %d: status %d, want 500", i, resp.StatusCode)
		}
	}
	// Open: the next request fast-fails without running the computation.
	resp := post(t, ts.URL+"/v1/schedule", body)
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("breaker-open status %d, want 503: %s", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("breaker-open response has no Retry-After")
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("computation ran %d times, want 2 (fast-fail must not execute)", got)
	}
	// Other keys are unaffected: the breaker is per-key.
	other := post(t, ts.URL+"/v1/evaluate", `{"design": "RANA*(E-5)", "model": "AlexNet"}`)
	readBody(t, other)
	if other.StatusCode != 200 {
		t.Errorf("unrelated key under open breaker: status %d, want 200", other.StatusCode)
	}

	m := metricsSnapshot(t, ts.URL)
	if m["breaker_open_total"] != 1 {
		t.Errorf("breaker_open_total = %v, want 1", m["breaker_open_total"])
	}
	if m["breaker_fast_fails"] != 1 {
		t.Errorf("breaker_fast_fails = %v, want 1", m["breaker_fast_fails"])
	}

	// After the backoff the breaker half-opens; a successful probe
	// closes it and the key serves normally again.
	fail.Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := post(t, ts.URL+"/v1/schedule", body)
		readBody(t, resp)
		if resp.StatusCode == 200 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never recovered; last status %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp = post(t, ts.URL+"/v1/schedule", body)
	readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Errorf("post-recovery status %d, want 200", resp.StatusCode)
	}
}

func TestChaosInjectorEndToEnd(t *testing.T) {
	// Wire a deterministic injector into the server: every 2nd
	// computation panics, every 3rd eats ~5ms latency. Fire distinct
	// requests and check the failure pattern matches the schedule and
	// the server keeps serving.
	inj := chaos.New(chaos.Config{Seed: 7, PanicEvery: 2, LatencyEvery: 3, Latency: 5 * time.Millisecond})
	_, ts := newTestServer(t, Config{Chaos: inj, BreakerThreshold: -1})

	got500 := 0
	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"network": {"name": "net%d", "layers": [
			{"name": "l0", "n": 2, "h": 8, "l": 8, "m": %d, "k": 3, "s": 1, "p": 1}
		]}}`, i, 2+i)
		resp := post(t, ts.URL+"/v1/schedule", body)
		readBody(t, resp)
		switch resp.StatusCode {
		case 200:
		case 500:
			got500++
		default:
			t.Errorf("request %d: unexpected status %d", i, resp.StatusCode)
		}
	}
	if got500 != 3 {
		t.Errorf("got %d injected 500s across 6 computations with PanicEvery=2, want 3", got500)
	}
	stats := inj.Stats()
	if stats.Computations != 6 || stats.Panics != 3 || stats.Latencies != 2 {
		t.Errorf("injector stats = %+v", stats)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["panics_recovered"] != 3 {
		t.Errorf("panics_recovered = %v, want 3", m["panics_recovered"])
	}
}

func TestRetryClientRidesThroughSaturation(t *testing.T) {
	// A saturated server sheds the first attempt; the RetryClient backs
	// off and lands the request once the slot frees.
	gate := make(chan struct{})
	started := make(chan struct{})
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1, RetryAfter: time.Second})
	var once sync.Once
	s.scheduleFn = func(ctx context.Context, net models.Network, cfg hw.Config, opts sched.Options) (*sched.Plan, error) {
		once.Do(func() { close(started) })
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return sched.ScheduleContext(ctx, net, cfg, opts)
	}
	slowDone := make(chan struct{})
	go func() {
		defer close(slowDone)
		resp, err := http.Post(ts.URL+"/v1/schedule", "application/json",
			strings.NewReader(`{"network": `+tinyNetJSON+`}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(gate)
	}()

	rc := &RetryClient{MaxAttempts: 6, BaseBackoff: 50 * time.Millisecond, Budget: 20 * time.Second, Seed: 3}
	body, status, err := rc.PostJSON(context.Background(), ts.URL+"/v1/schedule", []byte(`{"model": "AlexNet"}`))
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("final status %d: %s", status, body)
	}
	<-slowDone
	m := metricsSnapshot(t, ts.URL)
	if m["shed"] < 1 {
		t.Errorf("shed = %v, want at least one shed before the retry landed", m["shed"])
	}
}

// metricsSnapshot fetches and decodes /metrics.
func metricsSnapshot(t *testing.T, baseURL string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return decodeMetrics(t, readBody(t, resp))
}
