package shard

import (
	"fmt"
	"strings"
	"testing"
)

func threeNodes() []Node {
	return []Node{
		{ID: "a", URL: "http://10.0.0.1:8080"},
		{ID: "b", URL: "http://10.0.0.2:8080"},
		{ID: "c", URL: "http://10.0.0.3:8080"},
	}
}

// The ring must be a pure function of membership: any ordering of the
// same node set owns every key identically. This is what lets each
// fleet member compute ownership locally from its -peers flag.
func TestOwnerDeterministicAcrossSpecOrder(t *testing.T) {
	nodes := threeNodes()
	orders := [][]Node{
		{nodes[0], nodes[1], nodes[2]},
		{nodes[2], nodes[0], nodes[1]},
		{nodes[1], nodes[2], nodes[0]},
	}
	rings := make([]*Ring, len(orders))
	for i, o := range orders {
		r, err := New(o, 0)
		if err != nil {
			t.Fatalf("New(order %d): %v", i, err)
		}
		rings[i] = r
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := rings[0].Owner(key).ID
		for j := 1; j < len(rings); j++ {
			if got := rings[j].Owner(key).ID; got != want {
				t.Fatalf("key %q: ring %d says %q, ring 0 says %q", key, j, got, want)
			}
		}
	}
}

func TestDistributionIsRoughlyBalanced(t *testing.T) {
	r, err := New(threeNodes(), DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const total = 10000
	for i := 0; i < total; i++ {
		counts[r.Owner(fmt.Sprintf("model-%d/layer-%d", i, i*7)).ID]++
	}
	for id, n := range counts {
		frac := float64(n) / total
		if frac < 0.20 || frac > 0.45 {
			t.Errorf("node %q owns %.1f%% of keys; want roughly a third (20%%..45%%)", id, frac*100)
		}
	}
	if len(counts) != 3 {
		t.Fatalf("only %d of 3 nodes own keys: %v", len(counts), counts)
	}
}

// Adding one node to a 3-node ring must only move keys that the new
// node claims — nothing shuffles between the surviving nodes, and the
// moved fraction stays near 1/4.
func TestAddingANodeMovesOnlyItsShare(t *testing.T) {
	before, err := New(threeNodes(), DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New(append(threeNodes(), Node{ID: "d", URL: "http://10.0.0.4:8080"}), DefaultReplicas)
	if err != nil {
		t.Fatal(err)
	}
	const total = 10000
	moved := 0
	for i := 0; i < total; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := before.Owner(key).ID, after.Owner(key).ID
		if was != is {
			moved++
			if is != "d" {
				t.Fatalf("key %q moved %q -> %q: only the new node may gain keys", key, was, is)
			}
		}
	}
	if frac := float64(moved) / total; frac > 0.5 {
		t.Errorf("adding 1 node to 3 moved %.1f%% of keys; want ~25%%, certainly < 50%%", frac*100)
	}
}

func TestSingleNodeOwnsEverything(t *testing.T) {
	r, err := New([]Node{{ID: "solo", URL: "http://localhost:9000"}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.Owner(fmt.Sprintf("k%d", i)).ID; got != "solo" {
			t.Fatalf("single-node ring routed key to %q", got)
		}
	}
	if r.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", r.Len())
	}
}

func TestNewRejectsBadMembership(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
		frag  string
	}{
		{"empty", nil, "at least one node"},
		{"empty ID", []Node{{ID: "", URL: "http://x:1"}}, "empty ID"},
		{"duplicate ID", []Node{{ID: "a", URL: "http://x:1"}, {ID: "a", URL: "http://y:1"}}, "duplicate"},
		{"relative URL", []Node{{ID: "a", URL: "localhost:8080"}}, "http(s)"},
		{"bad scheme", []Node{{ID: "a", URL: "ftp://x:1"}}, "http(s)"},
		{"no host", []Node{{ID: "a", URL: "http://"}}, "http(s)"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(tc.nodes, 0); err == nil || !strings.Contains(err.Error(), tc.frag) {
				t.Fatalf("New(%v) error = %v, want mention of %q", tc.nodes, err, tc.frag)
			}
		})
	}
}

func TestNodeLookup(t *testing.T) {
	r, err := New(threeNodes(), 0)
	if err != nil {
		t.Fatal(err)
	}
	n, ok := r.Node("b")
	if !ok || n.URL != "http://10.0.0.2:8080" {
		t.Fatalf("Node(b) = %+v, %v", n, ok)
	}
	if _, ok := r.Node("zz"); ok {
		t.Fatal("Node(zz) found a ghost member")
	}
	ids := make([]string, 0, 3)
	for _, n := range r.Nodes() {
		ids = append(ids, n.ID)
	}
	if strings.Join(ids, ",") != "a,b,c" {
		t.Fatalf("Nodes() order = %v, want sorted by ID", ids)
	}
}

func TestParsePeers(t *testing.T) {
	nodes, err := ParsePeers("n0=http://h0:8080, n1=http://h1:8080 ,n2=http://h2:8080")
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 3 || nodes[1].ID != "n1" || nodes[1].URL != "http://h1:8080" {
		t.Fatalf("ParsePeers = %+v", nodes)
	}
	for _, bad := range []string{"", "  ,  ", "justanid", "=http://x:1", "id="} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted garbage", bad)
		}
	}
}
