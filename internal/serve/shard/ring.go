// Package shard routes ranad's canonical key space across a fleet of
// nodes with a consistent-hash ring.
//
// Every node is placed on a 64-bit hash circle at Replicas virtual
// points; a key is owned by the node whose first virtual point follows
// the key's hash (clockwise). The construction is deterministic from
// the membership list alone — nodes are sorted by ID and the ring is
// independent of spec order — so every node in a fleet, handed the same
// -peers flag, computes the identical owner for every key without any
// coordination. Consistency is the point: adding or removing one node
// moves only ~1/N of the key space, so a rolling restart does not
// reshuffle (and therefore recompile) the world.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"net/url"
	"sort"
	"strings"
)

// DefaultReplicas is the virtual-point count per node. 128 points keeps
// the expected imbalance across a small fleet within a few percent.
const DefaultReplicas = 128

// Node is one ring member: an ID (stable across restarts; the -shard-id
// flag) and the base URL peers forward to.
type Node struct {
	ID  string
	URL string
}

// Ring is an immutable consistent-hash ring. Safe for concurrent use.
type Ring struct {
	nodes  []Node // sorted by ID
	points []point
}

// point is one virtual node position on the hash circle.
type point struct {
	hash uint64
	node int // index into nodes
}

// New builds a ring over the given nodes. IDs must be unique and
// non-empty; URLs must be absolute http(s) URLs. replicas <= 0 selects
// DefaultReplicas.
func New(nodes []Node, replicas int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, errors.New("shard: ring needs at least one node")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	seen := make(map[string]bool, len(sorted))
	for _, n := range sorted {
		if n.ID == "" {
			return nil, errors.New("shard: node with empty ID")
		}
		if seen[n.ID] {
			return nil, fmt.Errorf("shard: duplicate node ID %q", n.ID)
		}
		seen[n.ID] = true
		u, err := url.Parse(n.URL)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("shard: node %q URL %q is not an absolute http(s) URL", n.ID, n.URL)
		}
	}
	r := &Ring{
		nodes:  sorted,
		points: make([]point, 0, len(sorted)*replicas),
	}
	for i, n := range sorted {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", n.ID, v)), node: i})
		}
	}
	// Ties (two virtual points at one hash) are broken by node ID so
	// every fleet member sorts the circle identically.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return r.nodes[a.node].ID < r.nodes[b.node].ID
	})
	return r, nil
}

// hash64 is FNV-1a run through a splitmix64 finalizer. Plain FNV-1a
// clusters badly on short, similar inputs like "a#0".."a#127", which
// skews ring balance; the finalizer's avalanche fixes that while
// keeping the function cheap and dependency-free.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Owner returns the node owning key: the first virtual point at or
// after the key's position, wrapping around the circle.
func (r *Ring) Owner(key string) Node {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.nodes[r.points[i].node]
}

// Nodes returns the membership, sorted by ID.
func (r *Ring) Nodes() []Node {
	return append([]Node(nil), r.nodes...)
}

// Node returns the member with the given ID.
func (r *Ring) Node(id string) (Node, bool) {
	for _, n := range r.nodes {
		if n.ID == id {
			return n, true
		}
	}
	return Node{}, false
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// ParsePeers parses a fleet membership spec of the form
// "id1=http://host:port,id2=http://host:port". Whitespace around
// entries is ignored; validation (unique IDs, absolute URLs) happens in
// New.
func ParsePeers(spec string) ([]Node, error) {
	var nodes []Node
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf(`shard: peer %q is not "id=url"`, part)
		}
		nodes = append(nodes, Node{ID: strings.TrimSpace(id), URL: strings.TrimSpace(u)})
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("shard: no peers in %q", spec)
	}
	return nodes, nil
}
