package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// testKey derives a distinct content address from a seed.
func testKey(i int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("key-%d", i)))
	return hex.EncodeToString(sum[:])
}

// testBody derives a deterministic pseudo-random body of varied length.
func testBody(i int) []byte {
	n := 17 + (i*37)%211
	b := make([]byte, n)
	x := uint32(2463534242 + i)
	for j := range b {
		// xorshift32: cheap, seeded, reproducible.
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		b[j] = byte(x)
	}
	return b
}

// openTemp opens a store on a fresh temp path with per-put fsync (tests
// want determinism, not batching).
func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "plans.log")
	s, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestPutGetReopen(t *testing.T) {
	s, path := openTemp(t)
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), testBody(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		body, ok := s.Get(testKey(i))
		if !ok || !bytes.Equal(body, testBody(i)) {
			t.Fatalf("Get(%d): ok=%v, body mismatch", i, ok)
		}
	}
	if _, ok := s.Get(testKey(n + 1)); ok {
		t.Error("Get of an absent key reported ok")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: replay must recover every entry, in order.
	s2, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Replayed; got != n {
		t.Errorf("replayed %d entries, want %d", got, n)
	}
	var i int
	err = s2.Range(func(key string, body []byte) error {
		if key != testKey(i) || !bytes.Equal(body, testBody(i)) {
			return fmt.Errorf("entry %d: key/body mismatch", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Errorf("Range visited %d entries, want %d", i, n)
	}
}

func TestDuplicatePuts(t *testing.T) {
	s, _ := openTemp(t)
	key := testKey(1)
	if err := s.Put(key, testBody(1)); err != nil {
		t.Fatal(err)
	}
	size := s.Stats().FileBytes
	// Identical re-put: a no-op, no log growth.
	if err := s.Put(key, testBody(1)); err != nil {
		t.Fatalf("identical re-put: %v", err)
	}
	if got := s.Stats(); got.FileBytes != size || got.DupPuts != 1 {
		t.Errorf("after identical re-put: bytes %d (want %d), dup puts %d (want 1)", got.FileBytes, size, got.DupPuts)
	}
	// Conflicting re-put: a determinism violation, loudly rejected.
	err := s.Put(key, []byte("different bytes"))
	if err == nil || !strings.Contains(err.Error(), "determinism") {
		t.Errorf("conflicting re-put error = %v, want determinism violation", err)
	}
	// The original bytes survive.
	if body, ok := s.Get(key); !ok || !bytes.Equal(body, testBody(1)) {
		t.Error("stored body changed after a rejected conflicting put")
	}
}

func TestRejectsBadKeys(t *testing.T) {
	s, _ := openTemp(t)
	for _, key := range []string{"", "abc", strings.Repeat("z", 64), strings.Repeat("a", 63)} {
		if err := s.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a non-digest key", key)
		}
		if _, ok := s.Get(key); ok {
			t.Errorf("Get(%q) reported ok for a non-digest key", key)
		}
	}
}

func TestCompactionBoundsTheLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.log")
	const maxBytes = 4096
	s, err := Open(path, Options{SyncInterval: -1, MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), testBody(i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.FileBytes > maxBytes {
		t.Errorf("log is %d bytes, bound %d", st.FileBytes, maxBytes)
	}
	if st.Compactions == 0 {
		t.Error("no compactions ran")
	}
	if st.Entries >= n {
		t.Errorf("compaction kept all %d entries", st.Entries)
	}
	// The newest entry always survives; the oldest is long gone.
	if _, ok := s.Get(testKey(n - 1)); !ok {
		t.Error("newest entry missing after compaction")
	}
	if _, ok := s.Get(testKey(0)); ok {
		t.Error("oldest entry survived a full compaction cycle")
	}
	// A reopen replays the compacted log cleanly.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.Len(), st.Entries; got != want {
		t.Errorf("reopened compacted log has %d entries, want %d", got, want)
	}
	if _, ok := s2.Get(testKey(n - 1)); !ok {
		t.Error("newest entry missing after reopen")
	}
}

func TestExplicitCompactIsAFullDefrag(t *testing.T) {
	s, _ := openTemp(t)
	for i := 0; i < 10; i++ {
		if err := s.Put(testKey(i), testBody(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(0); err != nil {
		t.Fatal(err)
	}
	if got := s.Len(); got != 10 {
		t.Errorf("budget-0 compaction dropped entries: %d left", got)
	}
	for i := 0; i < 10; i++ {
		if body, ok := s.Get(testKey(i)); !ok || !bytes.Equal(body, testBody(i)) {
			t.Fatalf("entry %d lost or damaged by compaction", i)
		}
	}
}

func TestSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plans.log")
	s, err := Open(path, Options{SyncInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put(testKey(0), testBody(0)); err != nil {
		t.Fatal(err)
	}
	// The flusher must make the entry durable without Close.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		dirty := s.dirty
		s.mu.Unlock()
		if !dirty {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background flusher never synced")
		}
		time.Sleep(time.Millisecond)
	}
	// The bytes are visible to an independent reader (i.e. flushed out
	// of the buffered writer, not just scheduled).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	scanFrames(bytes.NewReader(raw[headerLen:]), func([keyLen]byte, []byte) { n++ })
	if n != 1 {
		t.Errorf("independent replay sees %d entries, want 1", n)
	}
}

func TestClosedStoreRefusesWork(t *testing.T) {
	s, _ := openTemp(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(0), testBody(0)); err == nil {
		t.Error("Put succeeded on a closed store")
	}
	if _, ok := s.Get(testKey(0)); ok {
		t.Error("Get succeeded on a closed store")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}

// TestCrashRecoveryEveryTruncationOffset is the crash-recovery property
// test: a log truncated at EVERY byte offset must recover exactly the
// prefix of entries whose frames are fully contained in the remaining
// bytes — never a torn entry, never a corrupted one.
func TestCrashRecoveryEveryTruncationOffset(t *testing.T) {
	full, bounds := buildLog(t, 8)
	dir := t.TempDir()
	for cut := 0; cut <= len(full); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut-%d.log", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path, Options{SyncInterval: -1})
		if cut < headerLen {
			// Not even a header: Open must refuse (empty file excepted —
			// that is a fresh log).
			if cut == 0 {
				if err != nil {
					t.Fatalf("cut %d: fresh-log open failed: %v", cut, err)
				}
				s.Close()
			} else if err == nil {
				s.Close()
				t.Fatalf("cut %d: opened a log with a truncated header", cut)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		want := intactPrefix(bounds, cut)
		if got := s.Len(); got != want {
			s.Close()
			t.Fatalf("cut %d: recovered %d entries, want %d", cut, got, want)
		}
		verifyPrefix(t, s, want)
		s.Close()
	}
}

// TestCrashRecoverySeededCorruption flips single bytes at seeded offsets:
// replay must recover exactly the entries before the damaged frame, and
// never return damaged bytes.
func TestCrashRecoverySeededCorruption(t *testing.T) {
	full, bounds := buildLog(t, 8)
	dir := t.TempDir()
	x := uint32(12345)
	for trial := 0; trial < 300; trial++ {
		x ^= x << 13
		x ^= x >> 17
		x ^= x << 5
		off := int(x) % len(full)
		if off < 0 {
			off = -off
		}
		corrupt := append([]byte(nil), full...)
		corrupt[off] ^= 0x41
		path := filepath.Join(dir, fmt.Sprintf("flip-%d.log", trial))
		if err := os.WriteFile(path, corrupt, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path, Options{SyncInterval: -1})
		if off < headerLen {
			if err == nil {
				s.Close()
				t.Fatalf("trial %d: opened a log with a corrupted header (offset %d)", trial, off)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// The flipped byte lives inside exactly one frame; every frame
		// before it must survive, the damaged one and everything after
		// must be dropped (prefix-valid recovery).
		want := frameIndexAt(bounds, off)
		if got := s.Len(); got != want {
			s.Close()
			t.Fatalf("trial %d (offset %d): recovered %d entries, want %d", trial, off, got, want)
		}
		verifyPrefix(t, s, want)
		s.Close()
	}
}

// buildLog writes n entries through a real store and returns the raw log
// bytes plus each frame's end offset.
func buildLog(t *testing.T, n int) (raw []byte, frameEnds []int) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "full.log")
	s, err := Open(path, Options{SyncInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	end := headerLen
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), testBody(i)); err != nil {
			t.Fatal(err)
		}
		end += frameOverhead + len(testBody(i))
		frameEnds = append(frameEnds, end)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != end {
		t.Fatalf("log is %d bytes, expected %d", len(raw), end)
	}
	return raw, frameEnds
}

// intactPrefix counts the frames fully contained in the first cut bytes.
func intactPrefix(frameEnds []int, cut int) int {
	n := 0
	for _, end := range frameEnds {
		if end <= cut {
			n++
		}
	}
	return n
}

// frameIndexAt returns the index of the frame containing byte offset
// off — equivalently, the number of frames wholly before it.
func frameIndexAt(frameEnds []int, off int) int {
	for i, end := range frameEnds {
		if off < end {
			return i
		}
	}
	return len(frameEnds)
}

// verifyPrefix asserts the store holds exactly entries [0, want) with
// pristine bodies.
func verifyPrefix(t *testing.T, s *Store, want int) {
	t.Helper()
	for i := 0; i < want; i++ {
		body, ok := s.Get(testKey(i))
		if !ok {
			t.Fatalf("entry %d missing from recovered prefix of %d", i, want)
		}
		if !bytes.Equal(body, testBody(i)) {
			t.Fatalf("entry %d recovered with damaged bytes", i)
		}
	}
	if _, ok := s.Get(testKey(want)); ok {
		t.Fatalf("entry %d beyond the intact prefix was recovered", want)
	}
}
