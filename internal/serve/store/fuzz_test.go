package store

// FuzzStoreReplay drives the log decoder with arbitrary bytes. The
// contract under fuzzing mirrors the crash-recovery contract: the
// scanner must never panic, must never consume more bytes than it was
// given, and must only ever yield entries whose frames verify — which
// is asserted structurally: re-encoding the recovered entries must
// reproduce the input's valid prefix byte-for-byte, and re-scanning
// that prefix must yield the same entries again (a full round trip).

import (
	"bytes"
	"testing"
)

type fuzzEntry struct {
	key  [keyLen]byte
	body []byte
}

func collectFrames(data []byte) (entries []fuzzEntry, valid int64) {
	valid = scanFrames(bytes.NewReader(data), func(key [keyLen]byte, body []byte) {
		entries = append(entries, fuzzEntry{key: key, body: append([]byte(nil), body...)})
	})
	return entries, valid
}

func FuzzStoreReplay(f *testing.F) {
	// Seeds: a two-entry log, its torn truncations, a corrupted body, a
	// huge declared length, and junk.
	var log bytes.Buffer
	for i := 0; i < 2; i++ {
		var key [keyLen]byte
		for j := range key {
			key[j] = byte(i*31 + j)
		}
		log.Write(encodeFrame(key, []byte("plan-body-bytes")))
	}
	full := log.Bytes()
	f.Add(full)
	f.Add(full[:len(full)-1])
	f.Add(full[:3])
	f.Add(full[:len(full)/2])
	corrupted := append([]byte(nil), full...)
	corrupted[10] ^= 0xff
	f.Add(corrupted)
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte("not a log at all"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		entries, valid := collectFrames(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		// Every recovered entry carries a verified checksum, so the
		// canonical re-encoding of the recovered entries IS the valid
		// prefix. Any divergence means the scanner accepted a frame it
		// should have rejected (or mangled one it accepted).
		var re bytes.Buffer
		for _, e := range entries {
			re.Write(encodeFrame(e.key, e.body))
		}
		if !bytes.Equal(re.Bytes(), data[:valid]) {
			t.Fatalf("re-encoded entries differ from the valid prefix:\n got %x\nwant %x", re.Bytes(), data[:valid])
		}
		// And the round trip is stable: re-scanning the valid prefix
		// yields the same entries and consumes all of it.
		entries2, valid2 := collectFrames(data[:valid])
		if valid2 != valid || len(entries2) != len(entries) {
			t.Fatalf("re-scan: %d entries / %d bytes, want %d / %d", len(entries2), valid2, len(entries), valid)
		}
		for i := range entries {
			if entries[i].key != entries2[i].key || !bytes.Equal(entries[i].body, entries2[i].body) {
				t.Fatalf("re-scan entry %d differs", i)
			}
		}
	})
}
