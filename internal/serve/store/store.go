// Package store is ranad's persistent plan store: an append-only,
// CRC-framed log of content-addressed response bodies keyed by the
// canonical resolved-request SHA-256 the serving layer already computes.
//
// The compile step is expensive and deterministic, so a plan computed
// once is an artifact worth keeping across restarts: on startup the log
// is replayed and the recovered bodies warm-fill the serving LRU, so a
// restarted node answers previously compiled requests byte-identically
// without invoking the scheduler at all.
//
// Log format (all integers little-endian):
//
//	header   8 bytes  "RANAPST1"
//	record   u32 bodyLen | 32-byte key | body | u32 CRC-32C
//
// The trailing checksum covers the length prefix, the key and the body,
// so a torn write, a corrupted length, or a flipped body byte all fail
// verification. Recovery is prefix-valid by construction: replay stops
// at the first frame that is short or fails its checksum, and Open
// truncates the file back to the valid prefix so the next append starts
// on a frame boundary. A crash can therefore lose at most the entries
// whose fsync had not yet completed — it can never resurrect a torn or
// corrupted plan.
//
// Durability is batched: appends land in the OS page cache immediately
// and a background flusher fsyncs every SyncInterval (group commit), so
// a burst of compiles costs one disk sync, not one per plan. Close and
// Sync force the batch out. The log is bounded by MaxBytes: beyond it a
// compaction rewrites the newest entries into a fresh log and atomically
// renames it into place, dropping the oldest plans first (they are the
// ones a warm LRU would evict anyway).
//
// Keys are content addresses: a key maps to exactly one body forever.
// Re-putting a key with identical bytes is a cheap no-op; re-putting it
// with different bytes is reported as an error, because it means the
// supposedly deterministic compile pipeline produced two different
// plans for one resolved request — the exact invariant the cross-node
// conformance oracle (verify.CompareNodes) exists to protect.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

const (
	// logMagic identifies a plan log; the trailing byte versions the
	// frame format.
	logMagic  = "RANAPST1"
	headerLen = len(logMagic)

	// keyLen is the raw length of a content address (SHA-256).
	keyLen = 32

	// frameOverhead is a record's size beyond its body: the u32 length
	// prefix, the key, and the trailing u32 CRC.
	frameOverhead = 4 + keyLen + 4

	// MaxBody bounds one stored body. Response bodies are at most a few
	// MB (a full GoogLeNet compile artifact is ~1 MB); anything larger
	// in the log is corruption, not data.
	MaxBody = 16 << 20
)

// castagnoli is the CRC-32C polynomial — the usual choice for storage
// framing (iSCSI, ext4, Btrfs).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options parameterizes a Store.
type Options struct {
	// SyncInterval is the fsync batching period: appends become durable
	// at the next tick. Zero selects 100 ms; negative fsyncs on every
	// Put (durable but slow — tests and paranoid deployments).
	SyncInterval time.Duration

	// MaxBytes bounds the log file. Beyond it a compaction drops the
	// oldest entries until the log fits in about 80% of the bound. Zero
	// means unbounded.
	MaxBytes int64

	// Logf observes replay, truncation and compaction; nil discards.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of a store's state.
type Stats struct {
	Entries          int   // live entries in the index
	FileBytes        int64 // current log size, header included
	Replayed         int   // entries recovered by Open's replay
	DroppedTailBytes int64 // torn/corrupt tail bytes truncated by Open
	Puts             int64 // new entries appended
	DupPuts          int64 // byte-identical re-puts skipped
	Compactions      int64 // log rewrites (bound exceeded or Open found garbage)
}

// ref locates one live record in the log.
type ref struct {
	off     int64 // file offset of the record's length prefix
	bodyLen int
}

// Store is one open plan log. All methods are safe for concurrent use.
type Store struct {
	path string
	opts Options

	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	index map[[keyLen]byte]ref
	size  int64 // current append offset (= file size)
	dirty bool  // bytes written since the last fsync
	stats Stats

	closed    bool
	flushStop chan struct{}
	flushDone chan struct{}
}

// Open opens (creating if absent) the plan log at path, replays it,
// truncates any torn tail, and starts the background fsync batcher.
func Open(path string, opts Options) (*Store, error) {
	if opts.SyncInterval == 0 {
		opts.SyncInterval = 100 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		path:  path,
		opts:  opts,
		f:     f,
		index: make(map[[keyLen]byte]ref),
	}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	if opts.MaxBytes > 0 && s.size > opts.MaxBytes {
		if err := s.compactLocked(opts.MaxBytes * 4 / 5); err != nil {
			f.Close()
			return nil, err
		}
	}
	if opts.SyncInterval > 0 {
		s.flushStop = make(chan struct{})
		s.flushDone = make(chan struct{})
		go s.flusher()
	}
	return s, nil
}

// load replays the log, builds the index, and truncates the file back
// to the longest valid prefix.
func (s *Store) load() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if info.Size() == 0 {
		if _, err := s.f.WriteString(logMagic); err != nil {
			return fmt.Errorf("store: writing header: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing header: %w", err)
		}
		s.size = int64(headerLen)
		s.w = bufio.NewWriter(s.f)
		return nil
	}
	hdr := make([]byte, headerLen)
	if _, err := io.ReadFull(s.f, hdr); err != nil || string(hdr) != logMagic {
		return fmt.Errorf("store: %s is not a plan log (bad magic)", s.path)
	}
	off := int64(headerLen)
	valid := scanFrames(io.NewSectionReader(s.f, off, info.Size()-off), func(key [keyLen]byte, body []byte) {
		s.setRef(key, ref{off: off, bodyLen: len(body)})
		off += int64(frameOverhead + len(body))
		s.stats.Replayed++
	})
	s.size = int64(headerLen) + valid
	if info.Size() > s.size {
		s.stats.DroppedTailBytes = info.Size() - s.size
		s.opts.Logf("store: %s: dropping %d torn/corrupt tail bytes (replayed %d entries)",
			s.path, s.stats.DroppedTailBytes, s.stats.Replayed)
		if err := s.f.Truncate(s.size); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if err := s.f.Sync(); err != nil {
			return fmt.Errorf("store: syncing truncation: %w", err)
		}
	}
	if _, err := s.f.Seek(s.size, io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.w = bufio.NewWriter(s.f)
	return nil
}

// setRef installs a record in the index. Duplicate keys (possible in
// logs written before re-put skipping, or across crash/retry windows)
// resolve to the latest record, matching replay order.
func (s *Store) setRef(key [keyLen]byte, r ref) {
	if _, ok := s.index[key]; !ok {
		s.stats.Entries++
	}
	s.index[key] = r
}

// scanFrames decodes CRC-framed records from r, calling fn for each
// frame whose checksum verifies, and returns the byte length of the
// valid prefix. It stops — without error — at the first short, torn or
// corrupt frame: the recovery contract is "the longest intact prefix",
// never a partial or damaged entry.
func scanFrames(r io.Reader, fn func(key [keyLen]byte, body []byte)) int64 {
	br := bufio.NewReaderSize(r, 1<<16)
	var valid int64
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return valid
		}
		bodyLen := binary.LittleEndian.Uint32(hdr[:])
		if bodyLen > MaxBody {
			return valid
		}
		rest := make([]byte, keyLen+int(bodyLen)+4)
		if _, err := io.ReadFull(br, rest); err != nil {
			return valid
		}
		payload := rest[:keyLen+int(bodyLen)]
		sum := crc32.Update(crc32.Checksum(hdr[:], castagnoli), castagnoli, payload)
		if sum != binary.LittleEndian.Uint32(rest[len(payload):]) {
			return valid
		}
		var key [keyLen]byte
		copy(key[:], payload[:keyLen])
		fn(key, payload[keyLen:])
		valid += int64(4 + len(rest))
	}
}

// encodeFrame renders one record in the wire framing.
func encodeFrame(key [keyLen]byte, body []byte) []byte {
	frame := make([]byte, frameOverhead+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	copy(frame[4:], key[:])
	copy(frame[4+keyLen:], body)
	sum := crc32.Checksum(frame[:4+keyLen+len(body)], castagnoli)
	binary.LittleEndian.PutUint32(frame[4+keyLen+len(body):], sum)
	return frame
}

// parseKey decodes a 64-char hex SHA-256 content address.
func parseKey(key string) ([keyLen]byte, error) {
	var k [keyLen]byte
	if len(key) != 2*keyLen {
		return k, fmt.Errorf("store: key %q is not a sha256 hex digest", key)
	}
	if _, err := hex.Decode(k[:], []byte(key)); err != nil {
		return k, fmt.Errorf("store: key %q is not a sha256 hex digest", key)
	}
	return k, nil
}

// Put appends one content-addressed body. A byte-identical re-put is a
// no-op; a re-put with different bytes is an error (a determinism
// violation upstream, never silently overwritten).
func (s *Store) Put(key string, body []byte) error {
	k, err := parseKey(key)
	if err != nil {
		return err
	}
	if len(body) > MaxBody {
		return fmt.Errorf("store: body for %s is %d bytes, max %d", key, len(body), MaxBody)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if r, ok := s.index[k]; ok {
		prev, err := s.readBodyLocked(r)
		if err != nil {
			return err
		}
		if !bytes.Equal(prev, body) {
			return fmt.Errorf("store: key %s: new body differs from the stored entry (content-addressed log; upstream determinism violation)", key)
		}
		s.stats.DupPuts++
		return nil
	}
	frame := encodeFrame(k, body)
	if _, err := s.w.Write(frame); err != nil {
		return fmt.Errorf("store: appending %s: %w", key, err)
	}
	s.setRef(k, ref{off: s.size, bodyLen: len(body)})
	s.size += int64(len(frame))
	s.dirty = true
	s.stats.Puts++
	if s.opts.SyncInterval < 0 {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.opts.MaxBytes > 0 && s.size > s.opts.MaxBytes {
		return s.compactLocked(s.opts.MaxBytes * 4 / 5)
	}
	return nil
}

// Get returns the stored body for key. Only CRC-verified bytes are ever
// returned.
func (s *Store) Get(key string) ([]byte, bool) {
	k, err := parseKey(key)
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	r, ok := s.index[k]
	if !ok {
		return nil, false
	}
	body, err := s.readBodyLocked(r)
	if err != nil {
		s.opts.Logf("store: reading %s: %v", key, err)
		return nil, false
	}
	return body, true
}

// readBodyLocked reads and CRC-verifies one record's body.
func (s *Store) readBodyLocked(r ref) ([]byte, error) {
	// Pending appends may still sit in the writer; flush so ReadAt sees
	// every indexed record.
	if err := s.w.Flush(); err != nil {
		return nil, fmt.Errorf("store: flushing before read: %w", err)
	}
	frame := make([]byte, frameOverhead+r.bodyLen)
	if _, err := s.f.ReadAt(frame, r.off); err != nil {
		return nil, fmt.Errorf("store: reading record at %d: %w", r.off, err)
	}
	payload := frame[:4+keyLen+r.bodyLen]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(frame[len(payload):]) {
		return nil, fmt.Errorf("store: record at %d failed its checksum", r.off)
	}
	return frame[4+keyLen : 4+keyLen+r.bodyLen], nil
}

// Range calls fn for every live entry in log (append) order, oldest
// first — so a warm-filled LRU ends with the newest plans most recently
// used. fn returning an error stops the walk.
func (s *Store) Range(fn func(key string, body []byte) error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	for _, e := range s.orderedLocked() {
		body, err := s.readBodyLocked(e.ref)
		if err != nil {
			return err
		}
		if err := fn(hex.EncodeToString(e.key[:]), body); err != nil {
			return err
		}
	}
	return nil
}

type orderedRef struct {
	key [keyLen]byte
	ref ref
}

// orderedLocked returns the live records sorted by file offset.
func (s *Store) orderedLocked() []orderedRef {
	out := make([]orderedRef, 0, len(s.index))
	for k, r := range s.index {
		out = append(out, orderedRef{key: k, ref: r})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ref.off < out[j].ref.off })
	return out
}

// Compact rewrites the log keeping only live entries; a positive budget
// additionally drops the oldest entries until the kept frames fit in
// budget bytes (header excluded).
func (s *Store) Compact(budget int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.compactLocked(budget)
}

func (s *Store) compactLocked(budget int64) error {
	ordered := s.orderedLocked()
	// Keep the newest entries whose frames fit in the budget.
	keepFrom := 0
	if budget > 0 {
		var kept int64
		keepFrom = len(ordered)
		for i := len(ordered) - 1; i >= 0; i-- {
			sz := int64(frameOverhead + ordered[i].ref.bodyLen)
			if kept+sz > budget {
				break
			}
			kept += sz
			keepFrom = i
		}
	}
	tmpPath := s.path + ".compact"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	defer os.Remove(tmpPath) // no-op after a successful rename
	tw := bufio.NewWriter(tmp)
	if _, err := tw.WriteString(logMagic); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compacting: %w", err)
	}
	newIndex := make(map[[keyLen]byte]ref, len(ordered)-keepFrom)
	off := int64(headerLen)
	for _, e := range ordered[keepFrom:] {
		body, err := s.readBodyLocked(e.ref)
		if err != nil {
			tmp.Close()
			return err
		}
		frame := encodeFrame(e.key, body)
		if _, err := tw.Write(frame); err != nil {
			tmp.Close()
			return fmt.Errorf("store: compacting: %w", err)
		}
		newIndex[e.key] = ref{off: off, bodyLen: len(body)}
		off += int64(len(frame))
	}
	if err := tw.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compacting: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: compacting: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fmt.Errorf("store: compacting: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: reopening after compaction: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("store: reopening after compaction: %w", err)
	}
	dropped := keepFrom
	s.f.Close()
	s.f = f
	s.w = bufio.NewWriter(f)
	s.index = newIndex
	s.stats.Entries = len(newIndex)
	s.size = off
	s.dirty = false
	s.stats.Compactions++
	s.opts.Logf("store: %s: compacted to %d entries (%d bytes), dropped %d oldest", s.path, len(newIndex), off, dropped)
	return nil
}

// Sync flushes buffered appends and fsyncs the log.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("store: flushing: %w", err)
	}
	if !s.dirty {
		return nil
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing: %w", err)
	}
	s.dirty = false
	return nil
}

// flusher is the fsync batcher: it makes appends durable once per
// SyncInterval instead of once per Put.
func (s *Store) flusher() {
	defer close(s.flushDone)
	t := time.NewTicker(s.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				if err := s.syncLocked(); err != nil {
					s.opts.Logf("store: background sync: %v", err)
				}
			}
			s.mu.Unlock()
		case <-s.flushStop:
			return
		}
	}
}

// Close syncs and closes the log. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	err := s.syncLocked()
	s.closed = true
	if cerr := s.f.Close(); err == nil && cerr != nil {
		err = fmt.Errorf("store: closing: %w", cerr)
	}
	s.mu.Unlock()
	if s.flushStop != nil {
		close(s.flushStop)
		<-s.flushDone
	}
	return err
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.FileBytes = s.size
	return st
}

// Len returns the number of live entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.Entries
}

// Path returns the log's file path.
func (s *Store) Path() string { return s.path }
