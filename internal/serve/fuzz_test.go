package serve

// Fuzzing and hostile-input tests for the request decoding path: no
// body, however malformed, oversized or truncated, may panic the
// decoder, hang a flight, or produce anything but a 4xx.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// FuzzDecodeScheduleRequest asserts the decode contract on arbitrary
// bytes: decodeJSON either succeeds or returns an *apiError in the 4xx
// range — never a panic, never a 5xx-class error.
func FuzzDecodeScheduleRequest(f *testing.F) {
	f.Add([]byte(`{"model": "AlexNet"}`))
	f.Add([]byte(`{"network": ` + tinyNetJSON + `}`))
	f.Add([]byte(`{"model": "AlexNet", "deadline_ms": 50}`))
	f.Add([]byte(`{"model"`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"model": 42}`))
	f.Add([]byte(`{"model": "A"}{"model": "B"}`))
	f.Add([]byte(`{"options": {"patterns": ["OD", "XX"]}}`))
	f.Add([]byte(strings.Repeat(`{"a":`, 1000)))
	f.Fuzz(func(t *testing.T, body []byte) {
		r := httptest.NewRequest("POST", "/v1/schedule", strings.NewReader(string(body)))
		var req ScheduleRequest
		err := decodeJSON(r, &req)
		if err == nil {
			return
		}
		var ae *apiError
		if !errors.As(err, &ae) {
			t.Fatalf("decode error is not an apiError: %v", err)
		}
		if ae.status < 400 || ae.status > 499 {
			t.Fatalf("decode error status %d outside 4xx: %v", ae.status, err)
		}
	})
}

func TestHostileBodiesAlwaysClientError(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	oversized := `{"network": {"name": "big", "layers": [` +
		strings.Repeat(`{"name": "l", "n": 1, "h": 8, "l": 8, "m": 1, "k": 1, "s": 1},`, 40000) +
		`{"name": "l", "n": 1, "h": 8, "l": 8, "m": 1, "k": 1, "s": 1}]}}`
	if len(oversized) <= maxRequestBytes {
		t.Fatalf("oversized fixture is only %d bytes", len(oversized))
	}
	manyLayers := `{"network": {"name": "wide", "layers": [` +
		strings.Repeat(`{"name": "l", "n": 1, "h": 8, "l": 8, "m": 1, "k": 1, "s": 1},`, maxCustomLayers) +
		`{"name": "l", "n": 1, "h": 8, "l": 8, "m": 1, "k": 1, "s": 1}]}}`

	cases := []struct {
		name, body string
	}{
		{"empty body", ``},
		{"not json", `this is not json`},
		{"truncated", `{"network": {"name": "x", "lay`},
		{"null", `null` /* decodes to a zero request; rejected by resolve */},
		{"array", `[1,2,3]`},
		{"wrong type", `{"model": {"nested": true}}`},
		{"deep nesting", strings.Repeat(`{"network":`, 5000) + `1` + strings.Repeat(`}`, 5000)},
		{"oversized", oversized},
		{"too many layers", manyLayers},
		{"negative deadline", `{"model": "AlexNet", "deadline_ms": -5}`},
		{"huge ints", `{"network": {"name": "x", "layers": [{"name": "l", "n": 999999999999999999999999, "h": 8, "l": 8, "m": 1, "k": 1, "s": 1}]}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan *http.Response, 1)
			go func() {
				resp, err := http.Post(ts.URL+"/v1/schedule", "application/json", strings.NewReader(tc.body))
				if err != nil {
					t.Error(err)
					done <- nil
					return
				}
				done <- resp
			}()
			select {
			case resp := <-done:
				if resp == nil {
					return
				}
				body := readBody(t, resp)
				if resp.StatusCode < 400 || resp.StatusCode > 499 {
					t.Fatalf("status %d outside 4xx: %s", resp.StatusCode, body)
				}
				var e struct {
					Error string `json:"error"`
				}
				if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
					t.Errorf("error body not structured: %s", body)
				}
			case <-time.After(10 * time.Second):
				t.Fatal("hostile body hung the request")
			}
			// The server is still healthy after every hostile body.
			hresp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			readBody(t, hresp)
			if hresp.StatusCode != 200 {
				t.Fatalf("healthz = %d after hostile body", hresp.StatusCode)
			}
		})
	}
}
