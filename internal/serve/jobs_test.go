package serve

// Async batch API tests: the 202 → poll → done lifecycle with results
// byte-identical to the sync endpoints, cancellation, job-table bounds
// with oldest-done eviction, per-entry failure isolation under chaos,
// and submit-time validation.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"rana/internal/serve/chaos"
)

// submitBatch posts a batch and returns the accepted job, failing the
// test on a non-202.
func submitBatch(t *testing.T, baseURL, body string) BatchAccepted {
	t.Helper()
	resp := post(t, baseURL+"/v1/compile-batch", body)
	b := readBody(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("batch submit: status %d: %s", resp.StatusCode, b)
	}
	var acc BatchAccepted
	if err := json.Unmarshal(b, &acc); err != nil {
		t.Fatalf("batch submit body: %v\n%s", err, b)
	}
	if acc.ID == "" || acc.Total == 0 {
		t.Fatalf("batch submit body incomplete: %+v", acc)
	}
	return acc
}

// getJob fetches a job's status, returning the HTTP status too.
func getJob(t *testing.T, baseURL, id string) (JobStatus, int) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	b := readBody(t, resp)
	var js JobStatus
	if resp.StatusCode == 200 {
		if err := json.Unmarshal(b, &js); err != nil {
			t.Fatalf("job status body: %v\n%s", err, b)
		}
	}
	return js, resp.StatusCode
}

// pollJob polls until the job leaves "running" or the deadline hits.
func pollJob(t *testing.T, baseURL, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		js, code := getJob(t, baseURL, id)
		if code != 200 {
			t.Fatalf("polling %s: status %d", id, code)
		}
		if js.Status != "running" {
			return js
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s still running after 20s", id)
	return JobStatus{}
}

func TestBatchLifecycleMatchesSyncBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	batch := `{"entries": [
		{"op": "compile", "compile": {"network": ` + tinyNetJSON + `}},
		{"compile": {"model": "AlexNet"}},
		{"op": "schedule", "schedule": {"network": ` + tinyNetJSON + `}}
	]}`
	acc := submitBatch(t, ts.URL, batch)
	if acc.Total != 3 {
		t.Fatalf("total = %d, want 3", acc.Total)
	}
	js := pollJob(t, ts.URL, acc.ID)
	if js.Status != "done" || js.Finished != 3 {
		t.Fatalf("job = %q with %d finished, want done/3", js.Status, js.Finished)
	}

	// Every entry's result must be byte-identical to the equivalent sync
	// response (modulo the trailing newline JSON embedding strips).
	syncBodies := make([][]byte, 3)
	for i, rq := range []struct{ path, body string }{
		{"/v1/compile", `{"network": ` + tinyNetJSON + `}`},
		{"/v1/compile", `{"model": "AlexNet"}`},
		{"/v1/schedule", `{"network": ` + tinyNetJSON + `}`},
	} {
		resp := post(t, ts.URL+rq.path, rq.body)
		syncBodies[i] = readBody(t, resp)
		if resp.StatusCode != 200 {
			t.Fatalf("sync %s: status %d", rq.path, resp.StatusCode)
		}
	}
	for i, e := range js.Entries {
		if e.Status != "ok" {
			t.Fatalf("entry %d: status %q (%s)", i, e.Status, e.Error)
		}
		if e.Key == "" || e.Source == "" {
			t.Errorf("entry %d: missing key/source metadata: %+v", i, e)
		}
		if got := append(append([]byte(nil), e.Result...), '\n'); !bytes.Equal(got, syncBodies[i]) {
			t.Errorf("entry %d: result bytes diverge from the sync endpoint", i)
		}
	}

	// The batch populated the shared cache: the sync requests above must
	// have been hits, not recomputations.
	m := metricsSnapshot(t, ts.URL)
	if m["jobs_accepted"] != 1 || m["jobs_done"] != 1 {
		t.Errorf("jobs_accepted/done = %v/%v, want 1/1", m["jobs_accepted"], m["jobs_done"])
	}
}

func TestBatchCancellation(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{})
	s.scheduleFn = countingScheduleFn(&calls, gate)
	defer close(gate)

	acc := submitBatch(t, ts.URL, `{"entries": [
		{"op": "schedule", "schedule": {"network": `+tinyNetJSON+`}}
	]}`)

	// Wait for the entry to reach its (gated) computation, then cancel.
	deadline := time.Now().Add(10 * time.Second)
	for calls.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if calls.Load() == 0 {
		t.Fatal("entry never started computing")
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+acc.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}

	js := pollJob(t, ts.URL, acc.ID)
	if js.Status != "canceled" {
		t.Fatalf("job status = %q, want canceled", js.Status)
	}
	if e := js.Entries[0]; e.Status != "canceled" || e.Result != nil {
		t.Errorf("entry = %q with result %q, want canceled and no result", e.Status, e.Result)
	}
	m := metricsSnapshot(t, ts.URL)
	if m["jobs_canceled"] != 1 {
		t.Errorf("jobs_canceled = %v, want 1", m["jobs_canceled"])
	}
}

func TestBatchTableBoundsAndEviction(t *testing.T) {
	var calls atomic.Int64
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{JobCapacity: 2})
	s.scheduleFn = countingScheduleFn(&calls, nil)

	quick := `{"entries": [{"op": "schedule", "schedule": {"network": ` + tinyNetJSON + `}}]}`
	j1 := submitBatch(t, ts.URL, quick)
	pollJob(t, ts.URL, j1.ID)
	j2 := submitBatch(t, ts.URL, quick)
	pollJob(t, ts.URL, j2.ID)

	// Capacity 2 with both jobs finished: the next submit evicts the
	// oldest done job.
	j3 := submitBatch(t, ts.URL, quick)
	pollJob(t, ts.URL, j3.ID)
	if _, code := getJob(t, ts.URL, j1.ID); code != http.StatusNotFound {
		t.Fatalf("evicted job %s: status %d, want 404", j1.ID, code)
	}
	if _, code := getJob(t, ts.URL, j3.ID); code != 200 {
		t.Fatalf("new job %s: status %d, want 200", j3.ID, code)
	}

	// Fill the table with running (gated) jobs: the next submit must be
	// shed with 429 + Retry-After, never by dropping a running job.
	s.scheduleFn = countingScheduleFn(&calls, gate)
	gated := `{"entries": [{"op": "schedule", "schedule": {"model": "AlexNet"}}]}`
	gated2 := `{"entries": [{"op": "schedule", "schedule": {"model": "GoogLeNet"}}]}`
	g1 := submitBatch(t, ts.URL, gated)
	g2 := submitBatch(t, ts.URL, gated2)
	resp := post(t, ts.URL+"/v1/compile-batch", quick)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit over a full running table: status %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(gate)
	pollJob(t, ts.URL, g1.ID)
	pollJob(t, ts.URL, g2.ID)

	m := metricsSnapshot(t, ts.URL)
	if m["jobs_evicted"] < 1 {
		t.Errorf("jobs_evicted = %v, want >= 1", m["jobs_evicted"])
	}
}

func TestBatchChaosFailuresStayPerEntry(t *testing.T) {
	// Panic every 2nd computation: with three distinct entries exactly
	// one computation (the second to start) panics. The job must still
	// finish, with the failure on its entry and the others ok.
	_, ts := newTestServer(t, Config{
		Chaos:   chaos.New(chaos.Config{PanicEvery: 2}),
		Workers: 1, // serialize computations so exactly one is the 2nd
	})
	batch := `{"entries": [
		{"op": "schedule", "schedule": {"network": ` + tinyNetJSON + `}},
		{"op": "schedule", "schedule": {"model": "AlexNet"}},
		{"op": "schedule", "schedule": {"model": "GoogLeNet"}}
	]}`
	acc := submitBatch(t, ts.URL, batch)
	js := pollJob(t, ts.URL, acc.ID)
	if js.Status != "done" {
		t.Fatalf("job status = %q, want done (per-entry failures must not fail the batch)", js.Status)
	}
	var ok, failed int
	for _, e := range js.Entries {
		switch e.Status {
		case "ok":
			ok++
		case "error":
			failed++
			if !strings.Contains(e.Error, "panic") {
				t.Errorf("failed entry error = %q, want the injected panic surfaced", e.Error)
			}
		default:
			t.Errorf("entry %d: unexpected status %q", e.Index, e.Status)
		}
	}
	if ok != 2 || failed != 1 {
		t.Fatalf("ok/failed = %d/%d, want 2/1", ok, failed)
	}
}

func TestBatchDegradedScheduleEntry(t *testing.T) {
	// A schedule entry with a deadline under the degrade budget rides
	// the same ladder as the sync endpoint.
	_, ts := newTestServer(t, Config{DegradeBudget: 10 * time.Second})
	acc := submitBatch(t, ts.URL, `{"entries": [
		{"op": "schedule", "schedule": {"network": `+tinyNetJSON+`, "deadline_ms": 5000}}
	]}`)
	js := pollJob(t, ts.URL, acc.ID)
	if js.Status != "done" || js.Entries[0].Status != "ok" {
		t.Fatalf("job = %+v", js)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(js.Entries[0].Result, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded {
		t.Error("entry under the degrade budget did not ride the ladder")
	}
}

func TestBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"empty", `{"entries": []}`},
		{"bad op", `{"entries": [{"op": "evaluate"}]}`},
		{"missing body", `{"entries": [{"op": "compile"}]}`},
		{"both bodies", `{"entries": [{"op": "compile", "compile": {"model": "AlexNet"}, "schedule": {"model": "AlexNet"}}]}`},
		{"bad entry model", `{"entries": [{"compile": {"model": "nope"}}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+"/v1/compile-batch", tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
		})
	}

	// Oversized batches are rejected up front.
	var sb strings.Builder
	sb.WriteString(`{"entries": [`)
	for i := 0; i <= maxBatchEntries; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"compile": {"model": "AlexNet"}}`)
	}
	sb.WriteString(`]}`)
	resp := post(t, ts.URL+"/v1/compile-batch", sb.String())
	readBody(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}

	// Unknown job and bad method.
	if _, code := getJob(t, ts.URL, "job-999"); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	presp := post(t, ts.URL+"/v1/jobs/job-1", `{}`)
	readBody(t, presp)
	if presp.StatusCode != http.StatusNotFound && presp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST to jobs: status %d, want 404/405", presp.StatusCode)
	}
}
