package serve

// Tests for the search-strategy surface of the API: the "search"
// request field, the beam rung of the degradation ladder, and the
// strategy's place in the cache key.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"rana/internal/core"
	"rana/internal/models"
	"rana/internal/sched/search"
)

// scheduleTiny posts a /v1/schedule request for the tiny network with
// the given extra top-level fields and decodes the response.
func scheduleTiny(t *testing.T, url, extra string) (*http.Response, ScheduleResponse) {
	t.Helper()
	body := `{"network": ` + tinyNetJSON + extra + `}`
	resp := post(t, url+"/v1/schedule", body)
	raw := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatalf("body not a ScheduleResponse: %v\n%s", err, raw)
	}
	return resp, sr
}

func TestScheduleEchoesResolvedSearch(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// No pinned strategy, no deadline: the pruned default.
	_, sr := scheduleTiny(t, ts.URL, ``)
	if sr.Search != string(search.Pruned) {
		t.Errorf("default search = %q, want %q", sr.Search, search.Pruned)
	}

	// A pinned strategy is echoed as written.
	_, sr = scheduleTiny(t, ts.URL, `, "options": {"search": "exhaustive"}`)
	if sr.Search != string(search.Exhaustive) {
		t.Errorf("pinned search = %q, want %q", sr.Search, search.Exhaustive)
	}
}

func TestDeadlineSelectsBeamRung(t *testing.T) {
	// Deadline between the degrade budget and the beam budget: the
	// middle rung. The schedule is a real (non-degraded) search, just a
	// budgeted one, and the response says which strategy ran.
	_, ts := newTestServer(t, Config{
		DegradeBudget: 50 * time.Millisecond,
		BeamBudget:    time.Hour, // anything short of an hour beams
	})
	_, sr := scheduleTiny(t, ts.URL, `, "deadline_ms": 30000`)
	if sr.Degraded {
		t.Fatal("beam rung must not be the degraded fallback")
	}
	if sr.Search != string(search.Beam) {
		t.Errorf("search = %q, want %q", sr.Search, search.Beam)
	}

	// A pinned strategy opts out of the substitution.
	_, sr = scheduleTiny(t, ts.URL, `, "deadline_ms": 30000, "options": {"search": "pruned"}`)
	if sr.Search != string(search.Pruned) {
		t.Errorf("pinned search under tight deadline = %q, want %q", sr.Search, search.Pruned)
	}

	// The bottom rung still wins below the degrade budget, and the
	// degraded body carries no search field (nothing was searched).
	_, sr = scheduleTiny(t, ts.URL, `, "deadline_ms": 40`)
	if !sr.Degraded {
		t.Fatal("deadline below the degrade budget must degrade")
	}
	if sr.Search != "" {
		t.Errorf("degraded search = %q, want empty", sr.Search)
	}
}

func TestBeamRungDisabled(t *testing.T) {
	// A negative beam budget disables the middle rung: a deadline that
	// clears the degrade budget runs the full default search.
	_, ts := newTestServer(t, Config{
		DegradeBudget: 50 * time.Millisecond,
		BeamBudget:    -1,
	})
	_, sr := scheduleTiny(t, ts.URL, `, "deadline_ms": 500`)
	if sr.Degraded || sr.Search != string(search.Pruned) {
		t.Errorf("degraded=%v search=%q, want full pruned search", sr.Degraded, sr.Search)
	}
}

func TestSearchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body, wantErr string
	}{
		{"unknown strategy", `{"model": "AlexNet", "options": {"search": "dfs"}}`, "invalid search"},
		{"width without beam", `{"model": "AlexNet", "options": {"beam_width": 8}}`, `beam_width requires "search": "beam"`},
		{"negative width", `{"model": "AlexNet", "options": {"search": "beam", "beam_width": -2}}`, "negative beam_width"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+"/v1/schedule", tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != 400 {
				t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body not JSON: %s", body)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}

	// /v1/compile shares the validation through its top-level field.
	resp := post(t, ts.URL+"/v1/compile", `{"model": "AlexNet", "search": "dfs"}`)
	body := readBody(t, resp)
	if resp.StatusCode != 400 {
		t.Errorf("compile with bad search: status %d, want 400: %s", resp.StatusCode, body)
	}
}

func TestSearchStrategyIsACacheKeyComponent(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Omitted and explicitly-pinned "pruned" resolve to one key...
	resp, _ := scheduleTiny(t, ts.URL, ``)
	if got := resp.Header.Get("X-Rana-Cache"); got != "miss" {
		t.Fatalf("first request cache = %q, want miss", got)
	}
	resp, _ = scheduleTiny(t, ts.URL, `, "options": {"search": "pruned"}`)
	if got := resp.Header.Get("X-Rana-Cache"); got != "hit" {
		t.Errorf(`explicit "pruned" cache = %q, want hit (same key as the default)`, got)
	}

	// ...while a different strategy computes fresh.
	resp, _ = scheduleTiny(t, ts.URL, `, "options": {"search": "beam"}`)
	if got := resp.Header.Get("X-Rana-Cache"); got != "miss" {
		t.Errorf("beam request cache = %q, want miss (distinct key)", got)
	}

	// Beam widths are distinct keys too: a non-default width must not
	// serve the default-width body.
	resp, _ = scheduleTiny(t, ts.URL, `, "options": {"search": "beam", "beam_width": 7}`)
	if got := resp.Header.Get("X-Rana-Cache"); got != "miss" {
		t.Errorf("beam_width=7 cache = %q, want miss", got)
	}
}

func TestSearchStrategiesAgreeOverHTTP(t *testing.T) {
	// End-to-end differential check at the API layer: exhaustive and
	// pruned must return byte-identical plan encodings.
	_, ts := newTestServer(t, Config{})
	plans := make(map[search.Strategy]string)
	for _, s := range []search.Strategy{search.Exhaustive, search.Pruned} {
		_, sr := scheduleTiny(t, ts.URL, fmt.Sprintf(`, "options": {"search": %q}`, s))
		b, err := json.Marshal(sr.Plan)
		if err != nil {
			t.Fatal(err)
		}
		plans[s] = string(b)
	}
	if plans[search.Exhaustive] != plans[search.Pruned] {
		t.Errorf("pruned plan differs from exhaustive:\nexhaustive: %.200s\npruned:     %.200s",
			plans[search.Exhaustive], plans[search.Pruned])
	}
}

func TestCatalogListsSearchStrategies(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var cat struct {
		Strategies []string `json:"search_strategies"`
	}
	if err := json.Unmarshal(readBody(t, resp), &cat); err != nil {
		t.Fatal(err)
	}
	want := search.Strategies()
	if len(cat.Strategies) != len(want) {
		t.Fatalf("catalog lists %v, want %v", cat.Strategies, want)
	}
	for i, s := range want {
		if cat.Strategies[i] != string(s) {
			t.Errorf("catalog strategy %d = %q, want %q", i, cat.Strategies[i], s)
		}
	}
}

func TestCompileHonorsSearchStrategy(t *testing.T) {
	// The compile path threads the strategy into the framework; record
	// what the default compileFn receives via a stub.
	s, ts := newTestServer(t, Config{})
	var got []search.Strategy
	inner := s.compileFn
	s.compileFn = func(ctx context.Context, net models.Network, strategy search.Strategy, parallelism int) (*core.Output, error) {
		got = append(got, strategy)
		return inner(ctx, net, strategy, parallelism)
	}
	post(t, ts.URL+"/v1/compile", `{"network": `+tinyNetJSON+`}`).Body.Close()
	post(t, ts.URL+"/v1/compile", `{"network": `+tinyNetJSON+`, "search": "beam"}`).Body.Close()
	if len(got) != 2 || got[0] != "" || got[1] != search.Beam {
		t.Errorf("compileFn saw strategies %v, want [\"\" beam]", got)
	}
}
