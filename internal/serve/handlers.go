package serve

// Endpoint handlers. Each computing endpoint follows the same shape:
// decode strictly, resolve onto native types (applying defaults), hash
// the resolved form, then run the shared cache → singleflight → worker
// pool path. Response bodies are marshaled once inside the computation
// so every consumer of a key sees identical bytes.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"rana/internal/mem"
	"rana/internal/models"
	"rana/internal/platform"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sched/search"
	"rana/internal/training"
)

// ScheduleResponse is the /v1/schedule response body.
type ScheduleResponse struct {
	// Accelerator names the resolved configuration.
	Accelerator string `json:"accelerator"`
	// RefreshIntervalNS echoes the resolved refresh interval (0 when no
	// controller runs).
	RefreshIntervalNS int64 `json:"refresh_interval_ns"`
	// Controller echoes the resolved controller ("none" when absent).
	Controller string `json:"controller"`
	// Plan is the schedule in the shared wire encoding — the same
	// format as the golden regression files and `rana-sched -json`.
	Plan sched.PlanJSON `json:"plan"`
	// Search echoes the resolved exploration strategy the schedule ran
	// under — the client's pinned strategy, the pruned default, or the
	// beam rung the degradation ladder substituted for a tight deadline.
	// Empty on degraded responses (the uniform fallback does not search).
	Search string `json:"search,omitempty"`
	// Degraded marks a response served via the degradation ladder: the
	// request's deadline budget was below the server's degrade budget,
	// so this is a cheap uniform fallback schedule (natural tiling,
	// no per-layer search), valid but not energy-optimal.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// degradedReason is deliberately a fixed string — no per-request
// numbers — so degraded responses stay byte-identical across cache
// hits, misses and dedups.
const degradedReason = "deadline budget below the full-search threshold; served the uniform fallback schedule"

// budgetFallbackReason marks the error-budget rung of the degradation
// ladder: the request pinned an operating point that clears the uniform
// error budget but breaks at least one layer's own calibrated budget,
// so the nominal corner was substituted. Fixed string for the same
// byte-identity reason as degradedReason.
const budgetFallbackReason = "pinned operating point exceeds a per-layer error budget; served the nominal corner"

// admissionConstraint is the relative-accuracy constraint the server
// derives per-layer error budgets at — the framework's paper-reproducing
// Stage 1 default.
const admissionConstraint = 0.995

// layerNames projects a network onto its layer-name list, in layer
// order — the shape training.LayerTolerableRates keys its budgets by.
func layerNames(net models.Network) []string {
	names := make([]string, len(net.Layers))
	for i, l := range net.Layers {
		names[i] = l.Name
	}
	return names
}

// anyFaulty reports whether any operating point carries a non-zero raw
// bit-error rate — the request engaging the approximate axis.
func anyFaulty(pts []mem.OperatingPoint) bool {
	for _, p := range pts {
		if p.BitErrorRate > 0 {
			return true
		}
	}
	return false
}

// planFaulty reports whether a computed plan places any layer's data at
// a fault-exposed (non-nominal) operating point.
func planFaulty(plan *sched.Plan) bool {
	for _, lp := range plan.Layers {
		if lp.Point != "" && lp.Point != mem.Nominal {
			return true
		}
	}
	return false
}

// work is one prepared keyed computation: the canonical cache key, the
// request's explicit deadline (0 = none), whether the degradation
// ladder bottomed out, and the computation itself. The sync handlers
// and the async batch entries share this form — a batch entry is
// exactly a sync request minus the held HTTP connection, so preparing
// both through one path keeps their bytes identical by construction.
type work struct {
	key      string
	deadline time.Duration
	degraded bool
	// budgetFallback marks the error-budget rung: a pinned point broke a
	// per-layer budget and the nominal corner was substituted.
	budgetFallback bool
	compute        func(ctx context.Context) ([]byte, error)
}

// prepareSchedule resolves a ScheduleRequest into its work: validation,
// defaulting, the degradation ladder, the canonical key, and the
// computation closure.
func (s *Server) prepareSchedule(req ScheduleRequest) (*work, error) {
	if req.DeadlineMS < 0 {
		return nil, badRequest("negative deadline_ms %d", req.DeadlineMS)
	}
	net, err := resolveNetwork(req.Model, req.Network)
	if err != nil {
		return nil, err
	}
	cfg, err := resolveConfig(req.Accelerator, req.Config)
	if err != nil {
		return nil, err
	}
	opts, err := resolveOptions(req.Options, cfg)
	if err != nil {
		return nil, err
	}
	if err := s.checkBackendAllowed(mem.NormalizeName(opts.Backend, cfg.BufferTech)); err != nil {
		return nil, err
	}
	// The degradation ladder: an explicit deadline tightens the request
	// context. A deadline too small for the full hybrid search swaps in
	// the uniform fallback options (bottom rung); one that clears the
	// degrade budget but not the beam budget swaps the exploration
	// strategy for the budgeted beam (middle rung) — but only when the
	// client left the strategy to the server; a pinned "search" field is
	// honored as written. The degraded variant gets its own cache key
	// ("schedule-degraded") because its body differs even when the
	// resolved options coincide with a full request's; the beam rung
	// needs no such carve-out since the resolved strategy is already a
	// cache-key component.
	w := &work{}
	if req.DeadlineMS > 0 {
		w.deadline = time.Duration(req.DeadlineMS) * time.Millisecond
		pinned := req.Options != nil && req.Options.Search != ""
		switch {
		case s.cfg.DegradeBudget > 0 && w.deadline < s.cfg.DegradeBudget:
			w.degraded = true
			opts = opts.Fallback()
		case s.cfg.BeamBudget > 0 && w.deadline < s.cfg.BeamBudget && !pinned:
			opts.Search = search.Beam
		}
	}
	// Stage 1's per-layer error budgets ride along whenever the request
	// engages the approximate operating-point axis (a resolved point
	// with a non-zero bit-error rate): the scheduler then admits points
	// layer by layer against the calibrated resilience curves. Legacy
	// requests resolve to nominal-only point sets and keep their exact
	// options — and canonical cache keys — untouched.
	if _, pts, rerr := sched.ResolveBackend(cfg, opts); rerr == nil && anyFaulty(pts) {
		budgets, berr := training.LayerTolerableRates(net.Name, layerNames(net), admissionConstraint, training.PaperRates)
		if berr != nil {
			return nil, fmt.Errorf("serve: deriving layer budgets: %w", berr)
		}
		opts.LayerBudgets = budgets
		// The error-budget rung of the ladder: a pinned point that
		// clears the uniform budget but breaks a layer's own budget is
		// degraded to the backend's nominal corner, not failed — the
		// client asked for a plan, and the safe corner is always
		// admissible.
		if opts.OperatingPoint != "" && !w.degraded {
			for _, l := range net.Layers {
				if _, _, lerr := sched.ResolveBackendForLayer(cfg, opts, l.Name); lerr != nil {
					w.budgetFallback = true
					opts.OperatingPoint = mem.Nominal
					break
				}
			}
		}
	}
	// Parallelism and the shared memo ride along *outside* the cache key:
	// plans are byte-identical at every worker count, so requests
	// differing only here must share one entry. The ladder composes with
	// both — a beam-rung (or degraded) computation still fans its pricing
	// across the workers and still hits the shared memo.
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.Parallelism
	}
	opts.Memo = s.memo
	opts.Prefix = s.prefix
	switch {
	case w.degraded:
		w.key = scheduleDegradedKey(net, cfg, opts)
	case w.budgetFallback:
		w.key = scheduleBudgetFallbackKey(net, cfg, opts)
	default:
		w.key = scheduleKey(net, cfg, opts)
	}
	degraded := w.degraded
	budgetFallback := w.budgetFallback
	w.compute = func(ctx context.Context) ([]byte, error) {
		s.m.computed(search.EffectiveParallelism(opts.Parallelism))
		plan, err := s.scheduleFn(ctx, net, cfg, opts)
		if err != nil {
			return nil, wrapComputeErr(ctx, err)
		}
		controller := "none"
		if opts.Controller != nil {
			controller = opts.Controller.Name()
		}
		resp := ScheduleResponse{
			Accelerator:       cfg.Name,
			RefreshIntervalNS: int64(opts.RefreshInterval),
			Controller:        controller,
			Plan:              sched.Encode(plan),
		}
		switch {
		case degraded:
			resp.Degraded = true
			resp.DegradedReason = degradedReason
		case budgetFallback:
			// The budget rung ran the full search (at the nominal corner),
			// so Search is still reported alongside the degraded marker.
			resp.Degraded = true
			resp.DegradedReason = budgetFallbackReason
			resp.Search = string(opts.Search.Resolve())
		default:
			resp.Search = string(opts.Search.Resolve())
		}
		if planFaulty(plan) {
			s.m.FaultInjections.Add(1)
		}
		return marshalBody(resp)
	}
	return w, nil
}

func (s *Server) handleSchedule(ctx context.Context, r *http.Request) (*response, error) {
	var req ScheduleRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	w, err := s.prepareSchedule(req)
	if err != nil {
		return nil, err
	}
	if w.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, w.deadline)
		defer cancel()
	}
	raw, forwarded := routeInputs(ctx)
	resp, err := s.routedCached(ctx, "/v1/schedule", raw, forwarded, w.key, false, w.compute)
	if err == nil && w.degraded {
		s.m.Degraded.Add(1)
	}
	if err == nil && w.budgetFallback {
		s.m.Degraded.Add(1)
		s.m.BudgetRejections.Add(1)
	}
	return resp, err
}

// CompileResponse is the /v1/compile response body: the Stage 1
// decision, the Stage 3 programming, the portable compilation artifact
// (the `rana-sched -export` format) and the plan wire encoding.
type CompileResponse struct {
	TolerableRate        float64         `json:"tolerable_rate"`
	TolerableRetentionNS int64           `json:"tolerable_retention_ns"`
	DividerRatio         uint64          `json:"divider_ratio"`
	EnergyPJ             float64         `json:"energy_pj"`
	Artifact             json.RawMessage `json:"artifact"`
	Plan                 sched.PlanJSON  `json:"plan"`
}

// prepareCompile resolves a CompileRequest into its work.
func (s *Server) prepareCompile(req CompileRequest) (*work, error) {
	net, err := resolveNetwork(req.Model, req.Network)
	if err != nil {
		return nil, err
	}
	strategy, err := resolveSearch(req.Search)
	if err != nil {
		return nil, err
	}
	if err := validateParallelism(req.Parallelism); err != nil {
		return nil, err
	}
	parallelism := req.Parallelism
	if parallelism == 0 {
		parallelism = s.cfg.Parallelism
	}
	w := &work{key: compileKey(net, strategy)}
	w.compute = func(ctx context.Context) ([]byte, error) {
		s.m.computed(search.EffectiveParallelism(parallelism))
		out, err := s.compileFn(ctx, net, strategy, parallelism)
		if err != nil {
			return nil, wrapComputeErr(ctx, err)
		}
		var artifact bytes.Buffer
		if err := out.ExportConfig(&artifact); err != nil {
			return nil, fmt.Errorf("serve: exporting artifact: %w", err)
		}
		return marshalBody(CompileResponse{
			TolerableRate:        out.TolerableRate,
			TolerableRetentionNS: out.TolerableRetention.Nanoseconds(),
			DividerRatio:         out.DividerRatio,
			EnergyPJ:             out.Energy.Total(),
			Artifact:             json.RawMessage(artifact.Bytes()),
			Plan:                 sched.Encode(out.Plan),
		})
	}
	return w, nil
}

func (s *Server) handleCompile(ctx context.Context, r *http.Request) (*response, error) {
	var req CompileRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	w, err := s.prepareCompile(req)
	if err != nil {
		return nil, err
	}
	raw, forwarded := routeInputs(ctx)
	return s.routedCached(ctx, "/v1/compile", raw, forwarded, w.key, false, w.compute)
}

// EnergyJSON is an energy breakdown on the wire (picojoules). Wear is
// omitted when zero so wear-free technologies keep the legacy encoding.
type EnergyJSON struct {
	Computing    float64 `json:"computing_pj"`
	BufferAccess float64 `json:"buffer_access_pj"`
	Refresh      float64 `json:"refresh_pj"`
	OffChip      float64 `json:"offchip_pj"`
	Wear         float64 `json:"wear_pj,omitempty"`
	Total        float64 `json:"total_pj"`
}

// ResilienceJSON reports the error-budget frame an evaluation was
// admitted under: the uniform Stage 1 failure-rate budget, the
// relative-accuracy constraint the per-layer budgets were derived at,
// and the budgets themselves. Only attached when the request engages
// the approximate operating-point axis, so legacy response bodies are
// byte-identical. encoding/json sorts map keys, so the field is
// deterministic on the wire.
type ResilienceJSON struct {
	ErrorBudget  float64            `json:"error_budget"`
	Constraint   float64            `json:"constraint"`
	LayerBudgets map[string]float64 `json:"layer_budgets"`
}

// EvaluateResponse is the /v1/evaluate response body.
type EvaluateResponse struct {
	Design     string          `json:"design"`
	Network    string          `json:"network"`
	Energy     EnergyJSON      `json:"energy"`
	Plan       sched.PlanJSON  `json:"plan"`
	Resilience *ResilienceJSON `json:"resilience,omitempty"`
}

func (s *Server) handleEvaluate(ctx context.Context, r *http.Request) (*response, error) {
	var req EvaluateRequest
	if err := decodeJSON(r, &req); err != nil {
		return nil, err
	}
	d, err := resolveDesign(req.Design)
	if err != nil {
		return nil, err
	}
	net, err := resolveNetwork(req.Model, req.Network)
	if err != nil {
		return nil, err
	}
	// The backend axis of the evaluation matrix. Resolution against the
	// design's specialized configuration rejects unknown backends and
	// over-budget points at admission.
	p := platform.Test()
	d = d.WithBackend(req.Backend, req.OperatingPoint)
	cfg := d.Apply(p.Base)
	_, pts, err := sched.ResolveBackend(cfg, sched.Options{
		Backend: d.Backend, OperatingPoint: d.OperatingPoint,
	})
	if err != nil {
		return nil, badRequest("invalid backend: %v", err)
	}
	normalized := mem.NormalizeName(d.Backend, cfg.BufferTech)
	if err := s.checkBackendAllowed(normalized); err != nil {
		return nil, err
	}
	// Requests on the approximate axis are admitted layer by layer
	// against the calibrated resilience curves, and their responses carry
	// the error-budget frame. A pinned point that breaks a layer's budget
	// is a client error here — evaluate has no degradation ladder; the
	// design names a fixed Table IV configuration.
	var resilience *ResilienceJSON
	if anyFaulty(pts) {
		budgets, berr := training.LayerTolerableRates(net.Name, layerNames(net), admissionConstraint, training.PaperRates)
		if berr != nil {
			return nil, fmt.Errorf("serve: deriving layer budgets: %w", berr)
		}
		if d.OperatingPoint != "" {
			gate := sched.Options{
				Backend: d.Backend, OperatingPoint: d.OperatingPoint,
				LayerBudgets: budgets,
			}
			for _, l := range net.Layers {
				if _, _, lerr := sched.ResolveBackendForLayer(cfg, gate, l.Name); lerr != nil {
					s.m.BudgetRejections.Add(1)
					return nil, badRequest("inadmissible operating point: %v", lerr)
				}
			}
		}
		resilience = &ResilienceJSON{
			ErrorBudget:  retention.TolerableFailureRate,
			Constraint:   admissionConstraint,
			LayerBudgets: budgets,
		}
	}
	key := evaluateKey(d.Name, net, normalized, d.OperatingPoint)
	raw, forwarded := routeInputs(ctx)
	return s.routedCached(ctx, "/v1/evaluate", raw, forwarded, key, false, func(ctx context.Context) ([]byte, error) {
		res, err := p.EvaluateContext(ctx, d, net)
		if err != nil {
			return nil, wrapComputeErr(ctx, err)
		}
		if planFaulty(res.Plan) {
			s.m.FaultInjections.Add(1)
		}
		e := res.Energy()
		return marshalBody(EvaluateResponse{
			Design:  d.Name,
			Network: net.Name,
			Energy: EnergyJSON{
				Computing:    e.Computing,
				BufferAccess: e.BufferAccess,
				Refresh:      e.Refresh,
				OffChip:      e.OffChip,
				Wear:         e.Wear,
				Total:        e.Total(),
			},
			Plan:       sched.Encode(res.Plan),
			Resilience: resilience,
		})
	})
}

// handleHealthz reports liveness; it never touches the worker pool, so
// it answers even when every slot is busy.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{
		"status":    "ok",
		"in_flight": s.m.InFlight.Value(),
		"cached":    s.cache.Len(),
	}
	if s.cfg.Ring != nil {
		var peers []string
		for _, n := range s.cfg.Ring.Nodes() {
			peers = append(peers, n.ID)
		}
		doc["shard_id"] = s.self.ID
		doc["peers"] = peers
	}
	if s.cfg.Store != nil {
		st := s.cfg.Store.Stats()
		doc["store_entries"] = st.Entries
		doc["store_bytes"] = st.FileBytes
	}
	if s.jobs != nil {
		doc["jobs"] = s.jobs.len()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(doc)
}

// handleMetrics serves the expvar document.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, s.vars.String())
}

// OperatingPointJSON is one backend operating point in the catalog.
type OperatingPointJSON struct {
	Name           string  `json:"name"`
	AccessPJ       float64 `json:"access_pj"`
	RefreshPJ      float64 `json:"refresh_pj,omitempty"`
	WearPJ         float64 `json:"wear_pj,omitempty"`
	RetentionScale float64 `json:"retention_scale,omitempty"`
	BitErrorRate   float64 `json:"bit_error_rate,omitempty"`
	LatencyNS      float64 `json:"latency_ns,omitempty"`
}

// BackendJSON is one memory backend in the catalog: the third axis of
// the (network × backend × operating point) evaluation matrix.
type BackendJSON struct {
	Name        string               `json:"name"`
	Description string               `json:"description"`
	Role        string               `json:"role"`
	Refreshes   bool                 `json:"refreshes,omitempty"`
	Points      []OperatingPointJSON `json:"points"`
}

// catalogBackends projects the registry onto the catalog form, in the
// registry's sorted order.
func catalogBackends() []BackendJSON {
	var out []BackendJSON
	for _, name := range mem.Names() {
		bk, _ := mem.Lookup(name)
		b := BackendJSON{
			Name:        bk.Name(),
			Description: bk.Description(),
			Role:        bk.Role().String(),
			Refreshes:   bk.Refreshes(),
		}
		for _, p := range bk.Points() {
			b.Points = append(b.Points, OperatingPointJSON{
				Name:           p.Name,
				AccessPJ:       p.AccessPJ,
				RefreshPJ:      p.RefreshPJ,
				WearPJ:         p.WearPJ,
				RetentionScale: p.RetentionScale,
				BitErrorRate:   p.BitErrorRate,
				LatencyNS:      p.LatencyNS,
			})
		}
		out = append(out, b)
	}
	return out
}

// MappingJSON is one data-mapping policy in the catalog: the row/bank
// placement axis of the search space, with the energy scales its cost
// model applies to the buffer's operating-point table.
type MappingJSON struct {
	Name         string  `json:"name"`
	AccessScale  float64 `json:"access_scale"`
	RefreshScale float64 `json:"refresh_scale"`
}

// catalogMappings projects the registered mapping policies onto the
// catalog form, default first.
func catalogMappings() []MappingJSON {
	var out []MappingJSON
	for _, m := range sched.MappingPolicies() {
		out = append(out, MappingJSON{
			Name:         m.Name,
			AccessScale:  m.AccessScale,
			RefreshScale: m.RefreshScale,
		})
	}
	return out
}

// catalogTraversals advertises the traversal-axis grammar: the default
// spelling, what the "rtc" alias expands to, and the blocked stage-count
// range the spec accepts.
func catalogTraversals() map[string]any {
	var ladder []string
	if axis, err := sched.ParseTraversalSpec("rtc"); err == nil {
		for _, tr := range axis[1:] {
			ladder = append(ladder, tr.String())
		}
	}
	return map[string]any{
		"default":    sched.DefaultTraversalName,
		"rtc_ladder": ladder,
		"blocked_range": map[string]int{
			"min": 2,
			"max": sched.MaxTraversalBlocks,
		},
	}
}

// catalogResilience advertises the admission frame approximate-axis
// requests are gated against: the relative-accuracy constraint, the
// uniform Stage 1 error budget, the failure-rate ladder budgets are
// searched over, and every benchmark's derived per-layer budgets.
func catalogResilience() map[string]any {
	perModel := map[string]map[string]float64{}
	for _, net := range models.Benchmarks() {
		budgets, err := training.LayerTolerableRates(net.Name, layerNames(net), admissionConstraint, training.PaperRates)
		if err != nil {
			continue // a benchmark without a calibrated curve is simply not listed
		}
		perModel[net.Name] = budgets
	}
	return map[string]any{
		"constraint":    admissionConstraint,
		"error_budget":  retention.TolerableFailureRate,
		"ladder":        training.PaperRates,
		"layer_budgets": perModel,
	}
}

// handleCatalog lists what the service can schedule: benchmark models,
// built-in accelerators, Table IV designs, search strategies, the
// memory-backend registry with every operating point, and the
// resilience frame approximate points are admitted under.
func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	var designs []string
	for _, d := range platform.Designs() {
		designs = append(designs, d.Name)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"models":            benchmarkNames(),
		"accelerators":      builtinConfigNames(),
		"designs":           designs,
		"search_strategies": searchStrategyNames(),
		"backends":          catalogBackends(),
		"traversals":        catalogTraversals(),
		"mappings":          catalogMappings(),
		"resilience":        catalogResilience(),
	})
}

// checkBackendAllowed gates a request's backend against the server's
// allowlist. The name arrives normalized (mem.NormalizeName), so the
// default adapter — normalized to "" — always passes: the allowlist
// narrows the matrix without breaking legacy requests.
func (s *Server) checkBackendAllowed(normalized string) error {
	if normalized == "" || s.allowedBackends == nil || s.allowedBackends[normalized] {
		return nil
	}
	return badRequest("backend %q is not enabled on this server", normalized)
}

// marshalBody renders one response body. Bodies are marshaled exactly
// once per computation and then shared byte-for-byte by the cache and
// every deduplicated waiter.
func marshalBody(v any) ([]byte, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("serve: marshaling response: %w", err)
	}
	return append(body, '\n'), nil
}

// wrapComputeErr distinguishes scheduling failures caused by the
// caller's deadline from genuine infeasibility: a canceled computation
// surfaces the context error (mapped to 503/504 by the middleware),
// anything else is a 422 — the request was well formed but cannot be
// scheduled (e.g. no feasible tiling on the given hardware).
func wrapComputeErr(ctx context.Context, err error) error {
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		// A recovered scheduler panic is a server bug (500), never a
		// 422 — surface it unwrapped so the middleware and breaker
		// classify it as a panic.
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return &apiError{status: http.StatusUnprocessableEntity, msg: err.Error()}
}
