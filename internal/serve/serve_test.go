package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sched"
)

// tinyNetJSON is a fast custom network request payload: two small CONV
// layers that schedule in well under a millisecond.
const tinyNetJSON = `{
	"name": "tiny",
	"layers": [
		{"name": "l0", "n": 2, "h": 8, "l": 8, "m": 4, "k": 3, "s": 1, "p": 1},
		{"name": "l1", "n": 4, "h": 8, "l": 8, "m": 4, "k": 1, "s": 1, "p": 0}
	]
}`

// newTestServer returns a started httptest server over a fresh Server.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Shutdown(context.Background()) })
	return s, ts
}

// post sends a JSON body and returns the response.
func post(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readBody drains and closes the response body.
func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestScheduleCustomNetwork(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rana-Cache"); got != "miss" {
		t.Errorf("first request X-Rana-Cache = %q, want miss", got)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("body not a ScheduleResponse: %v\n%s", err, body)
	}
	if sr.Plan.Network != "tiny" || len(sr.Plan.Layers) != 2 {
		t.Errorf("plan = %q with %d layers", sr.Plan.Network, len(sr.Plan.Layers))
	}
	if sr.Accelerator != "test-accelerator" {
		t.Errorf("accelerator = %q", sr.Accelerator)
	}
	if sr.Controller != "Optimized" {
		t.Errorf("controller = %q, want the eDRAM default Optimized", sr.Controller)
	}

	// The same request again is a byte-identical cache hit.
	resp2 := post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`)
	body2 := readBody(t, resp2)
	if got := resp2.Header.Get("X-Rana-Cache"); got != "hit" {
		t.Errorf("second request X-Rana-Cache = %q, want hit", got)
	}
	if !bytes.Equal(body, body2) {
		t.Error("cached response differs from computed response")
	}
}

func TestScheduleBenchmarkModel(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/schedule", `{"model": "AlexNet"}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Plan.Network != "AlexNet" || len(sr.Plan.Layers) != 5 {
		t.Errorf("plan = %q with %d layers", sr.Plan.Network, len(sr.Plan.Layers))
	}
}

func TestScheduleMatchesGoldenEncoding(t *testing.T) {
	// The service's plan encoding must be the golden wire format:
	// compare field-for-field against a direct sched.Encode call.
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/schedule",
		`{"model": "AlexNet", "options": {"refresh_interval_ns": 734000}}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr struct {
		Plan json.RawMessage `json:"plan"`
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	want := goldenAlexNetPlan(t)
	if string(sr.Plan) != want {
		t.Errorf("service plan encoding drifted from sched.Encode:\ngot:  %.200s\nwant: %.200s", sr.Plan, want)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, path, body string
		wantStatus       int
		wantErr          string
	}{
		{"empty", "/v1/schedule", `{}`, 400, `"model" or "network"`},
		{"both", "/v1/schedule", `{"model": "AlexNet", "network": ` + tinyNetJSON + `}`, 400, "not both"},
		{"unknown model", "/v1/schedule", `{"model": "LeNet"}`, 400, "unknown model"},
		{"unknown field", "/v1/schedule", `{"modle": "AlexNet"}`, 400, "invalid request body"},
		{"trailing data", "/v1/schedule", `{"model": "AlexNet"}{"model": "VGG"}`, 400, "trailing data"},
		{"bad layer", "/v1/schedule", `{"network": {"name": "x", "layers": [{"name": "l0", "n": -1, "h": 8, "l": 8, "m": 4, "k": 3, "s": 1}]}}`, 400, "invalid network"},
		{"bad pattern", "/v1/schedule", `{"model": "AlexNet", "options": {"patterns": ["XX"]}}`, 400, "invalid pattern"},
		{"bad controller", "/v1/schedule", `{"model": "AlexNet", "options": {"controller": "magic"}}`, 400, "invalid controller"},
		{"bad accelerator", "/v1/schedule", `{"model": "AlexNet", "accelerator": "tpu"}`, 400, "unknown accelerator"},
		{"bad tiling", "/v1/schedule", `{"model": "AlexNet", "options": {"fixed_tiling": {"tm": 0, "tn": 1, "tr": 1, "tc": 1}}}`, 400, "invalid fixed_tiling"},
		{"bad design", "/v1/evaluate", `{"design": "TPU", "model": "AlexNet"}`, 400, "unknown design"},
		{"no design", "/v1/evaluate", `{"model": "AlexNet"}`, 400, `needs a "design"`},
		{"compile empty", "/v1/compile", `{}`, 400, `"model" or "network"`},
		// A well-formed but unschedulable request: the fixed tiling
		// cannot fit any layer's core constraints.
		{"infeasible", "/v1/schedule", `{"model": "AlexNet", "options": {"fixed_tiling": {"tm": 4096, "tn": 4096, "tr": 64, "tc": 64}}}`, 422, "no feasible tiling"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := post(t, ts.URL+tc.path, tc.body)
			body := readBody(t, resp)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(body, &e); err != nil {
				t.Fatalf("error body not JSON: %s", body)
			}
			if !strings.Contains(e.Error, tc.wantErr) {
				t.Errorf("error %q does not mention %q", e.Error, tc.wantErr)
			}
		})
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/schedule = %d, want 405", resp.StatusCode)
	}
	if resp.Header.Get("Allow") != "POST" {
		t.Errorf("Allow = %q", resp.Header.Get("Allow"))
	}
}

func TestEvaluateDesignPoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/evaluate", `{"design": "RANA*(E-5)", "model": "AlexNet"}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er EvaluateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Design != "RANA*(E-5)" || er.Network != "AlexNet" {
		t.Errorf("evaluated %q on %q", er.Design, er.Network)
	}
	if er.Energy.Total <= 0 {
		t.Error("non-positive total energy")
	}
	sum := er.Energy.Computing + er.Energy.BufferAccess + er.Energy.Refresh + er.Energy.OffChip
	if diff := sum - er.Energy.Total; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("breakdown sums to %g, total says %g", sum, er.Energy.Total)
	}
}

func TestCompileCustomNetwork(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL+"/v1/compile", `{"network": `+tinyNetJSON+`}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var cr CompileResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.TolerableRetentionNS != (734 * time.Microsecond).Nanoseconds() {
		t.Errorf("tolerable retention = %d ns, want 734 µs", cr.TolerableRetentionNS)
	}
	// The embedded artifact is the rana-sched -export format.
	var artifact struct {
		Version int    `json:"version"`
		Network string `json:"network"`
	}
	if err := json.Unmarshal(cr.Artifact, &artifact); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	if artifact.Version != 1 || artifact.Network != "tiny" {
		t.Errorf("artifact = %+v", artifact)
	}
}

func TestHealthzAndCatalog(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
		t.Errorf("healthz = %s (%v)", body, err)
	}

	resp, err = http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	var cat struct {
		Models       []string `json:"models"`
		Accelerators []string `json:"accelerators"`
		Designs      []string `json:"designs"`
	}
	if err := json.Unmarshal(readBody(t, resp), &cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Models) != 4 || len(cat.Designs) != 6 {
		t.Errorf("catalog: %d models, %d designs", len(cat.Models), len(cat.Designs))
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`).Body.Close()
	post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`).Body.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	m := decodeMetrics(t, readBody(t, resp))
	if m["requests"] != 2 || m["cache_misses"] != 1 || m["cache_hits"] != 1 {
		t.Errorf("metrics = %v", m)
	}
}

// decodeMetrics parses the numeric fields of the /metrics document.
func decodeMetrics(t *testing.T, body []byte) map[string]float64 {
	t.Helper()
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	out := make(map[string]float64)
	for k, v := range raw {
		if f, ok := v.(float64); ok {
			out[k] = f
		}
	}
	return out
}

func TestRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{RequestTimeout: 20 * time.Millisecond})
	// A computation that honors cancellation but would otherwise hang.
	s.scheduleFn = func(ctx context.Context, net models.Network, cfg hw.Config, opts sched.Options) (*sched.Plan, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	resp := post(t, ts.URL+"/v1/schedule", `{"model": "AlexNet"}`)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
}

// goldenAlexNetPlan computes the wire encoding of AlexNet under the
// exact options the service defaults to, via a direct library call.
func goldenAlexNetPlan(t *testing.T) string {
	t.Helper()
	plan, err := sched.Schedule(models.AlexNet(), hw.TestAcceleratorEDRAM(), sched.Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.RefreshOptimized{},
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(sched.Encode(plan))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
