package serve

// Request types of the ranad HTTP API and their mapping onto the
// framework's native types. Every request is validated strictly —
// unknown fields are rejected, custom layer shapes go through
// models.Network.Validate, custom accelerators through
// hw.Config.Validate — and then *resolved* into a normalized form: the
// native (Network, Config, Options) triple plus the canonical spec the
// request hash is computed over. Two requests that mean the same thing
// (a benchmark named by "model" vs. the same shapes spelled out layer by
// layer) resolve to the same normalized form and therefore the same
// cache key.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/platform"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sched/search"
)

// maxRequestBytes bounds a request body; the largest legitimate payload
// (a custom network of a few hundred layers plus a config) is a few tens
// of KB.
const maxRequestBytes = 1 << 20

// maxCustomLayers bounds a custom network's layer count: beyond it the
// request is hostile or mistaken, and scheduling cost would scale with
// attacker-controlled input.
const maxCustomLayers = 4096

// LayerSpec is one custom CONV layer shape on the wire.
type LayerSpec struct {
	Name   string `json:"name"`
	Stage  string `json:"stage,omitempty"`
	N      int    `json:"n"`
	H      int    `json:"h"`
	L      int    `json:"l"`
	M      int    `json:"m"`
	K      int    `json:"k"`
	S      int    `json:"s"`
	P      int    `json:"p"`
	Groups int    `json:"groups,omitempty"`
}

// NetworkSpec is a custom network on the wire.
type NetworkSpec struct {
	Name   string      `json:"name"`
	Layers []LayerSpec `json:"layers"`
}

// ConfigSpec is a custom accelerator configuration on the wire.
type ConfigSpec struct {
	Name        string  `json:"name"`
	ArrayM      int     `json:"array_m"`
	ArrayN      int     `json:"array_n"`
	Mapping     string  `json:"mapping,omitempty"` // "output-pixel" (default) or "output-input"
	FrequencyHz float64 `json:"frequency_hz"`
	LocalInput  int     `json:"local_input"`
	LocalOutput int     `json:"local_output"`
	LocalWeight int     `json:"local_weight"`
	BufferWords uint64  `json:"buffer_words"`
	BufferTech  string  `json:"buffer_tech"` // "sram" or "edram"
	BankWords   int     `json:"bank_words"`
}

// TilingSpec pins the tiling parameters on the wire.
type TilingSpec struct {
	Tm int `json:"tm"`
	Tn int `json:"tn"`
	Tr int `json:"tr"`
	Tc int `json:"tc"`
}

// OptionsSpec is sched.Options on the wire. Zero values select the full
// RANA design point's defaults: hybrid OD+WD exploration, the 734 µs
// tolerable interval, the refresh-optimized controller (eDRAM only).
type OptionsSpec struct {
	Patterns          []string    `json:"patterns,omitempty"`
	RefreshIntervalNS int64       `json:"refresh_interval_ns,omitempty"`
	Controller        string      `json:"controller,omitempty"` // "none", "conventional" or "optimized"
	NaturalTiling     bool        `json:"natural_tiling,omitempty"`
	RetentionGuard    float64     `json:"retention_guard,omitempty"`
	FixedTiling       *TilingSpec `json:"fixed_tiling,omitempty"`
	// Search pins the exploration strategy: "exhaustive", "pruned" or
	// "beam". Empty lets the server choose (the pruned default, or the
	// beam rung of the degradation ladder under a tight deadline).
	Search string `json:"search,omitempty"`
	// BeamWidth bounds the beam's per-layer exact evaluations; only
	// valid with search "beam". Zero selects the default width.
	BeamWidth int `json:"beam_width,omitempty"`
	// Parallelism bounds the per-layer search worker pool. Zero selects
	// the server's default (its -parallelism flag, or GOMAXPROCS). Plans
	// are byte-identical at every level, so the field never enters the
	// cache key: requests differing only here share one entry, and the
	// response body does not echo it.
	Parallelism int `json:"parallelism,omitempty"`
	// Backend names a memory-technology backend from the registry (see
	// /v1/catalog's "backends"); empty selects the configuration's
	// default technology adapter.
	Backend string `json:"backend,omitempty"`
	// OperatingPoint pins one of the backend's operating points; empty
	// searches every point within the error budget. Pinning "nominal" is
	// *not* the same as omitting the field on multi-point backends: it
	// collapses the search axis to the nominal corner.
	OperatingPoint string `json:"operating_point,omitempty"`
	// ErrorBudget caps the bit-error rate of admissible operating
	// points; zero selects the paper's tolerable 1e-5 failure rate.
	ErrorBudget float64 `json:"error_budget,omitempty"`
	// Traversal opens the tile-traversal-order search axis
	// (sched.ParseTraversalSpec grammar: "linear", "rtc", "blocked<n>",
	// comma-separated); empty keeps the default linear nest only.
	Traversal string `json:"traversal,omitempty"`
	// Mapping opens the data-mapping search axis (sched.ParseMappingSpec
	// grammar: "row-major", "interleave", "all"); empty keeps row-major
	// placement only.
	Mapping string `json:"mapping,omitempty"`
}

// ScheduleRequest asks for a Stage-2 schedule of one network on one
// accelerator under explicit options.
type ScheduleRequest struct {
	// Model names a benchmark network; Network supplies a custom one.
	// Exactly one must be set.
	Model   string       `json:"model,omitempty"`
	Network *NetworkSpec `json:"network,omitempty"`
	// Accelerator names a built-in configuration ("test", "test-edram",
	// "dadiannao", "eyeriss"); Config supplies a custom one. Defaults to
	// "test-edram".
	Accelerator string       `json:"accelerator,omitempty"`
	Config      *ConfigSpec  `json:"config,omitempty"`
	Options     *OptionsSpec `json:"options,omitempty"`
	// DeadlineMS bounds this request end-to-end in milliseconds (capped
	// by the server's request timeout). A deadline below the server's
	// degrade budget trades schedule quality for latency: the response
	// is a cheap uniform fallback schedule marked "degraded".
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// CompileRequest asks for the full three-stage compilation.
type CompileRequest struct {
	Model   string       `json:"model,omitempty"`
	Network *NetworkSpec `json:"network,omitempty"`
	// Search pins Stage 2's exploration strategy ("exhaustive", "pruned"
	// or "beam"); empty selects the pruned default.
	Search string `json:"search,omitempty"`
	// Parallelism bounds Stage 2's per-layer search worker pool; zero
	// selects the server default. Excluded from the cache key (plans are
	// byte-identical at every level).
	Parallelism int `json:"parallelism,omitempty"`
}

// EvaluateRequest asks for one Table IV design point priced on one
// network, optionally through a non-default memory backend — the
// (network × backend × operating point) evaluation matrix.
type EvaluateRequest struct {
	// Design is a Table IV name, e.g. "RANA*(E-5)".
	Design  string       `json:"design"`
	Model   string       `json:"model,omitempty"`
	Network *NetworkSpec `json:"network,omitempty"`
	// Backend names a memory backend from the registry; empty keeps the
	// design's default technology adapter (the paper's Table IV cell).
	Backend string `json:"backend,omitempty"`
	// OperatingPoint pins one of the backend's points; empty searches
	// every point within the tolerable error budget.
	OperatingPoint string `json:"operating_point,omitempty"`
}

// apiError is a client-visible request failure with an HTTP status.
// retryAfter, when positive, becomes a Retry-After header — the
// contract shed (429) and breaker-open (503) responses use to tell
// well-behaved clients when to come back.
type apiError struct {
	status     int
	msg        string
	retryAfter time.Duration
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) *apiError {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// decodeJSON strictly parses a request body into dst.
func decodeJSON(r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("invalid request body: %v", err)
	}
	// A second document in the body is a malformed request, not traffic
	// to silently ignore.
	if dec.More() {
		return badRequest("invalid request body: trailing data")
	}
	return nil
}

// resolveNetwork maps (model, spec) onto a validated models.Network.
func resolveNetwork(model string, spec *NetworkSpec) (models.Network, error) {
	switch {
	case model != "" && spec != nil:
		return models.Network{}, badRequest(`set "model" or "network", not both`)
	case model != "":
		for _, n := range models.Benchmarks() {
			if n.Name == model {
				return n, nil
			}
		}
		return models.Network{}, badRequest("unknown model %q (want one of %v)", model, benchmarkNames())
	case spec != nil:
		if len(spec.Layers) > maxCustomLayers {
			return models.Network{}, badRequest("custom network has %d layers, max %d", len(spec.Layers), maxCustomLayers)
		}
		net := models.Network{Name: spec.Name}
		for _, l := range spec.Layers {
			net.Layers = append(net.Layers, models.ConvLayer{
				Name: l.Name, Stage: l.Stage,
				N: l.N, H: l.H, L: l.L, M: l.M,
				K: l.K, S: l.S, P: l.P, Groups: l.Groups,
			})
		}
		if net.Name == "" {
			return models.Network{}, badRequest("custom network needs a name")
		}
		if err := net.Validate(); err != nil {
			return models.Network{}, badRequest("invalid network: %v", err)
		}
		return net, nil
	default:
		return models.Network{}, badRequest(`request needs "model" or "network"`)
	}
}

func benchmarkNames() []string {
	var names []string
	for _, n := range models.Benchmarks() {
		names = append(names, n.Name)
	}
	return names
}

// builtinConfigs are the named accelerator configurations the API
// accepts.
func builtinConfigs() map[string]hw.Config {
	return map[string]hw.Config{
		"test":       hw.TestAccelerator(),
		"test-edram": hw.TestAcceleratorEDRAM(),
		"dadiannao":  hw.DaDianNao(),
		"eyeriss":    hw.EyerissLike(),
	}
}

func builtinConfigNames() []string {
	var names []string
	for name := range builtinConfigs() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// resolveConfig maps (accelerator, spec) onto a validated hw.Config.
func resolveConfig(accelerator string, spec *ConfigSpec) (hw.Config, error) {
	switch {
	case accelerator != "" && spec != nil:
		return hw.Config{}, badRequest(`set "accelerator" or "config", not both`)
	case spec != nil:
		var mapping hw.Mapping
		switch spec.Mapping {
		case "", "output-pixel":
			mapping = hw.MapOutputPixel
		case "output-input":
			mapping = hw.MapOutputInput
		default:
			return hw.Config{}, badRequest(`invalid mapping %q (want "output-pixel" or "output-input")`, spec.Mapping)
		}
		var tech energy.BufferTech
		switch spec.BufferTech {
		case "sram":
			tech = energy.SRAM
		case "edram":
			tech = energy.EDRAM
		default:
			return hw.Config{}, badRequest(`invalid buffer_tech %q (want "sram" or "edram")`, spec.BufferTech)
		}
		cfg := hw.Config{
			Name: spec.Name, ArrayM: spec.ArrayM, ArrayN: spec.ArrayN,
			Mapping: mapping, FrequencyHz: spec.FrequencyHz,
			LocalInput: spec.LocalInput, LocalOutput: spec.LocalOutput,
			LocalWeight: spec.LocalWeight, BufferWords: spec.BufferWords,
			BufferTech: tech, BankWords: spec.BankWords,
		}
		if cfg.Name == "" {
			return hw.Config{}, badRequest("custom config needs a name")
		}
		if err := cfg.Validate(); err != nil {
			return hw.Config{}, badRequest("invalid config: %v", err)
		}
		return cfg, nil
	default:
		name := accelerator
		if name == "" {
			name = "test-edram"
		}
		cfg, ok := builtinConfigs()[name]
		if !ok {
			return hw.Config{}, badRequest("unknown accelerator %q (want one of %v)", name, builtinConfigNames())
		}
		return cfg, nil
	}
}

// resolveOptions maps an OptionsSpec onto validated sched.Options for
// the given configuration, applying the RANA defaults for absent fields.
func resolveOptions(spec *OptionsSpec, cfg hw.Config) (sched.Options, error) {
	if spec == nil {
		spec = &OptionsSpec{}
	}
	opts := sched.Options{
		NaturalTiling:  spec.NaturalTiling,
		RetentionGuard: spec.RetentionGuard,
	}
	if len(spec.Patterns) == 0 {
		opts.Patterns = []pattern.Kind{pattern.OD, pattern.WD}
	} else {
		for _, s := range spec.Patterns {
			switch s {
			case "ID":
				opts.Patterns = append(opts.Patterns, pattern.ID)
			case "OD":
				opts.Patterns = append(opts.Patterns, pattern.OD)
			case "WD":
				opts.Patterns = append(opts.Patterns, pattern.WD)
			default:
				return sched.Options{}, badRequest(`invalid pattern %q (want "ID", "OD" or "WD")`, s)
			}
		}
	}
	if spec.RefreshIntervalNS < 0 {
		return sched.Options{}, badRequest("negative refresh_interval_ns %d", spec.RefreshIntervalNS)
	}
	opts.RefreshInterval = time.Duration(spec.RefreshIntervalNS)
	if opts.RefreshInterval == 0 {
		opts.RefreshInterval = retention.TolerableRetentionTime
	}
	controller := spec.Controller
	if controller == "" {
		if cfg.BufferTech == energy.EDRAM {
			controller = "optimized"
		} else {
			controller = "none"
		}
	}
	switch controller {
	case "none":
		opts.Controller = nil
		opts.RefreshInterval = 0
	case "conventional":
		opts.Controller = memctrl.Conventional{}
	case "optimized":
		opts.Controller = memctrl.RefreshOptimized{}
	default:
		return sched.Options{}, badRequest(`invalid controller %q (want "none", "conventional" or "optimized")`, spec.Controller)
	}
	if spec.RetentionGuard < 0 || spec.RetentionGuard > 1 {
		return sched.Options{}, badRequest("retention_guard %g outside [0,1]", spec.RetentionGuard)
	}
	if spec.FixedTiling != nil {
		t := pattern.Tiling{Tm: spec.FixedTiling.Tm, Tn: spec.FixedTiling.Tn,
			Tr: spec.FixedTiling.Tr, Tc: spec.FixedTiling.Tc}
		if err := t.Validate(); err != nil {
			return sched.Options{}, badRequest("invalid fixed_tiling: %v", err)
		}
		opts.FixedTiling = &t
	}
	s, err := resolveSearch(spec.Search)
	if err != nil {
		return sched.Options{}, err
	}
	opts.Search = s
	if spec.BeamWidth != 0 {
		if spec.BeamWidth < 0 {
			return sched.Options{}, badRequest("negative beam_width %d", spec.BeamWidth)
		}
		if opts.Search != search.Beam {
			return sched.Options{}, badRequest(`beam_width requires "search": "beam"`)
		}
		opts.BeamWidth = spec.BeamWidth
	}
	if err := validateParallelism(spec.Parallelism); err != nil {
		return sched.Options{}, err
	}
	opts.Parallelism = spec.Parallelism
	opts.Backend = spec.Backend
	opts.OperatingPoint = spec.OperatingPoint
	opts.ErrorBudget = spec.ErrorBudget
	opts.Traversal = spec.Traversal
	opts.Mapping = spec.Mapping
	// Axis specs are validated eagerly for a precise 400; Validate would
	// catch them too, but wrapped as a generic option error.
	if _, err := sched.ParseTraversalSpec(spec.Traversal); err != nil {
		return sched.Options{}, badRequest("invalid traversal: %v", err)
	}
	if _, err := sched.ParseMappingSpec(spec.Mapping); err != nil {
		return sched.Options{}, badRequest("invalid mapping: %v", err)
	}
	// Full backend resolution up front: an unknown backend, an unknown or
	// over-budget operating point, or a budget excluding every point is a
	// 400 at admission, not a 422 from deep inside the search.
	if _, _, err := sched.ResolveBackend(cfg, opts); err != nil {
		return sched.Options{}, badRequest("invalid options: %v", err)
	}
	if err := opts.Validate(); err != nil {
		return sched.Options{}, badRequest("invalid options: %v", err)
	}
	return opts, nil
}

// validateParallelism gates a request's worker-count knob: zero defers
// to the server default, and the cap bounds goroutine fan-out against
// hostile values (the search engine clamps again, but a clearly absurd
// request deserves a 400, not a silent clamp).
func validateParallelism(p int) error {
	if p < 0 {
		return badRequest("negative parallelism %d", p)
	}
	if p > search.MaxParallelism {
		return badRequest("parallelism %d above the maximum %d", p, search.MaxParallelism)
	}
	return nil
}

// searchStrategyNames lists the strategies the API accepts, in catalog
// order.
func searchStrategyNames() []string {
	var names []string
	for _, s := range search.Strategies() {
		names = append(names, string(s))
	}
	return names
}

// resolveSearch maps a wire strategy name onto search.Strategy. The
// empty string stays empty — "client didn't pin a strategy" — so the
// degradation ladder knows it may substitute the beam rung; callees
// resolve it to the pruned default otherwise.
func resolveSearch(name string) (search.Strategy, error) {
	s := search.Strategy(name)
	if err := s.Validate(); err != nil {
		return "", badRequest("invalid search %q (want one of %v)", name, searchStrategyNames())
	}
	return s, nil
}

// resolveDesign maps a Table IV design name onto the design point.
func resolveDesign(name string) (platform.Design, error) {
	if name == "" {
		return platform.Design{}, badRequest(`request needs a "design"`)
	}
	d, ok := platform.DesignByName(name)
	if !ok {
		var names []string
		for _, d := range platform.Designs() {
			names = append(names, d.Name)
		}
		return platform.Design{}, badRequest("unknown design %q (want one of %v)", name, names)
	}
	return d, nil
}
