package serve

// The shard-routing layer. With a Ring configured, every keyed
// computation first asks who owns the key. A key owned by this node (or
// already satisfiable from the local cache tiers) is served locally;
// anything else is forwarded to its owner byte-for-byte over
// RetryClient, which preserves the overload contract — the owner's 429
// + Retry-After and breaker 503s drive the client's backoff like any
// other caller's.
//
// Forwarding is capped at one hop by the ForwardedHeader marker: a
// node receiving a forwarded request always serves it locally, so two
// nodes with momentarily divergent ring views (a rolling restart with
// different -peers) bounce a key at most once instead of looping.
// And forwarding failure is never request failure: if the owner is
// down, slow, or shedding, the node falls back to computing locally —
// in a ring partition the fleet degrades to N independent ranads, each
// still serving byte-identical plans (the plan is a pure function of
// the key), just without the work partitioning.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"rana/internal/serve/shard"
)

// ForwardedHeader marks a request forwarded by a ring peer (its value
// is the sending node's shard ID). Receivers serve such requests
// locally, never re-forwarding.
const ForwardedHeader = "X-Rana-Forwarded"

// rawBodyKey carries the buffered request body through the handler
// context so the router can forward it byte-for-byte; forwardedKey
// carries the one-hop marker.
type rawBodyKey struct{}
type forwardedKey struct{}

// routedCached is cachedMode behind the shard router: serve key from
// the local cache tiers if possible, otherwise compute locally when
// this node owns key (or no ring is configured, or the request already
// took its one forwarding hop), otherwise forward to the owner. path
// and raw are the endpoint and exact body to replay on the owner.
func (s *Server) routedCached(ctx context.Context, path string, raw []byte, forwarded bool, key string, wait bool, compute func(ctx context.Context) ([]byte, error)) (*response, error) {
	ring := s.cfg.Ring
	if ring == nil {
		return s.cachedMode(ctx, key, wait, compute)
	}
	owner := ring.Owner(key)
	if owner.ID == s.self.ID || forwarded {
		return s.cachedMode(ctx, key, wait, compute)
	}
	// Local tiers first: a previously forwarded (and locally remembered)
	// plan needs no network hop.
	if body, ok := s.cache.Get(key); ok {
		s.m.CacheHits.Add(1)
		return &response{body: body, key: key, source: "hit"}, nil
	}
	if s.cfg.Store != nil {
		if body, ok := s.cfg.Store.Get(key); ok {
			s.m.StoreHits.Add(1)
			s.cache.Add(key, body)
			return &response{body: body, key: key, source: "store"}, nil
		}
	}
	resp, err := s.forward(ctx, owner, path, raw, key)
	if err == nil {
		return resp, nil
	}
	var ae *apiError
	if errors.As(err, &ae) {
		// The owner rejected the request deterministically; mirror it.
		return nil, err
	}
	// The owner is unreachable or overloaded: degrade to local
	// computation rather than failing the request.
	s.m.ForwardFails.Add(1)
	s.cfg.Logf("ranad: forward %s to %s (%s) failed: %v; computing locally", key, owner.ID, owner.URL, err)
	return s.cachedMode(ctx, key, wait, compute)
}

// forward replays the request on the owner node. It returns (resp, nil)
// on success, an *apiError to mirror when the owner answered with a
// deterministic client-side rejection, and any other error — transport
// failure or retry-exhausted overload — as the caller's cue to fall
// back to local computation.
func (s *Server) forward(ctx context.Context, owner shard.Node, path string, raw []byte, key string) (*response, error) {
	s.m.Forwards.Add(1)
	body, status, err := s.cfg.ForwardClient.PostJSON(ctx, owner.URL+path, raw)
	if err != nil {
		return nil, fmt.Errorf("posting to %s: %w", owner.URL, err)
	}
	switch {
	case status == http.StatusOK:
		// The owner's bytes are the canonical plan; remember them locally
		// so repeats (and restarts, via the store) skip the hop.
		s.remember(key, body)
		return &response{body: body, key: key, source: "forward"}, nil
	case status >= 400 && status < 500 && status != http.StatusTooManyRequests:
		// A deterministic rejection (400/404/422): this node would reject
		// identically, so mirror the owner's verdict instead of burning a
		// local computation on a doomed request.
		msg := fmt.Sprintf("owner %s rejected: status %d", owner.ID, status)
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			msg = e.Error
		}
		return nil, &apiError{status: status, msg: msg}
	default:
		return nil, fmt.Errorf("owner %s answered status %d", owner.ID, status)
	}
}

// routeInputs unpacks what api() buffered for the router.
func routeInputs(ctx context.Context) (raw []byte, forwarded bool) {
	raw, _ = ctx.Value(rawBodyKey{}).([]byte)
	forwarded, _ = ctx.Value(forwardedKey{}).(bool)
	return raw, forwarded
}
