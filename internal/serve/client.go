package serve

// RetryClient is the client-side half of the overload contract: ranad
// sheds with 429 + Retry-After and fast-fails with 503 when a breaker
// is open, and this client honors those hints, layering jittered
// exponential backoff under a total attempt/time budget. It is used by
// `rana-serve -selfcheck`, by `rana-sched -server`, and is exported for
// any program that talks to a ranad.

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RetryClient posts JSON to a ranad with retries. The zero value is
// usable; fields tune it.
type RetryClient struct {
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per request (first try included).
	// Defaults to 5.
	MaxAttempts int
	// BaseBackoff seeds the exponential backoff (doubles per retry,
	// jittered to 50–150%). Defaults to 100 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps one sleep. Defaults to 5 s.
	MaxBackoff time.Duration
	// Budget caps the total time spent on one Do call, sleeps included.
	// Defaults to 30 s.
	Budget time.Duration
	// Seed makes the jitter deterministic for tests; 0 seeds from 1.
	Seed int64
	// Header, when non-nil, is added to every attempt of every request.
	// The shard router uses it to mark forwarded requests so rings never
	// loop a key between nodes.
	Header http.Header
	// Logf observes retries; nil discards.
	Logf func(format string, args ...any)

	once sync.Once
	mu   sync.Mutex
	rng  *rand.Rand
}

func (c *RetryClient) init() {
	c.once.Do(func() {
		if c.MaxAttempts <= 0 {
			c.MaxAttempts = 5
		}
		if c.BaseBackoff <= 0 {
			c.BaseBackoff = 100 * time.Millisecond
		}
		if c.MaxBackoff <= 0 {
			c.MaxBackoff = 5 * time.Second
		}
		if c.Budget <= 0 {
			c.Budget = 30 * time.Second
		}
		if c.Logf == nil {
			c.Logf = func(string, ...any) {}
		}
		seed := c.Seed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
	})
}

// retryableStatus reports the statuses worth retrying: shed (429),
// breaker-open/draining (503), and gateway transients (502, 504).
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Do issues method url with body (retried byte-for-byte), returning the
// final response body and status. It retries transport errors and
// retryable statuses until MaxAttempts or Budget runs out; the last
// response (or error) is returned either way, so callers can still
// inspect a final 429.
func (c *RetryClient) Do(ctx context.Context, method, url string, body []byte) ([]byte, int, error) {
	c.init()
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	ctx, cancel := context.WithTimeout(ctx, c.Budget)
	defer cancel()

	var lastBody []byte
	var lastStatus int
	var lastErr error
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, method, url, bytes.NewReader(body))
		if err != nil {
			return nil, 0, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		for k, vs := range c.Header {
			for _, v := range vs {
				req.Header.Add(k, v)
			}
		}
		resp, err := hc.Do(req)
		var retryAfter time.Duration
		if err != nil {
			lastBody, lastStatus, lastErr = nil, 0, err
			if ctx.Err() != nil {
				return nil, 0, err // budget or caller deadline spent
			}
		} else {
			b, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr != nil {
				return nil, resp.StatusCode, rerr
			}
			lastBody, lastStatus, lastErr = b, resp.StatusCode, nil
			if !retryableStatus(resp.StatusCode) {
				return b, resp.StatusCode, nil
			}
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs >= 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		if attempt >= c.MaxAttempts {
			if lastErr != nil {
				return nil, 0, fmt.Errorf("serve: %d attempts: %w", attempt, lastErr)
			}
			return lastBody, lastStatus, nil
		}
		sleep := c.backoff(attempt, retryAfter)
		c.Logf("retry %d/%d in %v (status %d, err %v)", attempt, c.MaxAttempts, sleep, lastStatus, lastErr)
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			if lastErr != nil {
				return nil, 0, lastErr
			}
			return lastBody, lastStatus, nil
		}
	}
}

// backoff picks the next sleep: the server's Retry-After when it is the
// larger hint, otherwise jittered exponential from BaseBackoff.
func (c *RetryClient) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := c.BaseBackoff << (attempt - 1)
	if d > c.MaxBackoff || d <= 0 {
		d = c.MaxBackoff
	}
	c.mu.Lock()
	d = time.Duration((0.5 + c.rng.Float64()) * float64(d))
	c.mu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	if d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	return d
}

// PostJSON posts a JSON body with retries.
func (c *RetryClient) PostJSON(ctx context.Context, url string, body []byte) ([]byte, int, error) {
	return c.Do(ctx, http.MethodPost, url, body)
}

// Get fetches url with retries.
func (c *RetryClient) Get(ctx context.Context, url string) ([]byte, int, error) {
	return c.Do(ctx, http.MethodGet, url, nil)
}
