package serve

import (
	"encoding/json"
	"testing"
)

// TestScheduleBackendOptions covers the backend axis of /v1/schedule:
// a non-default backend schedules and echoes its name on the plan, a
// pinned point rides the same path, and hostile specs are rejected at
// admission with a 400.
func TestScheduleBackendOptions(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp := post(t, ts.URL+"/v1/schedule",
		`{"network": `+tinyNetJSON+`, "options": {"backend": "approx-dram"}}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr ScheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Plan.Backend != "approx-dram" {
		t.Errorf("plan backend = %q, want approx-dram", sr.Plan.Backend)
	}

	resp = post(t, ts.URL+"/v1/schedule",
		`{"network": `+tinyNetJSON+`, "options": {"backend": "approx-dram", "operating_point": "v0.8"}}`)
	body = readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("pinned point: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	for _, l := range sr.Plan.Layers {
		if l.Point != "v0.8" {
			t.Errorf("layer %s op = %q, want v0.8", l.Name, l.Point)
		}
	}

	for name, req := range map[string]string{
		"unknown backend": `{"network": ` + tinyNetJSON + `, "options": {"backend": "nvram"}}`,
		"offchip backend": `{"network": ` + tinyNetJSON + `, "options": {"backend": "ddr3"}}`,
		"unknown point":   `{"network": ` + tinyNetJSON + `, "options": {"backend": "approx-dram", "operating_point": "v0.5"}}`,
		"over budget":     `{"network": ` + tinyNetJSON + `, "options": {"backend": "approx-dram", "operating_point": "v0.7"}}`,
		"bad budget":      `{"network": ` + tinyNetJSON + `, "options": {"error_budget": 2}}`,
	} {
		resp := post(t, ts.URL+"/v1/schedule", req)
		body := readBody(t, resp)
		if resp.StatusCode != 400 {
			t.Errorf("%s: status %d, want 400: %s", name, resp.StatusCode, body)
		}
	}

	// A raised budget clears the uniform admission check, but the point
	// still breaks the per-layer budgets — the error-budget rung serves
	// the nominal corner instead of failing (details in
	// TestScheduleBudgetFallbackRung).
	resp = post(t, ts.URL+"/v1/schedule",
		`{"network": `+tinyNetJSON+`, "options": {"backend": "approx-dram", "operating_point": "v0.7", "error_budget": 0.001}}`)
	body = readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("raised budget: status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if !sr.Degraded {
		t.Error("over-layer-budget pin not degraded to the nominal corner")
	}
}

// TestBackendAllowlist: a configured allowlist narrows the backend
// axis — listed backends and the default adapter pass, everything else
// is a 400 — on both /v1/schedule and /v1/evaluate.
func TestBackendAllowlist(t *testing.T) {
	_, ts := newTestServer(t, Config{AllowedBackends: []string{"approx-dram"}})

	for name, req := range map[string]string{
		"default adapter":  `{"network": ` + tinyNetJSON + `}`,
		"explicit default": `{"network": ` + tinyNetJSON + `, "options": {"backend": "edram"}}`,
		"listed backend":   `{"network": ` + tinyNetJSON + `, "options": {"backend": "approx-dram"}}`,
	} {
		resp := post(t, ts.URL+"/v1/schedule", req)
		if body := readBody(t, resp); resp.StatusCode != 200 {
			t.Errorf("%s: status %d: %s", name, resp.StatusCode, body)
		}
	}

	resp := post(t, ts.URL+"/v1/schedule",
		`{"network": `+tinyNetJSON+`, "options": {"backend": "reram"}}`)
	if body := readBody(t, resp); resp.StatusCode != 400 {
		t.Errorf("unlisted backend: status %d, want 400: %s", resp.StatusCode, body)
	}
	resp = post(t, ts.URL+"/v1/evaluate",
		`{"design": "RANA*(E-5)", "network": `+tinyNetJSON+`, "backend": "reram"}`)
	if body := readBody(t, resp); resp.StatusCode != 400 {
		t.Errorf("unlisted evaluate backend: status %d, want 400: %s", resp.StatusCode, body)
	}
}

// TestScheduleDefaultBackendSharesLegacyBytes: naming the default
// backend explicitly must be a cache hit on the legacy spelling's entry
// — same canonical key, byte-identical body.
func TestScheduleDefaultBackendSharesLegacyBytes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	legacy := readBody(t, post(t, ts.URL+"/v1/schedule", `{"network": `+tinyNetJSON+`}`))
	resp := post(t, ts.URL+"/v1/schedule",
		`{"network": `+tinyNetJSON+`, "options": {"backend": "edram"}}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Rana-Cache"); got != "hit" {
		t.Errorf("explicit default backend X-Rana-Cache = %q, want hit", got)
	}
	if string(legacy) != string(body) {
		t.Error("explicit default backend body differs from the legacy spelling")
	}
}

// TestCatalogListsBackends: the catalog exposes the backend × point
// matrix.
func TestCatalogListsBackends(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	var doc struct {
		Backends []BackendJSON `json:"backends"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	byName := map[string]BackendJSON{}
	for _, b := range doc.Backends {
		byName[b.Name] = b
	}
	for _, want := range []string{"edram", "sram", "approx-dram", "reram", "ddr3"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("catalog missing backend %q", want)
		}
	}
	if got := len(byName["approx-dram"].Points); got != 4 {
		t.Errorf("approx-dram has %d catalog points, want 4", got)
	}
	if byName["ddr3"].Role != "offchip" {
		t.Errorf("ddr3 role = %q", byName["ddr3"].Role)
	}
	if !byName["edram"].Refreshes || byName["sram"].Refreshes {
		t.Error("refresh semantics wrong in catalog")
	}
}

// TestEvaluateBackendMatrix: /v1/evaluate prices a design through a
// non-default backend and keys the cache on the backend axis.
func TestEvaluateBackendMatrix(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	base := readBody(t, post(t, ts.URL+"/v1/evaluate",
		`{"design": "RANA*(E-5)", "network": `+tinyNetJSON+`}`))

	resp := post(t, ts.URL+"/v1/evaluate",
		`{"design": "RANA*(E-5)", "network": `+tinyNetJSON+`, "backend": "reram"}`)
	body := readBody(t, resp)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if string(base) == string(body) {
		t.Error("reram evaluation shares bytes with the default backend")
	}
	var er EvaluateResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Energy.Wear <= 0 {
		t.Errorf("reram evaluation reports wear %g, want > 0", er.Energy.Wear)
	}
	if er.Plan.Backend != "reram" {
		t.Errorf("plan backend = %q", er.Plan.Backend)
	}

	resp = post(t, ts.URL+"/v1/evaluate",
		`{"design": "RANA*(E-5)", "network": `+tinyNetJSON+`, "backend": "nvram"}`)
	if readBody(t, resp); resp.StatusCode != 400 {
		t.Errorf("unknown backend: status %d, want 400", resp.StatusCode)
	}
}
