// Package memctrl implements the two eDRAM refresh controllers the paper
// compares (§IV-D, Table IV "Memory Controller" column):
//
//   - Conventional: every bank is refreshed at the same rate whenever any
//     on-chip data needs retention — the pessimistic baseline whose waste
//     grows with buffer capacity (Fig. 18a).
//   - RefreshOptimized: RANA's controller (Fig. 14) with a programmable
//     clock divider and per-bank refresh flags; only banks holding data
//     whose lifetime reaches the tolerable retention time are refreshed,
//     and unused banks never are (Fig. 18b).
//
// The package provides both the analytic accounting used by the energy
// model (word-refresh counts, the γ of Eq. 14) and a tick-level
// functional model (Divider + Issuer) exercised against the eDRAM buffer
// in tests.
package memctrl

import (
	"fmt"
	"math"
	"time"

	"rana/internal/pattern"
)

// Needs captures which data types of the current layer hold data whose
// buffer lifetime reaches or exceeds the refresh interval — the per-layer
// refresh flags Stage 2 compiles into the layerwise configuration.
type Needs struct {
	Inputs, Outputs, Weights bool
}

// Any reports whether any data type needs refresh.
func (n Needs) Any() bool { return n.Inputs || n.Outputs || n.Weights }

// NeedsFor derives the refresh needs from a layer's data lifetimes and
// the refresh interval: a data type needs refresh iff its lifetime is not
// shorter than the interval ("Data Lifetime < Retention Time" avoids
// refresh, §III-C).
func NeedsFor(lt pattern.Lifetimes, interval time.Duration) Needs {
	return Needs{
		Inputs:  lt.Input >= interval,
		Outputs: lt.Output >= interval,
		Weights: lt.Weight >= interval,
	}
}

// Allocation is the unified buffer system's bank assignment for one layer
// (§IV-D1): whole banks per data type, sized from the pattern's buffer
// storage requirement.
type Allocation struct {
	InputBanks, OutputBanks, WeightBanks int
}

// Total returns the number of allocated banks.
func (a Allocation) Total() int { return a.InputBanks + a.OutputBanks + a.WeightBanks }

// Allocate maps a buffer storage requirement onto whole banks, capping at
// totalBanks (an oversubscribed layer simply fills the buffer; the spill
// traffic is already accounted by the pattern's DDR model).
func Allocate(bs pattern.Storage, bankWords, totalBanks int) Allocation {
	if bankWords <= 0 {
		// Invariant, not input validation: every caller reaches here via
		// hw.Config.Validate (which rejects non-positive bank sizes), so a
		// violation is a programming error in this repo.
		panic("memctrl: non-positive bank size")
	}
	banksFor := func(words uint64) int {
		return int((words + uint64(bankWords) - 1) / uint64(bankWords))
	}
	a := Allocation{
		InputBanks:  banksFor(bs.Inputs),
		OutputBanks: banksFor(bs.Outputs),
		WeightBanks: banksFor(bs.Weights),
	}
	if a.Total() <= totalBanks {
		return a
	}
	// Oversubscribed: shrink proportionally, keeping at least one bank
	// for every data type that demanded storage (the spilled remainder is
	// priced as DDR traffic by the pattern model, but whatever stays
	// on chip still needs refresh accounting).
	demands := []*int{&a.InputBanks, &a.OutputBanks, &a.WeightBanks}
	total := a.Total()
	assigned := 0
	for _, p := range demands {
		if *p == 0 {
			continue
		}
		scaled := *p * totalBanks / total
		if scaled < 1 {
			scaled = 1
		}
		*p = scaled
		assigned += scaled
	}
	// Trim any excess introduced by the ≥1 floors, largest first; with
	// more demanding types than banks, some type ends with none.
	for assigned > totalBanks {
		largest := demands[0]
		for _, p := range demands[1:] {
			if *p > *largest {
				largest = p
			}
		}
		if *largest == 0 {
			break
		}
		*largest--
		assigned--
	}
	return a
}

// Pulses returns how many refresh pulses fire during an execution window
// at the given interval: one pulse per full interval elapsed.
func Pulses(exec, interval time.Duration) uint64 {
	if interval <= 0 {
		// Invariant: schedulers only call Pulses with intervals derived
		// from retention anchors or validated Options; non-positive means
		// a corrupted caller, not bad user input.
		panic("memctrl: non-positive refresh interval")
	}
	if exec <= 0 {
		return 0
	}
	return uint64(exec / interval)
}

// Controller computes how many 16-bit words are refreshed on one refresh
// pulse, given the layer's bank allocation and refresh needs on a buffer
// of totalBanks × bankWords.
type Controller interface {
	// Name identifies the controller in reports ("Normal"/"Optimized",
	// matching Table IV).
	Name() string
	// WordsPerPulse returns the per-pulse refresh word count.
	WordsPerPulse(alloc Allocation, needs Needs, totalBanks, bankWords int) uint64
}

// Conventional refreshes every bank — used or not — whenever any resident
// data needs retention. SRAM designs simply never construct a controller.
type Conventional struct{}

// Name implements Controller.
func (Conventional) Name() string { return "Normal" }

// WordsPerPulse implements Controller: all capacity words if anything
// needs refresh, zero otherwise.
func (Conventional) WordsPerPulse(_ Allocation, needs Needs, totalBanks, bankWords int) uint64 {
	if !needs.Any() {
		return 0
	}
	return uint64(totalBanks) * uint64(bankWords)
}

// RefreshOptimized is RANA's controller: per-bank refresh flags restrict
// refresh to banks allocated to data types that need it.
type RefreshOptimized struct{}

// Name implements Controller.
func (RefreshOptimized) Name() string { return "Optimized" }

// WordsPerPulse implements Controller.
func (RefreshOptimized) WordsPerPulse(alloc Allocation, needs Needs, _, bankWords int) uint64 {
	banks := 0
	if needs.Inputs {
		banks += alloc.InputBanks
	}
	if needs.Outputs {
		banks += alloc.OutputBanks
	}
	if needs.Weights {
		banks += alloc.WeightBanks
	}
	return uint64(banks) * uint64(bankWords)
}

// RefreshWords returns the total γ contribution of one layer: pulses
// during its execution times the controller's per-pulse word count.
func RefreshWords(c Controller, exec, interval time.Duration,
	alloc Allocation, needs Needs, totalBanks, bankWords int) uint64 {
	return Pulses(exec, interval) * c.WordsPerPulse(alloc, needs, totalBanks, bankWords)
}

// --- Tick-level functional model (Fig. 14) ---

// BankRefresher is the buffer-side interface the functional controller
// drives; *edram.Buffer implements it.
type BankRefresher interface {
	RefreshBank(bank int, now time.Duration) uint64
	Banks() int
}

// Divider is the programmable clock divider of Fig. 14: it divides the
// accelerator reference clock down to the refresh pulse period, which
// Stage 3 programs to the tolerable retention time.
type Divider struct {
	refHz float64
	ratio uint64
}

// NewDivider returns a divider for the given reference clock and target
// pulse period. The achieved period is quantized to whole reference
// cycles, never exceeding the requested period (refresh must not arrive
// late).
func NewDivider(refHz float64, period time.Duration) (*Divider, error) {
	if refHz <= 0 {
		return nil, fmt.Errorf("memctrl: non-positive reference clock %g", refHz)
	}
	if period <= 0 {
		return nil, fmt.Errorf("memctrl: non-positive refresh period %v", period)
	}
	ratio := uint64(math.Floor(period.Seconds() * refHz))
	if ratio == 0 {
		return nil, fmt.Errorf("memctrl: period %v shorter than one reference cycle", period)
	}
	return &Divider{refHz: refHz, ratio: ratio}, nil
}

// Ratio returns the division ratio in reference cycles.
func (d *Divider) Ratio() uint64 { return d.ratio }

// Period returns the achieved refresh pulse period.
func (d *Divider) Period() time.Duration {
	return time.Duration(float64(d.ratio) / d.refHz * float64(time.Second))
}

// Issuer is the per-bank refresh issuer array of Fig. 14: at each divider
// pulse it refreshes exactly the banks whose flag is set.
type Issuer struct {
	div     *Divider
	flags   []bool
	issued  uint64
	nextDue time.Duration
}

// NewIssuer returns an issuer over banks flags driven by divider div.
// Initially all flags are clear.
func NewIssuer(div *Divider, banks int) (*Issuer, error) {
	if div == nil {
		return nil, fmt.Errorf("memctrl: nil divider")
	}
	if banks <= 0 {
		return nil, fmt.Errorf("memctrl: non-positive bank count %d", banks)
	}
	return &Issuer{div: div, flags: make([]bool, banks), nextDue: div.Period()}, nil
}

// SetFlags loads a layer's refresh flags ("When the current layer is
// completed, the next layer's refresh flags will be loaded", §IV-D2).
// Its length must match the bank count.
func (is *Issuer) SetFlags(flags []bool) error {
	if len(flags) != len(is.flags) {
		return fmt.Errorf("memctrl: got %d flags for %d banks", len(flags), len(is.flags))
	}
	copy(is.flags, flags)
	return nil
}

// Flags returns a copy of the current refresh flags.
func (is *Issuer) Flags() []bool {
	out := make([]bool, len(is.flags))
	copy(out, is.flags)
	return out
}

// AdvanceTo advances simulated time to now, firing every refresh pulse
// due in between against buf, and returns the number of word-refresh
// operations issued in this call.
func (is *Issuer) AdvanceTo(now time.Duration, buf BankRefresher) uint64 {
	if buf.Banks() != len(is.flags) {
		panic(fmt.Sprintf("memctrl: issuer has %d flags but buffer has %d banks", len(is.flags), buf.Banks()))
	}
	var words uint64
	for is.nextDue <= now {
		for bank, on := range is.flags {
			if on {
				words += buf.RefreshBank(bank, is.nextDue)
			}
		}
		is.nextDue += is.div.Period()
	}
	is.issued += words
	return words
}

// Issued returns the cumulative word-refresh count.
func (is *Issuer) Issued() uint64 { return is.issued }
