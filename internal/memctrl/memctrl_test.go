package memctrl

import (
	"testing"
	"testing/quick"
	"time"

	"rana/internal/edram"
	"rana/internal/pattern"
	"rana/internal/retention"
)

func TestNeedsFor(t *testing.T) {
	lt := pattern.Lifetimes{
		Input:  100 * time.Microsecond,
		Output: 0,
		Weight: 45 * time.Microsecond,
	}
	n := NeedsFor(lt, 45*time.Microsecond)
	if !n.Inputs || n.Outputs || !n.Weights {
		t.Errorf("needs = %+v", n)
	}
	if !n.Any() {
		t.Error("Any should be true")
	}
	n = NeedsFor(lt, 200*time.Microsecond)
	if n.Any() {
		t.Errorf("no lifetime reaches 200µs, needs = %+v", n)
	}
}

func TestAllocate(t *testing.T) {
	bs := pattern.Storage{Inputs: 16384 + 1, Outputs: 16384, Weights: 1}
	a := Allocate(bs, 16384, 100)
	if a.InputBanks != 2 || a.OutputBanks != 1 || a.WeightBanks != 1 {
		t.Errorf("alloc = %+v", a)
	}
	if a.Total() != 4 {
		t.Errorf("total = %d", a.Total())
	}
	// Oversubscription caps at the bank budget.
	big := pattern.Storage{Inputs: 16384 * 10, Outputs: 16384 * 10, Weights: 16384 * 10}
	a = Allocate(big, 16384, 12)
	if a.Total() > 12 {
		t.Errorf("oversubscribed alloc = %+v totals %d banks", a, a.Total())
	}
	// Zero storage gets zero banks.
	if z := Allocate(pattern.Storage{}, 16384, 4); z.Total() != 0 {
		t.Errorf("empty alloc = %+v", z)
	}
}

func TestAllocatePanicsOnBadBank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Allocate(pattern.Storage{}, 0, 4)
}

func TestPulses(t *testing.T) {
	if Pulses(0, 45*time.Microsecond) != 0 {
		t.Error("zero exec should have zero pulses")
	}
	if got := Pulses(100*time.Microsecond, 45*time.Microsecond); got != 2 {
		t.Errorf("pulses = %d, want 2", got)
	}
	if got := Pulses(45*time.Microsecond, 45*time.Microsecond); got != 1 {
		t.Errorf("exact multiple pulses = %d, want 1", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-positive interval should panic")
		}
	}()
	Pulses(time.Second, 0)
}

func TestConventionalController(t *testing.T) {
	c := Conventional{}
	if c.Name() != "Normal" {
		t.Error("name")
	}
	alloc := Allocation{InputBanks: 1, OutputBanks: 1, WeightBanks: 1}
	// Any need refreshes the ENTIRE buffer — used or not (Fig. 18a).
	if got := c.WordsPerPulse(alloc, Needs{Inputs: true}, 46, 16384); got != 46*16384 {
		t.Errorf("conventional words = %d", got)
	}
	if got := c.WordsPerPulse(alloc, Needs{}, 46, 16384); got != 0 {
		t.Errorf("no needs should refresh nothing, got %d", got)
	}
}

func TestRefreshOptimizedController(t *testing.T) {
	c := RefreshOptimized{}
	if c.Name() != "Optimized" {
		t.Error("name")
	}
	alloc := Allocation{InputBanks: 3, OutputBanks: 5, WeightBanks: 2}
	// Only flagged data types' banks refresh; unused banks never.
	if got := c.WordsPerPulse(alloc, Needs{Inputs: true, Weights: true}, 46, 16384); got != 5*16384 {
		t.Errorf("optimized words = %d, want %d", got, 5*16384)
	}
	if got := c.WordsPerPulse(alloc, Needs{}, 46, 16384); got != 0 {
		t.Errorf("idle words = %d", got)
	}
}

// TestOptimizedNeverExceedsConventional is the Fig. 18b property: the
// refresh-optimized controller never refreshes more than the conventional
// one for the same allocation and needs.
func TestOptimizedNeverExceedsConventional(t *testing.T) {
	f := func(ib, ob, wb uint8, ni, no, nw bool, banks uint8) bool {
		total := int(banks%64) + 1
		alloc := Allocate(pattern.Storage{
			Inputs:  uint64(ib) * 16384,
			Outputs: uint64(ob) * 16384,
			Weights: uint64(wb) * 16384,
		}, 16384, total)
		needs := Needs{Inputs: ni, Outputs: no, Weights: nw}
		opt := RefreshOptimized{}.WordsPerPulse(alloc, needs, total, 16384)
		conv := Conventional{}.WordsPerPulse(alloc, needs, total, 16384)
		return opt <= conv
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRefreshWords(t *testing.T) {
	alloc := Allocation{InputBanks: 2}
	needs := Needs{Inputs: true}
	got := RefreshWords(RefreshOptimized{}, 90*time.Microsecond, 45*time.Microsecond, alloc, needs, 46, 16384)
	if got != 2*2*16384 {
		t.Errorf("refresh words = %d, want %d", got, 2*2*16384)
	}
}

func TestDivider(t *testing.T) {
	d, err := NewDivider(200e6, 45*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Ratio() != 9000 {
		t.Errorf("ratio = %d, want 9000 (45µs at 200MHz)", d.Ratio())
	}
	if d.Period() != 45*time.Microsecond {
		t.Errorf("period = %v", d.Period())
	}
	// Quantization never exceeds the request.
	d, err = NewDivider(200e6, 734*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if d.Period() > 734*time.Microsecond {
		t.Errorf("achieved period %v exceeds request", d.Period())
	}
	for _, bad := range []struct {
		hz float64
		p  time.Duration
	}{{0, time.Second}, {1e6, 0}, {1e3, time.Nanosecond}} {
		if _, err := NewDivider(bad.hz, bad.p); err == nil {
			t.Errorf("NewDivider(%g, %v) should fail", bad.hz, bad.p)
		}
	}
}

func TestIssuerAgainstEDRAM(t *testing.T) {
	buf, err := edram.New(4, 128, retention.Typical(), 9)
	if err != nil {
		t.Fatal(err)
	}
	div, err := NewDivider(200e6, 45*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	is, err := NewIssuer(div, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := is.SetFlags([]bool{true, false, true, false}); err != nil {
		t.Fatal(err)
	}
	// Advance 10 pulses: 2 flagged banks × 128 words × 10 pulses.
	words := is.AdvanceTo(450*time.Microsecond, buf)
	if words != 2*128*10 {
		t.Errorf("issued = %d, want %d", words, 2*128*10)
	}
	if is.Issued() != words {
		t.Errorf("Issued() = %d", is.Issued())
	}
	// Analytic accounting agrees with the tick-level model.
	alloc := Allocation{InputBanks: 1, OutputBanks: 0, WeightBanks: 1}
	needs := Needs{Inputs: true, Weights: true}
	analytic := RefreshWords(RefreshOptimized{}, 450*time.Microsecond, 45*time.Microsecond, alloc, needs, 4, 128)
	if analytic != words {
		t.Errorf("analytic %d != tick-level %d", analytic, words)
	}
}

func TestIssuerValidation(t *testing.T) {
	div, _ := NewDivider(1e6, time.Millisecond)
	if _, err := NewIssuer(nil, 4); err == nil {
		t.Error("nil divider should fail")
	}
	if _, err := NewIssuer(div, 0); err == nil {
		t.Error("zero banks should fail")
	}
	is, _ := NewIssuer(div, 4)
	if err := is.SetFlags([]bool{true}); err == nil {
		t.Error("flag length mismatch should fail")
	}
	got := is.Flags()
	if len(got) != 4 {
		t.Errorf("flags len = %d", len(got))
	}
	got[0] = true
	if is.Flags()[0] {
		t.Error("Flags must return a copy")
	}
}

func TestIssuerFlagReload(t *testing.T) {
	// §IV-D2: next layer's flags load when the current layer completes.
	buf, _ := edram.New(2, 64, retention.Typical(), 1)
	div, _ := NewDivider(200e6, 45*time.Microsecond)
	is, _ := NewIssuer(div, 2)
	_ = is.SetFlags([]bool{true, true})
	w1 := is.AdvanceTo(90*time.Microsecond, buf) // 2 pulses × 2 banks
	_ = is.SetFlags([]bool{false, false})
	w2 := is.AdvanceTo(900*time.Microsecond, buf) // flags off: nothing
	if w1 != 2*2*64 || w2 != 0 {
		t.Errorf("w1=%d w2=%d", w1, w2)
	}
}

func TestDifferentialRefreshWords(t *testing.T) {
	alloc := Allocation{InputBanks: 2, OutputBanks: 3, WeightBanks: 1}
	lt := pattern.Lifetimes{
		Input:  100 * time.Microsecond, // beats 734µs: refresh-free there
		Output: 100 * time.Microsecond,
		Weight: 5 * time.Millisecond, // long-lived: refreshed everywhere
	}
	exec := 2 * time.Millisecond
	// Uniform 734µs: only weights refresh: floor(2000/734)=2 pulses × 1 bank.
	uni := DifferentialRefreshWords(exec, Uniform(734*time.Microsecond), alloc, lt, 100)
	if uni != 2*1*100 {
		t.Errorf("uniform = %d, want 200", uni)
	}
	// Differential: weights at the conservative 45µs, activations at 734µs.
	diff := DifferentialRefreshWords(exec,
		Intervals{Inputs: 734 * time.Microsecond, Outputs: 734 * time.Microsecond, Weights: 45 * time.Microsecond},
		alloc, lt, 100)
	want := Pulses(exec, 45*time.Microsecond) * 1 * 100
	if diff != want {
		t.Errorf("differential = %d, want %d", diff, want)
	}
	if diff <= uni {
		t.Error("conservative weight protection must cost more refresh")
	}
	// Zero interval disables refresh for a type entirely.
	none := DifferentialRefreshWords(exec, Intervals{}, alloc, lt, 100)
	if none != 0 {
		t.Errorf("zero intervals = %d", none)
	}
}
