package memctrl

// Differential refresh is an extension beyond the paper: the paper's
// controller (Fig. 14) runs ONE programmable divider, so every flagged
// bank refreshes at the same tolerable retention time derived from one
// network-wide failure-rate decision. But data types differ in
// sensitivity — a corrupted weight perturbs every output it touches while
// a corrupted activation perturbs one — so a controller with per-type
// dividers can keep weights at a conservative interval while activations
// run at the trained tolerance. This file provides the analytic
// accounting for that design point; BenchmarkAblationDifferential and the
// "ext1" experiment quantify what it costs or buys.

import (
	"time"

	"rana/internal/pattern"
)

// Intervals are per-data-type refresh periods for a differential
// controller. A zero interval means that data type is never refreshed
// (it must then rely on lifetime < retention).
type Intervals struct {
	Inputs, Outputs, Weights time.Duration
}

// Uniform returns the paper's single-rate programming.
func Uniform(rt time.Duration) Intervals {
	return Intervals{Inputs: rt, Outputs: rt, Weights: rt}
}

// DifferentialRefreshWords returns the total word-refresh count of one
// layer under a per-type-interval controller: each data type's banks
// refresh on their own divider whenever that type needs retention (its
// lifetime reaches its interval).
func DifferentialRefreshWords(exec time.Duration, iv Intervals,
	alloc Allocation, lifetimes pattern.Lifetimes, bankWords int) uint64 {
	var words uint64
	type entry struct {
		interval time.Duration
		lifetime time.Duration
		banks    int
	}
	for _, e := range []entry{
		{iv.Inputs, lifetimes.Input, alloc.InputBanks},
		{iv.Outputs, lifetimes.Output, alloc.OutputBanks},
		{iv.Weights, lifetimes.Weight, alloc.WeightBanks},
	} {
		if e.interval <= 0 || e.lifetime < e.interval {
			continue // refresh-free: lifetime beats the interval
		}
		words += Pulses(exec, e.interval) * uint64(e.banks) * uint64(bankWords)
	}
	return words
}
