package sched

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched/search"
)

// TestMemoOnOffPlansIdentical is the satellite equality check: compiling
// with the layer-shape memo enabled must produce wire bytes identical to
// compiling with it disabled, on every zoo network, while actually
// hitting on the shape-heavy models.
func TestMemoOnOffPlansIdentical(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		t.Run(net.Name, func(t *testing.T) {
			off := ranaOpts()
			off.DisableMemo = true
			on := ranaOpts()

			ctx := context.Background()
			pOff, sOff, err := ExploreNetworkContext(ctx, net, cfg, off)
			if err != nil {
				t.Fatal(err)
			}
			pOn, sOn, err := ExploreNetworkContext(ctx, net, cfg, on)
			if err != nil {
				t.Fatal(err)
			}
			offJSON, err := json.Marshal(Encode(pOff))
			if err != nil {
				t.Fatal(err)
			}
			onJSON, err := json.Marshal(Encode(pOn))
			if err != nil {
				t.Fatal(err)
			}
			if string(offJSON) != string(onJSON) {
				t.Fatalf("memoized plan diverged from un-memoized plan:\n%.160s\nvs\n%.160s", onJSON, offJSON)
			}
			if sOff.MemoHits != 0 || sOff.MemoMisses != 0 {
				t.Fatalf("DisableMemo still counted memo traffic: %+v", sOff)
			}
			if sOn.MemoHits+sOn.MemoMisses != len(net.Layers) {
				t.Fatalf("memo accounting %d hits + %d misses != %d layers", sOn.MemoHits, sOn.MemoMisses, len(net.Layers))
			}
			if net.Name == "ResNet" && sOn.MemoHits == 0 {
				t.Fatal("ResNet repeats shapes but the memo never hit")
			}
		})
	}
}

// TestMemoSharedAcrossCompiles: an explicit Memo carries results from one
// compile into the next — the second compile of the same network is all
// hits, with identical plan bytes.
func TestMemoSharedAcrossCompiles(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	net := models.ResNet()
	opts := ranaOpts()
	opts.Memo = NewMemo(0)

	ctx := context.Background()
	p1, s1, err := ExploreNetworkContext(ctx, net, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	p2, s2, err := ExploreNetworkContext(ctx, net, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s2.MemoHits != len(net.Layers) || s2.MemoMisses != 0 {
		t.Fatalf("second compile: %d hits, %d misses, want all %d layers hit", s2.MemoHits, s2.MemoMisses, len(net.Layers))
	}
	if s1.MemoMisses == 0 {
		t.Fatalf("first compile reported no misses: %+v", s1)
	}
	j1, _ := json.Marshal(Encode(p1))
	j2, _ := json.Marshal(Encode(p2))
	if string(j1) != string(j2) {
		t.Fatal("shared-memo recompile changed plan bytes")
	}
	ms := opts.Memo.Stats()
	if ms.Hits == 0 || ms.Misses == 0 || ms.Entries == 0 {
		t.Fatalf("memo stats %+v missing traffic", ms)
	}
}

// memoFixture returns a layer/config/options triple for direct explore
// calls.
func memoFixture(t *testing.T) (models.ConvLayer, hw.Config, Options) {
	t.Helper()
	l, ok := models.AlexNet().Layer("conv3")
	if !ok {
		t.Fatal("missing fixture layer")
	}
	return l, hw.TestAcceleratorEDRAM(), ranaOpts()
}

// TestMemoDedupsConcurrentExplores: same-shaped layers racing through one
// memo compute exactly once; every caller gets a plan carrying its own
// layer identity.
func TestMemoDedupsConcurrentExplores(t *testing.T) {
	l, cfg, opts := memoFixture(t)
	m := NewMemo(0)
	var computes atomic.Int32
	const callers = 16
	var wg sync.WaitGroup
	plans := make([]LayerPlan, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			li := l
			li.Name = "alias"
			// As in ExploreNetworkContext, the compute closure explores
			// exactly the layer handed to the memo.
			lp, _, _, err := m.explore(li, cfg, opts, func() (LayerPlan, search.Stats, error) {
				computes.Add(1)
				return exploreLayer(li, cfg, opts)
			})
			if err != nil {
				t.Error(err)
				return
			}
			plans[i] = lp
		}(i)
	}
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	for i, lp := range plans {
		if lp.Analysis.Layer.Name != "alias" {
			t.Fatalf("caller %d got layer identity %q, want patched alias", i, lp.Analysis.Layer.Name)
		}
	}
}

// TestMemoErrorsNeverCached: a failing compute must not poison the key —
// the next caller recomputes and can succeed.
func TestMemoErrorsNeverCached(t *testing.T) {
	l, cfg, opts := memoFixture(t)
	m := NewMemo(0)
	boom := errors.New("transient")
	_, _, hit, err := m.explore(l, cfg, opts, func() (LayerPlan, search.Stats, error) {
		return LayerPlan{}, search.Stats{}, boom
	})
	if !errors.Is(err, boom) || hit {
		t.Fatalf("explore = hit=%v err=%v, want miss with the compute error", hit, err)
	}
	if ms := m.Stats(); ms.Entries != 0 {
		t.Fatalf("failed compute left %d entries", ms.Entries)
	}
	lp, _, hit, err := m.explore(l, cfg, opts, func() (LayerPlan, search.Stats, error) {
		return exploreLayer(l, cfg, opts)
	})
	if err != nil || hit {
		t.Fatalf("recompute after failure: hit=%v err=%v", hit, err)
	}
	if lp.Analysis.Layer.Name != l.Name {
		t.Fatal("recompute returned wrong layer")
	}
}

// TestMemoCapacityFullComputesWithoutRecording: a saturated table
// degrades to a pass-through — no eviction, no new entries, correct
// results.
func TestMemoCapacityFullComputesWithoutRecording(t *testing.T) {
	net := models.AlexNet()
	cfg := hw.TestAcceleratorEDRAM()
	opts := ranaOpts()
	m := NewMemo(1)
	for i, l := range net.Layers {
		lp, _, _, err := m.explore(l, cfg, opts, func() (LayerPlan, search.Stats, error) {
			return exploreLayer(l, cfg, opts)
		})
		if err != nil {
			t.Fatalf("layer %d: %v", i, err)
		}
		if lp.Analysis.Layer.Name != l.Name {
			t.Fatalf("layer %d: wrong identity %q", i, lp.Analysis.Layer.Name)
		}
	}
	if ms := m.Stats(); ms.Entries != 1 {
		t.Fatalf("capacity-1 memo holds %d entries", ms.Entries)
	}
}

// TestMemoNilReceiverComputes: a nil memo is a plain compute call.
func TestMemoNilReceiverComputes(t *testing.T) {
	l, cfg, opts := memoFixture(t)
	var m *Memo
	lp, _, hit, err := m.explore(l, cfg, opts, func() (LayerPlan, search.Stats, error) {
		return exploreLayer(l, cfg, opts)
	})
	if err != nil || hit {
		t.Fatalf("nil memo: hit=%v err=%v", hit, err)
	}
	if lp.Analysis.Layer.Name != l.Name {
		t.Fatal("nil memo returned wrong layer")
	}
}

// TestMemoSignatureSeparatesPlanRelevantOptions: options that change plan
// bytes must key separately; throughput knobs must collapse.
func TestMemoSignatureSeparatesPlanRelevantOptions(t *testing.T) {
	a := ranaOpts()
	b := ranaOpts()
	b.Parallelism = 7
	b.DisableMemo = true
	if a.signature() != b.signature() {
		t.Fatal("throughput knobs leaked into the memo signature")
	}
	c := ranaOpts()
	c.Search = search.Beam
	if a.signature() == c.signature() {
		t.Fatal("search strategy missing from the memo signature")
	}
	d := ranaOpts()
	d.NaturalTiling = true
	if a.signature() == d.signature() {
		t.Fatal("natural tiling missing from the memo signature")
	}
}

// TestMemoKeyCoversAllFields is the tripwire for keyWithSig's injective
// encoding: the digest serializes every semantic field of
// models.ConvLayer and hw.Config by hand, so adding a field to either
// struct without extending the encoding would silently alias distinct
// problems. Bump the counts here only together with keyWithSig.
func TestMemoKeyCoversAllFields(t *testing.T) {
	if got, want := reflect.TypeOf(models.ConvLayer{}).NumField(), 10; got != want {
		t.Errorf("models.ConvLayer has %d fields, keyWithSig encodes for %d — extend the digest encoding", got, want)
	}
	if got, want := reflect.TypeOf(hw.Config{}).NumField(), 11; got != want {
		t.Errorf("hw.Config has %d fields, keyWithSig encodes for %d — extend the digest encoding", got, want)
	}
}
