package sched

// The traversal-order and data-mapping search axes.
//
// Traversal (RTC, Refresh Triggered Computation): execution *order* is a
// scheduling decision. A blocked traversal (pattern.Traversal) stages
// the 2nd-level loop so data is consumed before its retention deadline
// instead of refreshed — shrinking lifetimes at the cost of re-staging
// DDR traffic, a trade the Eq. 14 model prices directly.
//
// Mapping (PENDRAM): bank/row data placement is a scheduling decision.
// A MappingPolicy scales the buffer's per-access and per-refresh-word
// energies — an interleaved row mapping spreads hot tiles across rows,
// cutting row-activation cost per access, but scatters live words over
// more rows so each refresh pass sweeps more of the array.
//
// Both axes default to the historical behavior (linear nest, row-major
// placement), and both spec grammars always put the default at axis
// index 0: combined with the search tie-break (earlier axis index wins
// exact ties), enabling an axis can only change a plan when the new
// cell strictly wins — default-axis plans stay byte-identical.

import (
	"fmt"
	"strconv"
	"strings"

	"rana/internal/energy"
	"rana/internal/pattern"
)

// MaxTraversalBlocks bounds the blocked-traversal stage count the spec
// grammar accepts. The 2nd-level loop extents of real layers are at most
// a few thousand; beyond that the per-stage spans collapse to single
// iterations and the axis only duplicates work.
const MaxTraversalBlocks = 64

// DefaultTraversalName is the canonical spelling of the default
// traversal axis value (the unmodified Fig. 10 nest).
const DefaultTraversalName = "linear"

// DefaultMappingName is the canonical spelling of the default data
// mapping (contiguous row-major placement — the historical behavior).
const DefaultMappingName = "row-major"

// rtcLadder is what the "rtc" traversal alias expands to: a small
// geometric ladder of stage counts, enough for the search to find the
// deadline-crossing block size without pricing every count.
var rtcLadder = []pattern.Traversal{{Blocks: 2}, {Blocks: 4}, {Blocks: 8}}

// MappingPolicy is one bank/row data-mapping policy: a named pair of
// energy scale factors applied to the buffer's operating-point table.
// AccessScale multiplies the per-access energy (row-activation cost per
// buffer access under this placement); RefreshScale multiplies the
// per-word refresh energy (how many rows a refresh pass must sweep per
// live word). The scales only reshape *buffer* pricing — MAC and DDR
// energies are placement-independent.
type MappingPolicy struct {
	Name         string
	AccessScale  float64
	RefreshScale float64
}

// Apply derives the operating-point energy table under this mapping.
// The identity policy returns the table untouched — no float multiply —
// so row-major pricing is bit-identical to the unmapped path.
func (m MappingPolicy) Apply(t energy.Table) energy.Table {
	if m.AccessScale == 1 && m.RefreshScale == 1 {
		return t
	}
	t.AccessPJ *= m.AccessScale
	t.RefreshPJ *= m.RefreshScale
	return t
}

// IsDefault reports whether the policy is the row-major identity.
func (m MappingPolicy) IsDefault() bool { return m.Name == DefaultMappingName }

// The registered mapping policies. RowMajorMapping is the identity —
// contiguous placement, the cost model every energy constant was
// calibrated against. InterleaveMapping is the PENDRAM-style
// row-interleaved placement: consecutive tiles land in different
// rows/banks, so streaming accesses reopen rows less often (7% cheaper
// per access) while live data spreads across 12% more refresh-swept
// rows.
var (
	RowMajorMapping   = MappingPolicy{Name: DefaultMappingName, AccessScale: 1, RefreshScale: 1}
	InterleaveMapping = MappingPolicy{Name: "interleave", AccessScale: 0.93, RefreshScale: 1.12}
)

// mappingPolicies lists every registered policy, default first.
var mappingPolicies = []MappingPolicy{RowMajorMapping, InterleaveMapping}

// MappingPolicies returns the registered policies in canonical order
// (default first) — the serving catalog's mapping rows.
func MappingPolicies() []MappingPolicy {
	out := make([]MappingPolicy, len(mappingPolicies))
	copy(out, mappingPolicies)
	return out
}

// MappingByName resolves a policy by canonical name; the empty name is
// the default policy. External checkers (verify.CheckPlan) use it to
// re-derive a plan's mapping-scaled pricing table.
func MappingByName(name string) (MappingPolicy, bool) {
	if name == "" {
		return RowMajorMapping, true
	}
	for _, m := range mappingPolicies {
		if m.Name == name {
			return m, true
		}
	}
	return MappingPolicy{}, false
}

// ParseTraversalSpec parses a traversal-axis spec into the traversal
// values the search explores, always with the linear default at index 0.
//
// Grammar (comma-separated, duplicates collapse):
//
//	spec  ::= "" | item ("," item)*
//	item  ::= "linear" | "rtc" | "blocked" N      (2 ≤ N ≤ 64)
//
// "" and "linear" select the default-only axis (legacy behavior);
// "blockedN" adds one RTC stage count next to linear; "rtc" expands to
// the blocked ladder {2, 4, 8}.
func ParseTraversalSpec(spec string) ([]pattern.Traversal, error) {
	axis := []pattern.Traversal{pattern.Linear}
	if spec == "" {
		return axis, nil
	}
	seen := map[pattern.Traversal]bool{pattern.Linear: true}
	add := func(tr pattern.Traversal) {
		if !seen[tr] {
			seen[tr] = true
			axis = append(axis, tr)
		}
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		switch {
		case item == DefaultTraversalName:
			// Always present at index 0.
		case item == "rtc":
			for _, tr := range rtcLadder {
				add(tr)
			}
		case strings.HasPrefix(item, "blocked"):
			n, err := strconv.Atoi(item[len("blocked"):])
			if err != nil || n < 2 || n > MaxTraversalBlocks {
				return nil, fmt.Errorf("sched: traversal %q: blocked stage count must be an integer in [2, %d]", item, MaxTraversalBlocks)
			}
			add(pattern.Traversal{Blocks: n})
		default:
			return nil, fmt.Errorf("sched: unknown traversal %q (want %q, \"rtc\" or \"blocked<n>\")", item, DefaultTraversalName)
		}
	}
	return axis, nil
}

// ParseMappingSpec parses a mapping-axis spec into the policies the
// search explores, always with the row-major default at index 0.
//
// Grammar (comma-separated, duplicates collapse):
//
//	spec ::= "" | item ("," item)*
//	item ::= "row-major" | "interleave" | "all"
//
// "" and "row-major" select the default-only axis; "all" expands to
// every registered policy.
func ParseMappingSpec(spec string) ([]MappingPolicy, error) {
	axis := []MappingPolicy{RowMajorMapping}
	if spec == "" {
		return axis, nil
	}
	seen := map[string]bool{DefaultMappingName: true}
	add := func(m MappingPolicy) {
		if !seen[m.Name] {
			seen[m.Name] = true
			axis = append(axis, m)
		}
	}
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "all" {
			for _, m := range mappingPolicies {
				add(m)
			}
			continue
		}
		m, ok := MappingByName(item)
		if !ok || item == "" {
			return nil, fmt.Errorf("sched: unknown mapping policy %q (want %q, \"interleave\" or \"all\")", item, DefaultMappingName)
		}
		add(m)
	}
	return axis, nil
}

// CanonicalTraversalSpec reduces a traversal spec to its canonical
// spelling: the parsed axis minus the implicit leading default, comma-
// joined — the empty string when the axis is default-only. Equivalent
// spellings ("", "linear", "linear,linear") collapse onto one form, so
// cache keys and memo signatures stay byte-identical for legacy
// requests.
func CanonicalTraversalSpec(spec string) (string, error) {
	axis, err := ParseTraversalSpec(spec)
	if err != nil {
		return "", err
	}
	parts := make([]string, 0, len(axis)-1)
	for _, tr := range axis[1:] {
		parts = append(parts, tr.String())
	}
	return strings.Join(parts, ","), nil
}

// CanonicalMappingSpec is CanonicalTraversalSpec for the mapping axis.
func CanonicalMappingSpec(spec string) (string, error) {
	axis, err := ParseMappingSpec(spec)
	if err != nil {
		return "", err
	}
	parts := make([]string, 0, len(axis)-1)
	for _, m := range axis[1:] {
		parts = append(parts, m.Name)
	}
	return strings.Join(parts, ","), nil
}

// traversalName is the per-layer plan spelling of a chosen traversal:
// empty for the default (so legacy plans encode byte-identically),
// canonical otherwise.
func traversalName(tr pattern.Traversal) string {
	if tr.IsLinear() {
		return ""
	}
	return tr.String()
}

// mappingName is traversalName for mapping policies.
func mappingName(m MappingPolicy) string {
	if m.IsDefault() {
		return ""
	}
	return m.Name
}

// mappingTables derives the per-(mapping, point) pricing tables, index-
// aligned with the search cell as tables[map*len(points)+point]. The
// bound and the exact evaluator price through the same derived table,
// which is what keeps the admissibility argument intact per cell.
func mappingTables(points []energy.Table, maps []MappingPolicy) []energy.Table {
	return appendMappingTables(make([]energy.Table, 0, len(points)*len(maps)), points, maps)
}

// appendMappingTables is mappingTables into a reused scratch slice.
func appendMappingTables(dst []energy.Table, points []energy.Table, maps []MappingPolicy) []energy.Table {
	for _, m := range maps {
		for _, t := range points {
			dst = append(dst, m.Apply(t))
		}
	}
	return dst
}
