package sched

import (
	"encoding/json"
	"strings"
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/retention"
)

func TestLayerBudgetResolution(t *testing.T) {
	o := Options{LayerBudgets: map[string]float64{
		"tight": 1e-7,
		"loose": 1e-2,
		"zero":  0,
	}}
	// Unlisted layer: the uniform default.
	if got := o.layerBudget("other"); got != retention.TolerableFailureRate {
		t.Errorf("unlisted layer budget = %g, want %g", got, retention.TolerableFailureRate)
	}
	// Listed tighter budget wins.
	if got := o.layerBudget("tight"); got != 1e-7 {
		t.Errorf("tight layer budget = %g, want 1e-7", got)
	}
	// A looser per-layer entry never loosens the uniform budget.
	if got := o.layerBudget("loose"); got != retention.TolerableFailureRate {
		t.Errorf("loose layer budget = %g, want uniform %g", got, retention.TolerableFailureRate)
	}
	// Zero entries are ignored, not treated as "no faults allowed".
	if got := o.layerBudget("zero"); got != retention.TolerableFailureRate {
		t.Errorf("zero layer budget = %g, want uniform %g", got, retention.TolerableFailureRate)
	}
	// A raised uniform budget is still tightened per layer.
	o.ErrorBudget = 1e-3
	if got := o.layerBudget("tight"); got != 1e-7 {
		t.Errorf("tight budget under raised uniform = %g, want 1e-7", got)
	}
	if got := o.layerBudget("other"); got != 1e-3 {
		t.Errorf("unlisted under raised uniform = %g, want 1e-3", got)
	}
}

func TestResolveBackendForLayerAdmission(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	o := Options{
		Backend:      "approx-dram",
		LayerBudgets: map[string]float64{"head": 1e-8},
	}
	// Default budget: nominal (BER 0), v0.9 (1e-7), v0.8 (1e-5) admit;
	// v0.7 (2e-4) does not.
	_, pts, err := ResolveBackendForLayer(cfg, o, "body")
	if err != nil {
		t.Fatalf("body: %v", err)
	}
	if len(pts) != 3 {
		t.Fatalf("body admits %d points, want 3", len(pts))
	}
	// The head's own curve tolerates less: only nominal survives.
	_, pts, err = ResolveBackendForLayer(cfg, o, "head")
	if err != nil {
		t.Fatalf("head: %v", err)
	}
	if len(pts) != 1 || pts[0].BitErrorRate != 0 {
		t.Fatalf("head admits %v, want nominal only", pts)
	}
	// Pinning a point the layer budget rejects errors and names the layer.
	o.OperatingPoint = "v0.9"
	if _, _, err = ResolveBackendForLayer(cfg, o, "head"); err == nil {
		t.Fatal("pinned over-layer-budget point admitted")
	} else if !strings.Contains(err.Error(), `for layer "head"`) {
		t.Errorf("error does not name the layer: %v", err)
	}
	// The same pin is fine on a layer without a tightened budget.
	if _, _, err = ResolveBackendForLayer(cfg, o, "body"); err != nil {
		t.Fatalf("body pin: %v", err)
	}
	// Without per-layer budgets, ResolveBackendForLayer is ResolveBackend.
	o = Options{Backend: "approx-dram"}
	_, a, err := ResolveBackend(cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := ResolveBackendForLayer(cfg, o, "whatever")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("point sets differ: %d vs %d", len(a), len(b))
	}
}

func TestValidateLayerBudgets(t *testing.T) {
	o := ranaOpts()
	o.LayerBudgets = map[string]float64{"l0": 2}
	if err := o.Validate(); err == nil {
		t.Error("budget 2 validated")
	}
	o.LayerBudgets = map[string]float64{"l0": -0.1}
	if err := o.Validate(); err == nil {
		t.Error("negative budget validated")
	}
	o.LayerBudgets = map[string]float64{"l0": 1e-5, "l1": 0}
	if err := o.Validate(); err != nil {
		t.Errorf("valid budgets rejected: %v", err)
	}
}

func TestMemoKeySeparatesLayerBudgets(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	l := models.ConvLayer{Name: "a", N: 3, H: 8, L: 8, M: 4, K: 3, S: 1, P: 1}
	same := l
	same.Name = "b"
	base := ranaOpts()

	// Without budgets, same-shaped layers share a key (the memo's whole
	// point) and the signature is unchanged from the pre-budget form.
	if keyFor(l, cfg, base) != keyFor(same, cfg, base) {
		t.Fatal("same-shaped layers have different keys without budgets")
	}

	budgeted := base
	budgeted.LayerBudgets = map[string]float64{"a": 1e-7}
	// Layer "a" is tightened, layer "b" is not: their keys must split so
	// a memo hit cannot leak a plan across different admission spaces.
	if keyFor(l, cfg, budgeted) == keyFor(same, cfg, budgeted) {
		t.Fatal("different layer budgets collapsed onto one memo key")
	}
	// Two layers resolving to the same budget still share.
	both := base
	both.LayerBudgets = map[string]float64{"a": 1e-7, "b": 1e-7}
	if keyFor(l, cfg, both) != keyFor(same, cfg, both) {
		t.Fatal("equal resolved budgets should share a key")
	}
	// Budgets are invisible to the options JSON projection (the serving
	// layer keys them explicitly).
	js, err := json.Marshal(budgeted)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(js), "1e-07") {
		t.Error("LayerBudgets leaked into the options JSON projection")
	}
}

func TestScheduleWithLayerBudgetsDefaultIsByteIdentical(t *testing.T) {
	// The core pipeline attaches per-layer budgets derived at the
	// default 0.995 constraint; every such budget is ≥ the uniform
	// 1e-5, so plans must be byte-identical with and without them.
	cfg := hw.TestAcceleratorEDRAM()
	net := models.AlexNet()
	opts := ranaOpts()
	plain, err := Schedule(net, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	budgets := make(map[string]float64, len(net.Layers))
	for _, l := range net.Layers {
		budgets[l.Name] = retention.TolerableFailureRate
	}
	opts.LayerBudgets = budgets
	budgeted, err := Schedule(net, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := json.Marshal(Encode(plain))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(Encode(budgeted))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("default-equivalent layer budgets changed plan bytes")
	}
}
