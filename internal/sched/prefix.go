package sched

// The prefix-level partial-evaluation memo. The whole-layer Memo can
// only reuse work when two layers share their entire shape, and
// coarsening its key over M is unsound (the plan genuinely depends on
// M — TestMemoNearDuplicateShapesStayDistinct pins why). The bound's
// *prefix sums* are a different story: prefixSums reads exactly
// (kind, Tm, Tn) and the layer's (N, K, H, L) sub-shape — never M, the
// output geometry, the tiling tail, the config or the pricing tables —
// so a memo keyed on precisely those inputs is sound by construction.
// GoogLeNet's inception branches, which differ mostly in M (3x3_reduce
// vs 5x5_reduce: same N/H/L/K ladder), miss the layer memo but hit
// here, which is where the "near-duplicate shapes reuse pricing work"
// win comes from.

import (
	"sync"
	"sync/atomic"

	"rana/internal/pattern"
)

// DefaultPrefixCapacity bounds a PrefixMemo's entry count when
// NewPrefixMemo is given no explicit capacity. One layer contributes
// |Tm axis| × |Tn axis| × kinds entries (a few hundred); 1<<16 holds a
// model zoo's worth while bounding a shared long-lived memo against
// hostile shape streams.
const DefaultPrefixCapacity = 1 << 16

// prefixKey identifies one prefix-sum computation: the candidate's
// (kind, Tm, Tn) prefix coordinate plus every layer-shape field
// prefixSums reads. All effective (per-group) values, like the bound's.
type prefixKey struct {
	kind   pattern.Kind
	tm, tn int
	n, k   int // input channels, kernel size
	h, l   int // input feature-map height and width (OD's working set)
}

// PrefixMemo caches bound prefix sums at the (kind, Tm, Tn) level,
// shared across the layers of one compile and — when installed
// server-wide via Options.Prefix — across compiles. Safe for concurrent
// use. The zero value is not usable; call NewPrefixMemo.
type PrefixMemo struct {
	mu      sync.RWMutex
	entries map[prefixKey]prefixSums
	cap     int
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// NewPrefixMemo returns a prefix memo bounded to capacity entries
// (<= 0 selects DefaultPrefixCapacity). When the table is full, new
// prefixes are computed without being recorded — the memo degrades to
// a no-op, never evicts.
func NewPrefixMemo(capacity int) *PrefixMemo {
	if capacity <= 0 {
		capacity = DefaultPrefixCapacity
	}
	return &PrefixMemo{entries: make(map[prefixKey]prefixSums), cap: capacity}
}

// PrefixStats is a point-in-time snapshot of a prefix memo's
// effectiveness.
type PrefixStats struct {
	// Hits counts lookups served from a cached entry.
	Hits uint64
	// Misses counts lookups that had to compute (and, below capacity,
	// record) the sums.
	Misses uint64
	// Entries is the current table size.
	Entries int
}

// Stats snapshots the memo counters.
func (p *PrefixMemo) Stats() PrefixStats {
	p.mu.RLock()
	n := len(p.entries)
	p.mu.RUnlock()
	return PrefixStats{Hits: p.hits.Load(), Misses: p.misses.Load(), Entries: n}
}

// lookup returns the prefix sums for (kind, tm, tn) against b's layer
// shape, computing and recording them on a miss. Entries are pure
// integer functions of their key, so concurrent duplicate computation
// is harmless (both writers store the identical value).
func (p *PrefixMemo) lookup(b *bound, k pattern.Kind, tm, tn int) prefixSums {
	key := prefixKey{kind: k, tm: tm, tn: tn, n: b.l.N, k: b.l.K, h: b.l.H, l: b.l.L}
	p.mu.RLock()
	s, ok := p.entries[key]
	p.mu.RUnlock()
	if ok {
		p.hits.Add(1)
		return s
	}
	p.misses.Add(1)
	s = b.prefixSums(k, tm, tn)
	p.mu.Lock()
	if len(p.entries) < p.cap {
		p.entries[key] = s
	}
	p.mu.Unlock()
	return s
}

// reset clears entries and counters while keeping the map's buckets —
// what returns a pooled per-compile memo to its cold state.
func (p *PrefixMemo) reset() {
	p.mu.Lock()
	clear(p.entries)
	p.mu.Unlock()
	p.hits.Store(0)
	p.misses.Store(0)
}

// compilePrefixPool recycles per-compile prefix memos: each compile
// that neither supplies Options.Prefix nor disables incremental pricing
// leases one, and it is reset (entries and counters) on release so
// per-compile hit rates mean what they say.
var compilePrefixPool = sync.Pool{New: func() any { return NewPrefixMemo(0) }}

func getCompilePrefix() *PrefixMemo { return compilePrefixPool.Get().(*PrefixMemo) }

func putCompilePrefix(p *PrefixMemo) {
	p.reset()
	compilePrefixPool.Put(p)
}
