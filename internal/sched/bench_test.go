package sched

import (
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched/search"
)

// BenchmarkScheduleLayerStrategies compares the per-layer exploration
// cost of the three search strategies on a representative mid-network
// layer. The evals/op metric is the number of exact Eq. 14 pricings —
// the expensive operation pruning and beaming exist to minimize — so a
// regression in either the pruning ratio or the allocation profile is
// visible from the benchmark output alone.
func BenchmarkScheduleLayerStrategies(b *testing.B) {
	cfg := hw.TestAcceleratorEDRAM()
	l, ok := models.VGG().Layer("conv4_2")
	if !ok {
		b.Fatal("missing benchmark layer")
	}
	for _, s := range search.Strategies() {
		opts := ranaOpts()
		opts.Search = s
		b.Run(string(s), func(b *testing.B) {
			b.ReportAllocs()
			var stats search.Stats
			for i := 0; i < b.N; i++ {
				_, st, err := ExploreLayer(l, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				stats = st
			}
			b.ReportMetric(float64(stats.Evaluated), "evals/op")
		})
	}
}
