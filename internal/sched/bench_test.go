package sched

import (
	"context"
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched/search"
)

// BenchmarkScheduleLayerStrategies compares the per-layer exploration
// cost of the three search strategies on a representative mid-network
// layer. The evals/op metric is the number of exact Eq. 14 pricings —
// the expensive operation pruning and beaming exist to minimize — so a
// regression in either the pruning ratio or the allocation profile is
// visible from the benchmark output alone.
func BenchmarkScheduleLayerStrategies(b *testing.B) {
	cfg := hw.TestAcceleratorEDRAM()
	l, ok := models.VGG().Layer("conv4_2")
	if !ok {
		b.Fatal("missing benchmark layer")
	}
	for _, s := range search.Strategies() {
		opts := ranaOpts()
		opts.Search = s
		b.Run(string(s), func(b *testing.B) {
			b.ReportAllocs()
			var stats search.Stats
			for i := 0; i < b.N; i++ {
				_, st, err := ExploreLayer(l, cfg, opts)
				if err != nil {
					b.Fatal(err)
				}
				stats = st
			}
			b.ReportMetric(float64(stats.Evaluated), "evals/op")
		})
	}
}

// BenchmarkCompileNetwork times whole-network scheduling over the model
// zoo in two configurations: the sequential un-memoized baseline
// (Parallelism 1, DisableMemo) against the optimized default (pooled
// workers + per-compile layer-shape memo). The evals/op and memohit/op
// metrics expose where the speedup comes from — ResNet and GoogLeNet
// repeat shapes heavily, so their memoized runs evaluate a fraction of
// the baseline's candidates.
func BenchmarkCompileNetwork(b *testing.B) {
	cfg := hw.TestAcceleratorEDRAM()
	variants := []struct {
		name string
		tune func(*Options)
	}{
		{"baseline", func(o *Options) { o.Parallelism = 1; o.DisableMemo = true; o.DisableIncremental = true }},
		{"optimized", func(o *Options) {}},
	}
	for _, net := range models.Benchmarks() {
		for _, v := range variants {
			opts := ranaOpts()
			v.tune(&opts)
			b.Run(net.Name+"/"+v.name, func(b *testing.B) {
				b.ReportAllocs()
				var ns NetworkStats
				for i := 0; i < b.N; i++ {
					// Each iteration gets a fresh implicit memo (Options.Memo
					// stays nil), so hit rates measure one compile, not an
					// ever-warmer cache.
					_, st, err := ExploreNetworkContext(context.Background(), net, cfg, opts)
					if err != nil {
						b.Fatal(err)
					}
					ns = st
				}
				b.ReportMetric(float64(ns.Search.Evaluated), "evals/op")
				b.ReportMetric(float64(ns.MemoHits), "memohit/op")
			})
		}
	}
}
