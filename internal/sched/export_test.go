package sched

import (
	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched/search"
)

// LowerBoundForTest exposes the branch-and-bound admissible lower bound
// to external test packages (the randomized admissibility property test
// lives outside package sched to use internal/verify/gen, which imports
// sched).
func LowerBoundForTest(l models.ConvLayer, cfg hw.Config, k pattern.Kind, t pattern.Tiling) float64 {
	tables := []energy.Table{cfg.BufferTech.Table()}
	return newBound(l, cfg, tables, 1, nil).lower(k, t, search.Cell{})
}
