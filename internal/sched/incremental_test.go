package sched

// The incremental-pricing equality test: a pricingCtx must return
// *bit-identical* values to the stateless (*bound).lower at every cell,
// in any call order — the property that makes incremental pricing
// invisible to pruning decisions, plans and work accounting. The test
// streams the full candidate space of representative layers in the
// canonical enumeration order (maximizing cache reuse), in a seeded
// random order (maximizing cache invalidation churn), with and without
// a PrefixMemo in the loop, comparing raw float bits throughout.

import (
	"math"
	"math/rand"
	"testing"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched/search"
)

type priceCase struct {
	k    pattern.Kind
	t    pattern.Tiling
	cell search.Cell
}

// enumerateCases builds the layer's candidate cells in the canonical
// scan order: tiling-major, then kind, operating point, traversal,
// mapping — the order incremental caching was designed around.
func enumerateCases(e models.ConvLayer, cfg hw.Config, kinds []pattern.Kind, points, travs, maps int) []priceCase {
	tms := search.Axis(e.M, cfg.ArrayM)
	tns := search.Axis(e.N, cfg.ArrayN)
	trs := search.Axis(e.R(), cfg.ArrayM)
	tcs := search.Axis(e.C(), cfg.ArrayN)
	var out []priceCase
	for _, tm := range tms {
		for _, tn := range tns {
			for _, tr := range trs {
				for _, tc := range tcs {
					t := pattern.Tiling{Tm: tm, Tn: tn, Tr: tr, Tc: tc}
					for _, k := range kinds {
						for pi := 0; pi < points; pi++ {
							for tv := 0; tv < travs; tv++ {
								for mi := 0; mi < maps; mi++ {
									out = append(out, priceCase{k: k, t: t, cell: search.Cell{Point: pi, Trav: tv, Map: mi}})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

func TestIncrementalBoundBitIdentical(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	travs, err := ParseTraversalSpec("rtc")
	if err != nil {
		t.Fatal(err)
	}
	maps, err := ParseMappingSpec("all")
	if err != nil {
		t.Fatal(err)
	}
	// Two synthetic operating points so the point axis actually selects
	// different pricing tables.
	base := cfg.BufferTech.Table()
	low := base
	low.AccessPJ *= 0.8
	low.RefreshPJ *= 1.3
	tables := mappingTables([]energy.Table{base, low}, maps)
	// The three known kinds plus an unknown one: both evaluators must
	// bound unknown kinds to zero (never pruned).
	kinds := []pattern.Kind{pattern.ID, pattern.OD, pattern.WD, pattern.Kind(97)}

	rng := rand.New(rand.NewSource(1))
	for _, net := range models.Benchmarks() {
		layers := net.Layers
		if len(layers) > 3 {
			layers = []models.ConvLayer{layers[0], layers[len(layers)/2], layers[len(layers)-1]}
		}
		for _, l := range layers {
			b := newBound(l, cfg, tables, 2, travs)
			cases := enumerateCases(effectiveLayer(l), cfg, kinds, 2, len(travs), len(maps))
			order := make([]int, len(cases))
			for i := range order {
				order[i] = i
			}
			runs := []struct {
				name    string
				shuffle bool
				prefix  *PrefixMemo
			}{
				{"canonical", false, nil},
				{"canonical-prefixmemo", false, NewPrefixMemo(0)},
				{"shuffled", true, nil},
				{"shuffled-prefixmemo", true, NewPrefixMemo(0)},
			}
			for _, run := range runs {
				if run.shuffle {
					rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
				}
				pc := acquirePricer(b, run.prefix)
				for _, idx := range order {
					c := cases[idx]
					got := pc.Lower(c.k, c.t, c.cell)
					want := b.lower(c.k, c.t, c.cell)
					if math.Float64bits(got) != math.Float64bits(want) {
						pc.Release()
						t.Fatalf("%s/%s %s: kind %v tiling %+v cell %+v: incremental %v (bits %x) != stateless %v (bits %x)",
							net.Name, l.Name, run.name, c.k, c.t, c.cell,
							got, math.Float64bits(got), want, math.Float64bits(want))
					}
				}
				pc.Release()
			}
		}
	}
}

// TestPrefixMemoStats pins the prefix memo's accounting: lookups for a
// repeated (kind, Tm, Tn, shape) prefix hit after the first compute,
// reset returns the memo to cold, and a saturated memo keeps computing
// correct values without recording.
func TestPrefixMemoStats(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	l, ok := models.VGG().Layer("conv4_2")
	if !ok {
		t.Fatal("missing layer")
	}
	b := newBound(l, cfg, []energy.Table{cfg.BufferTech.Table()}, 1, nil)

	p := NewPrefixMemo(0)
	first := p.lookup(b, pattern.OD, 16, 16)
	again := p.lookup(b, pattern.OD, 16, 16)
	if first != again {
		t.Fatalf("prefix sums changed between lookups: %+v != %+v", first, again)
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats after repeat lookup = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
	if got, want := first, b.prefixSums(pattern.OD, 16, 16); got != want {
		t.Fatalf("memoized sums %+v != direct %+v", got, want)
	}

	p.reset()
	if st := p.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Fatalf("stats after reset = %+v, want all zero", st)
	}

	// Saturation: a capacity-1 memo records the first prefix only, yet
	// keeps returning correct values for everything else.
	tiny := NewPrefixMemo(1)
	tiny.lookup(b, pattern.OD, 16, 16)
	got := tiny.lookup(b, pattern.ID, 32, 8)
	if want := b.prefixSums(pattern.ID, 32, 8); got != want {
		t.Fatalf("saturated lookup %+v != direct %+v", got, want)
	}
	if st := tiny.Stats(); st.Entries != 1 {
		t.Fatalf("saturated memo has %d entries, want 1", st.Entries)
	}
	// The unrecorded prefix misses again on repeat.
	tiny.lookup(b, pattern.ID, 32, 8)
	if st := tiny.Stats(); st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("saturated stats = %+v, want 3 misses / 0 hits", st)
	}
}
