package search

import (
	"rana/internal/pattern"
)

// Space streams a tiling space in canonical order. Next returns the
// next tiling, or false when the space is exhausted; Size is the total
// count (for budget arithmetic and stats assertions); Reset rewinds the
// stream so Beam's feasibility fallback can rescan.
type Space interface {
	Next() (pattern.Tiling, bool)
	Size() int
	Reset()
}

// Axis returns the candidate tile sizes along one axis of extent dim,
// ascending: powers of two up to dim, the PE-array width, and dim
// itself.
func Axis(dim, array int) []int { return AppendAxis(nil, dim, array) }

// AppendAxis is Axis writing into dst (which may be a reused scratch
// slice), so steady-state space construction allocates nothing once the
// scratch has grown to size. The output is identical to Axis: the
// sorted deduplicated union of the powers of two below dim, the array
// width (when it fits), and dim itself.
func AppendAxis(dst []int, dim, array int) []int {
	start := len(dst)
	// Powers of two below dim arrive already ascending and distinct.
	for v := 1; v < dim; v *= 2 {
		dst = append(dst, v)
	}
	dst = insertSorted(dst, start, dim)
	if array <= dim {
		dst = insertSorted(dst, start, array)
	}
	return dst
}

// insertSorted inserts v into the ascending run dst[start:], keeping it
// sorted and deduplicated.
func insertSorted(dst []int, start, v int) []int {
	i := start
	for i < len(dst) && dst[i] < v {
		i++
	}
	if i < len(dst) && dst[i] == v {
		return dst
	}
	dst = append(dst, 0)
	copy(dst[i+1:], dst[i:])
	dst[i] = v
	return dst
}

// Product streams the ⟨Tm, Tn, Tr, Tc⟩ cross product of four per-axis
// candidate lists without materializing it, in the historical nesting
// order (Tm outermost, Tc innermost).
type Product struct {
	tms, tns, trs, tcs []int
	i, j, k, l         int
}

// NewProduct returns the cross-product space of the four axis lists.
func NewProduct(tms, tns, trs, tcs []int) *Product {
	return &Product{tms: tms, tns: tns, trs: trs, tcs: tcs}
}

// Init re-points an existing (typically pooled) Product at new axis
// lists and rewinds it — NewProduct without the allocation.
func (p *Product) Init(tms, tns, trs, tcs []int) {
	p.tms, p.tns, p.trs, p.tcs = tms, tns, trs, tcs
	p.Reset()
}

// Size implements Space.
func (p *Product) Size() int {
	return len(p.tms) * len(p.tns) * len(p.trs) * len(p.tcs)
}

// Reset implements Space.
func (p *Product) Reset() { p.i, p.j, p.k, p.l = 0, 0, 0, 0 }

// Next implements Space.
func (p *Product) Next() (pattern.Tiling, bool) {
	if p.i >= len(p.tms) || p.Size() == 0 {
		return pattern.Tiling{}, false
	}
	t := pattern.Tiling{Tm: p.tms[p.i], Tn: p.tns[p.j], Tr: p.trs[p.k], Tc: p.tcs[p.l]}
	p.l++
	if p.l == len(p.tcs) {
		p.l = 0
		p.k++
		if p.k == len(p.trs) {
			p.k = 0
			p.j++
			if p.j == len(p.tns) {
				p.j = 0
				p.i++
			}
		}
	}
	return t, true
}

// Slice is a Space over a fixed tiling list — the single-point space of
// a pinned tiling, or any precomputed reduction order.
type Slice struct {
	ts []pattern.Tiling
	i  int
}

// NewSlice returns a Space streaming ts in order.
func NewSlice(ts []pattern.Tiling) *Slice { return &Slice{ts: ts} }

// Init re-points an existing (typically pooled) Slice at a new tiling
// list and rewinds it — NewSlice without the allocation.
func (s *Slice) Init(ts []pattern.Tiling) {
	s.ts = ts
	s.Reset()
}

// Size implements Space.
func (s *Slice) Size() int { return len(s.ts) }

// Reset implements Space.
func (s *Slice) Reset() { s.i = 0 }

// Next implements Space.
func (s *Slice) Next() (pattern.Tiling, bool) {
	if s.i >= len(s.ts) {
		return pattern.Tiling{}, false
	}
	t := s.ts[s.i]
	s.i++
	return t, true
}
