// Package search is the pluggable exploration engine behind the Fig. 13
// scheduler: it decouples candidate *generation* (a streaming iterator
// over the tiling space, enumerated once and shared across pattern
// kinds) from candidate *evaluation* (a cheap admissible lower bound
// plus the exact pricer, both supplied by the caller) from the search
// *strategy*:
//
//   - Exhaustive prices every admitted candidate — the reference,
//     bit-identical to the historical scheduler loop;
//   - Pruned is a branch-and-bound scan: a candidate whose lower bound
//     already exceeds the incumbent's exact energy is skipped without
//     pricing. With an admissible bound it returns the same argmin as
//     Exhaustive, just cheaper;
//   - Beam is the budgeted middle rung of the serving degradation
//     ladder: it bounds every candidate, prices only the K most
//     promising, and may therefore return a worse (but always feasible
//     and deterministic) plan.
//
// Every strategy uses one canonical preference order so equal-energy
// argmins can never silently flip between strategies or refactors:
// lexicographic (energy, kind index, tiling index, point index,
// traversal index, mapping index) — exactly the pattern-major strict-<
// first-wins rule of the historical loop, extended axis by axis so
// single-valued axes change nothing.
//
// Every strategy also runs at any parallelism level with byte-identical
// results: Options.Parallelism partitions the candidate space across a
// bounded worker pool sharing the incumbent's exact energy through an
// atomic bound (parallel.go), and the reduction re-applies the canonical
// preference order, so plans never move with the worker count.
package search

import (
	"fmt"
	"runtime"

	"rana/internal/pattern"
)

// Strategy selects how the candidate space is explored.
type Strategy string

const (
	// Exhaustive prices every admitted candidate (the reference).
	Exhaustive Strategy = "exhaustive"
	// Pruned is branch-and-bound over the same space: identical argmin,
	// strictly less pricing work.
	Pruned Strategy = "pruned"
	// Beam prices only the BeamWidth candidates with the most promising
	// lower bounds.
	Beam Strategy = "beam"
)

// DefaultStrategy is what the empty Strategy resolves to.
const DefaultStrategy = Pruned

// DefaultBeamWidth is Beam's exact-evaluation budget when none is set.
const DefaultBeamWidth = 64

// Strategies lists the supported strategies in ladder order (most to
// least exploration) — the /v1/catalog listing.
func Strategies() []Strategy { return []Strategy{Exhaustive, Pruned, Beam} }

// Resolve maps the empty strategy onto the default.
func (s Strategy) Resolve() Strategy {
	if s == "" {
		return DefaultStrategy
	}
	return s
}

// Validate reports unknown strategies.
func (s Strategy) Validate() error {
	switch s.Resolve() {
	case Exhaustive, Pruned, Beam:
		return nil
	default:
		return fmt.Errorf("search: unknown strategy %q", string(s))
	}
}

// EffectiveWidth resolves a configured beam width (0 selects the
// default).
func EffectiveWidth(w int) int {
	if w <= 0 {
		return DefaultBeamWidth
	}
	return w
}

// MaxParallelism caps the worker pool one Run may fan out. The cap
// bounds goroutine count against hostile or mistaken configuration;
// beyond the machine's core count extra workers only add contention.
const MaxParallelism = 256

// EffectiveParallelism resolves a configured parallelism level: zero (or
// negative) selects GOMAXPROCS, and every level is capped at
// MaxParallelism. The result is the worker bound, not a promise — a Run
// never spawns more workers than it has tilings to scan.
func EffectiveParallelism(p int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > MaxParallelism {
		p = MaxParallelism
	}
	return p
}

// Candidate identifies one (pattern kind, tiling, operating point,
// traversal order, data mapping) cell of the space. KindIdx, TilingIdx,
// PointIdx, TravIdx and MapIdx are the enumeration positions the
// tie-breaking order is defined over.
type Candidate struct {
	Kind      pattern.Kind
	KindIdx   int
	Tiling    pattern.Tiling
	TilingIdx int
	// PointIdx indexes the problem's memory-backend operating points;
	// always 0 when the problem has a single (or no explicit) point.
	PointIdx int
	// TravIdx indexes the problem's traversal orders; always 0 when the
	// problem has a single (or no explicit) order.
	TravIdx int
	// MapIdx indexes the problem's data-mapping policies; always 0 when
	// the problem has a single (or no explicit) policy.
	MapIdx int
}

// Cell projects the candidate onto its value-axis coordinates — the
// triple Bound and Evaluate are addressed with.
func (c Candidate) Cell() Cell {
	return Cell{Point: c.PointIdx, Trav: c.TravIdx, Map: c.MapIdx}
}

// Cell addresses one position on the per-candidate value axes: the
// memory-backend operating point, the traversal order and the
// data-mapping policy. The zero Cell is the historical default (nominal
// point, linear traversal, row-major mapping).
type Cell struct {
	Point int
	Trav  int
	Map   int
}

// Pricer is a stateful per-goroutine bound evaluator: an incremental
// pricing context that caches per-axis partial terms across the
// candidates one scan goroutine streams, invalidating only what the
// changed coordinate touches. Lower must return *exactly* the value the
// problem's stateless Bound would return for the same candidate — bit
// for bit, at any call order — so pruning decisions (and therefore
// plans and work accounting) cannot depend on whether the incremental
// or the stateless evaluator ran. Release hands the context back to its
// owner's pool; the strategy calls it when the goroutine's scan ends
// and never touches the pricer again.
type Pricer interface {
	Lower(k pattern.Kind, t pattern.Tiling, cell Cell) float64
	Release()
}

// Outcome is one candidate priced exactly by the caller's evaluator.
type Outcome[T any] struct {
	// Feasible reports whether the candidate can execute at all;
	// infeasible candidates never become the incumbent.
	Feasible bool
	// Energy is the exact total energy the argmin minimizes.
	Energy float64
	// Value is the caller's payload (the scheduler's LayerPlan).
	Value T
}

// Problem couples one layer's candidate space with its evaluators.
type Problem[T any] struct {
	// Space streams the tiling space in canonical order. It is consumed
	// exactly once per Run (Beam's feasibility fallback resets it).
	Space Space
	// Kinds is the pattern exploration space, in option order.
	Kinds []pattern.Kind
	// Admit, when non-nil, prefilters tilings (the core local-storage
	// constraints) before any kind is considered.
	Admit func(pattern.Tiling) bool
	// Points is the memory-backend operating-point axis: each admitted
	// (kind, tiling) pair is considered at every point index in
	// [0, Points). Zero (or negative) means a single implicit point —
	// the historical two-axis space, with identical enumeration and
	// statistics.
	Points int
	// Travs is the traversal-order axis (RTC-style execution
	// reordering): each admitted (kind, tiling, point) cell is
	// considered at every traversal index in [0, Travs). Zero (or
	// negative) means the single implicit linear order.
	Travs int
	// Maps is the data-mapping axis (PENDRAM-style bank/row policy):
	// each cell is considered at every mapping index in [0, Maps). Zero
	// (or negative) means the single implicit row-major policy.
	Maps int
	// Bound returns an admissible lower bound on Evaluate's Energy for
	// the candidate at one value cell: it must never exceed the exact
	// value, and must be much cheaper to compute. Nil disables pruning
	// (Pruned degenerates to Exhaustive, Beam keeps
	// arbitrary-but-deterministic candidates).
	Bound func(k pattern.Kind, t pattern.Tiling, cell Cell) float64
	// NewPricer, when non-nil, supplies a fresh incremental bound
	// evaluator per scan goroutine, used in Bound's place wherever a
	// bound is computed. Lower must be bit-identical to Bound (see
	// Pricer); Bound stays the pruning gate and the stateless reference,
	// so NewPricer without Bound is ignored.
	NewPricer func() Pricer
	// Evaluate prices one candidate exactly at one value cell, writing
	// the result into *out. The engine reuses one scratch Outcome per
	// scan goroutine, so on a nil error Evaluate must overwrite every
	// Outcome field rather than assume zeroed input; on an error *out is
	// unspecified and never read. The out-parameter form exists because
	// T is the scheduler's several-hundred-byte LayerPlan: returning it
	// by value put a duffcopy on every exact evaluation, the single
	// hottest instruction in a cold compile.
	Evaluate func(k pattern.Kind, t pattern.Tiling, cell Cell, out *Outcome[T]) error
	// NewOutcome / FreeOutcome, when non-nil, lease the per-goroutine
	// scratch Outcome the engine passes to Evaluate. The engine cannot
	// stack-allocate that scratch — its address crosses the Evaluate
	// indirection, so escape analysis heap-allocates it once per scan —
	// and a caller-pooled buffer is what keeps steady-state compiles
	// allocation-free. Nil falls back to a plain allocation per scan
	// goroutine. FreeOutcome is called exactly once per NewOutcome
	// lease, after the goroutine's last read of the buffer.
	NewOutcome  func() *Outcome[T]
	FreeOutcome func(*Outcome[T])
}

// axisExtent resolves one value-axis extent (zero or negative → one).
func axisExtent(n int) int {
	if n <= 0 {
		return 1
	}
	return n
}

// newOutcome leases one scan goroutine's scratch Outcome (see
// NewOutcome); freeOutcome returns it.
func (p Problem[T]) newOutcome() *Outcome[T] {
	if p.NewOutcome != nil {
		return p.NewOutcome()
	}
	return new(Outcome[T])
}

func (p Problem[T]) freeOutcome(o *Outcome[T]) {
	if p.FreeOutcome != nil {
		p.FreeOutcome(o)
	}
}

// points resolves the operating-point axis extent (zero → one).
func (p Problem[T]) points() int { return axisExtent(p.Points) }

// travs resolves the traversal-order axis extent (zero → one).
func (p Problem[T]) travs() int { return axisExtent(p.Travs) }

// maps resolves the data-mapping axis extent (zero → one).
func (p Problem[T]) maps() int { return axisExtent(p.Maps) }

// Options tunes one Run.
type Options struct {
	Strategy  Strategy
	BeamWidth int // Beam only; 0 selects DefaultBeamWidth
	// Parallelism bounds the worker goroutines one Run fans out across
	// the candidate space. Zero selects GOMAXPROCS; 1 forces the
	// sequential reference path. Results are byte-identical at every
	// level (see parallel.go for the argument); only Stats work
	// attribution (Bounded/Pruned/Evaluated splits) may shift, since
	// how much pruning the shared bound achieves depends on timing.
	Parallelism int
}

// Stats counts the work one Run performed — the currency the pruning
// and beam budgets are measured in.
type Stats struct {
	// Tilings counts tilings streamed from the space. The space is
	// enumerated once per Run, never once per pattern kind.
	Tilings int
	// Admitted counts tilings that passed the core constraints.
	Admitted int
	// Candidates counts (kind, tiling) pairs considered.
	Candidates int
	// Bounded counts lower-bound computations.
	Bounded int
	// Pruned counts candidates skipped because their bound already
	// exceeded the incumbent.
	Pruned int
	// Evaluated counts exact evaluations — the expensive operation the
	// strategies exist to minimize.
	Evaluated int
	// Workers is the worker-pool size the run actually used (1 on the
	// sequential path). Aggregation keeps the maximum, not a sum.
	Workers int
}

// Add accumulates other into s: counters sum, Workers keeps the max.
func (s *Stats) Add(other Stats) {
	s.Tilings += other.Tilings
	s.Admitted += other.Admitted
	s.Candidates += other.Candidates
	s.Bounded += other.Bounded
	s.Pruned += other.Pruned
	s.Evaluated += other.Evaluated
	if other.Workers > s.Workers {
		s.Workers = other.Workers
	}
}

// Result is one Run's outcome.
type Result[T any] struct {
	// Found reports whether any feasible candidate exists.
	Found     bool
	Candidate Candidate
	Outcome   Outcome[T]
	Stats     Stats
}

// Run explores the problem under the options' strategy and returns the
// minimum-energy feasible candidate in the canonical preference order.
func Run[T any](p Problem[T], o Options) (Result[T], error) {
	if err := o.Strategy.Validate(); err != nil {
		return Result[T]{}, err
	}
	workers := EffectiveParallelism(o.Parallelism)
	switch o.Strategy.Resolve() {
	case Exhaustive:
		if workers > 1 {
			return scanParallel(p, false, workers)
		}
		return scan(p, false)
	case Pruned:
		if workers > 1 {
			return scanParallel(p, p.Bound != nil, workers)
		}
		return scan(p, p.Bound != nil)
	default: // Beam; Validate covered the rest
		return beam(p, EffectiveWidth(o.BeamWidth), workers)
	}
}

// prefer reports whether candidate c with energy e beats the incumbent
// (be, bc) in the canonical preference order: lexicographic
// (energy, kind index, tiling index, point index, traversal index,
// mapping index). This is exactly the argmin the historical
// pattern-major loop's strict-< rule kept — the earliest candidate in
// (kind, tiling, point, traversal, mapping) enumeration order among the
// equal-energy minima — so every strategy and any future parallel
// variant agrees on ties by construction. The value-axis indices
// compare last, newest-axis last of all: on single-valued axes they
// never differ, so each historical tie-break is preserved bit-for-bit
// as axes accrete.
func prefer(e float64, c Candidate, be float64, bc Candidate) bool {
	if e != be {
		return e < be
	}
	if c.KindIdx != bc.KindIdx {
		return c.KindIdx < bc.KindIdx
	}
	if c.TilingIdx != bc.TilingIdx {
		return c.TilingIdx < bc.TilingIdx
	}
	if c.PointIdx != bc.PointIdx {
		return c.PointIdx < bc.PointIdx
	}
	if c.TravIdx != bc.TravIdx {
		return c.TravIdx < bc.TravIdx
	}
	return c.MapIdx < bc.MapIdx
}

// scan is the shared exhaustive / branch-and-bound loop: one streaming
// pass over the tiling space, all pattern kinds and value cells
// (operating point × traversal × mapping) priced per tiling.
func scan[T any](p Problem[T], prune bool) (Result[T], error) {
	var r Result[T]
	r.Stats.Workers = 1
	points, travs, maps := p.points(), p.travs(), p.maps()
	var pricer Pricer
	if prune && p.Bound != nil && p.NewPricer != nil {
		pricer = p.NewPricer()
		defer pricer.Release()
	}
	out := p.newOutcome()
	defer p.freeOutcome(out)
	for ti := 0; ; ti++ {
		t, ok := p.Space.Next()
		if !ok {
			break
		}
		r.Stats.Tilings++
		if p.Admit != nil && !p.Admit(t) {
			continue
		}
		r.Stats.Admitted++
		for ki, k := range p.Kinds {
			for pi := 0; pi < points; pi++ {
				for tv := 0; tv < travs; tv++ {
					for mi := 0; mi < maps; mi++ {
						r.Stats.Candidates++
						cell := Cell{Point: pi, Trav: tv, Map: mi}
						if prune && r.Found {
							r.Stats.Bounded++
							// Strictly greater only: a candidate whose bound *equals*
							// the incumbent's energy could still tie exactly and win
							// the deterministic tie-break, so it must be priced.
							var lb float64
							if pricer != nil {
								lb = pricer.Lower(k, t, cell)
							} else {
								lb = p.Bound(k, t, cell)
							}
							if lb > r.Outcome.Energy {
								r.Stats.Pruned++
								continue
							}
						}
						if err := p.Evaluate(k, t, cell, out); err != nil {
							return Result[T]{}, err
						}
						r.Stats.Evaluated++
						if !out.Feasible {
							continue
						}
						c := Candidate{Kind: k, KindIdx: ki, Tiling: t, TilingIdx: ti, PointIdx: pi, TravIdx: tv, MapIdx: mi}
						if !r.Found || prefer(out.Energy, c, r.Outcome.Energy, r.Candidate) {
							r.Found, r.Candidate, r.Outcome = true, c, *out
						}
					}
				}
			}
		}
	}
	return r, nil
}
