package search

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"rana/internal/pattern"
)

// pseudoTable builds a deterministic pseudo-random candidate table over n
// tilings and the given kinds: energies collide often (quantized to a
// handful of levels) so the canonical tie-break is exercised, bounds are
// admissible by construction, and a fraction of candidates is
// infeasible. seed varies the landscape between rounds.
func pseudoTable(n int, kinds []pattern.Kind, seed uint64) map[string]entry {
	table := make(map[string]entry, n*len(kinds))
	x := seed*2654435761 + 1
	for i := 0; i < n; i++ {
		for _, k := range kinds {
			x = x*6364136223846793005 + 1442695040888963407
			e := float64((x>>33)%17) + 1 // few levels -> many exact ties
			table[k.String()+"/"+itoa(i)] = entry{
				energy:   e,
				feasible: (x>>7)%5 != 0,
				bound:    e - float64((x>>13)%3), // never exceeds the exact value
			}
		}
	}
	return table
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// TestParallelMatchesSequentialRandomized is the core determinism check:
// for randomized landscapes full of exact ties, every strategy at every
// worker count returns the identical candidate and energy as the
// sequential reference, and the work accounting invariant
// Candidates == Evaluated + Pruned holds on every run.
func TestParallelMatchesSequentialRandomized(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD, pattern.WD}
	for _, n := range []int{1, 2, 3, 17, 64, 257} {
		for seed := uint64(0); seed < 4; seed++ {
			table := pseudoTable(n, kinds, seed)
			for _, s := range []Strategy{Exhaustive, Pruned} {
				ref, err := Run(synthetic(tilingsN(n), kinds, table, nil), Options{Strategy: s, Parallelism: 1})
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{2, 3, 8, 16} {
					got, err := Run(synthetic(tilingsN(n), kinds, table, nil), Options{Strategy: s, Parallelism: workers})
					if err != nil {
						t.Fatal(err)
					}
					if got.Found != ref.Found || got.Candidate != ref.Candidate ||
						got.Outcome.Energy != ref.Outcome.Energy || got.Outcome.Value != ref.Outcome.Value {
						t.Fatalf("%s n=%d seed=%d workers=%d: got %+v / %+v, want %+v / %+v",
							s, n, seed, workers, got.Candidate, got.Outcome, ref.Candidate, ref.Outcome)
					}
					st := got.Stats
					if st.Candidates != st.Evaluated+st.Pruned {
						t.Fatalf("%s n=%d workers=%d: accounting %d != %d evaluated + %d pruned",
							s, n, workers, st.Candidates, st.Evaluated, st.Pruned)
					}
					if st.Tilings != ref.Stats.Tilings || st.Admitted != ref.Stats.Admitted ||
						st.Candidates != ref.Stats.Candidates {
						t.Fatalf("%s n=%d workers=%d: deterministic stats moved: %+v vs %+v",
							s, n, workers, st, ref.Stats)
					}
				}
			}
		}
	}
}

// TestParallelTieBreakAcrossPartitions pins the reduction: with every
// candidate at the same energy, the earliest canonical candidate must
// win no matter how the partitions race, including when an admit filter
// shifts the canonical indices.
func TestParallelTieBreakAcrossPartitions(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD, pattern.WD}
	const n = 100
	table := make(map[string]entry, 2*n)
	for i := 0; i < n; i++ {
		for _, k := range kinds {
			table[k.String()+"/"+itoa(i)] = entry{energy: 3, feasible: true, bound: 3}
		}
	}
	table["OD/0"] = entry{energy: 3, feasible: false, bound: 3}
	for _, workers := range []int{2, 7, 33} {
		p := synthetic(tilingsN(n), kinds, table, nil)
		p.Admit = func(ti pattern.Tiling) bool { return ti.Tm != 1 }
		r, err := Run(p, Options{Strategy: Pruned, Parallelism: workers})
		if err != nil {
			t.Fatal(err)
		}
		// OD/0 is infeasible and Tm==1 is not admitted, so the earliest
		// surviving canonical candidate is OD at tiling index 2.
		if !r.Found || r.Outcome.Value != "OD/2" {
			t.Fatalf("workers=%d: chose %q (found=%v), want OD/2", workers, r.Outcome.Value, r.Found)
		}
		if r.Candidate.KindIdx != 0 || r.Candidate.TilingIdx != 2 {
			t.Fatalf("workers=%d: candidate %+v, want kind 0 tiling 2", workers, r.Candidate)
		}
	}
}

// TestParallelPropagatesEvaluatorErrors: a failing evaluator must fail
// the whole run at every worker count, never return a partial result.
func TestParallelPropagatesEvaluatorErrors(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD}
	table := map[string]entry{"OD/0": {energy: 1, feasible: true}}
	// Every index >= 1 is missing from the table, so Evaluate errors.
	for _, workers := range []int{2, 8} {
		r, err := Run(synthetic(tilingsN(50), kinds, table, nil), Options{Strategy: Exhaustive, Parallelism: workers})
		if err == nil {
			t.Fatalf("workers=%d: evaluator error swallowed", workers)
		}
		if !strings.Contains(err.Error(), "no entry for") {
			t.Fatalf("workers=%d: unexpected error %v", workers, err)
		}
		if r.Found {
			t.Fatalf("workers=%d: partial result alongside error", workers)
		}
	}
}

// TestParallelRepanicsWorkerPanics: a panic inside a worker goroutine
// must resurface on the calling goroutine (where sched's per-layer
// recover can convert it) with the original value attached.
func TestParallelRepanicsWorkerPanics(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD}
	p := Problem[string]{
		Space: NewSlice(tilingsN(64)),
		Kinds: kinds,
		Evaluate: func(k pattern.Kind, ti pattern.Tiling, _ Cell, out *Outcome[string]) error {
			if ti.Tm == 40 {
				panic("poisoned candidate")
			}
			*out = Outcome[string]{Feasible: true, Energy: float64(ti.Tm)}
			return nil
		},
	}
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic swallowed")
		}
		wp, ok := v.(*workerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *workerPanic", v)
		}
		if wp.Value != "poisoned candidate" || len(wp.Stack) == 0 {
			t.Fatalf("panic payload %+v lost the original value or stack", wp)
		}
	}()
	_, _ = Run(p, Options{Strategy: Exhaustive, Parallelism: 8})
}

// TestBeamParallelMatchesSequential: the beam's fan-out pricing must
// keep the pick, the priced count and the fallback behavior of the
// sequential beam.
func TestBeamParallelMatchesSequential(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD, pattern.WD}
	for seed := uint64(0); seed < 4; seed++ {
		table := pseudoTable(64, kinds, seed)
		ref, err := Run(synthetic(tilingsN(64), kinds, table, nil), Options{Strategy: Beam, BeamWidth: 9, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 5} {
			got, err := Run(synthetic(tilingsN(64), kinds, table, nil), Options{Strategy: Beam, BeamWidth: 9, Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got.Found != ref.Found || got.Candidate != ref.Candidate || got.Outcome.Energy != ref.Outcome.Energy {
				t.Fatalf("seed=%d workers=%d: beam pick moved: %+v vs %+v", seed, workers, got.Candidate, ref.Candidate)
			}
			if got.Stats.Evaluated != ref.Stats.Evaluated {
				t.Fatalf("seed=%d workers=%d: beam priced %d, want %d", seed, workers, got.Stats.Evaluated, ref.Stats.Evaluated)
			}
		}
	}
}

// TestSharedBoundStress is the -race stress of the shared-bound pool:
// many workers hammer the atomic incumbent over a tie-heavy landscape,
// and the result must match the sequential reference every round.
func TestSharedBoundStress(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD, pattern.WD, pattern.ID}
	rounds := 8
	if testing.Short() {
		rounds = 3
	}
	for seed := uint64(0); seed < uint64(rounds); seed++ {
		table := pseudoTable(150, kinds, seed+100)
		ref, err := Run(synthetic(tilingsN(150), kinds, table, nil), Options{Strategy: Pruned, Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{4, 16, 32} {
			got, err := Run(synthetic(tilingsN(150), kinds, table, nil), Options{Strategy: Pruned, Parallelism: workers})
			if err != nil {
				t.Fatal(err)
			}
			if got.Candidate != ref.Candidate || got.Outcome.Energy != ref.Outcome.Energy {
				t.Fatalf("seed=%d workers=%d: argmin moved under contention", seed, workers)
			}
		}
	}
}

// TestIncumbentBoundTighten covers the atomic min directly.
func TestIncumbentBoundTighten(t *testing.T) {
	b := newIncumbentBound()
	if !math.IsInf(b.load(), 1) {
		t.Fatalf("fresh bound = %v, want +Inf", b.load())
	}
	b.tighten(5)
	b.tighten(9) // higher value must not loosen
	if b.load() != 5 {
		t.Fatalf("bound = %v, want 5", b.load())
	}
	b.tighten(2)
	if b.load() != 2 {
		t.Fatalf("bound = %v, want 2", b.load())
	}
}

// TestEffectiveParallelism pins the knob's resolution rules.
func TestEffectiveParallelism(t *testing.T) {
	if got := EffectiveParallelism(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("EffectiveParallelism(0) = %d, want GOMAXPROCS", got)
	}
	if got := EffectiveParallelism(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("EffectiveParallelism(-3) = %d, want GOMAXPROCS", got)
	}
	if got := EffectiveParallelism(5); got != 5 {
		t.Errorf("EffectiveParallelism(5) = %d", got)
	}
	if got := EffectiveParallelism(MaxParallelism + 7); got != MaxParallelism {
		t.Errorf("EffectiveParallelism(cap+7) = %d, want %d", got, MaxParallelism)
	}
}
