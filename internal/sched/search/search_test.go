package search

import (
	"errors"
	"fmt"
	"testing"

	"rana/internal/pattern"
)

func TestStrategyValidateAndResolve(t *testing.T) {
	for _, s := range append(Strategies(), Strategy("")) {
		if err := s.Validate(); err != nil {
			t.Errorf("%q: %v", s, err)
		}
	}
	if err := Strategy("genetic").Validate(); err == nil {
		t.Error("unknown strategy validated")
	}
	if Strategy("").Resolve() != Pruned {
		t.Errorf("default strategy = %v, want pruned", Strategy("").Resolve())
	}
	if EffectiveWidth(0) != DefaultBeamWidth || EffectiveWidth(7) != 7 {
		t.Error("EffectiveWidth")
	}
}

func TestAxis(t *testing.T) {
	got := Axis(14, 16)
	want := []int{1, 2, 4, 8, 14}
	if len(got) != len(want) {
		t.Fatalf("Axis(14,16) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Axis(14,16) = %v, want %v", got, want)
		}
	}
	// The array width joins when it fits; values stay ascending and
	// deduplicated.
	got = Axis(64, 16)
	prev := 0
	has16, has64 := false, false
	for _, v := range got {
		if v <= prev {
			t.Fatalf("Axis(64,16) not strictly ascending: %v", got)
		}
		prev = v
		has16 = has16 || v == 16
		has64 = has64 || v == 64
	}
	if !has16 || !has64 {
		t.Errorf("Axis(64,16) = %v, missing array width or dim", got)
	}
}

func TestProductStreamsFullCrossProductInOrder(t *testing.T) {
	p := NewProduct([]int{1, 2}, []int{3}, []int{4, 5}, []int{6, 7})
	if p.Size() != 8 {
		t.Fatalf("Size = %d", p.Size())
	}
	var got []pattern.Tiling
	for {
		ti, ok := p.Next()
		if !ok {
			break
		}
		got = append(got, ti)
	}
	want := []pattern.Tiling{
		{Tm: 1, Tn: 3, Tr: 4, Tc: 6}, {Tm: 1, Tn: 3, Tr: 4, Tc: 7},
		{Tm: 1, Tn: 3, Tr: 5, Tc: 6}, {Tm: 1, Tn: 3, Tr: 5, Tc: 7},
		{Tm: 2, Tn: 3, Tr: 4, Tc: 6}, {Tm: 2, Tn: 3, Tr: 4, Tc: 7},
		{Tm: 2, Tn: 3, Tr: 5, Tc: 6}, {Tm: 2, Tn: 3, Tr: 5, Tc: 7},
	}
	if len(got) != len(want) {
		t.Fatalf("streamed %d tilings, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tiling %d = %v, want %v (historical Tm-major nesting)", i, got[i], want[i])
		}
	}
	// Exhausted stays exhausted; Reset rewinds.
	if _, ok := p.Next(); ok {
		t.Error("Next after exhaustion")
	}
	p.Reset()
	if ti, ok := p.Next(); !ok || ti != want[0] {
		t.Errorf("Reset: got %v/%v", ti, ok)
	}
}

func TestEmptyProduct(t *testing.T) {
	p := NewProduct(nil, []int{1}, []int{1}, []int{1})
	if p.Size() != 0 {
		t.Fatalf("Size = %d", p.Size())
	}
	if _, ok := p.Next(); ok {
		t.Error("empty product yielded a tiling")
	}
}

// synthetic builds a Problem over a fixed candidate table keyed by
// (kind, Tm): energies, feasibility and bounds are scripted so the
// strategies' selection logic is tested in isolation.
type entry struct {
	energy   float64
	feasible bool
	bound    float64
}

func synthetic(tilings []pattern.Tiling, kinds []pattern.Kind, table map[string]entry, evaluated *[]string) Problem[string] {
	key := func(k pattern.Kind, t pattern.Tiling) string { return fmt.Sprintf("%v/%d", k, t.Tm) }
	return Problem[string]{
		Space: NewSlice(tilings),
		Kinds: kinds,
		Bound: func(k pattern.Kind, t pattern.Tiling, _ Cell) float64 { return table[key(k, t)].bound },
		Evaluate: func(k pattern.Kind, t pattern.Tiling, _ Cell, out *Outcome[string]) error {
			id := key(k, t)
			e, ok := table[id]
			if !ok {
				return errors.New("no entry for " + id)
			}
			if evaluated != nil {
				*evaluated = append(*evaluated, id)
			}
			*out = Outcome[string]{Feasible: e.feasible, Energy: e.energy, Value: id}
			return nil
		},
	}
}

func tilingsN(n int) []pattern.Tiling {
	ts := make([]pattern.Tiling, n)
	for i := range ts {
		ts[i] = pattern.Tiling{Tm: i, Tn: 1, Tr: 1, Tc: 1}
	}
	return ts
}

// TestTieBreakKeepsEarliestCanonicalCandidate is the regression test
// pinning deterministic tie-breaking: among equal-energy feasible
// candidates, every strategy returns the earliest in canonical
// (kind-major, then tiling) enumeration order — the legacy pattern-major
// strict-< rule — so Pruned or any parallel variant can never silently
// flip equal-energy argmins.
func TestTieBreakKeepsEarliestCanonicalCandidate(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD, pattern.WD}
	// Equal minimum energy at three points; canonical order is
	// OD/0, OD/1, OD/2, WD/0, WD/1, WD/2 — the winner must be OD/1
	// (OD/0 is infeasible).
	table := map[string]entry{
		"OD/0": {energy: 5, feasible: false},
		"OD/1": {energy: 5, feasible: true},
		"OD/2": {energy: 5, feasible: true},
		"WD/0": {energy: 5, feasible: true},
		"WD/1": {energy: 6, feasible: true},
		"WD/2": {energy: 7, feasible: true},
	}
	for _, s := range Strategies() {
		r, err := Run(synthetic(tilingsN(3), kinds, table, nil), Options{Strategy: s, BeamWidth: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !r.Found || r.Outcome.Value != "OD/1" {
			t.Errorf("%s: chose %q (found=%v), want OD/1 — equal-energy tie must keep the earliest canonical candidate", s, r.Outcome.Value, r.Found)
		}
	}
	// A strictly cheaper later candidate still wins under WD even though
	// OD comes first in kind order.
	table["WD/2"] = entry{energy: 1, feasible: true}
	for _, s := range Strategies() {
		r, err := Run(synthetic(tilingsN(3), kinds, table, nil), Options{Strategy: s, BeamWidth: 10})
		if err != nil {
			t.Fatal(err)
		}
		if r.Outcome.Value != "WD/2" {
			t.Errorf("%s: chose %q, want WD/2", s, r.Outcome.Value)
		}
	}
}

// TestPrunedSkipsBoundedCandidatesButKeepsArgmin: candidates whose
// bound exceeds the incumbent are never priced; candidates whose bound
// merely *equals* the incumbent still are (they could tie and win the
// tie-break).
func TestPrunedSkipsBoundedCandidatesButKeepsArgmin(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD}
	table := map[string]entry{
		"OD/0": {energy: 10, feasible: true, bound: 1},
		"OD/1": {energy: 30, feasible: true, bound: 20}, // bound > incumbent 10: pruned
		"OD/2": {energy: 10, feasible: true, bound: 10}, // bound == incumbent: must be priced
		"OD/3": {energy: 4, feasible: true, bound: 3},   // new argmin
	}
	var evaluated []string
	r, err := Run(synthetic(tilingsN(4), kinds, table, &evaluated), Options{Strategy: Pruned})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome.Value != "OD/3" {
		t.Errorf("argmin = %q, want OD/3", r.Outcome.Value)
	}
	want := []string{"OD/0", "OD/2", "OD/3"}
	if len(evaluated) != len(want) {
		t.Fatalf("evaluated %v, want %v", evaluated, want)
	}
	for i := range want {
		if evaluated[i] != want[i] {
			t.Fatalf("evaluated %v, want %v", evaluated, want)
		}
	}
	if r.Stats.Pruned != 1 || r.Stats.Evaluated != 3 || r.Stats.Candidates != 4 {
		t.Errorf("stats = %+v", r.Stats)
	}
}

// TestBeamPricesOnlyTheMostPromising: with width 2, only the two
// best-bounded candidates are priced, and the beam's pick is the best
// among them even if the global optimum was dropped.
func TestBeamPricesOnlyTheMostPromising(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD}
	table := map[string]entry{
		"OD/0": {energy: 9, feasible: true, bound: 5},
		"OD/1": {energy: 2, feasible: true, bound: 8}, // global optimum, but poorly bounded
		"OD/2": {energy: 7, feasible: true, bound: 4},
		"OD/3": {energy: 8, feasible: true, bound: 6},
	}
	var evaluated []string
	r, err := Run(synthetic(tilingsN(4), kinds, table, &evaluated), Options{Strategy: Beam, BeamWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(evaluated) != 2 || evaluated[0] != "OD/0" || evaluated[1] != "OD/2" {
		t.Fatalf("evaluated %v, want [OD/0 OD/2] in canonical order", evaluated)
	}
	if r.Outcome.Value != "OD/2" {
		t.Errorf("beam pick = %q, want OD/2", r.Outcome.Value)
	}
	if r.Stats.Evaluated != 2 || r.Stats.Pruned != 2 {
		t.Errorf("stats = %+v", r.Stats)
	}
}

// TestBeamFallsBackWhenBudgetAllInfeasible: if every kept candidate is
// infeasible, the beam rescans the space branch-and-bound style rather
// than reporting no feasible tiling.
func TestBeamFallsBackWhenBudgetAllInfeasible(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD}
	table := map[string]entry{
		"OD/0": {energy: 1, feasible: false, bound: 1},
		"OD/1": {energy: 2, feasible: false, bound: 2},
		"OD/2": {energy: 9, feasible: true, bound: 9},
	}
	r, err := Run(synthetic(tilingsN(3), kinds, table, nil), Options{Strategy: Beam, BeamWidth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Found || r.Outcome.Value != "OD/2" {
		t.Errorf("fallback pick = %q (found=%v), want OD/2", r.Outcome.Value, r.Found)
	}
}

func TestRunPropagatesEvaluatorErrors(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD}
	p := synthetic(tilingsN(1), kinds, map[string]entry{}, nil) // empty table: every Evaluate errors
	for _, s := range Strategies() {
		if _, err := Run(p, Options{Strategy: s}); err == nil {
			t.Errorf("%s: evaluator error swallowed", s)
		}
		p.Space.Reset()
	}
}

func TestRunRejectsUnknownStrategy(t *testing.T) {
	p := synthetic(tilingsN(1), []pattern.Kind{pattern.OD}, map[string]entry{"OD/0": {energy: 1, feasible: true}}, nil)
	if _, err := Run(p, Options{Strategy: "annealing"}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestAdmitFiltersBeforeKinds(t *testing.T) {
	kinds := []pattern.Kind{pattern.OD, pattern.WD}
	table := map[string]entry{
		"OD/1": {energy: 2, feasible: true},
		"WD/1": {energy: 3, feasible: true},
	}
	p := synthetic(tilingsN(2), kinds, table, nil)
	p.Admit = func(t pattern.Tiling) bool { return t.Tm == 1 }
	r, err := Run(p, Options{Strategy: Exhaustive})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Tilings != 2 || r.Stats.Admitted != 1 || r.Stats.Candidates != 2 {
		t.Errorf("stats = %+v", r.Stats)
	}
	if r.Outcome.Value != "OD/1" {
		t.Errorf("pick = %q", r.Outcome.Value)
	}
}
