package search

// The parallel branch-and-bound scan. The candidate space is partitioned
// across a bounded worker pool; workers share the incumbent's exact
// energy through an atomic float so a good candidate found by one worker
// immediately tightens every other worker's pruning test.
//
// Determinism argument (the reduction can never move a golden schedule):
//
//  1. A candidate is pruned only when its admissible lower bound is
//     STRICTLY greater than the shared bound, and the shared bound is
//     only ever the exact energy of some feasible, already-evaluated
//     candidate. The global argmin's energy is ≤ every such value, so a
//     pruned candidate's exact energy is strictly greater than the
//     global minimum — it can neither win nor tie. Which candidates get
//     pruned varies with timing; whether the argmin survives does not.
//  2. Every surviving feasible candidate flows into a per-worker
//     incumbent kept under the canonical preference order (prefer:
//     energy, then kind index, then tiling index), and the final
//     reduction folds the per-worker incumbents through the same order.
//     prefer is a strict total order on candidates (no two candidates
//     share (KindIdx, TilingIdx)), so the fold's result is the unique
//     preference-minimal survivor regardless of partition or timing —
//     exactly what the sequential strict-< first-wins loop returns.
//
// Work accounting (Stats) is deterministic for Tilings, Admitted and
// Candidates; the Bounded/Pruned/Evaluated split legitimately varies
// with how early the shared bound tightens. The invariant
// Candidates == Evaluated + Pruned holds on every error-free run.

import (
	"math"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"rana/internal/pattern"
)

// stack snapshots the panicking worker's stack for the re-raised value.
func stack() []byte { return debug.Stack() }

// tilingAt is one admitted tiling with its canonical enumeration index.
type tilingAt struct {
	t  pattern.Tiling
	ti int
}

// admittedPool recycles the materialized admitted-tiling scratch across
// explorations so the steady-state parallel scan allocates no per-layer
// slice.
var admittedPool = sync.Pool{
	New: func() any { return new([]tilingAt) },
}

// collectAdmitted drains the space once — sequentially, so Tilings and
// Admitted stay deterministic and the canonical tiling indices match the
// streaming loop's — into a pooled scratch slice. The caller must hand
// the slice back via releaseAdmitted.
func collectAdmitted[T any](p Problem[T], stats *Stats) *[]tilingAt {
	buf := admittedPool.Get().(*[]tilingAt)
	admitted := (*buf)[:0]
	for ti := 0; ; ti++ {
		t, ok := p.Space.Next()
		if !ok {
			break
		}
		stats.Tilings++
		if p.Admit != nil && !p.Admit(t) {
			continue
		}
		stats.Admitted++
		admitted = append(admitted, tilingAt{t: t, ti: ti})
	}
	*buf = admitted
	return buf
}

func releaseAdmitted(buf *[]tilingAt) {
	*buf = (*buf)[:0]
	admittedPool.Put(buf)
}

// incumbentBound is the shared atomic upper bound on the optimum: the
// smallest exact energy of any feasible candidate evaluated so far,
// starting at +Inf. It only ever decreases.
type incumbentBound struct {
	bits atomic.Uint64
}

func newIncumbentBound() *incumbentBound {
	b := &incumbentBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

func (b *incumbentBound) load() float64 {
	return math.Float64frombits(b.bits.Load())
}

// tighten lowers the bound to e if e is smaller (monotone CAS loop).
func (b *incumbentBound) tighten(e float64) {
	for {
		cur := b.bits.Load()
		if math.Float64frombits(cur) <= e {
			return
		}
		if b.bits.CompareAndSwap(cur, math.Float64bits(e)) {
			return
		}
	}
}

// workerPanic carries a panic out of a worker goroutine so the
// coordinating goroutine can re-raise it where the scheduler's per-layer
// recover (sched.PanicError) can see it. The original worker stack rides
// along for diagnosis.
type workerPanic struct {
	Value any
	Stack []byte
}

// workerFailure is one worker's first evaluator error, tagged with the
// candidate position so the coordinator can surface a canonical-earliest
// error when several workers fail in one run.
type workerFailure struct {
	err error
	c   Candidate
}

// scanParallel is scan with the admitted space partitioned across
// `workers` goroutines. Plans are byte-identical to the sequential scan
// by the argument at the top of this file.
func scanParallel[T any](p Problem[T], prune bool, workers int) (Result[T], error) {
	var r Result[T]
	buf := collectAdmitted(p, &r.Stats)
	defer releaseAdmitted(buf)
	admitted := *buf

	points, travs, maps := p.points(), p.travs(), p.maps()
	if workers > len(admitted) {
		workers = len(admitted)
	}
	if workers <= 1 || len(p.Kinds) == 0 {
		// Too little work to fan out: finish on the calling goroutine.
		seq, err := scanSlice(p, prune, admitted)
		seq.Stats.Add(r.Stats)
		return seq, err
	}
	r.Stats.Workers = workers

	// Workers pull fixed batches of tilings through an atomic cursor —
	// cheap dynamic load balancing without channels — and prune against
	// the shared incumbent bound.
	batch := len(admitted) / (workers * 8)
	if batch < 1 {
		batch = 1
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		shared = newIncumbentBound()
		wg     sync.WaitGroup

		locals   = make([]Result[T], workers)
		failures = make([]*workerFailure, workers)
		panics   = make([]*workerPanic, workers)
	)
	prune = prune && p.Bound != nil
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics[w] = &workerPanic{Value: v, Stack: stack()}
					failed.Store(true)
				}
			}()
			// Each worker owns its own incremental pricing context: the
			// per-axis caches are scan-local state, so sharing one across
			// goroutines would race and (worse) thrash invalidation.
			var pricer Pricer
			if prune && p.NewPricer != nil {
				pricer = p.NewPricer()
				defer pricer.Release()
			}
			local := &locals[w]
			out := p.newOutcome()
			defer p.freeOutcome(out)
			for !failed.Load() {
				lo := int(cursor.Add(int64(batch))) - batch
				if lo >= len(admitted) {
					return
				}
				hi := lo + batch
				if hi > len(admitted) {
					hi = len(admitted)
				}
				for _, ta := range admitted[lo:hi] {
					for ki, k := range p.Kinds {
						for pi := 0; pi < points; pi++ {
							for tv := 0; tv < travs; tv++ {
								for mi := 0; mi < maps; mi++ {
									local.Stats.Candidates++
									cell := Cell{Point: pi, Trav: tv, Map: mi}
									if prune {
										if best := shared.load(); !math.IsInf(best, 1) {
											local.Stats.Bounded++
											// Strictly greater only, exactly like the
											// sequential scan: an exact tie could still
											// win the deterministic tie-break.
											var lb float64
											if pricer != nil {
												lb = pricer.Lower(k, ta.t, cell)
											} else {
												lb = p.Bound(k, ta.t, cell)
											}
											if lb > best {
												local.Stats.Pruned++
												continue
											}
										}
									}
									if err := p.Evaluate(k, ta.t, cell, out); err != nil {
										if failures[w] == nil {
											failures[w] = &workerFailure{err: err,
												c: Candidate{Kind: k, KindIdx: ki, Tiling: ta.t, TilingIdx: ta.ti, PointIdx: pi, TravIdx: tv, MapIdx: mi}}
										}
										failed.Store(true)
										return
									}
									local.Stats.Evaluated++
									if !out.Feasible {
										continue
									}
									c := Candidate{Kind: k, KindIdx: ki, Tiling: ta.t, TilingIdx: ta.ti, PointIdx: pi, TravIdx: tv, MapIdx: mi}
									if !local.Found || prefer(out.Energy, c, local.Outcome.Energy, local.Candidate) {
										local.Found, local.Candidate, local.Outcome = true, c, *out
									}
									shared.tighten(out.Energy)
								}
							}
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()

	for _, pv := range panics {
		if pv != nil {
			// Re-raise on the coordinating goroutine: the scheduler's
			// per-layer recover converts it into a *sched.PanicError so a
			// poisoned candidate cannot kill a serving process.
			panic(pv)
		}
	}
	var fail *workerFailure
	for _, f := range failures {
		if f == nil {
			continue
		}
		if fail == nil || canonicalBefore(f.c, fail.c) {
			fail = f
		}
	}
	for w := range locals {
		l := &locals[w]
		r.Stats.Add(l.Stats)
		if !l.Found {
			continue
		}
		if !r.Found || prefer(l.Outcome.Energy, l.Candidate, r.Outcome.Energy, r.Candidate) {
			r.Found, r.Candidate, r.Outcome = true, l.Candidate, l.Outcome
		}
	}
	r.Stats.Workers = workers
	if fail != nil {
		return Result[T]{}, fail.err
	}
	return r, nil
}

// scanSlice is the sequential inner loop over a pre-admitted tiling
// list — the degenerate tail of scanParallel when the space is too small
// to justify goroutines. Tilings/Admitted are the caller's; this only
// accounts candidate work.
func scanSlice[T any](p Problem[T], prune bool, admitted []tilingAt) (Result[T], error) {
	var r Result[T]
	r.Stats.Workers = 1
	prune = prune && p.Bound != nil
	points, travs, maps := p.points(), p.travs(), p.maps()
	var pricer Pricer
	if prune && p.NewPricer != nil {
		pricer = p.NewPricer()
		defer pricer.Release()
	}
	out := p.newOutcome()
	defer p.freeOutcome(out)
	for _, ta := range admitted {
		for ki, k := range p.Kinds {
			for pi := 0; pi < points; pi++ {
				for tv := 0; tv < travs; tv++ {
					for mi := 0; mi < maps; mi++ {
						r.Stats.Candidates++
						cell := Cell{Point: pi, Trav: tv, Map: mi}
						if prune && r.Found {
							r.Stats.Bounded++
							var lb float64
							if pricer != nil {
								lb = pricer.Lower(k, ta.t, cell)
							} else {
								lb = p.Bound(k, ta.t, cell)
							}
							if lb > r.Outcome.Energy {
								r.Stats.Pruned++
								continue
							}
						}
						if err := p.Evaluate(k, ta.t, cell, out); err != nil {
							return Result[T]{}, err
						}
						r.Stats.Evaluated++
						if !out.Feasible {
							continue
						}
						c := Candidate{Kind: k, KindIdx: ki, Tiling: ta.t, TilingIdx: ta.ti, PointIdx: pi, TravIdx: tv, MapIdx: mi}
						if !r.Found || prefer(out.Energy, c, r.Outcome.Energy, r.Candidate) {
							r.Found, r.Candidate, r.Outcome = true, c, *out
						}
					}
				}
			}
		}
	}
	return r, nil
}
