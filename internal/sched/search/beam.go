package search

import (
	"container/heap"
	"sync"
	"sync/atomic"
)

// scored is one candidate with its lower bound, awaiting exact pricing.
type scored struct {
	c     Candidate
	bound float64
}

// worse orders scored candidates by descending promise: larger bound
// first, later canonical position first on ties — exactly the candidate
// a full beam evicts next, so the kept set (and therefore the beam's
// result) is deterministic regardless of evaluation cost or timing.
func worse(a, b scored) bool {
	if a.bound != b.bound {
		return a.bound > b.bound
	}
	if a.c.KindIdx != b.c.KindIdx {
		return a.c.KindIdx > b.c.KindIdx
	}
	if a.c.TilingIdx != b.c.TilingIdx {
		return a.c.TilingIdx > b.c.TilingIdx
	}
	if a.c.PointIdx != b.c.PointIdx {
		return a.c.PointIdx > b.c.PointIdx
	}
	if a.c.TravIdx != b.c.TravIdx {
		return a.c.TravIdx > b.c.TravIdx
	}
	return a.c.MapIdx > b.c.MapIdx
}

// beamHeap is a max-heap by worse — the root is the least promising
// kept candidate, the one a better arrival displaces.
type beamHeap []scored

func (h beamHeap) Len() int           { return len(h) }
func (h beamHeap) Less(i, j int) bool { return worse(h[i], h[j]) }
func (h beamHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *beamHeap) Push(x any)        { *h = append(*h, x.(scored)) }
func (h *beamHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// beam runs the budgeted top-K strategy: bound every candidate in one
// streaming pass, keep the width most promising, price only those. If
// none of the kept candidates turns out feasible, the bound budget was
// spent on infeasible space — fall back to a full branch-and-bound
// rescan so Beam never reports "no feasible tiling" when one exists.
//
// Beam composes with parallelism: the bounding pass stays sequential
// (it is the cheap streaming part and keeps the kept set trivially
// deterministic), while the expensive exact pricing of the kept set
// fans out across the worker pool. The survivors are sorted into
// canonical order *before* the fan-out and reduced in that same order
// afterwards, so the first-wins strict-< rule sees them exactly as the
// sequential loop would.
func beam[T any](p Problem[T], width, workers int) (Result[T], error) {
	var r Result[T]
	r.Stats.Workers = 1
	points, travs, maps := p.points(), p.travs(), p.maps()
	// The bounding pass is sequential, so one pricing context covers it;
	// the feasibility-fallback rescan below acquires its own.
	var pricer Pricer
	if p.Bound != nil && p.NewPricer != nil {
		pricer = p.NewPricer()
		defer pricer.Release()
	}
	kept := make(beamHeap, 0, width)
	for ti := 0; ; ti++ {
		t, ok := p.Space.Next()
		if !ok {
			break
		}
		r.Stats.Tilings++
		if p.Admit != nil && !p.Admit(t) {
			continue
		}
		r.Stats.Admitted++
		for ki, k := range p.Kinds {
			for pi := 0; pi < points; pi++ {
				for tv := 0; tv < travs; tv++ {
					for mi := 0; mi < maps; mi++ {
						r.Stats.Candidates++
						s := scored{c: Candidate{Kind: k, KindIdx: ki, Tiling: t, TilingIdx: ti, PointIdx: pi, TravIdx: tv, MapIdx: mi}}
						if p.Bound != nil {
							r.Stats.Bounded++
							if pricer != nil {
								s.bound = pricer.Lower(k, t, s.c.Cell())
							} else {
								s.bound = p.Bound(k, t, s.c.Cell())
							}
						}
						switch {
						case len(kept) < width:
							heap.Push(&kept, s)
						case worse(kept[0], s):
							kept[0] = s
							heap.Fix(&kept, 0)
							r.Stats.Pruned++
						default:
							r.Stats.Pruned++
						}
					}
				}
			}
		}
	}

	// Price the survivors in canonical preference order so the plain
	// first-wins strict-< rule reproduces the shared tie-break.
	ordered := make([]scored, len(kept))
	copy(ordered, kept)
	sortCanonical(ordered)
	outs, firstErr := priceOrdered(p, ordered, workers, &r.Stats)
	if firstErr != nil {
		return Result[T]{}, firstErr
	}
	for i, s := range ordered {
		out := outs[i]
		if !out.Feasible {
			continue
		}
		if !r.Found || prefer(out.Energy, s.c, r.Outcome.Energy, r.Candidate) {
			r.Found, r.Candidate, r.Outcome = true, s.c, out
		}
	}
	if !r.Found {
		p.Space.Reset()
		var full Result[T]
		var err error
		if workers > 1 {
			full, err = scanParallel(p, p.Bound != nil, workers)
		} else {
			full, err = scan(p, p.Bound != nil)
		}
		if err != nil {
			return Result[T]{}, err
		}
		full.Stats.Add(r.Stats)
		return full, nil
	}
	return r, nil
}

// priceOrdered evaluates the canonically sorted survivors, fanning the
// exact pricer across the worker pool when workers > 1. Results land in
// an index-aligned slice so the caller's sequential reduction is
// oblivious to evaluation order; on errors the canonically earliest one
// wins (index order == canonical order here).
func priceOrdered[T any](p Problem[T], ordered []scored, workers int, stats *Stats) ([]Outcome[T], error) {
	outs := make([]Outcome[T], len(ordered))
	if workers > len(ordered) {
		workers = len(ordered)
	}
	if workers <= 1 {
		for i, s := range ordered {
			if err := p.Evaluate(s.c.Kind, s.c.Tiling, s.c.Cell(), &outs[i]); err != nil {
				return nil, err
			}
			stats.Evaluated++
		}
		return outs, nil
	}
	if workers > stats.Workers {
		stats.Workers = workers
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
		errs   = make([]error, len(ordered))
		panics = make([]*workerPanic, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panics[w] = &workerPanic{Value: v, Stack: stack()}
					failed.Store(true)
				}
			}()
			for !failed.Load() {
				i := int(cursor.Add(1)) - 1
				if i >= len(ordered) {
					return
				}
				if err := p.Evaluate(ordered[i].c.Kind, ordered[i].c.Tiling, ordered[i].c.Cell(), &outs[i]); err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, pv := range panics {
		if pv != nil {
			panic(pv)
		}
	}
	evaluated := 0
	var firstErr error
	for i := range ordered {
		if errs[i] != nil {
			firstErr = errs[i]
			break
		}
		evaluated++
	}
	if firstErr != nil {
		return nil, firstErr
	}
	stats.Evaluated += evaluated
	return outs, nil
}

// sortCanonical orders survivors by (kind index, tiling index, point
// index, traversal index, mapping index) — the canonical enumeration
// order ties are defined over. Insertion sort: the beam is small and
// the input nearly unordered heap backing.
func sortCanonical(xs []scored) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && canonicalBefore(xs[j].c, xs[j-1].c); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// canonicalBefore reports whether a precedes b in canonical order.
func canonicalBefore(a, b Candidate) bool {
	if a.KindIdx != b.KindIdx {
		return a.KindIdx < b.KindIdx
	}
	if a.TilingIdx != b.TilingIdx {
		return a.TilingIdx < b.TilingIdx
	}
	if a.PointIdx != b.PointIdx {
		return a.PointIdx < b.PointIdx
	}
	if a.TravIdx != b.TravIdx {
		return a.TravIdx < b.TravIdx
	}
	return a.MapIdx < b.MapIdx
}
