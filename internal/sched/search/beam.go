package search

import "container/heap"

// scored is one candidate with its lower bound, awaiting exact pricing.
type scored struct {
	c     Candidate
	bound float64
}

// worse orders scored candidates by descending promise: larger bound
// first, later canonical position first on ties — exactly the candidate
// a full beam evicts next, so the kept set (and therefore the beam's
// result) is deterministic regardless of evaluation cost or timing.
func worse(a, b scored) bool {
	if a.bound != b.bound {
		return a.bound > b.bound
	}
	if a.c.KindIdx != b.c.KindIdx {
		return a.c.KindIdx > b.c.KindIdx
	}
	return a.c.TilingIdx > b.c.TilingIdx
}

// beamHeap is a max-heap by worse — the root is the least promising
// kept candidate, the one a better arrival displaces.
type beamHeap []scored

func (h beamHeap) Len() int           { return len(h) }
func (h beamHeap) Less(i, j int) bool { return worse(h[i], h[j]) }
func (h beamHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *beamHeap) Push(x any)        { *h = append(*h, x.(scored)) }
func (h *beamHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// beam runs the budgeted top-K strategy: bound every candidate in one
// streaming pass, keep the width most promising, price only those. If
// none of the kept candidates turns out feasible, the bound budget was
// spent on infeasible space — fall back to a full branch-and-bound
// rescan so Beam never reports "no feasible tiling" when one exists.
func beam[T any](p Problem[T], width int) (Result[T], error) {
	var r Result[T]
	kept := make(beamHeap, 0, width)
	for ti := 0; ; ti++ {
		t, ok := p.Space.Next()
		if !ok {
			break
		}
		r.Stats.Tilings++
		if p.Admit != nil && !p.Admit(t) {
			continue
		}
		r.Stats.Admitted++
		for ki, k := range p.Kinds {
			r.Stats.Candidates++
			s := scored{c: Candidate{Kind: k, KindIdx: ki, Tiling: t, TilingIdx: ti}}
			if p.Bound != nil {
				r.Stats.Bounded++
				s.bound = p.Bound(k, t)
			}
			switch {
			case len(kept) < width:
				heap.Push(&kept, s)
			case worse(kept[0], s):
				kept[0] = s
				heap.Fix(&kept, 0)
				r.Stats.Pruned++
			default:
				r.Stats.Pruned++
			}
		}
	}

	// Price the survivors in canonical preference order so the plain
	// first-wins strict-< rule reproduces the shared tie-break.
	ordered := make([]scored, len(kept))
	copy(ordered, kept)
	sortCanonical(ordered)
	for _, s := range ordered {
		out, err := p.Evaluate(s.c.Kind, s.c.Tiling)
		if err != nil {
			return Result[T]{}, err
		}
		r.Stats.Evaluated++
		if !out.Feasible {
			continue
		}
		if !r.Found || prefer(out.Energy, s.c, r.Outcome.Energy, r.Candidate) {
			r.Found, r.Candidate, r.Outcome = true, s.c, out
		}
	}
	if !r.Found {
		p.Space.Reset()
		full, err := scan(p, p.Bound != nil)
		if err != nil {
			return Result[T]{}, err
		}
		full.Stats.add(r.Stats)
		return full, nil
	}
	return r, nil
}

// sortCanonical orders survivors by (kind index, tiling index) — the
// canonical enumeration order ties are defined over. Insertion sort: the
// beam is small and the input nearly unordered heap backing.
func sortCanonical(xs []scored) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && canonicalBefore(xs[j].c, xs[j-1].c); j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// canonicalBefore reports whether a precedes b in canonical order.
func canonicalBefore(a, b Candidate) bool {
	if a.KindIdx != b.KindIdx {
		return a.KindIdx < b.KindIdx
	}
	return a.TilingIdx < b.TilingIdx
}
