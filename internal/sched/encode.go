package sched

// The stable wire encoding of a compiled schedule. One projection of
// Plan is shared by three consumers so they can never drift apart: the
// golden regression files under testdata/golden, the `rana-sched -json`
// CLI output, and the ranad serving API's /v1/schedule responses.
//
// The encoding carries what an execution phase (or a downstream tool)
// needs to reproduce the schedule's decisions — per layer the chosen
// pattern and tiling, the refresh decision, the bank allocation and the
// Eq. 14 operation counts, plus the network totals. Quantities that
// re-derive from these (per-bank flag vectors, priced energy components)
// are intentionally omitted; internal/verify covers them.

import (
	"rana/internal/mem"
	"rana/internal/memctrl"
	"rana/internal/pattern"
)

// PlanJSON is the serialized view of a whole-network schedule. Backend
// and the per-layer operating points are omitted on the default path
// (default technology adapter, nominal corner), so pre-backend plans —
// and therefore the committed goldens — encode byte-identically.
type PlanJSON struct {
	Network string `json:"network"`
	// Backend names the memory-technology backend the plan was priced
	// against; empty/omitted means the config's default adapter.
	Backend  string      `json:"backend,omitempty"`
	Layers   []LayerJSON `json:"layers"`
	MACs     uint64      `json:"macs"`
	Buffer   uint64      `json:"buffer_accesses"`
	Refresh  uint64      `json:"refresh_words"`
	DDR      uint64      `json:"ddr_accesses"`
	EnergyPJ float64     `json:"energy_pj"`
	ExecNs   int64       `json:"exec_ns"`
}

// LayerJSON is one layer's serialized configuration.
type LayerJSON struct {
	Name    string         `json:"name"`
	Pattern string         `json:"pattern"`
	Tiling  pattern.Tiling `json:"tiling"`
	// Point is the chosen memory-backend operating point; omitted at
	// the nominal corner.
	Point string `json:"op,omitempty"`
	// Traversal is the chosen tile traversal order; omitted for the
	// linear nest. Mapping is the chosen data-mapping policy; omitted
	// for row-major placement. Defaults omit both, so pre-axis plans —
	// and the committed goldens — encode byte-identically.
	Traversal string        `json:"traversal,omitempty"`
	Mapping   string        `json:"mapping,omitempty"`
	Needs     memctrl.Needs `json:"needs"`
	Alloc     [3]int        `json:"alloc"`
	Refresh   uint64        `json:"refresh_words"`
	ExecNs    int64         `json:"exec_ns"`
}

// Encode projects a plan onto the wire encoding.
func Encode(p *Plan) PlanJSON {
	g := PlanJSON{
		Network:  p.Network.Name,
		Backend:  mem.NormalizeName(p.Options.Backend, p.Config.BufferTech),
		MACs:     p.Totals.MACs,
		Buffer:   p.Totals.BufferAccesses,
		Refresh:  p.Totals.Refreshes,
		DDR:      p.Totals.DDRAccesses,
		EnergyPJ: p.Energy.Total(),
		ExecNs:   p.ExecTime.Nanoseconds(),
	}
	for i, lp := range p.Layers {
		g.Layers = append(g.Layers, LayerJSON{
			Name:      p.Network.Layers[i].Name,
			Pattern:   lp.Analysis.Pattern.String(),
			Tiling:    lp.Analysis.Tiling,
			Point:     lp.Point,
			Traversal: lp.Traversal,
			Mapping:   lp.Mapping,
			Needs:     lp.Needs,
			Alloc:     [3]int{lp.Alloc.InputBanks, lp.Alloc.OutputBanks, lp.Alloc.WeightBanks},
			Refresh:   lp.Counts.Refreshes,
			ExecNs:    lp.Analysis.ExecTime.Nanoseconds(),
		})
	}
	return g
}
