package sched

// The zero-allocation compile path. ExploreNetworkInto is
// ExploreNetworkContext writing into a caller-owned Plan, with every
// piece of per-compile scratch leased from sync.Pools:
//
//   - a compileState arena holds the per-layer result/err/key slices,
//     the memo-signature build buffer and its interned string;
//   - an exploreState arena (one per exploring goroutine) holds the
//     candidate axis scratch, the streaming tiling space, the pooled
//     bound evaluator, the backend point/table scratch and the four
//     search closures, all created once and re-pointed per layer;
//   - the implicit per-compile Memo and PrefixMemo are pooled too, and
//     reset on release so per-compile hit rates stay honest.
//
// Ownership: a leased arena belongs to exactly one compile (one
// goroutine for exploreState) from Get to Put; nothing borrowed from an
// arena may outlive the compile — results are *copied* into the Plan,
// never aliased. The AllocsPerRun gates in alloc_test.go pin the two
// steady states this buys: a warm-memo compile and the steady-state
// explore loop both run allocation-free.

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched/search"
)

// compileEnv is the per-compile exploration environment resolved once
// from the options: the parsed traversal and mapping axes, and the
// prefix memo incremental pricing shares across the compile's layers.
type compileEnv struct {
	travs  []pattern.Traversal
	maps   []MappingPolicy
	prefix *PrefixMemo
}

// The shared default axes the empty specs resolve to. Read-only by
// contract: env consumers only ever index them.
var (
	defaultTraversalAxis = []pattern.Traversal{pattern.Linear}
	defaultMappingAxis   = []MappingPolicy{RowMajorMapping}
)

// envFor parses the options' traversal and mapping specs once per
// compile. Both parsers put the default at index 0, so a default-only
// axis reproduces the historical candidate stream; the empty specs
// resolve to shared singleton axes without parsing at all.
func envFor(opts Options) (compileEnv, error) {
	env := compileEnv{travs: defaultTraversalAxis, maps: defaultMappingAxis}
	if opts.Traversal != "" {
		travs, err := ParseTraversalSpec(opts.Traversal)
		if err != nil {
			return env, err
		}
		env.travs = travs
	}
	if opts.Mapping != "" {
		maps, err := ParseMappingSpec(opts.Mapping)
		if err != nil {
			return env, err
		}
		env.maps = maps
	}
	return env, nil
}

// exploreState is one exploring goroutine's reusable scratch arena. The
// four search closures are created once per state and read the current
// layer through the state fields, so re-pointing the state at a new
// layer costs no closure allocations.
type exploreState struct {
	l    models.ConvLayer
	e    models.ConvLayer
	cfg  hw.Config
	opts Options
	env  compileEnv
	bk   mem.Backend

	points   []mem.OperatingPoint
	ptTables []energy.Table
	tables   []energy.Table
	axes     []int
	fixed    [1]pattern.Tiling
	product  search.Product
	slice    search.Slice
	b        bound

	admit     func(pattern.Tiling) bool
	boundFn   func(pattern.Kind, pattern.Tiling, search.Cell) float64
	newPricer func() search.Pricer
	evaluate  func(pattern.Kind, pattern.Tiling, search.Cell, *search.Outcome[LayerPlan]) error
}

func newExploreState() *exploreState {
	s := &exploreState{}
	s.admit = func(t pattern.Tiling) bool { return t.FitsCore(s.e, s.cfg) }
	s.boundFn = s.b.lower
	s.newPricer = func() search.Pricer { return acquirePricer(&s.b, s.env.prefix) }
	s.evaluate = func(k pattern.Kind, t pattern.Tiling, cell search.Cell, out *search.Outcome[LayerPlan]) error {
		if err := evaluateCellInto(&out.Value, s.l, k, t, s.cfg, s.opts, s.bk,
			s.points[cell.Point], s.env.travs[cell.Trav], s.env.maps[cell.Map]); err != nil {
			return err
		}
		out.Feasible = out.Value.Analysis.Feasible
		out.Energy = out.Value.Energy.Total()
		return nil
	}
	return s
}

var exploreStatePool = sync.Pool{New: func() any { return newExploreState() }}

// outcomePool backs the search engine's per-goroutine scratch Outcome
// (Problem.NewOutcome): the scratch crosses the Evaluate indirection,
// so the engine cannot keep it on the stack, and pooling the buffer is
// what keeps the per-scan lease off the steady-state allocation count.
var outcomePool = sync.Pool{New: func() any { return new(search.Outcome[LayerPlan]) }}

func getOutcome() *search.Outcome[LayerPlan]  { return outcomePool.Get().(*search.Outcome[LayerPlan]) }
func putOutcome(o *search.Outcome[LayerPlan]) { outcomePool.Put(o) }

// release drops the per-layer references (so a pooled state cannot
// pin a network's layers or a caller's options alive) and returns the
// state; the scratch slices keep their capacity.
func (s *exploreState) release() {
	s.l, s.e = models.ConvLayer{}, models.ConvLayer{}
	s.opts = Options{}
	s.env = compileEnv{}
	s.bk = nil
	exploreStatePool.Put(s)
}

// exploreLayerEnv runs one layer's exploration against a resolved
// compile environment, leasing the goroutine's scratch arena from the
// pool. This is the single exploration path: exploreLayer resolves a
// standalone environment and lands here.
func exploreLayerEnv(l models.ConvLayer, cfg hw.Config, opts Options, env compileEnv) (LayerPlan, search.Stats, error) {
	s := exploreStatePool.Get().(*exploreState)
	defer s.release()
	return s.explore(l, cfg, opts, env)
}

func (s *exploreState) explore(l models.ConvLayer, cfg hw.Config, opts Options, env compileEnv) (LayerPlan, search.Stats, error) {
	var err error
	s.bk, s.points, err = appendBackendPoints(s.points[:0], cfg, opts, opts.layerBudget(l.Name), l.Name)
	if err != nil {
		return LayerPlan{}, search.Stats{}, err
	}
	if opts.NaturalTiling {
		return naturalSchedule(l, cfg, opts, s.bk, s.points[0])
	}
	s.l, s.cfg, s.opts, s.env = l, cfg, opts, env
	s.e = effectiveLayer(l)
	var space search.Space
	if opts.FixedTiling != nil {
		s.fixed[0] = *opts.FixedTiling
		s.slice.Init(s.fixed[:])
		space = &s.slice
	} else {
		// All four axes share one scratch slice; the boundaries are
		// recorded first and sub-sliced only after the final append, so
		// growth reallocations cannot leave a stale sub-slice behind.
		a := search.AppendAxis(s.axes[:0], s.e.M, cfg.ArrayM)
		m1 := len(a)
		a = search.AppendAxis(a, s.e.N, cfg.ArrayN)
		n1 := len(a)
		a = search.AppendAxis(a, s.e.R(), cfg.ArrayM)
		r1 := len(a)
		a = search.AppendAxis(a, s.e.C(), cfg.ArrayN)
		s.axes = a
		s.product.Init(a[:m1], a[m1:n1], a[n1:r1], a[r1:])
		space = &s.product
	}
	s.ptTables = appendPointTables(s.ptTables[:0], s.points)
	s.tables = appendMappingTables(s.tables[:0], s.ptTables, env.maps)
	s.b.init(l, cfg, s.tables, len(s.points), env.travs)
	prob := search.Problem[LayerPlan]{
		Space:       space,
		Kinds:       opts.Patterns,
		Admit:       s.admit,
		Points:      len(s.points),
		Travs:       len(env.travs),
		Maps:        len(env.maps),
		Bound:       s.boundFn,
		Evaluate:    s.evaluate,
		NewOutcome:  getOutcome,
		FreeOutcome: putOutcome,
	}
	if !opts.DisableIncremental {
		prob.NewPricer = s.newPricer
	}
	r, err := search.Run(prob, search.Options{Strategy: opts.Search, BeamWidth: opts.BeamWidth, Parallelism: opts.Parallelism})
	if err != nil {
		return LayerPlan{}, r.Stats, err
	}
	if !r.Found {
		return LayerPlan{}, r.Stats, fmt.Errorf("no feasible tiling for layer %q", l.Name)
	}
	return r.Outcome.Value, r.Stats, nil
}

// compileState is one compile's arena: the per-layer slices, the miss
// work list and the signature build buffer with its interned string.
type compileState struct {
	plans  []LayerPlan
	stats  []search.Stats
	hits   []bool
	keys   []memoKey
	errs   []error
	miss   []int
	sigBuf []byte
	sig    string
}

var compileStatePool = sync.Pool{New: func() any { return new(compileState) }}

// grow sizes the per-layer slices to n layers, clearing reused storage.
func (cs *compileState) grow(n int) {
	if cap(cs.plans) < n {
		cs.plans = make([]LayerPlan, n)
		cs.stats = make([]search.Stats, n)
		cs.hits = make([]bool, n)
		cs.keys = make([]memoKey, n)
		cs.errs = make([]error, n)
	}
	cs.plans = cs.plans[:n]
	clear(cs.plans)
	cs.stats = cs.stats[:n]
	clear(cs.stats)
	cs.hits = cs.hits[:n]
	clear(cs.hits)
	cs.keys = cs.keys[:n]
	cs.errs = cs.errs[:n]
	clear(cs.errs)
	cs.miss = cs.miss[:0]
}

// internSignature rebuilds the options signature into the reused buffer
// and re-interns the string only when the bytes changed — the common
// case (same options compile after compile) costs zero allocations.
func (cs *compileState) internSignature(opts Options) string {
	cs.sigBuf = opts.appendSignature(cs.sigBuf[:0])
	if string(cs.sigBuf) != cs.sig {
		cs.sig = string(cs.sigBuf)
	}
	return cs.sig
}

// runLayer explores one layer (through the memo when present) into the
// arena's slot i, converting panics into structured per-layer errors so
// long-lived callers (ranad) survive poisoned inputs.
func (cs *compileState) runLayer(i int, l models.ConvLayer, cfg hw.Config, opts Options, memo *Memo, env compileEnv) {
	defer cs.recoverLayer(i)
	if memo != nil {
		cs.plans[i], cs.stats[i], cs.hits[i], cs.errs[i] = memo.exploreEnv(cs.keys[i], l, cfg, opts, env)
	} else {
		cs.plans[i], cs.stats[i], cs.errs[i] = exploreLayerEnv(l, cfg, opts, env)
	}
}

// drainParallel fans the miss list across a bounded worker pool sharing
// an atomic cursor. Workers claim indices until the list is exhausted or
// the context cancels; the canceled claim records ctx.Err() on its layer
// so the caller's error sweep reports how far the schedule got.
func (cs *compileState) drainParallel(ctx context.Context, net models.Network, cfg hw.Config,
	opts Options, memo *Memo, env compileEnv, workers int) {
	var wg sync.WaitGroup
	var cursor atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				idx := int(cursor.Add(1)) - 1
				if idx >= len(cs.miss) {
					return
				}
				i := cs.miss[idx]
				if err := ctx.Err(); err != nil {
					cs.errs[i] = err
					return
				}
				cs.runLayer(i, net.Layers[i], cfg, opts, memo, env)
			}
		}()
	}
	wg.Wait()
}

func (cs *compileState) recoverLayer(i int) {
	if r := recover(); r != nil {
		cs.errs[i] = &PanicError{Value: r, Stack: debug.Stack()}
	}
}

// releaseCompile returns the compile's leased arenas. Top-level (not a
// closure) so the deferred call in ExploreNetworkInto stays open-coded
// and allocation-free.
func releaseCompile(cs *compileState, memo *Memo, pooledMemo bool, prefix *PrefixMemo, pooledPrefix bool) {
	compileStatePool.Put(cs)
	if pooledMemo {
		putCompileMemo(memo)
	}
	if pooledPrefix {
		putCompilePrefix(prefix)
	}
}

// ExploreNetworkInto is ExploreNetworkContext writing the schedule into
// a caller-owned Plan (whose Layers slice is reused when its capacity
// allows) instead of allocating a fresh one — the steady-state entry
// point for callers compiling in a loop. p's previous contents are
// fully overwritten; on error p is left in an unspecified state.
//
// The compile runs in two phases: a sequential peek pass serves every
// layer whose shape the memo already holds (the warm path — no
// goroutines, no closures, no allocations), then the misses drain
// through a bounded worker pool (inline on this goroutine when one
// worker suffices, which keeps the single-threaded explore loop
// allocation-free too).
func ExploreNetworkInto(ctx context.Context, net models.Network, cfg hw.Config, opts Options, p *Plan) (NetworkStats, error) {
	var ns NetworkStats
	if err := net.Validate(); err != nil {
		return ns, err
	}
	if err := cfg.Validate(); err != nil {
		return ns, err
	}
	if err := opts.Validate(); err != nil {
		return ns, err
	}
	env, err := envFor(opts)
	if err != nil {
		return ns, err
	}
	// Incremental pricing shares prefix sums across the compile's layers
	// through a prefix memo: the caller's shared one, or a pooled
	// per-compile one. Disabled pricing needs neither — the stateless
	// bound never looks prefixes up.
	prefix, pooledPrefix := opts.Prefix, false
	if prefix == nil && !opts.DisableIncremental {
		prefix, pooledPrefix = getCompilePrefix(), true
	}
	if !opts.DisableIncremental {
		env.prefix = prefix
	}
	// Default-on per-compile memo: repeated shapes inside one network
	// (ResNet bottlenecks, inception branches) schedule once. Shared
	// cross-compile memos are opt-in via Options.Memo.
	memo, pooledMemo := opts.Memo, false
	if memo == nil && !opts.DisableMemo {
		memo, pooledMemo = getCompileMemo(), true
	}
	cs := compileStatePool.Get().(*compileState)
	defer releaseCompile(cs, memo, pooledMemo, prefix, pooledPrefix)

	n := len(net.Layers)
	cs.grow(n)
	var prefixBase PrefixStats
	if prefix != nil {
		prefixBase = prefix.Stats()
	}

	// Phase 1: the peek pass. Keys are built once and kept for the miss
	// drain; completed memo entries are served inline.
	if memo != nil {
		sig := cs.internSignature(opts)
		for i, l := range net.Layers {
			cs.keys[i] = keyWithSig(l, cfg, opts, sig)
			if lp, ok := memo.peek(cs.keys[i], l); ok {
				cs.plans[i], cs.hits[i] = lp, true
			} else {
				cs.miss = append(cs.miss, i)
			}
		}
	} else {
		for i := range net.Layers {
			cs.miss = append(cs.miss, i)
		}
	}

	// Phase 2: drain the misses. Layers are independent optimization
	// problems (Fig. 13 schedules them one by one); a canceled context
	// stops admitting work, already-claimed layers finish (one layer's
	// exploration is short), and the error reports how far the schedule
	// got.
	if workers := min(runtime.GOMAXPROCS(0), len(cs.miss)); workers <= 1 {
		for _, i := range cs.miss {
			if err := ctx.Err(); err != nil {
				cs.errs[i] = err
				break
			}
			cs.runLayer(i, net.Layers[i], cfg, opts, memo, env)
		}
	} else {
		// Kept out of line so the worker closure's captures only escape
		// to the heap when the parallel path actually runs — the
		// sequential path above stays allocation-free.
		cs.drainParallel(ctx, net, cfg, opts, memo, env, workers)
	}
	for i, err := range cs.errs {
		if err != nil {
			if ctx.Err() != nil && err == ctx.Err() {
				return ns, fmt.Errorf("sched: %s: canceled at layer %d/%d (%s): %w",
					net.Name, i+1, n, net.Layers[i].Name, err)
			}
			return ns, fmt.Errorf("sched: %s/%s: %w", net.Name, net.Layers[i].Name, err)
		}
	}

	// Assembly: copy the arena's results into the caller's plan and
	// aggregate in layer order.
	p.Network, p.Config, p.Options = net, cfg, opts
	p.Layers = p.Layers[:0]
	p.Totals = energy.Counts{}
	p.Energy = energy.Breakdown{}
	p.ExecTime = 0
	for i, lp := range cs.plans {
		p.Layers = append(p.Layers, lp)
		p.Totals.Add(lp.Counts)
		p.Energy.Add(lp.Energy)
		p.ExecTime += lp.Analysis.ExecTime
		if cs.hits[i] {
			ns.MemoHits++
		} else {
			// With no memo at all there are no misses to report — only
			// the search work itself.
			if memo != nil {
				ns.MemoMisses++
			}
			ns.Search.Add(cs.stats[i])
		}
	}
	if prefix != nil {
		st := prefix.Stats()
		ns.PrefixHits = st.Hits - prefixBase.Hits
		ns.PrefixMisses = st.Misses - prefixBase.Misses
	}
	if opts.Check != nil {
		if err := opts.Check(p); err != nil {
			return ns, fmt.Errorf("sched: plan check: %w", err)
		}
	}
	return ns, nil
}
