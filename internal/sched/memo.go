package sched

// Layer-shape memoization. Real networks repeat identical layer shapes —
// ResNet-50's bottleneck blocks and GoogLeNet's inception branches reuse
// a handful of shapes dozens of times — and the Fig. 13 exploration
// depends only on (layer shape, accelerator config, scheduling options),
// never on the layer's name or position. A Memo keys completed per-layer
// explorations on that triple so each distinct shape is explored once
// per compile (and, when a Memo is shared, once per process).
//
// Correctness: pattern.Analyze reconstructs Analysis.Layer equal to its
// input layer, and every other LayerPlan field is a pure function of the
// memo key, so a hit only needs Analysis.Layer patched to the requesting
// layer's identity (Name/Stage) to be byte-identical to a fresh
// exploration. Errors are never cached: their messages embed layer
// names, and a transient failure must not poison every same-shaped
// layer.

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"strconv"
	"sync"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched/search"
)

// DefaultMemoCapacity bounds a Memo's entry count when NewMemo is given
// no explicit capacity. Distinct layer shapes number in the dozens per
// network, so 4096 comfortably holds a whole model zoo while bounding a
// shared long-lived memo against hostile shape streams.
const DefaultMemoCapacity = 4096

// memoKey identifies one exploration problem: the SHA-256 digest of the
// canonical (layer shape, derived output geometry, config, options
// signature, resolved layer budget) tuple. A digest rather than the
// struct itself because the struct form exceeds the runtime's 128-byte
// inline-key limit, and an indirect map key heap-copies on every insert
// — one allocation per distinct shape per compile, which is exactly
// what the pooled compile path exists to avoid. 32 bytes store inline,
// and a SHA-256 collision between two real scheduling problems is not a
// realistic failure mode.
//
// The keyed tuple is deliberately as coarse as soundness allows and no
// coarser. Exploration reads the padding only through the derived
// R()/C(), so distinct (P) spellings with identical derived geometry
// share an entry (r/c carry the information P held). Coarsening over M
// — the axis GoogLeNet's near-duplicate inception branches actually
// differ in — is NOT sound: M reaches the plan through the Tm candidate
// axis, ceil(M/Tm), the weight/output volumes and the MAC count, so two
// branches differing only in M pick genuinely different plans and a
// shared entry would break the hit-patches-identity-only contract
// (TestMemoNearDuplicateShapesStayDistinct pins this boundary; the
// sound way to profit from those branches is the bound-level PrefixMemo
// in prefix.go).
type memoKey [sha256.Size]byte

// memoEntry is one in-flight or completed exploration. The owner holds
// wg at one until it finishes; ok (written and read under the memo's
// mutex, or after wg.Wait) reports whether lp/stats are valid. Failed
// entries are removed from the table before the owner releases wg, so
// waiters observing ok == false recompute individually.
type memoEntry struct {
	wg    sync.WaitGroup
	lp    LayerPlan
	stats search.Stats
	ok    bool
}

// Memo caches per-layer exploration results across the layers of one
// compile and, when shared, across compiles. Safe for concurrent use.
// The zero value is not usable; call NewMemo.
type Memo struct {
	mu      sync.Mutex
	entries map[memoKey]*memoEntry
	free    []*memoEntry // retired entries awaiting reuse (pooled memos)
	cap     int
	hits    uint64
	misses  uint64
}

// NewMemo returns a memo bounded to capacity entries (<= 0 selects
// DefaultMemoCapacity). When the table is full, new shapes are explored
// without being recorded — the memo degrades to a no-op, never evicts.
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	return &Memo{entries: make(map[memoKey]*memoEntry), cap: capacity}
}

// MemoStats is a point-in-time snapshot of a memo's effectiveness.
type MemoStats struct {
	// Hits counts lookups served from a completed (or in-flight) entry.
	Hits uint64
	// Misses counts lookups that had to explore.
	Misses uint64
	// Entries is the current table size.
	Entries int
}

// Stats snapshots the memo counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Entries: len(m.entries)}
}

// signature is the canonical options form the memo keys on — the same
// resolution rules as the serving cache hashing (resolved strategy
// spelled out, beam width only under beam, effective guard band,
// controller by name) so equivalent spellings collapse onto one entry.
// Parallelism, Memo, Prefix, DisableMemo, DisableIncremental and Check
// are deliberately absent: none of them changes a layer's resulting
// plan bytes.
func (o Options) signature() string {
	return string(o.appendSignature(nil))
}

// appendSignature is signature writing into dst — the allocation-free
// form the compile path builds its (interned) signature with. One
// strconv.Append* call per component; %g floats spell identically to
// the historical fmt.Fprintf form (both emit the shortest round-trip
// representation).
func (o Options) appendSignature(dst []byte) []byte {
	for _, k := range o.Patterns {
		dst = append(dst, k.String()...)
		dst = append(dst, ',')
	}
	dst = append(dst, "|refresh="...)
	dst = strconv.AppendInt(dst, int64(o.RefreshInterval), 10)
	if o.Controller != nil {
		dst = append(dst, "|ctrl="...)
		dst = append(dst, o.Controller.Name()...)
	}
	if o.NaturalTiling {
		dst = append(dst, "|natural"...)
	}
	dst = append(dst, "|guard="...)
	dst = strconv.AppendFloat(dst, o.Guard(), 'g', -1, 64)
	if o.FixedTiling != nil {
		t := *o.FixedTiling
		dst = append(dst, "|fixed="...)
		dst = strconv.AppendInt(dst, int64(t.Tm), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(t.Tn), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(t.Tr), 10)
		dst = append(dst, ',')
		dst = strconv.AppendInt(dst, int64(t.Tc), 10)
	}
	dst = append(dst, "|search="...)
	dst = append(dst, string(o.Search.Resolve())...)
	if o.Search.Resolve() == search.Beam {
		dst = append(dst, "|beam="...)
		dst = strconv.AppendInt(dst, int64(search.EffectiveWidth(o.BeamWidth)), 10)
	}
	// The memory-backend axis. The empty backend spelling is kept
	// distinct from an explicit default name (normalizing would need
	// the config, which is a separate key component) — that only costs
	// a duplicate entry for equivalent spellings, never a wrong hit. A
	// pinned point is likewise distinct from an unpinned search even
	// when it is "nominal": pinning collapses the point axis, which on
	// multi-point backends changes the plan space.
	if o.Backend != "" {
		dst = append(dst, "|backend="...)
		dst = append(dst, o.Backend...)
	}
	if o.OperatingPoint != "" {
		dst = append(dst, "|op="...)
		dst = append(dst, o.OperatingPoint...)
	}
	if o.ErrorBudget > 0 {
		dst = append(dst, "|ebudget="...)
		dst = strconv.AppendFloat(dst, o.ErrorBudget, 'g', -1, 64)
	}
	// The traversal and mapping axes, in canonical spelling so
	// equivalent specs ("", "linear", "linear,linear") collapse onto one
	// entry; the default-only axes append nothing, keeping legacy
	// signatures byte-identical (and the empty-spec fast path
	// allocation-free). Validate already rejected unparseable specs, so
	// the canonicalizers cannot fail here.
	if o.Traversal != "" {
		if tr, err := CanonicalTraversalSpec(o.Traversal); err == nil && tr != "" {
			dst = append(dst, "|traversal="...)
			dst = append(dst, tr...)
		}
	}
	if o.Mapping != "" {
		if mp, err := CanonicalMappingSpec(o.Mapping); err == nil && mp != "" {
			dst = append(dst, "|mapping="...)
			dst = append(dst, mp...)
		}
	}
	return dst
}

// keyFor builds the memo key: layer identity and config name are
// cleared (they do not influence exploration), and the options collapse
// onto the canonical signature shared with the serving cache hashing —
// resolved strategy spelled out, beam width only under beam, effective
// guard band, controller by name.
func keyFor(l models.ConvLayer, cfg hw.Config, opts Options) memoKey {
	return keyWithSig(l, cfg, opts, opts.signature())
}

// keyWithSig is keyFor against a precomputed signature — the compile
// path builds the signature once per network, not once per layer.
// Per-layer error budgets are the one place identity does influence
// exploration, so the layer's *resolved* budget is folded into the
// digest; with no per-layer budgets a zero budget word with a cleared
// presence flag keeps legacy problems distinct from budgeted ones.
//
// The encoding is injective: every component is a fixed-width word
// except the signature, which comes last — so no two distinct tuples
// serialize to the same bytes. Layer identity (Name, Stage) and
// cfg.Name never influence exploration and are excluded; padding
// collapses into the derived output geometry (exploration never reads
// P directly). Every semantic field of models.ConvLayer and hw.Config
// must appear here — TestMemoKeyCoversAllFields pins the field counts
// so adding a struct field without extending the encoding fails loudly.
func keyWithSig(l models.ConvLayer, cfg hw.Config, opts Options, sig string) memoKey {
	var scratch [352]byte
	b := scratch[:0]
	// Layer canonical shape + derived output geometry.
	for _, v := range [...]uint64{
		uint64(l.N), uint64(l.H), uint64(l.L), uint64(l.M),
		uint64(l.K), uint64(l.S), uint64(l.Groups),
		uint64(l.R()), uint64(l.C()),
	} {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	// Accelerator configuration, Name excluded.
	for _, v := range [...]uint64{
		uint64(cfg.ArrayM), uint64(cfg.ArrayN), uint64(cfg.Mapping),
		math.Float64bits(cfg.FrequencyHz),
		uint64(cfg.LocalInput), uint64(cfg.LocalOutput), uint64(cfg.LocalWeight),
		cfg.BufferWords, uint64(cfg.BufferTech), uint64(cfg.BankWords),
	} {
		b = binary.LittleEndian.AppendUint64(b, v)
	}
	// Resolved per-layer budget: presence flag + value, fixed width.
	if len(opts.LayerBudgets) > 0 {
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(opts.layerBudget(l.Name)))
	} else {
		b = append(b, 0)
		b = binary.LittleEndian.AppendUint64(b, 0)
	}
	b = append(b, sig...)
	return sha256.Sum256(b)
}

// peek returns the completed entry for key, patched to l's identity,
// without blocking: in-flight entries and misses return false and the
// caller takes the exploring path (explore/exploreEnv), which waits on
// in-flight owners and keeps the hit accounting there. This is the
// warm compile path's allocation-free fast lane — no goroutine, no
// closure, no channel.
func (m *Memo) peek(key memoKey, l models.ConvLayer) (LayerPlan, bool) {
	if m == nil {
		return LayerPlan{}, false
	}
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok || !e.ok {
		m.mu.Unlock()
		return LayerPlan{}, false
	}
	m.hits++
	lp := e.lp
	m.mu.Unlock()
	lp.Analysis.Layer = l
	return lp, true
}

// memoMode classifies one acquire: served from an entry, saturated, or
// owned (the caller must explore and publish through fill/fillEnv).
type memoMode int

const (
	memoWait memoMode = iota // wait on the returned entry
	memoFull                 // table saturated: explore without recording
	memoOwn                  // caller owns the returned entry
)

// acquire looks the key up and either returns an existing entry to wait
// on (counted as a hit), reports saturation, or installs a fresh owned
// entry (counted as a miss).
func (m *Memo) acquire(key memoKey) (*memoEntry, memoMode) {
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.hits++
		m.mu.Unlock()
		return e, memoWait
	}
	if len(m.entries) >= m.cap {
		// Full: explore without recording. No counter bump — the
		// table is saturated, hit/miss ratios stop being meaningful.
		m.mu.Unlock()
		return nil, memoFull
	}
	e := m.newEntry()
	e.wg.Add(1)
	m.entries[key] = e
	m.misses++
	m.mu.Unlock()
	return e, memoOwn
}

// newEntry takes an entry off the free list (or allocates). Caller
// holds m.mu.
func (m *Memo) newEntry() *memoEntry {
	if n := len(m.free); n > 0 {
		e := m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
		*e = memoEntry{}
		return e
	}
	return &memoEntry{}
}

// await blocks on an in-flight (or completed) entry and returns the
// patched plan. ok == false means the owner failed and withdrew the
// entry — the caller recomputes individually, so one layer's error
// (whose message names that layer) never smears across same-shaped
// layers.
func (e *memoEntry) await(l models.ConvLayer) (LayerPlan, search.Stats, bool) {
	e.wg.Wait()
	if !e.ok {
		return LayerPlan{}, search.Stats{}, false
	}
	lp := e.lp
	lp.Analysis.Layer = l
	return lp, e.stats, true
}

// explore returns the layer's plan through the memo: a completed entry
// is returned with the layer identity patched in; otherwise the caller
// explores (via compute) and publishes the result for same-shaped
// layers. A nil memo degenerates to a plain compute call.
func (m *Memo) explore(l models.ConvLayer, cfg hw.Config, opts Options,
	compute func() (LayerPlan, search.Stats, error)) (LayerPlan, search.Stats, bool, error) {
	if m == nil {
		lp, stats, err := compute()
		return lp, stats, false, err
	}
	key := keyFor(l, cfg, opts)
	e, mode := m.acquire(key)
	switch mode {
	case memoWait:
		if lp, stats, ok := e.await(l); ok {
			return lp, stats, true, nil
		}
	case memoOwn:
		lp, stats, err := m.fill(key, e, compute)
		return lp, stats, false, err
	}
	lp, stats, err := compute()
	return lp, stats, false, err
}

// exploreEnv is explore on the compile path: the key is prebuilt, and a
// miss explores through the per-compile environment directly — no
// compute closure, which is what keeps the cold optimized path's
// allocations below the baseline's.
func (m *Memo) exploreEnv(key memoKey, l models.ConvLayer, cfg hw.Config, opts Options,
	env compileEnv) (LayerPlan, search.Stats, bool, error) {
	if m == nil {
		lp, stats, err := exploreLayerEnv(l, cfg, opts, env)
		return lp, stats, false, err
	}
	e, mode := m.acquire(key)
	switch mode {
	case memoWait:
		if lp, stats, ok := e.await(l); ok {
			return lp, stats, true, nil
		}
	case memoOwn:
		lp, stats, err := m.fillEnv(key, e, l, cfg, opts, env)
		return lp, stats, false, err
	}
	lp, stats, err := exploreLayerEnv(l, cfg, opts, env)
	return lp, stats, false, err
}

// fill runs the owner's exploration and publishes (or withdraws) the
// entry. The deferred cleanup also fires on panic, so a poisoned
// candidate cannot leave same-shaped waiters blocked forever. Results
// are published under m.mu so peek can read completed entries without
// waiting.
func (m *Memo) fill(key memoKey, e *memoEntry,
	compute func() (LayerPlan, search.Stats, error)) (lp LayerPlan, stats search.Stats, err error) {
	defer m.finish(key, e)
	lp, stats, err = compute()
	if err != nil {
		return lp, stats, err
	}
	m.publish(e, lp, stats)
	return lp, stats, nil
}

// fillEnv is fill exploring through the compile environment.
func (m *Memo) fillEnv(key memoKey, e *memoEntry, l models.ConvLayer, cfg hw.Config,
	opts Options, env compileEnv) (lp LayerPlan, stats search.Stats, err error) {
	defer m.finish(key, e)
	lp, stats, err = exploreLayerEnv(l, cfg, opts, env)
	if err != nil {
		return lp, stats, err
	}
	m.publish(e, lp, stats)
	return lp, stats, nil
}

// publish marks the entry complete under m.mu (peek's visibility).
func (m *Memo) publish(e *memoEntry, lp LayerPlan, stats search.Stats) {
	m.mu.Lock()
	e.lp, e.stats, e.ok = lp, stats, true
	m.mu.Unlock()
}

// finish withdraws a failed entry and releases its waiters.
func (m *Memo) finish(key memoKey, e *memoEntry) {
	m.mu.Lock()
	if !e.ok {
		delete(m.entries, key)
	}
	m.mu.Unlock()
	e.wg.Done()
}

// resetForReuse retires every entry to the free list and zeroes the
// counters — what returns a pooled per-compile memo to its cold state.
// Only sound once no goroutine still references the entries (the
// compile that leased the memo has fully finished). The table is
// emptied with clear(), not per-key delete: delete leaves tombstones
// behind and the next compile's inserts then allocate rehashing around
// them, while clear resets the buckets in place and keeps the refill
// allocation-free.
func (m *Memo) resetForReuse() {
	m.mu.Lock()
	for _, e := range m.entries {
		m.free = append(m.free, e)
	}
	clear(m.entries)
	m.hits, m.misses = 0, 0
	m.mu.Unlock()
}

// compileMemoPool recycles the implicit per-compile memos so the
// steady-state compile path allocates neither the memo, its map buckets
// nor its entries. Entries are retired on release — per-compile means
// per-compile: cold hit rates must not be inflated by a previous
// compile's entries.
var compileMemoPool = sync.Pool{New: func() any { return NewMemo(0) }}

func getCompileMemo() *Memo { return compileMemoPool.Get().(*Memo) }

func putCompileMemo(m *Memo) {
	m.resetForReuse()
	compileMemoPool.Put(m)
}
