package sched

// Layer-shape memoization. Real networks repeat identical layer shapes —
// ResNet-50's bottleneck blocks and GoogLeNet's inception branches reuse
// a handful of shapes dozens of times — and the Fig. 13 exploration
// depends only on (layer shape, accelerator config, scheduling options),
// never on the layer's name or position. A Memo keys completed per-layer
// explorations on that triple so each distinct shape is explored once
// per compile (and, when a Memo is shared, once per process).
//
// Correctness: pattern.Analyze reconstructs Analysis.Layer equal to its
// input layer, and every other LayerPlan field is a pure function of the
// memo key, so a hit only needs Analysis.Layer patched to the requesting
// layer's identity (Name/Stage) to be byte-identical to a fresh
// exploration. Errors are never cached: their messages embed layer
// names, and a transient failure must not poison every same-shaped
// layer.

import (
	"fmt"
	"strings"
	"sync"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/sched/search"
)

// DefaultMemoCapacity bounds a Memo's entry count when NewMemo is given
// no explicit capacity. Distinct layer shapes number in the dozens per
// network, so 4096 comfortably holds a whole model zoo while bounding a
// shared long-lived memo against hostile shape streams.
const DefaultMemoCapacity = 4096

// memoKey identifies one exploration problem. All components are
// comparable: the layer in canonical shape form (identity cleared,
// padding collapsed into the derived output geometry), the config with
// Name cleared, and the canonical options signature.
//
// The key is deliberately as coarse as soundness allows and no coarser.
// Exploration reads the padding only through the derived R()/C(), so
// distinct (P) spellings with identical derived geometry share an entry
// (r/c carry the information P held). Coarsening over M — the axis
// GoogLeNet's near-duplicate inception branches actually differ in —
// is NOT sound: M reaches the plan through the Tm candidate axis,
// ceil(M/Tm), the weight/output volumes and the MAC count, so two
// branches differing only in M pick genuinely different plans and a
// shared entry would break the hit-patches-identity-only contract
// (TestMemoNearDuplicateShapesStayDistinct pins this boundary).
type memoKey struct {
	layer models.ConvLayer
	r, c  int
	cfg   hw.Config
	sig   string
}

// memoEntry is one in-flight or completed exploration. done is closed
// when the owner finishes; ok reports whether lp/stats are valid.
// Failed entries are removed from the table before done closes, so
// waiters observing ok == false recompute individually.
type memoEntry struct {
	done  chan struct{}
	lp    LayerPlan
	stats search.Stats
	ok    bool
}

// Memo caches per-layer exploration results across the layers of one
// compile and, when shared, across compiles. Safe for concurrent use.
// The zero value is not usable; call NewMemo.
type Memo struct {
	mu      sync.Mutex
	entries map[memoKey]*memoEntry
	cap     int
	hits    uint64
	misses  uint64
}

// NewMemo returns a memo bounded to capacity entries (<= 0 selects
// DefaultMemoCapacity). When the table is full, new shapes are explored
// without being recorded — the memo degrades to a no-op, never evicts.
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	return &Memo{entries: make(map[memoKey]*memoEntry), cap: capacity}
}

// MemoStats is a point-in-time snapshot of a memo's effectiveness.
type MemoStats struct {
	// Hits counts lookups served from a completed (or in-flight) entry.
	Hits uint64
	// Misses counts lookups that had to explore.
	Misses uint64
	// Entries is the current table size.
	Entries int
}

// Stats snapshots the memo counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{Hits: m.hits, Misses: m.misses, Entries: len(m.entries)}
}

// signature is the canonical options form the memo keys on — the same
// resolution rules as the serving cache hashing (resolved strategy
// spelled out, beam width only under beam, effective guard band,
// controller by name) so equivalent spellings collapse onto one entry.
// Parallelism, Memo, DisableMemo and Check are deliberately absent:
// none of them changes a layer's resulting plan bytes.
func (o Options) signature() string {
	var sb strings.Builder
	for _, k := range o.Patterns {
		sb.WriteString(k.String())
		sb.WriteByte(',')
	}
	fmt.Fprintf(&sb, "|refresh=%d", int64(o.RefreshInterval))
	if o.Controller != nil {
		fmt.Fprintf(&sb, "|ctrl=%s", o.Controller.Name())
	}
	if o.NaturalTiling {
		sb.WriteString("|natural")
	}
	fmt.Fprintf(&sb, "|guard=%g", o.Guard())
	if o.FixedTiling != nil {
		t := *o.FixedTiling
		fmt.Fprintf(&sb, "|fixed=%d,%d,%d,%d", t.Tm, t.Tn, t.Tr, t.Tc)
	}
	fmt.Fprintf(&sb, "|search=%s", o.Search.Resolve())
	if o.Search.Resolve() == search.Beam {
		fmt.Fprintf(&sb, "|beam=%d", search.EffectiveWidth(o.BeamWidth))
	}
	// The memory-backend axis. The empty backend spelling is kept
	// distinct from an explicit default name (normalizing would need
	// the config, which is a separate key component) — that only costs
	// a duplicate entry for equivalent spellings, never a wrong hit. A
	// pinned point is likewise distinct from an unpinned search even
	// when it is "nominal": pinning collapses the point axis, which on
	// multi-point backends changes the plan space.
	if o.Backend != "" {
		fmt.Fprintf(&sb, "|backend=%s", o.Backend)
	}
	if o.OperatingPoint != "" {
		fmt.Fprintf(&sb, "|op=%s", o.OperatingPoint)
	}
	if o.ErrorBudget > 0 {
		fmt.Fprintf(&sb, "|ebudget=%g", o.ErrorBudget)
	}
	// The traversal and mapping axes, in canonical spelling so
	// equivalent specs ("", "linear", "linear,linear") collapse onto one
	// entry; the default-only axes append nothing, keeping legacy
	// signatures byte-identical. Validate already rejected unparseable
	// specs, so the canonicalizers cannot fail here.
	if tr, err := CanonicalTraversalSpec(o.Traversal); err == nil && tr != "" {
		fmt.Fprintf(&sb, "|traversal=%s", tr)
	}
	if mp, err := CanonicalMappingSpec(o.Mapping); err == nil && mp != "" {
		fmt.Fprintf(&sb, "|mapping=%s", mp)
	}
	return sb.String()
}

// keyFor builds the memo key: layer identity and config name are
// cleared (they do not influence exploration), and the options collapse
// onto the canonical signature shared with the serving cache hashing —
// resolved strategy spelled out, beam width only under beam, effective
// guard band, controller by name. Per-layer error budgets are the one
// place identity does influence exploration, so the layer's *resolved*
// budget is folded into the signature before the name is cleared; with
// no per-layer budgets the signature is byte-identical to before.
func keyFor(l models.ConvLayer, cfg hw.Config, opts Options) memoKey {
	sig := opts.signature()
	if len(opts.LayerBudgets) > 0 {
		sig += fmt.Sprintf("|lbudget=%g", opts.layerBudget(l.Name))
	}
	// Canonical shape: padding collapses into the derived output
	// geometry (exploration never reads P directly), and layer identity
	// never influences exploration. Analysis.Layer is patched with the
	// requesting layer on a hit, so the donor's spelling never leaks.
	r, c := l.R(), l.C()
	l.Name, l.Stage = "", ""
	l.P = 0
	cfg.Name = ""
	return memoKey{layer: l, r: r, c: c, cfg: cfg, sig: sig}
}

// explore returns the layer's plan through the memo: a completed entry
// is returned with the layer identity patched in; otherwise the caller
// explores (via compute) and publishes the result for same-shaped
// layers. A nil memo degenerates to a plain compute call.
func (m *Memo) explore(l models.ConvLayer, cfg hw.Config, opts Options,
	compute func() (LayerPlan, search.Stats, error)) (LayerPlan, search.Stats, bool, error) {
	if m == nil {
		lp, stats, err := compute()
		return lp, stats, false, err
	}
	key := keyFor(l, cfg, opts)
	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		m.hits++
		m.mu.Unlock()
		<-e.done
		if !e.ok {
			// The owner failed after we were counted as a hit; its
			// entry is gone. Recompute without the memo — caching the
			// failure would smear one layer's error (whose message
			// names that layer) across every same-shaped layer.
			lp, stats, err := compute()
			return lp, stats, false, err
		}
		lp := e.lp
		lp.Analysis.Layer = l
		return lp, e.stats, true, nil
	}
	if len(m.entries) >= m.cap {
		// Full: explore without recording. No counter bump — the
		// table is saturated, hit/miss ratios stop being meaningful.
		m.mu.Unlock()
		lp, stats, err := compute()
		return lp, stats, false, err
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.misses++
	m.mu.Unlock()

	lp, stats, err := m.fill(key, e, compute)
	return lp, stats, false, err
}

// fill runs the owner's exploration and publishes (or withdraws) the
// entry. The deferred cleanup also fires on panic, so a poisoned
// candidate cannot leave same-shaped waiters blocked forever.
func (m *Memo) fill(key memoKey, e *memoEntry,
	compute func() (LayerPlan, search.Stats, error)) (lp LayerPlan, stats search.Stats, err error) {
	defer func() {
		if !e.ok {
			m.mu.Lock()
			delete(m.entries, key)
			m.mu.Unlock()
		}
		close(e.done)
	}()
	lp, stats, err = compute()
	if err != nil {
		return lp, stats, err
	}
	e.lp, e.stats, e.ok = lp, stats, true
	return lp, stats, nil
}
