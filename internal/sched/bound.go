package sched

// The admissible lower bound behind the Pruned and Beam search
// strategies: a cheap underestimate of Evaluate's exact Eq. 14 energy,
// computable without running pattern.Analyze, memctrl allocation or
// refresh accounting.
//
// The bound keeps three of the four Eq. 14 terms and drops one:
//
//   - α·Emac — exact. The MAC count is a layer property, independent of
//     pattern and tiling.
//   - βb·Ebuffer — exact. The per-kind buffer-traffic formulas of
//     pattern.Analyze depend only on the tile counts and transfer sizes,
//     never on feasibility or the refresh policy, so the bound evaluates
//     them directly.
//   - βd·Eddr — the compulsory minimum. Every pattern must move each
//     datum on/off chip at least once (din + dw + dout); the spill and
//     reload penalties Analyze adds when a working set overflows the
//     buffer only increase it. WD streams input tiles with halo overlap
//     when the input set cannot stay resident, and for strided layers
//     the overlapped stream can be *smaller* than din (the halo skips
//     rows the kernel never revisits), so WD's input term is
//     min(din, halo traffic).
//   - γ·Erefresh — bounded by zero. Refresh energy is never negative.
//
// Candidates whose streaming working set cannot fit the buffer bound to
// +Inf instead: Analyze's per-kind feasibility checks are a handful of
// multiplies, and an infeasible candidate can never become the search
// incumbent, so an infinite bound is vacuously admissible. It lets the
// branch-and-bound skip pricing infeasible space entirely and keeps the
// beam's exact-evaluation budget spent on candidates that can win
// (TestBoundIsAdmissible pins the formulas against pattern.Analyze so
// they cannot drift).
//
// Admissibility down to the bit: the bound prices its counts through the
// same energy.System → Breakdown.Total() path as Evaluate, with
// identical MAC and buffer counts and component-wise smaller-or-equal
// refresh and DDR counts. float64 conversion, multiplication by a
// positive constant and addition are monotone under round-to-nearest,
// and Total() sums components in one fixed order, so
// lower(k, t) ≤ Evaluate(l, k, t, …).Energy.Total() holds exactly, not
// just approximately — the pruning test in search/scan (strictly
// greater than the incumbent) can therefore never discard the argmin or
// an exact tie.

import (
	"math"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched/search"
)

// bound precomputes the tiling-invariant quantities of one layer's
// lower-bound evaluator. All dimensions are the effective per-group
// sub-layer's (grouped convolutions run one group at a time); whole-
// layer counts scale by the group count exactly as Analyze does.
type bound struct {
	l             models.ConvLayer // effective (per-group) sub-layer
	cfg           hw.Config
	g             uint64 // group count scaling sub-layer traffic to the layer
	macs          uint64 // layer MACs, already group-scaled
	din, dw, dout uint64 // sub-layer data volumes (words)
	// tables are the per-(mapping, operating point) Eq. 14 pricing
	// tables, index-aligned with the search cell as
	// tables[cell.Map*points+cell.Point]. The bound prices buffer
	// traffic with the derived table's own access energy (exact, like
	// the counts) and leaves refresh and wear at their zero lower
	// bounds — both are non-negative under every mapping scale, so
	// admissibility holds per cell by the same argument as before.
	tables []energy.Table
	points int
	// travs is the traversal axis, index-aligned with cell.Trav. A
	// blocked traversal only ever adds DDR reloads and shrinks the
	// (zero-bounded) refresh term — except blocked ID, whose position-
	// granular input staging can undercut din on strided layers exactly
	// like WD's halo stream; lower() takes that min per cell. nil means
	// a linear-only axis.
	travs []pattern.Traversal
}

// newBound builds the lower-bound evaluator for one layer across the
// resolved backend's operating points, traversal orders and mapping
// policies.
func newBound(l models.ConvLayer, cfg hw.Config, tables []energy.Table, points int, travs []pattern.Traversal) *bound {
	e := effectiveLayer(l)
	g := uint64(1)
	if l.Groups > 1 {
		g = uint64(l.Groups)
	}
	return &bound{
		l:      e,
		cfg:    cfg,
		g:      g,
		macs:   e.MACs() * g,
		din:    e.InputWords(),
		dw:     e.WeightWords(),
		dout:   e.OutputWords(),
		tables: tables,
		points: points,
		travs:  travs,
	}
}

// lower returns an admissible lower bound on the candidate's exact
// Eq. 14 total energy at the cell's (operating point, traversal,
// mapping): +Inf when the candidate's streaming working set cannot fit
// the buffer (Analyze would report it infeasible). Unknown kinds bound
// to zero — never pruned, so the exact evaluator still sees (and
// rejects) them.
func (b *bound) lower(k pattern.Kind, t pattern.Tiling, cell search.Cell) float64 {
	nM := ceilDiv(b.l.M, t.Tm)
	nN := ceilDiv(b.l.N, t.Tn)
	nR := ceilDiv(b.l.R(), t.Tr)
	nC := ceilDiv(b.l.C(), t.Tc)
	th, tl := t.Th(b.l), t.Tl(b.l)

	tiles := uint64(nM) * uint64(nN) * uint64(nR) * uint64(nC)
	inTile := uint64(t.Tn) * uint64(th) * uint64(tl)
	wTile := uint64(t.Tm) * uint64(t.Tn) * uint64(b.l.K) * uint64(b.l.K)
	outTile := uint64(t.Tm) * uint64(t.Tr) * uint64(t.Tc)
	outTraffic := uint64(nM) * uint64(nR) * uint64(nC) * outTile

	// Analyze's per-kind streaming-working-set requirements (the
	// Feasible predicates), verbatim on the effective sub-layer.
	var workingSet uint64
	var buf uint64
	switch k {
	case pattern.ID:
		workingSet = uint64(b.l.N)*uint64(t.Tm)*uint64(b.l.K)*uint64(b.l.K) + outTile
		buf = tiles*inTile + tiles*wTile + outTraffic
	case pattern.WD:
		workingSet = uint64(b.l.N)*uint64(th)*uint64(tl) + outTile + wTile
		buf = tiles*inTile + tiles*wTile + outTraffic
	case pattern.OD:
		workingSet = uint64(t.Tn)*uint64(b.l.H)*uint64(b.l.L) + wTile + outTile
		// Weights re-read once per (n, m) pass; outputs accumulate
		// read-modify-write across the nN input passes.
		buf = tiles*inTile + uint64(nN)*uint64(nM)*wTile + uint64(2*nN-1)*outTraffic
	default:
		return 0
	}
	if workingSet > b.cfg.BufferWords {
		return math.Inf(1)
	}

	ddrIn := b.din
	if k == pattern.WD {
		// WD's non-resident input stream carries halo overlap but skips
		// never-revisited rows; for strides > 1 it can undercut din.
		haloIn := uint64(nR) * uint64(nC) * uint64(b.l.N) * uint64(th) * uint64(tl)
		ddrIn = min(ddrIn, haloIn)
	}
	if k == pattern.ID && b.travs != nil && !b.travs[cell.Trav].IsLinear() {
		// Blocked ID stages inputs per RC position with halo overlap —
		// the same stream shape as WD's, with the same strided-layer
		// undercut; the min keeps the bound admissible at this cell.
		haloIn := uint64(nR) * uint64(nC) * uint64(b.l.N) * uint64(th) * uint64(tl)
		ddrIn = min(ddrIn, haloIn)
	}
	ddr := ddrIn + b.dw + b.dout

	// Price through the identical Eq. 14 path as Evaluate — against the
	// cell's own derived (mapping-scaled, per-point) table — so the
	// admissibility argument holds at the float level for every backend
	// and mapping, not just the paper's. The zero Refreshes and
	// BufferWrites counts are the refresh/wear lower bounds.
	return energy.SystemTable(energy.Counts{
		MACs:           b.macs,
		BufferAccesses: buf * b.g,
		DDRAccesses:    ddr * b.g,
	}, b.tables[cell.Map*b.points+cell.Point]).Total()
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// LowerBound exposes the admissible lower bound for one candidate at
// the options' resolved operating point (the pinned point, or the
// backend's nominal corner) — the seam the backend-differential oracle
// (verify.CompareBackends) uses to assert that no chosen plan, at any
// operating point, reports less energy than the bound admits.
func LowerBound(l models.ConvLayer, cfg hw.Config, opts Options, k pattern.Kind, t pattern.Tiling) (float64, error) {
	_, points, err := ResolveBackend(cfg, opts)
	if err != nil {
		return 0, err
	}
	b := newBound(l, cfg, pointTables(points[:1]), 1, nil)
	return b.lower(k, t, search.Cell{}), nil
}
