package sched

// The admissible lower bound behind the Pruned and Beam search
// strategies: a cheap underestimate of Evaluate's exact Eq. 14 energy,
// computable without running pattern.Analyze, memctrl allocation or
// refresh accounting.
//
// The bound keeps three of the four Eq. 14 terms and drops one:
//
//   - α·Emac — exact. The MAC count is a layer property, independent of
//     pattern and tiling.
//   - βb·Ebuffer — exact. The per-kind buffer-traffic formulas of
//     pattern.Analyze depend only on the tile counts and transfer sizes,
//     never on feasibility or the refresh policy, so the bound evaluates
//     them directly.
//   - βd·Eddr — the compulsory minimum. Every pattern must move each
//     datum on/off chip at least once (din + dw + dout); the spill and
//     reload penalties Analyze adds when a working set overflows the
//     buffer only increase it. WD streams input tiles with halo overlap
//     when the input set cannot stay resident, and for strided layers
//     the overlapped stream can be *smaller* than din (the halo skips
//     rows the kernel never revisits), so WD's input term is
//     min(din, halo traffic).
//   - γ·Erefresh — bounded by zero. Refresh energy is never negative.
//
// Candidates whose streaming working set cannot fit the buffer bound to
// +Inf instead: Analyze's per-kind feasibility checks are a handful of
// multiplies, and an infeasible candidate can never become the search
// incumbent, so an infinite bound is vacuously admissible. It lets the
// branch-and-bound skip pricing infeasible space entirely and keeps the
// beam's exact-evaluation budget spent on candidates that can win
// (TestBoundIsAdmissible pins the formulas against pattern.Analyze so
// they cannot drift).
//
// Admissibility down to the bit: the bound prices its counts through the
// same energy.System → Breakdown.Total() path as Evaluate, with
// identical MAC and buffer counts and component-wise smaller-or-equal
// refresh and DDR counts. float64 conversion, multiplication by a
// positive constant and addition are monotone under round-to-nearest,
// and Total() sums components in one fixed order, so
// lower(k, t) ≤ Evaluate(l, k, t, …).Energy.Total() holds exactly, not
// just approximately — the pruning test in search/scan (strictly
// greater than the incumbent) can therefore never discard the argmin or
// an exact tie.

import (
	"math"
	"sync"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched/search"
)

// bound precomputes the tiling-invariant quantities of one layer's
// lower-bound evaluator. All dimensions are the effective per-group
// sub-layer's (grouped convolutions run one group at a time); whole-
// layer counts scale by the group count exactly as Analyze does.
type bound struct {
	l             models.ConvLayer // effective (per-group) sub-layer
	cfg           hw.Config
	g             uint64 // group count scaling sub-layer traffic to the layer
	macs          uint64 // layer MACs, already group-scaled
	r, c          int     // derived output geometry, hoisted for the pricer
	macE          float64 // float64(macs)·MACpJ — the bound's constant Eq. 14 term
	din, dw, dout uint64  // sub-layer data volumes (words)
	// tables are the per-(mapping, operating point) Eq. 14 pricing
	// tables, index-aligned with the search cell as
	// tables[cell.Map*points+cell.Point]. The bound prices buffer
	// traffic with the derived table's own access energy (exact, like
	// the counts) and leaves refresh and wear at their zero lower
	// bounds — both are non-negative under every mapping scale, so
	// admissibility holds per cell by the same argument as before.
	tables []energy.Table
	points int
	// travs is the traversal axis, index-aligned with cell.Trav. A
	// blocked traversal only ever adds DDR reloads and shrinks the
	// (zero-bounded) refresh term — except blocked ID, whose position-
	// granular input staging can undercut din on strided layers exactly
	// like WD's halo stream; lower() takes that min per cell. nil means
	// a linear-only axis.
	travs []pattern.Traversal
}

// newBound builds the lower-bound evaluator for one layer across the
// resolved backend's operating points, traversal orders and mapping
// policies.
func newBound(l models.ConvLayer, cfg hw.Config, tables []energy.Table, points int, travs []pattern.Traversal) *bound {
	b := &bound{}
	b.init(l, cfg, tables, points, travs)
	return b
}

// init rebuilds the evaluator in place — newBound for a pooled bound.
func (b *bound) init(l models.ConvLayer, cfg hw.Config, tables []energy.Table, points int, travs []pattern.Traversal) {
	e := effectiveLayer(l)
	g := uint64(1)
	if l.Groups > 1 {
		g = uint64(l.Groups)
	}
	*b = bound{
		l:      e,
		cfg:    cfg,
		g:      g,
		macs:   e.MACs() * g,
		r:      e.R(),
		c:      e.C(),
		din:    e.InputWords(),
		dw:     e.WeightWords(),
		dout:   e.OutputWords(),
		tables: tables,
		points: points,
		travs:  travs,
	}
	b.macE = float64(b.macs) * energy.MACpJ
}

// lower returns an admissible lower bound on the candidate's exact
// Eq. 14 total energy at the cell's (operating point, traversal,
// mapping): +Inf when the candidate's streaming working set cannot fit
// the buffer (Analyze would report it infeasible). Unknown kinds bound
// to zero — never pruned, so the exact evaluator still sees (and
// rejects) them.
func (b *bound) lower(k pattern.Kind, t pattern.Tiling, cell search.Cell) float64 {
	nM := ceilDiv(b.l.M, t.Tm)
	nN := ceilDiv(b.l.N, t.Tn)
	nR := ceilDiv(b.l.R(), t.Tr)
	nC := ceilDiv(b.l.C(), t.Tc)
	th, tl := t.Th(b.l), t.Tl(b.l)

	tiles := uint64(nM) * uint64(nN) * uint64(nR) * uint64(nC)
	inTile := uint64(t.Tn) * uint64(th) * uint64(tl)
	wTile := uint64(t.Tm) * uint64(t.Tn) * uint64(b.l.K) * uint64(b.l.K)
	outTile := uint64(t.Tm) * uint64(t.Tr) * uint64(t.Tc)
	outTraffic := uint64(nM) * uint64(nR) * uint64(nC) * outTile

	// Analyze's per-kind streaming-working-set requirements (the
	// Feasible predicates), verbatim on the effective sub-layer.
	var workingSet uint64
	var buf uint64
	switch k {
	case pattern.ID:
		workingSet = uint64(b.l.N)*uint64(t.Tm)*uint64(b.l.K)*uint64(b.l.K) + outTile
		buf = tiles*inTile + tiles*wTile + outTraffic
	case pattern.WD:
		workingSet = uint64(b.l.N)*uint64(th)*uint64(tl) + outTile + wTile
		buf = tiles*inTile + tiles*wTile + outTraffic
	case pattern.OD:
		workingSet = uint64(t.Tn)*uint64(b.l.H)*uint64(b.l.L) + wTile + outTile
		// Weights re-read once per (n, m) pass; outputs accumulate
		// read-modify-write across the nN input passes.
		buf = tiles*inTile + uint64(nN)*uint64(nM)*wTile + uint64(2*nN-1)*outTraffic
	default:
		return 0
	}
	if workingSet > b.cfg.BufferWords {
		return math.Inf(1)
	}

	ddrIn := b.din
	if k == pattern.WD {
		// WD's non-resident input stream carries halo overlap but skips
		// never-revisited rows; for strides > 1 it can undercut din.
		haloIn := uint64(nR) * uint64(nC) * uint64(b.l.N) * uint64(th) * uint64(tl)
		ddrIn = min(ddrIn, haloIn)
	}
	if k == pattern.ID && b.travs != nil && !b.travs[cell.Trav].IsLinear() {
		// Blocked ID stages inputs per RC position with halo overlap —
		// the same stream shape as WD's, with the same strided-layer
		// undercut; the min keeps the bound admissible at this cell.
		haloIn := uint64(nR) * uint64(nC) * uint64(b.l.N) * uint64(th) * uint64(tl)
		ddrIn = min(ddrIn, haloIn)
	}
	ddr := ddrIn + b.dw + b.dout

	// Price through the identical Eq. 14 path as Evaluate — against the
	// cell's own derived (mapping-scaled, per-point) table — so the
	// admissibility argument holds at the float level for every backend
	// and mapping, not just the paper's. The zero Refreshes and
	// BufferWrites counts are the refresh/wear lower bounds.
	return energy.SystemTable(energy.Counts{
		MACs:           b.macs,
		BufferAccesses: buf * b.g,
		DDRAccesses:    ddr * b.g,
	}, b.tables[cell.Map*b.points+cell.Point]).Total()
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// ---------------------------------------------------------------------------
// Incremental pricing.
//
// lower() above re-derives every partial term per call, even though the
// canonical enumeration order (tiling-major, kind/point/traversal/
// mapping inner) repeats most of them across neighboring candidates. A
// pricingCtx is the stateful variant one scan goroutine leases through
// search.Problem.NewPricer: it factors the arithmetic into
//
//   - tilingTerms — kind-independent, invalidated when the scanned
//     tiling changes;
//   - prefixSums — per (kind, Tm, Tn), invalidated only when that
//     prefix coordinate changes (and shareable across layers through a
//     PrefixMemo, since they never read M or the tiling tail);
//   - kindState — the per-(kind, tiling) feasibility/traffic products,
//     rebuilt from the two caches above;
//
// and prices the final cell through the identical energy.SystemTable
// call as lower(). Every cached quantity is an exactly-reused uint64 —
// no float enters a cache — so Lower is bit-identical to lower() by
// construction at any call order; TestIncrementalBoundBitIdentical pins
// this in canonical and randomized orders, which is what keeps
// pruned ≡ exhaustive untouched when the incremental path is on.
// ---------------------------------------------------------------------------

// kindSlots bounds the per-kind cache array of a pricing context. The
// known kinds (ID, OD, WD) index it directly; anything else takes the
// unknown-kind fast path (bound zero, exactly like lower()).
const kindSlots = 3

// prefixSums are the bound partial terms that depend only on the
// layer's (N, K, H, L) sub-shape and the candidate's (kind, Tm, Tn)
// prefix — never on M, the output geometry, the (Tr, Tc) tail, the
// accelerator config or the pricing tables. That independence is what
// makes them shareable across layers and compiles through a PrefixMemo:
// near-duplicate inception branches differing only in M miss the
// whole-layer memo but share every prefix entry.
type prefixSums struct {
	// nN is ceil(N/Tn), the input-channel tile count.
	nN int
	// wTile is Tm·Tn·K², the per-tile weight transfer size.
	wTile uint64
	// ws is the kind's prefix-level working-set component: N·Tm·K² for
	// ID, Tn·H·L for OD, zero for WD (whose input set depends on the
	// tiling tail and lives in tilingTerms instead).
	ws uint64
}

// prefixSums computes the (kind, Tm, Tn) partial terms from scratch —
// the reference a PrefixMemo caches.
func (b *bound) prefixSums(k pattern.Kind, tm, tn int) prefixSums {
	s := prefixSums{
		nN:    ceilDiv(b.l.N, tn),
		wTile: uint64(tm) * uint64(tn) * uint64(b.l.K) * uint64(b.l.K),
	}
	switch k {
	case pattern.ID:
		s.ws = uint64(b.l.N) * uint64(tm) * uint64(b.l.K) * uint64(b.l.K)
	case pattern.OD:
		s.ws = uint64(tn) * uint64(b.l.H) * uint64(b.l.L)
	}
	return s
}

// tilingTerms are the kind-independent per-tiling partial terms — the
// remainder of lower()'s arithmetic below the (Tm, Tn) prefix.
type tilingTerms struct {
	nM, nR, nC int
	inTile     uint64 // Tn·th·tl — per-tile input transfer
	outTile    uint64 // Tm·Tr·Tc — per-tile output transfer
	outTraffic uint64 // nM·nR·nC·outTile
	inWS       uint64 // N·th·tl — WD's resident input working set
	haloIn     uint64 // nR·nC·N·th·tl — the halo-overlapped input stream
}

// kindState caches one kind's per-tiling products plus its current
// (Tm, Tn) prefix sums.
type kindState struct {
	ktValid  bool
	feasible bool
	bufG     uint64 // buffer traffic × group count
	ddrG     uint64 // compulsory DDR minimum × group count (linear cells)
	ddrBlkG  uint64 // ID under a blocked traversal; == ddrG otherwise
	pkValid  bool
	ptm, ptn int
	pk       prefixSums
}

// pricingCtx is one scan goroutine's incremental bound evaluator. Not
// safe for concurrent use — each worker leases its own via
// search.Problem.NewPricer and returns it with Release.
type pricingCtx struct {
	b      *bound
	prefix *PrefixMemo
	t      pattern.Tiling
	tValid bool
	tt     tilingTerms
	kinds  [kindSlots]kindState
}

// pricerPool recycles pricing contexts across scans and layers.
var pricerPool = sync.Pool{New: func() any { return new(pricingCtx) }}

// acquirePricer leases a pricing context bound to b (and, optionally, a
// shared prefix memo) from the pool, with every cache invalidated.
func acquirePricer(b *bound, prefix *PrefixMemo) *pricingCtx {
	pc := pricerPool.Get().(*pricingCtx)
	pc.b, pc.prefix = b, prefix
	pc.tValid = false
	for i := range pc.kinds {
		pc.kinds[i].ktValid = false
		pc.kinds[i].pkValid = false
	}
	return pc
}

// Release implements search.Pricer: the context returns to the pool and
// must not be used again.
func (pc *pricingCtx) Release() {
	pc.b, pc.prefix = nil, nil
	pricerPool.Put(pc)
}

// Lower implements search.Pricer — bit-identical to (*bound).lower at
// every cell, in any call order.
func (pc *pricingCtx) Lower(k pattern.Kind, t pattern.Tiling, cell search.Cell) float64 {
	ki := int(k)
	if ki < 0 || ki >= kindSlots {
		// Unknown kinds bound to zero, exactly like lower(): never
		// pruned, so the exact evaluator still sees (and rejects) them.
		return 0
	}
	if !pc.tValid || t != pc.t {
		pc.rebuildTiling(t)
	}
	ks := &pc.kinds[ki]
	if !ks.ktValid {
		pc.rebuildKind(k, ks, t)
	}
	if !ks.feasible {
		return math.Inf(1)
	}
	ddr := ks.ddrG
	if k == pattern.ID && pc.b.travs != nil && !pc.b.travs[cell.Trav].IsLinear() {
		ddr = ks.ddrBlkG
	}
	// Scalar form of the reference's SystemTable(...).Total() — the hot
	// multiply-add without the Counts/Breakdown round trip. Bit-identical:
	// Total() sums (((Computing+BufferAccess)+Refresh)+OffChip)+Wear
	// left to right, the bound's Refresh and Wear counts are zero, their
	// products with the finite non-negative table entries are exactly +0,
	// and x+(+0) == x under IEEE round-to-nearest, so this expression is
	// the same sum with the +0 terms elided. macE caches the constant
	// float64(macs)·MACpJ product per layer (same operands, same bits).
	return (pc.b.macE + float64(ks.bufG)*pc.b.tables[cell.Map*pc.b.points+cell.Point].AccessPJ) +
		float64(ddr)*energy.DDRAccessPJ
}

// rebuildTiling refreshes the kind-independent terms for a new tiling
// and invalidates the per-kind products (but not the prefix sums, which
// survive until their own (Tm, Tn) coordinate moves).
func (pc *pricingCtx) rebuildTiling(t pattern.Tiling) {
	b, tt := pc.b, &pc.tt
	tt.nM = ceilDiv(b.l.M, t.Tm)
	tt.nR = ceilDiv(b.r, t.Tr)
	tt.nC = ceilDiv(b.c, t.Tc)
	// Inlined Tiling.Th/Tl ((Tr−1)·S+K, (Tc−1)·S+K): the method forms
	// take the ConvLayer by value, and that copy was a visible slice of
	// cold-compile profiles at one call per scanned tiling.
	th, tl := (t.Tr-1)*b.l.S+b.l.K, (t.Tc-1)*b.l.S+b.l.K
	tt.inTile = uint64(t.Tn) * uint64(th) * uint64(tl)
	tt.outTile = uint64(t.Tm) * uint64(t.Tr) * uint64(t.Tc)
	tt.outTraffic = uint64(tt.nM) * uint64(tt.nR) * uint64(tt.nC) * tt.outTile
	tt.inWS = uint64(b.l.N) * uint64(th) * uint64(tl)
	tt.haloIn = uint64(tt.nR) * uint64(tt.nC) * tt.inWS
	pc.t, pc.tValid = t, true
	for i := range pc.kinds {
		pc.kinds[i].ktValid = false
	}
}

// rebuildKind refreshes one kind's per-tiling products from the cached
// tiling terms and (Tm, Tn) prefix sums, refetching the latter only when
// the prefix coordinate changed.
func (pc *pricingCtx) rebuildKind(k pattern.Kind, ks *kindState, t pattern.Tiling) {
	b, tt := pc.b, &pc.tt
	if !ks.pkValid || ks.ptm != t.Tm || ks.ptn != t.Tn {
		if pc.prefix != nil {
			ks.pk = pc.prefix.lookup(b, k, t.Tm, t.Tn)
		} else {
			ks.pk = b.prefixSums(k, t.Tm, t.Tn)
		}
		ks.ptm, ks.ptn, ks.pkValid = t.Tm, t.Tn, true
	}
	pk := &ks.pk
	tiles := uint64(tt.nM) * uint64(pk.nN) * uint64(tt.nR) * uint64(tt.nC)
	var ws, buf uint64
	switch k {
	case pattern.ID:
		ws = pk.ws + tt.outTile
		buf = tiles*tt.inTile + tiles*pk.wTile + tt.outTraffic
	case pattern.WD:
		ws = tt.inWS + tt.outTile + pk.wTile
		buf = tiles*tt.inTile + tiles*pk.wTile + tt.outTraffic
	case pattern.OD:
		ws = pk.ws + pk.wTile + tt.outTile
		buf = tiles*tt.inTile + uint64(pk.nN)*uint64(tt.nM)*pk.wTile + uint64(2*pk.nN-1)*tt.outTraffic
	}
	ks.ktValid = true
	ks.feasible = ws <= b.cfg.BufferWords
	if !ks.feasible {
		return
	}
	ddrIn := b.din
	if k == pattern.WD {
		ddrIn = min(ddrIn, tt.haloIn)
	}
	ks.bufG = buf * b.g
	ks.ddrG = (ddrIn + b.dw + b.dout) * b.g
	ks.ddrBlkG = ks.ddrG
	if k == pattern.ID {
		ks.ddrBlkG = (min(b.din, tt.haloIn) + b.dw + b.dout) * b.g
	}
}

// LowerBound exposes the admissible lower bound for one candidate at
// the options' resolved operating point (the pinned point, or the
// backend's nominal corner) — the seam the backend-differential oracle
// (verify.CompareBackends) uses to assert that no chosen plan, at any
// operating point, reports less energy than the bound admits.
func LowerBound(l models.ConvLayer, cfg hw.Config, opts Options, k pattern.Kind, t pattern.Tiling) (float64, error) {
	_, points, err := ResolveBackend(cfg, opts)
	if err != nil {
		return 0, err
	}
	b := newBound(l, cfg, pointTables(points[:1]), 1, nil)
	return b.lower(k, t, search.Cell{}), nil
}
