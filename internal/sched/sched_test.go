package sched

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
)

func ranaOpts() Options {
	return Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: retention.TolerableRetentionTime,
		Controller:      memctrl.Conventional{},
	}
}

func TestScheduleWholeNetworks(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		plan, err := Schedule(net, cfg, ranaOpts())
		if err != nil {
			t.Fatalf("%s: %v", net.Name, err)
		}
		if len(plan.Layers) != len(net.Layers) {
			t.Fatalf("%s: %d plans for %d layers", net.Name, len(plan.Layers), len(net.Layers))
		}
		if plan.Energy.Total() <= 0 || plan.ExecTime <= 0 {
			t.Errorf("%s: degenerate plan totals", net.Name)
		}
		// α is invariant: the plan's MAC count equals the network's.
		if plan.Totals.MACs != net.TotalMACs() {
			t.Errorf("%s: plan MACs %d != network %d", net.Name, plan.Totals.MACs, net.TotalMACs())
		}
	}
}

// TestSchedulerIsOptimalOverItsSpace: the chosen plan is no worse than
// every candidate in the enumerated space (brute-force check on a layer).
func TestSchedulerIsOptimalOverItsSpace(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	l, _ := models.VGG().Layer("conv4_2")
	opts := ranaOpts()
	best, err := ScheduleLayer(l, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range opts.Patterns {
		for _, ti := range candidateTilings(l, cfg, opts) {
			if !ti.FitsCore(l, cfg) {
				continue
			}
			lp, err := Evaluate(l, k, ti, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !lp.Analysis.Feasible {
				continue
			}
			if lp.Energy.Total() < best.Energy.Total()-1e-6 {
				t.Fatalf("candidate %v %v beats chosen plan: %.3e < %.3e",
					k, ti, lp.Energy.Total(), best.Energy.Total())
			}
		}
	}
}

// TestHybridBeatsSinglePattern: the OD+WD hybrid never loses to OD-only
// or WD-only on any layer (it subsumes both spaces) — the Stage 2 claim.
func TestHybridBeatsSinglePattern(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	opts := ranaOpts()
	odOnly, wdOnly := opts, opts
	odOnly.Patterns = []pattern.Kind{pattern.OD}
	wdOnly.Patterns = []pattern.Kind{pattern.WD}
	for _, l := range models.VGG().Layers {
		h, err := ScheduleLayer(l, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, single := range []Options{odOnly, wdOnly} {
			s, err := ScheduleLayer(l, cfg, single)
			if err != nil {
				continue // single pattern may be infeasible; hybrid still wins
			}
			if h.Energy.Total() > s.Energy.Total()+1e-6 {
				t.Errorf("%s: hybrid %.3e worse than single %v %.3e",
					l.Name, h.Energy.Total(), single.Patterns, s.Energy.Total())
			}
		}
	}
}

// TestVGGShallowLayersPickWD reproduces the Fig. 17 mechanism: on VGG's
// large shallow layers (2–8 in the paper's numbering), OD's output
// storage exceeds the 1.454 MB capacity, so the hybrid schedule picks WD.
func TestVGGShallowLayersPickWD(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	plan, err := Schedule(models.VGG(), cfg, ranaOpts())
	if err != nil {
		t.Fatal(err)
	}
	wd := 0
	for i, lp := range plan.Layers {
		l := plan.Network.Layers[i]
		// Layers whose output set exceeds capacity must not run OD with
		// spilled partials if WD is cheaper; count WD picks among the
		// first 8 layers.
		if i < 8 && lp.Analysis.Pattern == pattern.WD {
			wd++
		}
		_ = l
	}
	if wd < 4 {
		t.Errorf("only %d of VGG's first 8 layers picked WD; the hybrid pattern should favor WD there", wd)
	}
	// Deep layers fit OD comfortably and should mostly pick it.
	od := 0
	for i := 8; i < len(plan.Layers); i++ {
		if plan.Layers[i].Analysis.Pattern == pattern.OD {
			od++
		}
	}
	if od < 3 {
		t.Errorf("only %d of VGG's deep layers picked OD", od)
	}
}

func TestRefreshAccountingPerController(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	l, _ := models.VGG().Layer("conv4_2")
	conv := ranaOpts()
	conv.RefreshInterval = retention.TypicalRetentionTime
	opt := conv
	opt.Controller = memctrl.RefreshOptimized{}
	cPlan, err := ScheduleLayer(l, cfg, conv)
	if err != nil {
		t.Fatal(err)
	}
	oPlan, err := ScheduleLayer(l, cfg, opt)
	if err != nil {
		t.Fatal(err)
	}
	if oPlan.Counts.Refreshes > cPlan.Counts.Refreshes {
		t.Errorf("optimized controller refreshes more: %d > %d",
			oPlan.Counts.Refreshes, cPlan.Counts.Refreshes)
	}
}

func TestSRAMNeverRefreshes(t *testing.T) {
	cfg := hw.TestAccelerator() // SRAM
	opts := Options{Patterns: []pattern.Kind{pattern.ID}, NaturalTiling: true}
	plan, err := Schedule(models.AlexNet(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Totals.Refreshes != 0 || plan.Energy.Refresh != 0 {
		t.Error("SRAM design accrued refresh energy")
	}
}

func TestNaturalTilingValues(t *testing.T) {
	cfg := hw.TestAccelerator()
	l, _ := models.ResNet().Layer("res4a_branch1")
	nat := NaturalTiling(l, cfg)
	want := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 14}
	if nat != want {
		t.Errorf("natural tiling = %v, want %v", nat, want)
	}
	// Small dimensions clamp.
	small := models.ConvLayer{Name: "s", N: 3, H: 8, L: 8, M: 2, K: 1, S: 1}
	nat = NaturalTiling(small, cfg)
	if nat.Tm != 2 || nat.Tn != 3 || nat.Tc != 8 {
		t.Errorf("clamped natural tiling = %v", nat)
	}
}

func TestNaturalModeTakesFirstFeasible(t *testing.T) {
	// VGG conv1_2 under OD: the natural Tn=16 input slab (16·224² words)
	// exceeds the 1.454 MB buffer, so the baseline reduces Tn until
	// feasible rather than optimizing.
	cfg := hw.TestAcceleratorEDRAM()
	l, _ := models.VGG().Layer("conv1_2")
	opts := Options{
		Patterns:        []pattern.Kind{pattern.OD},
		RefreshInterval: retention.TypicalRetentionTime,
		Controller:      memctrl.Conventional{},
		NaturalTiling:   true,
	}
	lp, err := ScheduleLayer(l, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Analysis.Tiling.Tn >= 16 {
		t.Errorf("expected reduced Tn, got %v", lp.Analysis.Tiling)
	}
	if !lp.Analysis.Feasible {
		t.Error("chosen plan infeasible")
	}
}

func TestFixedTiling(t *testing.T) {
	cfg := hw.DaDianNao()
	ti := pattern.Tiling{Tm: 64, Tn: 64, Tr: 1, Tc: 1}
	opts := Options{
		Patterns:        []pattern.Kind{pattern.WD},
		RefreshInterval: retention.TypicalRetentionTime,
		Controller:      memctrl.Conventional{},
		FixedTiling:     &ti,
	}
	plan, err := Schedule(models.AlexNet(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, lp := range plan.Layers {
		if lp.Analysis.Tiling != ti {
			t.Fatalf("tiling %v escaped the fixed point", lp.Analysis.Tiling)
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := (Options{}).Validate(); err == nil {
		t.Error("empty pattern space should fail")
	}
	if err := (Options{Patterns: []pattern.Kind{pattern.OD}, Controller: memctrl.Conventional{}}).Validate(); err == nil {
		t.Error("controller without interval should fail")
	}
	bad := pattern.Tiling{}
	if err := (Options{Patterns: []pattern.Kind{pattern.OD}, FixedTiling: &bad}).Validate(); err == nil {
		t.Error("invalid fixed tiling should fail")
	}
}

func TestScheduleRejectsInvalidInputs(t *testing.T) {
	cfg := hw.TestAccelerator()
	if _, err := Schedule(models.Network{Name: "x"}, cfg, ranaOpts()); err == nil {
		t.Error("empty network should fail")
	}
	badCfg := cfg
	badCfg.ArrayM = 0
	if _, err := Schedule(models.AlexNet(), badCfg, ranaOpts()); err == nil {
		t.Error("invalid config should fail")
	}
	if _, err := Schedule(models.AlexNet(), cfg, Options{}); err == nil {
		t.Error("invalid options should fail")
	}
}

func TestRefreshFlags(t *testing.T) {
	lp := LayerPlan{
		Needs: memctrl.Needs{Inputs: true, Weights: true},
		Alloc: memctrl.Allocation{InputBanks: 2, OutputBanks: 3, WeightBanks: 1},
	}
	flags := lp.RefreshFlags(10)
	want := []bool{true, true, false, false, false, true, false, false, false, false}
	for i := range want {
		if flags[i] != want[i] {
			t.Fatalf("flags = %v, want %v", flags, want)
		}
	}
	// Truncation at the bank budget.
	short := lp.RefreshFlags(3)
	if len(short) != 3 {
		t.Errorf("len = %d", len(short))
	}
}

func TestEnergyUsesDesignTech(t *testing.T) {
	l, _ := models.ResNet().Layer("res4a_branch1")
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 14}
	sramPlan, err := Evaluate(l, pattern.ID, ti, hw.TestAccelerator(), Options{Patterns: []pattern.Kind{pattern.ID}})
	if err != nil {
		t.Fatal(err)
	}
	edramPlan, err := Evaluate(l, pattern.ID, ti, hw.TestAcceleratorEDRAM(), Options{Patterns: []pattern.Kind{pattern.ID}})
	if err != nil {
		t.Fatal(err)
	}
	// Same traffic, different per-access energy.
	if sramPlan.Counts.BufferAccesses != edramPlan.Counts.BufferAccesses {
		t.Fatal("traffic should not depend on tech")
	}
	wantRatio := energy.SRAMAccessPJ / energy.EDRAMAccessPJ
	gotRatio := sramPlan.Energy.BufferAccess / edramPlan.Energy.BufferAccess
	if gotRatio < wantRatio-0.01 || gotRatio > wantRatio+0.01 {
		t.Errorf("buffer energy ratio = %.3f, want %.3f", gotRatio, wantRatio)
	}
}

func TestPlanExecTimeAggregates(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	plan, err := Schedule(models.AlexNet(), cfg, ranaOpts())
	if err != nil {
		t.Fatal(err)
	}
	var sum time.Duration
	for _, lp := range plan.Layers {
		sum += lp.Analysis.ExecTime
	}
	if sum != plan.ExecTime {
		t.Errorf("exec time %v != sum %v", plan.ExecTime, sum)
	}
}

func TestScheduleContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := ScheduleContext(ctx, models.VGG(), hw.TestAcceleratorEDRAM(), ranaOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The error reports how far the schedule got before stopping.
	if !strings.Contains(err.Error(), "canceled at layer") {
		t.Errorf("error %q does not name the layer reached", err)
	}
}

func TestScheduleContextBackgroundMatchesSchedule(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	net := models.AlexNet()
	a, err := Schedule(net, cfg, ranaOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScheduleContext(context.Background(), net, cfg, ranaOpts())
	if err != nil {
		t.Fatal(err)
	}
	ga, _ := json.Marshal(Encode(a))
	gb, _ := json.Marshal(Encode(b))
	if string(ga) != string(gb) {
		t.Error("ScheduleContext diverged from Schedule")
	}
}
