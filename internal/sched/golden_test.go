package sched

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
)

var update = flag.Bool("update", false, "rewrite the golden schedule files")

// goldenPlan is the serialized regression view of a compiled schedule:
// per layer the chosen pattern and tiling, the refresh decision, the bank
// allocation and the Eq. 14 counts, plus the network totals. Quantities
// that re-derive from these (per-bank flag vectors, priced energy
// components) are covered by internal/verify and omitted here.
type goldenPlan struct {
	Network  string        `json:"network"`
	Layers   []goldenLayer `json:"layers"`
	MACs     uint64        `json:"macs"`
	Buffer   uint64        `json:"buffer_accesses"`
	Refresh  uint64        `json:"refresh_words"`
	DDR      uint64        `json:"ddr_accesses"`
	EnergyPJ float64       `json:"energy_pj"`
	ExecNs   int64         `json:"exec_ns"`
}

type goldenLayer struct {
	Name    string         `json:"name"`
	Pattern string         `json:"pattern"`
	Tiling  pattern.Tiling `json:"tiling"`
	Needs   memctrl.Needs  `json:"needs"`
	Alloc   [3]int         `json:"alloc"`
	Refresh uint64         `json:"refresh_words"`
	ExecNs  int64          `json:"exec_ns"`
}

func toGolden(p *Plan) goldenPlan {
	g := goldenPlan{
		Network:  p.Network.Name,
		MACs:     p.Totals.MACs,
		Buffer:   p.Totals.BufferAccesses,
		Refresh:  p.Totals.Refreshes,
		DDR:      p.Totals.DDRAccesses,
		EnergyPJ: p.Energy.Total(),
		ExecNs:   p.ExecTime.Nanoseconds(),
	}
	for i, lp := range p.Layers {
		g.Layers = append(g.Layers, goldenLayer{
			Name:    p.Network.Layers[i].Name,
			Pattern: lp.Analysis.Pattern.String(),
			Tiling:  lp.Analysis.Tiling,
			Needs:   lp.Needs,
			Alloc:   [3]int{lp.Alloc.InputBanks, lp.Alloc.OutputBanks, lp.Alloc.WeightBanks},
			Refresh: lp.Counts.Refreshes,
			ExecNs:  lp.Analysis.ExecTime.Nanoseconds(),
		})
	}
	return g
}

// TestGoldenSchedules pins the full RANA design point's compiled schedule
// for every benchmark network. Any change to pattern selection, tiling
// search, refresh-flag computation or the energy model shows up as a
// golden diff; run `go test ./internal/sched -update` to accept it.
func TestGoldenSchedules(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	opts := Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: 734 * time.Microsecond,
		Controller:      memctrl.RefreshOptimized{},
	}
	for _, net := range models.Benchmarks() {
		t.Run(net.Name, func(t *testing.T) {
			plan, err := Schedule(net, cfg, opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.MarshalIndent(toGolden(plan), "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", net.Name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if string(want) != string(got) {
				t.Errorf("schedule for %s drifted from %s; run `go test ./internal/sched -update` if intended.\ngot:\n%s",
					net.Name, path, got)
			}
		})
	}
}
