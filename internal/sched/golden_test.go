package sched

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched/search"
)

var update = flag.Bool("update", false, "rewrite the golden schedule files")

// The serialized regression view of a compiled schedule is the exported
// wire encoding (encode.go) — the same format `rana-sched -json` and the
// ranad serving API emit, so a golden diff here also means a wire-format
// change for every consumer.

// TestGoldenSchedules pins the full RANA design point's compiled schedule
// for every benchmark network under every search strategy. Exhaustive
// and Pruned share the `golden` files (branch-and-bound is argmin-
// preserving, so a split between them is itself a regression); Beam has
// its own `golden-beam` files since it trades schedule quality for a
// bounded per-layer budget. Any change to pattern selection, tiling
// search, refresh-flag computation or the energy model shows up as a
// golden diff; run `go test ./internal/sched -update` to accept it.
func TestGoldenSchedules(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	opts := Options{
		Patterns:        []pattern.Kind{pattern.OD, pattern.WD},
		RefreshInterval: 734 * time.Microsecond,
		Controller:      memctrl.RefreshOptimized{},
	}
	cases := []struct {
		strategy search.Strategy
		dir      string
		write    bool // which run regenerates the file under -update
	}{
		{search.Exhaustive, "golden", true},
		{search.Pruned, "golden", false},
		{search.Beam, "golden-beam", true},
	}
	for _, c := range cases {
		opts := opts
		opts.Search = c.strategy
		for _, net := range models.Benchmarks() {
			t.Run(string(c.strategy)+"/"+net.Name, func(t *testing.T) {
				plan, err := Schedule(net, cfg, opts)
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.MarshalIndent(Encode(plan), "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				path := filepath.Join("testdata", c.dir, net.Name+".json")
				if *update && c.write {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("%v (run with -update to create)", err)
				}
				if string(want) != string(got) {
					t.Errorf("%s schedule for %s drifted from %s; run `go test ./internal/sched -update` if intended.\ngot:\n%s",
						c.strategy, net.Name, path, got)
				}
			})
		}
	}
}
