package sched

import (
	"encoding/json"
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched/search"
)

func withStrategy(o Options, s search.Strategy) Options {
	o.Search = s
	return o
}

// TestPrunedMatchesExhaustive is the strategy-differential oracle over
// the benchmark zoo: branch-and-bound must return byte-identical plans
// to the exhaustive reference (same argmin, same tie-breaks — the
// admissibility guarantee), while exactly pricing strictly fewer
// candidates (the point of pruning).
func TestPrunedMatchesExhaustive(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		ex, err := Schedule(net, cfg, withStrategy(ranaOpts(), search.Exhaustive))
		if err != nil {
			t.Fatalf("%s exhaustive: %v", net.Name, err)
		}
		pr, err := Schedule(net, cfg, withStrategy(ranaOpts(), search.Pruned))
		if err != nil {
			t.Fatalf("%s pruned: %v", net.Name, err)
		}
		ej, _ := json.Marshal(Encode(ex))
		pj, _ := json.Marshal(Encode(pr))
		if string(ej) != string(pj) {
			t.Errorf("%s: pruned plan diverged from exhaustive\nexhaustive: %s\npruned:     %s", net.Name, ej, pj)
		}

		var exEvals, prEvals int
		for _, l := range net.Layers {
			_, es, err := ExploreLayer(l, cfg, withStrategy(ranaOpts(), search.Exhaustive))
			if err != nil {
				t.Fatal(err)
			}
			_, ps, err := ExploreLayer(l, cfg, withStrategy(ranaOpts(), search.Pruned))
			if err != nil {
				t.Fatal(err)
			}
			if ps.Candidates != es.Candidates {
				t.Errorf("%s/%s: strategies saw different candidate spaces: %d vs %d",
					net.Name, l.Name, ps.Candidates, es.Candidates)
			}
			if ps.Evaluated+ps.Pruned != es.Evaluated {
				t.Errorf("%s/%s: pruned evaluations %d + skips %d != exhaustive evaluations %d",
					net.Name, l.Name, ps.Evaluated, ps.Pruned, es.Evaluated)
			}
			exEvals += es.Evaluated
			prEvals += ps.Evaluated
		}
		if prEvals >= exEvals {
			t.Errorf("%s: pruning saved nothing (%d vs %d exact evaluations)", net.Name, prEvals, exEvals)
		}
		t.Logf("%s: exhaustive priced %d candidates, pruned %d (%.1f%% skipped)",
			net.Name, exEvals, prEvals, 100*float64(exEvals-prEvals)/float64(exEvals))
	}
}

// TestTilingSpaceEnumeratedOncePerLayer pins the hoist fix: the tiling
// space is pattern-independent, so the number of tilings streamed must
// not scale with the number of pattern kinds explored.
func TestTilingSpaceEnumeratedOncePerLayer(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	l, _ := models.VGG().Layer("conv4_2")
	one := ranaOpts()
	one.Patterns = []pattern.Kind{pattern.OD}
	_, s1, err := ExploreLayer(l, cfg, one)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := ExploreLayer(l, cfg, ranaOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := len(candidateTilings(l, cfg, ranaOpts()))
	if s1.Tilings != want || s2.Tilings != want {
		t.Errorf("tilings streamed = %d (1 kind) / %d (2 kinds), want %d both — space must be enumerated once, not per pattern",
			s1.Tilings, s2.Tilings, want)
	}
	if s2.Candidates != 2*s2.Admitted {
		t.Errorf("candidates %d != kinds × admitted tilings %d", s2.Candidates, 2*s2.Admitted)
	}

	// The natural-tiling baseline path enumerates its reduction order
	// once, too.
	nat := ranaOpts()
	nat.NaturalTiling = true
	_, ns, err := ExploreLayer(l, cfg, nat)
	if err != nil {
		t.Fatal(err)
	}
	if natWant := len(naturalTilings(l, cfg)); ns.Tilings != natWant {
		t.Errorf("natural mode streamed %d tilings, want %d (enumerated once, not per kind)", ns.Tilings, natWant)
	}
}

// TestBeamPlansAreFeasibleAndNoBetterThanExact: the beam may lose
// schedule quality but never feasibility or determinism — its plan must
// be valid for every zoo network, cost at least the exact argmin, and
// reproduce run to run.
func TestBeamPlansAreFeasibleAndNoBetterThanExact(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	beam := withStrategy(ranaOpts(), search.Beam)
	beam.BeamWidth = 16
	for _, net := range models.Benchmarks() {
		exact, err := Schedule(net, cfg, ranaOpts())
		if err != nil {
			t.Fatal(err)
		}
		a, err := Schedule(net, cfg, beam)
		if err != nil {
			t.Fatalf("%s beam: %v", net.Name, err)
		}
		b, err := Schedule(net, cfg, beam)
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(Encode(a))
		bj, _ := json.Marshal(Encode(b))
		if string(aj) != string(bj) {
			t.Errorf("%s: beam schedule is not deterministic", net.Name)
		}
		for _, lp := range a.Layers {
			if !lp.Analysis.Feasible {
				t.Errorf("%s: beam chose an infeasible layer plan", net.Name)
			}
		}
		if a.Energy.Total() < exact.Energy.Total()-1e-6 {
			t.Errorf("%s: beam energy %.3e beats the exact argmin %.3e — impossible with a correct exact search",
				net.Name, a.Energy.Total(), exact.Energy.Total())
		}
	}
}

// TestBeamEvaluatesAtMostWidthPerLayer: the whole point of the beam is
// a hard per-layer exact-pricing budget.
func TestBeamEvaluatesAtMostWidthPerLayer(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	opts := withStrategy(ranaOpts(), search.Beam)
	opts.BeamWidth = 8
	for _, l := range models.VGG().Layers {
		_, s, err := ExploreLayer(l, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		// The feasibility-aware bound keeps the kept set winnable, so the
		// rescan fallback (all kept candidates infeasible) never fires
		// when any feasible candidate exists — the budget must hold.
		if s.Evaluated > opts.BeamWidth {
			t.Errorf("%s: beam priced %d candidates with width %d", l.Name, s.Evaluated, opts.BeamWidth)
		}
	}
}

// TestStrategyOptionValidation: unknown strategies and negative beam
// widths are rejected at the options boundary.
func TestStrategyOptionValidation(t *testing.T) {
	o := ranaOpts()
	o.Search = "simulated-annealing"
	if err := o.Validate(); err == nil {
		t.Error("unknown strategy validated")
	}
	o = ranaOpts()
	o.BeamWidth = -1
	if err := o.Validate(); err == nil {
		t.Error("negative beam width validated")
	}
	for _, s := range search.Strategies() {
		if err := withStrategy(ranaOpts(), s).Validate(); err != nil {
			t.Errorf("%s: %v", s, err)
		}
	}
}

// TestFixedTilingUnderEveryStrategy: the fixed-tiling baseline space is
// a single point; every strategy must land on it.
func TestFixedTilingUnderEveryStrategy(t *testing.T) {
	cfg := hw.DaDianNao()
	ti := pattern.Tiling{Tm: 64, Tn: 64, Tr: 1, Tc: 1}
	for _, s := range search.Strategies() {
		opts := withStrategy(ranaOpts(), s)
		opts.Patterns = []pattern.Kind{pattern.WD}
		opts.FixedTiling = &ti
		plan, err := Schedule(models.AlexNet(), cfg, opts)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		for _, lp := range plan.Layers {
			if lp.Analysis.Tiling != ti {
				t.Fatalf("%s: tiling %v escaped the fixed point", s, lp.Analysis.Tiling)
			}
		}
	}
}
