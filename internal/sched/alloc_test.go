package sched

// Allocation-regression gates for the pooled compile path. Two steady
// states must stay allocation-free:
//
//   - the warm-memo compile: every layer served from a shared Memo's
//     completed entries through the peek pass;
//   - the steady-state explore loop: an un-memoized sequential compile
//     whose scratch (explore arenas, bound, pricing contexts, prefix
//     memo, compile state) is all pooled.
//
// testing.AllocsPerRun pins GOMAXPROCS to 1 and does a warmup run, so
// the pools are primed before counting. The gates are skipped under the
// race detector, whose instrumentation allocates on its own.

import (
	"context"
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
)

// TestWarmMemoCompileAllocFree gates the whole zoo, not one small net:
// AlexNet's 5 layers hid a Network.Validate map that only heap-allocated
// past 8 layers.
func TestWarmMemoCompileAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under the race detector")
	}
	cfg := hw.TestAcceleratorEDRAM()
	ctx := context.Background()
	for _, net := range models.Benchmarks() {
		t.Run(net.Name, func(t *testing.T) {
			opts := ranaOpts()
			opts.Memo = NewMemo(0)
			opts.Prefix = NewPrefixMemo(0)
			opts.Parallelism = 1

			var p Plan
			if _, err := ExploreNetworkInto(ctx, net, cfg, opts, &p); err != nil {
				t.Fatal(err)
			}
			warm := p
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := ExploreNetworkInto(ctx, net, cfg, opts, &p); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Fatalf("warm-memo compile allocated %.1f objects/op, want 0", allocs)
			}
			if len(p.Layers) != len(warm.Layers) {
				t.Fatalf("warm compile produced %d layers, want %d", len(p.Layers), len(warm.Layers))
			}
			for i := range p.Layers {
				if p.Layers[i] != warm.Layers[i] {
					t.Fatalf("layer %d drifted between warm compiles", i)
				}
			}
		})
	}
}

func TestSteadyStateExploreAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation gates are meaningless under the race detector")
	}
	cfg := hw.TestAcceleratorEDRAM()
	net := models.AlexNet()
	opts := ranaOpts()
	opts.DisableMemo = true
	opts.Parallelism = 1
	ctx := context.Background()

	var p Plan
	if _, err := ExploreNetworkInto(ctx, net, cfg, opts, &p); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := ExploreNetworkInto(ctx, net, cfg, opts, &p); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state explore compile allocated %.1f objects/op, want 0", allocs)
	}
}
