// Package sched implements Stage 2 of the RANA framework: the layer-based
// scheduling scheme of Fig. 13. For each CONV layer it explores
// computation patterns and tiling parameters under the core local-storage
// constraints, estimates total system energy with the Eq. 14 model, and
// assigns the cheapest configuration — producing the hybrid computation
// pattern and the layerwise configurations (pattern, tiling, refresh
// flags) consumed by the execution phase.
package sched

import (
	"context"
	"fmt"
	"math"
	"time"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sched/search"
)

// RetentionGuard is the safety margin applied when comparing a data
// lifetime against the refresh interval: a lifetime within 10% of the
// interval is not trusted to beat retention.
const RetentionGuard = 0.9

// Options configures one scheduling run — one design point of Table IV.
type Options struct {
	// Patterns is the exploration space. RANA uses {OD, WD} (§IV-C3: ID
	// is excluded — its lifetime is always longer than OD's and its
	// storage similar); the eD+ID / S+ID baselines pass {ID}, eD+OD
	// passes {OD}.
	Patterns []pattern.Kind

	// RefreshInterval is the refresh pulse period: the conventional
	// 45 µs, or the tolerable retention time from Stage 1 (734 µs at the
	// 10⁻⁵ failure rate). Ignored for SRAM buffers.
	RefreshInterval time.Duration

	// Controller models refresh issue. Nil means no refresh at all
	// (SRAM designs).
	Controller memctrl.Controller

	// FixedTiling pins the tiling parameters instead of exploring —
	// used for the DaDianNao baseline (Tm=Tn=64, Tr=Tc=1, §V-C).
	FixedTiling *pattern.Tiling

	// NaturalTiling restricts each layer to the accelerator's natural
	// tiling — array-width tiles (Tm=ArrayM, Tn=ArrayN pixels worth of
	// Tr×Tc, clamped to the layer dimensions) — instead of exploring.
	// The Table IV baselines (S+ID, eD+ID, eD+OD) run this way: their
	// computation pattern is hardwired, only RANA explores (Fig. 13).
	NaturalTiling bool

	// RetentionGuard overrides the default guard band (RetentionGuard)
	// applied when comparing lifetimes against the refresh interval.
	// Zero selects the default; 1.0 disables the margin.
	RetentionGuard float64

	// Search selects the exploration strategy over the pattern × tiling
	// space: search.Exhaustive prices every candidate, search.Pruned
	// (the default — what the empty value resolves to) is branch-and-
	// bound with the same argmin, search.Beam prices only the most
	// promising candidates per layer. Ignored in NaturalTiling mode,
	// which is not an optimization at all (first feasible wins).
	Search search.Strategy

	// BeamWidth bounds search.Beam's exact evaluations per layer; zero
	// selects search.DefaultBeamWidth. Ignored by other strategies.
	BeamWidth int

	// Backend names the memory-technology backend (internal/mem
	// registry) the buffer is priced and refresh-modeled as. Empty
	// selects the config's default technology adapter ("edram" for
	// EDRAM configs, "sram" for SRAM), which reproduces the historical
	// hard-wired behavior byte-for-byte.
	Backend string

	// OperatingPoint pins the backend to one named operating point
	// (e.g. "v0.8"). Empty searches the backend's whole point ladder —
	// for multi-point backends the point becomes a third search axis
	// next to pattern and tiling.
	OperatingPoint string

	// ErrorBudget is the maximum raw bit-error rate an operating point
	// may exhibit and still enter the search space — the EDEN
	// resilience-curve admission. Zero selects the paper's tolerable
	// failure rate (10⁻⁵, Fig. 11).
	ErrorBudget float64

	// Traversal opens the tile-traversal-order search axis (RTC): a
	// ParseTraversalSpec grammar string naming the orders explored next
	// to pattern, tiling, operating point and mapping. Empty (or
	// "linear") keeps the axis at the paper's loop nest only — the
	// historical behavior, byte-identical plans. "rtc" searches the
	// blocked ladder; "blocked<n>" adds one stage count.
	Traversal string

	// Mapping opens the bank/row data-mapping search axis (PENDRAM): a
	// ParseMappingSpec grammar string naming the placement policies
	// explored. Empty (or "row-major") keeps the contiguous default
	// only; "interleave" adds the row-interleaved policy; "all" searches
	// every registered policy.
	Mapping string

	// LayerBudgets tightens the error budget per layer name with the
	// tolerable failure rates from Stage 1's per-layer resilience curves
	// (training.LayerTolerableRates): a layer listed here admits only
	// operating points whose bit-error rate fits its own curve, not just
	// the uniform budget. Layers absent from the map use ErrorBudget
	// unchanged; budgets only ever tighten. Excluded from the JSON
	// projection — the serving layer folds resolved budgets into its
	// cache key explicitly.
	LayerBudgets map[string]float64 `json:"-"`

	// Parallelism bounds the worker goroutines each layer's exploration
	// fans out across its candidate space (search.Options.Parallelism).
	// Zero selects GOMAXPROCS; 1 forces the sequential reference path.
	// Plans are byte-identical at every level, so Parallelism is a
	// throughput knob, not a semantic one — it is excluded from the memo
	// key and the serving cache key.
	Parallelism int

	// Memo, when non-nil, shares completed layer-shape explorations
	// across layers and across schedules (see Memo). When nil,
	// ScheduleContext builds a private per-compile memo unless
	// DisableMemo is set; the layer-level entry points (ScheduleLayer,
	// ExploreLayer) never memoize on their own.
	Memo *Memo `json:"-"`

	// DisableMemo turns off the implicit per-compile memo — the
	// benchmark baseline and the memo-equality oracle use it to compare
	// against un-memoized exploration.
	DisableMemo bool

	// Prefix, when non-nil, shares bound prefix-sum computations
	// (see PrefixMemo) across compiles — ranad installs one server-wide
	// next to its shared Memo. When nil, the network entry points lease
	// a pooled per-compile prefix memo unless DisableIncremental is set.
	Prefix *PrefixMemo `json:"-"`

	// DisableIncremental turns off incremental bound pricing (the
	// per-goroutine pricing contexts and the prefix memo), forcing every
	// lower-bound computation through the stateless reference evaluator.
	// Plans are bit-identical either way — this is the baseline the
	// incremental-pricing oracle (verify.CompareIncremental) and the
	// benchmark harness compare against, not a semantic knob.
	DisableIncremental bool

	// Check, when non-nil, is invoked on the assembled plan before
	// Schedule returns — the seam the verification harness
	// (internal/verify) uses to enforce plan invariants at schedule time.
	// A non-nil error fails the whole schedule.
	Check func(*Plan) error `json:"-"`
}

// Guard returns the effective guard-band factor (the override, or the
// package default) — the multiplier external checkers must apply when
// re-deriving refresh decisions from lifetimes.
func (o Options) Guard() float64 { return o.guard() }

// guard returns the effective guard-band factor.
func (o Options) guard() float64 {
	if o.RetentionGuard > 0 {
		return o.RetentionGuard
	}
	return RetentionGuard
}

// Fallback returns the cheap degraded-mode variant of the options: the
// single-candidate uniform schedule ranad's degradation ladder falls
// back to when a request's deadline budget cannot pay for the full
// hybrid exploration. The pattern space collapses to the paper's
// non-hybrid baselines (OD first, WD as a reserve for layers OD cannot
// fit) at the accelerator's natural tiling, so each layer is priced in
// a handful of candidate evaluations instead of thousands — trading
// schedule quality (more refresh/off-chip energy, like Table IV's
// eD+OD) for bounded latency. Refresh interval, controller and guard
// band are preserved.
func (o Options) Fallback() Options {
	o.Patterns = []pattern.Kind{pattern.OD, pattern.WD}
	o.NaturalTiling = true
	o.FixedTiling = nil
	// Collapse the operating-point axis: degraded mode prices the
	// backend's safe datasheet corner only, never the approximate
	// ladder — one less dimension of work under a tight deadline.
	if o.OperatingPoint == "" {
		o.OperatingPoint = mem.Nominal
	}
	// Collapse the traversal and mapping axes to their defaults (linear
	// nest, row-major placement) for the same reason: degraded mode
	// prices one cell per candidate, never a ladder.
	o.Traversal = ""
	o.Mapping = ""
	return o
}

// PanicError is a panic recovered at a scheduling boundary and converted
// into an error: the per-layer exploration goroutines recover panics so
// a malformed candidate cannot kill a process that runs the scheduler as
// a service. Value is the recovered panic value; Stack the goroutine
// stack at recovery time.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Validate reports configuration errors.
func (o Options) Validate() error {
	if len(o.Patterns) == 0 {
		return fmt.Errorf("sched: no patterns to explore")
	}
	if o.Controller != nil && o.RefreshInterval <= 0 {
		return fmt.Errorf("sched: controller set but refresh interval %v invalid", o.RefreshInterval)
	}
	if o.FixedTiling != nil {
		if err := o.FixedTiling.Validate(); err != nil {
			return err
		}
	}
	if err := o.Search.Validate(); err != nil {
		return err
	}
	if o.BeamWidth < 0 {
		return fmt.Errorf("sched: negative beam width %d", o.BeamWidth)
	}
	if o.Backend != "" {
		b, ok := mem.Lookup(o.Backend)
		if !ok {
			return fmt.Errorf("sched: unknown memory backend %q", o.Backend)
		}
		if b.Role() != mem.RoleBuffer {
			return fmt.Errorf("sched: backend %q is %s-role, not a buffer", o.Backend, b.Role())
		}
	}
	if o.ErrorBudget < 0 || o.ErrorBudget > 1 {
		return fmt.Errorf("sched: error budget %g outside [0, 1]", o.ErrorBudget)
	}
	// Empty specs are the always-valid defaults; skipping the parse
	// keeps repeated validation (once per compile) allocation-free.
	if o.Traversal != "" {
		if _, err := ParseTraversalSpec(o.Traversal); err != nil {
			return err
		}
	}
	if o.Mapping != "" {
		if _, err := ParseMappingSpec(o.Mapping); err != nil {
			return err
		}
	}
	for name, lb := range o.LayerBudgets {
		if math.IsNaN(lb) || lb < 0 || lb > 1 {
			return fmt.Errorf("sched: layer %q error budget %g outside [0, 1]", name, lb)
		}
	}
	return nil
}

// LayerPlan is one layer's chosen configuration with its full analytical
// characterization and energy estimate — one entry of the layerwise
// configurations RANA compiles (§IV-A Stage 2).
type LayerPlan struct {
	Analysis pattern.Analysis
	// Needs are the per-data-type refresh flags at the plan's interval.
	Needs memctrl.Needs
	// Alloc is the unified buffer system's bank assignment.
	Alloc memctrl.Allocation
	// Counts are the layer's Eq. 14 operation counts (α, βb, γ, βd).
	Counts energy.Counts
	// Energy is the layer's estimated system energy breakdown.
	Energy energy.Breakdown
	// Point names the memory-backend operating point the layer was
	// priced at; empty means the backend's nominal corner (the only
	// possibility on single-point backends, so pre-backend plans carry
	// the zero value).
	Point string
	// Traversal names the chosen tile traversal order; empty means the
	// linear nest (the default axis value, so pre-axis plans carry the
	// zero value). Mirrors Analysis.Traversal in canonical spelling.
	Traversal string
	// Mapping names the chosen data-mapping policy; empty means
	// row-major placement.
	Mapping string
}

// RefreshFlags expands the plan into per-bank refresh flags for a buffer
// of totalBanks banks, in allocation order (inputs, outputs, weights);
// unallocated banks are unflagged. This is the bit vector the
// refresh-optimized controller of Fig. 14 loads per layer.
func (lp LayerPlan) RefreshFlags(totalBanks int) []bool {
	flags := make([]bool, totalBanks)
	mark := func(start, n int, on bool) int {
		for i := 0; i < n && start+i < totalBanks; i++ {
			flags[start+i] = on
		}
		return start + n
	}
	pos := 0
	pos = mark(pos, lp.Alloc.InputBanks, lp.Needs.Inputs)
	pos = mark(pos, lp.Alloc.OutputBanks, lp.Needs.Outputs)
	mark(pos, lp.Alloc.WeightBanks, lp.Needs.Weights)
	return flags
}

// Plan is a whole-network schedule: the hybrid computation pattern plus
// network totals.
type Plan struct {
	Network  models.Network
	Config   hw.Config
	Options  Options
	Layers   []LayerPlan
	Totals   energy.Counts
	Energy   energy.Breakdown
	ExecTime time.Duration
}

// Schedule plans every layer of the network on the accelerator,
// implementing the optimization loop of Fig. 13.
func Schedule(net models.Network, cfg hw.Config, opts Options) (*Plan, error) {
	return ScheduleContext(context.Background(), net, cfg, opts)
}

// ScheduleContext is Schedule with cancellation: the per-layer
// exploration loop checks ctx between layers and aborts early, returning
// ctx.Err() wrapped with the layer reached. Long-running callers (the
// serving subsystem, CLIs under signal control) use this entry point;
// Schedule is ScheduleContext under context.Background().
func ScheduleContext(ctx context.Context, net models.Network, cfg hw.Config, opts Options) (*Plan, error) {
	p, _, err := ExploreNetworkContext(ctx, net, cfg, opts)
	return p, err
}

// NetworkStats aggregates one whole-network schedule's exploration work.
// Search sums only the work actually performed — a memo hit contributes
// nothing to it, exactly like the exploration it skipped.
type NetworkStats struct {
	// Search is the summed per-layer search work (Workers keeps the max).
	Search search.Stats
	// MemoHits counts layers served from the memo.
	MemoHits int
	// MemoMisses counts layers that had to explore. Hits + Misses equals
	// the layer count unless the memo was nil, disabled or saturated.
	MemoMisses int
	// PrefixHits and PrefixMisses count the bound prefix-sum lookups the
	// compile's exploration served from (respectively computed into) the
	// prefix memo. Zero when incremental pricing is disabled. With a
	// shared Options.Prefix the counts are deltas over the shared
	// counters and may include a concurrent compile's lookups.
	PrefixHits   uint64
	PrefixMisses uint64
}

// ExploreNetworkContext is ScheduleContext with the aggregate work
// accounting exposed: summed search counters plus memo effectiveness.
// The benchmark harness and ranad's /metrics consume the stats.
func ExploreNetworkContext(ctx context.Context, net models.Network, cfg hw.Config, opts Options) (*Plan, NetworkStats, error) {
	p := &Plan{}
	ns, err := ExploreNetworkInto(ctx, net, cfg, opts, p)
	if err != nil {
		return nil, ns, err
	}
	return p, ns, nil
}

// ScheduleLayer explores the configured pattern × tiling space for one
// layer and returns the minimum-energy plan.
func ScheduleLayer(l models.ConvLayer, cfg hw.Config, opts Options) (LayerPlan, error) {
	if err := opts.Validate(); err != nil {
		return LayerPlan{}, err
	}
	return scheduleLayer(l, cfg, opts)
}

// ExploreLayer is ScheduleLayer with the search statistics exposed:
// how many tilings were streamed, how many candidates the strategy
// bounded, pruned and exactly priced. The verification harness's
// strategy-differential oracle and the benchmarks consume the counters.
func ExploreLayer(l models.ConvLayer, cfg hw.Config, opts Options) (LayerPlan, search.Stats, error) {
	if err := opts.Validate(); err != nil {
		return LayerPlan{}, search.Stats{}, err
	}
	return exploreLayer(l, cfg, opts)
}

// scheduleLayer is ScheduleLayer without the options re-validation, for
// callers that already validated once at the public entry point.
func scheduleLayer(l models.ConvLayer, cfg hw.Config, opts Options) (LayerPlan, error) {
	lp, _, err := exploreLayer(l, cfg, opts)
	return lp, err
}

// exploreLayer runs one layer's exploration through the search engine
// (or the legacy first-feasible loop in NaturalTiling mode) and returns
// the chosen plan with the engine's work counters. The network compile
// path resolves the environment once and calls exploreLayerEnv directly.
func exploreLayer(l models.ConvLayer, cfg hw.Config, opts Options) (LayerPlan, search.Stats, error) {
	env, err := envFor(opts)
	if err != nil {
		return LayerPlan{}, search.Stats{}, err
	}
	return exploreLayerEnv(l, cfg, opts, env)
}

// naturalSchedule is the baseline path: it does not optimize, it takes
// the first feasible candidate kind-major over the natural reduction
// order (OD across every tiling before WD sees any — the Table IV
// baselines' hardwired behavior), so it cannot go through the
// tiling-major engine. The tiling space is pattern-independent:
// enumerated once and core-filtered once, shared across kinds. The
// operating-point axis does not apply: a non-optimizing baseline prices
// the single resolved point (pinned, or the backend's nominal corner).
func naturalSchedule(l models.ConvLayer, cfg hw.Config, opts Options,
	bk mem.Backend, pt mem.OperatingPoint) (LayerPlan, search.Stats, error) {
	var stats search.Stats
	e := effectiveLayer(l)
	tilings := candidateTilings(l, cfg, opts)
	stats.Tilings = len(tilings)
	fit := make([]pattern.Tiling, 0, len(tilings))
	for _, t := range tilings {
		if t.FitsCore(e, cfg) {
			fit = append(fit, t)
		}
	}
	stats.Admitted = len(fit)
	for _, k := range opts.Patterns {
		for _, t := range fit {
			stats.Candidates++
			lp, err := evaluatePoint(l, k, t, cfg, opts, bk, pt)
			if err != nil {
				return LayerPlan{}, stats, err
			}
			stats.Evaluated++
			if lp.Analysis.Feasible {
				return lp, stats, nil
			}
		}
	}
	return LayerPlan{}, stats, fmt.Errorf("no feasible tiling for layer %q", l.Name)
}

// Evaluate characterizes one candidate (pattern, tiling) and prices it
// with the Eq. 14 energy model, including the design's refresh policy,
// at the options' resolved memory backend and operating point (the
// pinned point, or the backend's nominal corner — the single-point view
// external checkers and the baseline paths price). Malformed candidates
// (invalid layer or tiling, unknown pattern or array mapping) are
// reported as errors rather than panics; cfg must otherwise be valid
// (callers validate once at the public entry points).
func Evaluate(l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config, opts Options) (LayerPlan, error) {
	bk, points, err := ResolveBackendForLayer(cfg, opts, l.Name)
	if err != nil {
		return LayerPlan{}, err
	}
	return evaluatePoint(l, k, t, cfg, opts, bk, points[0])
}

// evaluatePoint is Evaluate against one resolved (backend, operating
// point) at the default traversal and mapping — the single-cell view
// the baseline paths and external checkers price.
func evaluatePoint(l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config, opts Options,
	bk mem.Backend, pt mem.OperatingPoint) (LayerPlan, error) {
	return evaluateCell(l, k, t, cfg, opts, bk, pt, pattern.Linear, RowMajorMapping)
}

// evaluateCell characterizes and prices one full search cell — a
// (pattern, tiling) candidate at one resolved (operating point,
// traversal order, mapping policy): the single exact-pricing path every
// strategy, baseline and axis combination goes through. The traversal
// reshapes the analysis (lifetimes, DDR reloads); the mapping reshapes
// the pricing table; defaults of both reproduce the pre-axis path bit
// for bit.
func evaluateCell(l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config, opts Options,
	bk mem.Backend, pt mem.OperatingPoint, trv pattern.Traversal, mp MappingPolicy) (LayerPlan, error) {
	var lp LayerPlan
	if err := evaluateCellInto(&lp, l, k, t, cfg, opts, bk, pt, trv, mp); err != nil {
		return LayerPlan{}, err
	}
	return lp, nil
}

// evaluateCellInto is evaluateCell writing into a caller-owned plan —
// the form the search engine's scratch-Outcome contract needs on the
// hot path, where returning the several-hundred-byte LayerPlan by
// value dominated cold-compile profiles. Every LayerPlan field is
// overwritten (Needs explicitly, since the refresh branch may not run),
// so a reused *lp never leaks a previous candidate's state; on an error
// *lp is unspecified.
func evaluateCellInto(lp *LayerPlan, l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config, opts Options,
	bk mem.Backend, pt mem.OperatingPoint, trv pattern.Traversal, mp MappingPolicy) error {
	a, err := pattern.AnalyzeTraversal(l, k, t, cfg, trv)
	if err != nil {
		return err
	}
	lp.Analysis = a
	lp.Point = mem.NormalizePoint(pt.Name)
	lp.Traversal = traversalName(trv)
	lp.Mapping = mappingName(mp)
	lp.Alloc = memctrl.Allocate(a.BufferStorage, cfg.BankWords, cfg.Banks())
	lp.Needs = memctrl.Needs{}
	var refreshes uint64
	if opts.Controller != nil && bk.Refreshes() {
		// Refresh decisions keep a retention guard band: data is deemed
		// refresh-free only when its lifetime clears the interval with
		// margin, absorbing clock quantization and process variation.
		// Reduced-voltage operating points shift the whole retention
		// curve left (RetentionScale), so the schedule's interval — a
		// point on that curve — scales identically.
		interval := scaleInterval(opts.RefreshInterval, pt.RetentionScale)
		guarded := time.Duration(float64(interval) * opts.guard())
		lp.Needs = memctrl.NeedsFor(a.Lifetimes, guarded)
		refreshes = memctrl.RefreshWords(opts.Controller, a.ExecTime, interval,
			lp.Alloc, lp.Needs, cfg.Banks(), cfg.BankWords)
	}
	lp.Counts = energy.Counts{
		MACs:           a.MACs,
		BufferAccesses: a.BufferTraffic.Total(),
		Refreshes:      refreshes,
		DDRAccesses:    a.DDRTraffic.Total(),
		BufferWrites:   a.BufferWrites,
	}
	lp.Energy = energy.SystemTable(lp.Counts, mp.Apply(pt.Table()))
	return nil
}

// scaleInterval scales a refresh interval by an operating point's
// retention factor. Scale 1 returns the interval untouched — no float
// round trip — so nominal-point schedules are bit-identical to the
// pre-backend path.
func scaleInterval(interval time.Duration, scale float64) time.Duration {
	if scale == 1 {
		return interval
	}
	return time.Duration(float64(interval) * scale)
}

// effectiveLayer returns the per-group sub-layer whose dimensions the
// core constraints see (grouped convolutions run one group at a time).
func effectiveLayer(l models.ConvLayer) models.ConvLayer {
	if l.Groups <= 1 {
		return l
	}
	l.N /= l.Groups
	l.M /= l.Groups
	l.Groups = 1
	return l
}

// candidateTilings materializes the tiling exploration space for a
// layer: powers of two bounded by the dimension, plus the exact
// dimension and the PE-array widths, for each of Tm, Tn, Tr, Tc.
// FixedTiling collapses the space to a single point. The optimizing
// scheduler streams the same space through search.Product instead of
// materializing it; this slice form serves the NaturalTiling baseline
// path and brute-force test oracles.
func candidateTilings(l models.ConvLayer, cfg hw.Config, opts Options) []pattern.Tiling {
	if opts.FixedTiling != nil {
		return []pattern.Tiling{*opts.FixedTiling}
	}
	e := effectiveLayer(l)
	if opts.NaturalTiling {
		return naturalTilings(e, cfg)
	}
	tms := axisCandidates(e.M, cfg.ArrayM)
	tns := axisCandidates(e.N, cfg.ArrayN)
	trs := axisCandidates(e.R(), cfg.ArrayM)
	tcs := axisCandidates(e.C(), cfg.ArrayN)
	out := make([]pattern.Tiling, 0, len(tms)*len(tns)*len(trs)*len(tcs))
	for _, tm := range tms {
		for _, tn := range tns {
			for _, tr := range trs {
				for _, tc := range tcs {
					out = append(out, pattern.Tiling{Tm: tm, Tn: tn, Tr: tr, Tc: tc})
				}
			}
		}
	}
	return out
}

// NaturalTiling returns the accelerator's native tile for a layer:
// ArrayM output channels, ArrayN input channels (clamped), one output row
// of up to ArrayN pixels — the ⟨16, 16, 1, 16⟩ mapping of the paper's
// running cases (§III-B, §IV-C1).
func NaturalTiling(l models.ConvLayer, cfg hw.Config) pattern.Tiling {
	return pattern.Tiling{
		Tm: min(cfg.ArrayM, l.M),
		Tn: min(cfg.ArrayN, l.N),
		Tr: 1,
		Tc: min(cfg.ArrayN, l.C()),
	}
}

// naturalTilings returns the baseline reduction order: the natural tiling
// first, then successively halved Tn (a too-large working set is shed by
// loading fewer input channels per pass, §IV-C1), then halved Tm. The
// baseline scheduler takes the first feasible entry.
func naturalTilings(l models.ConvLayer, cfg hw.Config) []pattern.Tiling {
	nat := NaturalTiling(l, cfg)
	out := []pattern.Tiling{nat}
	for tn := nat.Tn / 2; tn >= 1; tn /= 2 {
		t := nat
		t.Tn = tn
		out = append(out, t)
	}
	for tm := nat.Tm / 2; tm >= 1; tm /= 2 {
		t := nat
		t.Tn = 1
		t.Tm = tm
		out = append(out, t)
	}
	return out
}

// axisCandidates returns the candidate tile sizes along one axis of
// extent dim: powers of two up to dim, the array width, and dim itself.
func axisCandidates(dim, array int) []int { return search.Axis(dim, array) }
