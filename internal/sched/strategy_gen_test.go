// Randomized strategy-differential tests. These live in an external
// test package because they draw cases from internal/verify/gen, which
// itself imports sched.
package sched_test

import (
	"encoding/json"
	"math"
	"testing"

	"rana/internal/sched"
	"rana/internal/sched/search"
	"rana/internal/verify/gen"
)

// TestPrunedMatchesExhaustiveOnGeneratedCases extends the differential
// oracle beyond the fixed zoo: randomized layers and accelerator
// geometries from the conformance generator.
func TestPrunedMatchesExhaustiveOnGeneratedCases(t *testing.T) {
	r := gen.New(7)
	for i := 0; i < 60; i++ {
		c := r.Case()
		exOpts, prOpts := c.Options, c.Options
		exOpts.Search = search.Exhaustive
		prOpts.Search = search.Pruned
		ex, es, errE := sched.ExploreLayer(c.Layer, c.Config, exOpts)
		pr, ps, errP := sched.ExploreLayer(c.Layer, c.Config, prOpts)
		if (errE == nil) != (errP == nil) {
			t.Fatalf("case %d: strategies disagree on feasibility: exhaustive err=%v, pruned err=%v", i, errE, errP)
		}
		if errE != nil {
			continue
		}
		ej, _ := json.Marshal(ex)
		pj, _ := json.Marshal(pr)
		if string(ej) != string(pj) {
			t.Errorf("case %d (%+v on %s): pruned diverged from exhaustive", i, c.Layer, c.Config.Name)
		}
		if ps.Evaluated > es.Evaluated {
			t.Errorf("case %d: pruned evaluated more than exhaustive (%d > %d)", i, ps.Evaluated, es.Evaluated)
		}
	}
}

// TestBoundIsAdmissible checks the branch-and-bound invariant directly
// across randomized cases: for feasible candidates the cheap lower
// bound never exceeds the exact Eq. 14 total, and the bound's inline
// feasibility predicate agrees with pattern.Analyze exactly (infeasible
// candidates bound to +Inf; a drift either way would let pruning
// discard a winnable candidate or waste the beam budget).
func TestBoundIsAdmissible(t *testing.T) {
	r := gen.New(11)
	for i := 0; i < 400; i++ {
		c := r.Case()
		lb := sched.LowerBoundForTest(c.Layer, c.Config, c.Pattern, c.Tiling)
		lp, err := sched.Evaluate(c.Layer, c.Pattern, c.Tiling, c.Config, c.Options)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if lp.Analysis.Feasible != !math.IsInf(lb, 1) {
			t.Errorf("case %d: bound feasibility (inf=%v) disagrees with Analyze (feasible=%v) for %v %v on %+v",
				i, math.IsInf(lb, 1), lp.Analysis.Feasible, c.Pattern, c.Tiling, c.Layer)
		}
		if exact := lp.Energy.Total(); lp.Analysis.Feasible && lb > exact {
			t.Errorf("case %d: bound %.6e exceeds exact energy %.6e for %v %v on %+v",
				i, lb, exact, c.Pattern, c.Tiling, c.Layer)
		}
	}
}
