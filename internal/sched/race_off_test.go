//go:build !race

package sched

// raceEnabled reports whether the race detector instruments this build;
// the allocation gates skip themselves when it does.
const raceEnabled = false
