package sched

import (
	"encoding/json"
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sched/search"
)

func TestParseTraversalSpec(t *testing.T) {
	b := func(ns ...int) []pattern.Traversal {
		out := []pattern.Traversal{pattern.Linear}
		for _, n := range ns {
			out = append(out, pattern.Traversal{Blocks: n})
		}
		return out
	}
	accept := []struct {
		spec string
		want []pattern.Traversal
	}{
		{"", b()},
		{"linear", b()},
		{"linear,linear", b()},
		{"blocked2", b(2)},
		{"blocked2,blocked2", b(2)},
		{"rtc", b(2, 4, 8)},
		{"rtc,blocked4", b(2, 4, 8)},
		{"blocked3,rtc", b(3, 2, 4, 8)},
		{" blocked2 , linear ", b(2)},
		{"blocked64", b(64)},
	}
	for _, c := range accept {
		got, err := ParseTraversalSpec(c.spec)
		if err != nil {
			t.Errorf("ParseTraversalSpec(%q): %v", c.spec, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("ParseTraversalSpec(%q) = %v, want %v", c.spec, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseTraversalSpec(%q)[%d] = %v, want %v", c.spec, i, got[i], c.want[i])
			}
		}
	}
	for _, spec := range []string{
		"blocked1", "blocked0", "blocked-2", "blocked65", "blocked", "blockedx",
		"foo", "LINEAR", "RTC", "linear,,rtc", ",", "blocked2.5",
	} {
		if _, err := ParseTraversalSpec(spec); err == nil {
			t.Errorf("ParseTraversalSpec(%q) accepted, want error", spec)
		}
	}
}

func TestParseMappingSpec(t *testing.T) {
	names := func(ms []MappingPolicy) []string {
		out := make([]string, len(ms))
		for i, m := range ms {
			out[i] = m.Name
		}
		return out
	}
	accept := []struct {
		spec string
		want []string
	}{
		{"", []string{"row-major"}},
		{"row-major", []string{"row-major"}},
		{"interleave", []string{"row-major", "interleave"}},
		{"interleave,interleave", []string{"row-major", "interleave"}},
		{"all", []string{"row-major", "interleave"}},
		{" all , row-major ", []string{"row-major", "interleave"}},
	}
	for _, c := range accept {
		got, err := ParseMappingSpec(c.spec)
		if err != nil {
			t.Errorf("ParseMappingSpec(%q): %v", c.spec, err)
			continue
		}
		gn := names(got)
		if len(gn) != len(c.want) {
			t.Errorf("ParseMappingSpec(%q) = %v, want %v", c.spec, gn, c.want)
			continue
		}
		for i := range gn {
			if gn[i] != c.want[i] {
				t.Errorf("ParseMappingSpec(%q)[%d] = %q, want %q", c.spec, i, gn[i], c.want[i])
			}
		}
	}
	for _, spec := range []string{"foo", "ALL", "row_major", "interleave,,", ","} {
		if _, err := ParseMappingSpec(spec); err == nil {
			t.Errorf("ParseMappingSpec(%q) accepted, want error", spec)
		}
	}
}

// TestCanonicalSpecs pins the cache-key discipline: every spelling of
// the default-only axis canonicalizes to "", and equivalent non-default
// spellings collapse onto one form that re-canonicalizes to itself.
func TestCanonicalSpecs(t *testing.T) {
	trav := []struct{ spec, want string }{
		{"", ""},
		{"linear", ""},
		{"linear,linear", ""},
		{"rtc", "blocked2,blocked4,blocked8"},
		{"blocked4,rtc", "blocked4,blocked2,blocked8"},
		{"blocked2,linear,blocked2", "blocked2"},
	}
	for _, c := range trav {
		got, err := CanonicalTraversalSpec(c.spec)
		if err != nil {
			t.Fatalf("CanonicalTraversalSpec(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("CanonicalTraversalSpec(%q) = %q, want %q", c.spec, got, c.want)
		}
		again, err := CanonicalTraversalSpec(got)
		if err != nil || again != got {
			t.Errorf("canonical traversal %q not a fixed point: %q, %v", got, again, err)
		}
	}
	mapc := []struct{ spec, want string }{
		{"", ""},
		{"row-major", ""},
		{"all", "interleave"},
		{"interleave", "interleave"},
		{"interleave,all", "interleave"},
	}
	for _, c := range mapc {
		got, err := CanonicalMappingSpec(c.spec)
		if err != nil {
			t.Fatalf("CanonicalMappingSpec(%q): %v", c.spec, err)
		}
		if got != c.want {
			t.Errorf("CanonicalMappingSpec(%q) = %q, want %q", c.spec, got, c.want)
		}
		again, err := CanonicalMappingSpec(got)
		if err != nil || again != got {
			t.Errorf("canonical mapping %q not a fixed point: %q, %v", got, again, err)
		}
	}
}

// TestSignatureAxes pins the memo-signature discipline around the new
// axes: default spellings append nothing (legacy signatures stay
// byte-identical), and equivalent spellings share a signature.
func TestSignatureAxes(t *testing.T) {
	legacy := ranaOpts().signature()
	spelled := ranaOpts()
	spelled.Traversal, spelled.Mapping = "linear", "row-major"
	if got := spelled.signature(); got != legacy {
		t.Errorf("spelled-default signature %q != legacy %q", got, legacy)
	}
	rtc := ranaOpts()
	rtc.Traversal, rtc.Mapping = "rtc", "all"
	ladder := ranaOpts()
	ladder.Traversal, ladder.Mapping = "blocked2,blocked4,blocked8", "interleave"
	if rtc.signature() != ladder.signature() {
		t.Errorf("equivalent axis spellings diverge:\n%q\n%q", rtc.signature(), ladder.signature())
	}
	if rtc.signature() == legacy {
		t.Error("non-default axes did not change the signature")
	}
}

// TestDefaultAxisPlansByteIdentical is the acceptance bar for the axis
// refactor: leaving the axes at their defaults — by omission or by
// explicit spelling — must reproduce the legacy plan byte for byte.
func TestDefaultAxisPlansByteIdentical(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	net := models.AlexNet()
	base, err := Schedule(net, cfg, ranaOpts())
	if err != nil {
		t.Fatal(err)
	}
	spelled := ranaOpts()
	spelled.Traversal, spelled.Mapping = "linear", "row-major"
	sp, err := Schedule(net, cfg, spelled)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(Encode(base))
	sj, _ := json.Marshal(Encode(sp))
	if string(bj) != string(sj) {
		t.Fatalf("spelled-default plan diverged:\n%.200s\nvs\n%.200s", bj, sj)
	}
}

// axesOpts is the enlarged-space frame the axis tests run under: the
// conventional 45µs refresh interval, where refresh is expensive enough
// that consume-before-deadline reordering actually wins cells.
func axesOpts() Options {
	o := ranaOpts()
	o.RefreshInterval = retention.TypicalRetentionTime
	o.Traversal = "rtc"
	o.Mapping = "all"
	return o
}

// TestAxesPrunedMatchesExhaustive checks branch-and-bound soundness on
// the enlarged space: with both axes open, the pruned search reproduces
// the exhaustive optimum byte for byte and the beam never reports less
// energy than it.
func TestAxesPrunedMatchesExhaustive(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	net := models.AlexNet()
	ex := axesOpts()
	ex.Search = search.Exhaustive
	pr := axesOpts()
	pr.Search = search.Pruned
	exPlan, err := Schedule(net, cfg, ex)
	if err != nil {
		t.Fatal(err)
	}
	prPlan, err := Schedule(net, cfg, pr)
	if err != nil {
		t.Fatal(err)
	}
	ej, _ := json.Marshal(Encode(exPlan))
	pj, _ := json.Marshal(Encode(prPlan))
	if string(ej) != string(pj) {
		t.Fatalf("pruned diverged from exhaustive on the enlarged space:\n%.200s\nvs\n%.200s", ej, pj)
	}
	bm := axesOpts()
	bm.Search = search.Beam
	bmPlan, err := Schedule(net, cfg, bm)
	if err != nil {
		t.Fatal(err)
	}
	if bmPlan.Energy.Total() < exPlan.Energy.Total() {
		t.Fatalf("beam energy %g beats exhaustive optimum %g", bmPlan.Energy.Total(), exPlan.Energy.Total())
	}
}

// TestConventionalRetentionBlockedWins pins the RTC win condition: at
// the conventional 45µs interval the enlarged space must strictly beat
// the default-only optimum, and at least one layer must choose a
// blocked traversal (at RANA's extended 734µs interval refresh is cheap
// enough that linear wins everywhere — that contrast is the point).
func TestConventionalRetentionBlockedWins(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	net := models.AlexNet()
	base := ranaOpts()
	base.RefreshInterval = retention.TypicalRetentionTime
	basePlan, err := Schedule(net, cfg, base)
	if err != nil {
		t.Fatal(err)
	}
	axesPlan, err := Schedule(net, cfg, axesOpts())
	if err != nil {
		t.Fatal(err)
	}
	if axesPlan.Energy.Total() >= basePlan.Energy.Total() {
		t.Fatalf("axes-enabled energy %g did not beat default-only %g at %v",
			axesPlan.Energy.Total(), basePlan.Energy.Total(), retention.TypicalRetentionTime)
	}
	blocked := 0
	for _, lp := range axesPlan.Layers {
		if lp.Traversal != "" {
			blocked++
			if lp.Analysis.Traversal.IsLinear() {
				t.Errorf("layer %s plan says %q but analysis ran linear", lp.Analysis.Layer.Name, lp.Traversal)
			}
		}
	}
	if blocked == 0 {
		t.Fatal("no layer chose a blocked traversal at the conventional interval")
	}
}

// TestMemoNearDuplicateShapesStayDistinct pins the memo-key coarsening
// boundary (see memoKey): padding spellings with identical derived
// output geometry share an entry, but near-duplicate shapes differing
// only in M — GoogLeNet's inception branches — must stay distinct,
// because M reaches the plan through the Tm axis and the volumes.
func TestMemoNearDuplicateShapesStayDistinct(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	opts := ranaOpts()
	base := models.ConvLayer{Name: "a", N: 48, H: 11, L: 11, M: 96, K: 3, S: 4, P: 0}

	// Same derived R()/C() under a different padding spelling: H=11, K=3,
	// S=4 gives (8)/4+1 = 3 at P=0 and (10)/4+1 = 3 at P=1.
	padded := base
	padded.Name, padded.P = "b", 1
	if base.R() != padded.R() || base.C() != padded.C() {
		t.Fatalf("test premise broken: derived geometry differs (%d,%d) vs (%d,%d)",
			base.R(), base.C(), padded.R(), padded.C())
	}
	if keyFor(base, cfg, opts) != keyFor(padded, cfg, opts) {
		t.Error("padding spellings with identical derived geometry got distinct memo keys")
	}

	wider := base
	wider.Name, wider.M = "c", 100
	if keyFor(base, cfg, opts) == keyFor(wider, cfg, opts) {
		t.Error("layers differing only in M share a memo key; M reaches the plan through Tm and the volumes")
	}

	// Behavioral check: compiling the near-duplicate pair through the
	// memo must not smear one layer's plan onto the other.
	net := models.Network{Name: "near-dup", Layers: []models.ConvLayer{base, wider}}
	memoized, err := Schedule(net, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain := opts
	plain.DisableMemo = true
	unmemoized, err := Schedule(net, cfg, plain)
	if err != nil {
		t.Fatal(err)
	}
	mj, _ := json.Marshal(Encode(memoized))
	uj, _ := json.Marshal(Encode(unmemoized))
	if string(mj) != string(uj) {
		t.Fatalf("memoized near-duplicate plan diverged:\n%.200s\nvs\n%.200s", mj, uj)
	}
}

// TestMappingApplyIdentity pins the bit-identical default-pricing
// contract: the row-major policy must return the table untouched (no
// float multiply), and a non-default policy must scale exactly the
// buffer components.
func TestMappingApplyIdentity(t *testing.T) {
	tb := hw.TestAcceleratorEDRAM().BufferTech.Table()
	if got := RowMajorMapping.Apply(tb); got != tb {
		t.Errorf("row-major Apply changed the table: %+v vs %+v", got, tb)
	}
	got := InterleaveMapping.Apply(tb)
	if got.AccessPJ != tb.AccessPJ*InterleaveMapping.AccessScale {
		t.Errorf("interleave AccessPJ = %g, want %g", got.AccessPJ, tb.AccessPJ*InterleaveMapping.AccessScale)
	}
	if got.RefreshPJ != tb.RefreshPJ*InterleaveMapping.RefreshScale {
		t.Errorf("interleave RefreshPJ = %g, want %g", got.RefreshPJ, tb.RefreshPJ*InterleaveMapping.RefreshScale)
	}
	if got.WearPJ != tb.WearPJ {
		t.Errorf("interleave touched the placement-independent wear term: %+v vs %+v", got, tb)
	}
}
