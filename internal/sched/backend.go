package sched

// Memory-backend resolution: how Options.Backend / Options.OperatingPoint
// / Options.ErrorBudget map onto the registry (internal/mem) and become
// the scheduler's operating-point search axis.
//
// Resolution rules, shared with the serving layer's request validation:
//
//   - An empty backend selects the config's default technology adapter
//     (mem.DefaultName: "edram" for EDRAM configs, "sram" for SRAM), so
//     every pre-backend schedule resolves exactly as before.
//   - A pinned operating point collapses the axis to that single point;
//     otherwise the backend's whole point ladder is searched.
//   - The error budget (default: the paper's tolerable 10⁻⁵ failure
//     rate, Fig. 11) gates which points enter the space — the EDEN
//     resilience-curve admission: a point whose raw bit-error rate
//     exceeds what the network was trained to tolerate is not a legal
//     deployment, no matter how cheap.

import (
	"fmt"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/retention"
)

// effectiveErrorBudget resolves the option (zero → the paper's
// tolerable failure rate).
func (o Options) effectiveErrorBudget() float64 {
	if o.ErrorBudget > 0 {
		return o.ErrorBudget
	}
	return retention.TolerableFailureRate
}

// layerBudget resolves the error budget one layer's admission runs
// against: the uniform budget, tightened by the layer's own tolerable
// rate from the per-layer resilience curves when one is present.
// Per-layer budgets only ever tighten — a curve cannot admit a point
// the uniform budget rejects.
func (o Options) layerBudget(layer string) float64 {
	budget := o.effectiveErrorBudget()
	if lb, ok := o.LayerBudgets[layer]; ok && lb > 0 && lb < budget {
		return lb
	}
	return budget
}

// ResolveBackend maps the options onto a registered buffer backend and
// the operating points the search may price, in canonical (ladder)
// order. A pinned Options.OperatingPoint yields exactly one point; an
// empty backend yields the config's default technology adapter with its
// single nominal point — the historical behavior.
func ResolveBackend(cfg hw.Config, o Options) (mem.Backend, []mem.OperatingPoint, error) {
	return resolveBackendAt(cfg, o, o.effectiveErrorBudget(), "")
}

// ResolveBackendForLayer is ResolveBackend under one layer's effective
// error budget: the uniform budget tightened by Options.LayerBudgets
// for that layer. With no per-layer budgets it is exactly
// ResolveBackend.
func ResolveBackendForLayer(cfg hw.Config, o Options, layer string) (mem.Backend, []mem.OperatingPoint, error) {
	return resolveBackendAt(cfg, o, o.layerBudget(layer), layer)
}

func resolveBackendAt(cfg hw.Config, o Options, budget float64, layer string) (mem.Backend, []mem.OperatingPoint, error) {
	return appendBackendPoints(nil, cfg, o, budget, layer)
}

// appendBackendPoints is resolveBackendAt appending the admitted points
// into dst (typically a reused scratch slice), so the steady-state
// compile path resolves its backend without allocating. The error
// suffix naming the layer is built lazily — only error paths pay for it.
func appendBackendPoints(dst []mem.OperatingPoint, cfg hw.Config, o Options, budget float64, layer string) (mem.Backend, []mem.OperatingPoint, error) {
	name := o.Backend
	if name == "" {
		name = mem.DefaultName(cfg.BufferTech)
	}
	b, ok := mem.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("sched: unknown memory backend %q", name)
	}
	if b.Role() != mem.RoleBuffer {
		return nil, nil, fmt.Errorf("sched: backend %q is %s-role, not a buffer", name, b.Role())
	}
	if o.OperatingPoint != "" {
		p, ok := mem.PointByName(b, o.OperatingPoint)
		if !ok {
			return nil, nil, fmt.Errorf("sched: backend %q has no operating point %q", name, o.OperatingPoint)
		}
		if p.BitErrorRate > budget {
			return nil, nil, fmt.Errorf("sched: operating point %s@%s bit-error rate %g exceeds error budget %g%s",
				name, p.Name, p.BitErrorRate, budget, atLayer(layer))
		}
		return b, append(dst, p), nil
	}
	start := len(dst)
	for _, p := range b.Points() {
		if p.BitErrorRate <= budget {
			dst = append(dst, p)
		}
	}
	if len(dst) == start {
		return nil, nil, fmt.Errorf("sched: backend %q has no operating point within error budget %g%s", name, budget, atLayer(layer))
	}
	return b, dst, nil
}

// atLayer is the " for layer %q" error suffix, empty for network-level
// resolution.
func atLayer(layer string) string {
	if layer == "" {
		return ""
	}
	return fmt.Sprintf(" for layer %q", layer)
}

// pointTables projects operating points onto their Eq. 14 pricing
// tables, index-aligned with the search's point axis.
func pointTables(pts []mem.OperatingPoint) []energy.Table {
	return appendPointTables(nil, pts)
}

// appendPointTables is pointTables into a reused scratch slice.
func appendPointTables(dst []energy.Table, pts []mem.OperatingPoint) []energy.Table {
	for _, p := range pts {
		dst = append(dst, p.Table())
	}
	return dst
}
