package sched

// Memory-backend resolution: how Options.Backend / Options.OperatingPoint
// / Options.ErrorBudget map onto the registry (internal/mem) and become
// the scheduler's operating-point search axis.
//
// Resolution rules, shared with the serving layer's request validation:
//
//   - An empty backend selects the config's default technology adapter
//     (mem.DefaultName: "edram" for EDRAM configs, "sram" for SRAM), so
//     every pre-backend schedule resolves exactly as before.
//   - A pinned operating point collapses the axis to that single point;
//     otherwise the backend's whole point ladder is searched.
//   - The error budget (default: the paper's tolerable 10⁻⁵ failure
//     rate, Fig. 11) gates which points enter the space — the EDEN
//     resilience-curve admission: a point whose raw bit-error rate
//     exceeds what the network was trained to tolerate is not a legal
//     deployment, no matter how cheap.

import (
	"fmt"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/mem"
	"rana/internal/retention"
)

// effectiveErrorBudget resolves the option (zero → the paper's
// tolerable failure rate).
func (o Options) effectiveErrorBudget() float64 {
	if o.ErrorBudget > 0 {
		return o.ErrorBudget
	}
	return retention.TolerableFailureRate
}

// layerBudget resolves the error budget one layer's admission runs
// against: the uniform budget, tightened by the layer's own tolerable
// rate from the per-layer resilience curves when one is present.
// Per-layer budgets only ever tighten — a curve cannot admit a point
// the uniform budget rejects.
func (o Options) layerBudget(layer string) float64 {
	budget := o.effectiveErrorBudget()
	if lb, ok := o.LayerBudgets[layer]; ok && lb > 0 && lb < budget {
		return lb
	}
	return budget
}

// ResolveBackend maps the options onto a registered buffer backend and
// the operating points the search may price, in canonical (ladder)
// order. A pinned Options.OperatingPoint yields exactly one point; an
// empty backend yields the config's default technology adapter with its
// single nominal point — the historical behavior.
func ResolveBackend(cfg hw.Config, o Options) (mem.Backend, []mem.OperatingPoint, error) {
	return resolveBackendAt(cfg, o, o.effectiveErrorBudget(), "")
}

// ResolveBackendForLayer is ResolveBackend under one layer's effective
// error budget: the uniform budget tightened by Options.LayerBudgets
// for that layer. With no per-layer budgets it is exactly
// ResolveBackend.
func ResolveBackendForLayer(cfg hw.Config, o Options, layer string) (mem.Backend, []mem.OperatingPoint, error) {
	return resolveBackendAt(cfg, o, o.layerBudget(layer), layer)
}

func resolveBackendAt(cfg hw.Config, o Options, budget float64, layer string) (mem.Backend, []mem.OperatingPoint, error) {
	name := o.Backend
	if name == "" {
		name = mem.DefaultName(cfg.BufferTech)
	}
	b, ok := mem.Lookup(name)
	if !ok {
		return nil, nil, fmt.Errorf("sched: unknown memory backend %q", name)
	}
	if b.Role() != mem.RoleBuffer {
		return nil, nil, fmt.Errorf("sched: backend %q is %s-role, not a buffer", name, b.Role())
	}
	at := ""
	if layer != "" {
		at = fmt.Sprintf(" for layer %q", layer)
	}
	if o.OperatingPoint != "" {
		p, ok := mem.PointByName(b, o.OperatingPoint)
		if !ok {
			return nil, nil, fmt.Errorf("sched: backend %q has no operating point %q", name, o.OperatingPoint)
		}
		if p.BitErrorRate > budget {
			return nil, nil, fmt.Errorf("sched: operating point %s@%s bit-error rate %g exceeds error budget %g%s",
				name, p.Name, p.BitErrorRate, budget, at)
		}
		return b, []mem.OperatingPoint{p}, nil
	}
	all := b.Points()
	pts := make([]mem.OperatingPoint, 0, len(all))
	for _, p := range all {
		if p.BitErrorRate <= budget {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return nil, nil, fmt.Errorf("sched: backend %q has no operating point within error budget %g%s", name, budget, at)
	}
	return b, pts, nil
}

// pointTables projects operating points onto their Eq. 14 pricing
// tables, index-aligned with the search's point axis.
func pointTables(pts []mem.OperatingPoint) []energy.Table {
	ts := make([]energy.Table, len(pts))
	for i, p := range pts {
		ts[i] = p.Table()
	}
	return ts
}
