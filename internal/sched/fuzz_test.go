package sched

// Fuzzing for the traversal/mapping axis-spec grammars. Specs arrive
// from CLI flags and untrusted HTTP requests (serve's OptionsSpec), so
// both parsers must hold their contract on arbitrary bytes: parse or
// error, never panic, default always at axis index 0, no duplicate axis
// values, and the canonical spelling must be a re-parseable fixed point
// (the cache-key discipline rests on that).

import (
	"strings"
	"testing"

	"rana/internal/pattern"
)

func FuzzParseTraversalSpec(f *testing.F) {
	// Valid shapes.
	f.Add("")
	f.Add("linear")
	f.Add("rtc")
	f.Add("blocked2")
	f.Add("blocked64")
	f.Add("rtc,blocked16,linear")
	// Hostile corpus: grammar abuse, boundary counts, case/whitespace
	// traps, separator floods, length attacks, non-ASCII.
	f.Add("blocked1")
	f.Add("blocked65")
	f.Add("blocked-2")
	f.Add("blocked+2")
	f.Add("blocked2.0")
	f.Add("blocked02")
	f.Add("blocked999999999999999999999")
	f.Add("blocked")
	f.Add("BLOCKED2")
	f.Add("LINEAR")
	f.Add(" rtc ")
	f.Add("rtc\n")
	f.Add("rtc\x00")
	f.Add("rtç")
	f.Add(",")
	f.Add(",,,")
	f.Add(strings.Repeat("rtc,", 200))
	f.Add(strings.Repeat("b", 4096))
	f.Fuzz(func(t *testing.T, spec string) {
		axis, err := ParseTraversalSpec(spec)
		if err != nil {
			if axis != nil {
				t.Fatalf("ParseTraversalSpec(%q) returned an axis alongside error %v", spec, err)
			}
			return
		}
		if len(axis) == 0 || !axis[0].IsLinear() {
			t.Fatalf("ParseTraversalSpec(%q): default not at index 0: %v", spec, axis)
		}
		seen := map[pattern.Traversal]bool{}
		for i, tr := range axis {
			if seen[tr] {
				t.Fatalf("ParseTraversalSpec(%q): duplicate axis value %v", spec, tr)
			}
			seen[tr] = true
			if i > 0 && (tr.Blocks < 2 || tr.Blocks > MaxTraversalBlocks) {
				t.Fatalf("ParseTraversalSpec(%q): out-of-range stage count %v", spec, tr)
			}
		}
		canonical, err := CanonicalTraversalSpec(spec)
		if err != nil {
			t.Fatalf("CanonicalTraversalSpec(%q) failed on an accepted spec: %v", spec, err)
		}
		reparsed, err := ParseTraversalSpec(canonical)
		if err != nil {
			t.Fatalf("canonical spelling %q of %q does not re-parse: %v", canonical, spec, err)
		}
		if len(reparsed) != len(axis) {
			t.Fatalf("canonical %q re-parses to %v, spec %q parsed to %v", canonical, reparsed, spec, axis)
		}
		for i := range axis {
			if reparsed[i] != axis[i] {
				t.Fatalf("canonical %q re-parses to %v, spec %q parsed to %v", canonical, reparsed, spec, axis)
			}
		}
		again, err := CanonicalTraversalSpec(canonical)
		if err != nil || again != canonical {
			t.Fatalf("canonical spelling %q is not a fixed point: %q, %v", canonical, again, err)
		}
	})
}

func FuzzParseMappingSpec(f *testing.F) {
	f.Add("")
	f.Add("row-major")
	f.Add("interleave")
	f.Add("all")
	f.Add("all,interleave,row-major")
	f.Add("ALL")
	f.Add("row_major")
	f.Add("rowmajor")
	f.Add(" interleave ")
	f.Add("interleave\x00")
	f.Add("interléave")
	f.Add(",")
	f.Add(strings.Repeat("all,", 200))
	f.Add(strings.Repeat("m", 4096))
	f.Fuzz(func(t *testing.T, spec string) {
		axis, err := ParseMappingSpec(spec)
		if err != nil {
			if axis != nil {
				t.Fatalf("ParseMappingSpec(%q) returned an axis alongside error %v", spec, err)
			}
			return
		}
		if len(axis) == 0 || !axis[0].IsDefault() {
			t.Fatalf("ParseMappingSpec(%q): default not at index 0: %v", spec, axis)
		}
		seen := map[string]bool{}
		for _, m := range axis {
			if seen[m.Name] {
				t.Fatalf("ParseMappingSpec(%q): duplicate policy %q", spec, m.Name)
			}
			seen[m.Name] = true
			// Accepted policies must resolve onto registry reality.
			got, ok := MappingByName(m.Name)
			if !ok || got != m {
				t.Fatalf("ParseMappingSpec(%q) returned unregistered policy %+v", spec, m)
			}
		}
		canonical, err := CanonicalMappingSpec(spec)
		if err != nil {
			t.Fatalf("CanonicalMappingSpec(%q) failed on an accepted spec: %v", spec, err)
		}
		again, err := CanonicalMappingSpec(canonical)
		if err != nil || again != canonical {
			t.Fatalf("canonical spelling %q is not a fixed point: %q, %v", canonical, again, err)
		}
	})
}
