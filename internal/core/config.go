package core

// Serialization of the compilation phase's output: the layerwise
// configurations of Fig. 6 as a portable artifact. A real RANA toolchain
// compiles once per (accelerator, network) pair and ships the result to
// the device; this file is that artifact as JSON, with a loader that
// validates it against a hardware configuration before execution.

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"rana/internal/hw"
	"rana/internal/pattern"
)

// ConfigFile is the serialized compilation artifact.
type ConfigFile struct {
	// Version guards the format.
	Version int `json:"version"`
	// Network names the compiled model.
	Network string `json:"network"`
	// Accelerator names the target hardware configuration.
	Accelerator string `json:"accelerator"`
	// TolerableRateE is Stage 1's failure-rate decision.
	TolerableRate float64 `json:"tolerable_rate"`
	// TolerableRetentionNS is Stage 1's retention time in nanoseconds.
	TolerableRetentionNS int64 `json:"tolerable_retention_ns"`
	// DividerRatio programs the Fig. 14 clock divider.
	DividerRatio uint64 `json:"divider_ratio"`
	// Banks is the buffer bank count the flags index.
	Banks int `json:"banks"`
	// Layers are the per-layer execution configurations.
	Layers []LayerConfigEntry `json:"layers"`
}

// LayerConfigEntry is one layer's serialized configuration.
type LayerConfigEntry struct {
	Name         string `json:"name"`
	Pattern      string `json:"pattern"`
	Tm           int    `json:"tm"`
	Tn           int    `json:"tn"`
	Tr           int    `json:"tr"`
	Tc           int    `json:"tc"`
	RefreshFlags []bool `json:"refresh_flags"`
}

// currentConfigVersion is the format emitted by ExportConfig.
const currentConfigVersion = 1

// ExportConfig writes the compilation artifact as indented JSON.
func (o *Output) ExportConfig(w io.Writer) error {
	cf := ConfigFile{
		Version:              currentConfigVersion,
		Network:              o.Plan.Network.Name,
		Accelerator:          o.Config.Name,
		TolerableRate:        o.TolerableRate,
		TolerableRetentionNS: o.TolerableRetention.Nanoseconds(),
		DividerRatio:         o.DividerRatio,
		Banks:                o.Config.Banks(),
	}
	for _, lc := range o.Layerwise {
		cf.Layers = append(cf.Layers, LayerConfigEntry{
			Name:    lc.Layer.Name,
			Pattern: lc.Pattern.String(),
			Tm:      lc.Tiling.Tm, Tn: lc.Tiling.Tn,
			Tr: lc.Tiling.Tr, Tc: lc.Tiling.Tc,
			RefreshFlags: lc.RefreshFlags,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(cf)
}

// ImportConfig parses and validates a compilation artifact against the
// target hardware configuration: versions must match, flag vectors must
// index the hardware's banks, and patterns/tilings must be well formed.
func ImportConfig(r io.Reader, cfg hw.Config) (*ConfigFile, error) {
	var cf ConfigFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cf); err != nil {
		return nil, fmt.Errorf("core: parsing config: %w", err)
	}
	if cf.Version != currentConfigVersion {
		return nil, fmt.Errorf("core: config version %d, want %d", cf.Version, currentConfigVersion)
	}
	if cf.Banks != cfg.Banks() {
		return nil, fmt.Errorf("core: config targets %d banks, hardware has %d", cf.Banks, cfg.Banks())
	}
	if cf.TolerableRetentionNS <= 0 {
		return nil, fmt.Errorf("core: non-positive retention %d ns", cf.TolerableRetentionNS)
	}
	if len(cf.Layers) == 0 {
		return nil, fmt.Errorf("core: config has no layers")
	}
	for i, l := range cf.Layers {
		if _, err := parsePattern(l.Pattern); err != nil {
			return nil, fmt.Errorf("core: layer %d (%s): %w", i, l.Name, err)
		}
		t := pattern.Tiling{Tm: l.Tm, Tn: l.Tn, Tr: l.Tr, Tc: l.Tc}
		if err := t.Validate(); err != nil {
			return nil, fmt.Errorf("core: layer %d (%s): %w", i, l.Name, err)
		}
		if len(l.RefreshFlags) != cf.Banks {
			return nil, fmt.Errorf("core: layer %d (%s): %d flags for %d banks",
				i, l.Name, len(l.RefreshFlags), cf.Banks)
		}
	}
	return &cf, nil
}

// Retention returns the artifact's tolerable retention time.
func (cf *ConfigFile) Retention() time.Duration {
	return time.Duration(cf.TolerableRetentionNS)
}

// parsePattern parses a pattern name.
func parsePattern(s string) (pattern.Kind, error) {
	switch s {
	case "ID":
		return pattern.ID, nil
	case "OD":
		return pattern.OD, nil
	case "WD":
		return pattern.WD, nil
	default:
		return 0, fmt.Errorf("unknown pattern %q", s)
	}
}
