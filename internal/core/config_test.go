package core

import (
	"bytes"
	"strings"
	"testing"

	"rana/internal/models"
	"rana/internal/retention"
)

func compiled(t *testing.T) *Output {
	t.Helper()
	out, err := New().Compile(models.AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestExportImportRoundTrip(t *testing.T) {
	out := compiled(t)
	var buf bytes.Buffer
	if err := out.ExportConfig(&buf); err != nil {
		t.Fatal(err)
	}
	cf, err := ImportConfig(&buf, out.Config)
	if err != nil {
		t.Fatal(err)
	}
	if cf.Network != "AlexNet" || cf.Accelerator != out.Config.Name {
		t.Errorf("identity fields: %s/%s", cf.Network, cf.Accelerator)
	}
	if cf.Retention() != retention.TolerableRetentionTime {
		t.Errorf("retention = %v", cf.Retention())
	}
	if cf.DividerRatio != out.DividerRatio {
		t.Errorf("divider = %d", cf.DividerRatio)
	}
	if len(cf.Layers) != len(out.Layerwise) {
		t.Fatalf("%d layers", len(cf.Layers))
	}
	for i, l := range cf.Layers {
		lc := out.Layerwise[i]
		if l.Name != lc.Layer.Name || l.Pattern != lc.Pattern.String() {
			t.Errorf("layer %d identity mismatch", i)
		}
		if l.Tm != lc.Tiling.Tm || l.Tc != lc.Tiling.Tc {
			t.Errorf("layer %d tiling mismatch", i)
		}
		for b := range l.RefreshFlags {
			if l.RefreshFlags[b] != lc.RefreshFlags[b] {
				t.Fatalf("layer %d flag %d mismatch", i, b)
			}
		}
	}
}

func TestImportRejectsCorruptConfigs(t *testing.T) {
	out := compiled(t)
	var buf bytes.Buffer
	if err := out.ExportConfig(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := map[string]string{
		"bad json":      "{nope",
		"wrong version": strings.Replace(good, `"version": 1`, `"version": 99`, 1),
		"bad pattern":   strings.Replace(good, `"pattern": "OD"`, `"pattern": "XX"`, 1),
		"zero tiling":   strings.Replace(good, `"tm": `, `"tm": 0, "was_tm": `, 1),
		"bad retention": strings.Replace(good, `"tolerable_retention_ns": 734000`, `"tolerable_retention_ns": -5`, 1),
		"unknown field": strings.Replace(good, `"version"`, `"surprise": 1, "version"`, 1),
		"bank mismatch": strings.Replace(good, `"banks": 46`, `"banks": 3`, 1),
	}
	for name, body := range cases {
		if _, err := ImportConfig(strings.NewReader(body), out.Config); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	// Empty layer list.
	empty := strings.NewReader(`{"version":1,"network":"x","accelerator":"y","tolerable_rate":1e-5,"tolerable_retention_ns":734000,"divider_ratio":146800,"banks":46,"layers":[]}`)
	if _, err := ImportConfig(empty, out.Config); err == nil {
		t.Error("empty layers: expected error")
	}
}

func TestImportRejectsWrongHardware(t *testing.T) {
	out := compiled(t)
	var buf bytes.Buffer
	if err := out.ExportConfig(&buf); err != nil {
		t.Fatal(err)
	}
	smaller := out.Config.WithBufferWords(out.Config.BufferWords / 2)
	if _, err := ImportConfig(&buf, smaller); err == nil {
		t.Error("config for 46 banks should not load on smaller hardware")
	}
}
