package core

import (
	"strings"
	"testing"

	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
)

func TestCompileReproducesPaperDecisions(t *testing.T) {
	f := New()
	out, err := f.Compile(models.ResNet())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Verify(); err != nil {
		t.Fatal(err)
	}
	// Stage 1 lands on the paper's numbers: 10⁻⁵ → 734 µs.
	if out.TolerableRate != 1e-5 {
		t.Errorf("rate = %g, want 1e-5", out.TolerableRate)
	}
	if out.TolerableRetention != retention.TolerableRetentionTime {
		t.Errorf("retention = %v, want 734µs", out.TolerableRetention)
	}
	// Stage 3: 734 µs at 200 MHz = 146800 reference cycles.
	if out.DividerRatio != 146800 {
		t.Errorf("divider = %d, want 146800", out.DividerRatio)
	}
	// Stage 2 produced a hybrid schedule over OD/WD only.
	for _, lc := range out.Layerwise {
		if lc.Pattern != pattern.OD && lc.Pattern != pattern.WD {
			t.Fatalf("layer %s scheduled %v; RANA explores OD/WD only", lc.Layer.Name, lc.Pattern)
		}
	}
	// Almost all ResNet layers end refresh-free at 734 µs (the paper
	// reports ≈99.7% of refresh operations removed).
	free := 0
	for _, lc := range out.Layerwise {
		anyFlag := false
		for _, fl := range lc.RefreshFlags {
			anyFlag = anyFlag || fl
		}
		if !anyFlag {
			free++
		}
	}
	if free < len(out.Layerwise)*3/4 {
		t.Errorf("only %d/%d layers refresh-free", free, len(out.Layerwise))
	}
}

func TestCompileAllBenchmarks(t *testing.T) {
	f := New()
	for _, net := range models.Benchmarks() {
		out, err := f.Compile(net)
		if err != nil {
			t.Fatalf("%s: %v", net.Name, err)
		}
		if len(out.Layerwise) != len(net.Layers) {
			t.Errorf("%s: %d configs for %d layers", net.Name, len(out.Layerwise), len(net.Layers))
		}
		if out.Energy.Total() <= 0 {
			t.Errorf("%s: degenerate energy", net.Name)
		}
	}
}

func TestControllerConstruction(t *testing.T) {
	f := New()
	out, err := f.Compile(models.AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	issuer, err := out.Controller()
	if err != nil {
		t.Fatal(err)
	}
	// Layer flags load into the issuer.
	if err := issuer.SetFlags(out.Layerwise[0].RefreshFlags); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	f := New()
	out, err := f.Compile(models.AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	s := out.Summary()
	for _, want := range []string{"stage1", "stage2", "stage3", "734"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestCompileValidation(t *testing.T) {
	f := New()
	f.AccuracyConstraint = 0
	if _, err := f.Compile(models.AlexNet()); err == nil {
		t.Error("bad constraint should fail")
	}
	f = New()
	f.Platform = nil
	if _, err := f.Compile(models.AlexNet()); err == nil {
		t.Error("nil platform should fail")
	}
	f = New()
	if _, err := f.Compile(models.Network{Name: "empty"}); err == nil {
		t.Error("empty network should fail")
	}
}

func TestLooserConstraintBuysLongerRetention(t *testing.T) {
	strict := New()
	loose := New()
	loose.AccuracyConstraint = 0.5
	a, err := strict.Compile(models.AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	b, err := loose.Compile(models.AlexNet())
	if err != nil {
		t.Fatal(err)
	}
	if b.TolerableRetention <= a.TolerableRetention {
		t.Errorf("loose constraint retention %v should exceed strict %v",
			b.TolerableRetention, a.TolerableRetention)
	}
	if b.Energy.Refresh > a.Energy.Refresh {
		t.Error("longer retention should not increase refresh energy")
	}
}
