// Package core assembles the full RANA framework of Fig. 6: the
// three-stage workflow that takes a CNN accelerator and a target CNN
// model and produces the configurations an execution phase runs with.
//
//	Stage 1 (training):    tolerable failure rate → tolerable retention time
//	Stage 2 (scheduling):  hybrid computation pattern + layerwise configs
//	Stage 3 (architecture): per-bank refresh flags + clock-divider setting
//
// Stages 1 and 2 form the compilation phase; Stage 3's outputs program
// the refresh-optimized eDRAM controller during execution.
package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/platform"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/sched/search"
	"rana/internal/training"
)

// Framework is a configured RANA instance.
type Framework struct {
	// Platform is the accelerator + retention distribution under
	// optimization.
	Platform *platform.Platform
	// AccuracyConstraint is the minimum relative accuracy Stage 1 must
	// preserve (the paper requires no accuracy loss; 0.995 reproduces
	// its 10⁻⁵ decision).
	AccuracyConstraint float64
	// Rates is the failure-rate ladder Stage 1 searches.
	Rates []float64
	// Search selects Stage 2's exploration strategy (empty resolves to
	// the branch-and-bound default, search.Pruned).
	Search search.Strategy
	// BeamWidth bounds search.Beam's per-layer exact evaluations; zero
	// selects the default width.
	BeamWidth int
	// Parallelism bounds Stage 2's per-layer exploration worker pool
	// (sched.Options.Parallelism): zero selects GOMAXPROCS, 1 the
	// sequential reference path. Plans are byte-identical at every level.
	Parallelism int
	// Memo, when non-nil, shares layer-shape exploration results across
	// compiles (sched.Options.Memo). Nil keeps the default per-compile
	// memo; ranad installs a server-wide memo here.
	Memo *sched.Memo
	// Prefix, when non-nil, shares bound prefix sums across compiles
	// (sched.Options.Prefix). Nil keeps the default per-compile prefix
	// memo; ranad installs a server-wide one here. Like Memo it never
	// changes plan bytes — only how much pricing work is recomputed.
	Prefix *sched.PrefixMemo
	// Backend names the memory-technology backend Stage 2 prices buffers
	// with (sched.Options.Backend); empty selects the platform's default
	// technology adapter — the historical hard-wired path, byte for byte.
	Backend string
	// OperatingPoint pins one of the backend's operating points; empty
	// searches over every point within the error budget.
	OperatingPoint string
	// ErrorBudget caps the bit-error rate of admissible operating points
	// (sched.Options.ErrorBudget); zero selects the paper's tolerable
	// failure rate.
	ErrorBudget float64
	// Traversal opens Stage 2's tile-traversal-order axis
	// (sched.Options.Traversal, ParseTraversalSpec grammar); empty keeps
	// the default linear nest only.
	Traversal string
	// Mapping opens Stage 2's data-mapping axis (sched.Options.Mapping,
	// ParseMappingSpec grammar); empty keeps row-major placement only.
	Mapping string
}

// New returns a framework on the paper's evaluation platform with the
// paper's search parameters.
func New() *Framework {
	return &Framework{
		Platform:           platform.Test(),
		AccuracyConstraint: 0.995,
		Rates:              training.PaperRates,
	}
}

// LayerConfig is one entry of the layerwise configurations produced by
// the compilation phase (§IV-A): the computation pattern with tiling, and
// the per-bank refresh flags Stage 3 loads when the layer starts.
type LayerConfig struct {
	Layer        models.ConvLayer
	Pattern      pattern.Kind
	Tiling       pattern.Tiling
	RefreshFlags []bool
}

// Output is the result of compiling one network.
type Output struct {
	// TolerableRate and TolerableRetention are Stage 1's products.
	TolerableRate      float64
	TolerableRetention time.Duration
	// Config is the design-specialized accelerator configuration the
	// schedule targets (eDRAM buffers at the design capacity).
	Config hw.Config
	// DividerRatio programs the controller's clock divider (Fig. 14).
	DividerRatio uint64
	// LayerBudgets are Stage 1's per-layer tolerable failure rates from
	// the calibrated resilience curves; Stage 2 admits operating points
	// per layer against them.
	LayerBudgets map[string]float64
	// Plan is Stage 2's full schedule with energy accounting.
	Plan *sched.Plan
	// Layerwise are the per-layer execution configurations.
	Layerwise []LayerConfig
	// Energy is the estimated whole-network system energy.
	Energy energy.Breakdown
	// Stats is Stage 2's aggregate exploration work: summed search
	// counters plus memo effectiveness. ranad's /metrics and the
	// benchmark harness consume it; ExportConfig's wire projection
	// excludes it, so recording work does not perturb cached bodies.
	Stats sched.NetworkStats
}

// Compile runs the compilation phase (Stages 1 and 2) and derives the
// Stage 3 programming for the given network.
func (f *Framework) Compile(net models.Network) (*Output, error) {
	return f.CompileContext(context.Background(), net)
}

// CompileContext is Compile with cancellation: Stage 2's per-layer
// scheduling loop observes ctx and aborts early with ctx.Err() wrapped
// with the layer reached. Compile is CompileContext under
// context.Background().
func (f *Framework) CompileContext(ctx context.Context, net models.Network) (out *Output, err error) {
	// The stages call deep into pattern/sched/memctrl; a bug there must
	// surface to callers (ranad keeps serving other requests) as an
	// error, not kill the process.
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, &sched.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if f.Platform == nil {
		return nil, fmt.Errorf("core: nil platform")
	}
	if f.AccuracyConstraint <= 0 || f.AccuracyConstraint > 1 {
		return nil, fmt.Errorf("core: accuracy constraint %g outside (0,1]", f.AccuracyConstraint)
	}
	// Stage 1: tolerable failure rate under the accuracy constraint,
	// converted to a retention time by the platform's distribution.
	rate, err := training.TolerableRate(f.AccuracyConstraint, f.Rates)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	rt := f.Platform.Dist.RetentionTime(rate)

	// Stage 1, per layer: each layer's own tolerable failure rate from
	// its calibrated resilience curve. Stage 2's operating-point
	// admission checks candidate points against these, not just the
	// scalar decision.
	names := make([]string, len(net.Layers))
	for i, l := range net.Layers {
		names[i] = l.Name
	}
	layerBudgets, err := training.LayerTolerableRates(net.Name, names, f.AccuracyConstraint, f.Rates)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Stage 2: hybrid-pattern scheduling at the tolerable interval with
	// the refresh-optimized controller (the full RANA design point). A
	// platform that already has eDRAM buffers keeps its own capacity;
	// an SRAM base is refitted to the paper's equal-area 1.454 MB.
	design := platform.RANAStarE5()
	design.FailureRate = rate
	if f.Platform.Base.BufferTech == energy.EDRAM {
		design.BufferWords = 0
	}
	cfg := design.Apply(f.Platform.Base)
	opts := sched.Options{
		Patterns:        design.Patterns,
		RefreshInterval: rt,
		Controller:      memctrl.RefreshOptimized{},
		Search:          f.Search,
		BeamWidth:       f.BeamWidth,
		Parallelism:     f.Parallelism,
		Memo:            f.Memo,
		Prefix:          f.Prefix,
		Backend:         f.Backend,
		OperatingPoint:  f.OperatingPoint,
		ErrorBudget:     f.ErrorBudget,
		Traversal:       f.Traversal,
		Mapping:         f.Mapping,
		LayerBudgets:    layerBudgets,
	}
	plan, stats, err := sched.ExploreNetworkContext(ctx, net, cfg, opts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Stage 3 programming: divider ratio and per-layer refresh flags.
	div, err := memctrl.NewDivider(cfg.FrequencyHz, rt)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out = &Output{
		TolerableRate:      rate,
		TolerableRetention: rt,
		LayerBudgets:       layerBudgets,
		Config:             cfg,
		DividerRatio:       div.Ratio(),
		Plan:               plan,
		Energy:             plan.Energy,
		Stats:              stats,
	}
	for i, lp := range plan.Layers {
		out.Layerwise = append(out.Layerwise, LayerConfig{
			Layer:        net.Layers[i],
			Pattern:      lp.Analysis.Pattern,
			Tiling:       lp.Analysis.Tiling,
			RefreshFlags: lp.RefreshFlags(cfg.Banks()),
		})
	}
	return out, nil
}

// Controller builds the Stage 3 refresh machinery (divider + issuer) for
// the compiled configuration, programmed to the compiled retention time.
// The caller loads each layer's flags as execution proceeds.
func (o *Output) Controller() (*memctrl.Issuer, error) {
	div, err := memctrl.NewDivider(o.Config.FrequencyHz, o.TolerableRetention)
	if err != nil {
		return nil, err
	}
	return memctrl.NewIssuer(div, o.Config.Banks())
}

// Summary formats the compilation outcome in one line per stage.
func (o *Output) Summary() string {
	refreshFree := 0
	for _, lc := range o.Layerwise {
		free := true
		for _, flag := range lc.RefreshFlags {
			if flag {
				free = false
				break
			}
		}
		if free {
			refreshFree++
		}
	}
	return fmt.Sprintf(
		"stage1: tolerable rate %.0e -> retention %v\n"+
			"stage2: %d layers scheduled, energy %.3f mJ\n"+
			"stage3: divider ratio %d, %d/%d layers refresh-free",
		o.TolerableRate, o.TolerableRetention,
		len(o.Layerwise), o.Energy.Total()/1e9,
		o.DividerRatio, refreshFree, len(o.Layerwise))
}

// Verify re-derives Stage 1's decision against the retention anchors —
// a guard used by tests and the CLI to confirm the compiled interval
// matches the paper's 734 µs when the constraint reproduces the paper's.
func (o *Output) Verify() error {
	if o.TolerableRetention < retention.TypicalRetentionTime {
		return fmt.Errorf("core: compiled retention %v below the conventional %v",
			o.TolerableRetention, retention.TypicalRetentionTime)
	}
	if len(o.Layerwise) != len(o.Plan.Layers) {
		return fmt.Errorf("core: %d layer configs for %d plans", len(o.Layerwise), len(o.Plan.Layers))
	}
	return nil
}
