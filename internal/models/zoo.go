package models

// This file defines the four benchmark networks of the paper's evaluation
// (§V-A) at 224×224×3 input. Shapes follow the original Caffe deployments
// the paper's Table I numbers were verified against (AlexNet uses the
// 227×227 crop of the Caffe reference model).

// AlexNet returns the 5-CONV-layer AlexNet [1] with its two grouped
// convolutions.
func AlexNet() Network {
	return Network{Name: "AlexNet", Layers: []ConvLayer{
		{Name: "conv1", Stage: "conv1", N: 3, H: 227, L: 227, M: 96, K: 11, S: 4, P: 0},
		{Name: "conv2", Stage: "conv2", N: 96, H: 27, L: 27, M: 256, K: 5, S: 1, P: 2, Groups: 2},
		{Name: "conv3", Stage: "conv3", N: 256, H: 13, L: 13, M: 384, K: 3, S: 1, P: 1},
		{Name: "conv4", Stage: "conv4", N: 384, H: 13, L: 13, M: 384, K: 3, S: 1, P: 1, Groups: 2},
		{Name: "conv5", Stage: "conv5", N: 384, H: 13, L: 13, M: 256, K: 3, S: 1, P: 1, Groups: 2},
	}}
}

// VGG returns the 13-CONV-layer VGG-16 [2]. The paper's running example
// Layer-B ("vgg_conv9") is the 9th CONV layer, conv4_2.
func VGG() Network {
	var ls []ConvLayer
	add := func(name, stage string, n, hw, m int) {
		ls = append(ls, ConvLayer{Name: name, Stage: stage, N: n, H: hw, L: hw, M: m, K: 3, S: 1, P: 1})
	}
	add("conv1_1", "conv1", 3, 224, 64)
	add("conv1_2", "conv1", 64, 224, 64)
	add("conv2_1", "conv2", 64, 112, 128)
	add("conv2_2", "conv2", 128, 112, 128)
	add("conv3_1", "conv3", 128, 56, 256)
	add("conv3_2", "conv3", 256, 56, 256)
	add("conv3_3", "conv3", 256, 56, 256)
	add("conv4_1", "conv4", 256, 28, 512)
	add("conv4_2", "conv4", 512, 28, 512) // Layer-B
	add("conv4_3", "conv4", 512, 28, 512)
	add("conv5_1", "conv5", 512, 14, 512)
	add("conv5_2", "conv5", 512, 14, 512)
	add("conv5_3", "conv5", 512, 14, 512)
	return Network{Name: "VGG", Layers: ls}
}

// inceptionSpec holds the six branch widths of one GoogLeNet inception
// module: 1×1, 3×3 reduce, 3×3, 5×5 reduce, 5×5, pool projection.
type inceptionSpec struct {
	name                   string
	in, hw                 int
	p1, r3, p3, r5, p5, pp int
}

// GoogLeNet returns the 57-CONV-layer GoogLeNet v1 [3]: the 3-layer stem
// plus 9 inception modules of 6 convolutions each.
func GoogLeNet() Network {
	ls := []ConvLayer{
		{Name: "conv1_7x7_s2", Stage: "stem", N: 3, H: 224, L: 224, M: 64, K: 7, S: 2, P: 3},
		{Name: "conv2_3x3_reduce", Stage: "stem", N: 64, H: 56, L: 56, M: 64, K: 1, S: 1, P: 0},
		{Name: "conv2_3x3", Stage: "stem", N: 64, H: 56, L: 56, M: 192, K: 3, S: 1, P: 1},
	}
	specs := []inceptionSpec{
		{"3a", 192, 28, 64, 96, 128, 16, 32, 32},
		{"3b", 256, 28, 128, 128, 192, 32, 96, 64},
		{"4a", 480, 14, 192, 96, 208, 16, 48, 64},
		{"4b", 512, 14, 160, 112, 224, 24, 64, 64},
		{"4c", 512, 14, 128, 128, 256, 24, 64, 64},
		{"4d", 512, 14, 112, 144, 288, 32, 64, 64},
		{"4e", 528, 14, 256, 160, 320, 32, 128, 128},
		{"5a", 832, 7, 256, 160, 320, 32, 128, 128},
		{"5b", 832, 7, 384, 192, 384, 48, 128, 128},
	}
	for _, s := range specs {
		stage := "inception_" + s.name[:1] // groups 3a/3b -> inception_3, etc.
		pfx := "inception_" + s.name + "_"
		ls = append(ls,
			ConvLayer{Name: pfx + "1x1", Stage: stage, N: s.in, H: s.hw, L: s.hw, M: s.p1, K: 1, S: 1, P: 0},
			ConvLayer{Name: pfx + "3x3_reduce", Stage: stage, N: s.in, H: s.hw, L: s.hw, M: s.r3, K: 1, S: 1, P: 0},
			ConvLayer{Name: pfx + "3x3", Stage: stage, N: s.r3, H: s.hw, L: s.hw, M: s.p3, K: 3, S: 1, P: 1},
			ConvLayer{Name: pfx + "5x5_reduce", Stage: stage, N: s.in, H: s.hw, L: s.hw, M: s.r5, K: 1, S: 1, P: 0},
			ConvLayer{Name: pfx + "5x5", Stage: stage, N: s.r5, H: s.hw, L: s.hw, M: s.p5, K: 5, S: 1, P: 2},
			ConvLayer{Name: pfx + "pool_proj", Stage: stage, N: s.in, H: s.hw, L: s.hw, M: s.pp, K: 1, S: 1, P: 0},
		)
	}
	return Network{Name: "GoogLeNet", Layers: ls}
}

// ResNet returns the 53-CONV-layer ResNet-50 [4] in Caffe naming; the
// paper's running example Layer-A is "res4a_branch1".
func ResNet() Network {
	ls := []ConvLayer{
		{Name: "conv1", Stage: "conv1", N: 3, H: 224, L: 224, M: 64, K: 7, S: 2, P: 3},
	}
	// bottleneck appends one ResNet bottleneck block: 1x1 reduce, 3x3,
	// 1x1 expand, plus the projection shortcut (branch1) on the first
	// block of a stage. Downsampling stages stride on branch2a/branch1.
	bottleneck := func(stage, block string, in, hw, mid, out, stride int) {
		name := "res" + block + "_branch"
		outHW := hw / stride
		if stride == 1 {
			outHW = hw
		}
		if first := block[len(block)-1] == 'a'; first {
			ls = append(ls, ConvLayer{Name: name + "1", Stage: stage,
				N: in, H: hw, L: hw, M: out, K: 1, S: stride, P: 0})
		}
		ls = append(ls,
			ConvLayer{Name: name + "2a", Stage: stage, N: in, H: hw, L: hw, M: mid, K: 1, S: stride, P: 0},
			ConvLayer{Name: name + "2b", Stage: stage, N: mid, H: outHW, L: outHW, M: mid, K: 3, S: 1, P: 1},
			ConvLayer{Name: name + "2c", Stage: stage, N: mid, H: outHW, L: outHW, M: out, K: 1, S: 1, P: 0},
		)
	}
	type stageSpec struct {
		stage       string
		blocks      []string
		in, hw      int
		mid, out    int
		firstStride int
	}
	stages := []stageSpec{
		{"conv2_x", []string{"2a", "2b", "2c"}, 64, 56, 64, 256, 1},
		{"conv3_x", []string{"3a", "3b", "3c", "3d"}, 256, 56, 128, 512, 2},
		{"conv4_x", []string{"4a", "4b", "4c", "4d", "4e", "4f"}, 512, 28, 256, 1024, 2},
		{"conv5_x", []string{"5a", "5b", "5c"}, 1024, 14, 512, 2048, 2},
	}
	for _, st := range stages {
		in, hw := st.in, st.hw
		for i, b := range st.blocks {
			stride := 1
			if i == 0 {
				stride = st.firstStride
			}
			bottleneck(st.stage, b, in, hw, st.mid, st.out, stride)
			hw /= stride
			in = st.out
		}
	}
	return Network{Name: "ResNet", Layers: ls}
}

// Benchmarks returns the four evaluation networks in the paper's order.
func Benchmarks() []Network {
	return []Network{AlexNet(), VGG(), GoogLeNet(), ResNet()}
}

// ByName returns the benchmark network with the given name
// (case-sensitive), or false.
func ByName(name string) (Network, bool) {
	for _, n := range Benchmarks() {
		if n.Name == name {
			return n, true
		}
	}
	return Network{}, false
}
