package models

// Full-connection layers. The paper's analysis targets CONV layers and
// notes that "other layers can be transformed to execute in a similar way
// with the CONV layer acceleration" (§II-A, [11, 19-21]); this file
// provides that transformation: an FC layer is a 1×1 convolution over a
// 1×1 feature map whose channel count is the flattened input size, so
// every pattern/lifetime/energy analysis in the repository applies to it
// unchanged.

import "fmt"

// FCLayer is a fully connected layer: Out = W·In.
type FCLayer struct {
	Name    string
	Stage   string
	In, Out int
}

// Validate reports structural problems.
func (f FCLayer) Validate() error {
	if f.In <= 0 || f.Out <= 0 {
		return fmt.Errorf("models: FC layer %q has non-positive dims %dx%d", f.Name, f.In, f.Out)
	}
	return nil
}

// AsConv transforms the FC layer into its equivalent CONV layer: a 1×1
// kernel over a 1×1 spatial map with In input channels and Out kernels.
// MACs, weight storage and data volumes are preserved exactly.
func (f FCLayer) AsConv() ConvLayer {
	return ConvLayer{
		Name:  f.Name,
		Stage: f.Stage,
		N:     f.In,
		H:     1, L: 1,
		M: f.Out,
		K: 1, S: 1, P: 0,
	}
}

// WeightWords returns the FC weight count In·Out.
func (f FCLayer) WeightWords() uint64 { return uint64(f.In) * uint64(f.Out) }

// ClassifierFCs returns the fully connected classifier head of a
// benchmark network (the layers the paper's CONV-only analysis omits),
// or nil for GoogLeNet-style average-pool heads with a single FC.
func ClassifierFCs(model string) []FCLayer {
	switch model {
	case "AlexNet":
		return []FCLayer{
			{Name: "fc6", Stage: "classifier", In: 256 * 6 * 6, Out: 4096},
			{Name: "fc7", Stage: "classifier", In: 4096, Out: 4096},
			{Name: "fc8", Stage: "classifier", In: 4096, Out: 1000},
		}
	case "VGG":
		return []FCLayer{
			{Name: "fc6", Stage: "classifier", In: 512 * 7 * 7, Out: 4096},
			{Name: "fc7", Stage: "classifier", In: 4096, Out: 4096},
			{Name: "fc8", Stage: "classifier", In: 4096, Out: 1000},
		}
	case "GoogLeNet":
		return []FCLayer{
			{Name: "loss3_classifier", Stage: "classifier", In: 1024, Out: 1000},
		}
	case "ResNet":
		return []FCLayer{
			{Name: "fc1000", Stage: "classifier", In: 2048, Out: 1000},
		}
	default:
		return nil
	}
}

// WithClassifier returns the network extended with its classifier FC
// layers transformed to CONV form — the full inference pipeline as one
// schedulable network.
func WithClassifier(n Network) Network {
	out := Network{Name: n.Name, Layers: append([]ConvLayer(nil), n.Layers...)}
	for _, fc := range ClassifierFCs(n.Name) {
		out.Layers = append(out.Layers, fc.AsConv())
	}
	return out
}
