package models

import "testing"

func TestFCAsConvPreservesWork(t *testing.T) {
	fc := FCLayer{Name: "fc6", In: 9216, Out: 4096}
	c := fc.AsConv()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MACs() != fc.WeightWords() {
		t.Errorf("FC-as-conv MACs %d != weights %d (each weight used once)", c.MACs(), fc.WeightWords())
	}
	if c.WeightWords() != 9216*4096 {
		t.Errorf("weights = %d", c.WeightWords())
	}
	if c.InputWords() != 9216 || c.OutputWords() != 4096 {
		t.Errorf("io = %d/%d", c.InputWords(), c.OutputWords())
	}
	if c.R() != 1 || c.C() != 1 {
		t.Errorf("spatial dims = %dx%d", c.R(), c.C())
	}
}

func TestFCValidate(t *testing.T) {
	if err := (FCLayer{Name: "bad", In: 0, Out: 10}).Validate(); err == nil {
		t.Error("zero In should fail")
	}
	if err := (FCLayer{Name: "bad", In: 10, Out: -1}).Validate(); err == nil {
		t.Error("negative Out should fail")
	}
}

func TestClassifierFCs(t *testing.T) {
	// AlexNet's famous fc6: 37.75M parameters.
	fcs := ClassifierFCs("AlexNet")
	if len(fcs) != 3 {
		t.Fatalf("%d FCs", len(fcs))
	}
	if fcs[0].WeightWords() != 9216*4096 {
		t.Errorf("fc6 weights = %d", fcs[0].WeightWords())
	}
	if len(ClassifierFCs("ResNet")) != 1 || len(ClassifierFCs("GoogLeNet")) != 1 {
		t.Error("single-FC heads")
	}
	if ClassifierFCs("nope") != nil {
		t.Error("unknown model should return nil")
	}
}

func TestWithClassifier(t *testing.T) {
	full := WithClassifier(AlexNet())
	if err := full.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(full.Layers) != 5+3 {
		t.Fatalf("%d layers", len(full.Layers))
	}
	// The original network is untouched.
	if len(AlexNet().Layers) != 5 {
		t.Error("WithClassifier mutated the base network")
	}
	// FC weights dominate: fc6 exceeds every CONV layer.
	s := full.Summarize()
	if s.MaxWeightWords != 9216*4096 {
		t.Errorf("max weights = %d, want fc6's", s.MaxWeightWords)
	}
}
