package models

import (
	"math"
	"testing"
	"testing/quick"
)

// almost reports |got-want| <= tol.
func almost(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestNetworksValidate(t *testing.T) {
	for _, n := range Benchmarks() {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestLayerCounts(t *testing.T) {
	// Layer counts of the original deployments: AlexNet 5 CONVs,
	// VGG-16 13, GoogLeNet v1 57 (3 stem + 9 modules × 6),
	// ResNet-50 53 (1 + 10 + 13 + 19 + 10).
	want := map[string]int{"AlexNet": 5, "VGG": 13, "GoogLeNet": 57, "ResNet": 53}
	for _, n := range Benchmarks() {
		if got := len(n.Layers); got != want[n.Name] {
			t.Errorf("%s: %d layers, want %d", n.Name, got, want[n.Name])
		}
	}
}

// TestTableI verifies the storage maxima against Table I of the paper
// (16-bit precision, 224×224×3 input, MB = 1000·1024 bytes).
func TestTableI(t *testing.T) {
	want := map[string][3]float64{
		"AlexNet":   {0.30, 0.57, 1.73},
		"VGG":       {6.27, 6.27, 4.61},
		"GoogLeNet": {0.39, 1.57, 1.30},
		"ResNet":    {1.57, 1.57, 4.61},
	}
	for _, n := range Benchmarks() {
		s := n.Summarize()
		w := want[n.Name]
		if !almost(s.MaxInputMB(), w[0], 0.005) {
			t.Errorf("%s max inputs = %.3f MB, want %.2f", n.Name, s.MaxInputMB(), w[0])
		}
		if !almost(s.MaxOutputMB(), w[1], 0.005) {
			t.Errorf("%s max outputs = %.3f MB, want %.2f", n.Name, s.MaxOutputMB(), w[1])
		}
		if !almost(s.MaxWeightMB(), w[2], 0.005) {
			t.Errorf("%s max weights = %.3f MB, want %.2f", n.Name, s.MaxWeightMB(), w[2])
		}
	}
}

func TestRunningCaseLayers(t *testing.T) {
	// Layer-A: ResNet res4a_branch1 — 1×1 conv, 512→1024, stride 2,
	// 28×28 → 14×14 (§III-A).
	resnet := ResNet()
	a, ok := resnet.Layer("res4a_branch1")
	if !ok {
		t.Fatal("res4a_branch1 missing from ResNet")
	}
	if a.N != 512 || a.M != 1024 || a.K != 1 || a.S != 2 || a.H != 28 {
		t.Errorf("Layer-A shape mismatch: %+v", a)
	}
	if a.R() != 14 || a.C() != 14 {
		t.Errorf("Layer-A output = %dx%d, want 14x14", a.R(), a.C())
	}
	// Layer-B: VGG conv4_2 (the 9th CONV layer) — 3×3, 512→512 at 28×28.
	vgg := VGG()
	b, ok := vgg.Layer("conv4_2")
	if !ok {
		t.Fatal("conv4_2 missing from VGG")
	}
	if vgg.Layers[8].Name != "conv4_2" {
		t.Errorf("conv4_2 is layer %q at index 8, want the 9th conv", vgg.Layers[8].Name)
	}
	if b.N != 512 || b.M != 512 || b.K != 3 || b.H != 28 || b.R() != 28 {
		t.Errorf("Layer-B shape mismatch: %+v", b)
	}
}

func TestGroupedLayerAccounting(t *testing.T) {
	l := ConvLayer{Name: "g", N: 8, H: 6, L: 6, M: 4, K: 3, S: 1, P: 1, Groups: 2}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// Weights: M·(N/G)·K² = 4·4·9.
	if got := l.WeightWords(); got != 144 {
		t.Errorf("WeightWords = %d, want 144", got)
	}
	// MACs: M·(N/G)·R·C·K² = 4·4·36·9.
	if got := l.MACs(); got != 4*4*36*9 {
		t.Errorf("MACs = %d, want %d", got, 4*4*36*9)
	}
}

func TestValidateRejectsBadLayers(t *testing.T) {
	bad := []ConvLayer{
		{Name: "neg", N: -1, H: 4, L: 4, M: 1, K: 1, S: 1},
		{Name: "zeroM", N: 1, H: 4, L: 4, M: 0, K: 1, S: 1},
		{Name: "bigK", N: 1, H: 2, L: 2, M: 1, K: 5, S: 1},
		{Name: "badG", N: 3, H: 4, L: 4, M: 2, K: 1, S: 1, Groups: 2},
		{Name: "zeroS", N: 1, H: 4, L: 4, M: 1, K: 1, S: 0},
	}
	for _, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("layer %q: expected validation error", l.Name)
		}
	}
}

func TestNetworkValidateRejectsDuplicates(t *testing.T) {
	n := Network{Name: "dup", Layers: []ConvLayer{
		{Name: "a", N: 1, H: 4, L: 4, M: 1, K: 1, S: 1},
		{Name: "a", N: 1, H: 4, L: 4, M: 1, K: 1, S: 1},
	}}
	if err := n.Validate(); err == nil {
		t.Error("expected duplicate-name error")
	}
	if err := (Network{Name: "empty"}).Validate(); err == nil {
		t.Error("expected empty-network error")
	}
}

// TestOutputDimsProperty checks R/C against the defining identity for
// random valid geometries: the last window must fit, the next must not.
func TestOutputDimsProperty(t *testing.T) {
	f := func(h8, k4, s3, p2 uint8) bool {
		k := int(k4%5) + 1
		s := int(s3%3) + 1
		p := int(p2 % 3)
		h := int(h8%40) + k // ensure H >= K
		l := ConvLayer{Name: "p", N: 1, H: h, L: h, M: 1, K: k, S: s, P: p}
		if l.Validate() != nil {
			return true // skip invalid combos
		}
		r := l.R()
		lastStart := (r - 1) * s
		nextStart := r * s
		return lastStart+k <= h+2*p && nextStart+k > h+2*p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPaperMB(t *testing.T) {
	// VGG conv1_2 inputs: 224·224·64 words = 6.27 paper-MB.
	if got := PaperMB(224 * 224 * 64); !almost(got, 6.27, 0.005) {
		t.Errorf("PaperMB = %.4f, want 6.27", got)
	}
}

func TestStages(t *testing.T) {
	r := ResNet()
	want := []string{"conv1", "conv2_x", "conv3_x", "conv4_x", "conv5_x"}
	got := r.Stages()
	if len(got) != len(want) {
		t.Fatalf("Stages = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("stage %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("VGG"); !ok {
		t.Error("ByName(VGG) not found")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) unexpectedly found")
	}
}

func TestTotalMACs(t *testing.T) {
	// VGG-16 CONV MACs ≈ 15.3 G (well-known figure).
	g := float64(VGG().TotalMACs()) / 1e9
	if g < 15.0 || g > 15.7 {
		t.Errorf("VGG total MACs = %.2fG, want ≈15.3G", g)
	}
	// ResNet-50 CONV MACs ≈ 3.8-4.1 G.
	g = float64(ResNet().TotalMACs()) / 1e9
	if g < 3.5 || g > 4.2 {
		t.Errorf("ResNet total MACs = %.2fG, want ≈3.9G", g)
	}
}
