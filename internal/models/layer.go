// Package models defines the convolutional-layer shape tables of the four
// benchmark networks the paper evaluates — AlexNet [1], VGG-16 [2],
// GoogLeNet v1 [3] and ResNet-50 [4] — at the standard ImageNet input
// size of 224×224×3, plus the storage calculators behind Table I and
// Fig. 12.
//
// Only layer *shapes* matter to RANA's scheduling and energy analysis
// (weight values never appear in Eqs. 1–14), so the tables carry
// dimensions, strides and grouping, not parameters.
//
// A note on units: the paper reports storage in "MB" computed as
// KB = 1024 bytes, MB = 1000 KB (verified against every entry of
// Table I, e.g. VGG max inputs 224·224·64 words · 2 B = 6.27 MB).
// PaperMB reproduces that convention.
package models

import "fmt"

// ConvLayer describes one convolutional layer: N×H×L input feature maps
// convolved by M kernels of size (N/Groups)×K×K with stride S and padding
// P, producing M×R×C output maps (Fig. 2a).
type ConvLayer struct {
	// Name identifies the layer, e.g. "res4a_branch1".
	Name string
	// Stage groups layers for per-stage reporting (Fig. 1), e.g. "conv4_x".
	Stage string
	// N, H, L are input channels, height and width.
	N, H, L int
	// M is the number of kernels (= output channels).
	M int
	// K is the square kernel size; S the stride; P the zero padding.
	K, S, P int
	// Groups splits the convolution channel-wise (AlexNet-style); each
	// kernel sees N/Groups input channels. 0 is treated as 1.
	Groups int
}

// groups returns the effective group count (>= 1).
func (l ConvLayer) groups() int {
	if l.Groups <= 1 {
		return 1
	}
	return l.Groups
}

// R returns the output height: (H + 2P - K)/S + 1.
func (l ConvLayer) R() int { return (l.H+2*l.P-l.K)/l.S + 1 }

// C returns the output width: (L + 2P - K)/S + 1.
func (l ConvLayer) C() int { return (l.L+2*l.P-l.K)/l.S + 1 }

// Validate reports structural problems with the layer shape.
func (l ConvLayer) Validate() error {
	switch {
	case l.N <= 0 || l.H <= 0 || l.L <= 0:
		return fmt.Errorf("models: layer %q has non-positive input dims %dx%dx%d", l.Name, l.N, l.H, l.L)
	case l.M <= 0:
		return fmt.Errorf("models: layer %q has non-positive kernel count %d", l.Name, l.M)
	case l.K <= 0 || l.S <= 0 || l.P < 0:
		return fmt.Errorf("models: layer %q has invalid K=%d S=%d P=%d", l.Name, l.K, l.S, l.P)
	case l.H+2*l.P < l.K || l.L+2*l.P < l.K:
		return fmt.Errorf("models: layer %q kernel %d exceeds padded input %dx%d", l.Name, l.K, l.H+2*l.P, l.L+2*l.P)
	case l.N%l.groups() != 0 || l.M%l.groups() != 0:
		return fmt.Errorf("models: layer %q groups %d do not divide N=%d / M=%d", l.Name, l.groups(), l.N, l.M)
	}
	return nil
}

// InputWords returns the total input storage N·H·L in 16-bit words.
func (l ConvLayer) InputWords() uint64 {
	return uint64(l.N) * uint64(l.H) * uint64(l.L)
}

// OutputWords returns the total output storage M·R·C in 16-bit words.
func (l ConvLayer) OutputWords() uint64 {
	return uint64(l.M) * uint64(l.R()) * uint64(l.C())
}

// WeightWords returns the total kernel storage M·(N/G)·K² in 16-bit words.
func (l ConvLayer) WeightWords() uint64 {
	return uint64(l.M) * uint64(l.N/l.groups()) * uint64(l.K) * uint64(l.K)
}

// MACs returns the layer's multiply-accumulate count
// M·(N/G)·R·C·K² — the α coefficient of Eq. 14.
func (l ConvLayer) MACs() uint64 {
	return uint64(l.M) * uint64(l.N/l.groups()) *
		uint64(l.R()) * uint64(l.C()) * uint64(l.K) * uint64(l.K)
}

// PaperMB converts a word count to the paper's "MB" unit
// (2 bytes/word, KB = 1024 B, MB = 1000 KB). See the package comment.
func PaperMB(words uint64) float64 {
	return float64(words) * 2 / (1024 * 1000)
}

// Network is an ordered list of CONV layers with a name. Pooling and FC
// layers are omitted: the paper's analysis covers CONV layers only (§II-A),
// with other layer types transformed to execute the same way.
type Network struct {
	Name   string
	Layers []ConvLayer
}

// Validate checks every layer shape. Duplicate names are detected with
// a quadratic scan rather than a map: networks have dozens of layers at
// most, and Validate sits on the scheduler's steady-state compile path,
// which must not allocate.
func (n Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("models: network %q has no layers", n.Name)
	}
	for i, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return fmt.Errorf("models: network %q: %w", n.Name, err)
		}
		for j := 0; j < i; j++ {
			if n.Layers[j].Name == l.Name {
				return fmt.Errorf("models: network %q has duplicate layer name %q", n.Name, l.Name)
			}
		}
	}
	return nil
}

// Layer returns the layer with the given name, or false if absent.
func (n Network) Layer(name string) (ConvLayer, bool) {
	for _, l := range n.Layers {
		if l.Name == name {
			return l, true
		}
	}
	return ConvLayer{}, false
}

// TotalMACs sums MACs over all layers.
func (n Network) TotalMACs() uint64 {
	var sum uint64
	for _, l := range n.Layers {
		sum += l.MACs()
	}
	return sum
}

// StorageSummary is one row of Table I: the per-network maxima of layer
// input, output and weight storage.
type StorageSummary struct {
	Model                                         string
	MaxInputWords, MaxOutputWords, MaxWeightWords uint64
}

// MaxInputMB returns the maximum layer input storage in paper-MB.
func (s StorageSummary) MaxInputMB() float64 { return PaperMB(s.MaxInputWords) }

// MaxOutputMB returns the maximum layer output storage in paper-MB.
func (s StorageSummary) MaxOutputMB() float64 { return PaperMB(s.MaxOutputWords) }

// MaxWeightMB returns the maximum layer weight storage in paper-MB.
func (s StorageSummary) MaxWeightMB() float64 { return PaperMB(s.MaxWeightWords) }

// Summarize computes the network's Table I row.
func (n Network) Summarize() StorageSummary {
	s := StorageSummary{Model: n.Name}
	for _, l := range n.Layers {
		if w := l.InputWords(); w > s.MaxInputWords {
			s.MaxInputWords = w
		}
		if w := l.OutputWords(); w > s.MaxOutputWords {
			s.MaxOutputWords = w
		}
		if w := l.WeightWords(); w > s.MaxWeightWords {
			s.MaxWeightWords = w
		}
	}
	return s
}

// Stages returns the distinct stage labels in layer order.
func (n Network) Stages() []string {
	var out []string
	seen := make(map[string]bool)
	for _, l := range n.Layers {
		if !seen[l.Stage] {
			seen[l.Stage] = true
			out = append(out, l.Stage)
		}
	}
	return out
}
