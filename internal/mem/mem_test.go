package mem

import (
	"testing"

	"rana/internal/energy"
	"rana/internal/retention"
)

// TestRegistryInvariants walks every registered backend and asserts the
// contract Register enforces plus the pieces it cannot: nominal first,
// valid names, sane point parameters, buffer backends that actually
// build buffers and expose a retention model consistent with their
// refresh semantics.
func TestRegistryInvariants(t *testing.T) {
	names := Names()
	if len(names) < 5 {
		t.Fatalf("registry has %d backends, want at least the 5 built-ins", len(names))
	}
	for _, name := range names {
		b, ok := Lookup(name)
		if !ok {
			t.Fatalf("Names listed %q but Lookup misses it", name)
		}
		if b.Name() != name {
			t.Errorf("backend registered as %q names itself %q", name, b.Name())
		}
		if b.Description() == "" {
			t.Errorf("%s: empty description", name)
		}
		pts := b.Points()
		if len(pts) == 0 || pts[0].Name != Nominal {
			t.Fatalf("%s: first point is not nominal", name)
		}
		if pts[0].RetentionScale != 1 && pts[0].RetentionScale != 0 {
			t.Errorf("%s: nominal retention scale %g, want 1 (or 0 for non-refreshing)",
				name, pts[0].RetentionScale)
		}
		for _, p := range pts {
			got, ok := PointByName(b, p.Name)
			if !ok || got != p {
				t.Errorf("%s: PointByName(%q) does not round-trip", name, p.Name)
			}
			if b.Refreshes() {
				d, err := b.Retention(p)
				if err != nil || d == nil {
					t.Errorf("%s@%s: refreshing backend without retention model: %v", name, p.Name, err)
				}
			}
		}
		if _, ok := PointByName(b, "no-such-point"); ok {
			t.Errorf("%s: resolves a point that does not exist", name)
		}
		buf, err := b.NewBuffer(2, 64, 1, pts[0])
		if b.Role() == RoleBuffer {
			if err != nil {
				t.Errorf("%s: buffer backend cannot build a buffer: %v", name, err)
			} else if buf.Words() != 2*64 {
				t.Errorf("%s: buffer words = %d, want 128", name, buf.Words())
			}
		} else if err == nil {
			t.Errorf("%s: off-chip backend built a buffer", name)
		}
	}
	// Buffers() is exactly the buffer-role subset, sorted.
	var bufNames []string
	for _, b := range Buffers() {
		bufNames = append(bufNames, b.Name())
	}
	for i := 1; i < len(bufNames); i++ {
		if bufNames[i-1] >= bufNames[i] {
			t.Errorf("Buffers() not sorted: %v", bufNames)
		}
	}
	for _, n := range bufNames {
		if n == "ddr3" {
			t.Error("Buffers() includes the off-chip backend")
		}
	}
}

// TestNominalPointsMatchLegacyConstants pins the byte-identity anchor:
// the default backends' nominal points project onto exactly the Table
// II/III constants the historical hard-wired path priced with.
func TestNominalPointsMatchLegacyConstants(t *testing.T) {
	ed, _ := Lookup("edram")
	p := ed.Points()[0]
	if p.AccessPJ != energy.EDRAMAccessPJ || p.RefreshPJ != energy.EDRAMRefreshPJ ||
		p.WearPJ != 0 || p.LatencyNS != energy.EDRAMLatencyNS {
		t.Errorf("edram nominal %+v diverges from Table II/III constants", p)
	}
	if ed.BankAreaMM2() != energy.EDRAMBankAreaMM2 {
		t.Errorf("edram bank area %g != %g", ed.BankAreaMM2(), energy.EDRAMBankAreaMM2)
	}
	if tab := p.Table(); tab != energy.EDRAM.Table() {
		t.Errorf("edram nominal table %+v != legacy %+v", tab, energy.EDRAM.Table())
	}
	d, err := ed.Retention(p)
	if err != nil {
		t.Fatal(err)
	}
	if rt := d.RetentionTime(retention.TolerableFailureRate); rt != retention.TolerableRetentionTime {
		t.Errorf("edram nominal retention curve shifted: tolerable time %v", rt)
	}

	sr, _ := Lookup("sram")
	p = sr.Points()[0]
	if p.AccessPJ != energy.SRAMAccessPJ || p.RefreshPJ != 0 || p.WearPJ != 0 ||
		p.LatencyNS != energy.SRAMLatencyNS {
		t.Errorf("sram nominal %+v diverges from Table II/III constants", p)
	}
	if sr.Refreshes() {
		t.Error("sram claims to refresh")
	}
	if tab := p.Table(); tab != energy.SRAM.Table() {
		t.Errorf("sram nominal table %+v != legacy %+v", tab, energy.SRAM.Table())
	}
}

// TestDefaults: the technology → default-backend mapping and the
// normalization rules the cache keys and memo signatures rely on.
func TestDefaults(t *testing.T) {
	if DefaultName(energy.EDRAM) != "edram" || DefaultName(energy.SRAM) != "sram" {
		t.Fatal("default-name mapping broken")
	}
	for _, tech := range []energy.BufferTech{energy.EDRAM, energy.SRAM} {
		b := Default(tech)
		if b == nil || b.Name() != DefaultName(tech) {
			t.Fatalf("Default(%v) = %v", tech, b)
		}
		if got := NormalizeName(DefaultName(tech), tech); got != "" {
			t.Errorf("NormalizeName(default, %v) = %q, want \"\"", tech, got)
		}
		if got := NormalizeName("approx-dram", tech); got != "approx-dram" {
			t.Errorf("NormalizeName(approx-dram, %v) = %q", tech, got)
		}
		if got := NormalizeName("", tech); got != "" {
			t.Errorf("NormalizeName(\"\", %v) = %q", tech, got)
		}
	}
	// The cross mapping must NOT normalize: "sram" on an eDRAM config is
	// a real backend change.
	if got := NormalizeName("sram", energy.EDRAM); got != "sram" {
		t.Errorf(`NormalizeName("sram", EDRAM) = %q, want "sram"`, got)
	}
	if NormalizePoint(Nominal) != "" || NormalizePoint("v0.8") != "v0.8" || NormalizePoint("") != "" {
		t.Error("NormalizePoint rules broken")
	}
}

// TestApproxDRAMPointCurve: the EDEN-style ladder is ordered — each
// reduced-voltage step buys access energy with retention and raw bit
// errors — and the V² access-energy scaling holds.
func TestApproxDRAMPointCurve(t *testing.T) {
	b, ok := Lookup("approx-dram")
	if !ok {
		t.Fatal("approx-dram not registered")
	}
	pts := b.Points()
	if len(pts) != 4 {
		t.Fatalf("approx-dram has %d points, want 4", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		prev, p := pts[i-1], pts[i]
		if p.AccessPJ >= prev.AccessPJ {
			t.Errorf("point %s access %g not cheaper than %s's %g", p.Name, p.AccessPJ, prev.Name, prev.AccessPJ)
		}
		if p.RetentionScale >= prev.RetentionScale {
			t.Errorf("point %s retention scale %g not shorter than %s's %g", p.Name, p.RetentionScale, prev.Name, prev.RetentionScale)
		}
		if p.BitErrorRate <= prev.BitErrorRate {
			t.Errorf("point %s BER %g not above %s's %g", p.Name, p.BitErrorRate, prev.Name, prev.BitErrorRate)
		}
		// Scaled retention curves must actually materialize.
		d, err := b.Retention(p)
		if err != nil || d == nil {
			t.Errorf("point %s: no retention curve: %v", p.Name, err)
		}
	}
	// V² scaling off the nominal corner: v0.8 → 0.64×.
	v08, _ := PointByName(b, "v0.8")
	want := pts[0].AccessPJ * 0.64
	if diff := v08.AccessPJ - want; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("v0.8 access %g, want %g (V² scaling)", v08.AccessPJ, want)
	}
}

// TestReRAMWear: the Hamun-style backend is non-volatile (no refresh)
// but charges ageing per write, and its fast-write point trades wear
// for error rate.
func TestReRAMWear(t *testing.T) {
	b, ok := Lookup("reram")
	if !ok {
		t.Fatal("reram not registered")
	}
	if b.Refreshes() {
		t.Error("reram claims to refresh")
	}
	nom := b.Points()[0]
	if nom.WearPJ <= 0 {
		t.Errorf("reram nominal wear %g, want > 0", nom.WearPJ)
	}
	fw, ok := PointByName(b, "fast-write")
	if !ok {
		t.Fatal("reram has no fast-write point")
	}
	if fw.WearPJ >= nom.WearPJ || fw.BitErrorRate <= nom.BitErrorRate {
		t.Errorf("fast-write %+v does not trade wear for errors vs nominal %+v", fw, nom)
	}
}

// TestParseSpecTable: the deterministic counterpart of FuzzParseSpec.
func TestParseSpecTable(t *testing.T) {
	good := map[string]struct{ backend, point string }{
		"edram":            {"edram", Nominal},
		"edram@nominal":    {"edram", Nominal},
		"approx-dram@v0.8": {"approx-dram", "v0.8"},
		"reram@fast-write": {"reram", "fast-write"},
		"ddr3":             {"ddr3", Nominal},
	}
	for spec, want := range good {
		b, p, err := ParseSpec(spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		if b.Name() != want.backend || p.Name != want.point {
			t.Errorf("ParseSpec(%q) = %s@%s, want %s@%s", spec, b.Name(), p.Name, want.backend, want.point)
		}
	}
	for _, spec := range []string{
		"", "@", "edram@", "@nominal", "edram@@nominal", "EDRAM", "edram ",
		"nvram", "edram@v0.5", "approx-dram@V0.8", "-edram",
	} {
		if _, _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

// TestRegisterPanics: registration errors are programmer errors and
// panic loudly at init time.
func TestRegisterPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("nil backend", func() { Register(nil) })
	mustPanic("duplicate", func() {
		b, _ := Lookup("edram")
		Register(b)
	})
	mustPanic("bad name", func() { Register(testBackend{name: "Bad Name"}) })
	mustPanic("no points", func() { Register(testBackend{name: "t-nopoints"}) })
	mustPanic("nominal not first", func() {
		Register(testBackend{name: "t-order", points: []OperatingPoint{{Name: "v0.9"}}})
	})
	mustPanic("duplicate point", func() {
		Register(testBackend{name: "t-dup", points: []OperatingPoint{{Name: Nominal}, {Name: Nominal}}})
	})
	mustPanic("negative energy", func() {
		Register(testBackend{name: "t-neg", points: []OperatingPoint{{Name: Nominal, AccessPJ: -1}}})
	})
	mustPanic("ber above 1", func() {
		Register(testBackend{name: "t-ber", points: []OperatingPoint{{Name: Nominal, BitErrorRate: 2}}})
	})
}

// testBackend is a minimal Backend for registration-failure tests.
type testBackend struct {
	name   string
	points []OperatingPoint
}

func (t testBackend) Name() string             { return t.name }
func (t testBackend) Description() string      { return "test backend" }
func (t testBackend) Role() Role               { return RoleBuffer }
func (t testBackend) Refreshes() bool          { return false }
func (t testBackend) Points() []OperatingPoint { return t.points }
func (t testBackend) BankAreaMM2() float64     { return 0.1 }
func (t testBackend) Retention(OperatingPoint) (*retention.Distribution, error) {
	return nil, nil
}
func (t testBackend) NewBuffer(banks, wordsPerBank int, seed uint64, p OperatingPoint) (Buffer, error) {
	return nil, nil
}
