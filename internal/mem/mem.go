// Package mem defines the pluggable memory-technology backend interface
// behind RANA's buffer and off-chip models. The paper hard-wires one
// technology pair — eDRAM on chip (refresh-optimized), DDR3 off chip —
// but the scheduling scheme only ever consumes a small contract: an
// energy table for Eq. 14, refresh semantics plus a retention/error
// model for the refresh decision, and a functional failure injector for
// word-accurate validation. This package names that contract (Backend),
// enumerates discrete operating points per backend (OperatingPoint — the
// EDEN-style voltage/latency steps that become a search axis), and keeps
// a registry so the scheduler, the serving API and the CLIs address
// technologies by name.
//
// The default backends ("edram" for eDRAM configs, "sram" for SRAM
// configs) adapt internal/edram and internal/sram with the exact Table
// II/III constants at a single nominal operating point, so scheduling
// through the backend seam is bit-identical to the historical
// hard-wired path — the golden schedules and internal/verify oracles
// pin that. The "approx-dram" backend adds EDEN-style reduced-voltage
// points (cheaper accesses, shorter retention, nonzero bit-error rate);
// the "reram" backend is a Hamun-style non-volatile technology whose
// operating points charge an ageing cost per buffer write.
package mem

import (
	"fmt"
	"time"

	"rana/internal/energy"
	"rana/internal/fixed"
	"rana/internal/retention"
)

// Nominal is the name every backend gives its first operating point:
// the technology's datasheet corner, the one the default scheduling
// path prices. Normalization collapses it onto the empty spelling so
// cache keys and memo signatures do not fork on "@nominal".
const Nominal = "nominal"

// Role classifies where in the memory hierarchy a backend sits.
type Role int

const (
	// RoleBuffer backends implement the on-chip unified buffer; they
	// are what the scheduler's operating-point axis ranges over.
	RoleBuffer Role = iota
	// RoleOffChip backends implement the off-chip store (DDR3). They
	// appear in the catalog but cannot be selected as a buffer.
	RoleOffChip
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleBuffer:
		return "buffer"
	case RoleOffChip:
		return "offchip"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// OperatingPoint is one discrete (voltage, timing) corner of a memory
// technology — the unit the search engine enumerates. All energies are
// per 16-bit word, matching Table III's units.
type OperatingPoint struct {
	// Name identifies the point within its backend ("nominal", "v0.8").
	Name string
	// AccessPJ prices one buffer access (the βb coefficient's unit).
	AccessPJ float64
	// RefreshPJ prices one word refresh; zero for non-refreshing
	// technologies.
	RefreshPJ float64
	// WearPJ is the amortized ageing cost per buffer write (Hamun-style
	// wear accounting); zero for wear-free technologies.
	WearPJ float64
	// RetentionScale multiplies the technology's retention curve (and
	// therefore the schedule's refresh interval): reduced-voltage DRAM
	// cells leak from a lower charge, so retention shrinks (< 1).
	// Exactly 1 at nominal.
	RetentionScale float64
	// BitErrorRate is the raw per-bit error rate the point exhibits
	// when refreshed at its scaled interval — the resilience-curve
	// input EDEN gates points by. Points whose rate exceeds the
	// scheduler's error budget are excluded from the search space.
	BitErrorRate float64
	// LatencyNS is the per-access latency, informational (the cycle
	// model keeps the paper's fixed pipeline).
	LatencyNS float64
}

// Table projects the point onto the Eq. 14 pricing table. The nominal
// points of the default backends project onto exactly the BufferTech
// constants, which is what keeps backend-priced plans bit-identical to
// the historical path.
func (p OperatingPoint) Table() energy.Table {
	return energy.Table{AccessPJ: p.AccessPJ, RefreshPJ: p.RefreshPJ, WearPJ: p.WearPJ}
}

// Buffer is the functional word store a backend builds for word-accurate
// simulation — the failure injector. *edram.Buffer and *sram.Buffer
// satisfy it; it is a superset of sim.Storage so a backend buffer plugs
// straight into sim.RunFunctional.
type Buffer interface {
	Read(addr int, now time.Duration) fixed.Word
	Write(addr int, w fixed.Word, now time.Duration)
	Words() int
}

// Backend is one memory technology: an energy table per operating
// point, refresh semantics, a retention/error model, and a functional
// failure injector. Implementations must be stateless value types —
// one Backend serves every scheduler and request concurrently.
type Backend interface {
	// Name is the registry key ("edram", "approx-dram", ...).
	Name() string
	// Description is the one-line catalog blurb.
	Description() string
	// Role reports where the backend sits in the hierarchy.
	Role() Role
	// Refreshes reports whether the technology loses charge and needs
	// periodic refresh — the predicate the scheduler's refresh
	// accounting keys on (the historical BufferTech == EDRAM test).
	Refreshes() bool
	// Points enumerates the operating points, nominal first. At least
	// one; order is the canonical search enumeration order.
	Points() []OperatingPoint
	// BankAreaMM2 is the 32 KB bank area (Table II's axis).
	BankAreaMM2() float64
	// Retention returns the retention-time distribution at a point —
	// the error model driving both the refresh decision and the
	// functional injector. Non-refreshing backends return (nil, nil).
	Retention(p OperatingPoint) (*retention.Distribution, error)
	// NewBuffer builds the functional failure injector at a point.
	// Off-chip backends return an error.
	NewBuffer(banks, wordsPerBank int, seed uint64, p OperatingPoint) (Buffer, error)
}

// PointByName resolves an operating point on a backend. The empty name
// selects the nominal (first) point.
func PointByName(b Backend, name string) (OperatingPoint, bool) {
	pts := b.Points()
	if name == "" {
		return pts[0], true
	}
	for _, p := range pts {
		if p.Name == name {
			return p, true
		}
	}
	return OperatingPoint{}, false
}

// Default returns the buffer backend that reproduces the historical
// hard-wired behavior for a buffer technology: "edram" for EDRAM
// configs, "sram" for SRAM.
func Default(tech energy.BufferTech) Backend {
	b, _ := Lookup(DefaultName(tech))
	return b
}

// DefaultName is Default's registry key.
func DefaultName(tech energy.BufferTech) string {
	if tech == energy.SRAM {
		return "sram"
	}
	return "edram"
}

// NormalizeName collapses the default backend's explicit spelling onto
// the empty string for a given buffer technology, so cache keys, memo
// signatures and wire encodings do not fork on equivalent requests.
func NormalizeName(name string, tech energy.BufferTech) string {
	if name == DefaultName(tech) {
		return ""
	}
	return name
}

// NormalizePoint collapses the nominal point's explicit spelling onto
// the empty string.
func NormalizePoint(name string) string {
	if name == Nominal {
		return ""
	}
	return name
}
