package mem

// Fuzzing for the backend-spec grammar. Specs arrive from CLI flags and
// untrusted HTTP requests, so ParseSpec must hold its contract on
// arbitrary bytes: parse or error, never panic, and every accepted spec
// must round-trip onto a registered backend and one of its real points.

import (
	"strings"
	"testing"
)

func FuzzParseSpec(f *testing.F) {
	// Valid shapes.
	f.Add("edram")
	f.Add("approx-dram@v0.8")
	f.Add("reram@fast-write")
	f.Add("sram@nominal")
	// Hostile corpus: empties, grammar abuse, case/whitespace traps,
	// separator floods, length attacks, non-ASCII, and near-misses of
	// real names.
	f.Add("")
	f.Add("@")
	f.Add("@nominal")
	f.Add("edram@")
	f.Add("edram@@nominal")
	f.Add("edram@nominal@v0.8")
	f.Add("EDRAM")
	f.Add(" edram")
	f.Add("edram ")
	f.Add("edram@v0.8\n")
	f.Add("edram\x00")
	f.Add("édram")
	f.Add("-edram")
	f.Add(".edram")
	f.Add("edram@-v0.8")
	f.Add("approx_dram")
	f.Add("approx-dram@V0.8")
	f.Add(strings.Repeat("a", maxSpecLen+1))
	f.Add(strings.Repeat("@", maxSpecLen))
	f.Add("edram@" + strings.Repeat("v", 200))
	f.Add("no-such-backend@nominal")
	f.Fuzz(func(t *testing.T, spec string) {
		b, p, err := ParseSpec(spec)
		if err != nil {
			if b != nil || p.Name != "" {
				t.Fatalf("ParseSpec(%q) returned a backend alongside error %v", spec, err)
			}
			return
		}
		// Accepted specs must resolve onto registry reality.
		if b == nil {
			t.Fatalf("ParseSpec(%q): nil backend without error", spec)
		}
		if len(spec) > maxSpecLen {
			t.Fatalf("ParseSpec accepted %d-byte spec beyond the %d cap", len(spec), maxSpecLen)
		}
		reg, ok := Lookup(b.Name())
		if !ok || reg.Name() != b.Name() {
			t.Fatalf("ParseSpec(%q) returned unregistered backend %q", spec, b.Name())
		}
		got, ok := PointByName(b, p.Name)
		if !ok || got != p {
			t.Fatalf("ParseSpec(%q) returned point %q the backend does not list", spec, p.Name)
		}
		// The grammar is strict: the accepted spec must be exactly
		// "name" or "name@point" with no case folding or trimming.
		want := b.Name()
		if strings.ContainsRune(spec, '@') {
			want += "@" + p.Name
		}
		if spec != want {
			t.Fatalf("ParseSpec(%q) normalized silently to %q", spec, want)
		}
	})
}
