package mem

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The backend registry. Built-ins register at package init; exotic
// technologies (tests, future plugins) register at their own init time.
// The table is effectively write-once-at-startup, but a mutex keeps
// Register safe for late test registrations under -race.
var (
	regMu    sync.RWMutex
	registry = map[string]Backend{}
)

// maxSpecLen bounds ParseSpec inputs; backend and point names are short
// identifiers, so anything longer is hostile input, rejected before any
// lookup work.
const maxSpecLen = 128

// Register adds a backend to the registry. It panics on nil backends,
// invalid names, malformed point lists or duplicate registration —
// registration errors are programmer errors, caught at init.
func Register(b Backend) {
	if b == nil {
		panic("mem: Register(nil)")
	}
	name := b.Name()
	if err := validName(name); err != nil {
		panic(fmt.Sprintf("mem: backend name %q: %v", name, err))
	}
	pts := b.Points()
	if len(pts) == 0 {
		panic(fmt.Sprintf("mem: backend %q has no operating points", name))
	}
	if pts[0].Name != Nominal {
		panic(fmt.Sprintf("mem: backend %q: first point is %q, want %q", name, pts[0].Name, Nominal))
	}
	seen := make(map[string]bool, len(pts))
	for _, p := range pts {
		if err := validName(p.Name); err != nil {
			panic(fmt.Sprintf("mem: backend %q point %q: %v", name, p.Name, err))
		}
		if seen[p.Name] {
			panic(fmt.Sprintf("mem: backend %q: duplicate point %q", name, p.Name))
		}
		seen[p.Name] = true
		if p.AccessPJ < 0 || p.RefreshPJ < 0 || p.WearPJ < 0 || p.RetentionScale < 0 ||
			p.BitErrorRate < 0 || p.BitErrorRate > 1 {
			panic(fmt.Sprintf("mem: backend %q point %q: invalid parameters", name, p.Name))
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mem: backend %q registered twice", name))
	}
	registry[name] = b
}

// validName enforces the backend/point name grammar: non-empty,
// bounded, lower-case letters, digits, '.' and '-', starting with an
// alphanumeric. The grammar keeps names safe inside cache-key strings,
// memo signatures and URL query values without escaping.
func validName(s string) error {
	if s == "" {
		return fmt.Errorf("empty name")
	}
	if len(s) > 64 {
		return fmt.Errorf("name too long (%d bytes)", len(s))
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case (c == '-' || c == '.') && i > 0:
		default:
			return fmt.Errorf("invalid character %q at %d", c, i)
		}
	}
	return nil
}

// Lookup resolves a registered backend by name.
func Lookup(name string) (Backend, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	b, ok := registry[name]
	return b, ok
}

// Names lists the registered backends, sorted — the catalog order.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Buffers lists the registered buffer-role backends, sorted by name —
// the set the scheduler's backend option ranges over.
func Buffers() []Backend {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Backend, 0, len(registry))
	for _, b := range registry {
		if b.Role() == RoleBuffer {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// ParseSpec parses a "backend" or "backend@point" spec onto a
// registered backend and one of its operating points. A bare backend
// name selects its nominal point. The grammar is strict — no
// whitespace, no case folding, no empty components, at most one '@' —
// because specs arrive from CLI flags and untrusted HTTP requests.
func ParseSpec(spec string) (Backend, OperatingPoint, error) {
	if spec == "" {
		return nil, OperatingPoint{}, fmt.Errorf("mem: empty backend spec")
	}
	if len(spec) > maxSpecLen {
		return nil, OperatingPoint{}, fmt.Errorf("mem: backend spec too long (%d bytes)", len(spec))
	}
	name, point := spec, ""
	if i := strings.IndexByte(spec, '@'); i >= 0 {
		name, point = spec[:i], spec[i+1:]
		if point == "" {
			return nil, OperatingPoint{}, fmt.Errorf("mem: spec %q has empty operating point", spec)
		}
		if strings.IndexByte(point, '@') >= 0 {
			return nil, OperatingPoint{}, fmt.Errorf("mem: spec %q has multiple '@'", spec)
		}
	}
	if err := validName(name); err != nil {
		return nil, OperatingPoint{}, fmt.Errorf("mem: backend %q: %v", name, err)
	}
	if point != "" {
		if err := validName(point); err != nil {
			return nil, OperatingPoint{}, fmt.Errorf("mem: operating point %q: %v", point, err)
		}
	}
	b, ok := Lookup(name)
	if !ok {
		return nil, OperatingPoint{}, fmt.Errorf("mem: unknown backend %q (have %s)", name, strings.Join(Names(), ", "))
	}
	p, ok := PointByName(b, point)
	if !ok {
		return nil, OperatingPoint{}, fmt.Errorf("mem: backend %q has no operating point %q", name, point)
	}
	return b, p, nil
}
