package mem

// The built-in backends. "sram", "edram" and "ddr3" adapt the existing
// functional models with the exact Table II/III constants at one
// nominal operating point — the refactor-without-behavior-change half
// of the subsystem. "approx-dram" and "reram" are the new scenario
// axes: EDEN-style reduced-voltage DRAM points and a Hamun-style
// wear-charged non-volatile technology.

import (
	"fmt"

	"rana/internal/edram"
	"rana/internal/energy"
	"rana/internal/retention"
	"rana/internal/sram"
)

func init() {
	Register(sramBackend{})
	Register(edramBackend{name: "edram", desc: "embedded DRAM, Table II/III constants, refresh-optimized (paper default)",
		points: []OperatingPoint{edramNominal}})
	Register(edramBackend{name: "approx-dram", desc: "EDEN-style approximate DRAM: reduced-voltage operating points trade access/refresh energy against retention and bit errors",
		points: approxPoints})
	Register(reramBackend{})
	Register(ddr3Backend{})
}

// edramNominal is the paper's eDRAM corner — exactly the BufferTech
// constants, so pricing through it is bit-identical to energy.System.
var edramNominal = OperatingPoint{
	Name:           Nominal,
	AccessPJ:       energy.EDRAMAccessPJ,
	RefreshPJ:      energy.EDRAMRefreshPJ,
	RetentionScale: 1,
	LatencyNS:      energy.EDRAMLatencyNS,
}

// approxPoints are EDEN-style voltage steps (EDEN, MICRO 2019): dynamic
// access and refresh energy scale with VDD² while cells leak from a
// lower charge, shrinking retention and raising the raw bit-error rate.
// The factors are the first-order CMOS scaling model, not measurements;
// what matters architecturally is the shape of the trade — each step is
// strictly cheaper per access but refreshes more often, so the argmin
// genuinely depends on a layer's lifetime profile — and that the
// bit-error rate gates which steps a network's resilience admits.
var approxPoints = []OperatingPoint{
	edramNominal,
	{
		// 0.9×VDD: energy ×0.81, retention roughly halves.
		Name:           "v0.9",
		AccessPJ:       energy.EDRAMAccessPJ * 0.81,
		RefreshPJ:      energy.EDRAMRefreshPJ * 0.81,
		RetentionScale: 0.5,
		BitErrorRate:   1e-7,
		LatencyNS:      energy.EDRAMLatencyNS,
	},
	{
		// 0.8×VDD: energy ×0.64, retention ×0.25; the error rate sits
		// at the paper's tolerable 10⁻⁵, so the default budget admits
		// it only at the boundary.
		Name:           "v0.8",
		AccessPJ:       energy.EDRAMAccessPJ * 0.64,
		RefreshPJ:      energy.EDRAMRefreshPJ * 0.64,
		RetentionScale: 0.25,
		BitErrorRate:   1e-5,
		LatencyNS:      energy.EDRAMLatencyNS,
	},
	{
		// 0.7×VDD: energy ×0.49, retention ×0.1. The raw error rate is
		// past what the paper's retention-aware training tolerates, so
		// the default error budget excludes this point — selecting it
		// requires an explicitly raised budget (a network retrained on
		// a more aggressive resilience curve).
		Name:           "v0.7",
		AccessPJ:       energy.EDRAMAccessPJ * 0.49,
		RefreshPJ:      energy.EDRAMRefreshPJ * 0.49,
		RetentionScale: 0.1,
		BitErrorRate:   2e-4,
		LatencyNS:      energy.EDRAMLatencyNS,
	},
}

// edramBackend adapts internal/edram + internal/retention: both the
// default "edram" backend (one nominal point) and "approx-dram" (the
// EDEN point ladder) — same physics, different point enumeration.
type edramBackend struct {
	name   string
	desc   string
	points []OperatingPoint
}

func (b edramBackend) Name() string             { return b.name }
func (b edramBackend) Description() string      { return b.desc }
func (b edramBackend) Role() Role               { return RoleBuffer }
func (b edramBackend) Refreshes() bool          { return true }
func (b edramBackend) Points() []OperatingPoint { return b.points }
func (b edramBackend) BankAreaMM2() float64     { return energy.EDRAMBankAreaMM2 }

func (b edramBackend) Retention(p OperatingPoint) (*retention.Distribution, error) {
	d := retention.Typical()
	if p.RetentionScale == 1 {
		return d, nil
	}
	return d.Scaled(p.RetentionScale)
}

func (b edramBackend) NewBuffer(banks, wordsPerBank int, seed uint64, p OperatingPoint) (Buffer, error) {
	d, err := b.Retention(p)
	if err != nil {
		return nil, err
	}
	return edram.New(banks, wordsPerBank, d, seed)
}

// sramBackend adapts internal/sram — the S+ID baseline technology.
type sramBackend struct{}

func (sramBackend) Name() string        { return "sram" }
func (sramBackend) Description() string { return "latch-based SRAM, never refreshes, Table II/III constants" }
func (sramBackend) Role() Role          { return RoleBuffer }
func (sramBackend) Refreshes() bool     { return false }
func (sramBackend) Points() []OperatingPoint {
	return []OperatingPoint{{
		Name:           Nominal,
		AccessPJ:       energy.SRAMAccessPJ,
		RetentionScale: 1,
		LatencyNS:      energy.SRAMLatencyNS,
	}}
}
func (sramBackend) BankAreaMM2() float64 { return energy.SRAMBankAreaMM2 }
func (sramBackend) Retention(OperatingPoint) (*retention.Distribution, error) {
	return nil, nil
}
func (sramBackend) NewBuffer(banks, wordsPerBank int, _ uint64, _ OperatingPoint) (Buffer, error) {
	return sram.New(banks, wordsPerBank)
}

// reramBackend is a Hamun-style non-volatile resistive technology: no
// refresh at all (retention is effectively unbounded), cheap reads, but
// every write ages the cell — so the energy model charges an amortized
// wear cost per buffer write, steering the search away from
// write-heavy schedules (OD's read-modify-write accumulation) in a way
// the paper's technologies never did. The numbers are representative
// 65 nm ReRAM figures (reads a little cheaper than eDRAM, wear of the
// same order as the access itself), chosen so wear genuinely moves the
// argmin rather than vanishing in the noise.
type reramBackend struct{}

// reramPoints: nominal uses conservative write verification (higher
// amortized wear); "fast-write" relaxes verification per Hamun —
// roughly 2.5× less ageing charge at a small raw error rate.
var reramPoints = []OperatingPoint{
	{
		Name:           Nominal,
		AccessPJ:       7.6,
		WearPJ:         23.0,
		RetentionScale: 1,
		LatencyNS:      4.8,
	},
	{
		Name:           "fast-write",
		AccessPJ:       7.6,
		WearPJ:         9.2,
		RetentionScale: 1,
		BitErrorRate:   1e-6,
		LatencyNS:      3.1,
	},
}

func (reramBackend) Name() string { return "reram" }
func (reramBackend) Description() string {
	return "Hamun-style non-volatile ReRAM: refresh-free, ageing cost charged per buffer write"
}
func (reramBackend) Role() Role               { return RoleBuffer }
func (reramBackend) Refreshes() bool          { return false }
func (reramBackend) Points() []OperatingPoint { return reramPoints }
func (reramBackend) BankAreaMM2() float64     { return 0.021 }
func (reramBackend) Retention(OperatingPoint) (*retention.Distribution, error) {
	return nil, nil
}

// NewBuffer: non-volatile storage never decays, so the functional model
// is the SRAM buffer (wear affects lifetime economics, not stored
// values at simulation timescales).
func (reramBackend) NewBuffer(banks, wordsPerBank int, _ uint64, _ OperatingPoint) (Buffer, error) {
	return sram.New(banks, wordsPerBank)
}

// ddr3Backend adapts internal/ddr: the off-chip store. It participates
// in the registry and catalog (the full hierarchy is backend-shaped)
// but carries RoleOffChip — it cannot be selected as the on-chip
// buffer, and its refresh is the DIMM controller's business, invisible
// at the paper's energy granularity.
type ddr3Backend struct{}

func (ddr3Backend) Name() string        { return "ddr3" }
func (ddr3Backend) Description() string { return "off-chip DDR3, 2112.9 pJ per 16-bit access (Table III)" }
func (ddr3Backend) Role() Role          { return RoleOffChip }
func (ddr3Backend) Refreshes() bool     { return false }
func (ddr3Backend) Points() []OperatingPoint {
	return []OperatingPoint{{
		Name:           Nominal,
		AccessPJ:       energy.DDRAccessPJ,
		RetentionScale: 1,
	}}
}
func (ddr3Backend) BankAreaMM2() float64 { return 0 }
func (ddr3Backend) Retention(OperatingPoint) (*retention.Distribution, error) {
	return nil, nil
}
func (ddr3Backend) NewBuffer(int, int, uint64, OperatingPoint) (Buffer, error) {
	return nil, fmt.Errorf("mem: ddr3 is an off-chip backend, not a buffer")
}
