package training

import (
	"errors"
	"math"
	"testing"
	"time"

	"rana/internal/retention"
)

// fastConfig keeps unit-test training runs under a few seconds.
func fastConfig() Config {
	cfg := DefaultConfig()
	cfg.Epochs = 4
	return cfg
}

// sharedMethod pretrains once for all tests in this package.
var sharedMethod = NewMethod(fastConfig(), 240)

func TestPretrainReachesHighAccuracy(t *testing.T) {
	if sharedMethod.Baseline() < 0.92 {
		t.Fatalf("fixed-point pretrain accuracy = %.3f, want ≥0.92", sharedMethod.Baseline())
	}
}

func TestNoAccuracyLossAtTolerableRate(t *testing.T) {
	// §IV-B / Fig. 11: at the 10⁻⁵ failure rate there is no accuracy
	// loss — this is what makes the 734 µs retention time tolerable.
	r := sharedMethod.Run(retention.TolerableFailureRate)
	if r.RelativeAccuracy() < 0.95 {
		t.Errorf("relative accuracy at 1e-5 = %.3f, want ≈1", r.RelativeAccuracy())
	}
}

func TestRetrainingImprovesTolerance(t *testing.T) {
	// The core mechanism of Fig. 9: at a damaging failure rate, the
	// retrained model outperforms the pretrained model under the same
	// failures.
	r := sharedMethod.Run(3e-4)
	if r.Retrained <= r.Corrupted {
		t.Errorf("retraining did not help: corrupted %.3f, retrained %.3f",
			r.Corrupted, r.Retrained)
	}
}

func TestAccuracyDegradesWithRate(t *testing.T) {
	// Fig. 11 monotone trend on the pretrained model: more failures,
	// lower accuracy (compare well-separated rates to dodge noise).
	cfg := fastConfig()
	low := Accuracy(sharedMethod.pretrained, sharedMethod.test, cfg, 1e-5)
	high := Accuracy(sharedMethod.pretrained, sharedMethod.test, cfg, 1e-1)
	if high >= low {
		t.Errorf("accuracy at 1e-1 (%.3f) should be below 1e-5 (%.3f)", high, low)
	}
}

func TestToleranceSearch(t *testing.T) {
	dist := retention.Typical()
	rate, rt, results, err := sharedMethod.ToleranceSearch(0.9, []float64{1e-5, 1e-1}, dist)
	if err != nil {
		t.Fatalf("ToleranceSearch: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// 1e-5 passes the 90% constraint, 1e-1 does not.
	if rate != 1e-5 {
		t.Errorf("tolerable rate = %g, want 1e-5", rate)
	}
	if rt != retention.TolerableRetentionTime {
		t.Errorf("tolerable retention = %v, want %v", rt, retention.TolerableRetentionTime)
	}
	// Impossible constraint falls back to the conventional point.
	rate, rt, _, err = sharedMethod.ToleranceSearch(1.0, []float64{1e-1}, dist)
	if err != nil {
		t.Fatalf("ToleranceSearch fallback: %v", err)
	}
	if rate != retention.TypicalFailureRate || rt != retention.TypicalRetentionTime {
		t.Errorf("fallback = %g/%v", rate, rt)
	}
}

func TestToleranceSearchRejectsBadInputs(t *testing.T) {
	dist := retention.Typical()
	for _, tc := range []struct {
		name       string
		constraint float64
		ladder     []float64
	}{
		{"zero constraint", 0, PaperRates},
		{"negative constraint", -0.5, PaperRates},
		{"constraint above one", 1.5, PaperRates},
		{"nan constraint", math.NaN(), PaperRates},
		{"empty ladder", 0.9, nil},
		{"descending ladder", 0.9, []float64{1e-1, 1e-5}},
		{"duplicate rung", 0.9, []float64{1e-5, 1e-5}},
		{"zero rate", 0.9, []float64{0, 1e-5}},
		{"rate above one", 0.9, []float64{1e-5, 2}},
		{"nan rate", 0.9, []float64{1e-5, math.NaN()}},
	} {
		_, _, _, err := sharedMethod.ToleranceSearch(tc.constraint, tc.ladder, dist)
		var lerr *LadderError
		if !errors.As(err, &lerr) {
			t.Errorf("%s: err = %v, want *LadderError", tc.name, err)
		}
	}
}

func TestCalibratedCurvesMatchFig11Shape(t *testing.T) {
	for _, m := range ResilienceModels() {
		// No accuracy loss at 10⁻⁵ for all four benchmarks.
		rel, err := RelativeAccuracy(m, 1e-5)
		if err != nil {
			t.Fatal(err)
		}
		if rel < 0.995 {
			t.Errorf("%s at 1e-5: %.4f, want ≥0.995", m, rel)
		}
		// Gradual decline from 10⁻⁴.
		r4, _ := RelativeAccuracy(m, 1e-4)
		r1, _ := RelativeAccuracy(m, 1e-1)
		if !(r4 < rel && r1 < r4) {
			t.Errorf("%s not declining: %.3f %.3f %.3f", m, rel, r4, r1)
		}
		if r1 > 0.8 {
			t.Errorf("%s at 1e-1 should show substantial loss, got %.3f", m, r1)
		}
	}
	// Deeper networks are modeled as more sensitive.
	a, _ := RelativeAccuracy("AlexNet", 1e-2)
	r, _ := RelativeAccuracy("ResNet", 1e-2)
	if a <= r {
		t.Errorf("AlexNet (%.3f) should tolerate 1e-2 better than ResNet (%.3f)", a, r)
	}
}

func TestRelativeAccuracyEdgeCases(t *testing.T) {
	if _, err := RelativeAccuracy("nope", 1e-3); err == nil {
		t.Error("unknown model should error")
	}
	rel, err := RelativeAccuracy("VGG", 0)
	if err != nil || rel != 1 {
		t.Errorf("zero rate = %g, %v", rel, err)
	}
}

func TestTolerableRate(t *testing.T) {
	// With the paper's ladder and a tight constraint, Stage 1 lands on
	// 10⁻⁵ — which buys the 734 µs interval.
	rate, err := TolerableRate(0.995, PaperRates)
	if err != nil {
		t.Fatalf("TolerableRate: %v", err)
	}
	if rate != 1e-5 {
		t.Errorf("tolerable rate = %g, want 1e-5", rate)
	}
	if rt := retention.Typical().RetentionTime(rate); rt != retention.TolerableRetentionTime {
		t.Errorf("retention time = %v", rt)
	}
	// A loose constraint admits a higher rate.
	if loose, err := TolerableRate(0.5, PaperRates); err != nil || loose <= 1e-5 {
		t.Errorf("loose constraint rate = %g, %v", loose, err)
	}
	// Unsatisfiable: falls back to the conventional point.
	if fb, err := TolerableRate(1.0, []float64{1e-1}); err != nil || fb != retention.TypicalFailureRate {
		t.Errorf("fallback = %g, %v", fb, err)
	}
}

func TestTolerableRateRejectsBadInputs(t *testing.T) {
	for _, tc := range []struct {
		name       string
		constraint float64
		ladder     []float64
	}{
		{"empty ladder", 0.995, nil},
		{"unsorted ladder", 0.995, []float64{1e-3, 1e-5}},
		{"constraint out of range", 2, PaperRates},
		{"rate out of range", 0.995, []float64{-1e-5, 1e-4}},
	} {
		rate, err := TolerableRate(tc.constraint, tc.ladder)
		var lerr *LadderError
		if !errors.As(err, &lerr) {
			t.Errorf("%s: err = %v, want *LadderError", tc.name, err)
		}
		if rate != 0 {
			t.Errorf("%s: rate = %g on error, want 0", tc.name, rate)
		}
		if err != nil && err.Error() == "" {
			t.Errorf("%s: empty error message", tc.name)
		}
	}
}

func TestResultRelativeAccuracy(t *testing.T) {
	r := Result{Baseline: 0.8, Retrained: 0.72}
	if math.Abs(r.RelativeAccuracy()-0.9) > 1e-12 {
		t.Errorf("rel = %g", r.RelativeAccuracy())
	}
	if (Result{}).RelativeAccuracy() != 0 {
		t.Error("zero baseline should yield 0")
	}
}

func TestTrainIsDeterministic(t *testing.T) {
	cfg := fastConfig()
	cfg.Epochs = 1
	a := NewMethod(cfg, 120)
	b := NewMethod(cfg, 120)
	if a.Baseline() != b.Baseline() {
		t.Errorf("pretraining not deterministic: %.4f vs %.4f", a.Baseline(), b.Baseline())
	}
	ra, rb := a.Run(1e-3), b.Run(1e-3)
	if ra.Retrained != rb.Retrained {
		t.Errorf("retraining not deterministic: %.4f vs %.4f", ra.Retrained, rb.Retrained)
	}
}

func TestPaperRatesLadder(t *testing.T) {
	if len(PaperRates) != 5 || PaperRates[0] != 1e-5 || PaperRates[4] != 1e-1 {
		t.Errorf("PaperRates = %v", PaperRates)
	}
}

var _ = time.Microsecond // keep time import if anchors change
