package training

import (
	"math"

	"rana/internal/bits"
	"rana/internal/dataset"
	"rana/internal/nn"
	"rana/internal/retention"
)

// This file holds the per-layer view of Stage 1: instead of one scalar
// tolerable failure rate for a whole model, each layer gets its own
// resilience curve, so the scheduler can admit memory operating points
// layer by layer (early feature extractors tolerate more noise than the
// classifier head — the EDEN observation). Two reproductions again:
// calibrated curves for the ImageNet benchmarks, and an empirical
// per-layer sweep of the demo CNN via nn.FaultPlan.

// Curve is a logistic resilience curve in u = log10(rate):
// relative accuracy = 1/(1+exp(K·(u−U0))). Larger U0 tolerates more.
type Curve struct {
	U0, K float64
}

// RelativeAccuracy evaluates the curve at a failure rate.
func (c Curve) RelativeAccuracy(rate float64) float64 {
	if rate <= 0 {
		return 1
	}
	u := math.Log10(rate)
	return 1 / (1 + math.Exp(c.K*(u-c.U0)))
}

// layerDepthShift is the tolerance spread between a model's first and
// middle layer (and, negated, middle to last) on the log10(rate) axis:
// the first layer's curve midpoint sits 0.3 decades above the model
// curve, the last 0.3 below, interpolated linearly in depth.
const layerDepthShift = 0.3

// fallbackModel is the curve used for networks without a calibrated
// entry: the most sensitive benchmark, so admission never over-promises
// on an unknown model.
const fallbackModel = "ResNet"

// ModelCurve returns the calibrated whole-model curve, falling back to
// the most sensitive benchmark for unknown models.
func ModelCurve(model string) Curve {
	p, ok := resilienceParams[model]
	if !ok {
		p = resilienceParams[fallbackModel]
	}
	return Curve{U0: p.u0, K: p.k}
}

// LayerCurve returns the calibrated resilience curve of layer index (0
// ≤ index < depth) in a depth-layer model: the model curve with its
// midpoint shifted by +layerDepthShift·(1 − 2·index/(depth−1)) decades,
// so early layers tolerate more and the head less. A single-layer model
// uses the model curve unshifted, as do out-of-range indices.
func LayerCurve(model string, index, depth int) Curve {
	c := ModelCurve(model)
	if depth <= 1 || index < 0 || index >= depth {
		return c
	}
	c.U0 += layerDepthShift * (1 - 2*float64(index)/float64(depth-1))
	return c
}

// LayerRelativeAccuracy is the calibrated Fig. 11-style relative
// accuracy of one layer position at a failure rate.
func LayerRelativeAccuracy(model string, index, depth int, rate float64) float64 {
	return LayerCurve(model, index, depth).RelativeAccuracy(rate)
}

// LayerTolerableRates runs the per-layer Stage 1 decision: for each
// layer, the highest ladder rate whose calibrated layer curve meets the
// constraint, with the conventional weakest-cell rate as the fallback
// when none qualifies. An invalid constraint or ladder yields a
// *LadderError. Unknown models use the most sensitive benchmark curve.
func LayerTolerableRates(model string, layers []string, relConstraint float64, ladder []float64) (map[string]float64, error) {
	if err := checkSearch(relConstraint, ladder); err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(layers))
	for i, name := range layers {
		c := LayerCurve(model, i, len(layers))
		best := 0.0
		for _, rate := range ladder {
			if c.RelativeAccuracy(rate) >= relConstraint && rate > best {
				best = rate
			}
		}
		if best == 0 {
			best = retention.TypicalFailureRate
		}
		out[name] = best
	}
	return out, nil
}

// AccuracyPlan evaluates top-1 accuracy under per-layer failure rates:
// every parameterized layer runs the fixed-point datapath, and layers
// named in rates with a positive rate also inject bit-level failures.
// Each sample draws independent error patterns; the injector seeds
// derive from cfg.Seed in layer order, so the run is deterministic.
func AccuracyPlan(net *nn.Network, samples []dataset.Sample, cfg Config, rates map[string]float64) float64 {
	rng := bits.NewSplitMix64(cfg.Seed ^ 0x6163_6375)
	correct := 0
	for _, s := range samples {
		plan := nn.FaultPlan{}
		for _, l := range net.Layers {
			if len(l.Params()) == 0 {
				continue
			}
			fm := &nn.FaultModel{Format: cfg.Format, Quantize: true}
			if r := rates[l.Name()]; r > 0 {
				fm.Injector = bits.NewInjector(r, rng.Uint64())
			}
			plan[l.Name()] = fm
		}
		if net.PredictPlan(s.Image, plan) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// AccuracyPlanAvg averages AccuracyPlan over independent error-pattern
// trials, mirroring AccuracyAvg.
func AccuracyPlanAvg(net *nn.Network, samples []dataset.Sample, cfg Config, rates map[string]float64, trials int) float64 {
	if trials <= 1 {
		return AccuracyPlan(net, samples, cfg, rates)
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(t)*0x9e37
		sum += AccuracyPlan(net, samples, c, rates)
	}
	return sum / float64(trials)
}

// EvaluatePretrained returns the pretrained (not retrained) model's
// test accuracy under a uniform failure rate, averaged over trials —
// the cheap empirical probe the fault-differential oracle uses: rates
// the admission path accepts are far below what even the unadapted
// model tolerates, so no per-rate retraining is needed.
func (m *Method) EvaluatePretrained(rate float64, trials int) float64 {
	return AccuracyAvg(m.pretrained, m.test, m.cfg, rate, trials)
}

// LayerPoint is one empirical sample of a layer's resilience curve:
// accuracy with failures injected into that layer alone.
type LayerPoint struct {
	Rate     float64
	Accuracy float64
	// Relative is Accuracy over the clean fixed-point baseline.
	Relative float64
}

// LayerResilience sweeps the ladder per parameterized layer of the
// pretrained demo model, injecting failures into one layer at a time —
// the empirical counterpart of the calibrated layer curves. An invalid
// ladder yields a *LadderError.
func (m *Method) LayerResilience(ladder []float64, trials int) (map[string][]LayerPoint, error) {
	if err := CheckLadder(ladder); err != nil {
		return nil, err
	}
	out := map[string][]LayerPoint{}
	for _, l := range m.pretrained.Layers {
		if len(l.Params()) == 0 {
			continue
		}
		name := l.Name()
		pts := make([]LayerPoint, 0, len(ladder))
		for _, rate := range ladder {
			acc := AccuracyPlanAvg(m.pretrained, m.test, m.cfg, map[string]float64{name: rate}, trials)
			rel := 0.0
			if m.baseline > 0 {
				rel = acc / m.baseline
			}
			pts = append(pts, LayerPoint{Rate: rate, Accuracy: acc, Relative: rel})
		}
		out[name] = pts
	}
	return out, nil
}
