// Package training implements Stage 1 of the RANA framework: the
// retention-aware training method of Fig. 9.
//
// The method takes a fixed-point CNN, injects bit-level retention
// failures into every layer's inputs and weights during forward
// propagation, and retrains so the weights adjust to the failures. Under
// a given accuracy constraint it finds the highest tolerable failure
// rate, which the retention distribution (Fig. 8) converts into the
// tolerable retention time used by Stages 2 and 3.
//
// Two complementary reproductions live here (DESIGN.md §2):
//
//   - An end-to-end empirical run of the method on a small Go-trained CNN
//     over the synthetic dataset — the actual mechanism, executed.
//   - Calibrated resilience curves reproducing the Fig. 11 accuracy-vs-
//     failure-rate series for the four ImageNet benchmarks, whose
//     training data and framework are out of scope.
package training

import (
	"fmt"
	"math"
	"time"

	"rana/internal/bits"
	"rana/internal/dataset"
	"rana/internal/fixed"
	"rana/internal/nn"
	"rana/internal/retention"
)

// Config controls the SGD runs.
type Config struct {
	Epochs   int
	LR       float64
	Momentum float64
	// Format is the deployment fixed-point grid.
	Format fixed.Format
	// Seed drives weight init and error injection.
	Seed uint64
}

// DefaultConfig returns settings that train the demo CNN to high accuracy
// on the synthetic dataset in a few seconds.
func DefaultConfig() Config {
	return Config{Epochs: 6, LR: 0.01, Momentum: 0.9, Format: fixed.Q88, Seed: 1}
}

// BuildModel returns the demonstration CNN: two conv+pool stages and a
// classifier head sized for the synthetic dataset.
func BuildModel(seed uint64) *nn.Network {
	rng := bits.NewSplitMix64(seed)
	s := dataset.Size / 4 // after two 2× pools
	return &nn.Network{Layers: []nn.Layer{
		nn.NewConv2D("conv1", 1, 8, 3, 1, 1, rng),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", 2),
		nn.NewConv2D("conv2", 8, 16, 3, 1, 1, rng),
		nn.NewReLU("relu2"),
		nn.NewMaxPool2D("pool2", 2),
		nn.NewDense("fc", 16*s*s, dataset.NumClasses, rng),
	}}
}

// Train runs plain SGD with the given fault model applied in forward
// passes (nil for float training, quantize-only for fixed-point
// pretraining, injecting for retention-aware retraining). When injecting,
// a fresh error pattern is drawn every iteration, as the method requires
// ("during each iteration in the training, bit-level errors are randomly
// injected").
func Train(net *nn.Network, train []dataset.Sample, cfg Config, rate float64) {
	rng := bits.NewSplitMix64(cfg.Seed ^ 0x7261_6e61)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		lr := cfg.LR / (1 + 0.5*float64(epoch))
		// Shuffle: the generator emits label-ordered samples, and
		// momentum SGD collapses on strictly alternating labels.
		for _, j := range permutation(len(train), rng) {
			s := train[j]
			fault := &nn.FaultModel{Format: cfg.Format, Quantize: true}
			if rate > 0 {
				fault.Injector = bits.NewInjector(rate, rng.Uint64())
			}
			net.ZeroGrad()
			logits := net.Forward(s.Image, fault)
			_, grad := nn.SoftmaxCrossEntropy(logits, s.Label)
			net.Backward(grad)
			net.ClipGrad(5)
			net.Step(lr, cfg.Momentum)
		}
	}
}

// Accuracy evaluates top-1 accuracy under a failure rate (0 = clean
// fixed-point). Each sample sees an independent error pattern.
func Accuracy(net *nn.Network, samples []dataset.Sample, cfg Config, rate float64) float64 {
	rng := bits.NewSplitMix64(cfg.Seed ^ 0x6163_6375)
	correct := 0
	for _, s := range samples {
		fault := &nn.FaultModel{Format: cfg.Format, Quantize: true}
		if rate > 0 {
			fault.Injector = bits.NewInjector(rate, rng.Uint64())
		}
		if net.Predict(s.Image, fault) == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// AccuracyAvg averages Accuracy over independent error-pattern trials —
// retention failures are stochastic, so single-trial accuracy at small
// test sizes is noisy.
func AccuracyAvg(net *nn.Network, samples []dataset.Sample, cfg Config, rate float64, trials int) float64 {
	if trials <= 1 {
		return Accuracy(net, samples, cfg, rate)
	}
	sum := 0.0
	for t := 0; t < trials; t++ {
		c := cfg
		c.Seed = cfg.Seed + uint64(t)*0x9e37
		sum += Accuracy(net, samples, c, rate)
	}
	return sum / float64(trials)
}

// Result is the outcome of one end-to-end run of the retention-aware
// training method at one failure rate.
type Result struct {
	Rate float64
	// Baseline is clean fixed-point accuracy after pretraining.
	Baseline float64
	// Corrupted is the pretrained model's accuracy under failures,
	// before retention-aware retraining.
	Corrupted float64
	// Retrained is the accuracy under failures after retraining with
	// error injection — the number the tolerable-rate decision uses.
	Retrained float64
}

// RelativeAccuracy returns Retrained/Baseline — the Fig. 11 y-axis.
func (r Result) RelativeAccuracy() float64 {
	if r.Baseline == 0 {
		return 0
	}
	return r.Retrained / r.Baseline
}

// Method is the retention-aware training method bound to a dataset and a
// pretrained fixed-point model (Fig. 9's pipeline).
type Method struct {
	cfg         Config
	train, test []dataset.Sample
	baseline    float64
	pretrained  *nn.Network
}

// NewMethod pretrains the fixed-point model ("Fixed-Point Pretrain" stage
// of Fig. 9) and returns the bound method.
func NewMethod(cfg Config, nSamples int) *Method {
	samples := dataset.Generate(nSamples, cfg.Seed)
	tr, te := dataset.Split(samples, 0.8)
	net := BuildModel(cfg.Seed)
	Train(net, tr, cfg, 0)
	return &Method{
		cfg:        cfg,
		train:      tr,
		test:       te,
		pretrained: net,
		baseline:   Accuracy(net, te, cfg, 0),
	}
}

// Baseline returns the clean fixed-point test accuracy.
func (m *Method) Baseline() float64 { return m.baseline }

// Run executes the retrain-and-evaluate pipeline at one failure rate.
// Retraining starts from the pretrained weights ("Retrain" + "Weight
// Adjustment" stages of Fig. 9).
func (m *Method) Run(rate float64) Result {
	const trials = 5
	res := Result{
		Rate:      rate,
		Baseline:  m.baseline,
		Corrupted: AccuracyAvg(m.pretrained, m.test, m.cfg, rate, trials),
	}
	net := m.clonePretrained()
	// Longer, gentler retraining than pretraining: the weights must
	// adjust to the injected failures without forgetting the task.
	retrainCfg := m.cfg
	retrainCfg.Epochs = max(6, m.cfg.Epochs+m.cfg.Epochs/2)
	retrainCfg.LR = m.cfg.LR / 2
	Train(net, m.train, retrainCfg, rate)
	res.Retrained = AccuracyAvg(net, m.test, m.cfg, rate, trials)
	return res
}

// LadderError reports an unusable tolerance-search input: an empty or
// unsorted failure-rate ladder, a rate outside (0, 1], or a relative
// accuracy constraint outside (0, 1]. Callers that used to get a silent
// rate-0 fallback (or a panic) now see the reason.
type LadderError struct {
	Reason string
}

// Error implements error.
func (e *LadderError) Error() string { return "training: " + e.Reason }

// CheckLadder validates a failure-rate ladder: non-empty, every rate in
// (0, 1], strictly ascending. Returns a *LadderError describing the
// first violation.
func CheckLadder(ladder []float64) error {
	if len(ladder) == 0 {
		return &LadderError{Reason: "empty failure-rate ladder"}
	}
	for i, r := range ladder {
		if math.IsNaN(r) || r <= 0 || r > 1 {
			return &LadderError{Reason: fmt.Sprintf("ladder rate %g at index %d outside (0, 1]", r, i)}
		}
		if i > 0 && r <= ladder[i-1] {
			return &LadderError{Reason: fmt.Sprintf("ladder not strictly ascending: rate %g at index %d after %g", r, i, ladder[i-1])}
		}
	}
	return nil
}

// checkSearch validates the (constraint, ladder) pair shared by the
// tolerance searches.
func checkSearch(relConstraint float64, ladder []float64) error {
	if math.IsNaN(relConstraint) || relConstraint <= 0 || relConstraint > 1 {
		return &LadderError{Reason: fmt.Sprintf("relative accuracy constraint %g outside (0, 1]", relConstraint)}
	}
	return CheckLadder(ladder)
}

// ToleranceSearch runs the method over the failure-rate ladder and
// returns the highest rate whose relative accuracy meets the constraint,
// together with the tolerable retention time it buys under dist.
// The ladder is scanned from highest to lowest; if none qualifies, the
// conventional weakest-cell point is returned. An invalid constraint or
// ladder yields a *LadderError.
func (m *Method) ToleranceSearch(relConstraint float64, ladder []float64, dist *retention.Distribution) (float64, time.Duration, []Result, error) {
	if err := checkSearch(relConstraint, ladder); err != nil {
		return 0, 0, nil, err
	}
	var results []Result
	bestRate := 0.0
	for _, rate := range ladder {
		r := m.Run(rate)
		results = append(results, r)
		if r.RelativeAccuracy() >= relConstraint && rate > bestRate {
			bestRate = rate
		}
	}
	if bestRate == 0 {
		return retention.TypicalFailureRate, retention.TypicalRetentionTime, results, nil
	}
	return bestRate, dist.RetentionTime(bestRate), results, nil
}

// clonePretrained deep-copies the pretrained network.
func (m *Method) clonePretrained() *nn.Network {
	clone := BuildModel(m.cfg.Seed)
	src, dst := m.pretrained.Params(), clone.Params()
	for i := range src {
		copy(dst[i].W.Data, src[i].W.Data)
	}
	return clone
}

// permutation returns a Fisher-Yates shuffle of [0, n).
func permutation(n int, rng *bits.SplitMix64) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// --- Fig. 11 calibrated resilience curves ---

// PaperRates is the failure-rate ladder of §IV-B: 10⁻⁵ … 10⁻¹.
var PaperRates = []float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// resilienceParams are per-model logistic parameters in u = log10(rate):
// relative accuracy = 1/(1+exp(k·(u−u0))). Calibrated to the described
// Fig. 11 shape — no loss at 10⁻⁵ for all four benchmarks, gradual
// decline from 10⁻⁴, deeper networks more sensitive (DESIGN.md §4).
var resilienceParams = map[string]struct{ u0, k float64 }{
	"AlexNet":   {-0.8, 1.6},
	"VGG":       {-1.1, 1.7},
	"GoogLeNet": {-1.4, 1.8},
	"ResNet":    {-1.6, 1.9},
}

// ResilienceModels lists the benchmark names with calibrated curves.
func ResilienceModels() []string {
	return []string{"AlexNet", "VGG", "GoogLeNet", "ResNet"}
}

// RelativeAccuracy returns the calibrated Fig. 11 relative top-1 accuracy
// of a benchmark model retrained at the given retention failure rate.
func RelativeAccuracy(model string, rate float64) (float64, error) {
	p, ok := resilienceParams[model]
	if !ok {
		return 0, fmt.Errorf("training: no resilience curve for model %q", model)
	}
	if rate <= 0 {
		return 1, nil
	}
	u := math.Log10(rate)
	return 1 / (1 + math.Exp(p.k*(u-p.u0))), nil
}

// TolerableRate returns the highest ladder rate at which every benchmark
// model keeps relative accuracy ≥ relConstraint — the cross-model Stage 1
// decision that fixes the fleet-wide refresh interval. An invalid
// constraint or ladder yields a *LadderError; if no ladder rate
// qualifies, the conventional weakest-cell rate is returned.
func TolerableRate(relConstraint float64, ladder []float64) (float64, error) {
	if err := checkSearch(relConstraint, ladder); err != nil {
		return 0, err
	}
	best := 0.0
	for _, rate := range ladder {
		ok := true
		for _, m := range ResilienceModels() {
			rel, err := RelativeAccuracy(m, rate)
			if err != nil || rel < relConstraint {
				ok = false
				break
			}
		}
		if ok && rate > best {
			best = rate
		}
	}
	if best == 0 {
		return retention.TypicalFailureRate, nil
	}
	return best, nil
}
