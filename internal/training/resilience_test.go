package training

import (
	"errors"
	"testing"

	"rana/internal/retention"
)

func TestLayerCurveOrdering(t *testing.T) {
	// In a multi-layer model the first layer tolerates the most, the
	// last the least, and the whole-model curve sits in between.
	const depth = 5
	for _, m := range ResilienceModels() {
		first := LayerCurve(m, 0, depth)
		mid := LayerCurve(m, depth/2, depth)
		last := LayerCurve(m, depth-1, depth)
		if !(first.U0 > mid.U0 && mid.U0 > last.U0) {
			t.Errorf("%s: U0 not descending with depth: %g %g %g", m, first.U0, mid.U0, last.U0)
		}
		if mid.U0 != ModelCurve(m).U0 {
			t.Errorf("%s: middle layer U0 %g != model U0 %g", m, mid.U0, ModelCurve(m).U0)
		}
		for _, rate := range PaperRates {
			f := LayerRelativeAccuracy(m, 0, depth, rate)
			l := LayerRelativeAccuracy(m, depth-1, depth, rate)
			if f < l {
				t.Errorf("%s rate %g: first layer (%.4f) less tolerant than last (%.4f)", m, rate, f, l)
			}
		}
	}
}

func TestLayerCurveEdges(t *testing.T) {
	// Single-layer models and out-of-range indices use the unshifted
	// model curve.
	for _, tc := range []struct{ index, depth int }{{0, 1}, {-1, 4}, {4, 4}, {2, 0}} {
		if got := LayerCurve("VGG", tc.index, tc.depth); got != ModelCurve("VGG") {
			t.Errorf("LayerCurve(%d, %d) = %+v, want model curve", tc.index, tc.depth, got)
		}
	}
	// Unknown models fall back to the most sensitive benchmark.
	if ModelCurve("mystery-net") != ModelCurve("ResNet") {
		t.Error("unknown model did not fall back to the ResNet curve")
	}
	// Zero rate is lossless on any curve.
	if LayerRelativeAccuracy("AlexNet", 0, 3, 0) != 1 {
		t.Error("zero rate should be lossless")
	}
}

func TestLayerTolerableRatesDefaultConstraint(t *testing.T) {
	// At the default 0.995 constraint every layer of every benchmark
	// still tolerates 1e-5 — the scalar Stage 1 decision is preserved
	// per layer, so per-layer admission changes nothing at defaults.
	names := []string{"l0", "l1", "l2", "l3", "l4"}
	for _, m := range ResilienceModels() {
		rates, err := LayerTolerableRates(m, names, 0.995, PaperRates)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(rates) != len(names) {
			t.Fatalf("%s: %d rates for %d layers", m, len(rates), len(names))
		}
		for name, r := range rates {
			if r < retention.TolerableFailureRate {
				t.Errorf("%s %s: tolerable rate %g below the scalar decision %g", m, name, r, retention.TolerableFailureRate)
			}
		}
	}
}

func TestLayerTolerableRatesDifferentiate(t *testing.T) {
	// At a loose constraint the early layers admit strictly higher
	// rates than the head.
	names := []string{"first", "mid", "last"}
	rates, err := LayerTolerableRates("AlexNet", names, 0.9, PaperRates)
	if err != nil {
		t.Fatal(err)
	}
	if !(rates["first"] > rates["last"]) {
		t.Errorf("first layer rate %g not above last %g", rates["first"], rates["last"])
	}
}

func TestLayerTolerableRatesRejectsBadInputs(t *testing.T) {
	var lerr *LadderError
	if _, err := LayerTolerableRates("AlexNet", []string{"a"}, 0.9, nil); !errors.As(err, &lerr) {
		t.Errorf("empty ladder: err = %v, want *LadderError", err)
	}
	if _, err := LayerTolerableRates("AlexNet", []string{"a"}, 0, PaperRates); !errors.As(err, &lerr) {
		t.Errorf("bad constraint: err = %v, want *LadderError", err)
	}
}

func TestAccuracyPlanMatchesUniformBaseline(t *testing.T) {
	// With no injected rates the plan path is the clean fixed-point
	// datapath — identical accuracy to the scalar path at rate 0.
	clean := Accuracy(sharedMethod.pretrained, sharedMethod.test, sharedMethod.cfg, 0)
	plan := AccuracyPlan(sharedMethod.pretrained, sharedMethod.test, sharedMethod.cfg, nil)
	if clean != plan {
		t.Errorf("clean plan accuracy %.4f != scalar accuracy %.4f", plan, clean)
	}
}

func TestAccuracyPlanDeterministic(t *testing.T) {
	rates := map[string]float64{"conv1": 1e-2}
	a := AccuracyPlan(sharedMethod.pretrained, sharedMethod.test, sharedMethod.cfg, rates)
	b := AccuracyPlan(sharedMethod.pretrained, sharedMethod.test, sharedMethod.cfg, rates)
	if a != b {
		t.Errorf("same seed plan accuracy diverged: %.4f vs %.4f", a, b)
	}
}

func TestLayerResilience(t *testing.T) {
	ladder := []float64{1e-5, 1e-1}
	curves, err := sharedMethod.LayerResilience(ladder, 2)
	if err != nil {
		t.Fatal(err)
	}
	// One curve per parameterized layer of the demo CNN.
	for _, name := range []string{"conv1", "conv2", "fc"} {
		pts, ok := curves[name]
		if !ok {
			t.Fatalf("no curve for layer %s (got %v)", name, curves)
		}
		if len(pts) != len(ladder) {
			t.Fatalf("%s: %d points for %d rungs", name, len(pts), len(ladder))
		}
		// Mild rates are near-lossless; catastrophic rates hurt.
		if pts[0].Relative < 0.9 {
			t.Errorf("%s at 1e-5: relative %.3f, want ≈1", name, pts[0].Relative)
		}
		if pts[1].Relative >= pts[0].Relative {
			t.Errorf("%s: relative accuracy not degrading (%.3f → %.3f)", name, pts[0].Relative, pts[1].Relative)
		}
	}
	if len(curves) != 3 {
		t.Errorf("curves for %d layers, want 3", len(curves))
	}

	var lerr *LadderError
	if _, err := sharedMethod.LayerResilience(nil, 1); !errors.As(err, &lerr) {
		t.Errorf("empty ladder: err = %v, want *LadderError", err)
	}
}
