package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sample() *Trace {
	t := &Trace{FrequencyHz: 200e6}
	t.Append(Event{Cycle: 0, Op: Read, Type: Inputs, Addr: 0, Words: 100})
	t.Append(Event{Cycle: 0, Op: Read, Type: Weights, Addr: 0, Words: 50})
	t.Append(Event{Cycle: 16, Op: Write, Type: Outputs, Addr: 7, Words: 10})
	t.Append(Event{Cycle: 32, Op: Read, Type: Outputs, Addr: 7, Words: 10})
	t.Append(Event{Cycle: 32, Op: Write, Type: Outputs, Addr: 7, Words: 10})
	return t
}

func TestCount(t *testing.T) {
	c := sample().Count()
	if c.Reads[Inputs] != 100 || c.Reads[Weights] != 50 || c.Reads[Outputs] != 10 {
		t.Errorf("reads = %v", c.Reads)
	}
	if c.Writes[Outputs] != 20 {
		t.Errorf("writes = %v", c.Writes)
	}
	if c.TotalWords() != 180 {
		t.Errorf("total = %d", c.TotalWords())
	}
}

func TestAppendOrderEnforced(t *testing.T) {
	tr := &Trace{FrequencyHz: 1e6}
	tr.Append(Event{Cycle: 10})
	defer func() {
		if recover() == nil {
			t.Error("out-of-order append should panic")
		}
	}()
	tr.Append(Event{Cycle: 5})
}

func TestDurationAndSpan(t *testing.T) {
	tr := sample()
	if tr.Span() != 32 {
		t.Errorf("span = %d", tr.Span())
	}
	if d := tr.Duration(200); d != time.Microsecond {
		t.Errorf("duration = %v", d)
	}
	if (&Trace{}).Span() != 0 {
		t.Error("empty span")
	}
}

func TestMaxWriteGap(t *testing.T) {
	gaps := sample().MaxWriteGap()
	if gaps[Outputs] != 16 {
		t.Errorf("output write gap = %d, want 16", gaps[Outputs])
	}
	if gaps[Inputs] != 0 || gaps[Weights] != 0 {
		t.Error("types never written should have zero gap")
	}
}

func TestHistogram(t *testing.T) {
	h := sample().Histogram(3)
	if len(h) != 3 {
		t.Fatalf("%d buckets", len(h))
	}
	var total uint64
	for _, b := range h {
		total += b[Inputs] + b[Outputs] + b[Weights]
	}
	if total != sample().Count().TotalWords() {
		t.Error("histogram loses words")
	}
	if sample().Histogram(0) != nil {
		t.Error("n<=0 should return nil")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := sample()
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrequencyHz != orig.FrequencyHz {
		t.Errorf("frequency = %g", got.FrequencyHz)
	}
	if len(got.Events) != len(orig.Events) {
		t.Fatalf("%d events", len(got.Events))
	}
	for i := range orig.Events {
		if got.Events[i] != orig.Events[i] {
			t.Errorf("event %d: %+v != %+v", i, got.Events[i], orig.Events[i])
		}
	}
}

func TestReadTraceErrors(t *testing.T) {
	cases := []string{
		"0,read,inputs,0,5\n",                                // missing header
		"# rana-trace frequency_hz=x\n",                      // bad frequency
		"# rana-trace frequency_hz=1e6\nbogus\n",             // bad line
		"# rana-trace frequency_hz=1e6\n1,zap,inputs,0,5\n",  // bad op
		"# rana-trace frequency_hz=1e6\n1,read,stuff,0,5\n",  // bad type
		"# rana-trace frequency_hz=1e6\nx,read,inputs,0,5\n", // bad cycle
		"# rana-trace frequency_hz=1e6\n1,read,inputs,z,5\n", // bad addr
		"# rana-trace frequency_hz=1e6\n1,read,inputs,0,y\n", // bad words
	}
	for i, c := range cases {
		if _, err := ReadTrace(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(cycles []uint16, ops []bool, words []uint8) bool {
		tr := &Trace{FrequencyHz: 123e6}
		var last uint64
		n := len(cycles)
		if len(ops) < n {
			n = len(ops)
		}
		if len(words) < n {
			n = len(words)
		}
		for i := 0; i < n; i++ {
			last += uint64(cycles[i])
			op := Read
			if ops[i] {
				op = Write
			}
			tr.Append(Event{Cycle: last, Op: op, Type: DataType(i % 3), Addr: uint64(i % 5), Words: uint64(words[i])})
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			return false
		}
		back, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(back.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if back.Events[i] != tr.Events[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if Inputs.String() != "inputs" || Outputs.String() != "outputs" || Weights.String() != "weights" {
		t.Error("DataType strings")
	}
	if DataType(7).String() == "" {
		t.Error("unknown DataType")
	}
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("Op strings")
	}
}
