package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadTrace: any input either fails to parse with an error (never a
// panic) or yields a trace that survives a Write→ReadTrace round trip
// with identical events, counts and span. Event ordering is enforced at
// parse time: out-of-order cycles are a parse error, so every parsed
// trace satisfies the Append ordering invariant.
func FuzzReadTrace(f *testing.F) {
	f.Add("# rana-trace frequency_hz=5e8\n0,read,inputs,0,16\n3,write,outputs,1,4\n")
	f.Add("# rana-trace frequency_hz=1e6\n")
	f.Add("")
	f.Add("5,read,weights,0,1\n")                                  // missing header
	f.Add("# rana-trace frequency_hz=5e8\n9,read,inputs,0,1\n3,read,inputs,0,1\n") // disorder
	f.Add("# rana-trace frequency_hz=5e8\n0,flush,inputs,0,1\n")   // bad op
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadTrace(strings.NewReader(data))
		if err != nil {
			return
		}
		for i := 1; i < len(tr.Events); i++ {
			if tr.Events[i].Cycle < tr.Events[i-1].Cycle {
				t.Fatalf("parsed trace out of order at event %d", i)
			}
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		rt, err := ReadTrace(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\n%s", err, buf.String())
		}
		if len(rt.Events) != len(tr.Events) {
			t.Fatalf("round trip: %d events, want %d", len(rt.Events), len(tr.Events))
		}
		for i := range tr.Events {
			if rt.Events[i] != tr.Events[i] {
				t.Fatalf("event %d changed: %+v -> %+v", i, tr.Events[i], rt.Events[i])
			}
		}
		if rt.Count() != tr.Count() || rt.Span() != tr.Span() {
			t.Fatal("aggregates changed across round trip")
		}
	})
}
