// Package trace records and analyzes memory-access traces. The paper's
// evaluation platform runs "RTL-level cycle-accurate simulation ... for
// performance estimation and memory access tracing" (§III-A); this
// package is that tracing facility for the loop-nest simulator: a
// compact event stream with writers/readers and the analyses RANA needs
// from traces — per-data-type access counts, residency windows and the
// derived lifetimes.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"
)

// DataType tags which logical array an event touches.
type DataType int

const (
	Inputs DataType = iota
	Outputs
	Weights
)

// String implements fmt.Stringer.
func (d DataType) String() string {
	switch d {
	case Inputs:
		return "inputs"
	case Outputs:
		return "outputs"
	case Weights:
		return "weights"
	default:
		return fmt.Sprintf("DataType(%d)", int(d))
	}
}

// Op is the access direction.
type Op int

const (
	Read Op = iota
	Write
)

// String implements fmt.Stringer.
func (o Op) String() string {
	if o == Read {
		return "read"
	}
	return "write"
}

// Event is one buffer access burst: Words words of one data type moved
// at cycle Cycle. Addr tags the logical region (e.g. an output tile
// index) so per-region analyses like write-gap extraction are possible.
type Event struct {
	Cycle uint64
	Op    Op
	Type  DataType
	Addr  uint64
	Words uint64
}

// Trace is an in-memory event stream with its recording clock.
type Trace struct {
	// FrequencyHz converts cycles to wall time.
	FrequencyHz float64
	Events      []Event
}

// Grow pre-reserves capacity for at least n more events, so a producer
// that knows its event count up front (the loop-nest walker knows it
// exactly from the tile counts) appends without any intermediate
// reallocation or copying.
func (t *Trace) Grow(n int) {
	if n <= 0 || cap(t.Events)-len(t.Events) >= n {
		return
	}
	ev := make([]Event, len(t.Events), len(t.Events)+n)
	copy(ev, t.Events)
	t.Events = ev
}

// Append adds one event. Events must be appended in non-decreasing cycle
// order; Append panics otherwise (the simulator emits them in order, so
// disorder is a bug).
func (t *Trace) Append(e Event) {
	if n := len(t.Events); n > 0 && e.Cycle < t.Events[n-1].Cycle {
		panic(fmt.Sprintf("trace: event at cycle %d after cycle %d", e.Cycle, t.Events[n-1].Cycle))
	}
	t.Events = append(t.Events, e)
}

// Duration converts a cycle count to wall time at the trace clock.
func (t *Trace) Duration(cycles uint64) time.Duration {
	return time.Duration(float64(cycles) / t.FrequencyHz * float64(time.Second))
}

// Counts aggregates words moved per (op, type).
type Counts struct {
	Reads, Writes [3]uint64 // indexed by DataType
}

// TotalWords returns all words moved.
func (c Counts) TotalWords() uint64 {
	var sum uint64
	for i := 0; i < 3; i++ {
		sum += c.Reads[i] + c.Writes[i]
	}
	return sum
}

// Count aggregates the trace's traffic.
func (t *Trace) Count() Counts {
	var c Counts
	for _, e := range t.Events {
		if e.Op == Read {
			c.Reads[e.Type] += e.Words
		} else {
			c.Writes[e.Type] += e.Words
		}
	}
	return c
}

// Span returns the trace's total cycle span (last event cycle).
func (t *Trace) Span() uint64 {
	if len(t.Events) == 0 {
		return 0
	}
	return t.Events[len(t.Events)-1].Cycle
}

// MaxWriteGap returns, per data type, the maximum cycle distance between
// consecutive writes of the same region — the self-refresh interval of
// accumulating data (§IV-C1): if a region is rewritten every G cycles,
// its cells never hold charge longer than G.
func (t *Trace) MaxWriteGap() [3]uint64 {
	type key struct {
		dt   DataType
		addr uint64
	}
	last := map[key]uint64{}
	var gap [3]uint64
	for _, e := range t.Events {
		if e.Op != Write {
			continue
		}
		k := key{e.Type, e.Addr}
		if prev, ok := last[k]; ok && e.Cycle-prev > gap[e.Type] {
			gap[e.Type] = e.Cycle - prev
		}
		last[k] = e.Cycle
	}
	return gap
}

// Histogram buckets per-type traffic over n equal cycle windows — the
// raw material of utilization-over-time plots.
func (t *Trace) Histogram(n int) [][3]uint64 {
	if n <= 0 || len(t.Events) == 0 {
		return nil
	}
	span := t.Span() + 1
	out := make([][3]uint64, n)
	for _, e := range t.Events {
		b := int(e.Cycle * uint64(n) / span)
		if b >= n {
			b = n - 1
		}
		out[b][e.Type] += e.Words
	}
	return out
}

// --- serialization (CSV lines: cycle,op,type,words) ---

// Write streams the trace to w, one event per line, with a header
// carrying the clock.
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# rana-trace frequency_hz=%g\n", t.FrequencyHz); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%d,%s,%s,%d,%d\n", e.Cycle, e.Op, e.Type, e.Addr, e.Words); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadTrace parses a trace written by Write.
func ReadTrace(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	t := &Trace{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if idx := strings.Index(line, "frequency_hz="); idx >= 0 {
				f, err := strconv.ParseFloat(strings.TrimSpace(line[idx+len("frequency_hz="):]), 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad frequency: %w", lineNo, err)
				}
				t.FrequencyHz = f
			}
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", lineNo, len(parts))
		}
		cycle, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad cycle: %w", lineNo, err)
		}
		var op Op
		switch parts[1] {
		case "read":
			op = Read
		case "write":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, parts[1])
		}
		var dt DataType
		switch parts[2] {
		case "inputs":
			dt = Inputs
		case "outputs":
			dt = Outputs
		case "weights":
			dt = Weights
		default:
			return nil, fmt.Errorf("trace: line %d: bad type %q", lineNo, parts[2])
		}
		addr, err := strconv.ParseUint(parts[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad addr: %w", lineNo, err)
		}
		words, err := strconv.ParseUint(parts[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad words: %w", lineNo, err)
		}
		if n := len(t.Events); n > 0 && cycle < t.Events[n-1].Cycle {
			return nil, fmt.Errorf("trace: line %d: cycle %d after cycle %d", lineNo, cycle, t.Events[n-1].Cycle)
		}
		t.Events = append(t.Events, Event{Cycle: cycle, Op: op, Type: dt, Addr: addr, Words: words})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if t.FrequencyHz == 0 {
		return nil, fmt.Errorf("trace: missing frequency header")
	}
	return t, nil
}
