// Package tensor provides the minimal dense tensor the training substrate
// needs: an n-dimensional float64 array with row-major layout, plus the
// fixed-point view used to emulate the accelerator's 16-bit datapath
// during retention-aware training (§IV-B).
package tensor

import (
	"fmt"

	"rana/internal/bits"
	"rana/internal/fixed"
)

// Tensor is a dense row-major n-dimensional array. The zero value is not
// usable; construct with New.
type Tensor struct {
	shape []int
	// Data is the backing storage, exposed for in-place kernels.
	Data []float64
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dim %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dim returns the size of axis i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of axes.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the element count.
func (t *Tensor) Len() int { return len(t.Data) }

// index computes the flat offset of a multi-index.
func (t *Tensor) index(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range [0,%d) on axis %d", x, t.shape[i], i))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) float64 { return t.Data[t.index(idx...)] }

// Set stores v at the multi-index.
func (t *Tensor) Set(v float64, idx ...int) { t.Data[t.index(idx...)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Zero clears all elements in place.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether two tensors have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.shape) != len(o.shape) {
		return false
	}
	for i := range t.shape {
		if t.shape[i] != o.shape[i] {
			return false
		}
	}
	return true
}

// FillRandn fills the tensor with N(0, std²) variates from rng.
func (t *Tensor) FillRandn(rng *bits.SplitMix64, std float64) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// Quantize rounds every element to the 16-bit fixed-point grid in place —
// the "fixed-point pretrain" view of Fig. 9.
func (t *Tensor) Quantize(f fixed.Format) {
	for i, x := range t.Data {
		t.Data[i] = f.Quantize(x)
	}
}

// Corrupt quantizes and applies bit-level retention failures in place —
// the layer mask of the retention-aware training method (Fig. 9).
func (t *Tensor) Corrupt(in *bits.Injector, f fixed.Format) {
	in.CorruptFloats(t.Data, f)
}

// CorruptAt is Corrupt restricted to the word-bit positions set in mask
// (0 or bits.AllBits means no restriction) — the position-aware fault
// hook of the injection engine.
func (t *Tensor) CorruptAt(in *bits.Injector, f fixed.Format, mask uint16) {
	in.CorruptFloatsAt(t.Data, f, mask)
}

// ArgMax returns the flat index of the maximum element.
func (t *Tensor) ArgMax() int {
	best, bi := t.Data[0], 0
	for i, x := range t.Data {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}
