package tensor

import (
	"testing"
	"testing/quick"

	"rana/internal/bits"
	"rana/internal/fixed"
)

func TestNewAndIndexing(t *testing.T) {
	x := New(2, 3, 4)
	if x.Rank() != 3 || x.Len() != 24 || x.Dim(1) != 3 {
		t.Fatalf("shape mismatch: %v", x.Shape())
	}
	x.Set(7.5, 1, 2, 3)
	if x.At(1, 2, 3) != 7.5 {
		t.Error("Set/At round trip")
	}
	// Row-major: last axis contiguous.
	x.Set(1.0, 0, 0, 1)
	if x.Data[1] != 1.0 {
		t.Error("layout is not row-major")
	}
}

func TestPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { New(0, 2) },
		func() { New(2).At(2) },
		func() { New(2).At(0, 0) },
		func() { New(2, 2).Set(1, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	x := New(4)
	x.Data[0] = 5
	y := x.Clone()
	y.Data[0] = 9
	if x.Data[0] != 5 {
		t.Error("Clone shares storage")
	}
	if !x.SameShape(y) {
		t.Error("clone shape mismatch")
	}
	if x.SameShape(New(2, 2)) || x.SameShape(New(5)) {
		t.Error("SameShape false positives")
	}
}

func TestZero(t *testing.T) {
	x := New(3)
	x.Data[1] = 2
	x.Zero()
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
}

func TestQuantize(t *testing.T) {
	x := New(3)
	x.Data = []float64{0.123456, -1.987654, 100.5}
	x.Quantize(fixed.Q88)
	for i, v := range x.Data {
		if fixed.Q88.Quantize(v) != v {
			t.Errorf("element %d not on grid: %g", i, v)
		}
	}
}

func TestCorruptAtZeroRateQuantizesNothing(t *testing.T) {
	x := New(4)
	x.Data = []float64{0.1, 0.2, 0.3, 0.4}
	orig := append([]float64(nil), x.Data...)
	x.Corrupt(bits.NewInjector(0, 1), fixed.Q88)
	for i := range x.Data {
		if x.Data[i] != orig[i] {
			t.Error("zero-rate corrupt modified data")
		}
	}
}

func TestFillRandnStats(t *testing.T) {
	x := New(10000)
	x.FillRandn(bits.NewSplitMix64(4), 2.0)
	sum, sumsq := 0.0, 0.0
	for _, v := range x.Data {
		sum += v
		sumsq += v * v
	}
	mean := sum / float64(x.Len())
	std := sumsq / float64(x.Len())
	if mean > 0.1 || mean < -0.1 {
		t.Errorf("mean = %g", mean)
	}
	if std < 3.5 || std > 4.5 {
		t.Errorf("variance = %g, want ≈4", std)
	}
}

func TestArgMax(t *testing.T) {
	x := New(5)
	x.Data = []float64{1, 9, 3, 9, 2}
	if x.ArgMax() != 1 {
		t.Errorf("ArgMax = %d (first maximum wins)", x.ArgMax())
	}
}

// TestIndexBijectionProperty: every multi-index maps to a distinct flat
// offset (checked by writing a unique value everywhere).
func TestIndexBijectionProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		d0, d1, d2 := int(a%4)+1, int(b%4)+1, int(c%4)+1
		x := New(d0, d1, d2)
		v := 1.0
		for i := 0; i < d0; i++ {
			for j := 0; j < d1; j++ {
				for k := 0; k < d2; k++ {
					x.Set(v, i, j, k)
					v++
				}
			}
		}
		seen := map[float64]bool{}
		for _, val := range x.Data {
			if seen[val] {
				return false
			}
			seen[val] = true
		}
		return len(seen) == x.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
