// Package viz renders the experiments' stacked-bar figures as terminal
// text — the closest a CLI gets to the paper's energy-breakdown plots
// (Figs. 1, 15–19). Bars are horizontal, scaled to the row maximum, with
// one fill rune per stack segment and a legend.
package viz

import (
	"fmt"
	"strings"
)

// Segments in a stacked bar use these fill runes, in order.
var fillRunes = []rune{'█', '▓', '▒', '░', '·', '+'}

// Row is one labeled stacked bar.
type Row struct {
	Label string
	// Parts are the segment magnitudes (non-negative), in legend order.
	Parts []float64
}

// Total sums the row's parts.
func (r Row) Total() float64 {
	s := 0.0
	for _, p := range r.Parts {
		s += p
	}
	return s
}

// Chart is a collection of stacked bars sharing a legend.
type Chart struct {
	// Title is printed above the bars.
	Title string
	// Legend names each stack segment.
	Legend []string
	// Rows are the bars, rendered in order.
	Rows []Row
	// Width is the maximum bar width in runes (default 50).
	Width int
}

// Render returns the chart as text. Bars are scaled so the largest row
// total spans Width runes; each row prints its label, bar and total.
func (c Chart) Render() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(c.Legend) > 0 {
		parts := make([]string, 0, len(c.Legend))
		for i, name := range c.Legend {
			parts = append(parts, fmt.Sprintf("%c %s", fillRunes[i%len(fillRunes)], name))
		}
		fmt.Fprintf(&b, "legend: %s\n", strings.Join(parts, "  "))
	}
	maxTotal := 0.0
	labelW := 0
	for _, r := range c.Rows {
		if t := r.Total(); t > maxTotal {
			maxTotal = t
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if maxTotal <= 0 {
		maxTotal = 1
	}
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-*s |", labelW, r.Label)
		for i, p := range r.Parts {
			n := int(p/maxTotal*float64(width) + 0.5)
			b.WriteString(strings.Repeat(string(fillRunes[i%len(fillRunes)]), n))
		}
		fmt.Fprintf(&b, " %.3f\n", r.Total())
	}
	return b.String()
}

// BreakdownLegend is the Eq. 14 component legend used by the energy
// figures, matching the paper's stack order.
func BreakdownLegend() []string {
	return []string{"computing", "buffer", "refresh", "off-chip"}
}
