package viz

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := Chart{
		Title:  "demo",
		Legend: []string{"a", "b"},
		Rows: []Row{
			{Label: "one", Parts: []float64{1, 1}},
			{Label: "two", Parts: []float64{0.5, 0.5}},
		},
		Width: 10,
	}
	out := c.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "legend:") {
		t.Fatalf("missing title/legend:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	// Row one spans the full width (5 of each rune); row two half.
	if !strings.Contains(lines[2], strings.Repeat("█", 5)+strings.Repeat("▓", 5)) {
		t.Errorf("row one bar wrong: %q", lines[2])
	}
	if !strings.Contains(lines[3], strings.Repeat("█", 3)+strings.Repeat("▓", 3)) {
		t.Errorf("row two bar wrong: %q", lines[3])
	}
	if !strings.HasSuffix(lines[2], "2.000") || !strings.HasSuffix(lines[3], "1.000") {
		t.Errorf("totals missing: %q / %q", lines[2], lines[3])
	}
}

func TestRenderDefaults(t *testing.T) {
	c := Chart{Rows: []Row{{Label: "x", Parts: []float64{1}}}}
	out := c.Render()
	if !strings.Contains(out, strings.Repeat("█", 50)) {
		t.Errorf("default width should be 50:\n%s", out)
	}
	// Zero rows / zero totals must not divide by zero.
	empty := Chart{Rows: []Row{{Label: "z", Parts: []float64{0}}}}
	if out := empty.Render(); !strings.Contains(out, "z") {
		t.Error("zero-total chart should still render labels")
	}
	if (Chart{}).Render() == "crash" {
		t.Fatal("unreachable")
	}
}

func TestRowTotal(t *testing.T) {
	r := Row{Parts: []float64{1, 2, 3.5}}
	if r.Total() != 6.5 {
		t.Errorf("total = %g", r.Total())
	}
}

func TestBreakdownLegend(t *testing.T) {
	l := BreakdownLegend()
	if len(l) != 4 || l[2] != "refresh" {
		t.Errorf("legend = %v", l)
	}
}

func TestLegendRuneCycling(t *testing.T) {
	c := Chart{
		Legend: []string{"a", "b", "c", "d", "e", "f", "g"}, // more than fill runes
		Rows:   []Row{{Label: "r", Parts: []float64{1, 1, 1, 1, 1, 1, 1}}},
		Width:  14,
	}
	out := c.Render()
	// The 7th segment reuses the first rune — rendering must not panic
	// and the bar must contain every rune class.
	for _, r := range []string{"█", "▓", "▒", "░", "·", "+"} {
		if !strings.Contains(out, r) {
			t.Errorf("missing rune %s:\n%s", r, out)
		}
	}
}
