package pearray

import (
	"testing"
	"testing/quick"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/sim"
)

// perTileClosedForm mirrors the formula used by pattern/sim.
func perTileClosedForm(l models.ConvLayer, t pattern.Tiling, cfg hw.Config) uint64 {
	ceil := func(a, b int) uint64 { return uint64((a + b - 1) / b) }
	k2 := uint64(l.K) * uint64(l.K)
	switch cfg.Mapping {
	case hw.MapOutputPixel:
		return ceil(t.Tm, cfg.ArrayM) * ceil(t.Tr*t.Tc, cfg.ArrayN) * uint64(t.Tn) * k2
	default:
		return ceil(t.Tm, cfg.ArrayM) * ceil(t.Tn, cfg.ArrayN) * uint64(t.Tr) * uint64(t.Tc) * k2
	}
}

// TestScheduleMatchesClosedForm: the lane-level simulation independently
// reproduces the per-tile cycle count both patterns and the walker use.
func TestScheduleMatchesClosedForm(t *testing.T) {
	cfgs := []hw.Config{hw.TestAccelerator(), hw.DaDianNao(), hw.EyerissLike()}
	f := func(tm6, tn6, tr3, tc4, k2 uint8, which uint8) bool {
		cfg := cfgs[int(which)%len(cfgs)]
		l := models.ConvLayer{Name: "p", N: 64, H: 32, L: 32, M: 64,
			K: []int{1, 3, 5}[k2%3], S: 1}
		l.P = l.K / 2
		ti := pattern.Tiling{
			Tm: int(tm6%64) + 1, Tn: int(tn6%64) + 1,
			Tr: int(tr3%4) + 1, Tc: int(tc4%16) + 1,
		}
		st := Schedule(l, ti, cfg)
		return st.Cycles == perTileClosedForm(l, ti, cfg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFullTileFullUtilization: a tile exactly matching the array runs at
// η = 1.
func TestFullTileFullUtilization(t *testing.T) {
	cfg := hw.TestAccelerator()
	l := models.ConvLayer{Name: "f", N: 16, H: 16, L: 16, M: 16, K: 3, S: 1, P: 1}
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	st := Schedule(l, ti, cfg)
	if st.Utilization() != 1 {
		t.Errorf("η = %v, want 1", st.Utilization())
	}
	if st.UsefulMACs != uint64(16*16*16*9) {
		t.Errorf("useful MACs = %d", st.UsefulMACs)
	}
}

// TestClippedTileUtilization reproduces the running cases' η = 0.875:
// Layer-A's edge tile covers only 14 of the 16 pixel lanes.
func TestClippedTileUtilization(t *testing.T) {
	cfg := hw.TestAccelerator()
	layerA, _ := models.ResNet().Layer("res4a_branch1")
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	// C = 14: one tile along the row with 14 useful pixels of 16.
	st := ScheduleClipped(layerA, ti, cfg, 16, 16, 14)
	if st.Utilization() != 0.875 {
		t.Errorf("η = %v, want 0.875 — the paper's running-case utilization", st.Utilization())
	}
	// Cycles are the nominal tile's regardless of clipping.
	if st.Cycles != Schedule(layerA, ti, cfg).Cycles {
		t.Error("clipping must not change the cycle count")
	}
}

// TestWholeLayerUtilizationMatchesAnalytical: summing clipped tiles over
// a whole layer reproduces pattern.Analyze's η exactly.
func TestWholeLayerUtilizationMatchesAnalytical(t *testing.T) {
	cfg := hw.TestAccelerator()
	layerA, _ := models.ResNet().Layer("res4a_branch1")
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	a := pattern.MustAnalyze(layerA, pattern.OD, ti, cfg)

	var useful, slots uint64
	R, C := layerA.R(), layerA.C()
	for m := 0; m < layerA.M; m += ti.Tm {
		for n := 0; n < layerA.N; n += ti.Tn {
			for r := 0; r < R; r += ti.Tr {
				for c := 0; c < C; c += ti.Tc {
					effM := minI(ti.Tm, layerA.M-m)
					effN := minI(ti.Tn, layerA.N-n)
					effPix := minI(ti.Tr, R-r) * minI(ti.Tc, C-c)
					st := ScheduleClipped(layerA, ti, cfg, effM, effN, effPix)
					useful += st.UsefulMACs
					slots += st.IssuedSlots
				}
			}
		}
	}
	if useful != a.MACs {
		t.Errorf("useful MACs %d != layer MACs %d", useful, a.MACs)
	}
	gotEta := float64(useful) / float64(slots)
	if diff := gotEta - a.Utilization; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("lane-level η = %v != analytical %v", gotEta, a.Utilization)
	}
}

// TestDaDianNaoMapping: under the output×input mapping, Tn clips cost
// utilization while pixels are temporal.
func TestDaDianNaoMapping(t *testing.T) {
	cfg := hw.DaDianNao()
	l := models.ConvLayer{Name: "d", N: 3, H: 8, L: 8, M: 64, K: 3, S: 1, P: 1}
	ti := pattern.Tiling{Tm: 64, Tn: 64, Tr: 1, Tc: 1}
	st := ScheduleClipped(l, ti, cfg, 64, 3, 1)
	// Only 3 of 64 input lanes live: η = 3/64.
	want := 3.0 / 64
	if st.Utilization() != want {
		t.Errorf("η = %v, want %v", st.Utilization(), want)
	}
}

func TestScheduleClippedPanicsOutsideTile(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ScheduleClipped(models.ConvLayer{Name: "x", N: 1, H: 4, L: 4, M: 1, K: 1, S: 1},
		pattern.Tiling{Tm: 2, Tn: 2, Tr: 1, Tc: 2}, hw.TestAccelerator(), 3, 1, 1)
}

// TestAgainstWalker: tiles × perTile from the lane simulator equals the
// walker's whole-layer cycles on a benchmark layer.
func TestAgainstWalker(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	l, _ := models.VGG().Layer("conv3_2")
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	per := Schedule(l, ti, cfg).Cycles
	nM := (l.M + ti.Tm - 1) / ti.Tm
	nN := (l.N + ti.Tn - 1) / ti.Tn
	nR := (l.R() + ti.Tr - 1) / ti.Tr
	nC := (l.C() + ti.Tc - 1) / ti.Tc
	w := sim.Walk(l, pattern.OD, ti, cfg)
	if uint64(nM*nN*nR*nC)*per != w.Cycles {
		t.Errorf("tiles×perTile = %d != walker %d", uint64(nM*nN*nR*nC)*per, w.Cycles)
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
