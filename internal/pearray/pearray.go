// Package pearray is a lane-level occupancy simulator of the PE array's
// core computing part: it schedules every MAC of one Tm×Tn×Tr×Tc×K² tile
// onto the physical lanes of the array, cycle by cycle, under the two
// spatial mappings of internal/hw. It independently derives the per-tile
// cycle count that internal/pattern and internal/sim compute in closed
// form (their tests cross-validate against this simulation), and
// additionally reports per-lane occupancy — the microscopic source of the
// η utilization factor in the paper's lifetime equations (Eqs. 4–5, 9–10).
package pearray

import (
	"fmt"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
)

// Stats is the outcome of scheduling one tile.
type Stats struct {
	// Cycles is the tile's occupancy cycle count.
	Cycles uint64
	// UsefulMACs is the number of real multiply-accumulates issued
	// (tile dimensions clipped to the layer).
	UsefulMACs uint64
	// IssuedSlots is Cycles × lane count: the capacity the tile consumed.
	IssuedSlots uint64
}

// Utilization returns UsefulMACs / IssuedSlots — the per-tile η.
func (s Stats) Utilization() float64 {
	if s.IssuedSlots == 0 {
		return 0
	}
	return float64(s.UsefulMACs) / float64(s.IssuedSlots)
}

// Schedule simulates one full (unclipped) tile of layer l under tiling t
// on the array of cfg. Lanes process one MAC per cycle; the temporal
// loops advance only when every spatial lane group has been issued —
// exactly the lock-step dataflow of the paper's test accelerator, where
// "16 rows of PEs share the same inputs".
func Schedule(l models.ConvLayer, t pattern.Tiling, cfg hw.Config) Stats {
	return schedule(l, t, cfg, t.Tm, t.Tn, t.Tr*t.Tc)
}

// ScheduleClipped simulates an edge tile whose extents are clipped to
// effM output channels, effN input channels and effPix output pixels
// (≤ the tiling's nominal extents). The array still sweeps the nominal
// tile — lanes beyond the clip idle — which is where η < 1 comes from.
func ScheduleClipped(l models.ConvLayer, t pattern.Tiling, cfg hw.Config, effM, effN, effPix int) Stats {
	if effM < 0 || effM > t.Tm || effN < 0 || effN > t.Tn || effPix < 0 || effPix > t.Tr*t.Tc {
		panic(fmt.Sprintf("pearray: clip (%d,%d,%d) outside tile %v", effM, effN, effPix, t))
	}
	return schedule(l, t, cfg, effM, effN, effPix)
}

// schedule runs the lane-level simulation. The spatial dimensions depend
// on the mapping; everything else is temporal.
func schedule(l models.ConvLayer, t pattern.Tiling, cfg hw.Config, effM, effN, effPix int) Stats {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	k2 := l.K * l.K
	var st Stats
	lanes := uint64(cfg.ArrayM) * uint64(cfg.ArrayN)

	switch cfg.Mapping {
	case hw.MapOutputPixel:
		// Spatial: output channels over ArrayM rows, output pixels over
		// ArrayN columns. Temporal: Tn input channels × K² taps.
		for mBase := 0; mBase < t.Tm; mBase += cfg.ArrayM {
			for pBase := 0; pBase < t.Tr*t.Tc; pBase += cfg.ArrayN {
				for n := 0; n < t.Tn; n++ {
					for k := 0; k < k2; k++ {
						st.Cycles++
						// Count the lanes doing useful work this cycle.
						mLive := clipSpan(mBase, cfg.ArrayM, effM)
						pLive := clipSpan(pBase, cfg.ArrayN, effPix)
						if n < effN {
							st.UsefulMACs += uint64(mLive) * uint64(pLive)
						}
					}
				}
			}
		}
	case hw.MapOutputInput:
		// Spatial: output channels × input channels (adder trees).
		// Temporal: Tr·Tc pixels × K² taps.
		for mBase := 0; mBase < t.Tm; mBase += cfg.ArrayM {
			for nBase := 0; nBase < t.Tn; nBase += cfg.ArrayN {
				for p := 0; p < t.Tr*t.Tc; p++ {
					for k := 0; k < k2; k++ {
						st.Cycles++
						mLive := clipSpan(mBase, cfg.ArrayM, effM)
						nLive := clipSpan(nBase, cfg.ArrayN, effN)
						if p < effPix {
							st.UsefulMACs += uint64(mLive) * uint64(nLive)
						}
					}
				}
			}
		}
	default:
		panic(fmt.Sprintf("pearray: unknown mapping %v", cfg.Mapping))
	}
	st.IssuedSlots = st.Cycles * lanes
	return st
}

// clipSpan returns how many of the lanes [base, base+width) fall below
// the effective extent.
func clipSpan(base, width, eff int) int {
	if eff <= base {
		return 0
	}
	if eff >= base+width {
		return width
	}
	return eff - base
}
