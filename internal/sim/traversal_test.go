package sim

import (
	"testing"
	"testing/quick"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
)

// TestWalkTraversalLinearIdentical pins the byte-identity contract: the
// linear traversal (zero value and Blocks=1 alike) must reproduce Walk
// exactly, field for field.
func TestWalkTraversalLinearIdentical(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		for _, l := range net.Layers {
			ti := pattern.Tiling{
				Tm: minI(16, l.M), Tn: minI(16, l.N/groups(l)),
				Tr: 1, Tc: minI(16, l.C()),
			}
			for _, k := range pattern.Kinds {
				ref := Walk(l, k, ti, cfg)
				for _, trv := range []pattern.Traversal{{}, {Blocks: 1}} {
					if got := WalkTraversal(l, k, ti, cfg, trv); got != ref {
						t.Fatalf("%s/%s %v %v: linear traversal diverged: %+v vs %+v",
							net.Name, l.Name, k, trv, got, ref)
					}
				}
			}
		}
	}
}

// TestBlockedWalkerMatchesClosedForm cross-validates the blocked walker
// against pattern.AnalyzeTraversal on every benchmark layer: a blocked
// traversal must keep cycles and buffer traffic exactly (same tile
// multiset, different order) while its folded residency maxima equal
// the analytical blocked lifetimes.
func TestBlockedWalkerMatchesClosedForm(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		for _, l := range net.Layers {
			ti := pattern.Tiling{
				Tm: minI(16, l.M), Tn: minI(16, l.N/groups(l)),
				Tr: 1, Tc: minI(16, l.C()),
			}
			for _, k := range pattern.Kinds {
				lin := Walk(l, k, ti, cfg)
				for _, blocks := range []int{2, 3, 4, 8} {
					trv := pattern.Traversal{Blocks: blocks}
					a, err := pattern.AnalyzeTraversal(l, k, ti, cfg, trv)
					if err != nil {
						t.Fatal(err)
					}
					w := WalkTraversal(l, k, ti, cfg, trv)
					if a.Cycles != w.Cycles {
						t.Errorf("%s/%s %v b=%d: cycles %d vs walker %d",
							net.Name, l.Name, k, blocks, a.Cycles, w.Cycles)
					}
					if w.Cycles != lin.Cycles || w.BufferTraffic != lin.BufferTraffic {
						t.Errorf("%s/%s %v b=%d: blocked walk moved totals: %+v vs linear %+v",
							net.Name, l.Name, k, blocks, w.BufferTraffic, lin.BufferTraffic)
					}
					if !closeDur(a.Lifetimes.Input, w.Lifetimes.Input) ||
						!closeDur(a.Lifetimes.Output, w.Lifetimes.Output) ||
						!closeDur(a.Lifetimes.Weight, w.Lifetimes.Weight) {
						t.Errorf("%s/%s %v b=%d: lifetimes %+v vs walker %+v",
							net.Name, l.Name, k, blocks, a.Lifetimes, w.Lifetimes)
					}
					// Blocking may only shrink residency, never stretch it.
					if w.Lifetimes.Input > lin.Lifetimes.Input ||
						w.Lifetimes.Output > lin.Lifetimes.Output ||
						w.Lifetimes.Weight > lin.Lifetimes.Weight {
						t.Errorf("%s/%s %v b=%d: blocked lifetimes grew: %+v vs linear %+v",
							net.Name, l.Name, k, blocks, w.Lifetimes, lin.Lifetimes)
					}
				}
			}
		}
	}
}

// TestBlockedWalkShrinksLifetimes pins the RTC effect itself on a layer
// where blocking genuinely splits the 2nd-level loop: the staged data
// type's folded span must shrink strictly, by exactly the realized
// block-count factor.
func TestBlockedWalkShrinksLifetimes(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	l := models.ConvLayer{Name: "shrink", N: 32, M: 64, H: 16, L: 16, K: 3, S: 1, P: 1}
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 4, Tc: 4}
	trv := pattern.Traversal{Blocks: 2} // nM = 4, nRC = 16: both split cleanly in half

	for _, k := range pattern.Kinds {
		lin := Walk(l, k, ti, cfg)
		blk := WalkTraversal(l, k, ti, cfg, trv)
		var linStaged, blkStaged = lin.Lifetimes, blk.Lifetimes
		switch k {
		case pattern.ID:
			// Inputs staged per RC block: whole-layer residency halves.
			if blkStaged.Input*2 != linStaged.Input {
				t.Errorf("ID: input lifetime %v, want half of %v", blkStaged.Input, linStaged.Input)
			}
			if blkStaged.Weight*2 != linStaged.Weight {
				t.Errorf("ID: weight lifetime %v, want half of %v", blkStaged.Weight, linStaged.Weight)
			}
		case pattern.OD:
			// Input slabs and output self-refresh gaps span one M block.
			if blkStaged.Input*2 != linStaged.Input {
				t.Errorf("OD: input lifetime %v, want half of %v", blkStaged.Input, linStaged.Input)
			}
			if blkStaged.Output*2 != linStaged.Output {
				t.Errorf("OD: output gap %v, want half of %v", blkStaged.Output, linStaged.Output)
			}
			if blkStaged.Weight != linStaged.Weight {
				t.Errorf("OD: weight lifetime moved: %v vs %v", blkStaged.Weight, linStaged.Weight)
			}
		case pattern.WD:
			// Weights staged per M block: whole-layer residency halves.
			if blkStaged.Weight*2 != linStaged.Weight {
				t.Errorf("WD: weight lifetime %v, want half of %v", blkStaged.Weight, linStaged.Weight)
			}
			if blkStaged.Input*2 != linStaged.Input {
				t.Errorf("WD: input lifetime %v, want half of %v", blkStaged.Input, linStaged.Input)
			}
		}
	}
}

// TestBlockedWalkerMatchesClosedFormRandom fuzzes layer shapes, tilings
// and block counts through the blocked walker / blocked analysis pair,
// including degenerate blockings that clamp back to linear.
func TestBlockedWalkerMatchesClosedFormRandom(t *testing.T) {
	cfg := hw.TestAccelerator()
	f := func(n8, m8, hw8, k2, tm3, tn3, tr2, tc3, b4 uint8) bool {
		l := models.ConvLayer{
			Name: "f",
			N:    int(n8%24) + 1,
			M:    int(m8%24) + 1,
			H:    int(hw8%14) + 5,
			L:    int(hw8%14) + 5,
			K:    []int{1, 3, 5}[k2%3],
			S:    1,
		}
		l.P = l.K / 2
		if l.Validate() != nil {
			return true
		}
		ti := pattern.Tiling{
			Tm: 1 << (tm3 % 4), Tn: 1 << (tn3 % 4),
			Tr: int(tr2%3) + 1, Tc: 1 << (tc3 % 4),
		}
		trv := pattern.Traversal{Blocks: int(b4 % 9)}
		for _, k := range pattern.Kinds {
			a, err := pattern.AnalyzeTraversal(l, k, ti, cfg, trv)
			if err != nil {
				return false
			}
			w := WalkTraversal(l, k, ti, cfg, trv)
			lin := Walk(l, k, ti, cfg)
			if a.Cycles != w.Cycles || w.BufferTraffic != lin.BufferTraffic {
				return false
			}
			if !closeDur(a.Lifetimes.Input, w.Lifetimes.Input) ||
				!closeDur(a.Lifetimes.Output, w.Lifetimes.Output) ||
				!closeDur(a.Lifetimes.Weight, w.Lifetimes.Weight) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
