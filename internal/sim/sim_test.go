package sim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"rana/internal/bits"
	"rana/internal/edram"
	"rana/internal/fixed"
	"rana/internal/hw"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sram"
	"rana/internal/trace"
)

// TestWalkerMatchesClosedForm cross-validates the tile walker against the
// analytical model on every benchmark layer at the natural tiling, for
// all three patterns: cycles, buffer traffic and lifetimes must agree.
func TestWalkerMatchesClosedForm(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		for _, l := range net.Layers {
			ti := pattern.Tiling{
				Tm: minI(16, l.M), Tn: minI(16, l.N/groups(l)),
				Tr: 1, Tc: minI(16, l.C()),
			}
			for _, k := range pattern.Kinds {
				a := pattern.MustAnalyze(l, k, ti, cfg)
				w := Walk(l, k, ti, cfg)
				if a.Cycles != w.Cycles {
					t.Errorf("%s/%s %v: cycles %d vs walker %d", net.Name, l.Name, k, a.Cycles, w.Cycles)
				}
				if a.BufferTraffic != w.BufferTraffic {
					t.Errorf("%s/%s %v: traffic %+v vs walker %+v", net.Name, l.Name, k, a.BufferTraffic, w.BufferTraffic)
				}
				if !closeDur(a.Lifetimes.Input, w.Lifetimes.Input) ||
					!closeDur(a.Lifetimes.Output, w.Lifetimes.Output) ||
					!closeDur(a.Lifetimes.Weight, w.Lifetimes.Weight) {
					t.Errorf("%s/%s %v: lifetimes %+v vs walker %+v", net.Name, l.Name, k, a.Lifetimes, w.Lifetimes)
				}
			}
		}
	}
}

// TestWalkerMatchesClosedFormRandom fuzzes layer shapes and tilings.
func TestWalkerMatchesClosedFormRandom(t *testing.T) {
	cfg := hw.TestAccelerator()
	f := func(n8, m8, hw8, k2, tm3, tn3, tr2, tc3 uint8) bool {
		l := models.ConvLayer{
			Name: "f",
			N:    int(n8%24) + 1,
			M:    int(m8%24) + 1,
			H:    int(hw8%14) + 5,
			L:    int(hw8%14) + 5,
			K:    []int{1, 3, 5}[k2%3],
			S:    1,
		}
		l.P = l.K / 2
		if l.Validate() != nil {
			return true
		}
		ti := pattern.Tiling{
			Tm: 1 << (tm3 % 4), Tn: 1 << (tn3 % 4),
			Tr: int(tr2%3) + 1, Tc: 1 << (tc3 % 4),
		}
		for _, k := range pattern.Kinds {
			a := pattern.MustAnalyze(l, k, ti, cfg)
			w := Walk(l, k, ti, cfg)
			if a.Cycles != w.Cycles || a.BufferTraffic != w.BufferTraffic {
				return false
			}
			if !closeDur(a.Lifetimes.Input, w.Lifetimes.Input) ||
				!closeDur(a.Lifetimes.Output, w.Lifetimes.Output) ||
				!closeDur(a.Lifetimes.Weight, w.Lifetimes.Weight) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestWalkerGroupedLayer checks group handling against the closed form.
func TestWalkerGroupedLayer(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	l := models.ConvLayer{Name: "g", N: 32, H: 13, L: 13, M: 48, K: 3, S: 1, P: 1, Groups: 2}
	ti := pattern.Tiling{Tm: 16, Tn: 8, Tr: 1, Tc: 13}
	for _, k := range pattern.Kinds {
		a := pattern.MustAnalyze(l, k, ti, cfg)
		w := Walk(l, k, ti, cfg)
		if a.Cycles != w.Cycles || a.BufferTraffic != w.BufferTraffic {
			t.Errorf("%v: analyze %d/%+v walker %d/%+v", k, a.Cycles, a.BufferTraffic, w.Cycles, w.BufferTraffic)
		}
	}
}

func TestWalkerPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Walk(models.ConvLayer{Name: "x"}, pattern.ID, pattern.Tiling{Tm: 1, Tn: 1, Tr: 1, Tc: 1}, hw.TestAccelerator())
}

// --- functional mode ---

// smallLayer is a functional-mode test layer: 4×8×8 in, 4 kernels 3×3.
var smallLayer = models.ConvLayer{Name: "tiny", N: 4, H: 8, L: 8, M: 4, K: 3, S: 1, P: 1}

func randWords(n int, seed uint64) []fixed.Word {
	rng := bits.NewSplitMix64(seed)
	out := make([]fixed.Word, n)
	for i := range out {
		// Small magnitudes so accumulations stay in range.
		out[i] = fixed.Q88.FromFloat(rng.NormFloat64() * 0.25)
	}
	return out
}

func functionalInputs(t *testing.T) (ins, ws []fixed.Word) {
	t.Helper()
	return randWords(int(smallLayer.InputWords()), 1), randWords(int(smallLayer.WeightWords()), 2)
}

// TestFunctionalSRAMIsExact: with SRAM, buffered execution equals the
// direct reference regardless of execution time.
func TestFunctionalSRAMIsExact(t *testing.T) {
	ins, ws := functionalInputs(t)
	buf, err := sram.New(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	// 1 Hz clock: execution takes "hours" of model time; SRAM doesn't care.
	res, err := RunFunctional(smallLayer, fixed.Q88, ins, ws, buf, nil, 256, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if res.WordErrors != 0 {
		t.Errorf("SRAM execution corrupted %d words", res.WordErrors)
	}
}

// TestFunctionalEDRAMFastIsExact: when the data lifetime is far below the
// retention time, unrefreshed eDRAM is also exact — the core RANA premise.
func TestFunctionalEDRAMFastIsExact(t *testing.T) {
	ins, ws := functionalInputs(t)
	buf, err := edram.New(4, 4096, retention.Typical(), 3)
	if err != nil {
		t.Fatal(err)
	}
	// 200 MHz, 256 MACs/cycle: the whole layer takes ≈37k MACs ≈ 0.7 µs,
	// far below the 45 µs weakest-cell retention time.
	res, err := RunFunctional(smallLayer, fixed.Q88, ins, ws, buf, nil, 256, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExecTime >= retention.TypicalRetentionTime {
		t.Fatalf("test premise broken: exec %v not below retention time", res.ExecTime)
	}
	if res.WordErrors != 0 {
		t.Errorf("fast eDRAM execution corrupted %d words", res.WordErrors)
	}
}

// TestFunctionalEDRAMSlowDecays: when execution takes much longer than
// the retention of weak cells and refresh is disabled, outputs corrupt.
func TestFunctionalEDRAMSlowDecays(t *testing.T) {
	ins, ws := functionalInputs(t)
	buf, err := edram.New(4, 4096, retention.Typical(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// 1 kHz: the layer takes ≈147 model-seconds; every cell's retention
	// (≤100 ms) expires many times over with no refresh.
	res, err := RunFunctional(smallLayer, fixed.Q88, ins, ws, buf, nil, 1, 1e3)
	if err != nil {
		t.Fatal(err)
	}
	if res.WordErrors == 0 {
		t.Error("unrefreshed slow eDRAM execution should corrupt outputs")
	}
}

// TestFunctionalEDRAMSlowWithRefreshIsExact: the same slow execution with
// an in-retention refresh schedule is exact again, at a refresh cost.
func TestFunctionalEDRAMSlowWithRefreshIsExact(t *testing.T) {
	ins, ws := functionalInputs(t)
	buf, err := edram.New(4, 4096, retention.Typical(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// Clock 1 MHz → exec ≈147 ms; refresh every 9 µs (< 10 µs first
	// anchor, so no cell can expire between pulses).
	div, err := memctrl.NewDivider(1e6, 9*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	issuer, err := memctrl.NewIssuer(div, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := issuer.SetFlags([]bool{true, true, true, true}); err != nil {
		t.Fatal(err)
	}
	res, err := RunFunctional(smallLayer, fixed.Q88, ins, ws, buf,
		&Refresher{Issuer: issuer, Target: buf}, 1, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.WordErrors != 0 {
		t.Errorf("refreshed eDRAM execution corrupted %d words", res.WordErrors)
	}
	if res.RefreshWords == 0 {
		t.Error("refresh schedule issued no refreshes")
	}
}

func TestFunctionalValidation(t *testing.T) {
	ins, ws := functionalInputs(t)
	buf, _ := sram.New(1, 64) // too small
	if _, err := RunFunctional(smallLayer, fixed.Q88, ins, ws, buf, nil, 1, 1e6); err == nil {
		t.Error("undersized buffer should fail")
	}
	big, _ := sram.New(4, 4096)
	if _, err := RunFunctional(smallLayer, fixed.Q88, ins[:3], ws, big, nil, 1, 1e6); err == nil {
		t.Error("wrong input size should fail")
	}
	if _, err := RunFunctional(smallLayer, fixed.Q88, ins, ws, big, nil, 0, 1e6); err == nil {
		t.Error("zero MACs/cycle should fail")
	}
	g := smallLayer
	g.N, g.Groups = 8, 2
	if _, err := RunFunctional(g, fixed.Q88, ins, ws, big, nil, 1, 1e6); err == nil {
		t.Error("grouped layer should fail")
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func groups(l models.ConvLayer) int {
	if l.Groups <= 1 {
		return 1
	}
	return l.Groups
}

func closeDur(a, b time.Duration) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1 // ns rounding
}

// TestWalkWithTraceConsistency: the recorded memory trace agrees with the
// walker's aggregate traffic, and the outputs' max write gap under OD
// equals the analytical T2 lifetime.
func TestWalkWithTraceConsistency(t *testing.T) {
	cfg := hw.TestAccelerator()
	l, _ := models.VGG().Layer("conv5_1")
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 14}
	for _, k := range pattern.Kinds {
		w, mem := WalkWithTrace(l, k, ti, cfg)
		c := mem.Count()
		if got := c.Reads[0] + c.Writes[0]; got != w.BufferTraffic.Inputs {
			t.Errorf("%v: trace input words %d != walker %d", k, got, w.BufferTraffic.Inputs)
		}
		if got := c.Reads[2] + c.Writes[2]; got != w.BufferTraffic.Weights {
			t.Errorf("%v: trace weight words %d != walker %d", k, got, w.BufferTraffic.Weights)
		}
		if got := c.Reads[1] + c.Writes[1]; got != w.BufferTraffic.Outputs {
			t.Errorf("%v: trace output words %d != walker %d", k, got, w.BufferTraffic.Outputs)
		}
		if mem.Span() > w.Cycles {
			t.Errorf("%v: trace span %d beyond walker cycles %d", k, mem.Span(), w.Cycles)
		}
	}
	// OD: the outputs' self-refresh interval read straight off the trace
	// equals the analytical lifetime.
	wOD, mem := WalkWithTrace(l, pattern.OD, ti, cfg)
	gap := mem.MaxWriteGap()[1] // outputs
	if got := mem.Duration(gap); !closeDur(got, wOD.Lifetimes.Output) {
		t.Errorf("trace write gap %v != walker output lifetime %v", got, wOD.Lifetimes.Output)
	}
}

// TestTraceSerializationEndToEnd writes a real layer trace and reads it
// back identically.
func TestTraceSerializationEndToEnd(t *testing.T) {
	cfg := hw.TestAccelerator()
	l, _ := models.AlexNet().Layer("conv3")
	_, mem := WalkWithTrace(l, pattern.OD, pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 13}, cfg)
	var buf bytes.Buffer
	if err := mem.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Events) != len(mem.Events) {
		t.Fatalf("event count %d != %d", len(back.Events), len(mem.Events))
	}
	if back.Count() != mem.Count() {
		t.Error("counts differ after round trip")
	}
}

// TestGroupEventCountExact pins the walker's event-count precomputation
// to reality: the trace must come back exactly at the predicted length
// with no spare capacity, proving WalkWithTrace's single up-front Grow
// covers the whole stream (the hot-loop allocation fix).
func TestGroupEventCountExact(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	layers := []models.ConvLayer{}
	for _, net := range []models.Network{models.AlexNet(), models.VGG()} {
		layers = append(layers, net.Layers...)
	}
	for _, l := range layers {
		ti := pattern.Tiling{
			Tm: min(cfg.ArrayM, l.M),
			Tn: min(cfg.ArrayN, l.N),
			Tr: 1,
			Tc: min(cfg.ArrayN, l.C()),
		}
		for _, k := range pattern.Kinds {
			_, mem := WalkWithTrace(l, k, ti, cfg)
			g := l.Groups
			sub := l
			if g > 1 {
				sub.N /= g
				sub.M /= g
				sub.Groups = 1
			} else {
				g = 1
			}
			want := g * groupEventCount(sub, k, ti)
			if len(mem.Events) != want {
				t.Fatalf("%s/%v: predicted %d events, walker emitted %d", l.Name, k, want, len(mem.Events))
			}
			if cap(mem.Events) != want {
				t.Errorf("%s/%v: event slice cap %d != %d — Append reallocated or Grow over-reserved",
					l.Name, k, cap(mem.Events), want)
			}
		}
	}
}
