package sim

import (
	"testing"
	"time"

	"rana/internal/fault"
	"rana/internal/fixed"
	"rana/internal/sram"
)

// These tests drive RunFunctionalAt through a fault.FaultyStorage overlay
// on a perfect (SRAM) buffer, so every output delta is attributable to
// the injected flips alone — the storage-level half of the injection
// pipeline, checked at known offsets.

// TestFunctionalFaultyOutputFlips: flips overlaid on the output region
// surface in the read-back exactly as the mask's XOR patterns, and
// nowhere else.
func TestFunctionalFaultyOutputFlips(t *testing.T) {
	ins, ws := functionalInputs(t)
	buf, err := sram.New(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	din := int(smallLayer.InputWords())
	dw := int(smallLayer.WeightWords())
	dout := int(smallLayer.OutputWords())
	mask := &fault.Mask{Words: dout, Flips: []fault.Flip{
		{Word: 3, Bit: 2}, {Word: 3, Bit: 9}, {Word: 17, Bit: 15},
	}}
	faulty := fault.Wrap(buf, mask, din+dw)
	res, err := RunFunctionalAt(smallLayer, fixed.Q88, ins, ws, faulty, nil, 256, 200e6, 3*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.WordErrors != 2 {
		t.Errorf("word errors = %d, want 2 (two distinct masked words)", res.WordErrors)
	}
	want := map[int]uint16{3: 1<<2 | 1<<9, 17: 1 << 15}
	for i, got := range res.Output {
		if exp := fixed.FromBits(fixed.Bits(res.Reference[i]) ^ want[i]); got != exp {
			t.Errorf("output[%d] = %#04x, want reference %#04x ^ %#04x",
				i, fixed.Bits(got), fixed.Bits(res.Reference[i]), want[i])
		}
	}
	if got := faulty.Injections(); got != 2 {
		t.Errorf("injections = %d, want 2 (outputs are read once, at the end)", got)
	}
}

// TestFunctionalFaultyInputEquivalence: a stuck flip on an input word is
// observationally identical to corrupting that input up front — every
// read sees the same inverted bits, so the faulty run's output must
// match a clean run over pre-corrupted inputs, word for word.
func TestFunctionalFaultyInputEquivalence(t *testing.T) {
	ins, ws := functionalInputs(t)
	const word, pattern = 5, uint16(1<<4 | 1<<12)
	mask := &fault.Mask{Words: len(ins), Flips: []fault.Flip{
		{Word: word, Bit: 4}, {Word: word, Bit: 12},
	}}

	buf, err := sram.New(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	faulty := fault.Wrap(buf, mask, 0)
	res, err := RunFunctionalAt(smallLayer, fixed.Q88, ins, ws, faulty, nil, 256, 200e6, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}

	corrupted := append([]fixed.Word(nil), ins...)
	corrupted[word] = fixed.FromBits(fixed.Bits(corrupted[word]) ^ pattern)
	clean, err := sram.New(4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunFunctionalAt(smallLayer, fixed.Q88, corrupted, ws, clean, nil, 256, 200e6, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if want.WordErrors != 0 {
		t.Fatalf("clean pre-corrupted run reported %d word errors", want.WordErrors)
	}
	for i := range res.Output {
		if res.Output[i] != want.Output[i] {
			t.Fatalf("output[%d] = %#04x, want %#04x (pre-corrupted equivalent)",
				i, fixed.Bits(res.Output[i]), fixed.Bits(want.Output[i]))
		}
	}
	// The faulty run's reference is still the clean convolution, so its
	// word-error count is exactly the corrupted-vs-clean output delta.
	delta := 0
	for i := range want.Output {
		if want.Output[i] != res.Reference[i] {
			delta++
		}
	}
	if res.WordErrors != delta {
		t.Errorf("word errors = %d, want %d", res.WordErrors, delta)
	}
	if delta == 0 {
		t.Error("test premise broken: input flip perturbed no outputs")
	}
}
