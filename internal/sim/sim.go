// Package sim is the cycle-level simulator standing in for the paper's
// RTL simulation (§III-A; DESIGN.md §2). It walks the exact tiled loop
// nest of a computation pattern at tile granularity, advancing a cycle
// clock and recording the events the paper extracts from RTL runs:
//
//   - core-occupancy cycles (performance),
//   - on-chip buffer traffic per data type,
//   - per-region residency windows, whose maxima are the empirical data
//     lifetimes that drive refresh decisions,
//   - refresh pulses, when a memory controller is attached.
//
// Walk's outputs are cross-validated against the closed-form model in
// internal/pattern by this package's tests — the two are independent
// derivations of the same loop semantics.
package sim

import (
	"fmt"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/trace"
)

// Trace is the walker's record of one layer execution.
type Trace struct {
	Layer   models.ConvLayer
	Pattern pattern.Kind
	Tiling  pattern.Tiling

	// Cycles is the total core-occupancy cycle count.
	Cycles uint64
	// ExecTime is Cycles at the configured clock.
	ExecTime time.Duration
	// BufferTraffic counts buffer words moved per data type.
	BufferTraffic pattern.Storage
	// Lifetimes are the empirical maxima of the per-region residency
	// windows observed during the walk.
	Lifetimes pattern.Lifetimes
}

// Walk executes the loop nest of one (possibly grouped) layer under a
// pattern and tiling, at tile granularity. Groups run sequentially;
// totals accumulate, lifetimes are per-group maxima (matching
// pattern.Analyze's conventions).
func Walk(l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config) Trace {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	g := l.Groups
	sub := l
	if g > 1 {
		sub.N /= g
		sub.M /= g
		sub.Groups = 1
	} else {
		g = 1
	}
	tr := Trace{Layer: l, Pattern: k, Tiling: t}
	var sc odScratch
	var clock uint64
	for i := 0; i < g; i++ {
		clock = walkGroup(&tr, sub, k, t, cfg, clock, nil, &sc)
	}
	tr.Cycles = clock
	tr.ExecTime = cyclesDur(clock, cfg)
	return tr
}

// WalkTraversal is Walk under an explicit traversal order. The linear
// traversal reproduces Walk bit for bit; a blocked traversal walks the
// RTC nest — the 2nd-level loop partitioned into contiguous stages
// hoisted above the 3rd-level loop — and its folded residency maxima
// are the empirical check on pattern.AnalyzeTraversal's shrunk
// lifetimes.
func WalkTraversal(l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config, trv pattern.Traversal) Trace {
	if trv.IsLinear() {
		return Walk(l, k, t, cfg)
	}
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	if err := trv.Validate(); err != nil {
		panic(err)
	}
	g := l.Groups
	sub := l
	if g > 1 {
		sub.N /= g
		sub.M /= g
		sub.Groups = 1
	} else {
		g = 1
	}
	tr := Trace{Layer: l, Pattern: k, Tiling: t}
	var sc odScratch
	var clock uint64
	for i := 0; i < g; i++ {
		clock = walkGroupBlocked(&tr, sub, k, t, cfg, trv, clock, &sc)
	}
	tr.Cycles = clock
	tr.ExecTime = cyclesDur(clock, cfg)
	return tr
}

// WalkWithTrace runs Walk while recording every buffer access burst into
// a memory-access trace (§III-A's "memory access tracing"). The trace
// carries the accelerator clock so downstream analyses can convert
// cycles to wall time.
func WalkWithTrace(l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config) (Trace, *trace.Trace) {
	if err := l.Validate(); err != nil {
		panic(err)
	}
	if err := t.Validate(); err != nil {
		panic(err)
	}
	g := l.Groups
	sub := l
	if g > 1 {
		sub.N /= g
		sub.M /= g
		sub.Groups = 1
	} else {
		g = 1
	}
	tr := Trace{Layer: l, Pattern: k, Tiling: t}
	mem := &trace.Trace{FrequencyHz: cfg.FrequencyHz}
	// The tile counts determine the event count exactly; reserving the
	// whole stream up front turns the per-event Append growth (the explore
	// loop's dominant allocation) into a single slab.
	mem.Grow(g * groupEventCount(sub, k, t))
	var sc odScratch
	var clock uint64
	for i := 0; i < g; i++ {
		clock = walkGroup(&tr, sub, k, t, cfg, clock, mem, &sc)
	}
	tr.Cycles = clock
	tr.ExecTime = cyclesDur(clock, cfg)
	return tr, mem
}

// odScratch is the OD pattern's per-region bookkeeping, reused across
// the groups of one walk so grouped layers do not reallocate it per
// group. ensure resizes and clears it for a fresh group.
type odScratch struct {
	lastTouch []uint64
	touched   []bool
}

// ensure returns cleared slices covering n regions.
func (s *odScratch) ensure(n int) ([]uint64, []bool) {
	if cap(s.lastTouch) < n {
		s.lastTouch = make([]uint64, n)
		s.touched = make([]bool, n)
	}
	s.lastTouch = s.lastTouch[:n]
	s.touched = s.touched[:n]
	clear(s.touched) // lastTouch is only read where touched is set
	return s.lastTouch, s.touched
}

// groupEventCount returns the exact number of trace events one
// ungrouped-group walk emits — the mirror of walkGroup's emit calls.
func groupEventCount(l models.ConvLayer, k pattern.Kind, t pattern.Tiling) int {
	nM := ceilDiv(l.M, t.Tm)
	nN := ceilDiv(l.N, t.Tn)
	nRC := ceilDiv(l.R(), t.Tr) * ceilDiv(l.C(), t.Tc)
	switch k {
	case pattern.ID, pattern.WD:
		// Input + weight read per innermost step, output write per (m, rc).
		return 2*nM*nN*nRC + nM*nRC
	case pattern.OD:
		// Weight read per (n, m), input read per step, output write per
		// step plus a read-modify read on every revisit (n > 0).
		return nN*nM + nN*nM*nRC + nM*nRC*(2*nN-1)
	default:
		return 0 // walkGroup panics on unknown kinds before appending
	}
}

// walkGroup walks one ungrouped (sub-)layer starting at the given clock
// and returns the advanced clock. When mem is non-nil, every buffer
// access burst is recorded as a trace event.
func walkGroup(tr *Trace, l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config, clock uint64, mem *trace.Trace, sc *odScratch) uint64 {
	emit := func(cycle uint64, op trace.Op, dt trace.DataType, addr, words uint64) {
		if mem != nil {
			mem.Append(trace.Event{Cycle: cycle, Op: op, Type: dt, Addr: addr, Words: words})
		}
	}
	R, C := l.R(), l.C()
	nM := ceilDiv(l.M, t.Tm)
	nN := ceilDiv(l.N, t.Tn)
	nR := ceilDiv(R, t.Tr)
	nC := ceilDiv(C, t.Tc)
	perTile := perTileCycles(l, t, cfg)

	inTile := uint64(t.Tn) * uint64(t.Th(l)) * uint64(t.Tl(l))
	wTile := uint64(t.Tm) * uint64(t.Tn) * uint64(l.K) * uint64(l.K)
	outTile := uint64(t.Tm) * uint64(t.Tr) * uint64(t.Tc)

	// Residency tracking. For each data type we track the open windows
	// (generation start) and close them when the generation rolls over,
	// folding the span into the lifetime maximum.
	lt := &tr.Lifetimes
	start := clock

	switch k {
	case pattern.ID: // order M (3rd), RC (2nd), N (1st)
		// Inputs: one generation, resident for the whole group.
		for m := 0; m < nM; m++ {
			wStart := clock // this m-group's weights loaded now
			for rc := 0; rc < nR*nC; rc++ {
				for n := 0; n < nN; n++ {
					tr.BufferTraffic.Inputs += inTile
					tr.BufferTraffic.Weights += wTile
					emit(clock, trace.Read, trace.Inputs, uint64(n*nR*nC+rc), inTile)
					emit(clock, trace.Read, trace.Weights, uint64(m*nN+n), wTile)
					clock += perTile
				}
				// Outputs for this (m, rc) complete: stored and shipped.
				tr.BufferTraffic.Outputs += outTile
				emit(clock, trace.Write, trace.Outputs, uint64(m*nR*nC+rc), outTile)
			}
			foldMax(&lt.Weight, clock-wStart, cfg)
		}
		foldMax(&lt.Input, clock-start, cfg)
		// Output lifetime stays 0: accumulation happens in the PEs.

	case pattern.OD: // order N (3rd), M (2nd), RC (1st)
		// Outputs: per-region update gaps. lastTouch[m][rc] tracks the
		// previous write of each output tile region.
		lastTouch, touched := sc.ensure(nM * nR * nC)
		for n := 0; n < nN; n++ {
			slabStart := clock // this n-slab of inputs loaded now
			for m := 0; m < nM; m++ {
				tr.BufferTraffic.Weights += wTile // loaded once per (n, m)
				emit(clock, trace.Read, trace.Weights, uint64(m*nN+n), wTile)
				for rc := 0; rc < nR*nC; rc++ {
					tr.BufferTraffic.Inputs += inTile
					emit(clock, trace.Read, trace.Inputs, uint64(n*nR*nC+rc), inTile)
					clock += perTile
					region := m*nR*nC + rc
					if touched[region] {
						// Read-modify-write of the partial sums; the gap
						// since the previous write is a retention window.
						tr.BufferTraffic.Outputs += 2 * outTile
						emit(clock, trace.Read, trace.Outputs, uint64(region), outTile)
						foldMax(&lt.Output, clock-lastTouch[region], cfg)
					} else {
						tr.BufferTraffic.Outputs += outTile
						touched[region] = true
					}
					emit(clock, trace.Write, trace.Outputs, uint64(region), outTile)
					lastTouch[region] = clock
				}
			}
			foldMax(&lt.Input, clock-slabStart, cfg)
		}
		// Weight windows: loaded per (n, m), live across the RC loop.
		foldMax(&lt.Weight, uint64(nR*nC)*perTile, cfg)

	case pattern.WD: // order RC (3rd), M (2nd), N (1st)
		for rc := 0; rc < nR*nC; rc++ {
			posStart := clock // this position's input slab loaded now
			for m := 0; m < nM; m++ {
				for n := 0; n < nN; n++ {
					tr.BufferTraffic.Inputs += inTile
					tr.BufferTraffic.Weights += wTile
					emit(clock, trace.Read, trace.Inputs, uint64(n*nR*nC+rc), inTile)
					emit(clock, trace.Read, trace.Weights, uint64(m*nN+n), wTile)
					clock += perTile
				}
				tr.BufferTraffic.Outputs += outTile
				emit(clock, trace.Write, trace.Outputs, uint64(m*nR*nC+rc), outTile)
			}
			foldMax(&lt.Input, clock-posStart, cfg)
		}
		foldMax(&lt.Weight, clock-start, cfg)

	default:
		panic(fmt.Sprintf("sim: unknown pattern %v", k))
	}
	return clock
}

// walkGroupBlocked walks one ungrouped (sub-)layer under an RTC blocked
// traversal. The visited tile multiset is identical to walkGroup's —
// only the order changes — so cycle totals and buffer traffic match the
// linear walk exactly; what moves are the residency windows, which the
// folds below close at stage boundaries. Delegates to walkGroup when the
// blocking collapses (extent too small to split).
func walkGroupBlocked(tr *Trace, l models.ConvLayer, k pattern.Kind, t pattern.Tiling, cfg hw.Config, trv pattern.Traversal, clock uint64, sc *odScratch) uint64 {
	R, C := l.R(), l.C()
	nM := ceilDiv(l.M, t.Tm)
	nN := ceilDiv(l.N, t.Tn)
	nRC := ceilDiv(R, t.Tr) * ceilDiv(C, t.Tc)
	perTile := perTileCycles(l, t, cfg)

	inTile := uint64(t.Tn) * uint64(t.Th(l)) * uint64(t.Tl(l))
	wTile := uint64(t.Tm) * uint64(t.Tn) * uint64(l.K) * uint64(l.K)
	outTile := uint64(t.Tm) * uint64(t.Tr) * uint64(t.Tc)
	lt := &tr.Lifetimes

	switch k {
	case pattern.ID: // blocked nest: RC_blk (3rd), M, RC_in, N
		blk, nBlocks := trv.Span(nRC)
		if nBlocks <= 1 {
			return walkGroup(tr, l, k, t, cfg, clock, nil, sc)
		}
		for b0 := 0; b0 < nRC; b0 += blk {
			b1 := b0 + blk
			if b1 > nRC {
				b1 = nRC
			}
			blockStart := clock // this block's inputs staged now
			for m := 0; m < nM; m++ {
				wStart := clock // this m-group's weights re-staged per block
				for rc := b0; rc < b1; rc++ {
					for n := 0; n < nN; n++ {
						tr.BufferTraffic.Inputs += inTile
						tr.BufferTraffic.Weights += wTile
						clock += perTile
					}
					tr.BufferTraffic.Outputs += outTile
				}
				foldMax(&lt.Weight, clock-wStart, cfg)
			}
			foldMax(&lt.Input, clock-blockStart, cfg)
		}
		// Output lifetime stays 0: accumulation happens in the PEs.

	case pattern.OD: // blocked nest: M_blk (3rd), N, M_in, RC
		blk, nBlocks := trv.Span(nM)
		if nBlocks <= 1 {
			return walkGroup(tr, l, k, t, cfg, clock, nil, sc)
		}
		lastTouch, touched := sc.ensure(nM * nRC)
		for m0 := 0; m0 < nM; m0 += blk {
			m1 := m0 + blk
			if m1 > nM {
				m1 = nM
			}
			for n := 0; n < nN; n++ {
				slabStart := clock // this n-slab serves only this block
				for m := m0; m < m1; m++ {
					tr.BufferTraffic.Weights += wTile
					for rc := 0; rc < nRC; rc++ {
						tr.BufferTraffic.Inputs += inTile
						clock += perTile
						region := m*nRC + rc
						if touched[region] {
							tr.BufferTraffic.Outputs += 2 * outTile
							foldMax(&lt.Output, clock-lastTouch[region], cfg)
						} else {
							tr.BufferTraffic.Outputs += outTile
							touched[region] = true
						}
						lastTouch[region] = clock
					}
				}
				foldMax(&lt.Input, clock-slabStart, cfg)
			}
		}
		foldMax(&lt.Weight, uint64(nRC)*perTile, cfg)

	case pattern.WD: // blocked nest: M_blk (3rd), RC, M_in, N
		blk, nBlocks := trv.Span(nM)
		if nBlocks <= 1 {
			return walkGroup(tr, l, k, t, cfg, clock, nil, sc)
		}
		for m0 := 0; m0 < nM; m0 += blk {
			m1 := m0 + blk
			if m1 > nM {
				m1 = nM
			}
			blockStart := clock // this block's weights staged now
			for rc := 0; rc < nRC; rc++ {
				posStart := clock
				for m := m0; m < m1; m++ {
					for n := 0; n < nN; n++ {
						tr.BufferTraffic.Inputs += inTile
						tr.BufferTraffic.Weights += wTile
						clock += perTile
					}
					tr.BufferTraffic.Outputs += outTile
				}
				foldMax(&lt.Input, clock-posStart, cfg)
			}
			foldMax(&lt.Weight, clock-blockStart, cfg)
		}

	default:
		panic(fmt.Sprintf("sim: unknown pattern %v", k))
	}
	return clock
}

// foldMax folds a cycle span into a lifetime maximum.
func foldMax(dst *time.Duration, cycles uint64, cfg hw.Config) {
	d := cyclesDur(cycles, cfg)
	if d > *dst {
		*dst = d
	}
}

// perTileCycles mirrors the array-mapping cycle model of internal/pattern.
func perTileCycles(l models.ConvLayer, t pattern.Tiling, cfg hw.Config) uint64 {
	switch cfg.Mapping {
	case hw.MapOutputPixel:
		return uint64(ceilDiv(t.Tm, cfg.ArrayM)) * uint64(ceilDiv(t.Tr*t.Tc, cfg.ArrayN)) *
			uint64(t.Tn) * uint64(l.K) * uint64(l.K)
	case hw.MapOutputInput:
		return uint64(ceilDiv(t.Tm, cfg.ArrayM)) * uint64(ceilDiv(t.Tn, cfg.ArrayN)) *
			uint64(t.Tr) * uint64(t.Tc) * uint64(l.K) * uint64(l.K)
	default:
		panic(fmt.Sprintf("sim: unknown mapping %v", cfg.Mapping))
	}
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func cyclesDur(cycles uint64, cfg hw.Config) time.Duration {
	return time.Duration(float64(cycles) / cfg.FrequencyHz * float64(time.Second))
}
