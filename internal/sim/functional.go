package sim

import (
	"fmt"
	"time"

	"rana/internal/fixed"
	"rana/internal/memctrl"
	"rana/internal/models"
)

// Storage is the word-addressable buffer the functional simulator drives;
// *edram.Buffer and *sram.Buffer both satisfy it.
type Storage interface {
	Read(addr int, now time.Duration) fixed.Word
	Write(addr int, w fixed.Word, now time.Duration)
	Words() int
}

// Refresher pairs a refresh issuer with the bank-refreshable buffer it
// drives; nil disables refresh entirely.
type Refresher struct {
	Issuer *memctrl.Issuer
	Target memctrl.BankRefresher
}

// FunctionalResult is the outcome of a word-accurate layer execution
// through a buffer model.
type FunctionalResult struct {
	// Output is the layer output read back from the buffer at the end.
	Output []fixed.Word
	// Reference is the same convolution computed directly, bypassing the
	// buffer — what an ideal memory would return.
	Reference []fixed.Word
	// WordErrors counts output words that differ from the reference due
	// to retention decay.
	WordErrors int
	// ExecTime is the modeled execution span.
	ExecTime time.Duration
	// RefreshWords counts word-refresh operations issued.
	RefreshWords uint64
}

// RunFunctional executes one small convolution layer word-by-word through
// the buffer: inputs and weights are preloaded at t=0, every operand read
// happens at its modeled cycle time, outputs are written back and finally
// read out. If refresh is non-nil, due refresh pulses are issued as the
// clock advances — exactly the interplay of data lifetime, retention
// decay and refresh that RANA reasons about, made executable.
//
// The layer must be ungrouped and small enough that inputs + weights +
// outputs fit the buffer; macsPerCycle and frequencyHz set the time
// scale (lower frequency → longer lifetimes → more decay).
func RunFunctional(l models.ConvLayer, f fixed.Format, inputs, weights []fixed.Word,
	buf Storage, refresh *Refresher, macsPerCycle int, frequencyHz float64) (*FunctionalResult, error) {
	return RunFunctionalAt(l, f, inputs, weights, buf, refresh, macsPerCycle, frequencyHz, 0)
}

// RunFunctionalAt is RunFunctional with the model clock starting at
// start instead of zero — required when chaining layers on one buffer so
// decay state and the refresh issuer's schedule stay on a single
// monotonic timeline (internal/exec).
func RunFunctionalAt(l models.ConvLayer, f fixed.Format, inputs, weights []fixed.Word,
	buf Storage, refresh *Refresher, macsPerCycle int, frequencyHz float64,
	start time.Duration) (*FunctionalResult, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if l.Groups > 1 {
		return nil, fmt.Errorf("sim: functional mode does not support grouped layers")
	}
	if macsPerCycle <= 0 || frequencyHz <= 0 {
		return nil, fmt.Errorf("sim: invalid time scale (%d MACs/cycle at %g Hz)", macsPerCycle, frequencyHz)
	}
	din := int(l.InputWords())
	dw := int(l.WeightWords())
	dout := int(l.OutputWords())
	if len(inputs) != din || len(weights) != dw {
		return nil, fmt.Errorf("sim: got %d inputs and %d weights, want %d and %d",
			len(inputs), len(weights), din, dw)
	}
	if din+dw+dout > buf.Words() {
		return nil, fmt.Errorf("sim: layer needs %d words, buffer has %d", din+dw+dout, buf.Words())
	}

	// Buffer layout: [inputs | weights | outputs].
	inBase, wBase, outBase := 0, din, din+dw
	clock := func(cycles uint64) time.Duration {
		return start + time.Duration(float64(cycles)/frequencyHz*float64(time.Second))
	}
	sync := func(now time.Duration) {
		if refresh != nil {
			refresh.Issuer.AdvanceTo(now, refresh.Target)
		}
	}

	// Preload at the start of the layer's window.
	for i, w := range inputs {
		buf.Write(inBase+i, w, start)
	}
	for i, w := range weights {
		buf.Write(wBase+i, w, start)
	}

	R, C := l.R(), l.C()
	inAt := func(n, r, c int) int { return (n*l.H+r)*l.L + c }
	wAt := func(m, n, kr, kc int) int { return ((m*l.N+n)*l.K+kr)*l.K + kc }

	ref := referenceConv(l, f, inputs, weights)
	var macs uint64
	for m := 0; m < l.M; m++ {
		for or := 0; or < R; or++ {
			for oc := 0; oc < C; oc++ {
				var acc fixed.Acc
				for n := 0; n < l.N; n++ {
					for kr := 0; kr < l.K; kr++ {
						ir := or*l.S + kr - l.P
						if ir < 0 || ir >= l.H {
							continue
						}
						for kc := 0; kc < l.K; kc++ {
							ic := oc*l.S + kc - l.P
							if ic < 0 || ic >= l.L {
								continue
							}
							now := clock(macs / uint64(macsPerCycle))
							sync(now)
							a := buf.Read(inBase+inAt(n, ir, ic), now)
							b := buf.Read(wBase+wAt(m, n, kr, kc), now)
							acc = fixed.MAC(acc, a, b)
							macs++
						}
					}
				}
				now := clock(macs / uint64(macsPerCycle))
				buf.Write(outBase+(m*R+or)*C+oc, f.Fold(acc), now)
			}
		}
	}

	end := clock(macs / uint64(macsPerCycle))
	sync(end)
	res := &FunctionalResult{Reference: ref, ExecTime: end - start}
	res.Output = make([]fixed.Word, dout)
	for i := range res.Output {
		res.Output[i] = buf.Read(outBase+i, end)
		if res.Output[i] != ref[i] {
			res.WordErrors++
		}
	}
	if refresh != nil {
		res.RefreshWords = refresh.Issuer.Issued()
	}
	return res, nil
}

// referenceConv computes the convolution directly on the word arrays.
func referenceConv(l models.ConvLayer, f fixed.Format, inputs, weights []fixed.Word) []fixed.Word {
	R, C := l.R(), l.C()
	out := make([]fixed.Word, l.OutputWords())
	inAt := func(n, r, c int) int { return (n*l.H+r)*l.L + c }
	wAt := func(m, n, kr, kc int) int { return ((m*l.N+n)*l.K+kr)*l.K + kc }
	for m := 0; m < l.M; m++ {
		for or := 0; or < R; or++ {
			for oc := 0; oc < C; oc++ {
				var acc fixed.Acc
				for n := 0; n < l.N; n++ {
					for kr := 0; kr < l.K; kr++ {
						ir := or*l.S + kr - l.P
						if ir < 0 || ir >= l.H {
							continue
						}
						for kc := 0; kc < l.K; kc++ {
							ic := oc*l.S + kc - l.P
							if ic < 0 || ic >= l.L {
								continue
							}
							acc = fixed.MAC(acc, inputs[inAt(n, ir, ic)], weights[wAt(m, n, kr, kc)])
						}
					}
				}
				out[(m*R+or)*C+oc] = f.Fold(acc)
			}
		}
	}
	return out
}
