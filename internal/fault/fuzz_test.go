package fault

import (
	"bytes"
	"math"
	"testing"

	"rana/internal/fixed"
)

// FuzzFaultMask feeds hostile shapes at mask generation: whatever the
// inputs, New must either reject them or produce a mask whose flips are
// all in range, strictly sorted, and reproducible byte for byte.
func FuzzFaultMask(f *testing.F) {
	f.Add(16, 0.01, uint64(1))
	f.Add(0, 0.0, uint64(0))
	f.Add(1, 1.0, uint64(42))
	f.Add(-5, 0.5, uint64(7))
	f.Add(1<<30, 0.5, uint64(7))
	f.Add(8, math.NaN(), uint64(3))
	f.Add(8, math.Inf(1), uint64(3))
	f.Add(8, -1e-9, uint64(3))
	f.Fuzz(func(t *testing.T, words int, rate float64, seed uint64) {
		// Cap fuzz extents well under MaxWords so iterations stay fast;
		// validation of the real bound is covered by unit tests.
		if words > 1<<12 {
			words = (words % (1 << 12)) + 1
		}
		m, err := New(words, rate, seed)
		if err != nil {
			return
		}
		prev := Flip{Word: -1}
		for _, fl := range m.Flips {
			if fl.Word < 0 || fl.Word >= m.Words {
				t.Fatalf("flip word %d outside [0, %d)", fl.Word, m.Words)
			}
			if fl.Bit >= fixed.WordBits {
				t.Fatalf("flip bit %d outside [0, %d)", fl.Bit, fixed.WordBits)
			}
			if fl.Word < prev.Word || (fl.Word == prev.Word && fl.Bit <= prev.Bit) {
				t.Fatalf("flips not strictly sorted: %v after %v", fl, prev)
			}
			prev = fl
		}
		again, err := New(words, rate, seed)
		if err != nil {
			t.Fatalf("second draw failed where first succeeded: %v", err)
		}
		if !bytes.Equal(m.Bytes(), again.Bytes()) {
			t.Fatal("same inputs drew different masks")
		}
		// Apply must stay in bounds even on a slice shorter than the
		// mask extent, and XOR twice must be the identity.
		short := make([]fixed.Word, words/2)
		m.Apply(short)
		m.Apply(short)
		for i, w := range short {
			if w != 0 {
				t.Fatalf("double Apply left word %d = %v", i, w)
			}
		}
	})
}
