// Package fault is the deterministic fault-injection engine behind the
// error-budget admission pipeline: it turns a memory backend's failure
// model — a per-point raw bit-error rate (internal/mem), scaled by how
// long each data region actually sits in the decaying cells
// (internal/sim's per-region lifetimes) relative to the refresh interval
// — into seeded bit-flip masks over 16-bit fixed-point words.
//
// The masks are pure data: a sorted list of (word, bit) flips with a
// canonical byte serialization and hash, so the verification oracle can
// check reproducibility literally (same seed + same (backend, point,
// plan) ⇒ byte-identical masks). They drive two consumers:
//
//   - the functional simulator, via Wrap's Storage adapter that XORs
//     mask bits into reads at known addresses (sim.RunFunctional);
//   - the training substrate, via rate-matched bits.Injector fault
//     models in the real nn forward pass (nn.FaultModel / nn.FaultPlan).
//
// Everything is seeded SplitMix64; nothing here touches global state.
package fault

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"time"

	"rana/internal/bits"
	"rana/internal/fixed"
	"rana/internal/retention"
)

// MaxWords bounds a mask's word extent. Masks are drawn bit by bit, so
// the extent bounds work and memory against hostile sizes; callers
// sampling a large region window a prefix instead (the flip statistics
// are position-independent).
const MaxWords = 1 << 22

// Flip is one bit flip: bit Bit of word Word is inverted.
type Flip struct {
	Word int
	Bit  uint8
}

// Mask is a deterministic set of bit flips over a region of words.
// Construct with New; the zero value is an empty mask over zero words.
type Mask struct {
	// Words is the region extent the mask was drawn over.
	Words int
	// Rate is the per-bit flip probability the mask was drawn at.
	Rate float64
	// Seed is the SplitMix64 seed the draw consumed.
	Seed uint64
	// Flips are the drawn flips, sorted by (Word, Bit). Every Word is in
	// [0, Words) and every Bit in [0, fixed.WordBits).
	Flips []Flip
}

// New draws a mask over words 16-bit words: every bit flips
// independently with probability rate. The draw is a fixed-order scan
// (word-major, bit-minor) over one SplitMix64 stream, so the same
// (words, rate, seed) triple always yields the same flips — the
// byte-identity contract the differential oracle checks.
//
// rate is the *flip* probability. A raw bit-error rate r in the
// injector's convention (a failed bit takes a fair-coin value, changing
// with probability r/2) converts via FlipRate.
func New(words int, rate float64, seed uint64) (*Mask, error) {
	if words < 0 || words > MaxWords {
		return nil, fmt.Errorf("fault: mask extent %d outside [0, %d]", words, MaxWords)
	}
	if rate < 0 || rate > 1 || math.IsNaN(rate) {
		return nil, fmt.Errorf("fault: flip rate %g outside [0, 1]", rate)
	}
	m := &Mask{Words: words, Rate: rate, Seed: seed}
	if rate == 0 || words == 0 {
		return m, nil
	}
	rng := bits.NewSplitMix64(seed)
	for w := 0; w < words; w++ {
		for b := 0; b < fixed.WordBits; b++ {
			if rng.Float64() < rate {
				m.Flips = append(m.Flips, Flip{Word: w, Bit: uint8(b)})
			}
		}
	}
	return m, nil
}

// FlipRate converts a raw bit-error rate in the injector's convention
// (failed bits take fair-coin values) into the observable per-bit flip
// probability: rate/2.
func FlipRate(ber float64) float64 { return ber / 2 }

// XorWords renders the mask as per-word XOR patterns, keyed by word
// index. Words without flips are absent.
func (m *Mask) XorWords() map[int]uint16 {
	xs := make(map[int]uint16, len(m.Flips))
	for _, f := range m.Flips {
		xs[f.Word] |= 1 << uint(f.Bit)
	}
	return xs
}

// Apply XORs the mask into ws in place and returns the number of words
// changed. Flips beyond len(ws) are ignored, so a mask drawn over a
// region prefix applies cleanly to the full region.
func (m *Mask) Apply(ws []fixed.Word) int {
	changed := 0
	last := -1
	for _, f := range m.Flips {
		if f.Word < 0 || f.Word >= len(ws) || f.Bit >= fixed.WordBits {
			continue
		}
		ws[f.Word] = fixed.FromBits(fixed.Bits(ws[f.Word]) ^ 1<<uint(f.Bit))
		if f.Word != last {
			changed++
			last = f.Word
		}
	}
	return changed
}

// Bytes is the canonical serialization: a fixed header (extent, rate
// bits, seed, flip count) followed by each flip as (word, bit), all
// little-endian. Two masks are byte-identical iff they are equal.
func (m *Mask) Bytes() []byte {
	buf := make([]byte, 0, 32+9*len(m.Flips))
	var h [32]byte
	binary.LittleEndian.PutUint64(h[0:], uint64(m.Words))
	binary.LittleEndian.PutUint64(h[8:], math.Float64bits(m.Rate))
	binary.LittleEndian.PutUint64(h[16:], m.Seed)
	binary.LittleEndian.PutUint64(h[24:], uint64(len(m.Flips)))
	buf = append(buf, h[:]...)
	for _, f := range m.Flips {
		var e [9]byte
		binary.LittleEndian.PutUint64(e[0:], uint64(f.Word))
		e[8] = f.Bit
		buf = append(buf, e[:]...)
	}
	return buf
}

// Hash is the SHA-256 of Bytes, hex-encoded — the reproducibility
// fingerprint the oracle and CI compare.
func (m *Mask) Hash() string {
	sum := sha256.Sum256(m.Bytes())
	return hex.EncodeToString(sum[:])
}

// ExposureRate scales a point's raw bit-error rate by a data region's
// actual cell exposure (DESIGN.md §14): the quoted rate is per refresh
// interval of residency on the scaled retention curve, and a region
// whose lifetime spans several intervals accumulates independent
// exposure per interval:
//
//	effective = 1 - (1 - ber)^(lifetime/interval)
//
// A region that never rests in the cells (lifetime ≤ 0) sees no faults;
// with no refresh at all (interval ≤ 0) the quoted rate applies once.
// The result is clamped to [0, 1].
func ExposureRate(ber float64, lifetime, interval time.Duration) float64 {
	if ber <= 0 || lifetime <= 0 {
		return 0
	}
	if ber >= 1 {
		return 1
	}
	if interval <= 0 {
		return ber
	}
	periods := float64(lifetime) / float64(interval)
	eff := 1 - math.Pow(1-ber, periods)
	if eff < 0 {
		return 0
	}
	if eff > 1 {
		return 1
	}
	return eff
}

// MixSeed derives a stream seed from a base seed and a label (e.g.
// "approx-dram@v0.8/conv1"): FNV-1a over the label folded into the base
// through one SplitMix64 step. Distinct labels get well-separated
// streams; the same (base, label) always maps to the same seed.
func MixSeed(base uint64, label string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= prime64
	}
	return bits.NewSplitMix64(base ^ h).Uint64()
}

// SampleFailureRate estimates the weakest-cell failure probability at a
// lifetime empirically: the fraction of n cells, sampled from the
// retention distribution, whose retention time falls below the
// lifetime. It is the Monte-Carlo view of dist.FailureRate(lifetime) —
// the cross-check tying the analytic CDF the admission path uses to the
// per-cell sampling internal/edram's functional buffer performs.
func SampleFailureRate(dist *retention.Distribution, lifetime time.Duration, n int, seed uint64) float64 {
	if n <= 0 {
		return 0
	}
	rng := bits.NewSplitMix64(seed)
	failed := 0
	for i := 0; i < n; i++ {
		if dist.SampleCellRetention(rng) < lifetime {
			failed++
		}
	}
	return float64(failed) / float64(n)
}
