package fault

import (
	"time"

	"rana/internal/fixed"
)

// Storage is the word-addressed buffer contract the functional
// simulator drives. It mirrors sim.Storage structurally so the wrapper
// satisfies it without this package importing the simulator.
type Storage interface {
	Read(addr int, now time.Duration) fixed.Word
	Write(addr int, w fixed.Word, now time.Duration)
	Words() int
}

// FaultyStorage overlays a mask on a Storage: reads of masked addresses
// come back with the mask's bits inverted, modeling cells stuck in the
// flipped state for the run (every read of a failed word sees the same
// corruption, as a decayed eDRAM cell would present until rewritten).
// Writes and Words pass through untouched, so writing a masked address
// re-arms the flip for the next read.
type FaultyStorage struct {
	inner Storage
	// xors holds the per-word XOR patterns, offset by base.
	xors map[int]uint16
	base int
	// injections counts reads that came back corrupted.
	injections int
}

// Wrap overlays mask onto s, with the mask's word 0 landing at address
// base. Flips outside [0, s.Words()) never fire.
func Wrap(s Storage, mask *Mask, base int) *FaultyStorage {
	fs := &FaultyStorage{inner: s, xors: mask.XorWords(), base: base}
	return fs
}

// Read returns the stored word with any mask bits for addr inverted.
func (fs *FaultyStorage) Read(addr int, now time.Duration) fixed.Word {
	w := fs.inner.Read(addr, now)
	if x, ok := fs.xors[addr-fs.base]; ok && x != 0 {
		w = fixed.FromBits(fixed.Bits(w) ^ x)
		fs.injections++
	}
	return w
}

// Write passes through to the wrapped storage.
func (fs *FaultyStorage) Write(addr int, w fixed.Word, now time.Duration) {
	fs.inner.Write(addr, w, now)
}

// Words passes through to the wrapped storage.
func (fs *FaultyStorage) Words() int { return fs.inner.Words() }

// Injections reports how many reads were served corrupted.
func (fs *FaultyStorage) Injections() int { return fs.injections }
