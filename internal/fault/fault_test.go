package fault

import (
	"bytes"
	"math"
	"testing"
	"time"

	"rana/internal/fixed"
	"rana/internal/retention"
)

func TestNewMaskDeterministic(t *testing.T) {
	a, err := New(512, 0.01, 42)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, err := New(512, 0.01, 42)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same (words, rate, seed) produced different masks")
	}
	if a.Hash() != b.Hash() {
		t.Fatal("same mask, different hash")
	}
	c, err := New(512, 0.01, 43)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("different seeds produced identical non-trivial masks")
	}
}

func TestNewMaskBounds(t *testing.T) {
	m, err := New(256, 0.05, 7)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if len(m.Flips) == 0 {
		t.Fatal("rate 0.05 over 4096 bits drew no flips")
	}
	prev := Flip{Word: -1}
	for _, f := range m.Flips {
		if f.Word < 0 || f.Word >= m.Words {
			t.Fatalf("flip word %d outside [0, %d)", f.Word, m.Words)
		}
		if f.Bit >= fixed.WordBits {
			t.Fatalf("flip bit %d outside [0, %d)", f.Bit, fixed.WordBits)
		}
		if f.Word < prev.Word || (f.Word == prev.Word && f.Bit <= prev.Bit) {
			t.Fatalf("flips not strictly sorted: %v after %v", f, prev)
		}
		prev = f
	}
}

func TestNewMaskErrors(t *testing.T) {
	for _, tc := range []struct {
		name  string
		words int
		rate  float64
	}{
		{"negative words", -1, 0.1},
		{"oversized words", MaxWords + 1, 0.1},
		{"negative rate", 8, -0.1},
		{"rate above one", 8, 1.5},
		{"nan rate", 8, math.NaN()},
	} {
		if _, err := New(tc.words, tc.rate, 1); err == nil {
			t.Errorf("%s: New(%d, %g) succeeded, want error", tc.name, tc.words, tc.rate)
		}
	}
}

func TestMaskZeroRateAndZeroWords(t *testing.T) {
	for _, tc := range []struct {
		words int
		rate  float64
	}{{100, 0}, {0, 0.5}} {
		m, err := New(tc.words, tc.rate, 9)
		if err != nil {
			t.Fatalf("New(%d, %g): %v", tc.words, tc.rate, err)
		}
		if len(m.Flips) != 0 {
			t.Errorf("New(%d, %g) drew %d flips, want 0", tc.words, tc.rate, len(m.Flips))
		}
	}
}

func TestMaskApply(t *testing.T) {
	m, err := New(64, 0.08, 11)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ws := make([]fixed.Word, 64)
	orig := make([]fixed.Word, 64)
	copy(orig, ws)
	changed := m.Apply(ws)
	if changed != len(m.XorWords()) {
		t.Errorf("Apply changed %d words, mask touches %d", changed, len(m.XorWords()))
	}
	for i, x := range m.XorWords() {
		if got := fixed.Bits(ws[i]) ^ fixed.Bits(orig[i]); got != x {
			t.Errorf("word %d: xor delta %#x, mask pattern %#x", i, got, x)
		}
	}
	// Applying again restores the original words (XOR involution).
	m.Apply(ws)
	for i := range ws {
		if ws[i] != orig[i] {
			t.Fatalf("double Apply did not restore word %d", i)
		}
	}
}

func TestMaskApplyShortSlice(t *testing.T) {
	m, err := New(128, 0.2, 3)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ws := make([]fixed.Word, 16) // shorter than the mask extent
	changed := m.Apply(ws)
	inRange := 0
	for w := range m.XorWords() {
		if w < len(ws) {
			inRange++
		}
	}
	if changed != inRange {
		t.Errorf("Apply on short slice changed %d words, want %d", changed, inRange)
	}
}

func TestMaskFlipRateStatistics(t *testing.T) {
	// 4096 words × 16 bits at flip rate 0.01 ⇒ ~655 expected flips;
	// accept ±5σ (σ ≈ √(n·p·(1−p)) ≈ 25.5).
	m, err := New(4096, 0.01, 77)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n := float64(4096 * fixed.WordBits)
	want := n * 0.01
	sigma := math.Sqrt(n * 0.01 * 0.99)
	if got := float64(len(m.Flips)); math.Abs(got-want) > 5*sigma {
		t.Errorf("drew %g flips, want %g ± %g", got, want, 5*sigma)
	}
}

func TestFlipRate(t *testing.T) {
	if got := FlipRate(1e-5); got != 5e-6 {
		t.Errorf("FlipRate(1e-5) = %g, want 5e-6", got)
	}
}

func TestExposureRate(t *testing.T) {
	const us = time.Microsecond
	for _, tc := range []struct {
		name     string
		ber      float64
		lifetime time.Duration
		interval time.Duration
		want     float64
	}{
		{"zero ber", 0, 100 * us, 50 * us, 0},
		{"zero lifetime", 1e-5, 0, 50 * us, 0},
		{"negative lifetime", 1e-5, -us, 50 * us, 0},
		{"no refresh quotes raw rate", 1e-5, 100 * us, 0, 1e-5},
		{"one interval quotes raw rate", 1e-5, 50 * us, 50 * us, 1e-5},
		{"saturating ber", 1, 100 * us, 50 * us, 1},
	} {
		if got := ExposureRate(tc.ber, tc.lifetime, tc.interval); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: ExposureRate = %g, want %g", tc.name, got, tc.want)
		}
	}
	// Two intervals of residency ≈ doubles a small rate: 1-(1-r)² = 2r-r².
	got := ExposureRate(1e-5, 100*us, 50*us)
	want := 2e-5 - 1e-10
	if math.Abs(got-want) > 1e-15 {
		t.Errorf("two-interval exposure = %g, want %g", got, want)
	}
	// Monotone in lifetime.
	if ExposureRate(1e-4, 400*us, 50*us) <= ExposureRate(1e-4, 100*us, 50*us) {
		t.Error("exposure not monotone in lifetime")
	}
	// Always clamped to [0, 1].
	if r := ExposureRate(0.5, time.Second, time.Nanosecond); r < 0 || r > 1 {
		t.Errorf("exposure %g outside [0, 1]", r)
	}
}

func TestMixSeed(t *testing.T) {
	a := MixSeed(1, "approx-dram@v0.8/conv1")
	b := MixSeed(1, "approx-dram@v0.8/conv1")
	if a != b {
		t.Fatal("MixSeed not deterministic")
	}
	if a == MixSeed(1, "approx-dram@v0.8/conv2") {
		t.Error("distinct labels collided")
	}
	if a == MixSeed(2, "approx-dram@v0.8/conv1") {
		t.Error("distinct bases collided")
	}
}

func TestSampleFailureRateMatchesDistribution(t *testing.T) {
	dist := retention.Typical()
	for _, lifetime := range []time.Duration{
		retention.TypicalRetentionTime,
		retention.TolerableRetentionTime,
		8 * time.Millisecond,
	} {
		want := dist.FailureRate(lifetime)
		got := SampleFailureRate(dist, lifetime, 200000, 5)
		// Monte-Carlo tolerance: 5σ of a binomial proportion plus an
		// absolute floor for the tiny rates.
		tol := 5*math.Sqrt(want*(1-want)/200000) + 1e-4
		if math.Abs(got-want) > tol {
			t.Errorf("lifetime %v: sampled rate %g, analytic %g (tol %g)", lifetime, got, want, tol)
		}
	}
	if got := SampleFailureRate(dist, time.Millisecond, 0, 1); got != 0 {
		t.Errorf("n=0 sample rate = %g, want 0", got)
	}
}

// flatStorage is a plain word array for exercising the wrapper.
type flatStorage struct{ ws []fixed.Word }

func (s *flatStorage) Read(addr int, _ time.Duration) fixed.Word     { return s.ws[addr] }
func (s *flatStorage) Write(addr int, w fixed.Word, _ time.Duration) { s.ws[addr] = w }
func (s *flatStorage) Words() int                                    { return len(s.ws) }

func TestFaultyStorage(t *testing.T) {
	inner := &flatStorage{ws: make([]fixed.Word, 32)}
	for i := range inner.ws {
		inner.ws[i] = fixed.Word(i)
	}
	mask := &Mask{Words: 8, Flips: []Flip{{Word: 2, Bit: 0}, {Word: 2, Bit: 3}, {Word: 5, Bit: 15}}}
	fs := Wrap(inner, mask, 10) // mask word 0 lands at address 10

	if got := fs.Read(2, 0); got != inner.ws[2] {
		t.Errorf("unmasked read changed: %v != %v", got, inner.ws[2])
	}
	want := fixed.FromBits(fixed.Bits(inner.ws[12]) ^ 0b1001)
	if got := fs.Read(12, 0); got != want {
		t.Errorf("masked read = %v, want %v", got, want)
	}
	// The flip persists across reads: stuck-cell semantics.
	if got := fs.Read(12, 0); got != want {
		t.Errorf("second masked read = %v, want %v", got, want)
	}
	if got := fs.Read(15, 0); got != fixed.FromBits(fixed.Bits(inner.ws[15])^(1<<15)) {
		t.Errorf("high-bit masked read = %v", got)
	}
	// Writing through re-arms the same flip for the next read.
	fs.Write(12, 100, 0)
	if got := fs.Read(12, 0); got != fixed.FromBits(fixed.Bits(fixed.Word(100))^0b1001) {
		t.Errorf("read-after-write = %v, want rewritten value with mask", got)
	}
	if fs.Injections() != 4 {
		t.Errorf("Injections = %d, want 4", fs.Injections())
	}
	if fs.Words() != 32 {
		t.Errorf("Words = %d, want 32", fs.Words())
	}
}
