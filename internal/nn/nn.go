// Package nn is the from-scratch CNN training substrate behind the
// retention-aware training method (§IV-B, Fig. 9). It provides the layer
// types the method needs (convolution, pooling, dense, ReLU, softmax),
// float backpropagation with momentum SGD, and — the RANA-specific part —
// a fault hook that quantizes each layer's inputs and weights to the
// accelerator's 16-bit fixed-point format and injects bit-level retention
// failures during the forward pass.
//
// Layers process one sample at a time (channels-first tensors); batching
// is a loop with gradient accumulation, which keeps kernels simple and
// deterministic.
package nn

import (
	"fmt"
	"math"

	"rana/internal/bits"
	"rana/internal/fixed"
	"rana/internal/tensor"
)

// FaultModel describes the deployment datapath emulated during training:
// values pass through the fixed-point grid and suffer bit-level retention
// failures at the injector's rate (Fig. 9 "Adding Layer Masks").
type FaultModel struct {
	// Injector supplies per-bit failures; nil means no corruption.
	Injector *bits.Injector
	// Format is the fixed-point grid (16-bit).
	Format fixed.Format
	// Quantize applies the grid even with a nil injector (fixed-point
	// pretraining).
	Quantize bool
	// Positions restricts corruption to the word-bit positions set in
	// the mask; 0 (or bits.AllBits) leaves every bit eligible. This is
	// the bit-position-aware hook the fault-injection engine uses to
	// model failures confined to specific cell columns.
	Positions uint16
}

// apply passes t through the emulated datapath in place.
func (f *FaultModel) apply(t *tensor.Tensor) {
	if f == nil {
		return
	}
	if f.Injector != nil && f.Injector.Rate() > 0 {
		if f.Positions != 0 && f.Positions != bits.AllBits {
			t.CorruptAt(f.Injector, f.Format, f.Positions)
		} else {
			t.Corrupt(f.Injector, f.Format)
		}
		return
	}
	if f.Quantize {
		t.Quantize(f.Format)
	}
}

// FaultPlan assigns a fault model per layer name — the per-layer view
// the scheduler's (backend, operating point) admission produces, where
// each layer's data may rest in cells with a different effective error
// rate. Layers absent from the plan run fault-free (nil model).
type FaultPlan map[string]*FaultModel

// Param is one learnable parameter with its gradient and momentum buffer.
type Param struct {
	W, G, V *tensor.Tensor
}

func newParam(shape ...int) *Param {
	return &Param{W: tensor.New(shape...), G: tensor.New(shape...), V: tensor.New(shape...)}
}

// Layer is one network stage.
type Layer interface {
	// Name identifies the layer in diagnostics.
	Name() string
	// Forward maps the input to the output, caching what Backward needs.
	// fault, when non-nil, is applied to the layer's inputs and weights
	// (the Fig. 9 masks).
	Forward(x *tensor.Tensor, fault *FaultModel) *tensor.Tensor
	// Backward maps the output gradient to the input gradient,
	// accumulating parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the learnable parameters (may be empty).
	Params() []*Param
}

// --- Conv2D ---

// Conv2D is a same-layout convolution: (C,H,W) → (M,R,Cout).
type Conv2D struct {
	name         string
	InC, OutC    int
	K, S, P      int
	Weight, Bias *Param
	lastIn       *tensor.Tensor // input as seen by the kernel (post-fault)
	lastW        *tensor.Tensor // weights as seen by the kernel
}

// NewConv2D returns a conv layer with He-initialized weights.
func NewConv2D(name string, inC, outC, k, s, p int, rng *bits.SplitMix64) *Conv2D {
	c := &Conv2D{
		name: name, InC: inC, OutC: outC, K: k, S: s, P: p,
		Weight: newParam(outC, inC, k, k),
		Bias:   newParam(outC),
	}
	std := math.Sqrt(2.0 / float64(inC*k*k))
	c.Weight.W.FillRandn(rng, std)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight, c.Bias} }

// outDim returns the output spatial size for input size h.
func (c *Conv2D) outDim(h int) int { return (h+2*c.P-c.K)/c.S + 1 }

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, fault *FaultModel) *tensor.Tensor {
	if x.Dim(0) != c.InC {
		panic(fmt.Sprintf("nn: %s: input channels %d, want %d", c.name, x.Dim(0), c.InC))
	}
	in := x.Clone()
	fault.apply(in)
	w := c.Weight.W.Clone()
	fault.apply(w)
	c.lastIn, c.lastW = in, w

	h, l := in.Dim(1), in.Dim(2)
	r, cc := c.outDim(h), c.outDim(l)
	out := tensor.New(c.OutC, r, cc)
	for m := 0; m < c.OutC; m++ {
		b := c.Bias.W.Data[m]
		for or := 0; or < r; or++ {
			for oc := 0; oc < cc; oc++ {
				sum := b
				for n := 0; n < c.InC; n++ {
					for kr := 0; kr < c.K; kr++ {
						ir := or*c.S + kr - c.P
						if ir < 0 || ir >= h {
							continue
						}
						for kc := 0; kc < c.K; kc++ {
							ic := oc*c.S + kc - c.P
							if ic < 0 || ic >= l {
								continue
							}
							sum += in.At(n, ir, ic) * w.At(m, n, kr, kc)
						}
					}
				}
				out.Set(sum, m, or, oc)
			}
		}
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	in, w := c.lastIn, c.lastW
	h, l := in.Dim(1), in.Dim(2)
	r, cc := grad.Dim(1), grad.Dim(2)
	dx := tensor.New(c.InC, h, l)
	for m := 0; m < c.OutC; m++ {
		for or := 0; or < r; or++ {
			for oc := 0; oc < cc; oc++ {
				g := grad.At(m, or, oc)
				if g == 0 {
					continue
				}
				c.Bias.G.Data[m] += g
				for n := 0; n < c.InC; n++ {
					for kr := 0; kr < c.K; kr++ {
						ir := or*c.S + kr - c.P
						if ir < 0 || ir >= h {
							continue
						}
						for kc := 0; kc < c.K; kc++ {
							ic := oc*c.S + kc - c.P
							if ic < 0 || ic >= l {
								continue
							}
							c.Weight.G.Set(c.Weight.G.At(m, n, kr, kc)+g*in.At(n, ir, ic), m, n, kr, kc)
							dx.Set(dx.At(n, ir, ic)+g*w.At(m, n, kr, kc), n, ir, ic)
						}
					}
				}
			}
		}
	}
	return dx
}

// --- ReLU ---

// ReLU is the rectifier activation.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, _ *FaultModel) *tensor.Tensor {
	out := x.Clone()
	r.mask = make([]bool, out.Len())
	for i, v := range out.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := grad.Clone()
	for i := range dx.Data {
		if !r.mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// --- MaxPool2D ---

// MaxPool2D subsamples each channel with a k×k window of stride k.
type MaxPool2D struct {
	name   string
	K      int
	argmax []int
	inDims [3]int
}

// NewMaxPool2D returns a pooling layer.
func NewMaxPool2D(name string, k int) *MaxPool2D { return &MaxPool2D{name: name, K: k} }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *MaxPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, _ *FaultModel) *tensor.Tensor {
	ch, h, l := x.Dim(0), x.Dim(1), x.Dim(2)
	p.inDims = [3]int{ch, h, l}
	r, cc := h/p.K, l/p.K
	out := tensor.New(ch, r, cc)
	p.argmax = make([]int, out.Len())
	i := 0
	for n := 0; n < ch; n++ {
		for or := 0; or < r; or++ {
			for oc := 0; oc < cc; oc++ {
				best := math.Inf(-1)
				bi := 0
				for kr := 0; kr < p.K; kr++ {
					for kc := 0; kc < p.K; kc++ {
						ir, ic := or*p.K+kr, oc*p.K+kc
						v := x.At(n, ir, ic)
						if v > best {
							best = v
							bi = (n*h+ir)*l + ic
						}
					}
				}
				out.Set(best, n, or, oc)
				p.argmax[i] = bi
				i++
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inDims[0], p.inDims[1], p.inDims[2])
	for i, g := range grad.Data {
		dx.Data[p.argmax[i]] += g
	}
	return dx
}

// --- Dense ---

// Dense is a fully connected layer over the flattened input.
type Dense struct {
	name         string
	In, Out      int
	Weight, Bias *Param
	lastIn       *tensor.Tensor
	lastW        *tensor.Tensor
	inShape      []int
}

// NewDense returns a dense layer with He-initialized weights.
func NewDense(name string, in, out int, rng *bits.SplitMix64) *Dense {
	d := &Dense{name: name, In: in, Out: out,
		Weight: newParam(out, in), Bias: newParam(out)}
	d.Weight.W.FillRandn(rng, math.Sqrt(2.0/float64(in)))
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return d.name }

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.Weight, d.Bias} }

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, fault *FaultModel) *tensor.Tensor {
	if x.Len() != d.In {
		panic(fmt.Sprintf("nn: %s: input size %d, want %d", d.name, x.Len(), d.In))
	}
	d.inShape = x.Shape()
	in := x.Clone()
	fault.apply(in)
	w := d.Weight.W.Clone()
	fault.apply(w)
	d.lastIn, d.lastW = in, w
	out := tensor.New(d.Out)
	for o := 0; o < d.Out; o++ {
		sum := d.Bias.W.Data[o]
		for i := 0; i < d.In; i++ {
			sum += w.Data[o*d.In+i] * in.Data[i]
		}
		out.Data[o] = sum
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dxFlat := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		g := grad.Data[o]
		d.Bias.G.Data[o] += g
		for i := 0; i < d.In; i++ {
			d.Weight.G.Data[o*d.In+i] += g * d.lastIn.Data[i]
			dxFlat[i] += g * d.lastW.Data[o*d.In+i]
		}
	}
	dx := tensor.New(d.inShape...)
	copy(dx.Data, dxFlat)
	return dx
}

// --- Network ---

// Network is an ordered layer stack.
type Network struct {
	Layers []Layer
}

// Forward runs the stack; fault (may be nil) is applied per layer.
func (n *Network) Forward(x *tensor.Tensor, fault *FaultModel) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, fault)
	}
	return x
}

// ForwardPlan runs the stack with a per-layer fault assignment: each
// layer sees plan[layer.Name()], or no fault when absent. A nil plan is
// a fault-free forward pass.
func (n *Network) ForwardPlan(x *tensor.Tensor, plan FaultPlan) *tensor.Tensor {
	for _, l := range n.Layers {
		x = l.Forward(x, plan[l.Name()])
	}
	return x
}

// PredictPlan returns the argmax class under a per-layer fault plan.
func (n *Network) PredictPlan(x *tensor.Tensor, plan FaultPlan) int {
	return n.ForwardPlan(x, plan).ArgMax()
}

// Backward runs the stack in reverse from the loss gradient.
func (n *Network) Backward(grad *tensor.Tensor) {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		grad = n.Layers[i].Backward(grad)
	}
}

// Params returns all learnable parameters.
func (n *Network) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrad clears all gradients.
func (n *Network) ZeroGrad() {
	for _, p := range n.Params() {
		p.G.Zero()
	}
}

// ClipGrad rescales all gradients so their global L2 norm does not
// exceed maxNorm. Fixed-point forward passes saturate occasionally and
// produce outsized straight-through gradients; clipping keeps the
// retraining loop of Fig. 9 stable.
func (n *Network) ClipGrad(maxNorm float64) {
	if maxNorm <= 0 {
		return
	}
	sum := 0.0
	for _, p := range n.Params() {
		for _, g := range p.G.Data {
			sum += g * g
		}
	}
	norm := math.Sqrt(sum)
	if norm <= maxNorm {
		return
	}
	k := maxNorm / norm
	for _, p := range n.Params() {
		for i := range p.G.Data {
			p.G.Data[i] *= k
		}
	}
}

// Step applies one momentum-SGD update: v = µv − lr·g; w += v.
func (n *Network) Step(lr, momentum float64) {
	for _, p := range n.Params() {
		for i := range p.W.Data {
			p.V.Data[i] = momentum*p.V.Data[i] - lr*p.G.Data[i]
			p.W.Data[i] += p.V.Data[i]
		}
	}
}

// Predict returns the argmax class of the logits for x.
func (n *Network) Predict(x *tensor.Tensor, fault *FaultModel) int {
	return n.Forward(x, fault).ArgMax()
}

// SoftmaxCrossEntropy returns the loss and the logit gradient for a
// single sample.
func SoftmaxCrossEntropy(logits *tensor.Tensor, label int) (float64, *tensor.Tensor) {
	if label < 0 || label >= logits.Len() {
		panic(fmt.Sprintf("nn: label %d out of range [0,%d)", label, logits.Len()))
	}
	maxv := math.Inf(-1)
	for _, v := range logits.Data {
		if v > maxv {
			maxv = v
		}
	}
	sum := 0.0
	probs := make([]float64, logits.Len())
	for i, v := range logits.Data {
		probs[i] = math.Exp(v - maxv)
		sum += probs[i]
	}
	grad := tensor.New(logits.Shape()...)
	for i := range probs {
		probs[i] /= sum
		grad.Data[i] = probs[i]
	}
	grad.Data[label] -= 1
	return -math.Log(math.Max(probs[label], 1e-12)), grad
}

// --- AvgPool2D ---

// AvgPool2D subsamples each channel with a k×k mean window of stride k —
// the global-average-pooling head style of GoogLeNet/ResNet.
type AvgPool2D struct {
	name   string
	K      int
	inDims [3]int
}

// NewAvgPool2D returns an average-pooling layer.
func NewAvgPool2D(name string, k int) *AvgPool2D { return &AvgPool2D{name: name, K: k} }

// Name implements Layer.
func (p *AvgPool2D) Name() string { return p.name }

// Params implements Layer.
func (p *AvgPool2D) Params() []*Param { return nil }

// Forward implements Layer.
func (p *AvgPool2D) Forward(x *tensor.Tensor, _ *FaultModel) *tensor.Tensor {
	ch, h, l := x.Dim(0), x.Dim(1), x.Dim(2)
	p.inDims = [3]int{ch, h, l}
	r, cc := h/p.K, l/p.K
	out := tensor.New(ch, r, cc)
	inv := 1.0 / float64(p.K*p.K)
	for n := 0; n < ch; n++ {
		for or := 0; or < r; or++ {
			for oc := 0; oc < cc; oc++ {
				sum := 0.0
				for kr := 0; kr < p.K; kr++ {
					for kc := 0; kc < p.K; kc++ {
						sum += x.At(n, or*p.K+kr, oc*p.K+kc)
					}
				}
				out.Set(sum*inv, n, or, oc)
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(p.inDims[0], p.inDims[1], p.inDims[2])
	ch, r, cc := grad.Dim(0), grad.Dim(1), grad.Dim(2)
	inv := 1.0 / float64(p.K*p.K)
	for n := 0; n < ch; n++ {
		for or := 0; or < r; or++ {
			for oc := 0; oc < cc; oc++ {
				g := grad.At(n, or, oc) * inv
				for kr := 0; kr < p.K; kr++ {
					for kc := 0; kc < p.K; kc++ {
						dx.Set(dx.At(n, or*p.K+kr, oc*p.K+kc)+g, n, or*p.K+kr, oc*p.K+kc)
					}
				}
			}
		}
	}
	return dx
}
