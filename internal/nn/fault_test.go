package nn

import (
	"testing"

	"rana/internal/bits"
	"rana/internal/fixed"
	"rana/internal/tensor"
)

// faultNet builds a stack covering every forward path the fault hook
// touches: conv and dense consume the model, ReLU and max-pool must
// pass data through untouched.
func faultNet(seed uint64) *Network {
	rng := bits.NewSplitMix64(seed)
	return &Network{Layers: []Layer{
		NewConv2D("conv", 1, 2, 3, 1, 1, rng),
		NewReLU("relu"),
		NewMaxPool2D("pool", 2),
		NewDense("fc", 2*3*3, 3, rng),
	}}
}

func faultInput(seed uint64) *tensor.Tensor {
	x := tensor.New(1, 6, 6)
	x.FillRandn(bits.NewSplitMix64(seed), 1)
	return x
}

func sameData(a, b *tensor.Tensor) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// TestFaultModelDeterministic pins the reproducibility contract: the
// same seed at the same rate yields bit-identical corrupted outputs,
// and a different seed diverges at a rate this aggressive.
func TestFaultModelDeterministic(t *testing.T) {
	x := faultInput(3)
	run := func(seed uint64) *tensor.Tensor {
		net := faultNet(1)
		fault := &FaultModel{Injector: bits.NewInjector(0.2, seed), Format: fixed.Q88}
		return net.Forward(x, fault)
	}
	a, b := run(42), run(42)
	if !sameData(a, b) {
		t.Fatal("same seed produced different outputs")
	}
	if sameData(a, run(43)) {
		t.Fatal("different seeds produced identical outputs at rate 0.2")
	}
}

// TestFaultModelPositionsDeterministic extends the contract to the
// bit-position-restricted path.
func TestFaultModelPositionsDeterministic(t *testing.T) {
	x := faultInput(5)
	run := func(seed uint64, positions uint16) *tensor.Tensor {
		net := faultNet(2)
		fault := &FaultModel{
			Injector:  bits.NewInjector(0.5, seed),
			Format:    fixed.Q88,
			Positions: positions,
		}
		return net.Forward(x, fault)
	}
	const lowBits = 0x00ff
	a, b := run(9, lowBits), run(9, lowBits)
	if !sameData(a, b) {
		t.Fatal("same seed with restricted positions produced different outputs")
	}
	// Restricting to the low fractional bits must bound the damage:
	// every corrupted conv input stays within the largest low-byte
	// perturbation of the quantized value.
	in := faultInput(5)
	fault := &FaultModel{Injector: bits.NewInjector(1, 7), Format: fixed.Q88, Positions: lowBits}
	c := in.Clone()
	fault.apply(c)
	maxDelta := float64(0x00ff) / fixed.Q88.Scale()
	for i := range c.Data {
		q := fixed.Q88.Quantize(in.Data[i])
		d := c.Data[i] - q
		if d < -maxDelta || d > maxDelta {
			t.Fatalf("low-byte restricted flip moved value by %g (> %g)", d, maxDelta)
		}
	}
}

// TestFaultTransparentLayers pins that ReLU and MaxPool ignore the
// fault model entirely: an aggressive injector must not change their
// output given identical inputs.
func TestFaultTransparentLayers(t *testing.T) {
	x := faultInput(11)
	fault := &FaultModel{Injector: bits.NewInjector(0.9, 1), Format: fixed.Q88}

	relu := NewReLU("relu")
	clean := relu.Forward(x, nil)
	faulty := NewReLU("relu").Forward(x, fault)
	if !sameData(clean, faulty) {
		t.Error("ReLU output changed under fault model")
	}

	pool := NewMaxPool2D("pool", 2)
	clean = pool.Forward(x, nil)
	faulty = NewMaxPool2D("pool", 2).Forward(x, fault)
	if !sameData(clean, faulty) {
		t.Error("MaxPool output changed under fault model")
	}

	avg := NewAvgPool2D("avg", 2)
	clean = avg.Forward(x, nil)
	faulty = NewAvgPool2D("avg", 2).Forward(x, fault)
	if !sameData(clean, faulty) {
		t.Error("AvgPool output changed under fault model")
	}
}

// TestFaultAppliedToConvAndDense pins that the layers with parameters
// actually consume the fault model: at rate 1 every bit is redrawn, so
// outputs must diverge from the clean pass, while the stored weights
// stay untouched (faults corrupt the datapath copy, not the model).
func TestFaultAppliedToConvAndDense(t *testing.T) {
	x := faultInput(13)
	fault := &FaultModel{Injector: bits.NewInjector(1, 3), Format: fixed.Q88}

	conv := NewConv2D("conv", 1, 2, 3, 1, 1, bits.NewSplitMix64(1))
	wBefore := conv.Weight.W.Clone()
	clean := conv.Forward(x, nil)
	faulty := conv.Forward(x, fault)
	if sameData(clean, faulty) {
		t.Error("Conv2D output unchanged under rate-1 faults")
	}
	if !sameData(wBefore, conv.Weight.W) {
		t.Error("Conv2D stored weights mutated by fault application")
	}

	flat := tensor.New(36)
	copy(flat.Data, x.Data)
	dense := NewDense("fc", 36, 4, bits.NewSplitMix64(2))
	wBefore = dense.Weight.W.Clone()
	clean = dense.Forward(flat, nil)
	faulty = dense.Forward(flat, fault)
	if sameData(clean, faulty) {
		t.Error("Dense output unchanged under rate-1 faults")
	}
	if !sameData(wBefore, dense.Weight.W) {
		t.Error("Dense stored weights mutated by fault application")
	}
}

// TestForwardPlan pins per-layer fault routing: a plan keyed on one
// layer corrupts only that layer, an empty or nil plan matches the
// clean forward pass bit for bit, and the plan path is deterministic.
func TestForwardPlan(t *testing.T) {
	x := faultInput(17)
	net := faultNet(4)
	clean := net.Forward(x, nil)

	if got := faultNet(4).ForwardPlan(x, nil); !sameData(clean, got) {
		t.Fatal("nil plan diverged from clean forward")
	}
	if got := faultNet(4).ForwardPlan(x, FaultPlan{}); !sameData(clean, got) {
		t.Fatal("empty plan diverged from clean forward")
	}

	mk := func(seed uint64) FaultPlan {
		return FaultPlan{"conv": {Injector: bits.NewInjector(0.3, seed), Format: fixed.Q88}}
	}
	a := faultNet(4).ForwardPlan(x, mk(21))
	if sameData(clean, a) {
		t.Fatal("conv-only plan did not perturb the output at rate 0.3")
	}
	if b := faultNet(4).ForwardPlan(x, mk(21)); !sameData(a, b) {
		t.Fatal("same-seed plans diverged")
	}

	// A plan keyed on a fault-transparent layer is a no-op.
	transparent := FaultPlan{"pool": {Injector: bits.NewInjector(0.9, 1), Format: fixed.Q88}}
	if got := faultNet(4).ForwardPlan(x, transparent); !sameData(clean, got) {
		t.Fatal("plan on fault-transparent layer changed the output")
	}

	if p := faultNet(4).PredictPlan(x, nil); p != clean.ArgMax() {
		t.Fatalf("PredictPlan = %d, clean argmax %d", p, clean.ArgMax())
	}
}
