package nn

import (
	"math"
	"testing"

	"rana/internal/bits"
	"rana/internal/fixed"
	"rana/internal/tensor"
)

// checkGrads compares analytic parameter gradients against central
// finite differences.
func checkGrads(t *testing.T, net *Network, x *tensor.Tensor, label int) {
	t.Helper()
	net.ZeroGrad()
	logits := net.Forward(x, nil)
	_, g := SoftmaxCrossEntropy(logits, label)
	net.Backward(g)
	lossOf := func() float64 {
		l, _ := SoftmaxCrossEntropy(net.Forward(x, nil), label)
		return l
	}
	const eps = 1e-5
	for pi, p := range net.Params() {
		step := p.W.Len()/17 + 1
		for i := 0; i < p.W.Len(); i += step {
			orig := p.W.Data[i]
			p.W.Data[i] = orig + eps
			lp := lossOf()
			p.W.Data[i] = orig - eps
			lm := lossOf()
			p.W.Data[i] = orig
			num := (lp - lm) / (2 * eps)
			if diff := math.Abs(num - p.G.Data[i]); diff > 1e-6 {
				t.Errorf("param %d idx %d: numeric %.8f analytic %.8f", pi, i, num, p.G.Data[i])
			}
		}
	}
}

func TestConvGradients(t *testing.T) {
	rng := bits.NewSplitMix64(1)
	net := &Network{Layers: []Layer{
		NewConv2D("c", 2, 3, 3, 1, 1, rng),
		NewDense("fc", 3*5*5, 3, rng),
	}}
	x := tensor.New(2, 5, 5)
	x.FillRandn(rng, 1)
	checkGrads(t, net, x, 2)
}

func TestStridedConvGradients(t *testing.T) {
	rng := bits.NewSplitMix64(2)
	net := &Network{Layers: []Layer{
		NewConv2D("c", 1, 2, 3, 2, 0, rng),
		NewDense("fc", 2*3*3, 2, rng),
	}}
	x := tensor.New(1, 7, 7)
	x.FillRandn(rng, 1)
	checkGrads(t, net, x, 0)
}

func TestFullStackGradients(t *testing.T) {
	rng := bits.NewSplitMix64(3)
	net := &Network{Layers: []Layer{
		NewConv2D("c1", 1, 4, 3, 1, 1, rng),
		NewReLU("r1"),
		NewMaxPool2D("p1", 2),
		NewDense("fc", 4*4*4, 3, rng),
	}}
	x := tensor.New(1, 8, 8)
	x.FillRandn(rng, 1)
	checkGrads(t, net, x, 1)
}

func TestConvOutputShape(t *testing.T) {
	rng := bits.NewSplitMix64(4)
	c := NewConv2D("c", 3, 5, 3, 2, 1, rng)
	x := tensor.New(3, 11, 11)
	out := c.Forward(x, nil)
	// (11 + 2 - 3)/2 + 1 = 6.
	if out.Dim(0) != 5 || out.Dim(1) != 6 || out.Dim(2) != 6 {
		t.Errorf("out shape %v", out.Shape())
	}
}

func TestConvKnownValue(t *testing.T) {
	rng := bits.NewSplitMix64(5)
	c := NewConv2D("c", 1, 1, 2, 1, 0, rng)
	// Identity-ish kernel: only top-left weight 1.
	c.Weight.W.Zero()
	c.Weight.W.Set(1, 0, 0, 0, 0)
	c.Bias.W.Data[0] = 0.5
	x := tensor.New(1, 2, 2)
	x.Data = []float64{1, 2, 3, 4}
	out := c.Forward(x, nil)
	if out.Len() != 1 || out.Data[0] != 1.5 {
		t.Errorf("conv value = %v", out.Data)
	}
}

func TestConvPanicsOnChannelMismatch(t *testing.T) {
	rng := bits.NewSplitMix64(6)
	c := NewConv2D("c", 2, 1, 1, 1, 0, rng)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c.Forward(tensor.New(3, 2, 2), nil)
}

func TestReLU(t *testing.T) {
	r := NewReLU("r")
	x := tensor.New(4)
	x.Data = []float64{-1, 0, 2, -3}
	out := r.Forward(x, nil)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Errorf("relu[%d] = %g", i, out.Data[i])
		}
	}
	g := tensor.New(4)
	g.Data = []float64{1, 1, 1, 1}
	dx := r.Backward(g)
	wantG := []float64{0, 0, 1, 0}
	for i := range wantG {
		if dx.Data[i] != wantG[i] {
			t.Errorf("relu grad[%d] = %g", i, dx.Data[i])
		}
	}
}

func TestMaxPool(t *testing.T) {
	p := NewMaxPool2D("p", 2)
	x := tensor.New(1, 2, 4)
	x.Data = []float64{
		1, 5, 2, 0,
		3, 4, 8, 8,
	}
	out := p.Forward(x, nil)
	if out.Dim(1) != 1 || out.Dim(2) != 2 {
		t.Fatalf("pool shape %v", out.Shape())
	}
	if out.At(0, 0, 0) != 5 || out.At(0, 0, 1) != 8 {
		t.Errorf("pool values %v", out.Data)
	}
	g := tensor.New(1, 1, 2)
	g.Data = []float64{1, 1}
	dx := p.Backward(g)
	// Gradient lands only on the (first) max positions.
	if dx.Data[1] != 1 {
		t.Error("grad not routed to max (0,1)")
	}
	if dx.Data[6] != 1 { // first 8 at index (1,2) = 1*4+2
		t.Error("grad not routed to first max in tie")
	}
	sum := 0.0
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 2 {
		t.Errorf("pool grad mass = %g", sum)
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	logits := tensor.New(3)
	logits.Data = []float64{0, 0, 0}
	loss, grad := SoftmaxCrossEntropy(logits, 1)
	if math.Abs(loss-math.Log(3)) > 1e-9 {
		t.Errorf("uniform loss = %g, want ln3", loss)
	}
	if math.Abs(grad.Data[1]-(1.0/3-1)) > 1e-9 {
		t.Errorf("grad[label] = %g", grad.Data[1])
	}
	// Gradient sums to zero.
	sum := 0.0
	for _, v := range grad.Data {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("grad sum = %g", sum)
	}
	// Numerical stability with large logits.
	logits.Data = []float64{1000, 0, -1000}
	loss, _ = SoftmaxCrossEntropy(logits, 0)
	if math.IsNaN(loss) || math.IsInf(loss, 0) || loss > 1e-9 {
		t.Errorf("large-logit loss = %g", loss)
	}
	defer func() {
		if recover() == nil {
			t.Error("bad label should panic")
		}
	}()
	SoftmaxCrossEntropy(logits, 5)
}

func TestFaultModelQuantizesForward(t *testing.T) {
	rng := bits.NewSplitMix64(7)
	d := NewDense("fc", 2, 1, rng)
	d.Weight.W.Data = []float64{0.1234567, 0.7654321}
	d.Bias.W.Data[0] = 0
	x := tensor.New(2)
	x.Data = []float64{1, 1}
	clean := d.Forward(x, nil).Data[0]
	q := d.Forward(x, &FaultModel{Format: fixed.Q88, Quantize: true}).Data[0]
	wantQ := fixed.Q88.Quantize(0.1234567) + fixed.Q88.Quantize(0.7654321)
	if math.Abs(q-wantQ) > 1e-12 {
		t.Errorf("quantized forward = %g, want %g", q, wantQ)
	}
	if q == clean {
		t.Error("quantization had no effect on non-grid weights")
	}
	// Clean weights unchanged by the fault view.
	if d.Weight.W.Data[0] != 0.1234567 {
		t.Error("fault model mutated stored weights")
	}
}

func TestFaultModelInjectsErrors(t *testing.T) {
	rng := bits.NewSplitMix64(8)
	d := NewDense("fc", 64, 8, rng)
	x := tensor.New(64)
	x.FillRandn(rng, 1)
	clean := d.Forward(x, nil)
	fault := &FaultModel{Injector: bits.NewInjector(0.05, 9), Format: fixed.Q88}
	dirty := d.Forward(x, fault)
	diff := 0
	for i := range clean.Data {
		if clean.Data[i] != dirty.Data[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("5% bit failures left all outputs identical")
	}
}

func TestStepAndZeroGrad(t *testing.T) {
	rng := bits.NewSplitMix64(10)
	net := &Network{Layers: []Layer{NewDense("fc", 1, 1, rng)}}
	p := net.Params()[0]
	p.G.Data[0] = 2
	net.Step(0.5, 0)
	if math.Abs(p.W.Data[0]-(net.Params()[0].W.Data[0])) > 0 {
		t.Fatal("identity check")
	}
	net.ZeroGrad()
	if p.G.Data[0] != 0 {
		t.Error("ZeroGrad")
	}
}

func TestClipGrad(t *testing.T) {
	rng := bits.NewSplitMix64(11)
	net := &Network{Layers: []Layer{NewDense("fc", 2, 1, rng)}}
	p := net.Params()[0]
	p.G.Data = []float64{3, 4} // norm 5
	net.ClipGrad(1)
	norm := math.Hypot(p.G.Data[0], p.G.Data[1])
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("clipped norm = %g", norm)
	}
	// Below the cap: untouched.
	p.G.Data = []float64{0.3, 0.4}
	net.ClipGrad(1)
	if p.G.Data[0] != 0.3 {
		t.Error("clip modified small gradient")
	}
	// Non-positive cap: no-op.
	net.ClipGrad(0)
}

func TestMomentumAcceleratesDescent(t *testing.T) {
	// One-parameter quadratic: with momentum the weight moves further in
	// two identical-gradient steps than without.
	run := func(mom float64) float64 {
		rng := bits.NewSplitMix64(12)
		net := &Network{Layers: []Layer{NewDense("fc", 1, 1, rng)}}
		p := net.Params()[0]
		p.W.Data[0] = 0
		for i := 0; i < 2; i++ {
			p.G.Data[0] = 1
			net.Step(0.1, mom)
		}
		return p.W.Data[0]
	}
	if !(run(0.9) < run(0)) {
		t.Error("momentum should accelerate descent")
	}
}

func TestAvgPool(t *testing.T) {
	p := NewAvgPool2D("ap", 2)
	x := tensor.New(1, 2, 2)
	x.Data = []float64{1, 2, 3, 6}
	out := p.Forward(x, nil)
	if out.Len() != 1 || out.Data[0] != 3 {
		t.Errorf("avg = %v", out.Data)
	}
	g := tensor.New(1, 1, 1)
	g.Data = []float64{4}
	dx := p.Backward(g)
	for i, v := range dx.Data {
		if v != 1 {
			t.Errorf("grad[%d] = %g, want 1 (4/k²)", i, v)
		}
	}
}

func TestAvgPoolGradients(t *testing.T) {
	rng := bits.NewSplitMix64(13)
	net := &Network{Layers: []Layer{
		NewConv2D("c", 1, 3, 3, 1, 1, rng),
		NewAvgPool2D("ap", 2),
		NewDense("fc", 3*3*3, 2, rng),
	}}
	x := tensor.New(1, 6, 6)
	x.FillRandn(rng, 1)
	checkGrads(t, net, x, 1)
}

func TestAvgPoolGradientMassConserved(t *testing.T) {
	p := NewAvgPool2D("ap", 3)
	x := tensor.New(2, 6, 6)
	p.Forward(x, nil)
	g := tensor.New(2, 2, 2)
	for i := range g.Data {
		g.Data[i] = 1
	}
	dx := p.Backward(g)
	sum := 0.0
	for _, v := range dx.Data {
		sum += v
	}
	if math.Abs(sum-8) > 1e-12 { // 8 output elements × gradient 1
		t.Errorf("grad mass = %g, want 8", sum)
	}
}
