package ddr

import (
	"testing"

	"rana/internal/energy"
	"rana/internal/fixed"
)

func TestStoreLoadRoundTrip(t *testing.T) {
	m := New()
	data := []fixed.Word{1, -2, 3}
	m.Store("x", data)
	got, err := m.Load("x")
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("word %d: %d", i, got[i])
		}
	}
	// Copies are independent.
	got[0] = 99
	again, _ := m.Load("x")
	if again[0] != 1 {
		t.Error("Load must return a copy")
	}
	data[1] = 42
	again, _ = m.Load("x")
	if again[1] != -2 {
		t.Error("Store must copy its input")
	}
}

func TestAccessCounting(t *testing.T) {
	m := New()
	m.Store("a", make([]fixed.Word, 10)) // 10 writes
	if _, err := m.Load("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load("a"); err != nil {
		t.Fatal(err)
	}
	if m.Writes() != 10 || m.Reads() != 20 || m.Accesses() != 30 {
		t.Errorf("w=%d r=%d a=%d", m.Writes(), m.Reads(), m.Accesses())
	}
	want := 30 * energy.DDRAccessPJ
	if m.EnergyPJ() != want {
		t.Errorf("energy = %g, want %g", m.EnergyPJ(), want)
	}
}

func TestPeekDoesNotCount(t *testing.T) {
	m := New()
	m.Store("a", []fixed.Word{7})
	before := m.Accesses()
	got, ok := m.Peek("a")
	if !ok || got[0] != 7 {
		t.Fatal("peek")
	}
	if m.Accesses() != before {
		t.Error("Peek counted an access")
	}
	if _, ok := m.Peek("missing"); ok {
		t.Error("Peek false positive")
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := New().Load("nope"); err == nil {
		t.Error("missing region should error")
	}
}

func TestDelete(t *testing.T) {
	m := New()
	m.Store("a", []fixed.Word{1})
	m.Delete("a")
	if _, err := m.Load("a"); err == nil {
		t.Error("deleted region should be gone")
	}
}

func TestStoreReplaces(t *testing.T) {
	m := New()
	m.Store("a", []fixed.Word{1, 2})
	m.Store("a", []fixed.Word{9})
	got, _ := m.Load("a")
	if len(got) != 1 || got[0] != 9 {
		t.Errorf("got %v", got)
	}
}
