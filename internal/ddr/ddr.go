// Package ddr is the off-chip DDR3 memory model of the evaluation
// platform. The paper treats off-chip memory as a flat word store whose
// accesses dominate energy (Table III: 2112.9 pJ per 16-bit access,
// 1653.7× a MAC); this model provides that store with access counting for
// the βd coefficient of Eq. 14, plus named regions so a whole network's
// tensors can live off chip between layers (§II-B: outputs are "sent to
// the off-chip memory, and will be loaded again for the successive
// layer").
package ddr

import (
	"fmt"

	"rana/internal/energy"
	"rana/internal/fixed"
)

// Memory is a flat off-chip word store with named regions.
type Memory struct {
	regions map[string][]fixed.Word
	reads   uint64
	writes  uint64
}

// New returns an empty memory.
func New() *Memory {
	return &Memory{regions: make(map[string][]fixed.Word)}
}

// Store creates or replaces a named region with a copy of data. Storing
// counts as writes (the data arrives over the memory bus).
func (m *Memory) Store(name string, data []fixed.Word) {
	cp := make([]fixed.Word, len(data))
	copy(cp, data)
	m.regions[name] = cp
	m.writes += uint64(len(data))
}

// Load returns a copy of a named region, counting reads.
func (m *Memory) Load(name string) ([]fixed.Word, error) {
	r, ok := m.regions[name]
	if !ok {
		return nil, fmt.Errorf("ddr: region %q not found", name)
	}
	m.reads += uint64(len(r))
	cp := make([]fixed.Word, len(r))
	copy(cp, r)
	return cp, nil
}

// Peek returns the region without counting an access (for test oracles).
func (m *Memory) Peek(name string) ([]fixed.Word, bool) {
	r, ok := m.regions[name]
	if !ok {
		return nil, false
	}
	cp := make([]fixed.Word, len(r))
	copy(cp, r)
	return cp, true
}

// Delete frees a region (no bus traffic).
func (m *Memory) Delete(name string) { delete(m.regions, name) }

// Reads returns the accumulated word-read count.
func (m *Memory) Reads() uint64 { return m.reads }

// Writes returns the accumulated word-write count.
func (m *Memory) Writes() uint64 { return m.writes }

// Accesses returns βd: total reads + writes.
func (m *Memory) Accesses() uint64 { return m.reads + m.writes }

// EnergyPJ returns the off-chip access energy so far.
func (m *Memory) EnergyPJ() float64 {
	return float64(m.Accesses()) * energy.DDRAccessPJ
}
