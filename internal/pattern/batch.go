package pattern

// Batch processing is an extension beyond the paper, which evaluates
// single-image inference. Processing a batch of B images back to back
// changes RANA's trade-off: keeping the layer's weights resident in the
// buffer across the batch amortizes their off-chip traffic by B, but the
// weights then live for the whole batch — far beyond any tolerable
// retention time — so their banks must refresh. The paper's refresh-
// optimized controller makes exactly that cheap (only the weight banks
// refresh), which is what the ext3 experiment quantifies.

import (
	"fmt"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
)

// AnalyzeBatch characterizes B back-to-back executions of one layer with
// the batch loop outermost. When the layer's full weight set fits in the
// buffer alongside the pattern's storage requirement, weights are fetched
// from DDR once for the whole batch and stay resident (their lifetime
// stretches to the batch execution time); otherwise every image reloads
// them and the single-image analysis simply scales.
func AnalyzeBatch(l models.ConvLayer, k Kind, t Tiling, cfg hw.Config, batch int) (Analysis, error) {
	if batch <= 0 {
		return Analysis{}, fmt.Errorf("pattern: non-positive batch %d", batch)
	}
	a, err := Analyze(l, k, t, cfg)
	if err != nil {
		return Analysis{}, err
	}
	if batch == 1 {
		return a, nil
	}
	b := uint64(batch)
	single := a.ExecTime

	a.MACs *= b
	a.Cycles *= b
	a.ExecTime *= time.Duration(batch)
	a.BufferTraffic = scaleStorage(a.BufferTraffic, b)
	a.DDRTraffic.Inputs *= b
	a.DDRTraffic.Outputs *= b

	dw := l.WeightWords()
	if a.BufferStorage.Total()+dw <= cfg.BufferWords {
		// Weight-resident batching: one DDR fetch for the whole batch.
		// The resident set grows by the full weights, and their lifetime
		// spans the batch.
		a.BufferStorage.Weights += dw
		a.Lifetimes.Weight = a.ExecTime
		// a.DDRTraffic.Weights stays at the single-image value.
	} else {
		a.DDRTraffic.Weights *= b
		// Per-image residency and lifetimes are unchanged.
		_ = single
	}
	a.FitsBuffer = a.BufferStorage.Total() <= cfg.BufferWords
	return a, nil
}

// MustAnalyzeBatch is AnalyzeBatch for inputs known valid by
// construction; it panics on error.
func MustAnalyzeBatch(l models.ConvLayer, k Kind, t Tiling, cfg hw.Config, batch int) Analysis {
	a, err := AnalyzeBatch(l, k, t, cfg, batch)
	if err != nil {
		panic(err)
	}
	return a
}
