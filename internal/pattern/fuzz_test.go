package pattern

import (
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
)

// FuzzAnalyze: for any valid fuzzed (layer, tiling) pair and every
// computation pattern, the analytical model satisfies its structural
// invariants — the MAC count is the layer's exact arithmetic, the cycle
// count is achievable (at least MACs/PEs) and converts consistently to
// wall time, utilization is a true ratio, no data lifetime outlives the
// layer, and the storage footprint decides buffer fit.
func FuzzAnalyze(f *testing.F) {
	f.Add(3, 4, 8, 3, 1, 1, 2, 2, 2, 2)
	f.Add(1, 1, 1, 1, 1, 0, 1, 1, 1, 1)
	f.Add(16, 16, 14, 5, 2, 2, 4, 4, 7, 7)
	f.Add(8, 8, 9, 1, 1, 0, 8, 8, 3, 9)
	f.Fuzz(func(t *testing.T, n, m, h, k, s, p, tm, tn, tr, tc int) {
		l := models.ConvLayer{
			Name: "fuzz",
			N:    1 + abs(n)%32,
			M:    1 + abs(m)%32,
			H:    1 + abs(h)%20,
			K:    1 + abs(k)%5,
			S:    1 + abs(s)%2,
			P:    abs(p) % 3,
		}
		l.L = l.H
		if l.K > l.H {
			l.K = l.H
		}
		if l.P >= l.K {
			l.P = l.K - 1
		}
		ti := Tiling{
			Tm: 1 + abs(tm)%l.M,
			Tn: 1 + abs(tn)%l.N,
			Tr: 1 + abs(tr)%l.R(),
			Tc: 1 + abs(tc)%l.C(),
		}
		if l.Validate() != nil || ti.Validate() != nil {
			t.Skip()
		}
		cfg := hw.TestAcceleratorEDRAM()
		for _, kind := range []Kind{ID, OD, WD} {
			a := MustAnalyze(l, kind, ti, cfg)
			if a.MACs != l.MACs() {
				t.Fatalf("%v: MACs %d, layer has %d", kind, a.MACs, l.MACs())
			}
			if a.Cycles == 0 {
				t.Fatalf("%v: zero cycles", kind)
			}
			if min := a.MACs / uint64(cfg.PEs()); a.Cycles < min {
				t.Fatalf("%v: %d cycles below compute bound %d", kind, a.Cycles, min)
			}
			wantExec := time.Duration(float64(a.Cycles) / cfg.FrequencyHz * float64(time.Second))
			if d := a.ExecTime - wantExec; d < -time.Nanosecond || d > time.Nanosecond {
				t.Fatalf("%v: exec %v inconsistent with %d cycles (%v)", kind, a.ExecTime, a.Cycles, wantExec)
			}
			if a.Utilization <= 0 || a.Utilization > 1+1e-12 {
				t.Fatalf("%v: utilization %g", kind, a.Utilization)
			}
			if lt := a.Lifetimes.Max(); lt > a.ExecTime+time.Nanosecond {
				t.Fatalf("%v: lifetime %v exceeds exec %v", kind, lt, a.ExecTime)
			}
			if a.FitsBuffer != (a.BufferStorage.Total() <= cfg.BufferWords) {
				t.Fatalf("%v: FitsBuffer=%v but storage %d of %d",
					kind, a.FitsBuffer, a.BufferStorage.Total(), cfg.BufferWords)
			}
		}
	})
}

func abs(x int) int {
	if x < 0 {
		if x == -x { // MinInt
			return 0
		}
		return -x
	}
	return x
}
