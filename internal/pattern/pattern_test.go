package pattern

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
)

// layerA returns the paper's running case Layer-A: ResNet res4a_branch1.
func layerA(t *testing.T) models.ConvLayer {
	t.Helper()
	l, ok := models.ResNet().Layer("res4a_branch1")
	if !ok {
		t.Fatal("res4a_branch1 missing")
	}
	return l
}

// layerB returns the paper's running case Layer-B: VGG conv4_2.
func layerB(t *testing.T) models.ConvLayer {
	t.Helper()
	l, ok := models.VGG().Layer("conv4_2")
	if !ok {
		t.Fatal("conv4_2 missing")
	}
	return l
}

// paperTiling is the running-case tiling Tm=Tn=Tc=16, Tr=1 (§IV-C1).
var paperTiling = Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}

func usWithin(t *testing.T, got time.Duration, wantUS, tolUS float64) {
	t.Helper()
	g := float64(got) / float64(time.Microsecond)
	if math.Abs(g-wantUS) > tolUS {
		t.Errorf("duration = %.1fµs, want %.1fµs ± %.1f", g, wantUS, tolUS)
	}
}

// TestLayerAIDLifetime checks §III-B2: running Layer-A under ID on the
// test accelerator gives LTo < LTw < LTi = 2294 µs.
func TestLayerAIDLifetime(t *testing.T) {
	a := MustAnalyze(layerA(t), ID, paperTiling, hw.TestAccelerator())
	usWithin(t, a.Lifetimes.Input, 2294, 2)
	if !(a.Lifetimes.Output < a.Lifetimes.Weight && a.Lifetimes.Weight < a.Lifetimes.Input) {
		t.Errorf("want LTo < LTw < LTi, got %+v", a.Lifetimes)
	}
	if a.Lifetimes.Input != a.ExecTime {
		t.Errorf("ID input lifetime %v != exec time %v", a.Lifetimes.Input, a.ExecTime)
	}
	if math.Abs(a.Utilization-0.875) > 1e-9 {
		t.Errorf("utilization = %v, want 0.875 (14/16 edge tiles)", a.Utilization)
	}
}

// TestLayerAIDBufferStorage checks §III-B1: Layer-A's minimum ID buffer
// storage is 785 KB in 16-bit precision (Tm=Tn=Tr=Tc=1), exceeding the
// 384 KB SRAM but fitting the 1.454 MB eDRAM.
func TestLayerAIDBufferStorage(t *testing.T) {
	one := Tiling{Tm: 1, Tn: 1, Tr: 1, Tc: 1}
	sram := MustAnalyze(layerA(t), ID, one, hw.TestAccelerator())
	kb := float64(sram.BufferStorage.Total()) * 2 / 1024
	if math.Abs(kb-785) > 1.0 {
		t.Errorf("Layer-A ID min buffer storage = %.1f KB, want 785", kb)
	}
	if sram.FitsBuffer {
		t.Error("785 KB should not fit the 384 KB SRAM buffer")
	}
	edram := MustAnalyze(layerA(t), ID, one, hw.TestAcceleratorEDRAM())
	if !edram.FitsBuffer {
		t.Error("785 KB should fit the 1.454 MB eDRAM buffer")
	}
}

// TestLayerAODLifetime checks §IV-C1: Layer-A under OD with
// Tm,Tn,Tc=16, Tr=1 has data lifetime LTo = 72 µs — below the 734 µs
// tolerable retention time, so no refresh is needed.
func TestLayerAODLifetime(t *testing.T) {
	a := MustAnalyze(layerA(t), OD, paperTiling, hw.TestAccelerator())
	usWithin(t, a.Lifetimes.Output, 72, 1)
	if a.Lifetimes.Input != a.Lifetimes.Output {
		t.Errorf("OD should give LTi = LTo, got %v vs %v", a.Lifetimes.Input, a.Lifetimes.Output)
	}
	if a.Lifetimes.Output >= 734*time.Microsecond {
		t.Error("Layer-A OD lifetime should beat the 734 µs tolerable retention time")
	}
}

// TestLayerBODTnSweep checks §IV-C1 and §IV-D2: Layer-B under OD has
// LTi = LTo = 1290 µs and LTw = 40 µs at Tn=16; reducing Tn to 8 halves
// the lifetime to 645 µs.
func TestLayerBODTnSweep(t *testing.T) {
	cfg := hw.TestAccelerator()
	a16 := MustAnalyze(layerB(t), OD, paperTiling, cfg)
	usWithin(t, a16.Lifetimes.Output, 1290, 2)
	usWithin(t, a16.Lifetimes.Weight, 40, 1)

	t8 := paperTiling
	t8.Tn = 8
	a8 := MustAnalyze(layerB(t), OD, t8, cfg)
	usWithin(t, a8.Lifetimes.Output, 645, 2)
}

// TestODWeightsReadOnce checks the OD pattern's key buffer-traffic
// property: weights stay in core local storage across the innermost RC
// loop, so weight buffer reads equal the weight volume exactly.
func TestODWeightsReadOnce(t *testing.T) {
	l := layerB(t)
	a := MustAnalyze(l, OD, paperTiling, hw.TestAccelerator())
	if a.BufferTraffic.Weights != l.WeightWords() {
		t.Errorf("OD weight buffer reads = %d, want %d (read once)",
			a.BufferTraffic.Weights, l.WeightWords())
	}
	id := MustAnalyze(l, ID, paperTiling, hw.TestAccelerator())
	if id.BufferTraffic.Weights <= a.BufferTraffic.Weights {
		t.Error("ID should re-read weights per output position, far more than OD")
	}
}

// TestBufferStorageEquations checks Eqs. 1-3, 6-8, 11-13 symbolically on
// an exactly-tileable layer.
func TestBufferStorageEquations(t *testing.T) {
	l := models.ConvLayer{Name: "eq", N: 32, H: 16, L: 16, M: 64, K: 3, S: 1, P: 1}
	ti := Tiling{Tm: 16, Tn: 8, Tr: 4, Tc: 4}
	cfg := hw.TestAccelerator()
	th, tl := uint64(ti.Th(l)), uint64(ti.Tl(l))
	R, C := uint64(l.R()), uint64(l.C())

	id := MustAnalyze(l, ID, ti, cfg).BufferStorage
	if id.Inputs != 32*16*16 || id.Outputs != 16*4*4 || id.Weights != 32*16*9 {
		t.Errorf("ID storage = %+v", id)
	}
	od := MustAnalyze(l, OD, ti, cfg).BufferStorage
	if od.Inputs != 8*16*16 || od.Outputs != 64*R*C || od.Weights != 16*8*9 {
		t.Errorf("OD storage = %+v", od)
	}
	wd := MustAnalyze(l, WD, ti, cfg).BufferStorage
	if wd.Inputs != 32*th*tl || wd.Outputs != 16*4*4 || wd.Weights != 64*32*9 {
		t.Errorf("WD storage = %+v", wd)
	}
}

// TestMinimumDDRTraffic: when the resident data fits, every pattern's DDR
// traffic besides WD's input halo equals the layer's data volume.
func TestMinimumDDRTraffic(t *testing.T) {
	l := models.ConvLayer{Name: "fit", N: 16, H: 14, L: 14, M: 32, K: 1, S: 1, P: 0}
	cfg := hw.TestAcceleratorEDRAM()
	ti := Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 14}
	din, dw, dout := l.InputWords(), l.WeightWords(), l.OutputWords()
	for _, k := range Kinds {
		a := MustAnalyze(l, k, ti, cfg)
		if !a.FitsBuffer {
			t.Fatalf("%v: expected to fit", k)
		}
		if a.DDRTraffic.Weights != dw || a.DDRTraffic.Outputs != dout {
			t.Errorf("%v: weight/output DDR = %+v, want %d/%d", k, a.DDRTraffic, dw, dout)
		}
		// K=1, S=1 means no halo: WD inputs also hit the minimum.
		if a.DDRTraffic.Inputs != din {
			t.Errorf("%v: input DDR = %d, want %d", k, a.DDRTraffic.Inputs, din)
		}
	}
}

// TestSpillPenalties: each pattern's reload penalty kicks in when its
// resident data type exceeds the buffer.
func TestSpillPenalties(t *testing.T) {
	cfg := hw.TestAccelerator() // small 384 KB buffer
	ti := Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}

	// Big inputs: ID reloads the whole input set once per output group
	// when it cannot stay resident.
	big := models.ConvLayer{Name: "big", N: 64, H: 112, L: 112, M: 128, K: 3, S: 1, P: 1}
	id := MustAnalyze(big, ID, ti, cfg)
	if id.FitsBuffer {
		t.Fatal("expected ID storage overflow")
	}
	if !id.Feasible {
		t.Fatal("ID streaming working set should still be feasible")
	}
	nM := uint64((big.M + 15) / 16)
	if id.DDRTraffic.Inputs != nM*big.InputWords() {
		t.Errorf("ID spill inputs = %d, want %d", id.DDRTraffic.Inputs, nM*big.InputWords())
	}

	// Big outputs: OD spills partial sums per remaining input pass.
	od := MustAnalyze(big, OD, ti, cfg)
	if od.FitsBuffer {
		t.Fatal("expected OD storage overflow")
	}
	nN := uint64((big.N + 15) / 16)
	wantOut := big.OutputWords() + 2*(nN-1)*big.OutputWords()
	if od.DDRTraffic.Outputs != wantOut {
		t.Errorf("OD spill outputs = %d, want %d", od.DDRTraffic.Outputs, wantOut)
	}

	// Big weights: WD reloads weights per tile position.
	deep := models.ConvLayer{Name: "deep", N: 512, H: 14, L: 14, M: 512, K: 3, S: 1, P: 1}
	wd := MustAnalyze(deep, WD, ti, cfg)
	if wd.FitsBuffer {
		t.Fatal("expected WD storage overflow")
	}
	dR := uint64(deep.R()) // Tr=1
	dC := uint64((deep.C() + 15) / 16)
	if wd.DDRTraffic.Weights != dR*dC*deep.WeightWords() {
		t.Errorf("WD spill weights = %d, want %d", wd.DDRTraffic.Weights, dR*dC*deep.WeightWords())
	}
}

// TestGroupedConvolution: grouped layers scale totals by the group count
// while storage and lifetimes stay per-group.
func TestGroupedConvolution(t *testing.T) {
	g := models.ConvLayer{Name: "g", N: 96, H: 27, L: 27, M: 256, K: 5, S: 1, P: 2, Groups: 2}
	sub := models.ConvLayer{Name: "s", N: 48, H: 27, L: 27, M: 128, K: 5, S: 1, P: 2}
	ti := Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	cfg := hw.TestAcceleratorEDRAM()
	ag := MustAnalyze(g, OD, ti, cfg)
	as := MustAnalyze(sub, OD, ti, cfg)
	if ag.MACs != 2*as.MACs {
		t.Errorf("grouped MACs = %d, want %d", ag.MACs, 2*as.MACs)
	}
	if ag.Cycles != 2*as.Cycles {
		t.Errorf("grouped cycles = %d, want %d", ag.Cycles, 2*as.Cycles)
	}
	if ag.BufferStorage != as.BufferStorage {
		t.Errorf("grouped storage = %+v, want per-group %+v", ag.BufferStorage, as.BufferStorage)
	}
	if ag.Lifetimes != as.Lifetimes {
		t.Errorf("grouped lifetimes = %+v, want per-group %+v", ag.Lifetimes, as.Lifetimes)
	}
	if ag.DDRTraffic.Total() != 2*as.DDRTraffic.Total() {
		t.Errorf("grouped DDR = %d, want %d", ag.DDRTraffic.Total(), 2*as.DDRTraffic.Total())
	}
}

// TestLifetimeOrderingProperty: across random layers and tilings, the
// structural lifetime relations of Fig. 10 hold — ID input lifetime spans
// the whole layer and is never shorter than OD's output lifetime (the
// reason ID is excluded from RANA's exploration space, §IV-C3).
func TestLifetimeOrderingProperty(t *testing.T) {
	cfg := hw.TestAccelerator()
	f := func(n8, m8, hw8, k2, tm4, tn4, tc4 uint8) bool {
		l := models.ConvLayer{
			Name: "p",
			N:    int(n8%64) + 1,
			M:    int(m8%64) + 1,
			H:    int(hw8%30) + 7,
			L:    int(hw8%30) + 7,
			K:    []int{1, 3, 5}[int(k2)%3],
			S:    1,
		}
		l.P = l.K / 2
		if l.Validate() != nil {
			return true
		}
		ti := Tiling{
			Tm: 1 << (tm4 % 5),
			Tn: 1 << (tn4 % 5),
			Tr: 1,
			Tc: 1 << (tc4 % 5),
		}
		id := MustAnalyze(l, ID, ti, cfg)
		od := MustAnalyze(l, OD, ti, cfg)
		wd := MustAnalyze(l, WD, ti, cfg)
		// Same work, same cycles regardless of control-loop order.
		if id.Cycles != od.Cycles || od.Cycles != wd.Cycles {
			return false
		}
		// ID's input lifetime is the whole layer; OD's max lifetime never
		// exceeds it; WD's weight lifetime is also the whole layer.
		return id.Lifetimes.Input == id.ExecTime &&
			od.Lifetimes.Max() <= id.Lifetimes.Input &&
			wd.Lifetimes.Weight == wd.ExecTime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestBufferTrafficConservation: every pattern moves at least each
// datum's minimum once through the buffer, and utilization is in (0, 1].
func TestBufferTrafficConservation(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	f := func(n8, m8, hw8, tm4, tn4 uint8) bool {
		l := models.ConvLayer{
			Name: "p",
			N:    int(n8%48) + 1,
			M:    int(m8%48) + 1,
			H:    int(hw8%20) + 3,
			L:    int(hw8%20) + 3,
			K:    3, S: 1, P: 1,
		}
		ti := Tiling{Tm: 1 << (tm4 % 5), Tn: 1 << (tn4 % 5), Tr: 1, Tc: 4}
		for _, k := range Kinds {
			a := MustAnalyze(l, k, ti, cfg)
			if a.BufferTraffic.Inputs < l.InputWords() ||
				a.BufferTraffic.Weights < l.WeightWords() ||
				a.BufferTraffic.Outputs < l.OutputWords() {
				return false
			}
			if a.Utilization <= 0 || a.Utilization > 1 {
				return false
			}
			if a.DDRTraffic.Total() < l.InputWords()+l.WeightWords()+l.OutputWords() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTilingHelpers(t *testing.T) {
	l := models.ConvLayer{Name: "h", N: 4, H: 10, L: 10, M: 4, K: 3, S: 2, P: 1}
	ti := Tiling{Tm: 2, Tn: 2, Tr: 3, Tc: 4}
	if ti.Th(l) != 7 || ti.Tl(l) != 9 { // (Tr-1)*S+K = 2*2+3, (Tc-1)*S+K = 3*2+3
		t.Errorf("Th/Tl = %d/%d, want 7/9", ti.Th(l), ti.Tl(l))
	}
	if err := ti.Validate(); err != nil {
		t.Error(err)
	}
	if err := (Tiling{}).Validate(); err == nil {
		t.Error("zero tiling should fail validation")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{ID: "ID", OD: "OD", WD: "WD", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Errorf("String(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestAnalyzeRejectsInvalid(t *testing.T) {
	l := models.ConvLayer{Name: "x", N: 1, H: 4, L: 4, M: 1, K: 1, S: 1}
	ok := Tiling{Tm: 1, Tn: 1, Tr: 1, Tc: 1}
	if _, err := Analyze(l, ID, Tiling{}, hw.TestAccelerator()); err == nil {
		t.Error("invalid tiling not rejected")
	}
	if _, err := Analyze(models.ConvLayer{Name: "bad"}, ID, ok, hw.TestAccelerator()); err == nil {
		t.Error("invalid layer not rejected")
	}
	if _, err := Analyze(l, Kind(99), ok, hw.TestAccelerator()); err == nil {
		t.Error("unknown kind not rejected")
	}
	badMap := hw.TestAccelerator()
	badMap.Mapping = 99
	if _, err := Analyze(l, ID, ok, badMap); err == nil {
		t.Error("unknown mapping not rejected")
	}
}

func TestMustAnalyzePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on invalid tiling")
		}
	}()
	MustAnalyze(models.ConvLayer{Name: "x", N: 1, H: 4, L: 4, M: 1, K: 1, S: 1},
		ID, Tiling{}, hw.TestAccelerator())
}

// TestDDRMonotoneInCapacity: for any fixed candidate, a larger buffer
// never increases off-chip traffic — capacity only relaxes penalties.
func TestDDRMonotoneInCapacity(t *testing.T) {
	f := func(n8, m8, hw8, k2, tm4, tn4, tc4 uint8, capKB uint16) bool {
		l := models.ConvLayer{
			Name: "p",
			N:    int(n8%64) + 1,
			M:    int(m8%64) + 1,
			H:    int(hw8%28) + 5,
			L:    int(hw8%28) + 5,
			K:    []int{1, 3, 5}[int(k2)%3],
			S:    1,
		}
		l.P = l.K / 2
		if l.Validate() != nil {
			return true
		}
		ti := Tiling{Tm: 1 << (tm4 % 5), Tn: 1 << (tn4 % 5), Tr: 1, Tc: 1 << (tc4 % 5)}
		small := hw.TestAccelerator().WithBufferWords(uint64(capKB%512+1) * 512)
		big := small.WithBufferWords(small.BufferWords * 4)
		for _, k := range Kinds {
			a := MustAnalyze(l, k, ti, small)
			b := MustAnalyze(l, k, ti, big)
			if b.DDRTraffic.Total() > a.DDRTraffic.Total() {
				return false
			}
			// Feasibility is monotone too.
			if a.Feasible && !b.Feasible {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestStrideLargerThanKernel: stride-2 1x1 convolutions (ResNet branch1
// layers) read only a quarter of their nominal input under WD streaming.
func TestStrideLargerThanKernel(t *testing.T) {
	l := models.ConvLayer{Name: "s2", N: 8, H: 16, L: 16, M: 8, K: 1, S: 2, P: 0}
	cfg := hw.TestAcceleratorEDRAM()
	ti := Tiling{Tm: 8, Tn: 8, Tr: 1, Tc: 8}
	a := MustAnalyze(l, WD, ti, cfg)
	// Everything fits the 1.454MB buffer, so inputs load once even in WD.
	if a.DDRTraffic.Inputs != l.InputWords() {
		t.Errorf("inputs = %d, want %d", a.DDRTraffic.Inputs, l.InputWords())
	}
	if a.Lifetimes.Output != 0 {
		t.Error("WD outputs ship immediately")
	}
}

// TestSingleElementTiling: the degenerate ⟨1,1,1,1⟩ tiling is valid and
// internally consistent for all patterns.
func TestSingleElementTiling(t *testing.T) {
	l := models.ConvLayer{Name: "one", N: 2, H: 3, L: 3, M: 2, K: 3, S: 1, P: 1}
	one := Tiling{Tm: 1, Tn: 1, Tr: 1, Tc: 1}
	cfg := hw.TestAccelerator()
	for _, k := range Kinds {
		a := MustAnalyze(l, k, one, cfg)
		if a.MACs != l.MACs() {
			t.Fatalf("%v: MACs %d", k, a.MACs)
		}
		if a.Cycles == 0 || a.Utilization <= 0 {
			t.Fatalf("%v: degenerate cycles/utilization", k)
		}
	}
}
