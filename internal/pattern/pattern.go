// Package pattern implements the three computation patterns of Fig. 10 —
// Input Dominant (ID), Output Dominant (OD) and Weight Dominant (WD) —
// together with their buffer-storage equations (Eqs. 1–3, 6–8, 11–13),
// data-lifetime equations (Eqs. 4–5, 9–10) and the buffer-access /
// off-chip-traffic / cycle-count models documented in DESIGN.md §4.
//
// A pattern is a loop ordering of the memory control part (Loops M, RC
// and N of Fig. 3b) around the fixed core computing part. The 3rd-level
// (outermost) loop decides which data type is buffer-resident for the
// whole layer and therefore which data type dominates both buffer storage
// and lifetime:
//
//	ID: M  outermost — inputs resident, input lifetime = whole layer
//	OD: N  outermost — outputs resident, self-refreshed by accumulation
//	WD: RC outermost — weights resident, inputs/outputs streamed
package pattern

import (
	"fmt"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
)

// Kind selects a computation pattern.
type Kind int

const (
	// ID is the typical input-dominant pattern of Fig. 3b / Fig. 10(a).
	ID Kind = iota
	// OD is the output-dominant pattern of Fig. 10(b), which exploits the
	// output's self-refresh property during accumulation (§IV-C1).
	OD
	// WD is the weight-dominant pattern of Fig. 10(c), which shrinks
	// buffer storage for shallow layers (§IV-C2).
	WD
)

// Kinds lists all patterns in paper order.
var Kinds = []Kind{ID, OD, WD}

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case ID:
		return "ID"
	case OD:
		return "OD"
	case WD:
		return "WD"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Tiling holds the tiling parameters ⟨Tm, Tn, Tr, Tc⟩ of the core
// computing part (Fig. 3b). Th and Tl are derived: Th=(Tr−1)S+K,
// Tl=(Tc−1)S+K.
type Tiling struct {
	Tm, Tn, Tr, Tc int
}

// String implements fmt.Stringer.
func (t Tiling) String() string {
	return fmt.Sprintf("<Tm=%d,Tn=%d,Tr=%d,Tc=%d>", t.Tm, t.Tn, t.Tr, t.Tc)
}

// Validate checks positivity.
func (t Tiling) Validate() error {
	if t.Tm <= 0 || t.Tn <= 0 || t.Tr <= 0 || t.Tc <= 0 {
		return fmt.Errorf("pattern: non-positive tiling %v", t)
	}
	return nil
}

// Th returns the input tile height for a layer: (Tr−1)·S + K.
func (t Tiling) Th(l models.ConvLayer) int { return (t.Tr-1)*l.S + l.K }

// Tl returns the input tile width for a layer: (Tc−1)·S + K.
func (t Tiling) Tl(l models.ConvLayer) int { return (t.Tc-1)*l.S + l.K }

// FitsCore reports whether the tiling satisfies the core local-storage
// constraints of Fig. 13: Tn·Th·Tl ≤ Ri, Tm·Tr·Tc ≤ Ro, Tm·Tn·K² ≤ Rw.
func (t Tiling) FitsCore(l models.ConvLayer, cfg hw.Config) bool {
	return t.Tn*t.Th(l)*t.Tl(l) <= cfg.LocalInput &&
		t.Tm*t.Tr*t.Tc <= cfg.LocalOutput &&
		t.Tm*t.Tn*l.K*l.K <= cfg.LocalWeight
}

// Traversal selects the tile traversal order of a pattern's memory
// control loops. The zero value (Linear) is the paper's nest exactly as
// Fig. 10 writes it. Blocks > 1 requests an RTC-style blocked walk
// (Refresh Triggered Computation): the 2nd-level loop is partitioned
// into up to Blocks contiguous stages and each stage is hoisted above
// the 3rd-level loop, so data staged for a block is consumed before its
// retention deadline instead of being refreshed. Re-staged data
// restarts its retention clock, which is why the blocked analysis both
// shrinks lifetimes and charges the extra off-chip reloads — the two
// are physically inseparable.
type Traversal struct {
	// Blocks is the requested number of 2nd-level loop stages. 0 and 1
	// both mean the linear nest; values above the loop extent clamp.
	Blocks int
}

// Linear is the default traversal: the unmodified Fig. 10 loop nest.
var Linear = Traversal{}

// IsLinear reports whether the traversal is the unmodified nest.
func (tr Traversal) IsLinear() bool { return tr.Blocks <= 1 }

// String implements fmt.Stringer.
func (tr Traversal) String() string {
	if tr.IsLinear() {
		return "linear"
	}
	return fmt.Sprintf("blocked%d", tr.Blocks)
}

// Validate checks the traversal is representable.
func (tr Traversal) Validate() error {
	if tr.Blocks < 0 {
		return fmt.Errorf("pattern: negative traversal blocks %d", tr.Blocks)
	}
	return nil
}

// Span splits a 2nd-level loop extent into the traversal's contiguous
// blocks: blk is the span of every full block (the last may be short)
// and nBlocks the number of blocks actually realized — which can be
// fewer than requested (extent 6 at Blocks=4 gives spans of 2, so 3
// blocks). The analysis and the cycle walker both derive their blocking
// from this one function so the two can never disagree.
func (tr Traversal) Span(extent int) (blk, nBlocks int) { return blockSpan(extent, tr.Blocks) }

// blockSpan splits an extent into at most b contiguous blocks of equal
// span (the last may be short). blk is the span of every full block and
// nBlocks the number of blocks actually produced — which can be fewer
// than requested (extent 6 at b=4 gives spans of 2, so 3 blocks).
func blockSpan(extent, b int) (blk, nBlocks int) {
	if b > extent {
		b = extent
	}
	if b <= 1 || extent <= 1 {
		return extent, 1
	}
	blk = ceilDiv(extent, b)
	return blk, ceilDiv(extent, blk)
}

// Storage is a per-data-type word count (buffer storage or traffic).
type Storage struct {
	Inputs, Outputs, Weights uint64
}

// Total sums the three components.
func (s Storage) Total() uint64 { return s.Inputs + s.Outputs + s.Weights }

// Lifetimes holds per-data-type buffer lifetimes. A zero lifetime means
// the data never rests in the buffer long enough to need refresh (e.g.
// outputs under ID, which accumulate in the PEs and leave immediately).
type Lifetimes struct {
	Input, Output, Weight time.Duration
}

// Max returns the longest of the three lifetimes.
func (lt Lifetimes) Max() time.Duration {
	m := lt.Input
	if lt.Output > m {
		m = lt.Output
	}
	if lt.Weight > m {
		m = lt.Weight
	}
	return m
}

// Analysis is the full analytical characterization of running one layer
// under one pattern and tiling on one accelerator: everything the RANA
// scheduler's energy model (Eq. 14) and refresh accounting need.
type Analysis struct {
	Layer     models.ConvLayer
	Pattern   Kind
	Tiling    Tiling
	Traversal Traversal

	// MACs is α: the layer's useful multiply-accumulate count.
	MACs uint64
	// Cycles is the core-occupancy cycle count including tile padding.
	Cycles uint64
	// ExecTime is Cycles at the accelerator clock (× group count).
	ExecTime time.Duration
	// Utilization is η = MACs / (PEs · Cycles).
	Utilization float64

	// BufferStorage is the on-chip storage requirement (Eqs. 1–3 / 6–8 /
	// 11–13). FitsBuffer reports BufferStorage.Total() ≤ capacity.
	BufferStorage Storage
	FitsBuffer    bool
	// Feasible reports whether the pattern's streaming working set fits
	// the buffer at all; infeasible candidates cannot execute and the
	// scheduler skips them.
	Feasible bool

	// Lifetimes are the per-data-type buffer lifetimes (Eqs. 4–5 / 9–10).
	Lifetimes Lifetimes

	// BufferTraffic counts on-chip buffer accesses (reads+writes) per
	// data type; its Total is βb.
	BufferTraffic Storage
	// DDRTraffic counts off-chip accesses per data type, including the
	// pattern's spill/reload penalty when FitsBuffer is false; its Total
	// is βd.
	DDRTraffic Storage

	// BufferWrites counts the words written into the on-chip buffer's
	// cell array: every off-chip fill (inputs, weights, and spilled
	// partial sums reloaded) plus the core's output stores — for OD's
	// read-modify-write accumulation, the store half of each pass. It
	// is the exposure a wear-prone memory technology (ReRAM) ages by;
	// the Eq. 14 traffic totals above are unaffected.
	BufferWrites uint64
}

// Analyze characterizes a layer under a pattern and tiling. Grouped
// convolutions are modeled as their groups run sequentially: per-group
// sub-problems are analyzed and totals scaled, while storage requirements
// and lifetimes are the per-group values (only one group is live at a
// time). Invalid layers, tilings, patterns and array mappings are
// reported as errors: analysis inputs reach this package from request
// bodies (via the scheduler behind ranad), so malformed input is a
// caller problem, not a process-fatal bug.
func Analyze(l models.ConvLayer, k Kind, t Tiling, cfg hw.Config) (Analysis, error) {
	return AnalyzeTraversal(l, k, t, cfg, Linear)
}

// AnalyzeTraversal is Analyze under an explicit traversal order. The
// linear traversal reproduces Analyze bit for bit; a blocked traversal
// shrinks the staged data's lifetimes and charges the re-staging DDR
// traffic (see Traversal). Cycles, buffer storage and feasibility are
// traversal-invariant: blocking permutes the visit order of the same
// tile set.
func AnalyzeTraversal(l models.ConvLayer, k Kind, t Tiling, cfg hw.Config, trv Traversal) (Analysis, error) {
	if err := l.Validate(); err != nil {
		return Analysis{}, err
	}
	if err := t.Validate(); err != nil {
		return Analysis{}, err
	}
	if err := trv.Validate(); err != nil {
		return Analysis{}, err
	}
	switch k {
	case ID, OD, WD:
	default:
		return Analysis{}, fmt.Errorf("pattern: unknown kind %d", int(k))
	}
	switch cfg.Mapping {
	case hw.MapOutputPixel, hw.MapOutputInput:
	default:
		return Analysis{}, fmt.Errorf("pattern: unknown mapping %v", cfg.Mapping)
	}
	g := l.Groups
	if g <= 1 {
		return analyzeUngrouped(l, k, t, cfg, trv, 1), nil
	}
	sub := l
	sub.N /= g
	sub.M /= g
	sub.Groups = 1
	return analyzeUngrouped(sub, k, t, cfg, trv, g), nil
}

// MustAnalyze is Analyze for inputs known valid by construction — tests,
// report generators and benchmark sweeps over the built-in models. It
// panics on error.
func MustAnalyze(l models.ConvLayer, k Kind, t Tiling, cfg hw.Config) Analysis {
	a, err := Analyze(l, k, t, cfg)
	if err != nil {
		panic(err)
	}
	return a
}

// analyzeUngrouped does the real work on an ungrouped (sub-)layer and
// scales whole-layer totals by the group count g. The reported Layer is
// the original grouped layer reconstructed.
func analyzeUngrouped(l models.ConvLayer, k Kind, t Tiling, cfg hw.Config, trv Traversal, g int) Analysis {
	R, C := l.R(), l.C()
	nM := ceilDiv(l.M, t.Tm)
	nN := ceilDiv(l.N, t.Tn)
	nR := ceilDiv(R, t.Tr)
	nC := ceilDiv(C, t.Tc)
	th, tl := t.Th(l), t.Tl(l)

	// Core tile time depends on the array's spatial mapping (hw.Mapping):
	// spatial loop dimensions are ceil-divided over array lanes, temporal
	// ones multiply the cycle count; tile padding is included.
	var perTile uint64
	switch cfg.Mapping {
	case hw.MapOutputPixel:
		// Tm spatial over ArrayM rows, Tr·Tc pixels spatial over ArrayN
		// columns; Tn and K² temporal.
		perTile = uint64(ceilDiv(t.Tm, cfg.ArrayM)) * uint64(ceilDiv(t.Tr*t.Tc, cfg.ArrayN)) *
			uint64(t.Tn) * uint64(l.K) * uint64(l.K)
	case hw.MapOutputInput:
		// Tm spatial over ArrayM, Tn spatial over ArrayN; Tr, Tc and K²
		// temporal.
		perTile = uint64(ceilDiv(t.Tm, cfg.ArrayM)) * uint64(ceilDiv(t.Tn, cfg.ArrayN)) *
			uint64(t.Tr) * uint64(t.Tc) * uint64(l.K) * uint64(l.K)
	default:
		// Invariant: Analyze validated the mapping before dispatching here.
		panic(fmt.Sprintf("pattern: unknown mapping %v", cfg.Mapping))
	}
	tiles := uint64(nM) * uint64(nN) * uint64(nR) * uint64(nC)
	subCycles := tiles * perTile
	cycles := subCycles * uint64(g)

	macs := l.MACs() * uint64(g)
	util := float64(macs) / (float64(cfg.PEs()) * float64(cycles))

	// Per-tile transfer sizes (words).
	inTile := uint64(t.Tn) * uint64(th) * uint64(tl)
	wTile := uint64(t.Tm) * uint64(t.Tn) * uint64(l.K) * uint64(l.K)
	outTile := uint64(t.Tm) * uint64(t.Tr) * uint64(t.Tc)

	// Whole-(sub)layer data volumes.
	din := l.InputWords()
	dw := l.WeightWords()
	dout := l.OutputWords()

	a := Analysis{
		Layer:       l,
		Pattern:     k,
		Tiling:      t,
		Traversal:   trv,
		MACs:        macs,
		Cycles:      cycles,
		ExecTime:    cyclesDur(cycles, cfg),
		Utilization: util,
	}
	if g > 1 {
		a.Layer.N *= g
		a.Layer.M *= g
		a.Layer.Groups = g
	}

	// Loop-level times for the sub-layer, in whole cycles. T1/T2/T3 are
	// the completed durations of the 1st/2nd/3rd-level loops (Fig. 10);
	// t3 always equals the sub-layer's total cycle count.
	var t1, t2, t3 uint64

	switch k {
	case ID: // order: M (3rd), RC (2nd), N (1st)
		t1 = uint64(nN) * perTile
		t2 = uint64(nR*nC) * t1
		t3 = uint64(nM) * t2
		a.BufferStorage = Storage{
			Inputs:  din,                                // Eq. 1
			Outputs: outTile,                            // Eq. 2
			Weights: uint64(l.N) * uint64(t.Tm) * k2(l), // Eq. 3
		}
		a.Lifetimes = Lifetimes{
			Input:  cyclesDur(t3, cfg), // Eq. 4
			Weight: cyclesDur(t2, cfg), // Eq. 5
			Output: 0,                  // accumulated in PEs, stored then shipped (§III-B2)
		}
		a.BufferTraffic = Storage{
			Inputs:  tiles * inTile,
			Weights: tiles * wTile,
			Outputs: uint64(nM*nR*nC) * outTile,
		}
		// The streaming working set (current kernel group's weights plus
		// the output tile) must fit outright; inputs enjoy cross-Loop-M
		// reuse only when everything fits (Eq. 1), otherwise the whole
		// input set reloads once per output group ([11]-style model).
		a.Feasible = a.BufferStorage.Weights+a.BufferStorage.Outputs <= cfg.BufferWords
		a.DDRTraffic = Storage{Inputs: din, Weights: dw, Outputs: dout}
		if !fits(a.BufferStorage, cfg) {
			a.DDRTraffic.Inputs = uint64(nM) * din
		}

	case OD: // order: N (3rd), M (2nd), RC (1st)
		t1 = uint64(nR*nC) * perTile
		t2 = uint64(nM) * t1
		t3 = uint64(nN) * t2
		a.BufferStorage = Storage{
			Inputs:  uint64(t.Tn) * uint64(l.H) * uint64(l.L), // Eq. 6
			Outputs: dout,                                     // Eq. 7
			Weights: wTile,                                    // Eq. 8
		}
		a.Lifetimes = Lifetimes{
			Input:  cyclesDur(t2, cfg), // Eq. 9
			Output: cyclesDur(t2, cfg), // Eq. 9 — self-refreshed every T2 by accumulation
			Weight: cyclesDur(t1, cfg), // Eq. 10
		}
		if nN == 1 {
			// A single input pass fully accumulates each output tile in
			// the core; outputs are stored once and shipped, like ID.
			a.Lifetimes.Output = 0
		}
		// Weights stay in core local storage across the innermost RC
		// loop, so each (m, n) weight tile is read from the buffer once.
		a.BufferTraffic = Storage{
			Inputs:  tiles * inTile,
			Weights: uint64(nN*nM) * wTile,
			Outputs: uint64(2*nN-1) * uint64(nM*nR*nC) * outTile,
		}
		// The streaming working set (current input slab plus a weight
		// tile and an output tile) must fit outright; outputs enjoy
		// on-chip accumulation only when everything fits (Eq. 7),
		// otherwise partial sums spill once per remaining input pass.
		a.Feasible = a.BufferStorage.Inputs+a.BufferStorage.Weights+outTile <= cfg.BufferWords
		a.DDRTraffic = Storage{Inputs: din, Weights: dw, Outputs: dout}
		if !fits(a.BufferStorage, cfg) {
			a.DDRTraffic.Outputs = dout + 2*uint64(nN-1)*dout
		}

	case WD: // order: RC (3rd), M (2nd), N (1st)
		t1 = uint64(nN) * perTile
		t2 = uint64(nM) * t1
		t3 = uint64(nR*nC) * t2
		a.BufferStorage = Storage{
			Inputs:  uint64(l.N) * uint64(th) * uint64(tl), // Eq. 11
			Outputs: outTile,                               // Eq. 12
			Weights: dw,                                    // Eq. 13
		}
		a.Lifetimes = Lifetimes{
			Weight: cyclesDur(t3, cfg), // weights resident for the whole layer
			Input:  cyclesDur(t2, cfg), // an input tile serves all M kernels
			Output: 0,                  // finished within T1, shipped off chip
		}
		a.BufferTraffic = Storage{
			Inputs:  tiles * inTile,
			Weights: tiles * wTile,
			Outputs: uint64(nM*nR*nC) * outTile,
		}
		// The streaming working set (input slab, weight tile, output
		// tile) must fit outright. Inputs are fetched from DDR once when
		// the whole input set also fits the unified buffer alongside the
		// resident weights (the halo re-reads then hit the buffer, which
		// BufferTraffic already counts); otherwise input tiles stream
		// from DDR with halo overlap. Weights enjoy whole-layer residency
		// per Eq. 13 unless the storage requirement overflows, in which
		// case they reload per tile position.
		a.Feasible = a.BufferStorage.Inputs+a.BufferStorage.Outputs+wTile <= cfg.BufferWords
		haloIn := uint64(nR*nC) * uint64(l.N) * uint64(th) * uint64(tl)
		switch {
		case a.BufferStorage.Weights+a.BufferStorage.Outputs+din <= cfg.BufferWords:
			a.DDRTraffic = Storage{Inputs: din, Weights: dw, Outputs: dout}
		case fits(a.BufferStorage, cfg):
			a.DDRTraffic = Storage{Inputs: haloIn, Weights: dw, Outputs: dout}
		default:
			a.DDRTraffic = Storage{Inputs: haloIn, Weights: uint64(nR*nC) * dw, Outputs: dout}
		}

	default:
		// Invariant: Analyze validated the kind before dispatching here.
		panic(fmt.Sprintf("pattern: unknown kind %d", int(k)))
	}

	// RTC blocked traversal: partition the 2nd-level loop into stages
	// hoisted above the 3rd-level loop. Staged data is consumed within
	// its stage — lifetimes shrink from the 3rd-level span to the staged
	// span — and re-staged data reloads from DDR, which the traffic
	// terms below charge. Cycles, storage, feasibility and buffer
	// traffic are conservative and traversal-invariant: the same tiles
	// are visited, only their order changes. The DDR multipliers use the
	// realized block count (blockSpan clamps), never the requested one,
	// so analysis matches the walker's actual refill count.
	if b := trv.Blocks; b > 1 {
		switch k {
		case ID: // blocked nest: RC_blk (3rd), M, RC_in, N
			blk, nBlocks := blockSpan(nR*nC, b)
			if nBlocks > 1 {
				// A block's inputs stay staged across the whole M loop;
				// each m's weights reload per block.
				a.Lifetimes.Input = cyclesDur(uint64(nM)*uint64(blk)*t1, cfg)
				a.Lifetimes.Weight = cyclesDur(uint64(blk)*t1, cfg)
				// Inputs stage per RC position with halo overlap — an
				// upper bound on the sum of block footprints, independent
				// of the block count, and ≥ din.
				a.DDRTraffic.Inputs = uint64(nR*nC) * uint64(l.N) * uint64(th) * uint64(tl)
				a.DDRTraffic.Weights = uint64(nBlocks) * dw
			}
		case OD: // blocked nest: M_blk (3rd), N, M_in, RC
			blk, nBlocks := blockSpan(nM, b)
			if nBlocks > 1 {
				// An input slab serves one block per pass; outputs of a
				// block self-refresh every pass over the block and finish
				// (then ship) when the block's nN passes complete.
				a.Lifetimes.Input = cyclesDur(uint64(blk)*t1, cfg)
				if nN > 1 {
					a.Lifetimes.Output = cyclesDur(uint64(blk)*t1, cfg)
				}
				a.DDRTraffic.Inputs = uint64(nBlocks) * din
			}
		case WD: // blocked nest: M_blk (3rd), RC, M_in, N
			blk, nBlocks := blockSpan(nM, b)
			if nBlocks > 1 {
				// A block's weights stay staged across the whole RC loop;
				// an input tile serves only the block's kernels before
				// re-streaming for the next block.
				a.Lifetimes.Weight = cyclesDur(uint64(nR*nC)*uint64(blk)*t1, cfg)
				a.Lifetimes.Input = cyclesDur(uint64(blk)*t1, cfg)
				a.DDRTraffic.Inputs *= uint64(nBlocks)
			}
		}
	}
	a.FitsBuffer = fits(a.BufferStorage, cfg)

	// Words written into the buffer array: every DDR fill lands in the
	// buffer (the per-type DDR input/weight terms already carry the
	// reload multipliers), plus the core's output stores. For ID/WD the
	// store count is exactly BufferTraffic.Outputs; OD's (2·nN−1) RMW
	// traffic splits into nN stores and nN−1 reads per output word, and
	// a spilled partial sum is rewritten into the buffer on each of its
	// nN−1 reloads.
	outWrites := a.BufferTraffic.Outputs
	if k == OD {
		outWrites = uint64(nN) * uint64(nM*nR*nC) * outTile
		if !fits(a.BufferStorage, cfg) {
			outWrites += uint64(nN-1) * dout
		}
	}
	a.BufferWrites = a.DDRTraffic.Inputs + a.DDRTraffic.Weights + outWrites

	// Scale whole-layer traffic totals by the group count; storage and
	// lifetimes stay per-group (groups run sequentially).
	if g > 1 {
		a.BufferTraffic = scaleStorage(a.BufferTraffic, uint64(g))
		a.DDRTraffic = scaleStorage(a.DDRTraffic, uint64(g))
		a.BufferWrites *= uint64(g)
	}
	return a
}

func fits(s Storage, cfg hw.Config) bool { return s.Total() <= cfg.BufferWords }

func scaleStorage(s Storage, k uint64) Storage {
	return Storage{Inputs: s.Inputs * k, Outputs: s.Outputs * k, Weights: s.Weights * k}
}

func k2(l models.ConvLayer) uint64 { return uint64(l.K) * uint64(l.K) }

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// cyclesDur converts a cycle count to wall time at the accelerator clock.
func cyclesDur(cycles uint64, cfg hw.Config) time.Duration {
	return time.Duration(float64(cycles) / cfg.FrequencyHz * float64(time.Second))
}
