package pattern

import (
	"testing"
	"testing/quick"

	"rana/internal/hw"
	"rana/internal/models"
)

func TestAnalyzeBatchIdentityAtOne(t *testing.T) {
	l, _ := models.ResNet().Layer("res4a_branch1")
	cfg := hw.TestAcceleratorEDRAM()
	ti := Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	a := MustAnalyze(l, OD, ti, cfg)
	b := MustAnalyzeBatch(l, OD, ti, cfg, 1)
	if a.MACs != b.MACs || a.ExecTime != b.ExecTime || a.DDRTraffic != b.DDRTraffic {
		t.Error("batch=1 must equal the single-image analysis")
	}
}

func TestAnalyzeBatchWeightResidency(t *testing.T) {
	// res5a_branch2b: 4.6 MB of weights — cannot stay resident in 1.454MB.
	heavy, _ := models.ResNet().Layer("res5a_branch2b")
	cfg := hw.TestAcceleratorEDRAM()
	ti := Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 7}
	single := MustAnalyze(heavy, OD, ti, cfg)
	batched := MustAnalyzeBatch(heavy, OD, ti, cfg, 4)
	if batched.DDRTraffic.Weights != 4*single.DDRTraffic.Weights {
		t.Error("oversized weights must reload per image")
	}
	if batched.Lifetimes.Weight != single.Lifetimes.Weight {
		t.Error("non-resident weights keep the per-image lifetime")
	}

	// res4a_branch2a: 0.5 MB of weights — fits alongside OD storage.
	light, _ := models.ResNet().Layer("res4a_branch2a")
	s2 := MustAnalyze(light, OD, ti, cfg)
	b2 := MustAnalyzeBatch(light, OD, ti, cfg, 4)
	if b2.DDRTraffic.Weights != s2.DDRTraffic.Weights {
		t.Errorf("resident weights should be fetched once: %d vs %d",
			b2.DDRTraffic.Weights, s2.DDRTraffic.Weights)
	}
	if b2.Lifetimes.Weight != b2.ExecTime {
		t.Error("resident weights live for the whole batch")
	}
	if b2.DDRTraffic.Inputs != 4*s2.DDRTraffic.Inputs {
		t.Error("activations still move per image")
	}
}

// TestAnalyzeBatchScalingProperty: MACs, cycles and buffer traffic always
// scale exactly by the batch size; DDR weight traffic scales by 1 or B.
func TestAnalyzeBatchScalingProperty(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	f := func(n8, m8, hw8, b3 uint8) bool {
		l := models.ConvLayer{
			Name: "p", N: int(n8%32) + 1, M: int(m8%32) + 1,
			H: int(hw8%12) + 4, L: int(hw8%12) + 4, K: 3, S: 1, P: 1,
		}
		batch := int(b3%7) + 2
		ti := Tiling{Tm: 8, Tn: 8, Tr: 1, Tc: 4}
		s := MustAnalyze(l, OD, ti, cfg)
		b := MustAnalyzeBatch(l, OD, ti, cfg, batch)
		if b.MACs != uint64(batch)*s.MACs || b.Cycles != uint64(batch)*s.Cycles {
			return false
		}
		if b.BufferTraffic.Total() != uint64(batch)*s.BufferTraffic.Total() {
			return false
		}
		w := b.DDRTraffic.Weights
		return w == s.DDRTraffic.Weights || w == uint64(batch)*s.DDRTraffic.Weights
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeBatchRejectsNonPositive(t *testing.T) {
	l := models.ConvLayer{Name: "x", N: 1, H: 2, L: 2, M: 1, K: 1, S: 1}
	ti := Tiling{Tm: 1, Tn: 1, Tr: 1, Tc: 1}
	if _, err := AnalyzeBatch(l, OD, ti, hw.TestAccelerator(), 0); err == nil {
		t.Error("batch 0 not rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAnalyzeBatch should panic on error")
		}
	}()
	MustAnalyzeBatch(l, OD, ti, hw.TestAccelerator(), -1)
}
