package experiments

// Extension experiments beyond the paper (DESIGN.md §6): design points
// the paper motivates but does not evaluate.

import (
	"fmt"
	"io"
	"time"

	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/platform"
	"rana/internal/retention"
	"rana/internal/sched"
)

// Ext1Row compares refresh programming policies on one benchmark under
// the RANA*(E-5) schedule: the paper's uniform tolerable interval, a
// differential controller protecting weights at the conservative 45 µs,
// and the fully conservative uniform 45 µs.
type Ext1Row struct {
	Model string
	// Refresh word counts per policy.
	Uniform734, Differential, Uniform45 uint64
}

// Extension1DifferentialRefresh quantifies what per-data-type refresh
// rates cost: weight banks at 45 µs (no reliance on trained tolerance
// for weights) while activations run at 734 µs.
func Extension1DifferentialRefresh() ([]Ext1Row, error) {
	p := platform.Test()
	var rows []Ext1Row
	for _, n := range models.Benchmarks() {
		r, err := p.Evaluate(platform.RANAStarE5(), n)
		if err != nil {
			return nil, err
		}
		row := Ext1Row{Model: n.Name}
		diffIv := memctrl.Intervals{
			Inputs:  retention.TolerableRetentionTime,
			Outputs: retention.TolerableRetentionTime,
			Weights: retention.TypicalRetentionTime,
		}
		for _, lp := range r.Plan.Layers {
			a := lp.Analysis
			bw := r.Plan.Config.BankWords
			row.Uniform734 += memctrl.DifferentialRefreshWords(a.ExecTime,
				memctrl.Uniform(retention.TolerableRetentionTime), lp.Alloc, a.Lifetimes, bw)
			row.Differential += memctrl.DifferentialRefreshWords(a.ExecTime,
				diffIv, lp.Alloc, a.Lifetimes, bw)
			row.Uniform45 += memctrl.DifferentialRefreshWords(a.ExecTime,
				memctrl.Uniform(retention.TypicalRetentionTime), lp.Alloc, a.Lifetimes, bw)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Ext2Row is one guard-band setting's outcome on a benchmark.
type Ext2Row struct {
	Model   string
	Guard   float64
	Total   float64 // system energy normalized to guard=1.0
	Refresh float64
}

// Extension2GuardBand sweeps the retention guard band: how much energy
// the safety margin costs. Guard 1.0 trusts lifetimes right up to the
// interval; smaller guards force refresh on marginal layers.
func Extension2GuardBand() ([]Ext2Row, error) {
	p := platform.Test()
	guards := []float64{1.0, 0.9, 0.7, 0.5}
	var rows []Ext2Row
	for _, n := range models.Benchmarks() {
		var base float64
		for _, g := range guards {
			d := platform.RANAStarE5()
			cfg := d.Apply(p.Base)
			plan, err := sched.Schedule(n, cfg, sched.Options{
				Patterns:        d.Patterns,
				RefreshInterval: d.Interval(p.Dist),
				Controller:      d.Controller(),
				RetentionGuard:  g,
			})
			if err != nil {
				return nil, err
			}
			if base == 0 {
				base = plan.Energy.Total()
			}
			rows = append(rows, Ext2Row{
				Model: n.Name, Guard: g,
				Total:   plan.Energy.Total() / base,
				Refresh: plan.Energy.Refresh / base,
			})
		}
	}
	return rows, nil
}

func init() {
	register(Experiment{
		ID:    "ext1",
		Data:  func() (any, error) { return Extension1DifferentialRefresh() },
		Title: "Extension: differential per-data-type refresh rates",
		Run: func(w io.Writer) error {
			rows, err := Extension1DifferentialRefresh()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s %16s %16s %16s\n", "Model", "uniform 734us", "diff (w@45us)", "uniform 45us")
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%-12s %16d %16d %16d\n",
					r.Model, r.Uniform734, r.Differential, r.Uniform45); err != nil {
					return err
				}
			}
			fmt.Fprintln(w, "refresh word counts under the RANA*(E-5) schedule; the differential")
			fmt.Fprintln(w, "column protects weights without trained tolerance at a fraction of the")
			fmt.Fprintln(w, "fully conservative cost")
			return nil
		},
	})
	register(Experiment{
		ID:    "ext2",
		Data:  func() (any, error) { return Extension2GuardBand() },
		Title: "Extension: retention guard-band sensitivity",
		Run: func(w io.Writer) error {
			rows, err := Extension2GuardBand()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s %8s %10s %10s\n", "Model", "guard", "total", "refresh")
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%-12s %8.2f %10.4f %10.4f\n",
					r.Model, r.Guard, r.Total, r.Refresh); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

var _ = time.Microsecond
