package experiments

// This file regenerates the energy-evaluation figures: the motivation
// breakdown (Fig. 1), the main comparison (Fig. 15), the retention-time
// sweep (Fig. 16), the VGG layerwise comparison (Fig. 17), the buffer-
// capacity sensitivity (Fig. 18), the DaDianNao scalability study
// (Fig. 19), and the §V-B1 headline claims.

import (
	"fmt"
	"io"
	"math"
	"time"

	"rana/internal/energy"
	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/platform"
)

// Fig1Row is one ResNet stage's energy breakdown on the eDRAM+ID
// platform (Fig. 1) — the motivation: refresh is a large share.
type Fig1Row struct {
	Stage  string
	Energy energy.Breakdown // absolute, pJ
	Share  energy.Breakdown // normalized to the stage total
}

// Figure1 computes the per-stage breakdown of ResNet under eD+ID.
func Figure1() ([]Fig1Row, error) {
	p := platform.Test()
	r, err := p.Evaluate(platform.EDID(), models.ResNet())
	if err != nil {
		return nil, err
	}
	net := models.ResNet()
	byStage := map[string]*energy.Breakdown{}
	var order []string
	for i, lp := range r.Plan.Layers {
		st := net.Layers[i].Stage
		if byStage[st] == nil {
			byStage[st] = &energy.Breakdown{}
			order = append(order, st)
		}
		byStage[st].Add(lp.Energy)
	}
	rows := make([]Fig1Row, 0, len(order))
	for _, st := range order {
		e := *byStage[st]
		rows = append(rows, Fig1Row{Stage: st, Energy: e, Share: e.Normalize(e)})
	}
	return rows, nil
}

// Fig15Cell is one (design, model) bar of the total system energy
// comparison, normalized to the model's S+ID energy.
type Fig15Cell struct {
	Design string
	Model  string // benchmark name or "GEO MEAN"
	Energy energy.Breakdown
}

// Figure15 evaluates the six Table IV designs on the four benchmarks and
// appends the per-design geometric mean across benchmarks.
func Figure15() ([]Fig15Cell, error) {
	p := platform.Test()
	nets := models.Benchmarks()
	designs := platform.Designs()
	results, err := p.EvaluateAll(designs, nets)
	if err != nil {
		return nil, err
	}
	base := make([]energy.Breakdown, len(nets))
	for j := range nets {
		base[j] = results[0][j].Energy()
	}
	var cells []Fig15Cell
	for i, d := range designs {
		// GEO MEAN bar: geometric mean of normalized totals, with the
		// breakdown split by the average component shares (so S+ID's
		// mean is exactly 1 and stacks remain meaningful).
		geoTotal := 1.0
		shares := energy.Breakdown{}
		for j, n := range nets {
			norm := results[i][j].Energy().Normalize(base[j])
			cells = append(cells, Fig15Cell{Design: d.Name, Model: n.Name, Energy: norm})
			geoTotal *= norm.Total()
			shares.Add(norm.Scale(1 / norm.Total()))
		}
		inv := 1 / float64(len(nets))
		geoTotal = math.Pow(geoTotal, inv)
		gm := shares.Scale(inv).Scale(geoTotal)
		cells = append(cells, Fig15Cell{Design: d.Name, Model: "GEO MEAN", Energy: gm})
	}
	return cells, nil
}

// Fig16Cell is one (retention time, design) accelerator-energy bar on
// ResNet, normalized to eD+ID at 45 µs.
type Fig16Cell struct {
	RetentionTime time.Duration
	Design        string
	// Accelerator is the energy excluding off-chip access.
	Accelerator float64
	Refresh     float64
}

// Fig16RetentionTimes is the sweep of §V-B2.
var Fig16RetentionTimes = []time.Duration{
	45 * time.Microsecond, 90 * time.Microsecond, 180 * time.Microsecond,
	360 * time.Microsecond, 720 * time.Microsecond, 1440 * time.Microsecond,
}

// Figure16 sweeps retention time for eD+ID, eD+OD and RANA (0) on ResNet.
func Figure16() ([]Fig16Cell, error) {
	p := platform.Test()
	net := models.ResNet()
	designs := []platform.Design{platform.EDID(), platform.EDOD(), platform.RANA0()}
	var base float64
	var cells []Fig16Cell
	for _, rt := range Fig16RetentionTimes {
		for _, d := range designs {
			r, err := p.Evaluate(d.WithInterval(rt), net)
			if err != nil {
				return nil, err
			}
			e := r.Energy()
			if base == 0 {
				base = e.AcceleratorEnergy()
			}
			cells = append(cells, Fig16Cell{
				RetentionTime: rt,
				Design:        d.Name,
				Accelerator:   e.AcceleratorEnergy() / base,
				Refresh:       e.Refresh / base,
			})
		}
	}
	return cells, nil
}

// Fig17Row is one VGG layer's system energy under RANA (0), normalized
// to eD+OD on the same layer.
type Fig17Row struct {
	Layer string
	// EDODEnergy and RANAEnergy are the absolute layer energies.
	EDODEnergy, RANAEnergy float64
	// Normalized is RANA (0) relative to eD+OD.
	Normalized energy.Breakdown
	// RANAPattern is the pattern the hybrid schedule picked.
	RANAPattern string
}

// Figure17 compares eD+OD and RANA (0) layer by layer on VGG.
func Figure17() ([]Fig17Row, error) {
	p := platform.Test()
	net := models.VGG()
	od, err := p.Evaluate(platform.EDOD(), net)
	if err != nil {
		return nil, err
	}
	rana, err := p.Evaluate(platform.RANA0(), net)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig17Row, len(net.Layers))
	for i := range net.Layers {
		oe := od.Plan.Layers[i].Energy
		re := rana.Plan.Layers[i].Energy
		rows[i] = Fig17Row{
			Layer:       net.Layers[i].Name,
			EDODEnergy:  oe.Total(),
			RANAEnergy:  re.Total(),
			Normalized:  re.Normalize(oe),
			RANAPattern: rana.Plan.Layers[i].Analysis.Pattern.String(),
		}
	}
	return rows, nil
}

// Fig18Cell is one (capacity, model, design) system-energy bar,
// normalized per model to RANA (E-5) at the smallest capacity.
type Fig18Cell struct {
	CapacityWords uint64
	Model         string
	Design        string
	Energy        energy.Breakdown
}

// Fig18Capacities returns the swept capacities: 0.25×–8× of 1.454 MB.
func Fig18Capacities() []uint64 {
	base := uint64(hw.TestEDRAMWords)
	return []uint64{base / 4, base / 2, base, base * 2, base * 4, base * 8}
}

// Figure18 sweeps buffer capacity for RANA (E-5) and RANA*(E-5).
func Figure18() ([]Fig18Cell, error) {
	p := platform.Test()
	nets := models.Benchmarks()
	var cells []Fig18Cell
	for _, n := range nets {
		var base float64
		for _, d := range []platform.Design{platform.RANAE5(), platform.RANAStarE5()} {
			for _, cap := range Fig18Capacities() {
				r, err := p.Evaluate(d.WithBufferWords(cap), n)
				if err != nil {
					return nil, err
				}
				e := r.Energy()
				if base == 0 {
					base = e.Total()
				}
				cells = append(cells, Fig18Cell{
					CapacityWords: cap, Model: n.Name, Design: d.Name,
					Energy: e.Scale(1 / base),
				})
			}
		}
	}
	return cells, nil
}

// Fig19Cell is one (design, model) bar of the DaDianNao study,
// normalized per model to the DaDianNao baseline.
type Fig19Cell struct {
	Design string
	Model  string
	Energy energy.Breakdown
}

// Figure19 applies the RANA variants to the DaDianNao node (§V-C).
func Figure19() ([]Fig19Cell, error) {
	p := platform.DaDianNao()
	nets := models.Benchmarks()
	var cells []Fig19Cell
	base := make([]energy.Breakdown, len(nets))
	for i, d := range platform.DaDianNaoDesigns() {
		for j, n := range nets {
			r, err := p.EvaluateFixedTiling(d, n, platform.DaDianNaoTiling())
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base[j] = r.Energy()
			}
			cells = append(cells, Fig19Cell{
				Design: d.Name, Model: n.Name,
				Energy: r.Energy().Normalize(base[j]),
			})
		}
	}
	return cells, nil
}

// HeadlineResult carries the §V-B1 summary claims as measured here.
type HeadlineResult struct {
	// RefreshRemovedVsEDID is the fraction of eD+ID's refresh operations
	// RANA*(E-5) removes (paper: 99.7%).
	RefreshRemovedVsEDID float64
	// OffChipSavedVsSID is the average off-chip energy saving of
	// RANA*(E-5) vs S+ID (paper: 41.7%).
	OffChipSavedVsSID float64
	// EnergySavedVsSID is the geometric-mean system energy saving of
	// RANA*(E-5) vs S+ID (paper: 66.2%).
	EnergySavedVsSID float64
}

// Headline computes the summary claims from the Fig. 15 evaluation.
func Headline() (HeadlineResult, error) {
	p := platform.Test()
	nets := models.Benchmarks()
	results, err := p.EvaluateAll(
		[]platform.Design{platform.SID(), platform.EDID(), platform.RANAStarE5()}, nets)
	if err != nil {
		return HeadlineResult{}, err
	}
	var h HeadlineResult
	var edidRefresh, starRefresh uint64
	offSum, geo := 0.0, 1.0
	for j := range nets {
		sid := results[0][j].Energy()
		star := results[2][j].Energy()
		edidRefresh += results[1][j].Plan.Totals.Refreshes
		starRefresh += results[2][j].Plan.Totals.Refreshes
		offSum += 1 - star.OffChip/sid.OffChip
		geo *= star.Total() / sid.Total()
	}
	h.RefreshRemovedVsEDID = 1 - float64(starRefresh)/float64(edidRefresh)
	h.OffChipSavedVsSID = offSum / float64(len(nets))
	h.EnergySavedVsSID = 1 - math.Pow(geo, 1/float64(len(nets)))
	return h, nil
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Data:  func() (any, error) { return Figure1() },
		Title: "Energy breakdown of ResNet on the eD+ID platform",
		Run: func(w io.Writer) error {
			rows, err := Figure1()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %10s %10s %10s %10s\n", "Stage", "Computing", "Buffer", "Refresh", "OffChip")
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%-10s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n", r.Stage,
					r.Share.Computing*100, r.Share.BufferAccess*100,
					r.Share.Refresh*100, r.Share.OffChip*100); err != nil {
					return err
				}
			}
			return nil
		},
	})
	register(Experiment{
		ID:    "fig15",
		Data:  func() (any, error) { return Figure15() },
		Title: "Total system energy comparison (normalized to S+ID)",
		Run: func(w io.Writer) error {
			cells, err := Figure15()
			if err != nil {
				return err
			}
			return printEnergyMatrix(w, func() []matrixCell {
				out := make([]matrixCell, len(cells))
				for i, c := range cells {
					out[i] = matrixCell{c.Design, c.Model, c.Energy}
				}
				return out
			}())
		},
	})
	register(Experiment{
		ID:    "fig16",
		Data:  func() (any, error) { return Figure16() },
		Title: "Accelerator energy vs retention time on ResNet",
		Run: func(w io.Writer) error {
			cells, err := Figure16()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%10s %-10s %12s %12s\n", "RT", "Design", "AccelEnergy", "Refresh")
			for _, c := range cells {
				if _, err := fmt.Fprintf(w, "%10s %-10s %12.3f %12.3f\n",
					us(c.RetentionTime), c.Design, c.Accelerator, c.Refresh); err != nil {
					return err
				}
			}
			return nil
		},
	})
	register(Experiment{
		ID:    "fig17",
		Data:  func() (any, error) { return Figure17() },
		Title: "Layerwise system energy on VGG: eD+OD vs RANA (0)",
		Run: func(w io.Writer) error {
			rows, err := Figure17()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-10s %8s %10s %10s %10s %10s\n", "Layer", "Pattern", "Rel.Total", "Buffer", "Refresh", "OffChip")
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%-10s %8s %10.3f %10.3f %10.3f %10.3f\n",
					r.Layer, r.RANAPattern, r.Normalized.Total(),
					r.Normalized.BufferAccess, r.Normalized.Refresh, r.Normalized.OffChip); err != nil {
					return err
				}
			}
			return nil
		},
	})
	register(Experiment{
		ID:    "fig18",
		Data:  func() (any, error) { return Figure18() },
		Title: "System energy vs buffer capacity: RANA (E-5) vs RANA*(E-5)",
		Run: func(w io.Writer) error {
			cells, err := Figure18()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s %-12s %10s %10s %10s\n", "Model", "Design", "Capacity", "Total", "Refresh")
			for _, c := range cells {
				if _, err := fmt.Fprintf(w, "%-12s %-12s %8.3fMB %10.3f %10.3f\n",
					c.Model, c.Design, models.PaperMB(c.CapacityWords),
					c.Energy.Total(), c.Energy.Refresh); err != nil {
					return err
				}
			}
			return nil
		},
	})
	register(Experiment{
		ID:    "fig19",
		Data:  func() (any, error) { return Figure19() },
		Title: "Scalability analysis on DaDianNao",
		Run: func(w io.Writer) error {
			cells, err := Figure19()
			if err != nil {
				return err
			}
			return printEnergyMatrix(w, func() []matrixCell {
				out := make([]matrixCell, len(cells))
				for i, c := range cells {
					out[i] = matrixCell{c.Design, c.Model, c.Energy}
				}
				return out
			}())
		},
	})
	register(Experiment{
		ID:    "headline",
		Data:  func() (any, error) { return Headline() },
		Title: "§V-B1 headline claims (paper: 99.7% / 41.7% / 66.2%)",
		Run: func(w io.Writer) error {
			h, err := Headline()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "eDRAM refresh operations removed vs eD+ID: %5.1f%% (paper 99.7%%)\n", h.RefreshRemovedVsEDID*100)
			fmt.Fprintf(w, "off-chip memory access saved vs S+ID:      %5.1f%% (paper 41.7%%)\n", h.OffChipSavedVsSID*100)
			fmt.Fprintf(w, "system energy saved vs S+ID:               %5.1f%% (paper 66.2%%)\n", h.EnergySavedVsSID*100)
			return nil
		},
	})
}

type matrixCell struct {
	design, model string
	e             energy.Breakdown
}

// printEnergyMatrix prints design rows × model columns of normalized
// totals with a per-cell breakdown suffix.
func printEnergyMatrix(w io.Writer, cells []matrixCell) error {
	var designs, modelsSeen []string
	seenD, seenM := map[string]bool{}, map[string]bool{}
	vals := map[[2]string]energy.Breakdown{}
	for _, c := range cells {
		if !seenD[c.design] {
			seenD[c.design] = true
			designs = append(designs, c.design)
		}
		if !seenM[c.model] {
			seenM[c.model] = true
			modelsSeen = append(modelsSeen, c.model)
		}
		vals[[2]string{c.design, c.model}] = c.e
	}
	fmt.Fprintf(w, "%-12s", "Design")
	for _, m := range modelsSeen {
		fmt.Fprintf(w, " %10s", m)
	}
	fmt.Fprintln(w)
	for _, d := range designs {
		fmt.Fprintf(w, "%-12s", d)
		for _, m := range modelsSeen {
			fmt.Fprintf(w, " %10.3f", vals[[2]string{d, m}].Total())
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
