package experiments

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"rana/internal/hw"
	"rana/internal/retention"
	"rana/internal/training"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig1", "fig7", "fig8", "fig11", "fig12",
		"fig15", "fig16", "fig17", "fig18", "fig19",
		"ext1", "ext2", "ext3", "ext4", "ext5", "headline", "repro",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("All()[%d] = %s, want %s (sorted order)", i, all[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%s) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID false positive")
	}
}

func TestRunAllPrintsEverything(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"table1", "fig15", "GEO MEAN", "RANA*(E-5)", "DaDianNao", "headline",
		"res4a_branch1", "conv4_2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatal("want 4 rows")
	}
	if rows[1].Model != "VGG" || math.Abs(rows[1].MaxInputMB()-6.27) > 0.01 {
		t.Errorf("VGG row = %+v", rows[1])
	}
}

func TestTable3RelativeColumn(t *testing.T) {
	rows := Table3()
	if rows[0].Relative != 1 {
		t.Error("MAC should be the 1.0x baseline")
	}
	if rows[4].Relative < 1500 {
		t.Errorf("DDR relative = %.0f", rows[4].Relative)
	}
}

func TestFigure1RefreshDominates(t *testing.T) {
	rows, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d stages", len(rows))
	}
	// The Fig. 1 motivation: refresh is a substantial share of every
	// stage's energy on the eD+ID platform.
	for _, r := range rows {
		if r.Share.Refresh < 0.1 {
			t.Errorf("stage %s refresh share %.2f, want ≥0.1", r.Stage, r.Share.Refresh)
		}
		if math.Abs(r.Share.Total()-1) > 1e-9 {
			t.Errorf("stage %s shares sum to %g", r.Stage, r.Share.Total())
		}
	}
}

func TestFigure7AllAboveConventionalRT(t *testing.T) {
	rows := Figure7()
	if len(rows) != 53 {
		t.Fatalf("%d layers", len(rows))
	}
	over45, over734 := 0, 0
	for _, r := range rows {
		if r.ExceedRT {
			over45++
		}
		if r.Exceed16 {
			over734++
		}
	}
	// §IV-B: ALL layers' lifetime exceeds the typical 45 µs; only a few
	// layers sit below the 734 µs line.
	if over45 != len(rows) {
		t.Errorf("only %d/%d layers above 45µs; paper reports all", over45, len(rows))
	}
	if free := len(rows) - over734; free < 1 || free > 10 {
		t.Errorf("%d layers below 734µs; paper reports only a few (three)", free)
	}
	// Layer-A's lifetime anchor.
	for _, r := range rows {
		if r.Layer == "res4a_branch1" {
			if math.Abs(float64(r.Input)/float64(time.Microsecond)-2294) > 2 {
				t.Errorf("Layer-A LTi = %v, want ≈2294µs", r.Input)
			}
		}
	}
}

func TestFigure8Anchors(t *testing.T) {
	curve := Figure8()
	if len(curve) != 25 {
		t.Fatalf("curve length %d", len(curve))
	}
	prev := 0.0
	for _, a := range curve {
		if a.Rate < prev {
			t.Fatal("curve not monotone")
		}
		prev = a.Rate
	}
}

func TestFigure11Shape(t *testing.T) {
	rows := Figure11()
	if len(rows) != 4*len(training.PaperRates) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Rate == 1e-5 && r.Relative < 0.995 {
			t.Errorf("%s at 1e-5: %.4f — paper reports no loss", r.Model, r.Relative)
		}
	}
}

func TestFigure12Complementarity(t *testing.T) {
	rows := Figure12()
	// §IV-C2: weights grow with depth while activations shrink — compare
	// the first and last conv stages.
	first, last := rows[1], rows[len(rows)-1]
	if !(first.InputMB > first.WeightMB) {
		t.Errorf("shallow layer should be activation-dominated: %+v", first)
	}
	if !(last.WeightMB > last.InputMB) {
		t.Errorf("deep layer should be weight-dominated: %+v", last)
	}
}

func TestFigure15Normalization(t *testing.T) {
	cells, err := Figure15()
	if err != nil {
		t.Fatal(err)
	}
	// 6 designs × (4 models + GEO MEAN).
	if len(cells) != 6*5 {
		t.Fatalf("%d cells", len(cells))
	}
	for _, c := range cells {
		if c.Design == "S+ID" && math.Abs(c.Energy.Total()-1) > 1e-9 {
			t.Errorf("S+ID %s = %.4f, want 1", c.Model, c.Energy.Total())
		}
		if c.Design == "RANA*(E-5)" && c.Model == "GEO MEAN" {
			if c.Energy.Total() > 0.6 {
				t.Errorf("RANA* geomean = %.3f, want well below S+ID", c.Energy.Total())
			}
		}
	}
}

func TestFigure16PaperRatios(t *testing.T) {
	cells, err := Figure16()
	if err != nil {
		t.Fatal(err)
	}
	at := func(rt time.Duration, d string) Fig16Cell {
		for _, c := range cells {
			if c.RetentionTime == rt && c.Design == d {
				return c
			}
		}
		t.Fatalf("cell %v/%s missing", rt, d)
		return Fig16Cell{}
	}
	// §V-B2: from 90 µs to 180 µs, eD+ID refresh halves (interval
	// doubles) while eD+OD's drops by ≈80% (more layers duck under RT).
	idDrop := 1 - at(180*time.Microsecond, "eD+ID").Refresh/at(90*time.Microsecond, "eD+ID").Refresh
	odDrop := 1 - at(180*time.Microsecond, "eD+OD").Refresh/at(90*time.Microsecond, "eD+OD").Refresh
	if math.Abs(idDrop-0.5) > 0.05 {
		t.Errorf("eD+ID refresh drop 90→180µs = %.1f%%, paper 50.0%%", idDrop*100)
	}
	if odDrop < 0.7 {
		t.Errorf("eD+OD refresh drop 90→180µs = %.1f%%, paper 80.1%%", odDrop*100)
	}
	// At 720 µs, eD+OD is almost refresh-free while eD+ID still refreshes.
	if at(720*time.Microsecond, "eD+OD").Refresh > 0.02 {
		t.Error("eD+OD should be nearly refresh-free at 720µs")
	}
	if at(720*time.Microsecond, "eD+ID").Refresh < 0.02 {
		t.Error("eD+ID should still pay visible refresh at 720µs")
	}
}

func TestFigure17WDWins(t *testing.T) {
	rows, err := Figure17()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("%d rows", len(rows))
	}
	// §V-B3: on the large shallow layers RANA picks WD and cuts energy
	// roughly in half or better (paper: 47.8–67.0% lower).
	wins := 0
	for _, r := range rows[1:8] {
		if r.RANAPattern == "WD" && r.Normalized.Total() < 0.7 {
			wins++
		}
	}
	if wins < 4 {
		t.Errorf("only %d of layers 2-8 show the WD win", wins)
	}
	// Elsewhere RANA never does worse than eD+OD.
	for _, r := range rows {
		if r.Normalized.Total() > 1+1e-9 {
			t.Errorf("%s: RANA(0) %.3f worse than eD+OD", r.Layer, r.Normalized.Total())
		}
	}
}

func TestFigure18RisingVsFlat(t *testing.T) {
	cells, err := Figure18()
	if err != nil {
		t.Fatal(err)
	}
	caps := Fig18Capacities()
	refresh := func(model, design string, cap uint64) float64 {
		for _, c := range cells {
			if c.Model == model && c.Design == design && c.CapacityWords == cap {
				return c.Energy.Refresh
			}
		}
		t.Fatalf("cell missing")
		return 0
	}
	// §V-B4 on AlexNet: the conventional controller's refresh grows with
	// capacity; the optimized controller's does not.
	convGrowth := refresh("AlexNet", "RANA (E-5)", caps[5]) - refresh("AlexNet", "RANA (E-5)", caps[0])
	if convGrowth <= 0 {
		t.Errorf("conventional refresh should grow with capacity, delta = %g", convGrowth)
	}
	optGrowth := refresh("AlexNet", "RANA*(E-5)", caps[5]) - refresh("AlexNet", "RANA*(E-5)", caps[0])
	if optGrowth > convGrowth/4 {
		t.Errorf("optimized refresh growth %g should be far below conventional %g", optGrowth, convGrowth)
	}
	// §V-B4: the optimized controller never loses on total energy at any
	// capacity. (Its refresh *component* can exceed the conventional
	// design's: cheap per-bank refresh lets the scheduler accept a little
	// refresh to buy larger DDR savings.)
	total := func(model, design string, cap uint64) float64 {
		for _, c := range cells {
			if c.Model == model && c.Design == design && c.CapacityWords == cap {
				return c.Energy.Total()
			}
		}
		t.Fatalf("cell missing")
		return 0
	}
	for _, m := range []string{"AlexNet", "VGG", "GoogLeNet", "ResNet"} {
		for _, cap := range caps {
			if total(m, "RANA*(E-5)", cap) > total(m, "RANA (E-5)", cap)+1e-9 {
				t.Errorf("%s @%d: optimized total above conventional", m, cap)
			}
		}
	}
}

func TestFigure19PaperShape(t *testing.T) {
	cells, err := Figure19()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4*4 {
		t.Fatalf("%d cells", len(cells))
	}
	get := func(d, m string) Fig19Cell {
		for _, c := range cells {
			if c.Design == d && c.Model == m {
				return c
			}
		}
		t.Fatalf("missing %s/%s", d, m)
		return Fig19Cell{}
	}
	for _, m := range []string{"AlexNet", "VGG", "GoogLeNet", "ResNet"} {
		base := get("DaDianNao", m)
		star := get("RANA*(E-5)", m)
		// §V-C: big buffer-access savings, big system savings, identical
		// off-chip energy.
		if sav := 1 - get("RANA (0)", m).Energy.BufferAccess/base.Energy.BufferAccess; sav < 0.9 {
			t.Errorf("%s: buffer saving %.2f, paper 97.2%%", m, sav)
		}
		if star.Energy.Total() > 0.6 {
			t.Errorf("%s: RANA* total %.3f, paper saves 69.4%%", m, star.Energy.Total())
		}
		if math.Abs(star.Energy.OffChip-base.Energy.OffChip) > 1e-9 {
			t.Errorf("%s: off-chip changed", m)
		}
	}
}

func TestHeadlineClaims(t *testing.T) {
	h, err := Headline()
	if err != nil {
		t.Fatal(err)
	}
	if h.RefreshRemovedVsEDID < 0.98 {
		t.Errorf("refresh removed = %.3f, paper 0.997", h.RefreshRemovedVsEDID)
	}
	if h.OffChipSavedVsSID < 0.25 || h.OffChipSavedVsSID > 0.6 {
		t.Errorf("off-chip saved = %.3f, paper 0.417", h.OffChipSavedVsSID)
	}
	if h.EnergySavedVsSID < 0.4 {
		t.Errorf("energy saved = %.3f, paper 0.662", h.EnergySavedVsSID)
	}
}

func TestFig18CapacitiesSpanPaperSweep(t *testing.T) {
	caps := Fig18Capacities()
	if len(caps) != 6 {
		t.Fatal("want 6 capacities")
	}
	if caps[2] != uint64(hw.TestEDRAMWords) {
		t.Error("middle capacity should be the 1.454MB design point")
	}
	if caps[0]*32 != caps[5] {
		t.Error("sweep should span 0.25x..8x")
	}
}

var _ = retention.TypicalRetentionTime

func TestExtension1Ordering(t *testing.T) {
	rows, err := Extension1DifferentialRefresh()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// Uniform tolerable ≤ differential ≤ fully conservative.
		if !(r.Uniform734 <= r.Differential && r.Differential <= r.Uniform45) {
			t.Errorf("%s: ordering violated: %d / %d / %d", r.Model, r.Uniform734, r.Differential, r.Uniform45)
		}
		if r.Uniform45 == 0 {
			t.Errorf("%s: conservative policy should refresh", r.Model)
		}
		// The differential policy is cheaper than fully conservative:
		// only weight banks run at 45 µs. (On VGG, where the hybrid
		// schedule keeps large weight sets resident, the gap narrows.)
		if r.Differential > r.Uniform45*4/5 {
			t.Errorf("%s: differential %d not below conservative %d", r.Model, r.Differential, r.Uniform45)
		}
	}
}

func TestExtension2GuardMonotone(t *testing.T) {
	rows, err := Extension2GuardBand()
	if err != nil {
		t.Fatal(err)
	}
	// For each model, a smaller guard (more conservative) never reduces
	// refresh energy.
	byModel := map[string][]Ext2Row{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
	}
	for m, rs := range byModel {
		for i := 1; i < len(rs); i++ {
			if rs[i].Refresh < rs[i-1].Refresh-1e-9 {
				t.Errorf("%s: refresh decreased when guard tightened %g→%g",
					m, rs[i-1].Guard, rs[i].Guard)
			}
		}
	}
}

func TestRunJSON(t *testing.T) {
	for _, e := range All() {
		if e.Data == nil {
			t.Errorf("%s has no data generator", e.ID)
			continue
		}
		var buf bytes.Buffer
		if err := e.RunJSON(&buf); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		var decoded map[string]any
		if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
			t.Errorf("%s: invalid JSON: %v", e.ID, err)
			continue
		}
		if decoded["id"] != e.ID {
			t.Errorf("%s: JSON id = %v", e.ID, decoded["id"])
		}
		if decoded["data"] == nil {
			t.Errorf("%s: nil data", e.ID)
		}
	}
	// Artifacts without data generators report an error.
	bare := Experiment{ID: "bare"}
	if err := bare.RunJSON(&bytes.Buffer{}); err == nil {
		t.Error("bare experiment should fail RunJSON")
	}
}

func TestExtension3BatchShape(t *testing.T) {
	rows, err := Extension3Batch()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*len(Ext3Batches) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Batch == 1 {
			if math.Abs(r.PerImage-1) > 1e-9 || r.WeightDDRSaved != 0 {
				t.Errorf("%s batch 1 should be the unit baseline: %+v", r.Model, r)
			}
			continue
		}
		// Batching never increases per-image energy beyond noise.
		if r.PerImage > 1.01 {
			t.Errorf("%s batch %d: per-image energy %.3f rose", r.Model, r.Batch, r.PerImage)
		}
	}
	// Weight-heavy-but-fitting nets benefit substantially at batch 16.
	for _, r := range rows {
		if r.Model == "GoogLeNet" && r.Batch == 16 && r.PerImage > 0.8 {
			t.Errorf("GoogLeNet batch 16 per-image = %.3f, want substantial amortization", r.PerImage)
		}
	}
}

func TestCharts(t *testing.T) {
	for _, id := range []string{"fig1", "fig15", "fig16", "fig19"} {
		c, err := Chart(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		out := c.Render()
		if len(out) == 0 || !strings.Contains(out, "legend:") {
			t.Errorf("%s: bad render:\n%s", id, out)
		}
	}
	// Fig. 15's chart normalizes to S+ID: its GEO MEAN bar totals 1.
	c, _ := Chart("fig15")
	if math.Abs(c.Rows[0].Total()-1) > 1e-9 {
		t.Errorf("S+ID bar total = %g", c.Rows[0].Total())
	}
	if _, err := Chart("table1"); err == nil {
		t.Error("non-figure chart should error")
	}
}

func TestExtension4Ordering(t *testing.T) {
	rows, err := Extension4Architecture()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Design != "eD+ID" {
		t.Fatalf("rows = %+v", rows)
	}
	get := func(name string) float64 {
		for _, r := range rows {
			if r.Design == name {
				return r.GeoMean
			}
		}
		t.Fatalf("design %s missing", name)
		return 0
	}
	if math.Abs(get("eD+ID")-1) > 1e-9 {
		t.Error("eD+ID anchors the normalization")
	}
	// The RANA ladder holds on the foreign geometry. (eD+OD alone may
	// lose to eD+ID here: at 424 KB its output spills dominate — a real
	// small-buffer effect the hybrid pattern fixes.)
	if !(get("RANA (0)") < 1) {
		t.Error("RANA (0) should beat eD+ID")
	}
	if !(get("RANA (E-5)") < get("RANA (0)")) {
		t.Error("longer tolerable retention should help")
	}
	if get("RANA*(E-5)") > get("RANA (E-5)")+1e-9 {
		t.Error("optimized controller should not regress")
	}
	if get("RANA*(E-5)") > 0.6 {
		t.Errorf("RANA* geomean = %.3f, want a substantial saving", get("RANA*(E-5)"))
	}
}

func TestExtension5Robustness(t *testing.T) {
	rows, err := Extension5Sensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		// RANA wins at every point of the ±2× coefficient grid.
		if r.EnergySaved < 0.3 {
			t.Errorf("ddr×%.1f refresh×%.1f: saving %.1f%% — headline not robust",
				r.DDRScale, r.RefreshScale, r.EnergySaved*100)
		}
	}
}

func TestReproReportAllClaimsInBand(t *testing.T) {
	rows, err := ReproReport()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 15 {
		t.Fatalf("only %d claims", len(rows))
	}
	for _, r := range rows {
		if !r.OK {
			t.Errorf("%s %q: measured %.3f%s outside [%.3g, %.3g] (paper %.3f)",
				r.Source, r.Claim, r.Measured, r.Unit, r.Lo, r.Hi, r.Paper)
		}
	}
}
