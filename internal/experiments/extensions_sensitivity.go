package experiments

// Extension 5: sensitivity of the headline result to the technology
// constants. Table III's energies come from one 65 nm characterization;
// other nodes and DRAM generations shift the DDR and refresh costs by
// integer factors. This experiment recomputes the RANA*(E-5)-vs-S+ID
// saving under scaled coefficients to show the conclusion is not an
// artifact of one constant.

import (
	"fmt"
	"io"
	"math"

	"rana/internal/energy"
	"rana/internal/models"
	"rana/internal/platform"
)

// Ext5Row is one (DDR scale, refresh scale) point.
type Ext5Row struct {
	DDRScale     float64
	RefreshScale float64
	// EnergySaved is RANA*(E-5)'s geometric-mean system-energy saving
	// vs S+ID under the scaled constants.
	EnergySaved float64
}

// Extension5Sensitivity sweeps the off-chip and refresh energy constants
// over ±2× and recomputes the headline saving from the design points'
// operation counts (which are re-scheduled per scale would be even
// stronger; the counts here are those of the nominal schedule, making
// this a conservative robustness check).
func Extension5Sensitivity() ([]Ext5Row, error) {
	p := platform.Test()
	nets := models.Benchmarks()
	results, err := p.EvaluateAll([]platform.Design{platform.SID(), platform.RANAStarE5()}, nets)
	if err != nil {
		return nil, err
	}
	scales := []float64{0.5, 1, 2}
	var rows []Ext5Row
	for _, kd := range scales {
		for _, kr := range scales {
			geo := 1.0
			for j := range nets {
				sid := scaledEnergy(results[0][j].Plan.Totals, energy.SRAM, kd, kr)
				star := scaledEnergy(results[1][j].Plan.Totals, energy.EDRAM, kd, kr)
				geo *= star / sid
			}
			rows = append(rows, Ext5Row{
				DDRScale: kd, RefreshScale: kr,
				EnergySaved: 1 - math.Pow(geo, 1/float64(len(nets))),
			})
		}
	}
	return rows, nil
}

// scaledEnergy prices counts with scaled DDR and refresh coefficients.
func scaledEnergy(c energy.Counts, tech energy.BufferTech, ddrScale, refreshScale float64) float64 {
	return float64(c.MACs)*energy.MACpJ +
		float64(c.BufferAccesses)*tech.AccessPJ() +
		float64(c.Refreshes)*tech.RefreshPJ()*refreshScale +
		float64(c.DDRAccesses)*energy.DDRAccessPJ*ddrScale
}

func init() {
	register(Experiment{
		ID:    "ext5",
		Title: "Extension: sensitivity of the headline saving to Table III constants",
		Data:  func() (any, error) { return Extension5Sensitivity() },
		Run: func(w io.Writer) error {
			rows, err := Extension5Sensitivity()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%10s %14s %14s\n", "DDR scale", "refresh scale", "energy saved")
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%10.1fx %13.1fx %13.1f%%\n",
					r.DDRScale, r.RefreshScale, r.EnergySaved*100); err != nil {
					return err
				}
			}
			fmt.Fprintln(w, "RANA*(E-5) vs S+ID geometric-mean saving under scaled constants")
			return nil
		},
	})
}
