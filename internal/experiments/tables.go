package experiments

import (
	"fmt"
	"io"

	"rana/internal/energy"
	"rana/internal/models"
)

// Table1 returns the data storage requirements of the four benchmark
// CNNs in 16-bit precision (Table I).
func Table1() []models.StorageSummary {
	out := make([]models.StorageSummary, 0, 4)
	for _, n := range models.Benchmarks() {
		out = append(out, n.Summarize())
	}
	return out
}

// Table2Row is one row of the SRAM-vs-eDRAM characteristics comparison.
type Table2Row struct {
	Characteristic string
	SRAM, EDRAM    string
}

// Table2 returns the Table II characteristics (32 KB banks, 65 nm).
func Table2() []Table2Row {
	return []Table2Row{
		{"Data Storage", "Latch", "Capacitor"},
		{"Area", fmt.Sprintf("%.3fmm2", energy.SRAMBankAreaMM2), fmt.Sprintf("%.3fmm2", energy.EDRAMBankAreaMM2)},
		{"Access Latency", fmt.Sprintf("%.3fns", energy.SRAMLatencyNS), fmt.Sprintf("%.3fns", energy.EDRAMLatencyNS)},
		{"Access Energy", fmt.Sprintf("%.3fpJ/bit", energy.SRAMAccessPJ/16), fmt.Sprintf("%.3fpJ/bit", energy.EDRAMAccessPJ/16)},
		{"Refresh Energy", "-", fmt.Sprintf("%.3fuJ/bank", energy.EDRAMBankRefreshUJ)},
		{"Retention Time", "-", "<100us (45us typical)"},
	}
}

// Table3Row is one row of the operation energy cost table.
type Table3Row struct {
	Operation string
	EnergyPJ  float64
	Relative  float64
}

// Table3 returns the Table III energy costs in the 65 nm node.
func Table3() []Table3Row {
	rows := []Table3Row{
		{"16-bit Fixed-Point MAC", energy.MACpJ, 0},
		{"16-bit 32KB SRAM Access", energy.SRAMAccessPJ, 0},
		{"16-bit 32KB eDRAM Access", energy.EDRAMAccessPJ, 0},
		{"16-bit 32KB eDRAM Refresh", energy.EDRAMRefreshPJ, 0},
		{"16-bit 1GB DDR3 Access", energy.DDRAccessPJ, 0},
	}
	for i := range rows {
		rows[i].Relative = rows[i].EnergyPJ / energy.MACpJ
	}
	return rows
}

func init() {
	register(Experiment{
		ID:    "table1",
		Data:  func() (any, error) { return Table1(), nil },
		Title: "Data storage requirements of CNNs (16-bit)",
		Run: func(w io.Writer) error {
			fmt.Fprintf(w, "%-12s %-12s %-12s %-12s\n", "CNN Model", "Max Inputs", "Max Outputs", "Max Weights")
			for _, s := range Table1() {
				if _, err := fmt.Fprintf(w, "%-12s %-12s %-12s %-12s\n", s.Model,
					fmt.Sprintf("%.2fMB", s.MaxInputMB()),
					fmt.Sprintf("%.2fMB", s.MaxOutputMB()),
					fmt.Sprintf("%.2fMB", s.MaxWeightMB())); err != nil {
					return err
				}
			}
			return nil
		},
	})
	register(Experiment{
		ID:    "table2",
		Data:  func() (any, error) { return Table2(), nil },
		Title: "SRAM vs eDRAM characteristics (32KB, 65nm)",
		Run: func(w io.Writer) error {
			fmt.Fprintf(w, "%-16s %-14s %-14s\n", "", "SRAM", "eDRAM")
			for _, r := range Table2() {
				if _, err := fmt.Fprintf(w, "%-16s %-14s %-14s\n", r.Characteristic, r.SRAM, r.EDRAM); err != nil {
					return err
				}
			}
			return nil
		},
	})
	register(Experiment{
		ID:    "table3",
		Data:  func() (any, error) { return Table3(), nil },
		Title: "Energy cost in the 65nm technology node",
		Run: func(w io.Writer) error {
			fmt.Fprintf(w, "%-28s %10s %10s\n", "Operation", "Energy", "Relative")
			for _, r := range Table3() {
				if _, err := fmt.Fprintf(w, "%-28s %9.1fpJ %9.1fx\n", r.Operation, r.EnergyPJ, r.Relative); err != nil {
					return err
				}
			}
			return nil
		},
	})
}
