// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) plus the preliminary tables, printing the same rows and
// series the paper reports. Each experiment has a typed generator —
// consumed by tests and benchmarks — and a writer-based printer used by
// cmd/rana-experiments.
//
// Absolute energies come from this repository's simulator rather than the
// authors' RTL testbed, so magnitudes differ; the reproduced quantity is
// the paper's shape: who wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records paper-vs-measured per artifact.
package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable artifact.
type Experiment struct {
	// ID is the index key, e.g. "fig15" or "table1".
	ID string
	// Title is the paper's caption, abbreviated.
	Title string
	// Run prints the artifact to w.
	Run func(w io.Writer) error
	// Data returns the artifact's typed rows for machine consumption
	// (JSON export, plotting pipelines). Nil for purely textual
	// artifacts.
	Data func() (any, error)
}

// RunJSON writes the artifact's typed data as indented JSON.
func (e Experiment) RunJSON(w io.Writer) error {
	if e.Data == nil {
		return fmt.Errorf("experiments: %s has no data generator", e.ID)
	}
	data, err := e.Data()
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(map[string]any{"id": e.ID, "title": e.Title, "data": data})
}

// registry is populated by the artifact files' init functions.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("experiments: duplicate id " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID (tables first, then figures
// by number, headline last — the IDs are chosen to sort naturally).
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return orderKey(out[i].ID) < orderKey(out[j].ID) })
	return out
}

// orderKey sorts table1..3, fig1..fig19, headline.
func orderKey(id string) string {
	var n int
	switch {
	case len(id) > 5 && id[:5] == "table":
		fmt.Sscanf(id[5:], "%d", &n)
		return fmt.Sprintf("0-%02d", n)
	case len(id) > 3 && id[:3] == "fig":
		fmt.Sscanf(id[3:], "%d", &n)
		return fmt.Sprintf("1-%02d", n)
	default:
		return "2-" + id
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAll prints every experiment to w, separated by headers.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "==== %s: %s ====\n", e.ID, e.Title); err != nil {
			return err
		}
		if err := e.Run(w); err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
