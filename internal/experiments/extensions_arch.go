package experiments

// Extension 4: architecture generality. The paper validates RANA on its
// own test accelerator and on DaDianNao; this experiment adds a third,
// very different geometry — a small Eyeriss-class 12×14 spatial array
// with 424 KB of eDRAM — and checks that the design-point ordering
// (eD+ID > eD+OD > RANA(0) > RANA(E-5) ≥ RANA*(E-5)) survives.

import (
	"fmt"
	"io"
	"math"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/platform"
	"rana/internal/retention"
)

// Ext4Row is one design's geometric-mean energy across the benchmarks on
// the Eyeriss-like platform, normalized to eD+ID.
type Ext4Row struct {
	Design  string
	GeoMean float64
}

// Extension4Architecture evaluates the eDRAM design ladder on the
// Eyeriss-like platform. The SRAM baseline is omitted (the platform is
// defined as eDRAM-refitted), so eD+ID anchors the normalization.
func Extension4Architecture() ([]Ext4Row, error) {
	p := &platform.Platform{Base: hw.EyerissLike(), Dist: retention.Typical()}
	designs := []platform.Design{
		platform.EDID(), platform.EDOD(), platform.RANA0(),
		platform.RANAE5(), platform.RANAStarE5(),
	}
	nets := models.Benchmarks()
	base := make([]float64, len(nets))
	var rows []Ext4Row
	for i, d := range designs {
		// Capacity comes from the platform, not the Table IV constant.
		d.BufferWords = hw.EyerissLike().BufferWords
		geo := 1.0
		for j, n := range nets {
			r, err := p.Evaluate(d, n)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				base[j] = r.Energy().Total()
			}
			geo *= r.Energy().Total() / base[j]
		}
		rows = append(rows, Ext4Row{Design: d.Name, GeoMean: math.Pow(geo, 1/float64(len(nets)))})
	}
	return rows, nil
}

func init() {
	register(Experiment{
		ID:    "ext4",
		Title: "Extension: RANA on an Eyeriss-like spatial accelerator",
		Data:  func() (any, error) { return Extension4Architecture() },
		Run: func(w io.Writer) error {
			rows, err := Extension4Architecture()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s %10s\n", "Design", "GeoMean")
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%-12s %10.3f\n", r.Design, r.GeoMean); err != nil {
					return err
				}
			}
			fmt.Fprintln(w, "normalized to eD+ID on the 168-PE, 424KB-eDRAM platform")
			return nil
		},
	})
}
