package experiments

// Terminal-chart views of the stacked-bar figures (internal/viz): the
// closest the CLI gets to the paper's plots.

import (
	"fmt"

	"rana/internal/viz"
)

// Chart builds a terminal stacked-bar chart for a figure ID. Only the
// energy-breakdown figures have chart forms; others return an error.
func Chart(id string) (*viz.Chart, error) {
	switch id {
	case "fig1":
		rows, err := Figure1()
		if err != nil {
			return nil, err
		}
		c := &viz.Chart{
			Title:  "Fig. 1 — ResNet energy breakdown on eD+ID (per-stage shares)",
			Legend: viz.BreakdownLegend(),
		}
		for _, r := range rows {
			c.Rows = append(c.Rows, viz.Row{Label: r.Stage, Parts: []float64{
				r.Share.Computing, r.Share.BufferAccess, r.Share.Refresh, r.Share.OffChip,
			}})
		}
		return c, nil

	case "fig15":
		cells, err := Figure15()
		if err != nil {
			return nil, err
		}
		c := &viz.Chart{
			Title:  "Fig. 15 — total system energy, normalized to S+ID (GEO MEAN bars)",
			Legend: viz.BreakdownLegend(),
		}
		for _, cell := range cells {
			if cell.Model != "GEO MEAN" {
				continue
			}
			e := cell.Energy
			c.Rows = append(c.Rows, viz.Row{Label: cell.Design, Parts: []float64{
				e.Computing, e.BufferAccess, e.Refresh, e.OffChip,
			}})
		}
		return c, nil

	case "fig16":
		cells, err := Figure16()
		if err != nil {
			return nil, err
		}
		c := &viz.Chart{
			Title:  "Fig. 16 — ResNet accelerator energy vs retention time (refresh | rest)",
			Legend: []string{"refresh", "other accelerator energy"},
		}
		for _, cell := range cells {
			label := fmt.Sprintf("%s@%s", cell.Design, us(cell.RetentionTime))
			c.Rows = append(c.Rows, viz.Row{Label: label, Parts: []float64{
				cell.Refresh, cell.Accelerator - cell.Refresh,
			}})
		}
		return c, nil

	case "fig19":
		cells, err := Figure19()
		if err != nil {
			return nil, err
		}
		byDesign := map[string]*viz.Row{}
		var order []string
		for _, cell := range cells {
			if _, ok := byDesign[cell.Design]; !ok {
				byDesign[cell.Design] = &viz.Row{Label: cell.Design, Parts: make([]float64, 4)}
				order = append(order, cell.Design)
			}
			r := byDesign[cell.Design]
			e := cell.Energy.Scale(0.25) // average the four benchmarks
			r.Parts[0] += e.Computing
			r.Parts[1] += e.BufferAccess
			r.Parts[2] += e.Refresh
			r.Parts[3] += e.OffChip
		}
		c := &viz.Chart{
			Title:  "Fig. 19 — DaDianNao scalability (benchmark average, normalized)",
			Legend: viz.BreakdownLegend(),
		}
		for _, d := range order {
			c.Rows = append(c.Rows, *byDesign[d])
		}
		return c, nil

	default:
		return nil, fmt.Errorf("experiments: no chart form for %q (try fig1, fig15, fig16, fig19)", id)
	}
}
