package experiments

// This file regenerates the data-analysis figures: ResNet lifetimes
// (Fig. 7), the retention distribution (Fig. 8), accuracy vs failure rate
// (Fig. 11) and ResNet layer sizes (Fig. 12).

import (
	"fmt"
	"io"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/retention"
	"rana/internal/sched"
	"rana/internal/training"
)

// Fig7Row is one ResNet layer's data lifetime under the unoptimized ID
// pattern at the natural tiling (Fig. 7).
type Fig7Row struct {
	Layer    string
	Stage    string
	Input    time.Duration // LTi — the dominant lifetime under ID
	Weight   time.Duration // LTw
	ExceedRT bool          // lifetime above the 45 µs conventional point
	Exceed16 bool          // lifetime above the 734 µs tolerable point
}

// Figure7 computes ResNet's per-layer lifetimes before optimization.
func Figure7() []Fig7Row {
	cfg := hw.TestAcceleratorEDRAM()
	var rows []Fig7Row
	for _, l := range models.ResNet().Layers {
		a := pattern.MustAnalyze(l, pattern.ID, sched.NaturalTiling(l, cfg), cfg)
		rows = append(rows, Fig7Row{
			Layer:    l.Name,
			Stage:    l.Stage,
			Input:    a.Lifetimes.Input,
			Weight:   a.Lifetimes.Weight,
			ExceedRT: a.Lifetimes.Input >= retention.TypicalRetentionTime,
			Exceed16: a.Lifetimes.Input >= retention.TolerableRetentionTime,
		})
	}
	return rows
}

// Figure8 samples the retention-time distribution curve over the paper's
// axis range (10 µs .. 100 ms).
func Figure8() []retention.Anchor {
	return retention.Typical().Curve(10*time.Microsecond, 100*time.Millisecond, 25)
}

// Fig11Row is one (model, rate) point of the relative-accuracy series.
type Fig11Row struct {
	Model    string
	Rate     float64
	Relative float64
}

// Figure11 returns the calibrated relative top-1 accuracy of the four
// benchmarks at the paper's failure-rate ladder (Fig. 11; calibrated
// model, DESIGN.md §2).
func Figure11() []Fig11Row {
	var rows []Fig11Row
	for _, m := range training.ResilienceModels() {
		for _, r := range training.PaperRates {
			rel, err := training.RelativeAccuracy(m, r)
			if err != nil {
				panic(err) // models come from ResilienceModels
			}
			rows = append(rows, Fig11Row{Model: m, Rate: r, Relative: rel})
		}
	}
	return rows
}

// Figure11Empirical runs the actual retention-aware training method on
// the synthetic dataset across the rate ladder — the executable
// counterpart of the calibrated curves. It is expensive (tens of
// seconds) and therefore not part of the printed experiment set.
func Figure11Empirical(samples int) []training.Result {
	m := training.NewMethod(training.DefaultConfig(), samples)
	out := make([]training.Result, 0, len(training.PaperRates))
	for _, r := range training.PaperRates {
		out = append(out, m.Run(r))
	}
	return out
}

// Fig12Row is one ResNet layer's storage split (Fig. 12).
type Fig12Row struct {
	Layer                       string
	Stage                       string
	InputMB, WeightMB, OutputMB float64
}

// Figure12 computes ResNet's per-layer data sizes in 16-bit precision.
func Figure12() []Fig12Row {
	var rows []Fig12Row
	for _, l := range models.ResNet().Layers {
		rows = append(rows, Fig12Row{
			Layer:    l.Name,
			Stage:    l.Stage,
			InputMB:  models.PaperMB(l.InputWords()),
			WeightMB: models.PaperMB(l.WeightWords()),
			OutputMB: models.PaperMB(l.OutputWords()),
		})
	}
	return rows
}

func init() {
	register(Experiment{
		ID:    "fig7",
		Data:  func() (any, error) { return Figure7(), nil },
		Title: "ResNet data lifetime before optimization (ID pattern)",
		Run: func(w io.Writer) error {
			rows := Figure7()
			over45, over734 := 0, 0
			fmt.Fprintf(w, "%-18s %-8s %12s %12s\n", "Layer", "Stage", "LTi", "LTw")
			for _, r := range rows {
				if r.ExceedRT {
					over45++
				}
				if r.Exceed16 {
					over734++
				}
				if _, err := fmt.Fprintf(w, "%-18s %-8s %12s %12s\n",
					r.Layer, r.Stage, us(r.Input), us(r.Weight)); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "layers above RT=45us: %d/%d; above 16xRT=734us: %d/%d\n",
				over45, len(rows), over734, len(rows))
			return nil
		},
	})
	register(Experiment{
		ID:    "fig8",
		Data:  func() (any, error) { return Figure8(), nil },
		Title: "Typical eDRAM retention time distribution",
		Run: func(w io.Writer) error {
			fmt.Fprintf(w, "%14s %16s\n", "RetentionTime", "FailureRate")
			for _, a := range Figure8() {
				if _, err := fmt.Fprintf(w, "%14s %16.3e\n", us(a.Time), a.Rate); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "anchors: %s @ %.0e (conventional), %s @ %.0e (tolerable)\n",
				us(retention.TypicalRetentionTime), retention.TypicalFailureRate,
				us(retention.TolerableRetentionTime), retention.TolerableFailureRate)
			return nil
		},
	})
	register(Experiment{
		ID:    "fig11",
		Data:  func() (any, error) { return Figure11(), nil },
		Title: "Relative accuracy under retention failure rates",
		Run: func(w io.Writer) error {
			fmt.Fprintf(w, "%-12s", "Model")
			for _, r := range training.PaperRates {
				fmt.Fprintf(w, " %9.0e", r)
			}
			fmt.Fprintln(w)
			rows := Figure11()
			for i := 0; i < len(rows); i += len(training.PaperRates) {
				fmt.Fprintf(w, "%-12s", rows[i].Model)
				for j := 0; j < len(training.PaperRates); j++ {
					fmt.Fprintf(w, " %8.1f%%", rows[i+j].Relative*100)
				}
				if _, err := fmt.Fprintln(w); err != nil {
					return err
				}
			}
			return nil
		},
	})
	register(Experiment{
		ID:    "fig12",
		Data:  func() (any, error) { return Figure12(), nil },
		Title: "Layer size analysis of ResNet (16-bit)",
		Run: func(w io.Writer) error {
			fmt.Fprintf(w, "%-18s %-8s %10s %10s %10s\n", "Layer", "Stage", "Inputs", "Weights", "Outputs")
			for _, r := range Figure12() {
				if _, err := fmt.Fprintf(w, "%-18s %-8s %9.3fMB %9.3fMB %9.3fMB\n",
					r.Layer, r.Stage, r.InputMB, r.WeightMB, r.OutputMB); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

// us formats a duration in microseconds, the paper's figure unit.
func us(d time.Duration) string {
	return fmt.Sprintf("%.1fus", float64(d)/float64(time.Microsecond))
}
