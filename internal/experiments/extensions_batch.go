package experiments

// Extension 3: batch processing (see internal/pattern/batch.go). The
// paper evaluates single-image inference; batching lets weights stay
// resident across images, trading off-chip weight traffic against
// weight-bank refresh — a trade only the refresh-optimized controller
// makes cheap.

import (
	"fmt"
	"io"

	"rana/internal/energy"
	"rana/internal/memctrl"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/platform"
	"rana/internal/sched"
)

// Ext3Row is one (model, batch) point: per-image system energy of
// weight-resident batching under RANA*(E-5), normalized to batch 1.
type Ext3Row struct {
	Model string
	Batch int
	// PerImage is the per-image system energy relative to batch 1.
	PerImage float64
	// RefreshShare is refresh's share of the batched total.
	RefreshShare float64
	// WeightDDRSaved is the fraction of weight DDR traffic amortized away.
	WeightDDRSaved float64
}

// Ext3Batches is the swept batch ladder.
var Ext3Batches = []int{1, 2, 4, 8, 16}

// Extension3Batch evaluates weight-resident batching per benchmark: each
// layer keeps the RANA*(E-5) schedule's pattern and tiling, re-analyzed
// at batch B with refresh re-accounted through the optimized controller.
func Extension3Batch() ([]Ext3Row, error) {
	p := platform.Test()
	d := platform.RANAStarE5()
	interval := d.Interval(p.Dist)
	var rows []Ext3Row
	for _, n := range models.Benchmarks() {
		r, err := p.Evaluate(d, n)
		if err != nil {
			return nil, err
		}
		cfg := r.Plan.Config
		var base float64
		for _, batch := range Ext3Batches {
			var counts energy.Counts
			var wDDR, wDDRNaive uint64
			for i, lp := range r.Plan.Layers {
				l := n.Layers[i]
				a := pattern.MustAnalyzeBatch(l, lp.Analysis.Pattern, lp.Analysis.Tiling, cfg, batch)
				alloc := memctrl.Allocate(a.BufferStorage, cfg.BankWords, cfg.Banks())
				needs := memctrl.NeedsFor(a.Lifetimes, interval)
				counts.Add(energy.Counts{
					MACs:           a.MACs,
					BufferAccesses: a.BufferTraffic.Total(),
					Refreshes: memctrl.RefreshWords(memctrl.RefreshOptimized{},
						a.ExecTime, interval, alloc, needs, cfg.Banks(), cfg.BankWords),
					DDRAccesses: a.DDRTraffic.Total(),
				})
				wDDR += a.DDRTraffic.Weights
				wDDRNaive += lp.Analysis.DDRTraffic.Weights * uint64(batch)
			}
			e := energy.System(counts, cfg.BufferTech)
			perImage := e.Total() / float64(batch)
			if base == 0 {
				base = perImage
			}
			rows = append(rows, Ext3Row{
				Model: n.Name, Batch: batch,
				PerImage:       perImage / base,
				RefreshShare:   e.Refresh / e.Total(),
				WeightDDRSaved: 1 - float64(wDDR)/float64(wDDRNaive),
			})
		}
	}
	return rows, nil
}

func init() {
	register(Experiment{
		ID:    "ext3",
		Title: "Extension: weight-resident batch processing",
		Data:  func() (any, error) { return Extension3Batch() },
		Run: func(w io.Writer) error {
			rows, err := Extension3Batch()
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-12s %6s %12s %14s %16s\n", "Model", "batch", "E/image", "refresh share", "weight DDR saved")
			for _, r := range rows {
				if _, err := fmt.Fprintf(w, "%-12s %6d %12.3f %13.2f%% %15.1f%%\n",
					r.Model, r.Batch, r.PerImage, r.RefreshShare*100, r.WeightDDRSaved*100); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

var _ = sched.Options{}
