package experiments

// The reproduction report: every quantitative claim the paper makes that
// this repository re-measures, computed live and printed next to the
// paper's number. This is EXPERIMENTS.md as executable code — the "repro"
// experiment fails loudly (error rows) if a model change drifts a claim
// out of its band.

import (
	"fmt"
	"io"
	"math"
	"time"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/platform"
	"rana/internal/retention"
)

// ClaimRow is one verified claim.
type ClaimRow struct {
	// Source cites the paper location.
	Source string
	// Claim describes the quantity.
	Claim string
	// Paper is the paper's value; Measured is this repository's.
	Paper, Measured float64
	// Unit labels both values.
	Unit string
	// Lo and Hi bound the acceptable measured band.
	Lo, Hi float64
	// OK reports whether Measured landed inside [Lo, Hi].
	OK bool
}

// ReproReport computes every verified claim.
func ReproReport() ([]ClaimRow, error) {
	var rows []ClaimRow
	add := func(source, claim string, paper, measured float64, unit string, lo, hi float64) {
		rows = append(rows, ClaimRow{
			Source: source, Claim: claim, Paper: paper, Measured: measured,
			Unit: unit, Lo: lo, Hi: hi, OK: measured >= lo && measured <= hi,
		})
	}

	// Lifetime anchors (§III-B, §IV-C1).
	cfg := hw.TestAccelerator()
	ti := pattern.Tiling{Tm: 16, Tn: 16, Tr: 1, Tc: 16}
	layerA, _ := models.ResNet().Layer("res4a_branch1")
	layerB, _ := models.VGG().Layer("conv4_2")
	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	add("§III-B2", "Layer-A input lifetime under ID",
		2294, us(pattern.MustAnalyze(layerA, pattern.ID, ti, cfg).Lifetimes.Input), "µs", 2292, 2296)
	add("§IV-C1", "Layer-A output lifetime under OD",
		72, us(pattern.MustAnalyze(layerA, pattern.OD, ti, cfg).Lifetimes.Output), "µs", 71, 73)
	add("§IV-C1", "Layer-B output lifetime under OD, Tn=16",
		1290, us(pattern.MustAnalyze(layerB, pattern.OD, ti, cfg).Lifetimes.Output), "µs", 1288, 1292)
	t8 := ti
	t8.Tn = 8
	add("§IV-C1", "Layer-B output lifetime under OD, Tn=8",
		645, us(pattern.MustAnalyze(layerB, pattern.OD, t8, cfg).Lifetimes.Output), "µs", 644, 646)
	add("§IV-D2", "Layer-B weight lifetime under OD, Tn=16",
		40, us(pattern.MustAnalyze(layerB, pattern.OD, ti, cfg).Lifetimes.Weight), "µs", 39, 41)
	bsKB := float64(pattern.MustAnalyze(layerA, pattern.ID, pattern.Tiling{Tm: 1, Tn: 1, Tr: 1, Tc: 1}, cfg).
		BufferStorage.Total()) * 2 / 1024
	add("§III-B1", "Layer-A minimum ID buffer storage", 785, bsKB, "KB", 784, 786)

	// Table I maxima (paper MB).
	vgg := models.VGG().Summarize()
	add("Table I", "VGG max layer inputs", 6.27, vgg.MaxInputMB(), "MB", 6.26, 6.28)
	resnet := models.ResNet().Summarize()
	add("Table I", "ResNet max layer weights", 4.61, resnet.MaxWeightMB(), "MB", 4.60, 4.62)

	// Retention anchors (Fig. 8).
	dist := retention.Typical()
	add("Fig. 8", "tolerable retention at 1e-5",
		734, us(dist.RetentionTime(1e-5)), "µs", 733, 735)

	// Fig. 16 ratios.
	f16, err := Figure16()
	if err != nil {
		return nil, err
	}
	at := func(rt time.Duration, d string) Fig16Cell {
		for _, c := range f16 {
			if c.RetentionTime == rt && c.Design == d {
				return c
			}
		}
		return Fig16Cell{}
	}
	idDrop := 1 - at(180*time.Microsecond, "eD+ID").Refresh/at(90*time.Microsecond, "eD+ID").Refresh
	odDrop := 1 - at(180*time.Microsecond, "eD+OD").Refresh/at(90*time.Microsecond, "eD+OD").Refresh
	add("§V-B2", "eD+ID refresh drop, RT 90→180µs", 50.0, idDrop*100, "%", 45, 55)
	add("§V-B2", "eD+OD refresh drop, RT 90→180µs", 80.1, odDrop*100, "%", 72, 88)

	// Headline claims (§V-B1).
	h, err := Headline()
	if err != nil {
		return nil, err
	}
	add("§V-B1", "refresh operations removed vs eD+ID", 99.7, h.RefreshRemovedVsEDID*100, "%", 98, 100)
	add("§V-B1", "off-chip access saved vs S+ID", 41.7, h.OffChipSavedVsSID*100, "%", 25, 60)
	add("§V-B1", "system energy saved vs S+ID", 66.2, h.EnergySavedVsSID*100, "%", 40, 75)

	// AlexNet eD+ID penalty.
	p := platform.Test()
	sid, err := p.Evaluate(platform.SID(), models.AlexNet())
	if err != nil {
		return nil, err
	}
	edid, err := p.Evaluate(platform.EDID(), models.AlexNet())
	if err != nil {
		return nil, err
	}
	add("§V-B1", "AlexNet eD+ID / S+ID energy", 2.3,
		edid.Energy().Total()/sid.Energy().Total(), "×", 1.8, 2.8)

	// DaDianNao study (§V-C).
	f19, err := Figure19()
	if err != nil {
		return nil, err
	}
	var bufSave, sysSave float64
	n := 0.0
	for _, c := range f19 {
		if c.Design == "RANA (0)" {
			bufSave += 1 - c.Energy.BufferAccess
		}
		if c.Design == "RANA*(E-5)" {
			sysSave += 1 - c.Energy.Total()
		}
		if c.Design == "RANA (0)" {
			n++
		}
	}
	add("§V-C", "DaDianNao buffer-access saved by hybrid pattern", 97.2, bufSave/n*100, "%", 90, 100)
	add("§V-C", "DaDianNao system energy saved by RANA*(E-5)", 69.4, sysSave/n*100, "%", 60, 80)

	return rows, nil
}

func init() {
	register(Experiment{
		ID:    "repro",
		Title: "Reproduction report: paper vs measured, with acceptance bands",
		Data:  func() (any, error) { return ReproReport() },
		Run: func(w io.Writer) error {
			rows, err := ReproReport()
			if err != nil {
				return err
			}
			failures := 0
			fmt.Fprintf(w, "%-9s %-46s %10s %10s %-3s %s\n", "Source", "Claim", "Paper", "Measured", "", "Band")
			for _, r := range rows {
				mark := "ok"
				if !r.OK {
					mark = "FAIL"
					failures++
				}
				if _, err := fmt.Fprintf(w, "%-9s %-46s %9.2f%s %9.2f%s %-4s [%.4g, %.4g]\n",
					r.Source, r.Claim, r.Paper, r.Unit, r.Measured, r.Unit, mark, r.Lo, r.Hi); err != nil {
					return err
				}
			}
			fmt.Fprintf(w, "%d/%d claims inside their acceptance bands\n", len(rows)-failures, len(rows))
			if failures > 0 {
				return fmt.Errorf("experiments: %d reproduction claims out of band", failures)
			}
			return nil
		},
	})
}

var _ = math.Abs
