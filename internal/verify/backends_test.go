package verify

import (
	"strings"
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/verify/gen"
)

func TestCompareBackendsOnZoo(t *testing.T) {
	if testing.Short() {
		t.Skip("full-zoo backend sweep")
	}
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		t.Run(net.Name, func(t *testing.T) {
			r, err := CompareBackends(net, cfg, zooOptions(), DefaultTolerances())
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK() {
				t.Error(r)
			}
			t.Logf("%s", r)
		})
	}
}

func TestCompareBackendsSweepsNonNominalPoints(t *testing.T) {
	// The acceptance property: at least one non-default operating point
	// must be scheduled and validated end to end. The sweep list proves
	// the pinned approximate points actually ran.
	net, ok := models.ByName("AlexNet")
	if !ok {
		t.Fatal("AlexNet missing from the zoo")
	}
	cfg := hw.TestAcceleratorEDRAM()
	r, err := CompareBackends(net, cfg, zooOptions(), DefaultTolerances())
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK() {
		t.Fatal(r)
	}
	swept := strings.Join(r.Swept, " ")
	for _, want := range []string{"edram", "sram", "approx-dram", "approx-dram@v0.9", "approx-dram@v0.8", "reram@fast-write"} {
		if !strings.Contains(swept, want) {
			t.Errorf("sweep %v missed %q", r.Swept, want)
		}
	}
	// v0.7's bit-error rate exceeds the default tolerable budget; the
	// sweep must not schedule it.
	if strings.Contains(swept, "v0.7") {
		t.Errorf("sweep %v priced the over-budget v0.7 point", r.Swept)
	}
}

func TestCompareBackendFunctional(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	g := gen.New(3)
	l := g.TinyLayer()
	for _, spec := range []string{"edram", "approx-dram@v0.8", "sram", "reram@fast-write"} {
		t.Run(spec, func(t *testing.T) {
			r, err := CompareBackendFunctional(spec, l, cfg, 7, DefaultTolerances())
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK() {
				t.Error(r)
			}
		})
	}
}

func TestCompareBackendFunctionalRejectsBadSpecs(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	l := gen.New(3).TinyLayer()
	for _, spec := range []string{"", "ddr3", "edram@no-such-point", "nope"} {
		if _, err := CompareBackendFunctional(spec, l, cfg, 1, DefaultTolerances()); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
