package verify

import (
	"rana/internal/models"
	"rana/internal/pattern"
	"rana/internal/verify/gen"
)

// Minimize greedily shrinks a failing case while the predicate keeps
// failing, and returns the smallest variant found. Shrinking halves the
// layer's channel counts and spatial extent, drops grouping, padding and
// stride, reduces the kernel, and shrinks the tiling — always keeping the
// case valid (the tiling is re-clamped to the shrunk layer). fails must
// be deterministic; it is invoked once per candidate.
func Minimize(c gen.Case, fails func(gen.Case) bool) gen.Case {
	if !fails(c) {
		return c
	}
	for {
		shrunk := false
		for _, cand := range shrinkSteps(c) {
			if valid(cand) && fails(cand) {
				c = cand
				shrunk = true
				break
			}
		}
		if !shrunk {
			return c
		}
	}
}

// valid reports whether the case's layer and tiling are well-formed.
func valid(c gen.Case) bool {
	return c.Layer.Validate() == nil && c.Tiling.Validate() == nil
}

// shrinkSteps proposes one-mutation-smaller variants of the case, most
// aggressive first.
func shrinkSteps(c gen.Case) []gen.Case {
	var out []gen.Case
	mut := func(f func(*gen.Case)) {
		d := c
		f(&d)
		d.Tiling = clampTiling(d.Tiling, d.Layer)
		out = append(out, d)
	}
	l := c.Layer
	if l.Groups > 1 {
		mut(func(d *gen.Case) { d.Layer.Groups = 0 })
	}
	if l.N > 1 {
		mut(func(d *gen.Case) { d.Layer.N = shrinkDim(d.Layer.N, d.Layer.Groups) })
	}
	if l.M > 1 {
		mut(func(d *gen.Case) { d.Layer.M = shrinkDim(d.Layer.M, d.Layer.Groups) })
	}
	if l.H > l.K {
		mut(func(d *gen.Case) { d.Layer.H = d.Layer.H / 2; d.Layer.L = d.Layer.H })
	}
	if l.K > 1 {
		mut(func(d *gen.Case) { d.Layer.K = 1 })
	}
	if l.S > 1 {
		mut(func(d *gen.Case) { d.Layer.S = 1 })
	}
	if l.P > 0 {
		mut(func(d *gen.Case) { d.Layer.P = 0 })
	}
	t := c.Tiling
	if t.Tm > 1 {
		mut(func(d *gen.Case) { d.Tiling.Tm = d.Tiling.Tm / 2 })
	}
	if t.Tn > 1 {
		mut(func(d *gen.Case) { d.Tiling.Tn = d.Tiling.Tn / 2 })
	}
	if t.Tr > 1 {
		mut(func(d *gen.Case) { d.Tiling.Tr = d.Tiling.Tr / 2 })
	}
	if t.Tc > 1 {
		mut(func(d *gen.Case) { d.Tiling.Tc = d.Tiling.Tc / 2 })
	}
	return out
}

// shrinkDim halves a channel dimension, keeping it a positive multiple of
// the group count.
func shrinkDim(dim, groups int) int {
	g := groups
	if g <= 1 {
		g = 1
	}
	half := dim / 2
	half = (half / g) * g
	if half < g {
		half = g
	}
	return half
}

// clampTiling keeps each tile size positive and no larger than the
// (per-group) dimension it tiles.
func clampTiling(t pattern.Tiling, l models.ConvLayer) pattern.Tiling {
	g := l.Groups
	if g <= 1 {
		g = 1
	}
	clamp := func(v, dim int) int {
		if v > dim {
			v = dim
		}
		if v < 1 {
			v = 1
		}
		return v
	}
	t.Tm = clamp(t.Tm, l.M/g)
	t.Tn = clamp(t.Tn, l.N/g)
	t.Tr = clamp(t.Tr, l.R())
	t.Tc = clamp(t.Tc, l.C())
	return t
}
