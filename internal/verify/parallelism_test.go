package verify

import (
	"testing"

	"rana/internal/hw"
	"rana/internal/models"
	"rana/internal/verify/gen"
)

// TestCompareParallelismOnZoo is the ISSUE's differential acceptance
// check: across the benchmark zoo, parallel pruned (and exhaustive) runs
// at parallelism 1, 2 and GOMAXPROCS — memo on and memo off — must
// reproduce the sequential exhaustive reference byte-for-byte on the
// wire.
func TestCompareParallelismOnZoo(t *testing.T) {
	cfg := hw.TestAcceleratorEDRAM()
	for _, net := range models.Benchmarks() {
		t.Run(net.Name, func(t *testing.T) {
			r, err := CompareParallelism(net, cfg, zooOptions())
			if err != nil {
				t.Fatal(err)
			}
			if !r.OK() {
				t.Error(r)
			}
			t.Logf("%s", r)
		})
	}
}

// TestCompareParallelismOnGeneratedNetworks exercises the error-agreement
// arm: unschedulable random layers must be rejected identically at every
// parallelism level and memo mode.
func TestCompareParallelismOnGeneratedNetworks(t *testing.T) {
	g := gen.New(7)
	const nets = 15
	for i := 0; i < nets; i++ {
		cfg := g.Config()
		net := models.Network{Name: "gen"}
		for j := 0; j < 1+i%3; j++ {
			net.Layers = append(net.Layers, g.TinyLayer())
		}
		r, err := CompareParallelism(net, cfg, zooOptions(), 1, 2, 4)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !r.OK() {
			t.Errorf("case %d on %s:\n%s", i, cfg.Name, r)
		}
	}
}

// TestParallelismReportRendering sanity-checks the report machinery.
func TestParallelismReportRendering(t *testing.T) {
	r := &ParallelismReport{Network: "x", Levels: []int{1, 2}}
	if !r.OK() {
		t.Fatal("empty report not OK")
	}
	r.diverge2("parallel/plan-bytes/pruned/p2/memo=true", "a", "b")
	if r.OK() {
		t.Fatal("report with a divergence claims OK")
	}
	if s := r.String(); s == "" {
		t.Fatal("empty rendering")
	}
}
